(* Decryption: inverse ciphers round-trip with encryption at the host
   level, at the IR level, and under unroll-and-squash. *)

open Uas_ir
module S = Uas_bench_suite

let test_skipjack_host_roundtrip () =
  let key = S.Skipjack.random_key ~seed:21 in
  for t = 0 to 24 do
    let block =
      ( (t * 9941) land 0xffff, (t * 31337) land 0xffff,
        (t * 271) land 0xffff, (t * 65521) land 0xffff )
    in
    let c = S.Skipjack.encrypt_block ~key block in
    if S.Skipjack.decrypt_block ~key c <> block then
      Alcotest.failf "skipjack roundtrip failed at %d" t
  done

let test_skipjack_kat_decrypt () =
  let got =
    S.Skipjack.decrypt_block ~key:S.Skipjack.kat_key
      ( S.Skipjack.kat_ciphertext_words.(0),
        S.Skipjack.kat_ciphertext_words.(1),
        S.Skipjack.kat_ciphertext_words.(2),
        S.Skipjack.kat_ciphertext_words.(3) )
  in
  let w1, w2, w3, w4 = got in
  Alcotest.(check (list int))
    "official vector decrypts"
    (Array.to_list S.Skipjack.kat_plaintext_words)
    [ w1; w2; w3; w4 ]

let test_des_host_roundtrip () =
  let key64 = 0x5B5A57676A56676EL in
  List.iter
    (fun p ->
      let c = S.Des.encrypt_block ~key64 p in
      Alcotest.(check int64)
        (Printf.sprintf "des roundtrip %Lx" p)
        p
        (S.Des.decrypt_block ~key64 c))
    [ 0x0123456789ABCDEFL; 0L; -1L; 0x675A69675E5A6B5AL ]

let test_skipjack_ir_decrypt () =
  (* the IR decryption program inverts the IR encryption program *)
  let m = 6 in
  let key = S.Skipjack.random_key ~seed:22 in
  let words = S.Skipjack.random_words ~seed:23 (4 * m) in
  let cipher = S.Skipjack.encrypt_stream ~key words in
  let p = S.Skipjack.skipjack_mem_decrypt ~m in
  let r = Interp.run p (S.Skipjack.workload_mem ~key cipher) in
  let got = List.assoc "data_out" r.Interp.outputs in
  Alcotest.(check bool) "ir decrypt inverts encrypt" true
    (Array.for_all2 (fun a b -> a = Types.VInt b) got words);
  (* and the ROM variant *)
  let q = S.Skipjack.skipjack_hw_decrypt ~m ~key in
  let r2 = Interp.run q (S.Skipjack.workload_hw cipher) in
  Alcotest.(check bool) "rom variant too" true
    (Array.for_all2
       (fun a b -> a = Types.VInt b)
       (List.assoc "data_out" r2.Interp.outputs)
       words)

let test_des_ir_decrypt_via_reversed_keys () =
  (* DES decryption in the IR is the encryption program fed the
     reversed subkey schedule, with the halves swapped on the way in
     and out (the Feistel symmetry) *)
  let m = 4 in
  let key64 = 0x133457799BBCDFF1L in
  let halves = S.Des.random_halves ~seed:24 (2 * m) in
  let cipher =
    S.Des.encrypt_stream ~subkeys:(S.Des.key_schedule key64) halves
  in
  (* the encryption stream stores (r16, l16); the decryption pass reads
     those directly as its (l, r) inputs — the Feistel symmetry again *)
  let p = S.Des.des_mem ~m in
  let w =
    Interp.workload
      ~arrays:
        [ ("data_in", Array.map (fun x -> Types.VInt x) cipher);
          ("spbox", Array.map (fun x -> Types.VInt x) S.Des.spbox_flat);
          ("subkeys",
           Array.map (fun x -> Types.VInt x) (S.Des.decrypt_schedule key64)) ]
      ()
  in
  let r = Interp.run p w in
  let got = List.assoc "data_out" r.Interp.outputs in
  (* the program stores (r_final, l_final) = (L0, R0) back at
     (2i, 2i+1) — exactly the original (l, r) layout *)
  Alcotest.(check bool) "ir des decrypt inverts" true
    (Array.for_all2 (fun a b -> a = Types.VInt b) got halves)

let test_squashed_decrypt () =
  (* decryption kernels squash exactly like encryption kernels *)
  let m = 8 in
  let key = S.Skipjack.random_key ~seed:25 in
  let words = S.Skipjack.random_words ~seed:26 (4 * m) in
  let cipher = S.Skipjack.encrypt_stream ~key words in
  let p = S.Skipjack.skipjack_hw_decrypt ~m ~key in
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let out = Uas_transform.Squash.apply p nest ~ds:4 in
  let r =
    Interp.run out.Uas_transform.Squash.program (S.Skipjack.workload_hw cipher)
  in
  Alcotest.(check bool) "squashed decryption" true
    (Array.for_all2
       (fun a b -> a = Types.VInt b)
       (List.assoc "data_out" r.Interp.outputs)
       words)

let suite =
  [ Alcotest.test_case "skipjack host roundtrip" `Quick
      test_skipjack_host_roundtrip;
    Alcotest.test_case "skipjack KAT decrypt" `Quick test_skipjack_kat_decrypt;
    Alcotest.test_case "DES host roundtrip" `Quick test_des_host_roundtrip;
    Alcotest.test_case "skipjack IR decrypt" `Quick test_skipjack_ir_decrypt;
    Alcotest.test_case "DES IR decrypt (reversed keys)" `Quick
      test_des_ir_decrypt_via_reversed_keys;
    Alcotest.test_case "squashed decrypt" `Quick test_squashed_decrypt ]
