(* C export: emitted programs compile with the system C compiler and
   print bit-identical outputs to the reference interpreter — for the
   originals AND for squashed/jammed versions (generated '@' names
   included).  Skipped cleanly when no C compiler is present. *)

open Uas_ir
module S = Uas_bench_suite

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let require_cc () =
  if not (Lazy.force cc_available) then
    Alcotest.skip ()

(* run a standalone emitted program, return its stdout lines *)
let compile_and_run (p : Stmt.program) (w : Interp.workload) : string list =
  let src = Filename.temp_file "uas_" ".c" in
  let exe = Filename.temp_file "uas_" ".exe" in
  let out = Filename.temp_file "uas_" ".out" in
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> try Sys.remove f with _ -> ()) [ src; exe; out ])
    (fun () ->
      C_export.write_standalone p ~workload:w ~path:src;
      let cmd =
        Printf.sprintf "cc -O1 -o %s %s > %s 2>&1" (Filename.quote exe)
          (Filename.quote src) (Filename.quote out)
      in
      if Sys.command cmd <> 0 then
        Alcotest.failf "cc failed on generated code:\n%s"
          (In_channel.with_open_text out In_channel.input_all);
      if Sys.command (Printf.sprintf "%s > %s" (Filename.quote exe) (Filename.quote out)) <> 0
      then Alcotest.fail "generated program crashed";
      In_channel.with_open_text out In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> ""))

(* expected lines from the interpreter, same formatting as the C side *)
let interp_lines (p : Stmt.program) (w : Interp.workload) : string list =
  let r = Interp.run p w in
  List.concat_map
    (fun (d : Stmt.array_decl) ->
      match d.a_kind with
      | Stmt.Output ->
        Array.to_list
          (Array.map
             (fun v ->
               match v with
               | Types.VInt n -> string_of_int n
               | Types.VFloat f -> Printf.sprintf "%h" f)
             (List.assoc d.a_name r.Interp.outputs))
      | Stmt.Input | Stmt.Local -> [])
    p.arrays

let check_program name p w =
  require_cc ();
  let got = compile_and_run p w in
  let expected = interp_lines p w in
  if got <> expected then begin
    let show l = String.concat "," (List.filteri (fun i _ -> i < 8) l) in
    Alcotest.failf "%s: C output differs\n  C:      %s...\n  interp: %s..."
      name (show got) (show expected)
  end

let test_fg () =
  let p = S.Simple.fg_loop ~m:8 ~n:5 in
  check_program "fg" p (Helpers.random_workload p)

let test_skipjack () =
  let key = S.Skipjack.random_key ~seed:41 in
  let words = S.Skipjack.random_words ~seed:42 32 in
  check_program "skipjack-mem" (S.Skipjack.skipjack_mem ~m:8)
    (S.Skipjack.workload_mem ~key words);
  check_program "skipjack-hw"
    (S.Skipjack.skipjack_hw ~m:8 ~key)
    (S.Skipjack.workload_hw words)

let test_des () =
  let key64 = 0x0123456789ABCDEFL in
  let halves = S.Des.random_halves ~seed:43 16 in
  check_program "des-mem" (S.Des.des_mem ~m:8)
    (S.Des.workload_mem ~key64 halves)

let test_iir_floats () =
  let signal = S.Iir.random_signal ~seed:44 (4 * S.Iir.points_per_channel) in
  check_program "iir" (S.Iir.iir ~channels:4) (S.Iir.workload signal)

let test_squashed_and_jammed () =
  (* the generated copies ('@' names) survive the C name mangling *)
  let p = S.Simple.fg_loop ~m:8 ~n:5 in
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let w = Helpers.random_workload p in
  let sq = Uas_transform.Squash.apply p nest ~ds:4 in
  check_program "squashed fg" sq.Uas_transform.Squash.program w;
  let jam = Uas_transform.Unroll_and_jam.apply p nest ~ds:2 in
  check_program "jammed fg" jam.Uas_transform.Unroll_and_jam.program w

let test_branchy () =
  let open Builder in
  let p =
    program "branchy_c"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ input "a" 16; output "b" 16 ]
      [ for_ "j" ~hi:(int 16)
          [ ("x" <-- load "a" (v "j"));
            if_ (band (v "x") (int 1) == int 1)
              [ ("x" <-- v "x" * int 3 + int 1) ]
              [ ("x" <-- shr (v "x") (int 1)) ];
            store "b" (v "j") (select (v "x" > int 100) (int 100) (v "x")) ] ]
  in
  check_program "branchy" p (Helpers.random_workload p)

let suite =
  [ Alcotest.test_case "fg via cc" `Quick test_fg;
    Alcotest.test_case "skipjack via cc" `Quick test_skipjack;
    Alcotest.test_case "des via cc" `Quick test_des;
    Alcotest.test_case "iir (doubles) via cc" `Quick test_iir_floats;
    Alcotest.test_case "squashed/jammed via cc" `Quick
      test_squashed_and_jammed;
    Alcotest.test_case "branches and selects via cc" `Quick test_branchy ]
