(* Bit-width inference: range soundness (the interpreter never observes
   a value outside the inferred range) and the operator-sizing effect on
   the crypto kernels. *)

open Uas_ir
module S = Uas_bench_suite
module BW = Uas_hw.Bitwidth
module Build = Uas_dfg.Build

let detail_of body = Build.build_detailed ~inner_index:"j" body

let test_mask_ranges () =
  let body =
    [ Builder.("x" <-- band (v "a") (int 255));
      Builder.("y" <-- v "x" + int 10);
      Builder.("z" <-- shr (v "y") (int 2));
      Builder.("c" <-- (v "z" < int 7)) ]
  in
  let detail = detail_of body in
  let ranges = BW.node_ranges detail [] in
  let range_of_def name =
    let node = List.assoc name detail.Build.d_live_out_nodes in
    ranges.(node)
  in
  let check name lo hi =
    let r = range_of_def name in
    Alcotest.(check bool)
      (Printf.sprintf "%s in [%d,%d] (got [%d,%d])" name lo hi r.BW.lo r.BW.hi)
      true
      (r.BW.lo >= lo && r.BW.hi <= hi)
  in
  check "x" 0 255;
  check "y" 10 265;
  check "z" 0 66;  (* shr lower bound is conservatively 0 *)
  check "c" 0 1;
  Alcotest.(check int) "width of x" 8 (BW.width_bits (range_of_def "x"));
  Alcotest.(check int) "width of c" 1 (BW.width_bits (range_of_def "c"))

let test_rom_ranges () =
  let body = [ Builder.("x" <-- rom "tab" (band (v "a") (int 3))) ] in
  let detail = detail_of body in
  let ranges = BW.node_ranges detail [ ("tab", [| 7; 130; 45; 0 |]) ] in
  let node = List.assoc "x" detail.Build.d_live_out_nodes in
  Alcotest.(check bool) "rom range" true
    (ranges.(node).BW.lo = 0 && ranges.(node).BW.hi = 130);
  Alcotest.(check int) "rom width" 8 (BW.width_bits ranges.(node))

let test_qcheck_range_soundness =
  (* every value the pipeline simulator computes lies inside the
     inferred range of its node *)
  QCheck.Test.make ~name:"range soundness (random bodies vs simulator)"
    ~count:60 Helpers.arbitrary_nest_program
    (fun p ->
      let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
      let detail =
        Build.build_detailed ~inner_index:"j"
          nest.Uas_analysis.Loop_nest.inner_body
      in
      let schedule = Uas_dfg.Sched.modulo_schedule detail.Build.d_graph in
      let ranges = BW.node_ranges detail [ ("tab", Array.make 64 0) ] in
      let arrays : (string, Types.value array) Hashtbl.t = Hashtbl.create 4 in
      Hashtbl.replace arrays "src"
        (Array.init 64 (fun k -> Types.VInt ((k * 97) land 1023)));
      Hashtbl.replace arrays "tab"
        (Array.init 64 (fun k -> Types.VInt ((k * 41) land 255)));
      Hashtbl.replace arrays "dst" (Array.make 64 (Types.VInt 0));
      let r =
        Uas_hw.Pipeline_sim.run ~detail ~schedule ~iterations:5
          ~env:(fun n -> if n = "j" then Types.VInt 0 else Types.VInt 42)
          ~arrays
          ~roms:(Hashtbl.create 1)
          ~index:"j" ()
      in
      (* check the live-out scalars against their node ranges *)
      List.for_all
        (fun (base, value) ->
          match
            (value, List.assoc_opt base detail.Build.d_live_out_nodes)
          with
          | Types.VInt v, Some node ->
            let rg = ranges.(node) in
            v >= rg.BW.lo && v <= rg.BW.hi
          | _ -> true)
        r.Uas_hw.Pipeline_sim.sim_live_out)

let test_skipjack_narrower_than_des () =
  (* the Skipjack round is byte/word arithmetic behind masks; DES works
     on 32-bit words — width-aware sizing must separate them *)
  (* entry knowledge the back end would have: the loop index bounds and
     the bus width of the block words (16-bit for skipjack, 32 for DES) *)
  let width_ratio prog roms word_hi =
    let nest = Uas_analysis.Loop_nest.find_by_outer_index prog "i" in
    let detail =
      Build.build_detailed ~inner_index:"j"
        nest.Uas_analysis.Loop_nest.inner_body
    in
    let entry name =
      if name = "j" then Some { BW.lo = 0; hi = 32 }
      else if String.length name >= 1 && (name.[0] = 'w' || name = "l" || name = "r")
      then Some { BW.lo = 0; hi = word_hi }
      else None
    in
    let default =
      Uas_dfg.Graph.total_operator_area detail.Build.d_graph
    in
    let aware = BW.width_aware_operator_area ~entry detail ~roms in
    float_of_int aware /. float_of_int default
  in
  let key = S.Skipjack.random_key ~seed:31 in
  let sj =
    width_ratio
      (S.Skipjack.skipjack_hw ~m:8 ~key)
      [ ("ftable", S.Skipjack.f_table); ("cv", key) ]
      0xffff
  in
  let des =
    width_ratio
      (S.Des.des_hw ~m:8 ~key64:0x0123456789ABCDEFL)
      [ ("spbox", S.Des.spbox_flat);
        ("subkeys", S.Des.key_schedule 0x0123456789ABCDEFL) ]
      0xffffffff
  in
  Alcotest.(check bool)
    (Printf.sprintf "skipjack (%.2f) narrower than DES (%.2f)" sj des)
    true (sj < des);
  Alcotest.(check bool) "skipjack well under full width" true (sj < 0.7)

let suite =
  [ Alcotest.test_case "mask ranges" `Quick test_mask_ranges;
    Alcotest.test_case "rom ranges" `Quick test_rom_ranges;
    QCheck_alcotest.to_alcotest test_qcheck_range_soundness;
    Alcotest.test_case "skipjack narrower than DES" `Quick
      test_skipjack_narrower_than_des ]
