(* The IR substrate: expression algebra, the constant folder, the
   validator and the interpreter. *)

open Uas_ir
module B = Builder

(* --- expression simplification --- *)

let expr_testable =
  Alcotest.testable Pp.pp_expr Expr.equal

let test_simplify_folds () =
  let cases =
    [ (B.(int 2 + int 3), Expr.Int 5);
      (B.(int 10 * int 0), Expr.Int 0);
      (B.(v "x" + int 0), Expr.Var "x");
      (B.(v "x" * int 1), Expr.Var "x");
      (B.(int 0 + v "x"), Expr.Var "x");
      (B.(v "x" - int 0), Expr.Var "x");
      (B.(band (v "x") (int (-1))), Expr.Var "x");
      (B.(bor (v "x") (int 0)), Expr.Var "x");
      (B.(bxor (v "x") (int 0)), Expr.Var "x");
      (B.(shl (v "x") (int 0)), Expr.Var "x");
      (B.(select (int 1) (v "a") (v "b")), Expr.Var "a");
      (B.(select (int 0) (v "a") (v "b")), Expr.Var "b");
      (B.(int 7 % int 3), Expr.Int 1);
      (B.(shl (int 3) (int 4)), Expr.Int 48);
      (B.(int 1 < int 2), Expr.Int 1);
      (B.(flt 1.5 +. flt 2.5), Expr.Float 4.0) ]
  in
  List.iter
    (fun (e, expected) ->
      Alcotest.check expr_testable (Pp.expr_to_string e) expected
        (Expr.simplify e))
    cases

let test_simplify_keeps_loads () =
  (* x * 0 must NOT fold to 0 when x contains a memory load: the load
     has an observable cost and could fault *)
  let e = B.(load "a" (v "i") * int 0) in
  Alcotest.(check bool) "load preserved" true
    (Expr.has_load (Expr.simplify e))

let test_div_by_zero_not_folded () =
  let e = B.(int 1 / int 0) in
  Alcotest.check expr_testable "1/0 untouched" e (Expr.simplify e)

let test_qcheck_simplify_sound =
  (* random integer expressions evaluate the same before and after *)
  let rec gen_expr depth st =
    if depth = 0 then
      if QCheck.Gen.bool st then Expr.Int (QCheck.Gen.int_range (-50) 50 st)
      else Expr.Var [| "x"; "y"; "z" |].(QCheck.Gen.int_range 0 2 st)
    else
      match QCheck.Gen.int_range 0 6 st with
      | 0 -> Expr.Binop (Types.Add, gen_expr (depth - 1) st, gen_expr (depth - 1) st)
      | 1 -> Expr.Binop (Types.Sub, gen_expr (depth - 1) st, gen_expr (depth - 1) st)
      | 2 -> Expr.Binop (Types.Mul, gen_expr (depth - 1) st, gen_expr (depth - 1) st)
      | 3 -> Expr.Binop (Types.BAnd, gen_expr (depth - 1) st, gen_expr (depth - 1) st)
      | 4 -> Expr.Binop (Types.BXor, gen_expr (depth - 1) st, gen_expr (depth - 1) st)
      | 5 -> Expr.Unop (Types.Neg, gen_expr (depth - 1) st)
      | _ -> Expr.Select (gen_expr (depth - 1) st, gen_expr (depth - 1) st,
                          gen_expr (depth - 1) st)
  in
  let arb = QCheck.make (gen_expr 4) ~print:Pp.expr_to_string in
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:200 arb
    (fun e ->
      let p =
        B.program "t"
          ~locals:
            [ ("x", Types.Tint); ("y", Types.Tint); ("z", Types.Tint);
              ("r", Types.Tint) ]
          ~arrays:[ B.output "out" 1 ]
          [ B.("x" <-- int 3); B.("y" <-- int (-7)); B.("z" <-- int 11);
            B.("r" <-- e); B.store "out" (B.int 0) (B.v "r") ]
      in
      let q = { p with Stmt.body = Stmt.map_exprs_list Expr.simplify p.Stmt.body } in
      Interp.outputs_equal
        (Interp.run p (Interp.workload ()))
        (Interp.run q (Interp.workload ())))

(* --- operator metadata --- *)

let test_opinfo_total () =
  (* every operator kind has positive delay/area except moves/consts *)
  let kinds =
    List.map (fun o -> Opinfo.Op_binop o) Types.all_binops
    @ List.map (fun o -> Opinfo.Op_unop o) Types.all_unops
    @ [ Opinfo.Op_load; Opinfo.Op_store; Opinfo.Op_rom; Opinfo.Op_select ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Opinfo.op_kind_name k ^ " delay > 0")
        true
        (Opinfo.default_delay k > 0);
      Alcotest.(check bool)
        (Opinfo.op_kind_name k ^ " area > 0")
        true
        (Opinfo.default_area k > 0))
    kinds;
  Alcotest.(check int) "move delay" 0 (Opinfo.default_delay Opinfo.Op_move);
  Alcotest.(check int) "const area" 0 (Opinfo.default_area Opinfo.Op_const)

(* --- validator --- *)

let valid_base () =
  B.program "ok"
    ~locals:[ ("i", Types.Tint); ("x", Types.Tint) ]
    ~arrays:[ B.input "a" 4; B.output "b" 4 ]
    [ B.for_ "i" ~hi:(B.int 4)
        [ B.("x" <-- load "a" (v "i")); B.store "b" (B.v "i") (B.v "x") ] ]

let test_validator_accepts () =
  Alcotest.(check bool) "valid" true (Validate.is_valid (valid_base ()))

let test_validator_rejects () =
  let base = valid_base () in
  let broken =
    [ ("undeclared scalar",
       { base with Stmt.body = B.("q" <-- int 1) :: base.Stmt.body });
      ("undeclared array",
       { base with Stmt.body = B.store "nope" (B.int 0) (B.int 1) :: base.Stmt.body });
      ("type mismatch",
       { base with Stmt.body = B.("x" <-- flt 1.0) :: base.Stmt.body });
      ("float index",
       { base with
         Stmt.locals = ("f", Types.Tfloat) :: base.Stmt.locals;
         body = B.("x" <-- load "a" (v "f")) :: base.Stmt.body });
      ("bad loop step",
       { base with
         Stmt.body =
           [ Stmt.For
               { index = "i"; lo = B.int 0; hi = B.int 4; step = 0;
                 body = [] } ] });
      ("index assigned in loop",
       { base with
         Stmt.body =
           [ Stmt.For
               { index = "i"; lo = B.int 0; hi = B.int 4; step = 1;
                 body = [ B.("i" <-- int 0) ] } ] });
      ("duplicate scalar",
       { base with Stmt.locals = ("x", Types.Tint) :: base.Stmt.locals });
      ("float condition",
       { base with
         Stmt.locals = ("f", Types.Tfloat) :: base.Stmt.locals;
         body = [ B.if_ (B.v "f") [] [] ] }) ]
  in
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) name false (Validate.is_valid p))
    broken

(* --- interpreter --- *)

let test_interp_basic () =
  let p = valid_base () in
  let w =
    Interp.workload
      ~arrays:[ ("a", Array.map (fun x -> Types.VInt x) [| 5; 6; 7; 8 |]) ]
      ()
  in
  let r = Interp.run p w in
  Alcotest.(check bool) "copied" true
    (List.assoc "b" r.Interp.outputs
    = Array.map (fun x -> Types.VInt x) [| 5; 6; 7; 8 |])

let test_interp_bounds_checked () =
  let p =
    B.program "oob"
      ~locals:[ ("x", Types.Tint) ]
      ~arrays:[ B.output "b" 2 ]
      [ B.store "b" (B.int 5) (B.int 1) ]
  in
  match Interp.run p (Interp.workload ()) with
  | exception Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "expected Stuck"

let test_interp_div_by_zero () =
  let p =
    B.program "div0"
      ~locals:[ ("x", Types.Tint) ]
      ~arrays:[ B.output "b" 1 ]
      [ B.("x" <-- int 1 / int 0); B.store "b" (B.int 0) (B.v "x") ]
  in
  match Interp.run p (Interp.workload ()) with
  | exception Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "expected Stuck"

let test_interp_fuel () =
  let p =
    B.program "big"
      ~locals:[ ("i", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.output "b" 1 ]
      [ B.for_ "i" ~hi:(B.int 1000000) [ B.("x" <-- v "x" + int 1) ] ]
  in
  match Interp.run ~fuel:100 p (Interp.workload ()) with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_interp_loop_exit_value () =
  let p =
    B.program "exitval"
      ~locals:[ ("i", Types.Tint) ]
      ~arrays:[ B.output "b" 1 ]
      [ B.for_ "i" ~lo:(B.int 2) ~hi:(B.int 11) ~step:3 [];
        B.store "b" (B.int 0) (B.v "i") ]
  in
  let r = Interp.run p (Interp.workload ()) in
  (* iterations at 2,5,8 then exit at 11 *)
  Alcotest.(check bool) "exit value 11" true
    ((List.assoc "b" r.Interp.outputs).(0) = Types.VInt 11)

let test_interp_profile () =
  let p = Helpers.fg_loop ~m:4 ~n:8 in
  let r = Interp.run p (Helpers.random_workload p) in
  let reports = Interp.loop_reports r in
  Alcotest.(check int) "two loops profiled" 2 (List.length reports);
  let inner =
    List.find (fun l -> l.Interp.lr_path = "/i/j") reports
  in
  Alcotest.(check int) "inner trips" 32 inner.Interp.lr_trips;
  Alcotest.(check bool) "inner dominates" true (inner.Interp.lr_fraction > 0.5)

(* --- pretty printer --- *)

let test_pp_smoke () =
  let p = Helpers.ch4_loop ~m:4 ~n:2 in
  let s = Pp.program_to_string p in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true
        (Astring_contains.contains ~sub:frag s))
    [ "for (i = 0; i < 4; i++)"; "a = src[i];"; "dst[i] = a;"; "c & 15" ]

let suite =
  [ Alcotest.test_case "simplify folds" `Quick test_simplify_folds;
    Alcotest.test_case "simplify keeps loads" `Quick test_simplify_keeps_loads;
    Alcotest.test_case "div by zero not folded" `Quick
      test_div_by_zero_not_folded;
    QCheck_alcotest.to_alcotest test_qcheck_simplify_sound;
    Alcotest.test_case "opinfo totals" `Quick test_opinfo_total;
    Alcotest.test_case "validator accepts" `Quick test_validator_accepts;
    Alcotest.test_case "validator rejects" `Quick test_validator_rejects;
    Alcotest.test_case "interp basic" `Quick test_interp_basic;
    Alcotest.test_case "interp bounds" `Quick test_interp_bounds_checked;
    Alcotest.test_case "interp div0" `Quick test_interp_div_by_zero;
    Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interp loop exit value" `Quick
      test_interp_loop_exit_value;
    Alcotest.test_case "interp profiling" `Quick test_interp_profile;
    Alcotest.test_case "pretty printer" `Quick test_pp_smoke ]
