(* Coverage for the smaller helpers: expansion naming, exit values,
   front peeling, scheduling details, datapath accounting, float
   operators through the interpreter, and the DOT export. *)

open Uas_ir
module B = Builder
module T = Uas_transform

(* --- Expand --- *)

let test_expand_names () =
  Alcotest.(check string) "stage" "v@s3" (T.Expand.stage_copy "v" 3);
  Alcotest.(check string) "pre" "v@pre0" (T.Expand.pre_copy "v" 0);
  Alcotest.(check string) "post" "acc@post7" (T.Expand.post_copy "acc" 7);
  Alcotest.(check string) "rot" "x@rot" (T.Expand.rot_temp "x");
  Alcotest.(check string) "unroll" "x@u2" (T.Expand.unroll_copy "x" 2)

let test_expand_decl_types () =
  let p =
    B.program "t"
      ~locals:[ ("n", Types.Tint); ("f", Types.Tfloat) ]
      ~arrays:[ B.output "o" 1 ]
      [ B.store "o" (B.int 0) (B.v "n") ]
  in
  let decls =
    T.Expand.copy_decls p
      (Stmt.Sset.of_list [ "n"; "f" ])
      (fun v -> [ T.Expand.stage_copy v 0; T.Expand.stage_copy v 1 ])
  in
  Alcotest.(check int) "four decls" 4 (List.length decls);
  Alcotest.(check (option bool)) "float copy keeps its type" (Some true)
    (Option.map
       (fun t -> t = Types.Tfloat)
       (List.assoc_opt "f@s1" decls))

let test_expand_collision_rejected () =
  let p =
    B.program "t"
      ~locals:[ ("n", Types.Tint); ("n@s0", Types.Tint) ]
      ~arrays:[ B.output "o" 1 ]
      [ B.store "o" (B.int 0) (B.v "n") ]
  in
  match
    T.Expand.copy_decls p
      (Stmt.Sset.singleton "n")
      (fun v -> [ T.Expand.stage_copy v 0 ])
  with
  | exception Types.Ir_error _ -> ()
  | _ -> Alcotest.fail "expected a collision error"

let test_index_exit_value () =
  let check lo hi step expected =
    match T.Expand.index_exit_value ~lo:(B.int lo) ~hi:(B.int hi) ~step with
    | Expr.Int v -> Alcotest.(check int) "exit" expected v
    | e -> Alcotest.failf "expected a constant, got %s" (Pp.expr_to_string e)
  in
  check 0 10 1 10;
  check 0 10 3 12;
  check 2 11 3 11;
  check 5 5 1 5;
  check 7 3 2 7

(* --- Peel (front) --- *)

let test_peel_front_loop () =
  let p =
    B.program "pf"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 8; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "j") + int 1);
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  let l =
    match p.Stmt.body with [ Stmt.For l ] -> l | _ -> assert false
  in
  let copies, rest = T.Peel.peel_front_loop l ~iterations:3 in
  let q = { p with Stmt.body = copies @ [ Stmt.For rest ] } in
  Helpers.assert_equivalent ~msg:"peel front" p q

(* --- scheduling odds and ends --- *)

let test_list_schedule_respects_ports () =
  (* 4 independent loads on a single-port machine serialize *)
  let body =
    List.init 4 (fun t ->
        B.(Printf.sprintf "x%d" t <-- load "a" (v "j" + int t)))
  in
  let g, _ = Uas_dfg.Build.build ~inner_index:"j" body in
  let s =
    Uas_dfg.Sched.list_schedule ~cfg:{ Uas_dfg.Sched.mem_ports = 1 } g
  in
  (* loads issue in distinct cycles *)
  let load_times =
    List.filteri
      (fun i _ ->
        Opinfo.uses_memory_port (Uas_dfg.Graph.node g i).Uas_dfg.Graph.kind)
      (Array.to_list s.Uas_dfg.Sched.s_times)
  in
  Alcotest.(check int) "distinct cycles" (List.length load_times)
    (List.length (List.sort_uniq compare load_times))

let test_empty_graph_schedule () =
  let g = Uas_dfg.Graph.create [] [] in
  let s = Uas_dfg.Sched.modulo_schedule g in
  Alcotest.(check int) "II 1" 1 s.Uas_dfg.Sched.s_ii

(* --- datapath accounting --- *)

let test_register_area_rounding () =
  let t = Uas_hw.Datapath.packed_registers in
  Alcotest.(check int) "0 regs" 0 (Uas_hw.Datapath.register_area t 0);
  Alcotest.(check int) "1 reg rounds up" 1 (Uas_hw.Datapath.register_area t 1);
  Alcotest.(check int) "4 regs fit one row" 1
    (Uas_hw.Datapath.register_area t 4);
  Alcotest.(check int) "5 regs need two" 2
    (Uas_hw.Datapath.register_area t 5)

(* --- float semantics through the interpreter --- *)

let test_float_ops () =
  let p =
    B.program "fl"
      ~locals:
        [ ("x", Types.Tfloat); ("y", Types.Tfloat); ("c", Types.Tint);
          ("n", Types.Tint) ]
      ~arrays:[ B.output ~ty:Types.Tfloat "o" 4; B.output "oi" 1 ]
      [ B.("x" <-- flt 1.5 *. flt 2.0);
        B.("y" <-- v "x" -. flt 0.75);
        B.("c" <-- Expr.Binop (Types.Fcmp_lt, B.v "y", B.v "x"));
        B.("n" <-- f2i (v "y" /. flt 0.5));
        B.store "o" (B.int 0) (B.v "x");
        B.store "o" (B.int 1) (B.v "y");
        B.store "o" (B.int 2) (B.i2f (B.v "c"));
        B.store "o" (B.int 3) (B.fneg (B.v "y"));
        B.store "oi" (B.int 0) (B.v "n") ]
  in
  let r = Interp.run p (Interp.workload ()) in
  let o = List.assoc "o" r.Interp.outputs in
  Alcotest.(check bool) "x" true (o.(0) = Types.VFloat 3.0);
  Alcotest.(check bool) "y" true (o.(1) = Types.VFloat 2.25);
  Alcotest.(check bool) "cmp" true (o.(2) = Types.VFloat 1.0);
  Alcotest.(check bool) "neg" true (o.(3) = Types.VFloat (-2.25));
  Alcotest.(check bool) "f2i" true
    ((List.assoc "oi" r.Interp.outputs).(0) = Types.VInt 4)

(* --- DOT export --- *)

let test_dot_export () =
  let g, _ =
    Uas_dfg.Build.build ~inner_index:"j"
      [ B.("x" <-- load "a" (v "j"));
        B.("y" <-- v "x" + v "y");
        B.store "b" (B.v "j") (B.v "y") ]
  in
  let dot = Uas_dfg.Dot.to_dot ~name:"t" g in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true
        (Astring_contains.contains ~sub:frag dot))
    [ "digraph"; "box3d"; "style=dashed"; "label=\"+\"" ];
  (* dashed backedge for the y recurrence, solid intra edges *)
  Alcotest.(check bool) "ends cleanly" true
    (Astring_contains.contains ~sub:"}\n" dot)

(* --- profiling loop reports --- *)

let test_loop_report_ordering () =
  let p = Helpers.memory_loop ~m:3 ~n:9 in
  let r = Interp.run p (Helpers.random_workload p) in
  match Interp.loop_reports r with
  | first :: rest ->
    List.iter
      (fun lr ->
        Alcotest.(check bool) "sorted by cycles" true
          (lr.Interp.lr_cycles <= first.Interp.lr_cycles))
      rest
  | [] -> Alcotest.fail "no loops profiled"

let suite =
  [ Alcotest.test_case "expand names" `Quick test_expand_names;
    Alcotest.test_case "expand decl types" `Quick test_expand_decl_types;
    Alcotest.test_case "expand collisions" `Quick
      test_expand_collision_rejected;
    Alcotest.test_case "index exit values" `Quick test_index_exit_value;
    Alcotest.test_case "peel front loop" `Quick test_peel_front_loop;
    Alcotest.test_case "list schedule ports" `Quick
      test_list_schedule_respects_ports;
    Alcotest.test_case "empty graph schedule" `Quick
      test_empty_graph_schedule;
    Alcotest.test_case "register area rounding" `Quick
      test_register_area_rounding;
    Alcotest.test_case "float operators" `Quick test_float_ops;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "loop report ordering" `Quick
      test_loop_report_ordering ]
