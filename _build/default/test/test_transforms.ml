(* Correctness of the classic transformations (Chapter 3): unrolling,
   fusion, tiling, peeling, unroll-and-jam, software pipelining and
   if-conversion — all checked by interpreter equivalence, plus the
   structural facts the paper states (e.g. jam multiplies the operator
   count by the unroll factor; jam = tile + fully-unroll). *)

open Uas_ir
module T = Uas_transform
module Loop_nest = Uas_analysis.Loop_nest


(* --- plain unrolling --- *)

let test_unroll_equivalence () =
  List.iter
    (fun (m, n, factor) ->
      let p = Helpers.fg_loop ~m ~n in
      let q = T.Unroll.apply p ~index:"j" ~factor in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "unroll inner m=%d n=%d u=%d" m n factor)
        p q;
      let q2 = T.Unroll.apply p ~index:"i" ~factor in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "unroll outer m=%d n=%d u=%d" m n factor)
        p q2)
    [ (4, 4, 2); (6, 3, 3); (5, 7, 2); (8, 4, 4); (7, 5, 3); (3, 2, 5) ]

let test_full_unroll () =
  let p = Helpers.fg_loop ~m:4 ~n:3 in
  let nest = Helpers.nest_of p "i" in
  let inner =
    Stmt.For
      { index = "j"; lo = nest.Loop_nest.inner_lo; hi = nest.inner_hi;
        step = nest.inner_step; body = nest.inner_body }
  in
  (match inner with
  | Stmt.For l ->
    let flat = T.Unroll.fully_unroll l in
    Alcotest.(check bool) "straight line" true (Stmt.is_straight_line flat)
  | _ -> assert false);
  (* and the program still computes the same after replacing the loop *)
  let q =
    Loop_nest.replace p ~outer_index:"i"
      [ Stmt.For
          { index = "i"; lo = nest.outer_lo; hi = nest.outer_hi;
            step = nest.outer_step;
            body =
              (nest.pre
              @ (match inner with
                | Stmt.For l -> T.Unroll.fully_unroll l
                | _ -> assert false)
              @ nest.post) } ]
  in
  Helpers.assert_equivalent ~msg:"full unroll" p q

(* --- unroll-and-jam --- *)

let test_jam_equivalence () =
  List.iter
    (fun (mk, name) ->
      List.iter
        (fun (m, n, ds) ->
          let p : Stmt.program = mk ~m ~n in
          let nest = Helpers.nest_of p "i" in
          let out = T.Unroll_and_jam.apply p nest ~ds in
          Helpers.assert_equivalent
            ~msg:(Printf.sprintf "jam %s m=%d n=%d ds=%d" name m n ds)
            p out.T.Unroll_and_jam.program)
        [ (4, 3, 2); (8, 5, 4); (6, 2, 3); (5, 3, 2); (9, 2, 4) ])
    [ (Helpers.fg_loop, "fg"); (Helpers.memory_loop, "checksum") ]

let test_jam_multiplies_operators () =
  List.iter
    (fun ds ->
      let p = Helpers.fg_loop ~m:16 ~n:4 in
      let nest = Helpers.nest_of p "i" in
      let before = Stmt.operator_count nest.Loop_nest.inner_body in
      let out = T.Unroll_and_jam.apply p nest ~ds in
      Alcotest.(check int)
        (Printf.sprintf "jam(%d) operators" ds)
        (ds * before)
        (Stmt.operator_count out.T.Unroll_and_jam.new_inner_body))
    [ 1; 2; 4; 8 ]

let test_jam_equals_tile_plus_unroll () =
  (* §3.4: unroll-and-jam = tiling the outer loop with the unroll
     factor and fully unrolling the tile loop.  Behavioural equality of
     the two decompositions. *)
  let p = Helpers.fg_loop ~m:8 ~n:3 in
  let nest = Helpers.nest_of p "i" in
  let jam = (T.Unroll_and_jam.apply p nest ~ds:4).T.Unroll_and_jam.program in
  let tiled = T.Tiling.apply p ~index:"i" ~tile:4 in
  Helpers.assert_equivalent ~msg:"tile decomposition" p tiled;
  Helpers.assert_equivalent ~msg:"jam vs tiled" jam tiled

(* --- tiling --- *)

let test_tiling_equivalence () =
  List.iter
    (fun (m, n, tile) ->
      let p = Helpers.fg_loop ~m ~n in
      let q = T.Tiling.apply p ~index:"i" ~tile in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "tile m=%d n=%d t=%d" m n tile)
        p q)
    [ (8, 3, 2); (9, 2, 3); (7, 4, 2); (16, 2, 4); (5, 5, 8) ]

(* --- peeling --- *)

let test_peel_equivalence () =
  List.iter
    (fun (m, n, k) ->
      let p = Helpers.fg_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      let q, _ = T.Peel.peel_back p nest ~iterations:k in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "peel m=%d n=%d k=%d" m n k)
        p q)
    [ (8, 3, 1); (8, 3, 3); (8, 3, 8); (4, 2, 0) ]

let test_peel_too_many () =
  let p = Helpers.fg_loop ~m:4 ~n:2 in
  let nest = Helpers.nest_of p "i" in
  match T.Peel.peel_back p nest ~iterations:5 with
  | exception Types.Ir_error _ -> ()
  | _ -> Alcotest.fail "expected Ir_error"

(* --- fusion --- *)

let fusable_program m =
  let open Builder in
  program "fusable"
    ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
    ~arrays:[ input "a" m; output "b" m; output "c" m ]
    [ for_ "j" ~hi:(int m) [ store "b" (v "j") (load "a" (v "j") + int 1) ];
      for_ "j" ~hi:(int m) [ store "c" (v "j") (load "a" (v "j") * int 2) ] ]

let test_fusion_legal () =
  let p = fusable_program 8 in
  match T.Fusion.apply_first p with
  | None -> Alcotest.fail "expected fusion to apply"
  | Some q ->
    Helpers.assert_equivalent ~msg:"fusion" p q;
    let loops =
      Stmt.fold_list
        (fun k s -> match s with Stmt.For _ -> k + 1 | _ -> k)
        0 q.Stmt.body
    in
    Alcotest.(check int) "single loop remains" 1 loops

let test_fusion_rejects_flow () =
  (* second loop reads what the first writes at a later iteration *)
  let open Builder in
  let p =
    program "antifuse"
      ~locals:[ ("j", Types.Tint) ]
      ~arrays:[ input "a" 9; output "b" 9; output "c" 9 ]
      [ for_ "j" ~hi:(int 8) [ store "b" (v "j") (load "a" (v "j")) ];
        for_ "j" ~hi:(int 8) [ store "c" (v "j") (load "b" (v "j" + int 1)) ] ]
  in
  Alcotest.(check bool) "fusion refused" true (T.Fusion.apply_first p = None)

(* --- software pipelining --- *)

let independent_loop ~m =
  let open Builder in
  program "indep"
    ~locals:[ ("j", Types.Tint); ("x", Types.Tint); ("y", Types.Tint) ]
    ~arrays:[ input "a" m; output "b" m ]
    [ for_ "j" ~hi:(int m)
        [ ("x" <-- load "a" (v "j"));
          ("y" <-- band (v "x" * v "x" + int 7) (int 1023));
          store "b" (v "j") (bxor (v "y") (v "j")) ] ]

let test_pipeline_sw_equivalence () =
  List.iter
    (fun (m, stages) ->
      let p = independent_loop ~m in
      let q = T.Pipeline_sw.apply p ~index:"j" ~stages in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "swp m=%d k=%d" m stages)
        p q)
    [ (8, 2); (8, 3); (9, 2); (12, 3); (6, 2) ]

let test_pipeline_sw_rejects_recurrence () =
  let p = Helpers.fg_loop ~m:4 ~n:8 in
  (* the fg inner loop has the a->b->a recurrence *)
  match T.Pipeline_sw.apply p ~index:"j" ~stages:2 with
  | exception T.Pipeline_sw.Pipeline_error (T.Pipeline_sw.Carried_scalar _) -> ()
  | _ -> Alcotest.fail "expected Carried_scalar"

(* --- if-conversion --- *)

let branchy_program ~m =
  let open Builder in
  program "branchy"
    ~locals:
      [ ("j", Types.Tint); ("x", Types.Tint); ("y", Types.Tint);
        ("z", Types.Tint) ]
    ~arrays:[ input "a" m; output "b" m ]
    [ for_ "j" ~hi:(int m)
        [ ("x" <-- load "a" (v "j"));
          if_ (v "x" > int 100)
            [ ("y" <-- v "x" - int 100); ("z" <-- v "y" * int 2) ]
            [ ("y" <-- v "x" + int 1); ("z" <-- v "y") ];
          store "b" (v "j") (v "z" + v "y") ] ]

let test_ifconv_equivalence () =
  let p = branchy_program ~m:16 in
  let q = T.Ifconv.apply p in
  Helpers.assert_equivalent ~msg:"if-conversion" p q;
  (* the loop body must now be a single basic block *)
  let straight =
    Stmt.fold_list
      (fun acc s ->
        match s with
        | Stmt.For l -> acc && Stmt.is_straight_line l.body
        | _ -> acc)
      true q.Stmt.body
  in
  Alcotest.(check bool) "straight-line after ifconv" true straight

let test_ifconv_enables_squash () =
  let p = let open Builder in
    program "branchy_nest"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint);
          ("y", Types.Tint) ]
      ~arrays:[ input "a" 8; output "b" 8 ]
      [ for_ "i" ~hi:(int 8)
          [ ("x" <-- load "a" (v "i"));
            for_ "j" ~hi:(int 5)
              [ if_ (band (v "x") (int 1) == int 1)
                  [ ("y" <-- v "x" * int 3 + int 1) ]
                  [ ("y" <-- shr (v "x") (int 1)) ];
                ("x" <-- band (v "y") (int 4095)) ];
            store "b" (v "i") (v "x") ] ]
  in
  let nest0 = Helpers.nest_of p "i" in
  Alcotest.(check bool) "squash illegal before ifconv" false
    (Uas_analysis.Legality.check nest0 ~ds:2).Uas_analysis.Legality.ok;
  let q = T.Ifconv.apply p in
  let nest = Helpers.nest_of q "i" in
  let out = T.Squash.apply q nest ~ds:2 in
  Helpers.assert_equivalent ~msg:"ifconv+squash" p out.T.Squash.program

(* --- scalar optimizations --- *)

let test_scalar_opts_equivalence () =
  List.iter
    (fun (mk, name) ->
      let p : Stmt.program = mk ~m:6 ~n:4 in
      let q = T.Scalar_opts.cleanup p in
      Helpers.assert_equivalent ~msg:("cleanup " ^ name) p q)
    [ (Helpers.fg_loop, "fg"); (Helpers.memory_loop, "checksum");
      ((fun ~m ~n -> Helpers.ch4_loop ~m ~n), "ch4") ]

let test_strength_reduction () =
  let open Builder in
  let p =
    program "sr"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ input "a" 8; output "b" 8 ]
      [ for_ "j" ~hi:(int 8)
          [ ("x" <-- load "a" (v "j") * int 8);
            store "b" (v "j") (v "x" + v "j" * int 4) ] ]
  in
  let q = T.Scalar_opts.strength_reduce p in
  Helpers.assert_equivalent ~msg:"strength reduction" p q;
  (* no multiplications survive *)
  let muls =
    Stmt.fold_exprs
      (fun acc e ->
        Expr.fold
          (fun acc e ->
            match e with
            | Expr.Binop (Types.Mul, _, _) -> Stdlib.( + ) acc 1
            | _ -> acc)
          acc e)
      0 q.Stmt.body
  in
  Alcotest.(check int) "multiplies eliminated" 0 muls

let test_dce () =
  let open Builder in
  let p =
    program "dce"
      ~locals:[ ("x", Types.Tint); ("y", Types.Tint); ("z", Types.Tint) ]
      ~arrays:[ input "a" 4; output "b" 4 ]
      [ ("x" <-- load "a" (int 0));
        ("y" <-- v "x" + int 1);  (* dead *)
        ("z" <-- v "x" * int 2);
        store "b" (int 0) (v "z") ]
  in
  let q =
    T.Scalar_opts.dead_code ~live_out:Stmt.Sset.empty p
  in
  Helpers.assert_equivalent ~msg:"dce" p q;
  Alcotest.(check bool) "dead assign removed" true
    (Stdlib.( < ) (Stmt.size q.Stmt.body) (Stmt.size p.Stmt.body))

(* --- combined jam + squash (§2: "combine both techniques") --- *)

let test_combined_jam_then_squash () =
  List.iter
    (fun (m, n, jam_ds, squash_ds) ->
      let p = Helpers.fg_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      let jammed = (T.Unroll_and_jam.apply p nest ~ds:jam_ds).T.Unroll_and_jam.program in
      let nest2 = Helpers.nest_of jammed "i" in
      let out = T.Squash.apply jammed nest2 ~ds:squash_ds in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "jam(%d)+squash(%d) m=%d n=%d" jam_ds squash_ds m n)
        p out.T.Squash.program)
    [ (8, 3, 2, 2); (16, 2, 2, 4); (8, 4, 4, 2) ]

let test_qcheck_jam =
  QCheck.Test.make ~name:"jam equivalence (random sizes/factors)" ~count:50
    QCheck.(triple (int_range 1 10) (int_range 1 6) (int_range 1 5))
    (fun (m, n, ds) ->
      let p = Helpers.fg_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      let out = T.Unroll_and_jam.apply p nest ~ds in
      let w = Helpers.random_workload ~seed:(m + (7 * n) + (31 * ds)) p in
      Interp.outputs_equal (Interp.run p w)
        (Interp.run out.T.Unroll_and_jam.program w))

let test_qcheck_tile_unroll =
  QCheck.Test.make ~name:"tiling/unrolling equivalence (random)" ~count:50
    QCheck.(quad (int_range 1 12) (int_range 1 5) (int_range 1 5) bool)
    (fun (m, n, k, use_tile) ->
      let p = Helpers.fg_loop ~m ~n in
      let q =
        if use_tile then T.Tiling.apply p ~index:"i" ~tile:k
        else T.Unroll.apply p ~index:"i" ~factor:k
      in
      let w = Helpers.random_workload ~seed:(m + n + k) p in
      Interp.outputs_equal (Interp.run p w) (Interp.run q w))

let suite =
  [ Alcotest.test_case "unroll equivalence" `Quick test_unroll_equivalence;
    Alcotest.test_case "full unroll" `Quick test_full_unroll;
    Alcotest.test_case "jam equivalence" `Quick test_jam_equivalence;
    Alcotest.test_case "jam multiplies operators" `Quick
      test_jam_multiplies_operators;
    Alcotest.test_case "jam = tile + unroll" `Quick
      test_jam_equals_tile_plus_unroll;
    Alcotest.test_case "tiling equivalence" `Quick test_tiling_equivalence;
    Alcotest.test_case "peel equivalence" `Quick test_peel_equivalence;
    Alcotest.test_case "peel too many" `Quick test_peel_too_many;
    Alcotest.test_case "fusion legal" `Quick test_fusion_legal;
    Alcotest.test_case "fusion rejects flow" `Quick test_fusion_rejects_flow;
    Alcotest.test_case "software pipelining" `Quick
      test_pipeline_sw_equivalence;
    Alcotest.test_case "swp rejects recurrence" `Quick
      test_pipeline_sw_rejects_recurrence;
    Alcotest.test_case "if-conversion" `Quick test_ifconv_equivalence;
    Alcotest.test_case "ifconv enables squash" `Quick
      test_ifconv_enables_squash;
    Alcotest.test_case "scalar opts" `Quick test_scalar_opts_equivalence;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
    Alcotest.test_case "dead code elimination" `Quick test_dce;
    Alcotest.test_case "combined jam+squash" `Quick
      test_combined_jam_then_squash;
    QCheck_alcotest.to_alcotest test_qcheck_jam;
    QCheck_alcotest.to_alcotest test_qcheck_tile_unroll ]
