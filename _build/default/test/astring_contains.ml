(* Minimal substring search for test assertions (no external deps). *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i =
      if i + m > n then false
      else if String.sub s i m = sub then true
      else go (i + 1)
    in
    go 0
