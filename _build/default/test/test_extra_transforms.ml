(* The enabling/auxiliary transformations added beyond the core set:
   loop interchange, distribution, invariant code motion and
   scalarization — equivalence plus the structural facts each one
   promises. *)

open Uas_ir
module T = Uas_transform
module B = Builder

(* --- interchange --- *)

let matrix_copy ~m ~n =
  B.program "mcopy"
    ~locals:[ ("i", Types.Tint); ("j", Types.Tint) ]
    ~arrays:[ B.input "a" (m * n); B.output "b" (m * n) ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.for_ "j" ~hi:(B.int n)
            [ B.store "b"
                B.((v "i" * int n) + v "j")
                (B.load "a" B.((v "i" * int n) + v "j")) ] ] ]

let test_interchange_equivalence () =
  let p = matrix_copy ~m:4 ~n:6 in
  let q = T.Interchange.apply p ~outer_index:"i" in
  Helpers.assert_equivalent ~msg:"interchange" p q;
  (* the loops really did swap *)
  (match q.Stmt.body with
  | [ Stmt.For l ] -> Alcotest.(check string) "outer is j" "j" l.Stmt.index
  | _ -> Alcotest.fail "unexpected shape")

let test_interchange_rejects_imperfect () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  match T.Interchange.apply p ~outer_index:"i" with
  | exception T.Interchange.Interchange_error T.Interchange.Not_perfect -> ()
  | _ -> Alcotest.fail "expected Not_perfect"

let test_interchange_rejects_carried () =
  (* b[i][j] = b[i-1][j] + 1 carries along i: interchange would be
     illegal if a dependence were also carried along j; our checker is
     conservative and rejects any carried dependence *)
  let n = 5 in
  let p =
    B.program "carried"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint) ]
      ~arrays:[ B.local_array "b" (n * n); B.output "o" (n * n) ]
      [ B.for_ "i" ~lo:(B.int 1) ~hi:(B.int n)
          [ B.for_ "j" ~hi:(B.int n)
              [ B.store "b"
                  B.((v "i" * int n) + v "j")
                  B.(load "b" (((v "i" - int 1) * int n) + v "j") + int 1) ] ]
      ]
  in
  match T.Interchange.apply p ~outer_index:"i" with
  | exception T.Interchange.Interchange_error (T.Interchange.Carried_dependence _)
    -> ()
  | _ -> Alcotest.fail "expected Carried_dependence"

(* --- distribution --- *)

let test_distribute_equivalence () =
  let m = 8 in
  let p =
    B.program "dist"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" m; B.output "b" m; B.output "c" m ]
      [ B.for_ "j" ~hi:(B.int m)
          [ B.store "b" (B.v "j") B.(load "a" (v "j") + int 1);
            B.store "c" (B.v "j") B.(load "a" (v "j") * int 3) ] ]
  in
  let q = T.Distribute.apply p ~index:"j" ~cut:1 in
  Helpers.assert_equivalent ~msg:"distribute" p q;
  let loops =
    Stmt.fold_list
      (fun k s -> match s with Stmt.For _ -> k + 1 | _ -> k)
      0 q.Stmt.body
  in
  Alcotest.(check int) "two loops" 2 loops

let test_distribute_then_fuse_roundtrip () =
  let m = 8 in
  let p =
    B.program "rt"
      ~locals:[ ("j", Types.Tint) ]
      ~arrays:[ B.input "a" m; B.output "b" m; B.output "c" m ]
      [ B.for_ "j" ~hi:(B.int m)
          [ B.store "b" (B.v "j") (B.load "a" (B.v "j"));
            B.store "c" (B.v "j") (B.load "a" (B.v "j")) ] ]
  in
  let q = T.Distribute.apply p ~index:"j" ~cut:1 in
  match T.Fusion.apply_first q with
  | None -> Alcotest.fail "fusion should re-merge"
  | Some r ->
    Helpers.assert_equivalent ~msg:"distribute+fuse" p r;
    Alcotest.(check bool) "same program" true
      (Stmt.equal_list p.Stmt.body r.Stmt.body)

let test_distribute_rejects_scalar_flow () =
  let p =
    B.program "flow"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 8; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "j"));
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  match T.Distribute.apply p ~index:"j" ~cut:1 with
  | exception T.Distribute.Distribute_error (T.Distribute.Scalar_flow "x") -> ()
  | exception T.Distribute.Distribute_error _ -> ()
  | _ -> Alcotest.fail "expected Scalar_flow"

let test_distribute_rejects_backward_array_flow () =
  (* the second statement's write at iteration j feeds the first
     statement's read at iteration j+1: distribution would run all the
     reads before any write and observe stale values *)
  let p =
    B.program "backflow"
      ~locals:[ ("j", Types.Tint) ]
      ~arrays:[ B.local_array "a" 10; B.output "b" 10 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.store "b" (B.v "j") (B.load "a" (B.v "j"));
            B.store "a" B.(v "j" + int 1) (B.v "j") ] ]
  in
  match T.Distribute.apply p ~index:"j" ~cut:1 with
  | exception T.Distribute.Distribute_error (T.Distribute.Array_flow _) -> ()
  | _ -> Alcotest.fail "expected Array_flow"

(* --- hoisting --- *)

let test_hoist_equivalence_and_motion () =
  let p =
    B.program "hoist"
      ~params:[ ("k", Types.Tint) ]
      ~locals:
        [ ("j", Types.Tint); ("c", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 8; B.input "t" 4; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("c" <-- load "t" (int 2) * v "k");  (* invariant *)
            B.("x" <-- load "a" (v "j") + v "c");
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  let q = T.Hoist.apply p in
  Helpers.assert_equivalent ~msg:"hoist" p q;
  (* the invariant assignment left the loop *)
  let in_loop =
    Stmt.fold_list
      (fun acc s ->
        match s with Stmt.For l -> acc + List.length l.Stmt.body | _ -> acc)
      0 q.Stmt.body
  in
  Alcotest.(check int) "loop body shrank" 2 in_loop;
  (* and the loop's memory traffic went down *)
  let mem stmts = Stmt.memory_reference_count stmts in
  let loop_mem prog =
    Stmt.fold_list
      (fun acc s -> match s with Stmt.For l -> acc + mem l.Stmt.body | _ -> acc)
      0 prog.Stmt.body
  in
  Alcotest.(check bool) "fewer loads inside" true (loop_mem q < loop_mem p)

let test_hoist_keeps_variant () =
  let p =
    B.program "novariant"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 8; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "j"));  (* depends on j *)
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  let q = T.Hoist.apply p in
  Alcotest.(check bool) "unchanged" true
    (Stmt.equal_list p.Stmt.body q.Stmt.body)

(* --- scalarization --- *)

let test_scalarize_equivalence () =
  let p =
    B.program "scal"
      ~params:[ ("base", Types.Tint) ]
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 8; B.input "coef" 4; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "j") * load "coef" (int 1) + load "coef" (int 1));
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  let q = T.Scalarize.apply p ~index:"j" in
  Helpers.assert_equivalent ~msg:"scalarize" p q;
  (* two occurrences of coef[1] collapsed into one pre-loop load *)
  let loop_mem prog =
    Stmt.fold_list
      (fun acc s ->
        match s with
        | Stmt.For l -> acc + Stmt.memory_reference_count l.Stmt.body
        | _ -> acc)
      0 prog.Stmt.body
  in
  Alcotest.(check int) "loads in loop" 2 (loop_mem q)

let test_scalarize_skips_stored_arrays () =
  let p =
    B.program "scal2"
      ~locals:[ ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.local_array "buf" 8; B.output "b" 8 ]
      [ B.for_ "j" ~hi:(B.int 8)
          [ B.("x" <-- load "buf" (int 0));
            B.store "buf" (B.int 0) B.(v "x" + int 1);
            B.store "b" (B.v "j") (B.v "x") ] ]
  in
  let q = T.Scalarize.apply p ~index:"j" in
  Helpers.assert_equivalent ~msg:"scalarize stored" p q;
  Alcotest.(check bool) "unchanged" true
    (Stmt.equal_list p.Stmt.body q.Stmt.body)

let test_scalarize_improves_skipjack () =
  (* the Skipjack-mem F-table index varies, but hoisting+scalarizing a
     synthetic invariant key fetch shows the ResMII drop *)
  let p =
    B.program "keyload"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("w", Types.Tint);
          ("k0", Types.Tint) ]
      ~arrays:[ B.input "data" 8; B.input "key" 4; B.output "out" 8 ]
      [ B.for_ "i" ~hi:(B.int 8)
          [ B.("w" <-- load "data" (v "i"));
            B.for_ "j" ~hi:(B.int 4)
              [ B.("w" <-- bxor (v "w" + load "key" (int 3)) (int 99)) ];
            B.store "out" (B.v "i") (B.v "w") ] ]
  in
  let q = T.Scalarize.apply p ~index:"j" in
  Helpers.assert_equivalent ~msg:"scalarize key" p q;
  let kernel prog =
    let nest = Uas_analysis.Loop_nest.find_by_outer_index prog "i" in
    let g, _ = Uas_dfg.Build.build ~inner_index:"j" nest.Uas_analysis.Loop_nest.inner_body in
    Uas_dfg.Graph.memory_op_count g
  in
  Alcotest.(check int) "memory refs before" 1 (kernel p);
  Alcotest.(check int) "memory refs after" 0 (kernel q)

let base_suite =
  [ Alcotest.test_case "interchange equivalence" `Quick
      test_interchange_equivalence;
    Alcotest.test_case "interchange rejects imperfect" `Quick
      test_interchange_rejects_imperfect;
    Alcotest.test_case "interchange rejects carried" `Quick
      test_interchange_rejects_carried;
    Alcotest.test_case "distribute equivalence" `Quick
      test_distribute_equivalence;
    Alcotest.test_case "distribute+fuse roundtrip" `Quick
      test_distribute_then_fuse_roundtrip;
    Alcotest.test_case "distribute rejects scalar flow" `Quick
      test_distribute_rejects_scalar_flow;
    Alcotest.test_case "distribute rejects array backflow" `Quick
      test_distribute_rejects_backward_array_flow;
    Alcotest.test_case "hoist equivalence" `Quick
      test_hoist_equivalence_and_motion;
    Alcotest.test_case "hoist keeps variant" `Quick test_hoist_keeps_variant;
    Alcotest.test_case "scalarize equivalence" `Quick
      test_scalarize_equivalence;
    Alcotest.test_case "scalarize skips stored arrays" `Quick
      test_scalarize_skips_stored_arrays;
    Alcotest.test_case "scalarize removes kernel loads" `Quick
      test_scalarize_improves_skipjack ]

(* --- flattening --- *)

let test_flatten_equivalence () =
  List.iter
    (fun (m, n) ->
      let p = matrix_copy ~m ~n in
      let q = T.Flatten.apply p ~outer_index:"i" in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "flatten m=%d n=%d" m n)
        p q;
      (* a single loop remains *)
      let loops =
        Stmt.fold_list
          (fun k s -> match s with Stmt.For _ -> k + 1 | _ -> k)
          0 q.Stmt.body
      in
      Alcotest.(check int) "one loop" 1 loops)
    [ (4, 6); (1, 5); (5, 1); (3, 3) ]

let test_flatten_rejects_imperfect () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  match T.Flatten.apply p ~outer_index:"i" with
  | exception T.Flatten.Flatten_error T.Flatten.Not_perfect -> ()
  | _ -> Alcotest.fail "expected Not_perfect"

let test_flatten_concentrates_time () =
  (* the flattening motivation in §5.2: all execution time lands in one
     loop *)
  let p = matrix_copy ~m:6 ~n:8 in
  let q = T.Flatten.apply p ~outer_index:"i" in
  let r = Interp.run q (Helpers.random_workload q) in
  let reports = Interp.loop_reports r in
  Alcotest.(check int) "one profiled loop" 1 (List.length reports);
  Alcotest.(check bool) "it dominates" true
    ((List.hd reports).Interp.lr_fraction > 0.95)

let extra_suite_flatten =
  [ Alcotest.test_case "flatten equivalence" `Quick test_flatten_equivalence;
    Alcotest.test_case "flatten rejects imperfect" `Quick
      test_flatten_rejects_imperfect;
    Alcotest.test_case "flatten concentrates time" `Quick
      test_flatten_concentrates_time ]

let suite = base_suite @ extra_suite_flatten
