test/test_misc.ml: Alcotest Array Astring_contains Builder Expr Helpers Interp List Opinfo Option Pp Printf Stmt Types Uas_dfg Uas_hw Uas_ir Uas_transform
