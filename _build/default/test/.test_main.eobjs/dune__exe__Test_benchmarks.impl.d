test/test_benchmarks.ml: Alcotest Array Fmt List Uas_bench_suite Uas_core Uas_ir Validate
