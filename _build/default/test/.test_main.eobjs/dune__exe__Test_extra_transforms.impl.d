test/test_extra_transforms.ml: Alcotest Builder Helpers Interp List Printf Stmt Types Uas_analysis Uas_dfg Uas_ir Uas_transform
