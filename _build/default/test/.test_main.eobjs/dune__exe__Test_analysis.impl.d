test/test_analysis.ml: Alcotest Array Builder Expr Fmt Hashtbl Helpers List Pp QCheck QCheck_alcotest Stmt String Types Uas_analysis Uas_ir Uas_transform
