test/helpers.ml: Alcotest Array Builder Fmt Interp List Pp QCheck Random Stmt Types Uas_analysis Uas_ir Validate
