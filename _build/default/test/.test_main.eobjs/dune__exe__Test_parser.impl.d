test/test_parser.ml: Alcotest Array Builder Expr Fmt Interp List Parser Pp QCheck QCheck_alcotest Stmt String Types Uas_analysis Uas_bench_suite Uas_ir Uas_transform Validate
