test/test_squash.ml: Alcotest Builder Helpers Interp List Printf QCheck QCheck_alcotest Stmt String Types Uas_analysis Uas_ir Uas_transform
