test/test_goldens.ml: Alcotest List Uas_bench_suite Uas_core Uas_hw
