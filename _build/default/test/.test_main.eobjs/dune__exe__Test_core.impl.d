test/test_core.ml: Alcotest Lazy List Uas_bench_suite Uas_core Uas_hw Uas_ir
