test/test_hw.ml: Alcotest Hashtbl Lazy List Printf Uas_bench_suite Uas_core Uas_hw
