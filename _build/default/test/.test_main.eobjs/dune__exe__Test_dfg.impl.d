test/test_dfg.ml: Alcotest Array Builder List Pp Printf QCheck QCheck_alcotest Stdlib Stmt String Types Uas_dfg Uas_ir
