test/test_decrypt.ml: Alcotest Array Interp List Printf Types Uas_analysis Uas_bench_suite Uas_ir Uas_transform
