test/test_pipeline_sim.ml: Alcotest Array Expr Fmt Hashtbl Helpers Interp List QCheck QCheck_alcotest Stmt String Types Uas_analysis Uas_bench_suite Uas_dfg Uas_hw Uas_ir Uas_transform
