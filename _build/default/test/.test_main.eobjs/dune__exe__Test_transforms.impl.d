test/test_transforms.ml: Alcotest Builder Expr Helpers Interp List Printf QCheck QCheck_alcotest Stdlib Stmt Types Uas_analysis Uas_ir Uas_transform
