test/test_bitwidth.ml: Alcotest Array Builder Hashtbl Helpers List Printf QCheck QCheck_alcotest String Types Uas_analysis Uas_bench_suite Uas_dfg Uas_hw Uas_ir
