test/test_ir.ml: Alcotest Array Astring_contains Builder Expr Helpers Interp List Opinfo Pp QCheck QCheck_alcotest Stmt Types Uas_ir Validate
