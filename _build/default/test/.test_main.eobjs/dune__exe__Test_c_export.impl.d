test/test_c_export.ml: Alcotest Array Builder C_export Filename Fun Helpers In_channel Interp Lazy List Printf Stmt String Sys Types Uas_analysis Uas_bench_suite Uas_ir Uas_transform
