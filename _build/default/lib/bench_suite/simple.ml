(* The motivating kernels of Chapters 2 and 4, kept as library citizens
   so the examples, tests and figure benches all share one definition. *)

open Uas_ir
module B = Builder

(** Figure 2.1: the f/g nested loop.  [f] and [g] are single-cycle ALU
    operations (an add-mask and an xor-double), preserving the shape —
    a two-operator recurrence that forbids inner-loop pipelining. *)
let fg_loop ~m ~n : Stmt.program =
  B.program "fg_loop"
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
        ("b", Types.Tint) ]
    ~arrays:[ B.input "data_in" m; B.output "data_out" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("a" <-- load "data_in" (v "i"));
          B.for_ "j" ~hi:(B.int n)
            [ B.("b" <-- band (v "a" + int 3) (int 255));
              B.("a" <-- bxor (v "b" + v "b") (int 21)) ];
          B.store "data_out" (B.v "i") (B.v "a") ]
    ]

(** Host reference for [fg_loop]. *)
let fg_reference ~n (input : int array) : int array =
  Array.map
    (fun x0 ->
      let a = ref x0 in
      for _ = 1 to n do
        let b = (!a + 3) land 255 in
        a := (b + b) lxor 21
      done;
      !a)
    input

(** Figure 4.1: the kernel used to illustrate DFG construction and
    stage assignment; uses both indices and an invariant scalar [k]. *)
let ch4_loop ~m ~n : Stmt.program =
  B.program "ch4_loop"
    ~params:[ ("k", Types.Tint) ]
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
        ("b", Types.Tint); ("c", Types.Tint) ]
    ~arrays:[ B.input "src" m; B.output "dst" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("a" <-- load "src" (v "i"));
          B.for_ "j" ~hi:(B.int n)
            [ B.("b" <-- v "a" + v "i");
              B.("c" <-- v "b" - v "j");
              B.("a" <-- band (v "c") (int 15) * v "k") ];
          B.store "dst" (B.v "i") (B.v "a") ]
    ]

(** A table-driven stream checksum: a nest with inner-loop memory
    references for exercising the memory-port pressure paths. *)
let checksum_loop ~m ~n : Stmt.program =
  B.program "checksum_loop"
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("acc", Types.Tint);
        ("t", Types.Tint) ]
    ~arrays:[ B.input "src" (m * n); B.input "tab" 256; B.output "dst" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("acc" <-- int 0);
          B.for_ "j" ~hi:(B.int n)
            [ B.("t" <-- load "src" ((v "i" * int n) + v "j"));
              B.("acc" <--
                 v "acc" + load "tab" (band (bxor (v "t") (v "acc")) (int 255))) ];
          B.store "dst" (B.v "i") (B.v "acc") ]
    ]
