(* The DES block cipher (FIPS 46), the paper's second cryptographic
   benchmark (§6.2).

   The hardware kernel is the 16-round Feistel core on the two 32-bit
   halves; the initial and final permutations are pure wiring (zero
   gates in hardware) and are applied by the host-side helpers, exactly
   as the Nimble flow would leave them outside the datapath.  The round
   function uses the classic combined SP-boxes (S-box output already
   run through the P permutation and positioned), so each round costs 8
   table lookups plus one subkey fetch — in memory for [mem], in local
   ROM for [hw] (Table 6.1's "SBOX implemented in hardware").

   A pure-OCaml host implementation provides reference outputs and the
   textbook known-answer test. *)

open Uas_ir
module B = Builder

(* --- the FIPS tables --- *)

let sbox =
  [| (* S1 *)
     [| 14;4;13;1;2;15;11;8;3;10;6;12;5;9;0;7;
        0;15;7;4;14;2;13;1;10;6;12;11;9;5;3;8;
        4;1;14;8;13;6;2;11;15;12;9;7;3;10;5;0;
        15;12;8;2;4;9;1;7;5;11;3;14;10;0;6;13 |];
     (* S2 *)
     [| 15;1;8;14;6;11;3;4;9;7;2;13;12;0;5;10;
        3;13;4;7;15;2;8;14;12;0;1;10;6;9;11;5;
        0;14;7;11;10;4;13;1;5;8;12;6;9;3;2;15;
        13;8;10;1;3;15;4;2;11;6;7;12;0;5;14;9 |];
     (* S3 *)
     [| 10;0;9;14;6;3;15;5;1;13;12;7;11;4;2;8;
        13;7;0;9;3;4;6;10;2;8;5;14;12;11;15;1;
        13;6;4;9;8;15;3;0;11;1;2;12;5;10;14;7;
        1;10;13;0;6;9;8;7;4;15;14;3;11;5;2;12 |];
     (* S4 *)
     [| 7;13;14;3;0;6;9;10;1;2;8;5;11;12;4;15;
        13;8;11;5;6;15;0;3;4;7;2;12;1;10;14;9;
        10;6;9;0;12;11;7;13;15;1;3;14;5;2;8;4;
        3;15;0;6;10;1;13;8;9;4;5;11;12;7;2;14 |];
     (* S5 *)
     [| 2;12;4;1;7;10;11;6;8;5;3;15;13;0;14;9;
        14;11;2;12;4;7;13;1;5;0;15;10;3;9;8;6;
        4;2;1;11;10;13;7;8;15;9;12;5;6;3;0;14;
        11;8;12;7;1;14;2;13;6;15;0;9;10;4;5;3 |];
     (* S6 *)
     [| 12;1;10;15;9;2;6;8;0;13;3;4;14;7;5;11;
        10;15;4;2;7;12;9;5;6;1;13;14;0;11;3;8;
        9;14;15;5;2;8;12;3;7;0;4;10;1;13;11;6;
        4;3;2;12;9;5;15;10;11;14;1;7;6;0;8;13 |];
     (* S7 *)
     [| 4;11;2;14;15;0;8;13;3;12;9;7;5;10;6;1;
        13;0;11;7;4;9;1;10;14;3;5;12;2;15;8;6;
        1;4;11;13;12;3;7;14;10;15;6;8;0;5;9;2;
        6;11;13;8;1;4;10;7;9;5;0;15;14;2;3;12 |];
     (* S8 *)
     [| 13;2;8;4;6;15;11;1;10;9;3;14;5;0;12;7;
        1;15;13;8;10;3;7;4;12;5;6;11;0;14;9;2;
        7;11;4;1;9;12;14;2;0;6;10;13;15;3;5;8;
        2;1;14;7;4;10;8;13;15;12;9;0;3;5;6;11 |] |]

let p_table =
  [| 16;7;20;21;29;12;28;17;1;15;23;26;5;18;31;10;
     2;8;24;14;32;27;3;9;19;13;30;6;22;11;4;25 |]

let e_table =
  [| 32;1;2;3;4;5;4;5;6;7;8;9;8;9;10;11;12;13;12;13;14;15;16;17;
     16;17;18;19;20;21;20;21;22;23;24;25;24;25;26;27;28;29;28;29;30;31;32;1 |]

let pc1_table =
  [| 57;49;41;33;25;17;9;1;58;50;42;34;26;18;10;2;59;51;43;35;27;19;11;3;
     60;52;44;36;63;55;47;39;31;23;15;7;62;54;46;38;30;22;14;6;61;53;45;37;
     29;21;13;5;28;20;12;4 |]

let pc2_table =
  [| 14;17;11;24;1;5;3;28;15;6;21;10;23;19;12;4;26;8;16;7;27;20;13;2;
     41;52;31;37;47;55;30;40;51;45;33;48;44;49;39;56;34;53;46;42;50;36;29;32 |]

let ip_table =
  [| 58;50;42;34;26;18;10;2;60;52;44;36;28;20;12;4;
     62;54;46;38;30;22;14;6;64;56;48;40;32;24;16;8;
     57;49;41;33;25;17;9;1;59;51;43;35;27;19;11;3;
     61;53;45;37;29;21;13;5;63;55;47;39;31;23;15;7 |]

let fp_table =
  [| 40;8;48;16;56;24;64;32;39;7;47;15;55;23;63;31;
     38;6;46;14;54;22;62;30;37;5;45;13;53;21;61;29;
     36;4;44;12;52;20;60;28;35;3;43;11;51;19;59;27;
     34;2;42;10;50;18;58;26;33;1;41;9;49;17;57;25 |]

let key_shifts = [| 1;1;2;2;2;2;2;2;1;2;2;2;2;2;2;1 |]

(* --- host reference implementation --- *)

(* Select bits of [x] (bit 1 = MSB of an [in_width]-bit word) per
   [table], producing a (length table)-bit word.  Results are at most
   56 bits, so a native int holds them; 64-bit inputs use the Int64
   variants below (OCaml native ints are 63-bit). *)
let permute ~in_width table x =
  Array.fold_left
    (fun acc pos -> (acc lsl 1) lor ((x lsr (in_width - pos)) land 1))
    0 table

let permute64 table (x : int64) =
  Array.fold_left
    (fun acc pos ->
      (acc lsl 1)
      lor Int64.(to_int (logand (shift_right_logical x (64 - pos)) 1L)))
    0 table

let permute64_wide table (x : int64) : int64 =
  Array.fold_left
    (fun acc pos ->
      Int64.logor (Int64.shift_left acc 1)
        Int64.(logand (shift_right_logical x (64 - pos)) 1L))
    0L table

(* S-box lookup with the FIPS row/column convention: for 6-bit input
   b1..b6, row = b1b6 and column = b2b3b4b5. *)
let sbox_lookup b v =
  let row = (((v lsr 5) land 1) lsl 1) lor (v land 1) in
  let col = (v lsr 1) land 0xf in
  sbox.(b).((row * 16) + col)

(** The combined SP-boxes: S-box output placed at its nibble and run
    through P.  [spbox.(b).(v)] is a 32-bit word. *)
let spbox : int array array =
  Array.init 8 (fun b ->
      Array.init 64 (fun v ->
          permute ~in_width:32 p_table (sbox_lookup b v lsl (28 - (4 * b)))))

(** 16 48-bit subkeys from a 64-bit key (parity bits ignored by PC1). *)
let key_schedule (key64 : int64) : int array =
  let cd0 = permute64 pc1_table key64 in
  let c0 = (cd0 lsr 28) land 0xfffffff and d0 = cd0 land 0xfffffff in
  let rot28 x n = ((x lsl n) lor (x lsr (28 - n))) land 0xfffffff in
  let c = ref c0 and d = ref d0 in
  Array.map
    (fun s ->
      c := rot28 !c s;
      d := rot28 !d s;
      permute ~in_width:56 pc2_table ((!c lsl 28) lor !d))
    key_shifts

(* Round function via E-expansion and the SP-boxes. *)
let f_function r k =
  let e = permute ~in_width:32 e_table r in
  let acc = ref 0 in
  for b = 0 to 7 do
    let chunk = (e lsr (42 - (6 * b))) land 0x3f in
    let kc = (k lsr (42 - (6 * b))) land 0x3f in
    acc := !acc lor spbox.(b).(chunk lxor kc)
  done;
  !acc

(** The 16-round Feistel core on two 32-bit halves; returns
    (R16, L16) — the preoutput order (the final swap). *)
let encrypt_core ~(subkeys : int array) (l, r) =
  let l = ref l and r = ref r in
  for j = 0 to 15 do
    let nr = !l lxor f_function !r subkeys.(j) in
    l := !r;
    r := nr
  done;
  (!r, !l)

(** Full FIPS DES on a 64-bit block (IP, core, FP), for the KAT. *)
let encrypt_block ~(key64 : int64) (block : int64) : int64 =
  let subkeys = key_schedule key64 in
  let x = permute64_wide ip_table block in
  let l = Int64.(to_int (logand (shift_right_logical x 32) 0xffffffffL)) in
  let r = Int64.(to_int (logand x 0xffffffffL)) in
  let r16, l16 = encrypt_core ~subkeys (l, r) in
  permute64_wide fp_table
    Int64.(logor (shift_left (of_int r16) 32) (of_int l16))

(** Core encryption of [m] blocks stored as (L, R) word pairs. *)
let encrypt_stream ~(subkeys : int array) (halves : int array) : int array =
  let m = Array.length halves / 2 in
  let out = Array.make (Array.length halves) 0 in
  for i = 0 to m - 1 do
    let r16, l16 = encrypt_core ~subkeys (halves.(2 * i), halves.((2 * i) + 1)) in
    out.(2 * i) <- r16;
    out.((2 * i) + 1) <- l16
  done;
  out

(* --- IR benchmark programs --- *)

(* The flattened SP table: spbox_flat.(64b + v). *)
let spbox_flat : int array =
  Array.init 512 (fun t -> spbox.(t / 64).(t mod 64))

(* One Feistel round; [sp] and [key] abstract table access. *)
let round_body ~sp ~key : Stmt.t list =
  let open B in
  let mask32 = int 0xffffffff in
  let chunk b =
    (* 6 expanded bits for box b, from rt = ROTR(R, 1) *)
    if Stdlib.( < ) b 7 then
      band (shr (v "rt") (int Stdlib.(26 - (4 * b)))) (int 0x3f)
    else
      bor
        (shl (band (v "rt") (int 0xf)) (int 2))
        (band (shr (v "rt") (int 30)) (int 3))
  in
  let kc b = band (shr (v "k") (int Stdlib.(42 - (6 * b)))) (int 0x3f) in
  [ ("k" <-- key (v "j"));
    ("rt" <-- band (bor (shr (v "r") (int 1)) (shl (band (v "r") (int 1)) (int 31))) mask32) ]
  @ List.init 8 (fun b ->
        B.(Printf.sprintf "s%d" b <-- sp (bxor (chunk b) (kc b) + int Stdlib.(64 * b))))
  @ [ ("f0" <-- bor (v "s0") (v "s1"));
      ("f1" <-- bor (v "s2") (v "s3"));
      ("f2" <-- bor (v "s4") (v "s5"));
      ("f3" <-- bor (v "s6") (v "s7"));
      ("f4" <-- bor (v "f0") (v "f1"));
      ("f5" <-- bor (v "f2") (v "f3"));
      ("f" <-- bor (v "f4") (v "f5"));
      ("nr" <-- bxor (v "l") (v "f"));
      ("l" <-- v "r");
      ("r" <-- v "nr") ]

let locals =
  List.map
    (fun v -> (v, Types.Tint))
    ([ "i"; "j"; "k"; "rt"; "f0"; "f1"; "f2"; "f3"; "f4"; "f5"; "f"; "nr";
       "l"; "r" ]
    @ List.init 8 (Printf.sprintf "s%d"))

let block_loop ~m ~body ~arrays ~roms name : Stmt.program =
  let open B in
  B.program name ~locals ~arrays ~roms
    [ for_ "i" ~hi:(int m)
        [ ("l" <-- load "data_in" (v "i" * int 2));
          ("r" <-- load "data_in" ((v "i" * int 2) + int 1));
          for_ "j" ~hi:(int 16) body;
          (* preoutput swap: R16 then L16 *)
          store "data_out" (v "i" * int 2) (v "r");
          store "data_out" ((v "i" * int 2) + int 1) (v "l") ] ]

(** DES-mem: SP-boxes and subkeys in memory (Table 6.1: "SBOX
    implemented in software with memory references"). *)
let des_mem ~m : Stmt.program =
  let sp e = B.load "spbox" e in
  let key e = B.load "subkeys" e in
  block_loop ~m ~body:(round_body ~sp ~key)
    ~arrays:
      [ B.input "data_in" (2 * m); B.input "spbox" 512; B.input "subkeys" 16;
        B.output "data_out" (2 * m) ]
    ~roms:[] "des_mem"

(** DES-hw: SP-boxes and subkeys in local ROMs; no inner-loop memory
    references (Table 6.1: "SBOX implemented in hardware"). *)
let des_hw ~m ~key64 : Stmt.program =
  let sp e = B.rom "spbox" e in
  let key e = B.rom "subkeys" e in
  block_loop ~m ~body:(round_body ~sp ~key)
    ~arrays:[ B.input "data_in" (2 * m); B.output "data_out" (2 * m) ]
    ~roms:
      [ B.rom_decl "spbox" spbox_flat;
        B.rom_decl "subkeys" (key_schedule key64) ]
    "des_hw"

(* --- workloads --- *)

(** The textbook known-answer test: key 0x133457799BBCDFF1 encrypting
    plaintext 0x0123456789ABCDEF yields 0x85E813540F0AB405. *)
let kat_key = 0x133457799BBCDFF1L
let kat_plaintext = 0x0123456789ABCDEFL
let kat_ciphertext = 0x85E813540F0AB405L

let random_halves ~seed n =
  let rng = Random.State.make [| seed; 0xde5 |] in
  Array.init n (fun _ ->
      Random.State.full_int rng 0x100000000)

(** Workload for the [mem] variant. *)
let workload_mem ~key64 (halves : int array) : Interp.workload =
  Interp.workload
    ~arrays:
      [ ("data_in", Array.map (fun w -> Types.VInt w) halves);
        ("spbox", Array.map (fun w -> Types.VInt w) spbox_flat);
        ("subkeys", Array.map (fun w -> Types.VInt w) (key_schedule key64)) ]
    ()

(** Workload for the [hw] variant. *)
let workload_hw (halves : int array) : Interp.workload =
  Interp.workload
    ~arrays:[ ("data_in", Array.map (fun w -> Types.VInt w) halves) ]
    ()

(* --- decryption: DES is a Feistel network, so decryption is the same
   core with the subkey schedule reversed --- *)

(** Reversed schedule for decryption. *)
let decrypt_schedule (key64 : int64) : int array =
  let ks = key_schedule key64 in
  Array.init 16 (fun j -> ks.(15 - j))

(** Decrypt core halves: by the Feistel symmetry this is the encryption
    core with the subkeys reversed.  Feed it the ciphertext preoutput
    pair (r16, l16); it returns (l0, r0). *)
let decrypt_core ~(subkeys : int array) (r16, l16) =
  encrypt_core
    ~subkeys:(Array.init 16 (fun j -> subkeys.(15 - j)))
    (r16, l16)

(** Full-block decryption, inverse of [encrypt_block]. *)
let decrypt_block ~(key64 : int64) (cipher : int64) : int64 =
  let subkeys = key_schedule key64 in
  let x = permute64_wide ip_table cipher in
  let a = Int64.(to_int (logand (shift_right_logical x 32) 0xffffffffL)) in
  let b = Int64.(to_int (logand x 0xffffffffL)) in
  (* IP undoes FP, recovering the preoutput (r16, l16) *)
  let l0, r0 = decrypt_core ~subkeys (a, b) in
  permute64_wide fp_table Int64.(logor (shift_left (of_int l0) 32) (of_int r0))
