lib/bench_suite/profile.ml: Array Builder Interp List Printf Random Skipjack Stdlib Stmt String Types Uas_ir
