lib/bench_suite/des.mli: Interp Stmt Uas_ir
