lib/bench_suite/simple.mli: Stmt Uas_ir
