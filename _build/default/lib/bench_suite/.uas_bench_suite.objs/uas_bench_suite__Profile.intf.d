lib/bench_suite/profile.mli: Interp Stmt Uas_ir
