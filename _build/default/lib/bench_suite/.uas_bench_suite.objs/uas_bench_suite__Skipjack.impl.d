lib/bench_suite/skipjack.ml: Array Builder Interp List Random Stmt Types Uas_ir
