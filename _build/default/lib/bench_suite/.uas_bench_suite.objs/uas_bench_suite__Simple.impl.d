lib/bench_suite/simple.ml: Array Builder Stmt Types Uas_ir
