lib/bench_suite/iir.ml: Array Builder Interp List Printf Random Stdlib Stmt Types Uas_ir
