lib/bench_suite/registry.ml: Array Des Fmt Iir Interp List Printf Skipjack Stmt String Types Uas_ir
