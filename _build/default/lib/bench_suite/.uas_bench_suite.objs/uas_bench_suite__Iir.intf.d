lib/bench_suite/iir.mli: Interp Stmt Uas_ir
