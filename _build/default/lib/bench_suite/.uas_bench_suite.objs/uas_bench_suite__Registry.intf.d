lib/bench_suite/registry.mli: Interp Stmt Types Uas_ir
