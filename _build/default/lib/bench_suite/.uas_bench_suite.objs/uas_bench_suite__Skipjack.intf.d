lib/bench_suite/skipjack.mli: Interp Stmt Uas_ir
