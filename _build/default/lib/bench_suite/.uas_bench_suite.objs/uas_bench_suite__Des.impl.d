lib/bench_suite/des.ml: Array Builder Int64 Interp List Printf Random Stdlib Stmt Types Uas_ir
