(** The IIR benchmark: a 4-cascaded biquad filter (direct form II)
    processing 64 points per channel over a bank of independent
    channels — the floating-point kernel whose feedback recurrence
    makes squash efficiency grow with the unroll factor (Figure 6.3). *)

open Uas_ir

type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

(** The four fixed biquad sections. *)
val cascade : coeffs array

val points_per_channel : int

(** One channel through the cascade; operation order matches the IR
    exactly (bit-identical doubles). *)
val filter_channel : float array -> float array

(** Channel-major multi-channel filtering. *)
val filter_bank : channels:int -> float array -> float array

(** The IR filter bank over [channels] channels of 64 points. *)
val iir : channels:int -> Stmt.program

val random_signal : seed:int -> int -> float array
val workload : float array -> Interp.workload
