(** The Skipjack block cipher (declassified 1998), the paper's
    motivating kernel (Figure 2.5, §6.2): unchained encryption of 8-byte
    blocks, 32 rounds of G-permutation F-table lookups.  Host reference
    implementation (passes the official test vector) plus the [mem] and
    [hw] IR benchmark variants, and the inverse cipher. *)

open Uas_ir

(** The declassified F permutation (a 256-byte bijection). *)
val f_table : int array

(** The G permutation on a 16-bit word, round counter index [k]
    (0-based). *)
val g_permute : key:int array -> k:int -> int -> int

val encrypt_block : key:int array -> int * int * int * int -> int * int * int * int

(** Encrypt blocks stored as 4 consecutive 16-bit words each. *)
val encrypt_stream : key:int array -> int array -> int array

val g_unpermute : key:int array -> k:int -> int -> int
val decrypt_block : key:int array -> int * int * int * int -> int * int * int * int
val decrypt_stream : key:int array -> int array -> int array

(** Skipjack-mem: F-table and key schedule in memory (inner-loop
    loads). *)
val skipjack_mem : m:int -> Stmt.program

(** Skipjack-hw: tables in local ROM; no memory references in the round
    loop. *)
val skipjack_hw : m:int -> key:int array -> Stmt.program

val skipjack_mem_decrypt : m:int -> Stmt.program
val skipjack_hw_decrypt : m:int -> key:int array -> Stmt.program

(** The official known-answer vector (key 00 99 88 ... 11). *)
val kat_key : int array

val kat_plaintext_words : int array
val kat_ciphertext_words : int array
val random_key : seed:int -> int array
val random_words : seed:int -> int -> int array
val workload_mem : key:int array -> int array -> Interp.workload
val workload_hw : int array -> Interp.workload
