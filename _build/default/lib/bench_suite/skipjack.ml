(* The Skipjack block cipher (declassified 1998), the paper's motivating
   real-world kernel (Figure 2.5, §6.2).

   Unchained (ECB) encryption of a stream of 8-byte blocks: the outer
   loop walks the blocks (no carried dependence — the pattern
   unroll-and-squash targets), the inner loop runs the 32 rounds, whose
   G-function F-table lookups form the long recurrence that blocks
   inner-loop pipelining.

   Two variants, as in Table 6.1:
   - [mem]: software-style, with the F-table and the key schedule in
     memory (inner-loop loads);
   - [hw]: optimized for hardware, F-table and key bytes in local ROMs —
     the inner body performs no memory references at all.

   A pure-OCaml host implementation ([encrypt_block], [encrypt_stream])
   provides reference outputs and the official NIST known-answer test. *)

open Uas_ir
module B = Builder

(* The F permutation table from the declassified specification. *)
let f_table =
  [| 0xa3; 0xd7; 0x09; 0x83; 0xf8; 0x48; 0xf6; 0xf4; 0xb3; 0x21; 0x15; 0x78;
     0x99; 0xb1; 0xaf; 0xf9; 0xe7; 0x2d; 0x4d; 0x8a; 0xce; 0x4c; 0xca; 0x2e;
     0x52; 0x95; 0xd9; 0x1e; 0x4e; 0x38; 0x44; 0x28; 0x0a; 0xdf; 0x02; 0xa0;
     0x17; 0xf1; 0x60; 0x68; 0x12; 0xb7; 0x7a; 0xc3; 0xe9; 0xfa; 0x3d; 0x53;
     0x96; 0x84; 0x6b; 0xba; 0xf2; 0x63; 0x9a; 0x19; 0x7c; 0xae; 0xe5; 0xf5;
     0xf7; 0x16; 0x6a; 0xa2; 0x39; 0xb6; 0x7b; 0x0f; 0xc1; 0x93; 0x81; 0x1b;
     0xee; 0xb4; 0x1a; 0xea; 0xd0; 0x91; 0x2f; 0xb8; 0x55; 0xb9; 0xda; 0x85;
     0x3f; 0x41; 0xbf; 0xe0; 0x5a; 0x58; 0x80; 0x5f; 0x66; 0x0b; 0xd8; 0x90;
     0x35; 0xd5; 0xc0; 0xa7; 0x33; 0x06; 0x65; 0x69; 0x45; 0x00; 0x94; 0x56;
     0x6d; 0x98; 0x9b; 0x76; 0x97; 0xfc; 0xb2; 0xc2; 0xb0; 0xfe; 0xdb; 0x20;
     0xe1; 0xeb; 0xd6; 0xe4; 0xdd; 0x47; 0x4a; 0x1d; 0x42; 0xed; 0x9e; 0x6e;
     0x49; 0x3c; 0xcd; 0x43; 0x27; 0xd2; 0x07; 0xd4; 0xde; 0xc7; 0x67; 0x18;
     0x89; 0xcb; 0x30; 0x1f; 0x8d; 0xc6; 0x8f; 0xaa; 0xc8; 0x74; 0xdc; 0xc9;
     0x5d; 0x5c; 0x31; 0xa4; 0x70; 0x88; 0x61; 0x2c; 0x9f; 0x0d; 0x2b; 0x87;
     0x50; 0x82; 0x54; 0x64; 0x26; 0x7d; 0x03; 0x40; 0x34; 0x4b; 0x1c; 0x73;
     0xd1; 0xc4; 0xfd; 0x3b; 0xcc; 0xfb; 0x7f; 0xab; 0xe6; 0x3e; 0x5b; 0xa5;
     0xad; 0x04; 0x23; 0x9c; 0x14; 0x51; 0x22; 0xf0; 0x29; 0x79; 0x71; 0x7e;
     0xff; 0x8c; 0x0e; 0xe2; 0x0c; 0xef; 0xbc; 0x72; 0x75; 0x6f; 0x37; 0xa1;
     0xec; 0xd3; 0x8e; 0x62; 0x8b; 0x86; 0x10; 0xe8; 0x08; 0x77; 0x11; 0xbe;
     0x92; 0x4f; 0x24; 0xc5; 0x32; 0x36; 0x9d; 0xcf; 0xf3; 0xa6; 0xbb; 0xac;
     0x5e; 0x6c; 0xa9; 0x13; 0x57; 0x25; 0xb5; 0xe3; 0xbd; 0xa8; 0x3a; 0x01;
     0x05; 0x59; 0x2a; 0x46 |]

(* --- host reference implementation --- *)

(** G permutation: a 4-round Feistel on the 16-bit word [w] using key
    bytes cv[4k mod 10 .. (4k+3) mod 10] for round counter index [k]
    (0-based). *)
let g_permute ~(key : int array) ~k w =
  let cv i = key.(((4 * k) + i) mod 10) in
  let g1 = (w lsr 8) land 0xff and g2 = w land 0xff in
  let g3 = f_table.(g2 lxor cv 0) lxor g1 in
  let g4 = f_table.(g3 lxor cv 1) lxor g2 in
  let g5 = f_table.(g4 lxor cv 2) lxor g3 in
  let g6 = f_table.(g5 lxor cv 3) lxor g4 in
  (g5 lsl 8) lor g6

(** Encrypt one block given as four 16-bit words (w1, w2, w3, w4). *)
let encrypt_block ~(key : int array) (w1, w2, w3, w4) =
  let w = ref (w1, w2, w3, w4) in
  for k = 0 to 31 do
    let w1, w2, w3, w4 = !w in
    let counter = k + 1 in
    let gw = g_permute ~key ~k w1 in
    if k land 8 = 0 then
      (* Rule A *)
      w := (gw lxor w4 lxor counter, gw, w2, w3)
    else
      (* Rule B *)
      w := (w4, gw, w1 lxor w2 lxor counter, w3)
  done;
  !w

(** Encrypt [m] blocks stored as 4 consecutive 16-bit words each. *)
let encrypt_stream ~(key : int array) (words : int array) : int array =
  let m = Array.length words / 4 in
  let out = Array.make (Array.length words) 0 in
  for i = 0 to m - 1 do
    let w1, w2, w3, w4 =
      encrypt_block ~key
        (words.(4 * i), words.((4 * i) + 1), words.((4 * i) + 2),
         words.((4 * i) + 3))
    in
    out.(4 * i) <- w1;
    out.((4 * i) + 1) <- w2;
    out.((4 * i) + 2) <- w3;
    out.((4 * i) + 3) <- w4
  done;
  out

(* --- IR benchmark programs --- *)

(* Inner-loop round, shared between the variants; [f] and [cv] abstract
   the table accesses (array loads vs ROM lookups). *)
let round_body ~f ~cv : Stmt.t list =
  let open B in
  [ ("cnt" <-- v "j" + int 1);
    ("g1" <-- band (shr (v "w1") (int 8)) (int 255));
    ("g2" <-- band (v "w1") (int 255));
    ("g3" <-- bxor (f (bxor (v "g2") (cv 0))) (v "g1"));
    ("g4" <-- bxor (f (bxor (v "g3") (cv 1))) (v "g2"));
    ("g5" <-- bxor (f (bxor (v "g4") (cv 2))) (v "g3"));
    ("g6" <-- bxor (f (bxor (v "g5") (cv 3))) (v "g4"));
    ("gw" <-- bor (shl (v "g5") (int 8)) (v "g6"));
    ("isA" <-- (band (v "j") (int 8) == int 0));
    ("nw1" <-- select (v "isA") (bxor (bxor (v "gw") (v "w4")) (v "cnt")) (v "w4"));
    ("nw3" <-- select (v "isA") (v "w2") (bxor (bxor (v "w1") (v "w2")) (v "cnt")));
    ("w4" <-- v "w3");
    ("w3" <-- v "nw3");
    ("w2" <-- v "gw");
    ("w1" <-- v "nw1") ]

let locals =
  List.map
    (fun v -> (v, Types.Tint))
    [ "i"; "j"; "cnt"; "g1"; "g2"; "g3"; "g4"; "g5"; "g6"; "gw"; "isA";
      "nw1"; "nw3"; "w1"; "w2"; "w3"; "w4" ]

let block_loop ~m ~body ~arrays ~roms name : Stmt.program =
  let open B in
  B.program name ~locals ~arrays ~roms
    [ for_ "i" ~hi:(int m)
        [ ("w1" <-- load "data_in" (v "i" * int 4));
          ("w2" <-- load "data_in" ((v "i" * int 4) + int 1));
          ("w3" <-- load "data_in" ((v "i" * int 4) + int 2));
          ("w4" <-- load "data_in" ((v "i" * int 4) + int 3));
          for_ "j" ~hi:(int 32) body;
          store "data_out" (v "i" * int 4) (v "w1");
          store "data_out" ((v "i" * int 4) + int 1) (v "w2");
          store "data_out" ((v "i" * int 4) + int 2) (v "w3");
          store "data_out" ((v "i" * int 4) + int 3) (v "w4") ] ]

(* Key-byte index expression for round j, subkey slot s: (4j + s) mod 10. *)
let cv_index s =
  let open B in
  (v "j" * int 4 + int s) % int 10

(** Skipjack-mem: F-table and key schedule live in memory (Table 6.1:
    "software implementation with memory references").  Inputs:
    [data_in] (4 words per block), [ftable] (256), [cv] (10). *)
let skipjack_mem ~m : Stmt.program =
  let f e = B.load "ftable" e in
  let cv s = B.load "cv" (cv_index s) in
  block_loop ~m ~body:(round_body ~f ~cv)
    ~arrays:
      [ B.input "data_in" (4 * m); B.input "ftable" 256; B.input "cv" 10;
        B.output "data_out" (4 * m) ]
    ~roms:[] "skipjack_mem"

(** Skipjack-hw: the F-table and key schedule are local ROMs; the inner
    body performs no memory references (Table 6.1: "optimized for
    hardware"). *)
let skipjack_hw ~m ~(key : int array) : Stmt.program =
  let f e = B.rom "ftable" e in
  let cv s = B.rom "cv" (cv_index s) in
  block_loop ~m ~body:(round_body ~f ~cv)
    ~arrays:[ B.input "data_in" (4 * m); B.output "data_out" (4 * m) ]
    ~roms:[ B.rom_decl "ftable" f_table; B.rom_decl "cv" (Array.copy key) ]
    "skipjack_hw"

(* --- workloads --- *)

(** The official known-answer test vector from the Skipjack/KEA
    specification: key 00 99 88 77 66 55 44 33 22 11, plaintext
    33 22 11 00 dd cc bb aa, ciphertext 25 87 ca e2 7a 12 d3 00. *)
let kat_key = [| 0x00; 0x99; 0x88; 0x77; 0x66; 0x55; 0x44; 0x33; 0x22; 0x11 |]

let kat_plaintext_words = [| 0x3322; 0x1100; 0xddcc; 0xbbaa |]
let kat_ciphertext_words = [| 0x2587; 0xcae2; 0x7a12; 0xd300 |]

let random_key ~seed =
  let rng = Random.State.make [| seed; 0x5105 |] in
  Array.init 10 (fun _ -> Random.State.int rng 256)

let random_words ~seed n =
  let rng = Random.State.make [| seed; 0xda7a |] in
  Array.init n (fun _ -> Random.State.int rng 0x10000)

(** Workload for the [mem] variant. *)
let workload_mem ~(key : int array) (words : int array) : Interp.workload =
  Interp.workload
    ~arrays:
      [ ("data_in", Array.map (fun w -> Types.VInt w) words);
        ("ftable", Array.map (fun w -> Types.VInt w) f_table);
        ("cv", Array.map (fun w -> Types.VInt w) key) ]
    ()

(** Workload for the [hw] variant (tables are baked into ROMs). *)
let workload_hw (words : int array) : Interp.workload =
  Interp.workload
    ~arrays:[ ("data_in", Array.map (fun w -> Types.VInt w) words) ]
    ()

(* --- decryption ---

   The inverse cipher: rounds run backwards with the inverse G
   permutation (the F-chain unwound from the other end).  The decryption
   kernel has the same serial-lookup recurrence as encryption, so it is
   squashable the same way — and encrypt/decrypt round-trips are a
   strong end-to-end check on both. *)

(** Inverse of [g_permute]. *)
let g_unpermute ~(key : int array) ~k w =
  let cv i = key.(((4 * k) + i) mod 10) in
  let g5 = (w lsr 8) land 0xff and g6 = w land 0xff in
  let g4 = f_table.(g5 lxor cv 3) lxor g6 in
  let g3 = f_table.(g4 lxor cv 2) lxor g5 in
  let g2 = f_table.(g3 lxor cv 1) lxor g4 in
  let g1 = f_table.(g2 lxor cv 0) lxor g3 in
  (g1 lsl 8) lor g2

(** Decrypt one block (inverse of [encrypt_block]). *)
let decrypt_block ~(key : int array) (w1, w2, w3, w4) =
  let w = ref (w1, w2, w3, w4) in
  for j = 0 to 31 do
    let k = 31 - j in
    let counter = k + 1 in
    let w1', w2', w3', w4' = !w in
    if k land 8 = 0 then begin
      (* inverse Rule A *)
      let w1 = g_unpermute ~key ~k w2' in
      let w4 = w1' lxor w2' lxor counter in
      w := (w1, w3', w4', w4)
    end
    else begin
      (* inverse Rule B *)
      let w1 = g_unpermute ~key ~k w2' in
      let w2 = w3' lxor w1 lxor counter in
      w := (w1, w2, w4', w1')
    end
  done;
  !w

(** Decrypt [m] blocks stored as 4 words each. *)
let decrypt_stream ~(key : int array) (words : int array) : int array =
  let m = Array.length words / 4 in
  let out = Array.make (Array.length words) 0 in
  for i = 0 to m - 1 do
    let w1, w2, w3, w4 =
      decrypt_block ~key
        (words.(4 * i), words.((4 * i) + 1), words.((4 * i) + 2),
         words.((4 * i) + 3))
    in
    out.(4 * i) <- w1;
    out.((4 * i) + 1) <- w2;
    out.((4 * i) + 2) <- w3;
    out.((4 * i) + 3) <- w4
  done;
  out

(* key-byte index for backward round kk, slot s: (4*kk + s) mod 10 *)
let cv_index_back s =
  let open B in
  (v "kk" * int 4 + int s) % int 10

(* the decryption round in the IR; kk = 31 - j is the forward index *)
let unround_body ~f ~cv : Stmt.t list =
  let open B in
  [ ("kk" <-- int 31 - v "j");
    ("cnt" <-- v "kk" + int 1);
    ("g5" <-- band (shr (v "w2") (int 8)) (int 255));
    ("g6" <-- band (v "w2") (int 255));
    ("g4" <-- bxor (f (bxor (v "g5") (cv 3))) (v "g6"));
    ("g3" <-- bxor (f (bxor (v "g4") (cv 2))) (v "g5"));
    ("g2" <-- bxor (f (bxor (v "g3") (cv 1))) (v "g4"));
    ("g1" <-- bxor (f (bxor (v "g2") (cv 0))) (v "g3"));
    ("gw" <-- bor (shl (v "g1") (int 8)) (v "g2"));
    ("isA" <-- (band (v "kk") (int 8) == int 0));
    (* inverse rule A: (w1..w4) := (G^-1 w2, w3, w4, w1^w2^cnt)
       inverse rule B: (w1..w4) := (G^-1 w2, w3^G^-1(w2)^cnt, w4, w1) *)
    ("nw4" <--
     select (v "isA") (bxor (bxor (v "w1") (v "w2")) (v "cnt")) (v "w1"));
    ("nw2" <--
     select (v "isA") (v "w3") (bxor (bxor (v "w3") (v "gw")) (v "cnt")));
    ("nw3" <-- select (v "isA") (v "w4") (v "w4"));
    ("w1" <-- v "gw");
    ("w2" <-- v "nw2");
    ("w3" <-- v "nw3");
    ("w4" <-- v "nw4") ]

let decrypt_locals =
  List.map
    (fun v -> (v, Types.Tint))
    [ "i"; "j"; "kk"; "cnt"; "g1"; "g2"; "g3"; "g4"; "g5"; "g6"; "gw"; "isA";
      "nw2"; "nw3"; "nw4"; "w1"; "w2"; "w3"; "w4" ]

let unblock_loop ~m ~body ~arrays ~roms name : Stmt.program =
  let p = block_loop ~m ~body ~arrays ~roms name in
  { p with Stmt.locals = decrypt_locals }

(** Skipjack decryption with tables in memory. *)
let skipjack_mem_decrypt ~m : Stmt.program =
  let f e = B.load "ftable" e in
  let cv s = B.load "cv" (cv_index_back s) in
  unblock_loop ~m ~body:(unround_body ~f ~cv)
    ~arrays:
      [ B.input "data_in" (4 * m); B.input "ftable" 256; B.input "cv" 10;
        B.output "data_out" (4 * m) ]
    ~roms:[] "skipjack_mem_decrypt"

(** Skipjack decryption with tables in ROM. *)
let skipjack_hw_decrypt ~m ~(key : int array) : Stmt.program =
  let f e = B.rom "ftable" e in
  let cv s = B.rom "cv" (cv_index_back s) in
  unblock_loop ~m ~body:(unround_body ~f ~cv)
    ~arrays:[ B.input "data_in" (4 * m); B.output "data_out" (4 * m) ]
    ~roms:[ B.rom_decl "ftable" f_table; B.rom_decl "cv" (Array.copy key) ]
    "skipjack_hw_decrypt"
