(** The DES block cipher (FIPS 46), the paper's second cryptographic
    benchmark.  The hardware kernel is the 16-round Feistel core using
    combined SP-boxes (8 lookups + one subkey fetch per round); IP/FP
    are wiring and live in the host-side block helpers.  The host model
    passes the textbook known-answer test. *)

open Uas_ir

val sbox : int array array
val p_table : int array
val e_table : int array
val ip_table : int array
val fp_table : int array

(** Bit-select [x] per [table] (bit 1 = MSB of [in_width] bits). *)
val permute : in_width:int -> int array -> int -> int

val sbox_lookup : int -> int -> int

(** Combined S-then-P boxes: [spbox.(b).(v)] is a 32-bit word. *)
val spbox : int array array

(** Flattened SP table, [spbox_flat.(64*b + v)]. *)
val spbox_flat : int array

(** 16 48-bit subkeys from a 64-bit key. *)
val key_schedule : int64 -> int array

(** Reversed schedule, for decryption. *)
val decrypt_schedule : int64 -> int array

(** The 16-round core on 32-bit halves; returns the preoutput
    (r16, l16). *)
val encrypt_core : subkeys:int array -> int * int -> int * int

(** Inverse core: takes (r16, l16), returns (l0, r0). *)
val decrypt_core : subkeys:int array -> int * int -> int * int

(** Full FIPS DES on a 64-bit block (IP + core + FP). *)
val encrypt_block : key64:int64 -> int64 -> int64

val decrypt_block : key64:int64 -> int64 -> int64

(** Core encryption of blocks stored as (l, r) word pairs; the output
    stores the preoutput (r16, l16) per block. *)
val encrypt_stream : subkeys:int array -> int array -> int array

(** DES-mem: SP-boxes and subkeys in memory. *)
val des_mem : m:int -> Stmt.program

(** DES-hw: SP-boxes and subkeys in local ROM. *)
val des_hw : m:int -> key64:int64 -> Stmt.program

(** The textbook vector: 0x133457799BBCDFF1 / 0x0123456789ABCDEF. *)
val kat_key : int64

val kat_plaintext : int64
val kat_ciphertext : int64
val random_halves : seed:int -> int -> int array
val workload_mem : key64:int64 -> int array -> Interp.workload
val workload_hw : int array -> Interp.workload
