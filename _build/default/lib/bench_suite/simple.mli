(** The motivating kernels of Chapters 2 and 4, shared by the examples,
    tests and figure benches. *)

open Uas_ir

(** Figure 2.1: the f/g nested loop (two 1-cycle ALU ops forming the
    inner recurrence). *)
val fg_loop : m:int -> n:int -> Stmt.program

(** Host reference for [fg_loop]. *)
val fg_reference : n:int -> int array -> int array

(** Figure 4.1: the DFG/stage illustration kernel (uses both indices
    and an invariant scalar [k]). *)
val ch4_loop : m:int -> n:int -> Stmt.program

(** A table-driven stream checksum with inner-loop memory references. *)
val checksum_loop : m:int -> n:int -> Stmt.program
