(* The IIR benchmark (§6.2): a 4-cascaded biquad filter processing 64
   points per channel, in direct form II.

   The hardware kernel processes one channel's 64 samples through the
   four cascaded biquads; the outer loop walks independent channels (a
   filter bank), which is the parallel dimension unroll-and-squash
   exploits.  The floating-point recurrence of each biquad

       w = x - a1*w1 - a2*w2

   is the long cycle that limits inner-loop pipelining, exactly the IIR
   behaviour discussed with Figure 6.3 (big original II, small minimum
   II, efficiency that keeps growing with the unroll factor).

   A host implementation mirrors the IR operation-for-operation so the
   equivalence tests can require bit-identical doubles. *)

open Uas_ir
module B = Builder

type coeffs = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

(** Four stable, gently-peaking biquad sections (fixed constants baked
    into the datapath, like the paper's hardware-modeled operators). *)
let cascade : coeffs array =
  [| { b0 = 0.2929; b1 = 0.5858; b2 = 0.2929; a1 = -0.0000; a2 = 0.1716 };
     { b0 = 0.2195; b1 = 0.4390; b2 = 0.2195; a1 = -0.3012; a2 = 0.1793 };
     { b0 = 0.2928; b1 = 0.5855; b2 = 0.2928; a1 = -0.1380; a2 = 0.3091 };
     { b0 = 0.3750; b1 = 0.7500; b2 = 0.3750; a1 = -0.2550; a2 = 0.2549 } |]

let points_per_channel = 64

(* --- host reference --- *)

(** Run [n] samples of one channel through the cascade; the operation
    order matches the IR program exactly (w before y, state shift
    last). *)
let filter_channel (input : float array) : float array =
  let w1 = Array.make 4 0.0 and w2 = Array.make 4 0.0 in
  Array.map
    (fun x0 ->
      let x = ref x0 in
      for s = 0 to 3 do
        let c = cascade.(s) in
        let w = !x -. (c.a1 *. w1.(s)) -. (c.a2 *. w2.(s)) in
        let y = (c.b0 *. w) +. (c.b1 *. w1.(s)) +. (c.b2 *. w2.(s)) in
        w2.(s) <- w1.(s);
        w1.(s) <- w;
        x := y
      done;
      !x)
    input

(** [channels] independent channels stored channel-major
    (chan * 64 + t). *)
let filter_bank ~channels (input : float array) : float array =
  let out = Array.make (Array.length input) 0.0 in
  for c = 0 to channels - 1 do
    let chan =
      Array.sub input (c * points_per_channel) points_per_channel
    in
    Array.blit (filter_channel chan) 0 out (c * points_per_channel)
      points_per_channel
  done;
  out

(* --- IR benchmark program --- *)

let state_vars =
  List.concat_map
    (fun s -> [ Printf.sprintf "w1_%d" s; Printf.sprintf "w2_%d" s ])
    [ 0; 1; 2; 3 ]

let locals =
  [ ("i", Types.Tint); ("j", Types.Tint) ]
  @ List.map (fun v -> (v, Types.Tfloat)) ([ "x"; "w"; "y" ] @ state_vars)

(* One biquad section in direct form II, on scalar state. *)
let biquad s : Stmt.t list =
  let c = cascade.(s) in
  let w1 = Printf.sprintf "w1_%d" s and w2 = Printf.sprintf "w2_%d" s in
  let open B in
  [ ("w" <-- v "x" -. (flt c.a1 *. v w1) -. (flt c.a2 *. v w2));
    ("y" <-- (flt c.b0 *. v "w") +. (flt c.b1 *. v w1) +. (flt c.b2 *. v w2));
    (w2 <-- v w1);
    (w1 <-- v "w");
    ("x" <-- v "y") ]

(** The IIR filter bank over [channels] channels of 64 points each. *)
let iir ~channels : Stmt.program =
  let n = points_per_channel in
  let total = Stdlib.( * ) channels n in
  let open B in
  B.program "iir" ~locals
    ~arrays:
      [ B.input ~ty:Types.Tfloat "signal_in" total;
        B.output ~ty:Types.Tfloat "signal_out" total ]
    [ for_ "i" ~hi:(int channels)
        ((* channel start: reset the filter state *)
         List.map (fun sv -> sv <-- flt 0.0) state_vars
        @ [ for_ "j" ~hi:(int n)
              ([ ("x" <-- load "signal_in" ((v "i" * int n) + v "j")) ]
              @ List.concat_map biquad [ 0; 1; 2; 3 ]
              @ [ store "signal_out" ((v "i" * int n) + v "j") (v "x") ]) ])
    ]

(* --- workloads --- *)

let random_signal ~seed len =
  let rng = Random.State.make [| seed; 0x11a |] in
  Array.init len (fun _ -> Random.State.float rng 2.0 -. 1.0)

let workload (signal : float array) : Interp.workload =
  Interp.workload
    ~arrays:[ ("signal_in", Array.map (fun x -> Types.VFloat x) signal) ]
    ()
