(** Statements and programs of the loop IR.

    Loops are counted FOR loops with a positive constant step:
    [for (i = lo; i < hi; i += step)].  A program declares its scalars
    (parameters + locals), arrays and ROMs up front; {!Validate}
    enforces the static semantics. *)

open Types

type loop = {
  index : var;
  lo : Expr.t;
  hi : Expr.t;  (** exclusive upper bound *)
  step : int;  (** positive constant *)
  body : t list;
}

and t =
  | Assign of var * Expr.t
  | Store of array_id * Expr.t * Expr.t
      (** [Store (a, idx, e)] is [a[idx] = e] *)
  | If of Expr.t * t list * t list
  | For of loop

type array_kind =
  | Input  (** initialized from the workload *)
  | Output  (** observable result *)
  | Local  (** scratch, zero-initialized *)

type array_decl = {
  a_name : array_id;
  a_ty : ty;
  a_size : int;
  a_kind : array_kind;
}

type rom_decl = { r_name : rom_id; r_data : int array }

type program = {
  prog_name : string;
  params : (var * ty) list;  (** scalar inputs supplied by the workload *)
  locals : (var * ty) list;
  arrays : array_decl list;
  roms : rom_decl list;
  body : t list;
}

val equal : t -> t -> bool
val equal_list : t list -> t list -> bool

(** Pre-order fold over every statement (descending into bodies). *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val fold_list : ('a -> t -> 'a) -> 'a -> t list -> 'a

(** Fold over every expression, including loop bounds. *)
val fold_exprs : ('a -> Expr.t -> 'a) -> 'a -> t list -> 'a

(** Bottom-up statement rewrite; the callback may expand one statement
    to several. *)
val rewrite : (t -> t list) -> t -> t list

val rewrite_list : (t -> t list) -> t list -> t list

(** Rewrite every expression in place (loop bounds included). *)
val map_exprs : (Expr.t -> Expr.t) -> t -> t

val map_exprs_list : (Expr.t -> Expr.t) -> t list -> t list

module Sset = Expr.Sset

(** Scalars assigned anywhere (loop indices included). *)
val defs : t list -> Sset.t

(** Scalars read anywhere. *)
val uses : t list -> Sset.t

(** [defs ∪ uses]. *)
val scalars : t list -> Sset.t

val arrays_read : t list -> Sset.t
val arrays_written : t list -> Sset.t

(** Loads plus stores — the §6.1 memory-reference count. *)
val memory_reference_count : t list -> int

(** Datapath operators (expression operators plus one per store). *)
val operator_count : t list -> int

(** No control flow (a single basic block)? *)
val is_straight_line : t list -> bool

(** Rename every scalar occurrence, defs and uses. *)
val rename_vars : (var -> var) -> t -> t

val rename_vars_list : (var -> var) -> t list -> t list

(** Structural statement count. *)
val size : t list -> int

val scalar_decls : program -> (var * ty) list
val lookup_scalar_ty : program -> var -> ty option
val lookup_array : program -> array_id -> array_decl option
val lookup_rom : program -> rom_id -> rom_decl option

(** Declare more locals, skipping names already declared. *)
val add_locals : program -> (var * ty) list -> program

(** A fresh scalar name based on [base], avoiding declared names and
    [avoid]. *)
val fresh_var : program -> ?avoid:var list -> string -> var
