(* Expressions of the loop IR, with traversals, substitution and a
   constant folder.  Expressions are pure except for [Load], which reads
   memory (a memory *reference* in the paper's cost model). *)

open Types

type t =
  | Int of int
  | Float of float
  | Var of var
  | Load of array_id * t              (** memory load: [a[idx]] *)
  | Rom of rom_id * t                 (** local-ROM lookup (not a memory ref) *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of t * t * t               (** [c ? a : b], result of if-conversion *)

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Var x, Var y -> String.equal x y
  | Load (a1, i1), Load (a2, i2) -> String.equal a1 a2 && equal i1 i2
  | Rom (r1, i1), Rom (r2, i2) -> String.equal r1 r2 && equal i1 i2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal e1 e2
  | Binop (o1, l1, r1), Binop (o2, l2, r2) -> o1 = o2 && equal l1 l2 && equal r1 r2
  | Select (c1, t1, f1), Select (c2, t2, f2) ->
    equal c1 c2 && equal t1 t2 && equal f1 f2
  | ( (Int _ | Float _ | Var _ | Load _ | Rom _ | Unop _ | Binop _ | Select _), _ ) ->
    false

(** Fold over all sub-expressions (pre-order, including [e] itself). *)
let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Float _ | Var _ -> acc
  | Load (_, i) | Rom (_, i) | Unop (_, i) -> fold f acc i
  | Binop (_, l, r) -> fold f (fold f acc l) r
  | Select (c, t, e') -> fold f (fold f (fold f acc c) t) e'

(** Bottom-up rewrite of every node. *)
let rec map f e =
  let e' =
    match e with
    | Int _ | Float _ | Var _ -> e
    | Load (a, i) -> Load (a, map f i)
    | Rom (r, i) -> Rom (r, map f i)
    | Unop (o, x) -> Unop (o, map f x)
    | Binop (o, l, r) -> Binop (o, map f l, map f r)
    | Select (c, t, e') -> Select (map f c, map f t, map f e')
  in
  f e'

(** Scalar variables read by [e], left-to-right with duplicates. *)
let vars e =
  List.rev
    (fold (fun acc e -> match e with Var v -> v :: acc | _ -> acc) [] e)

module Sset = Set.Make (String)

let var_set e = Sset.of_list (vars e)

let mem_var v e = List.exists (String.equal v) (vars e)

(** Arrays loaded from (duplicates removed). *)
let arrays_loaded e =
  Sset.elements
    (fold
       (fun acc e -> match e with Load (a, _) -> Sset.add a acc | _ -> acc)
       Sset.empty e)

let roms_used e =
  Sset.elements
    (fold
       (fun acc e -> match e with Rom (r, _) -> Sset.add r acc | _ -> acc)
       Sset.empty e)

(** Number of memory references (loads) in [e]. *)
let load_count e =
  fold (fun n e -> match e with Load _ -> n + 1 | _ -> n) 0 e

(** Does [e] contain any memory load? *)
let has_load e = load_count e > 0

(** Substitute variables via [subst] (total on the variables of [e] it
    cares about; others unchanged). *)
let subst_vars subst e =
  map (function Var v -> (match subst v with Some e' -> e' | None -> Var v)
              | e -> e)
    e

(** Rename variables with a total renaming function. *)
let rename rn e = subst_vars (fun v -> Some (Var (rn v))) e

(** All [Load] index expressions of array [a] occurring in [e]. *)
let load_indices a e =
  List.rev
    (fold
       (fun acc e ->
         match e with
         | Load (a', i) when String.equal a a' -> i :: acc
         | _ -> acc)
       [] e)

let truth n = if n then 1 else 0

(** Evaluate a binary operator on constant values.  Division or modulus
    by zero raises [Ir_error] — the interpreter relies on this. *)
let eval_binop op a b =
  match (op, a, b) with
  | Add, VInt x, VInt y -> VInt (x + y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Div, VInt _, VInt 0 -> ir_error "division by zero"
  | Div, VInt x, VInt y -> VInt (x / y)
  | Mod, VInt _, VInt 0 -> ir_error "modulus by zero"
  | Mod, VInt x, VInt y -> VInt (x mod y)
  | BAnd, VInt x, VInt y -> VInt (x land y)
  | BOr, VInt x, VInt y -> VInt (x lor y)
  | BXor, VInt x, VInt y -> VInt (x lxor y)
  | Shl, VInt x, VInt y ->
    if y < 0 || y > 62 then ir_error "shift amount %d out of range" y
    else VInt (x lsl y)
  | Shr, VInt x, VInt y ->
    if y < 0 || y > 62 then ir_error "shift amount %d out of range" y
    else VInt (x asr y)
  | Lt, VInt x, VInt y -> VInt (truth (x < y))
  | Le, VInt x, VInt y -> VInt (truth (x <= y))
  | Gt, VInt x, VInt y -> VInt (truth (x > y))
  | Ge, VInt x, VInt y -> VInt (truth (x >= y))
  | Eq, VInt x, VInt y -> VInt (truth (x = y))
  | Ne, VInt x, VInt y -> VInt (truth (x <> y))
  | Fadd, VFloat x, VFloat y -> VFloat (x +. y)
  | Fsub, VFloat x, VFloat y -> VFloat (x -. y)
  | Fmul, VFloat x, VFloat y -> VFloat (x *. y)
  | Fdiv, VFloat x, VFloat y -> VFloat (x /. y)
  | Fcmp_lt, VFloat x, VFloat y -> VInt (truth (x < y))
  | Fcmp_le, VFloat x, VFloat y -> VInt (truth (x <= y))
  | op, a, b ->
    ir_error "type error: %a %s %a" pp_value a (binop_name op) pp_value b

let eval_unop op a =
  match (op, a) with
  | Neg, VInt x -> VInt (-x)
  | BNot, VInt x -> VInt (lnot x)
  | Fneg, VFloat x -> VFloat (-.x)
  | I2f, VInt x -> VFloat (float_of_int x)
  | F2i, VFloat x -> VInt (int_of_float x)
  | op, a -> ir_error "type error: %s %a" (unop_name op) pp_value a

(** Constant-fold [e] bottom-up.  Algebraic identities are restricted to
    ones that are exact for both machine integers and floats we use
    (e.g. [x * 0 -> 0] is only applied to integers). *)
let rec simplify e =
  match e with
  | Int _ | Float _ | Var _ -> e
  | Load (a, i) -> Load (a, simplify i)
  | Rom (r, i) -> Rom (r, simplify i)
  | Unop (o, x) -> (
    match simplify x with
    | Int n -> (
      match eval_unop o (VInt n) with
      | VInt m -> Int m
      | VFloat f -> Float f
      | exception Ir_error _ -> Unop (o, Int n))
    | Float f -> (
      match eval_unop o (VFloat f) with
      | VInt m -> Int m
      | VFloat g -> Float g
      | exception Ir_error _ -> Unop (o, Float f))
    | x' -> Unop (o, x'))
  | Binop (o, l, r) -> (
    let l = simplify l and r = simplify r in
    match (o, l, r) with
    | _, Int a, Int b -> (
      match eval_binop o (VInt a) (VInt b) with
      | VInt n -> Int n
      | VFloat f -> Float f
      | exception Ir_error _ -> Binop (o, l, r))
    | _, Float a, Float b -> (
      match eval_binop o (VFloat a) (VFloat b) with
      | VInt n -> Int n
      | VFloat f -> Float f
      | exception Ir_error _ -> Binop (o, l, r))
    | Add, x, Int 0 | Add, Int 0, x -> x
    | Sub, x, Int 0 -> x
    | Mul, x, Int 1 | Mul, Int 1, x -> x
    | Mul, x, Int 0 | Mul, Int 0, x -> if has_load x then Binop (o, l, r) else Int 0
    | Div, x, Int 1 -> x
    | BAnd, x, Int (-1) | BAnd, Int (-1), x -> x
    | BOr, x, Int 0 | BOr, Int 0, x -> x
    | BXor, x, Int 0 | BXor, Int 0, x -> x
    | Shl, x, Int 0 | Shr, x, Int 0 -> x
    | _ -> Binop (o, l, r))
  | Select (c, t, f) -> (
    match simplify c with
    | Int 0 -> simplify f
    | Int _ -> simplify t
    | c' -> Select (c', simplify t, simplify f))

(** Structural size of the expression (number of nodes). *)
let size e = fold (fun n _ -> n + 1) 0 e

(** Count of proper hardware operators in [e]: every node that maps to a
    datapath operator (arithmetic, logic, lookups, loads, selects);
    constants and variable reads are free. *)
let operator_count e =
  fold
    (fun n e ->
      match e with
      | Int _ | Float _ | Var _ -> n
      | Load _ | Rom _ | Unop _ | Binop _ | Select _ -> n + 1)
    0 e
