(* Statements and whole programs.

   A program is a list of structured statements over declared scalars,
   arrays and ROMs.  Loops are counted FOR loops with a positive constant
   step: [for (i = lo; i < hi; i += step)].  This is the shape the
   Nimble-style kernel extraction consumes and every transformation
   preserves. *)

open Types

type loop = {
  index : var;
  lo : Expr.t;
  hi : Expr.t;  (** exclusive upper bound *)
  step : int;   (** positive constant *)
  body : t list;
}

and t =
  | Assign of var * Expr.t
  | Store of array_id * Expr.t * Expr.t  (** [Store (a, idx, e)] is [a[idx] = e] *)
  | If of Expr.t * t list * t list
  | For of loop

type array_kind =
  | Input   (** initialized from the workload; read (and writable) *)
  | Output  (** observable result of the program *)
  | Local   (** scratch storage, zero-initialized *)

type array_decl = {
  a_name : array_id;
  a_ty : ty;
  a_size : int;
  a_kind : array_kind;
}

type rom_decl = {
  r_name : rom_id;
  r_data : int array;  (** ROM contents are integer constants *)
}

type program = {
  prog_name : string;
  params : (var * ty) list;  (** scalar inputs supplied by the workload *)
  locals : (var * ty) list;  (** every other scalar the program assigns *)
  arrays : array_decl list;
  roms : rom_decl list;
  body : t list;
}

let rec equal a b =
  match (a, b) with
  | Assign (v1, e1), Assign (v2, e2) -> String.equal v1 v2 && Expr.equal e1 e2
  | Store (a1, i1, e1), Store (a2, i2, e2) ->
    String.equal a1 a2 && Expr.equal i1 i2 && Expr.equal e1 e2
  | If (c1, t1, f1), If (c2, t2, f2) ->
    Expr.equal c1 c2 && equal_list t1 t2 && equal_list f1 f2
  | For l1, For l2 ->
    String.equal l1.index l2.index
    && Expr.equal l1.lo l2.lo && Expr.equal l1.hi l2.hi
    && l1.step = l2.step && equal_list l1.body l2.body
  | (Assign _ | Store _ | If _ | For _), _ -> false

and equal_list xs ys =
  List.length xs = List.length ys && List.for_all2 equal xs ys

(** Fold over every statement, pre-order. *)
let rec fold f acc s =
  let acc = f acc s in
  match s with
  | Assign _ | Store _ -> acc
  | If (_, t, e) -> fold_list f (fold_list f acc t) e
  | For l -> fold_list f acc l.body

and fold_list f acc stmts = List.fold_left (fold f) acc stmts

(** Fold over every expression occurring in the statement list (loop
    bounds included). *)
let fold_exprs f acc stmts =
  fold_list
    (fun acc s ->
      match s with
      | Assign (_, e) -> f acc e
      | Store (_, i, e) -> f (f acc i) e
      | If (c, _, _) -> f acc c
      | For l -> f (f acc l.lo) l.hi)
    acc stmts

(** Bottom-up statement rewrite; [f] may expand one statement to many. *)
let rec rewrite (f : t -> t list) s : t list =
  let s' =
    match s with
    | Assign _ | Store _ -> s
    | If (c, t, e) -> If (c, rewrite_list f t, rewrite_list f e)
    | For l -> For { l with body = rewrite_list f l.body }
  in
  f s'

and rewrite_list f stmts = List.concat_map (rewrite f) stmts

(** Rewrite every expression in-place (loop bounds included). *)
let rec map_exprs f s =
  match s with
  | Assign (v, e) -> Assign (v, f e)
  | Store (a, i, e) -> Store (a, f i, f e)
  | If (c, t, e) -> If (f c, map_exprs_list f t, map_exprs_list f e)
  | For l ->
    For { l with lo = f l.lo; hi = f l.hi; body = map_exprs_list f l.body }

and map_exprs_list f stmts = List.map (map_exprs f) stmts

module Sset = Expr.Sset

(** Scalars assigned anywhere in [stmts] (loop indices included). *)
let defs stmts =
  fold_list
    (fun acc s ->
      match s with
      | Assign (v, _) -> Sset.add v acc
      | For l -> Sset.add l.index acc
      | Store _ | If _ -> acc)
    Sset.empty stmts

(** Scalars read anywhere in [stmts] (in expressions or loop bounds). *)
let uses stmts =
  fold_exprs (fun acc e -> Sset.union acc (Expr.var_set e)) Sset.empty stmts

(** All scalars referenced (read or written). *)
let scalars stmts = Sset.union (defs stmts) (uses stmts)

(** Arrays loaded from / stored to. *)
let arrays_read stmts =
  fold_exprs
    (fun acc e -> List.fold_left (fun s a -> Sset.add a s) acc (Expr.arrays_loaded e))
    Sset.empty stmts

let arrays_written stmts =
  fold_list
    (fun acc s -> match s with Store (a, _, _) -> Sset.add a acc | _ -> acc)
    Sset.empty stmts

(** Memory references: loads in expressions plus stores. *)
let memory_reference_count stmts =
  let loads = fold_exprs (fun n e -> n + Expr.load_count e) 0 stmts in
  let stores =
    fold_list (fun n s -> match s with Store _ -> n + 1 | _ -> n) 0 stmts
  in
  loads + stores

(** Hardware operator count of the statement list: operators in every
    expression, plus one store port operator per [Store]. *)
let operator_count stmts =
  let in_exprs = fold_exprs (fun n e -> n + Expr.operator_count e) 0 stmts in
  let stores =
    fold_list (fun n s -> match s with Store _ -> n + 1 | _ -> n) 0 stmts
  in
  in_exprs + stores

(** Is the statement list a single basic block (no control flow)? *)
let is_straight_line stmts =
  List.for_all (function Assign _ | Store _ -> true | If _ | For _ -> false) stmts

(** Rename every scalar occurrence (defs and uses) with [rn]. *)
let rec rename_vars rn s =
  match s with
  | Assign (v, e) -> Assign (rn v, Expr.rename rn e)
  | Store (a, i, e) -> Store (a, Expr.rename rn i, Expr.rename rn e)
  | If (c, t, e) ->
    If (Expr.rename rn c, List.map (rename_vars rn) t, List.map (rename_vars rn) e)
  | For l ->
    For
      { index = rn l.index;
        lo = Expr.rename rn l.lo;
        hi = Expr.rename rn l.hi;
        step = l.step;
        body = List.map (rename_vars rn) l.body }

let rename_vars_list rn stmts = List.map (rename_vars rn) stmts

(** Statement count (structural, loops counted once). *)
let size stmts = fold_list (fun n _ -> n + 1) 0 stmts

(* --- program-level helpers --- *)

let scalar_decls p = p.params @ p.locals

let lookup_scalar_ty p v =
  match List.assoc_opt v (scalar_decls p) with
  | Some ty -> Some ty
  | None -> None

let lookup_array p a = List.find_opt (fun d -> String.equal d.a_name a) p.arrays

let lookup_rom p r = List.find_opt (fun d -> String.equal d.r_name r) p.roms

(** Declare additional locals, ignoring names already declared. *)
let add_locals p vars =
  let known = List.map fst (scalar_decls p) in
  let fresh =
    List.filter (fun (v, _) -> not (List.exists (String.equal v) known)) vars
  in
  (* keep the first declaration when [vars] itself repeats a name *)
  let rec dedup seen = function
    | [] -> []
    | (v, t) :: rest ->
      if Sset.mem v seen then dedup seen rest
      else (v, t) :: dedup (Sset.add v seen) rest
  in
  { p with locals = p.locals @ dedup Sset.empty fresh }

(** A fresh scalar name based on [base] that collides with no declared
    scalar of [p] and none of [avoid]. *)
let fresh_var p ?(avoid = []) base =
  let taken =
    Sset.union
      (Sset.of_list (List.map fst (scalar_decls p)))
      (Sset.of_list avoid)
  in
  if not (Sset.mem base taken) then base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Sset.mem cand taken then go (i + 1) else cand
    in
    go 1
