(** Expressions of the loop IR.

    Expressions are pure except for {!constructor:Load}, which reads
    memory and counts as a memory reference in the hardware cost model.
    [Rom] lookups read baked-in local tables and do not use a memory
    port. *)

open Types

type t =
  | Int of int
  | Float of float
  | Var of var
  | Load of array_id * t  (** memory load [a[idx]] *)
  | Rom of rom_id * t  (** local-ROM lookup (not a memory reference) *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of t * t * t  (** [c ? a : b]; both arms always evaluate *)

(** Structural equality; floats compare bit-for-bit. *)
val equal : t -> t -> bool

(** [fold f acc e] folds [f] over every node of [e], pre-order. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** [map f e] rewrites every node bottom-up. *)
val map : (t -> t) -> t -> t

(** Scalars read, left-to-right, with duplicates. *)
val vars : t -> var list

module Sset : Set.S with type elt = string

val var_set : t -> Sset.t

(** Does [e] read scalar [v]? *)
val mem_var : var -> t -> bool

(** Arrays loaded from (no duplicates). *)
val arrays_loaded : t -> array_id list

(** ROMs looked up (no duplicates). *)
val roms_used : t -> rom_id list

(** Number of memory loads. *)
val load_count : t -> int

val has_load : t -> bool

(** [subst_vars f e] replaces each [Var v] by [f v] when it is [Some]. *)
val subst_vars : (var -> t option) -> t -> t

(** Rename every variable occurrence. *)
val rename : (var -> var) -> t -> t

(** Index expressions of loads from array [a]. *)
val load_indices : array_id -> t -> t list

(** Evaluate a binary operator on values.
    @raise Ir_error on type mismatch or division by zero. *)
val eval_binop : binop -> value -> value -> value

(** @raise Ir_error on type mismatch. *)
val eval_unop : unop -> value -> value

(** Constant folding and exactness-preserving algebraic simplification.
    Never folds away memory loads, faulting divisions, or float
    identities that could change rounding. *)
val simplify : t -> t

(** Node count. *)
val size : t -> int

(** Datapath operators in [e]: every node except constants and variable
    reads. *)
val operator_count : t -> int
