(* Core type definitions for the loop IR.

   The IR models the subset of C that the Nimble Compiler front end feeds
   into kernel extraction: scalar integer/float computation, arrays in
   memory, local ROMs (used by the `-hw` benchmark variants), counted FOR
   loops and structured conditionals.  Everything downstream — dependence
   analysis, the DFG, the transformations and the hardware estimator —
   operates on these types. *)

type ty =
  | Tint   (** machine integer (benchmarks mask to their own widths) *)
  | Tfloat (** IEEE double; used by the IIR benchmark *)

let equal_ty (a : ty) (b : ty) = a = b

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"

(** Binary operators.  Integer and float arithmetic are distinct operator
    kinds because they map to different hardware operators with different
    delay and area. *)
type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Fcmp_lt | Fcmp_le

type unop =
  | Neg   (** integer negation *)
  | BNot  (** bitwise complement *)
  | Fneg  (** float negation *)
  | I2f   (** int -> float conversion *)
  | F2i   (** float -> int truncation *)

let all_binops =
  [ Add; Sub; Mul; Div; Mod; BAnd; BOr; BXor; Shl; Shr;
    Lt; Le; Gt; Ge; Eq; Ne; Fadd; Fsub; Fmul; Fdiv; Fcmp_lt; Fcmp_le ]

let all_unops = [ Neg; BNot; Fneg; I2f; F2i ]

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fdiv -> "/."
  | Fcmp_lt -> "<." | Fcmp_le -> "<=."

let unop_name = function
  | Neg -> "-" | BNot -> "~" | Fneg -> "-." | I2f -> "(float)" | F2i -> "(int)"

(** Result/operand typing of a binary operator: [(lhs, rhs, result)]. *)
let binop_sig = function
  | Add | Sub | Mul | Div | Mod | BAnd | BOr | BXor | Shl | Shr ->
    (Tint, Tint, Tint)
  | Lt | Le | Gt | Ge | Eq | Ne -> (Tint, Tint, Tint)
  | Fadd | Fsub | Fmul | Fdiv -> (Tfloat, Tfloat, Tfloat)
  | Fcmp_lt | Fcmp_le -> (Tfloat, Tfloat, Tint)

let unop_sig = function
  | Neg | BNot -> (Tint, Tint)
  | Fneg -> (Tfloat, Tfloat)
  | I2f -> (Tint, Tfloat)
  | F2i -> (Tfloat, Tint)

(** Whether a binary operator is commutative (used by simplification and
    DFG canonicalization). *)
let binop_commutative = function
  | Add | Mul | BAnd | BOr | BXor | Eq | Ne | Fadd | Fmul -> true
  | Sub | Div | Mod | Shl | Shr | Lt | Le | Gt | Ge | Fsub | Fdiv
  | Fcmp_lt | Fcmp_le -> false

(** Scalar variables are plain names; array and ROM identifiers live in
    separate namespaces. *)
type var = string
type array_id = string
type rom_id = string

(** Runtime values used by the interpreter. *)
type value =
  | VInt of int
  | VFloat of float

let pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.pf ppf "%h" f

let equal_value a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y ->
    (* bit-for-bit equality, so NaNs compare equal to themselves and
       transformed programs must preserve exact float results *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | VInt _, VFloat _ | VFloat _, VInt _ -> false

let ty_of_value = function VInt _ -> Tint | VFloat _ -> Tfloat

exception Ir_error of string

let ir_error fmt = Fmt.kstr (fun s -> raise (Ir_error s)) fmt
