(* Well-formedness checks for programs.  Every transformation output is
   run through [check] in tests, so the rules double as the IR's static
   semantics:

   - every scalar referenced is declared exactly once (params + locals);
   - every array / ROM referenced is declared;
   - expressions are well-typed; array element types match stores/loads;
   - conditions of [If] and select are integers;
   - loop steps are positive; loop indices are declared ints and are not
     assigned inside their own loop body;
   - ROM indices are integers.  *)

open Types

type error = { err_path : string; err_msg : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.err_path e.err_msg

exception Invalid of error list

module Smap = Map.Make (String)

type env = {
  scalars : ty Smap.t;
  arrays : Stmt.array_decl Smap.t;
  roms : Stmt.rom_decl Smap.t;
}

let build_env (p : Stmt.program) errs =
  let scalars, errs =
    List.fold_left
      (fun (m, errs) (v, t) ->
        if Smap.mem v m then
          ( m,
            { err_path = p.prog_name;
              err_msg = Printf.sprintf "scalar %s declared twice" v }
            :: errs )
        else (Smap.add v t m, errs))
      (Smap.empty, errs) (Stmt.scalar_decls p)
  in
  let arrays, errs =
    List.fold_left
      (fun (m, errs) (d : Stmt.array_decl) ->
        if Smap.mem d.a_name m then
          ( m,
            { err_path = p.prog_name;
              err_msg = Printf.sprintf "array %s declared twice" d.a_name }
            :: errs )
        else if d.a_size <= 0 then
          ( Smap.add d.a_name d m,
            { err_path = p.prog_name;
              err_msg = Printf.sprintf "array %s has size %d" d.a_name d.a_size }
            :: errs )
        else (Smap.add d.a_name d m, errs))
      (Smap.empty, errs) p.arrays
  in
  let roms, errs =
    List.fold_left
      (fun (m, errs) (r : Stmt.rom_decl) ->
        if Smap.mem r.r_name m then
          ( m,
            { err_path = p.prog_name;
              err_msg = Printf.sprintf "rom %s declared twice" r.r_name }
            :: errs )
        else if Array.length r.r_data = 0 then
          ( Smap.add r.r_name r m,
            { err_path = p.prog_name;
              err_msg = Printf.sprintf "rom %s is empty" r.r_name }
            :: errs )
        else (Smap.add r.r_name r m, errs))
      (Smap.empty, errs) p.roms
  in
  ({ scalars; arrays; roms }, errs)

(* Type an expression; accumulate errors instead of failing fast so a
   transformation bug surfaces every ill-typed site at once.  Returns
   [None] when the type cannot be determined. *)
let rec type_expr env path errs (e : Expr.t) : ty option * error list =
  let err msg = { err_path = path; err_msg = msg } in
  match e with
  | Int _ -> (Some Tint, errs)
  | Float _ -> (Some Tfloat, errs)
  | Var v -> (
    match Smap.find_opt v env.scalars with
    | Some t -> (Some t, errs)
    | None -> (None, err (Printf.sprintf "undeclared scalar %s" v) :: errs))
  | Load (a, i) -> (
    let ti, errs = type_expr env path errs i in
    let errs =
      match ti with
      | Some Tfloat -> err (Printf.sprintf "index of %s is a float" a) :: errs
      | Some Tint | None -> errs
    in
    match Smap.find_opt a env.arrays with
    | Some d -> (Some d.a_ty, errs)
    | None -> (None, err (Printf.sprintf "undeclared array %s" a) :: errs))
  | Rom (r, i) -> (
    let ti, errs = type_expr env path errs i in
    let errs =
      match ti with
      | Some Tfloat -> err (Printf.sprintf "index of rom %s is a float" r) :: errs
      | Some Tint | None -> errs
    in
    match Smap.find_opt r env.roms with
    | Some _ -> (Some Tint, errs)
    | None -> (None, err (Printf.sprintf "undeclared rom %s" r) :: errs))
  | Unop (o, x) ->
    let targ, tres = unop_sig o in
    let tx, errs = type_expr env path errs x in
    let errs =
      match tx with
      | Some t when not (equal_ty t targ) ->
        err
          (Printf.sprintf "operand of %s has type %s, expected %s"
             (unop_name o)
             (Fmt.str "%a" pp_ty t)
             (Fmt.str "%a" pp_ty targ))
        :: errs
      | Some _ | None -> errs
    in
    (Some tres, errs)
  | Binop (o, l, r) ->
    let tl_exp, tr_exp, tres = binop_sig o in
    let tl, errs = type_expr env path errs l in
    let tr, errs = type_expr env path errs r in
    let check got expected side errs =
      match got with
      | Some t when not (equal_ty t expected) ->
        err
          (Printf.sprintf "%s operand of %s has type %s, expected %s" side
             (binop_name o)
             (Fmt.str "%a" pp_ty t)
             (Fmt.str "%a" pp_ty expected))
        :: errs
      | Some _ | None -> errs
    in
    let errs = check tl tl_exp "left" errs in
    let errs = check tr tr_exp "right" errs in
    (Some tres, errs)
  | Select (c, t, f) -> (
    let tc, errs = type_expr env path errs c in
    let errs =
      match tc with
      | Some Tfloat -> err "select condition is a float" :: errs
      | Some Tint | None -> errs
    in
    let tt, errs = type_expr env path errs t in
    let tf, errs = type_expr env path errs f in
    match (tt, tf) with
    | Some a, Some b when not (equal_ty a b) ->
      (Some a, err "select branches have different types" :: errs)
    | Some a, _ -> (Some a, errs)
    | None, b -> (b, errs))

let rec check_stmt env path bound_indices errs (s : Stmt.t) =
  let err msg = { err_path = path; err_msg = msg } in
  match s with
  | Assign (x, e) -> (
    if List.exists (String.equal x) bound_indices then
      err (Printf.sprintf "loop index %s assigned inside its loop" x) :: errs
    else
      let te, errs = type_expr env path errs e in
      match (Smap.find_opt x env.scalars, te) with
      | None, _ -> err (Printf.sprintf "undeclared scalar %s assigned" x) :: errs
      | Some tx, Some te when not (equal_ty tx te) ->
        err
          (Printf.sprintf "%s : %s assigned a %s" x
             (Fmt.str "%a" pp_ty tx)
             (Fmt.str "%a" pp_ty te))
        :: errs
      | Some _, _ -> errs)
  | Store (a, i, e) -> (
    let ti, errs = type_expr env path errs i in
    let errs =
      match ti with
      | Some Tfloat -> err (Printf.sprintf "index of %s is a float" a) :: errs
      | Some Tint | None -> errs
    in
    let te, errs = type_expr env path errs e in
    match Smap.find_opt a env.arrays with
    | None -> err (Printf.sprintf "undeclared array %s stored to" a) :: errs
    | Some d -> (
      match te with
      | Some t when not (equal_ty t d.a_ty) ->
        err (Printf.sprintf "array %s stored a wrong-typed value" a) :: errs
      | Some _ | None -> errs))
  | If (c, t, e) ->
    let tc, errs = type_expr env path errs c in
    let errs =
      match tc with
      | Some Tfloat -> err "if condition is a float" :: errs
      | Some Tint | None -> errs
    in
    let errs = List.fold_left (check_stmt env path bound_indices) errs t in
    List.fold_left (check_stmt env path bound_indices) errs e
  | For l ->
    let errs =
      if l.step <= 0 then
        err (Printf.sprintf "loop %s has non-positive step %d" l.index l.step)
        :: errs
      else errs
    in
    let errs =
      match Smap.find_opt l.index env.scalars with
      | None -> err (Printf.sprintf "undeclared loop index %s" l.index) :: errs
      | Some Tfloat -> err (Printf.sprintf "loop index %s is a float" l.index) :: errs
      | Some Tint -> errs
    in
    let errs =
      if List.exists (String.equal l.index) bound_indices then
        err (Printf.sprintf "loop index %s shadows an enclosing loop" l.index)
        :: errs
      else errs
    in
    let check_bound side b errs =
      let tb, errs = type_expr env path errs b in
      match tb with
      | Some Tfloat ->
        err (Printf.sprintf "%s bound of loop %s is a float" side l.index) :: errs
      | Some Tint | None -> errs
    in
    let errs = check_bound "lower" l.lo errs in
    let errs = check_bound "upper" l.hi errs in
    List.fold_left
      (check_stmt env path (l.index :: bound_indices))
      errs l.body

(** All well-formedness violations of [p], empty when valid. *)
let errors (p : Stmt.program) : error list =
  let env, errs = build_env p [] in
  let errs = List.fold_left (check_stmt env p.prog_name []) errs p.body in
  List.rev errs

let is_valid p = errors p = []

(** Raise [Invalid] if [p] is ill-formed; return [p] otherwise, so the
    check can be spliced into pipelines. *)
let check (p : Stmt.program) : Stmt.program =
  match errors p with [] -> p | errs -> raise (Invalid errs)

let () =
  Printexc.register_printer (function
    | Invalid errs ->
      Some (Fmt.str "Validate.Invalid:@\n%a" (Fmt.list pp_error) errs)
    | _ -> None)
