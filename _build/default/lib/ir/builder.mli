(** A small DSL for writing IR programs by hand.

    Opening this module rebinds the arithmetic and comparison operators
    to expression constructors — keep the [open] scoped tightly
    ([B.(...)]) so integer arithmetic nearby is unaffected. *)

open Types

val int : int -> Expr.t
val flt : float -> Expr.t
val v : var -> Expr.t
val load : array_id -> Expr.t -> Expr.t
val rom : rom_id -> Expr.t -> Expr.t
val select : Expr.t -> Expr.t -> Expr.t -> Expr.t
val ( + ) : Expr.t -> Expr.t -> Expr.t
val ( - ) : Expr.t -> Expr.t -> Expr.t
val ( * ) : Expr.t -> Expr.t -> Expr.t
val ( / ) : Expr.t -> Expr.t -> Expr.t
val ( % ) : Expr.t -> Expr.t -> Expr.t
val band : Expr.t -> Expr.t -> Expr.t
val bor : Expr.t -> Expr.t -> Expr.t
val bxor : Expr.t -> Expr.t -> Expr.t
val shl : Expr.t -> Expr.t -> Expr.t
val shr : Expr.t -> Expr.t -> Expr.t
val ( < ) : Expr.t -> Expr.t -> Expr.t
val ( <= ) : Expr.t -> Expr.t -> Expr.t
val ( > ) : Expr.t -> Expr.t -> Expr.t
val ( >= ) : Expr.t -> Expr.t -> Expr.t
val ( == ) : Expr.t -> Expr.t -> Expr.t
val ( != ) : Expr.t -> Expr.t -> Expr.t
val ( +. ) : Expr.t -> Expr.t -> Expr.t
val ( -. ) : Expr.t -> Expr.t -> Expr.t
val ( *. ) : Expr.t -> Expr.t -> Expr.t
val ( /. ) : Expr.t -> Expr.t -> Expr.t
val neg : Expr.t -> Expr.t
val bnot : Expr.t -> Expr.t
val fneg : Expr.t -> Expr.t
val i2f : Expr.t -> Expr.t
val f2i : Expr.t -> Expr.t

(** [x <-- e] is the assignment statement [x = e]. *)
val ( <-- ) : var -> Expr.t -> Stmt.t

val store : array_id -> Expr.t -> Expr.t -> Stmt.t
val if_ : Expr.t -> Stmt.t list -> Stmt.t list -> Stmt.t

(** [for_ i ~lo ~hi ~step body] is [for (i = lo; i < hi; i += step)];
    [lo] defaults to 0 and [step] to 1. *)
val for_ : var -> ?lo:Expr.t -> hi:Expr.t -> ?step:int -> Stmt.t list -> Stmt.t

val input : ?ty:ty -> array_id -> int -> Stmt.array_decl
val output : ?ty:ty -> array_id -> int -> Stmt.array_decl
val local_array : ?ty:ty -> array_id -> int -> Stmt.array_decl
val rom_decl : rom_id -> int array -> Stmt.rom_decl

val program :
  ?params:(var * ty) list ->
  ?locals:(var * ty) list ->
  ?arrays:Stmt.array_decl list ->
  ?roms:Stmt.rom_decl list ->
  string ->
  Stmt.t list ->
  Stmt.program
