(** C export (the embedded-C-compiler corner of the Nimble flow,
    Figure 5.2): emit a translation unit for a program, or a standalone
    runnable C file that loads a workload and prints every output array
    element (integers decimal, doubles hex) for diffing against the
    interpreter.

    Integers emit as [int64_t] (the interpreter's ints are 63-bit):
    kernels that keep values masked are bit-identical; overflow past 62
    bits may differ. *)

(** C-safe rendering of an IR name ('@'/'#' of generated copies are
    escaped). *)
val c_name : string -> string

val program_to_c : Stmt.program -> string
val standalone : Stmt.program -> workload:Interp.workload -> string
val write_standalone : Stmt.program -> workload:Interp.workload -> path:string -> unit
