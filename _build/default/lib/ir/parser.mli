(** Parser for the kernel surface syntax — the same C-like form
    {!Pp.pp_program} emits, so programs round-trip through text.
    Comments (`//`, `/* */`) are skipped; `name(expr)` is a ROM lookup;
    `(int)` / `(float)` are conversions; dotted operators are the float
    forms. *)

exception Parse_error of { line : int; col : int; msg : string }

(** @raise Parse_error with position information. *)
val program_of_string : string -> Stmt.program

(** Parse a single expression (tools and tests). *)
val expr_of_string : string -> Expr.t

(** @raise Parse_error / [Sys_error]. *)
val program_of_file : string -> Stmt.program
