lib/ir/types.ml: Fmt Int64
