lib/ir/validate.mli: Fmt Stmt
