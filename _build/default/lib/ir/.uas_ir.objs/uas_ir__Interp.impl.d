lib/ir/interp.ml: Array Expr Fmt Hashtbl List Opinfo Pp Printf Stmt String Types
