lib/ir/parser.ml: Array Char Expr List Pp Printexc Printf Stmt String Types
