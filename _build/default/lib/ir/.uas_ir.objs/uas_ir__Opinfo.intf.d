lib/ir/opinfo.mli: Types
