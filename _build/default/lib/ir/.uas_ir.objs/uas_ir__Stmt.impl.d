lib/ir/stmt.ml: Expr List Printf String Types
