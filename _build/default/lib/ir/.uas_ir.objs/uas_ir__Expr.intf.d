lib/ir/expr.mli: Set Types
