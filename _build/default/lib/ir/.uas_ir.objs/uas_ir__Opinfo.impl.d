lib/ir/opinfo.ml: Printf Types
