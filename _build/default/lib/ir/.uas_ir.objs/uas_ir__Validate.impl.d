lib/ir/validate.ml: Array Expr Fmt List Map Printexc Printf Stmt String Types
