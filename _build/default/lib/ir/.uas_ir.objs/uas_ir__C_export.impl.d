lib/ir/c_export.ml: Array Buffer Expr Interp List Printf Stmt String Types
