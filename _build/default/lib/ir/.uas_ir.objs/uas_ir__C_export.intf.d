lib/ir/c_export.mli: Interp Stmt
