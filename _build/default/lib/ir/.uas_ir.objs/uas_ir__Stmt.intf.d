lib/ir/stmt.mli: Expr Types
