lib/ir/builder.ml: Expr Stmt Types
