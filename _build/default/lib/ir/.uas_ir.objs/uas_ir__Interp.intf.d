lib/ir/interp.mli: Hashtbl Stmt Types
