lib/ir/pp.mli: Expr Fmt Stmt Types
