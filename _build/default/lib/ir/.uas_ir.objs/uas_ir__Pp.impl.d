lib/ir/pp.ml: Array Expr Fmt List Printf Stdlib Stmt String Types
