lib/ir/builder.mli: Expr Stmt Types
