lib/ir/expr.ml: Int64 List Set String Types
