lib/ir/parser.mli: Expr Stmt
