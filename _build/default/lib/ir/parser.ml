(* Parser for the kernel surface syntax — the same C-like form the
   pretty-printer emits, so programs round-trip through text:

     program quickstart {
       param int k;
       in int data[16];
       out int result[16];
       rom ftable = { 163, 215, 9 };
       int i; int j; int a;
       for (i = 0; i < 16; i++) {
         a = data[i];
         for (j = 0; j < 8; j++) {
           a = (a * 5 + 1) & 65535;
           if (a > k) { a = a - k; } else { a = a + 1; }
         }
         result[i] = a;
       }
     }

   Operator precedences match [Pp.prec_of_binop]; `//` line and
   `/* */` block comments are skipped; `name(expr)` is a ROM lookup;
   `(int)`/`(float)` are conversions; dotted operators (+. -. *. /.
   <. <=.) are the float forms. *)

open Types

exception Parse_error of { line : int; col : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error e ->
      Some (Printf.sprintf "Parse_error at %d:%d: %s" e.line e.col e.msg)
    | _ -> None)

(* --- lexer --- *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string  (* program param in out local rom int float for if else *)
  | PUNCT of string
  | EOF

type lexed = { tok : token; t_line : int; t_col : int }

let keywords =
  [ "program"; "param"; "in"; "out"; "local"; "rom"; "int"; "float"; "for";
    "if"; "else" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '@' || c = '#'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let toks = ref [] in
  let error msg = raise (Parse_error { line = !line; col = !col; msg }) in
  let emit tok l c = toks := { tok; t_line = l; t_col = c } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let rec skip () =
        if !i + 1 >= n then error "unterminated comment"
        else if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ()
        end
        else begin
          advance ();
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      (* integer or float literal; hex with 0x *)
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        while
          !i < n
          && (is_digit src.[!i]
             || (Char.lowercase_ascii src.[!i] >= 'a'
                && Char.lowercase_ascii src.[!i] <= 'f'))
        do
          advance ()
        done;
        emit (INT (int_of_string (String.sub src start (!i - start)))) l0 c0
      end
      else begin
        let is_float = ref false in
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        if !i < n && src.[!i] = '.' && not (peek 1 = Some '.') then begin
          is_float := true;
          advance ();
          while !i < n && is_digit src.[!i] do
            advance ()
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          is_float := true;
          advance ();
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
          while !i < n && is_digit src.[!i] do
            advance ()
          done
        end;
        let text = String.sub src start (!i - start) in
        if !is_float then emit (FLOAT (float_of_string text)) l0 c0
        else emit (INT (int_of_string text)) l0 c0
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      if List.mem text keywords then emit (KW text) l0 c0
      else emit (IDENT text) l0 c0
    end
    else begin
      (* punctuation, longest match first *)
      let try3 =
        if !i + 2 < n then Some (String.sub src !i 3) else None
      in
      let try2 = if !i + 1 < n then Some (String.sub src !i 2) else None in
      let three = [ "<=." ] in
      let two =
        [ "=="; "!="; "<="; ">="; "<<"; ">>"; "++"; "+="; "+."; "-."; "*.";
          "/."; "<." ]
      in
      let consume k text =
        emit (PUNCT text) l0 c0;
        for _ = 1 to k do
          advance ()
        done
      in
      match try3 with
      | Some t3 when List.mem t3 three -> consume 3 t3
      | _ -> (
        match try2 with
        | Some t2 when List.mem t2 two -> consume 2 t2
        | _ -> (
          match c with
          | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '=' | '<' | '>'
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '?' | ':' ->
            consume 1 (String.make 1 c)
          | c -> error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev ({ tok = EOF; t_line = !line; t_col = !col } :: !toks)

(* --- parser state --- *)

type state = { mutable toks : lexed list }

let current st =
  match st.toks with t :: _ -> t | [] -> assert false

let error_at (t : lexed) msg =
  raise (Parse_error { line = t.t_line; col = t.t_col; msg })

let describe = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> "identifier " ^ s
  | KW s -> "keyword " ^ s
  | PUNCT s -> "'" ^ s ^ "'"
  | EOF -> "end of input"

let pop st =
  let t = current st in
  (match st.toks with _ :: rest -> st.toks <- rest | [] -> ());
  t

let expect_punct st s =
  let t = pop st in
  match t.tok with
  | PUNCT p when String.equal p s -> ()
  | tok -> error_at t (Printf.sprintf "expected '%s', found %s" s (describe tok))

let expect_kw st s =
  let t = pop st in
  match t.tok with
  | KW k when String.equal k s -> ()
  | tok -> error_at t (Printf.sprintf "expected '%s', found %s" s (describe tok))

let expect_ident st =
  let t = pop st in
  match t.tok with
  | IDENT x -> x
  | tok -> error_at t ("expected an identifier, found " ^ describe tok)

let expect_int st =
  let t = pop st in
  match t.tok with
  | INT v -> v
  | PUNCT "-" -> (
    let t2 = pop st in
    match t2.tok with
    | INT v -> -v
    | tok -> error_at t2 ("expected an integer, found " ^ describe tok))
  | tok -> error_at t ("expected an integer, found " ^ describe tok)

let peek_punct st s =
  match (current st).tok with PUNCT p -> String.equal p s | _ -> false

let accept_punct st s =
  if peek_punct st s then begin
    ignore (pop st);
    true
  end
  else false

(* --- expressions (precedence climbing; levels match Pp) --- *)

let binop_of_punct = function
  | "*" -> Some Mul | "/" -> Some Div | "%" -> Some Mod
  | "*." -> Some Fmul | "/." -> Some Fdiv
  | "+" -> Some Add | "-" -> Some Sub
  | "+." -> Some Fadd | "-." -> Some Fsub
  | "<<" -> Some Shl | ">>" -> Some Shr
  | "<" -> Some Lt | "<=" -> Some Le | ">" -> Some Gt | ">=" -> Some Ge
  | "<." -> Some Fcmp_lt | "<=." -> Some Fcmp_le
  | "==" -> Some Eq | "!=" -> Some Ne
  | "&" -> Some BAnd | "^" -> Some BXor | "|" -> Some BOr
  | _ -> None

let prec_of = Pp.prec_of_binop

let rec parse_expr st : Expr.t =
  let e = parse_binary st 0 in
  if accept_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let f = parse_expr st in
    Expr.Select (e, t, f)
  end
  else e

and parse_binary st min_prec : Expr.t =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (current st).tok with
    | PUNCT p -> (
      match binop_of_punct p with
      | Some op when prec_of op >= min_prec ->
        ignore (pop st);
        let rhs = parse_binary st (prec_of op + 1) in
        lhs := Expr.Binop (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : Expr.t =
  let t = current st in
  match t.tok with
  | PUNCT "-" -> (
    ignore (pop st);
    match (current st).tok with
    | INT v ->
      ignore (pop st);
      Expr.Int (-v)
    | FLOAT f ->
      ignore (pop st);
      Expr.Float (-.f)
    | _ -> Expr.Unop (Neg, parse_unary st))
  | PUNCT "-." ->
    ignore (pop st);
    Expr.Unop (Fneg, parse_unary st)
  | PUNCT "~" ->
    ignore (pop st);
    Expr.Unop (BNot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st : Expr.t =
  let t = pop st in
  match t.tok with
  | INT v -> Expr.Int v
  | FLOAT f -> Expr.Float f
  | IDENT x ->
    if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      Expr.Load (x, idx)
    end
    else if accept_punct st "(" then begin
      let idx = parse_expr st in
      expect_punct st ")";
      Expr.Rom (x, idx)
    end
    else Expr.Var x
  | PUNCT "(" -> (
    (* parenthesized expression or a conversion *)
    match (current st).tok with
    | KW "float" ->
      ignore (pop st);
      expect_punct st ")";
      Expr.Unop (I2f, parse_unary st)
    | KW "int" ->
      ignore (pop st);
      expect_punct st ")";
      Expr.Unop (F2i, parse_unary st)
    | _ ->
      let e = parse_expr st in
      expect_punct st ")";
      e)
  | tok -> error_at t ("expected an expression, found " ^ describe tok)

(* --- statements --- *)

let rec parse_stmt st : Stmt.t =
  let t = current st in
  match t.tok with
  | KW "for" -> parse_for st
  | KW "if" -> parse_if st
  | IDENT x -> (
    ignore (pop st);
    if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      Stmt.Store (x, idx, e)
    end
    else begin
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      Stmt.Assign (x, e)
    end)
  | tok -> error_at t ("expected a statement, found " ^ describe tok)

and parse_block st : Stmt.t list =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_for st : Stmt.t =
  expect_kw st "for";
  expect_punct st "(";
  let index = expect_ident st in
  expect_punct st "=";
  let lo = parse_expr st in
  expect_punct st ";";
  let index2 = expect_ident st in
  if not (String.equal index index2) then
    error_at (current st)
      (Printf.sprintf "loop condition tests %s, expected %s" index2 index);
  expect_punct st "<";
  let hi = parse_expr st in
  expect_punct st ";";
  let index3 = expect_ident st in
  if not (String.equal index index3) then
    error_at (current st)
      (Printf.sprintf "loop step updates %s, expected %s" index3 index);
  let step =
    if accept_punct st "++" then 1
    else begin
      expect_punct st "+=";
      expect_int st
    end
  in
  expect_punct st ")";
  let body = parse_block st in
  Stmt.For { index; lo; hi; step; body }

and parse_if st : Stmt.t =
  expect_kw st "if";
  expect_punct st "(";
  let c = parse_expr st in
  expect_punct st ")";
  let then_ = parse_block st in
  let else_ =
    match (current st).tok with
    | KW "else" ->
      ignore (pop st);
      parse_block st
    | _ -> []
  in
  Stmt.If (c, then_, else_)

(* --- declarations and programs --- *)

let parse_ty st =
  let t = pop st in
  match t.tok with
  | KW "int" -> Tint
  | KW "float" -> Tfloat
  | tok -> error_at t ("expected a type, found " ^ describe tok)

type decls = {
  mutable d_params : (var * ty) list;
  mutable d_locals : (var * ty) list;
  mutable d_arrays : Stmt.array_decl list;
  mutable d_roms : Stmt.rom_decl list;
}

let parse_array_decl st kind d =
  let ty = parse_ty st in
  let name = expect_ident st in
  expect_punct st "[";
  let size = expect_int st in
  expect_punct st "]";
  expect_punct st ";";
  d.d_arrays <-
    d.d_arrays @ [ { Stmt.a_name = name; a_ty = ty; a_size = size; a_kind = kind } ]

let parse_rom_decl st d =
  let name = expect_ident st in
  expect_punct st "=";
  expect_punct st "{";
  let rec items acc =
    let v = expect_int st in
    if accept_punct st "," then items (v :: acc) else List.rev (v :: acc)
  in
  let data = if peek_punct st "}" then [] else items [] in
  expect_punct st "}";
  expect_punct st ";";
  d.d_roms <- d.d_roms @ [ { Stmt.r_name = name; r_data = Array.of_list data } ]

(* a scalar or array declaration starting with a bare type keyword *)
let parse_plain_decl st d =
  let ty = parse_ty st in
  let name = expect_ident st in
  if accept_punct st "[" then begin
    let size = expect_int st in
    expect_punct st "]";
    expect_punct st ";";
    d.d_arrays <-
      d.d_arrays
      @ [ { Stmt.a_name = name; a_ty = ty; a_size = size; a_kind = Stmt.Local } ]
  end
  else begin
    expect_punct st ";";
    d.d_locals <- d.d_locals @ [ (name, ty) ]
  end

let parse_program_tokens st : Stmt.program =
  expect_kw st "program";
  let name = expect_ident st in
  expect_punct st "{";
  let d = { d_params = []; d_locals = []; d_arrays = []; d_roms = [] } in
  let rec decls () =
    match (current st).tok with
    | KW "param" ->
      ignore (pop st);
      let ty = parse_ty st in
      let x = expect_ident st in
      expect_punct st ";";
      d.d_params <- d.d_params @ [ (x, ty) ];
      decls ()
    | KW "in" ->
      ignore (pop st);
      parse_array_decl st Stmt.Input d;
      decls ()
    | KW "out" ->
      ignore (pop st);
      parse_array_decl st Stmt.Output d;
      decls ()
    | KW "local" ->
      ignore (pop st);
      parse_array_decl st Stmt.Local d;
      decls ()
    | KW "rom" ->
      ignore (pop st);
      parse_rom_decl st d;
      decls ()
    | KW ("int" | "float") ->
      parse_plain_decl st d;
      decls ()
    | _ -> ()
  in
  decls ();
  let rec stmts acc =
    if peek_punct st "}" then List.rev acc else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  expect_punct st "}";
  (match (current st).tok with
  | EOF -> ()
  | tok -> error_at (current st) ("trailing input: " ^ describe tok));
  { Stmt.prog_name = name;
    params = d.d_params;
    locals = d.d_locals;
    arrays = d.d_arrays;
    roms = d.d_roms;
    body }

(** Parse a whole program.  @raise Parse_error with position info. *)
let program_of_string (src : string) : Stmt.program =
  parse_program_tokens { toks = tokenize src }

(** Parse a single expression (for tests and tools). *)
let expr_of_string (src : string) : Expr.t =
  let st = { toks = tokenize src } in
  let e = parse_expr st in
  (match (current st).tok with
  | EOF -> e
  | tok -> error_at (current st) ("trailing input: " ^ describe tok))

(** Parse a program from a file.  @raise Parse_error / Sys_error. *)
let program_of_file (path : string) : Stmt.program =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  program_of_string src
