(** Default hardware characteristics of the IR operators: latency in
    cycles and area in datapath rows (the ACEV-style model of §5.1 and
    §6.1).  The hardware estimator can override these through its
    target configuration; operators are assumed internally pipelined
    (one new input per cycle). *)

open Types

type op_kind =
  | Op_binop of binop
  | Op_unop of unop
  | Op_load  (** memory read — uses a memory port *)
  | Op_store  (** memory write — uses a memory port *)
  | Op_rom  (** local-ROM lookup — LUT-implemented, no port *)
  | Op_select  (** 2:1 multiplexer from if-conversion *)
  | Op_move  (** register-to-register move (squash rotation) *)
  | Op_const  (** constant source *)

val equal_op_kind : op_kind -> op_kind -> bool
val op_kind_name : op_kind -> string

(** Latency in clock cycles (0 for moves and constants). *)
val default_delay : op_kind -> int

(** Area in datapath rows (0 for moves — registers are costed
    separately — and constants). *)
val default_area : op_kind -> int

(** Consumes a memory port in its issue cycle? *)
val uses_memory_port : op_kind -> bool

(** A real datapath operator for Figure 6.4-style counting
    (moves/constants excluded)? *)
val is_real_operator : op_kind -> bool
