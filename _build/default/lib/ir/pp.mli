(** C-like pretty-printing of the IR.  The program form is the surface
    syntax {!Parser} reads back, so
    [Parser.program_of_string (program_to_string p)] round-trips
    structurally. *)

(** Binding strength used when printing binary operators; {!Parser}
    uses the same table so text round-trips. *)
val prec_of_binop : Types.binop -> int

val pp_expr : Expr.t Fmt.t
val pp_stmt : indent:int -> Stmt.t Fmt.t
val pp_block : indent:int -> Stmt.t list Fmt.t
val pp_array_decl : Stmt.array_decl Fmt.t
val pp_rom_decl : Stmt.rom_decl Fmt.t
val pp_program : Stmt.program Fmt.t
val expr_to_string : Expr.t -> string
val stmt_to_string : Stmt.t -> string
val program_to_string : Stmt.program -> string
