(** Static well-formedness of programs: declarations, typing, loop
    shape.  Every transformation output must pass [check]. *)

type error = { err_path : string; err_msg : string }

val pp_error : error Fmt.t

exception Invalid of error list

(** All violations, empty when the program is well-formed. *)
val errors : Stmt.program -> error list

val is_valid : Stmt.program -> bool

(** Identity on valid programs. @raise Invalid otherwise. *)
val check : Stmt.program -> Stmt.program
