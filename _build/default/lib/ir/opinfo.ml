(* Default hardware characteristics of the IR operators.

   The numbers model the ACEV-style row-based datapath used by the
   Nimble Compiler back end: each operator occupies some number of FPGA
   *rows* and has a latency in clock cycles.  The hardware estimator
   (`Uas_hw`) consumes these through a configuration record and can
   override them; the transformation passes use the same defaults to
   balance pipeline stages.

   Operators are assumed internally pipelinable (a new input can be
   issued every cycle), matching §5.4 of the paper where floating-point
   operators were modeled to allow deeper pipelining. *)

open Types

(** Classification of a DFG/IR operation for delay, area and resource
    accounting. *)
type op_kind =
  | Op_binop of binop
  | Op_unop of unop
  | Op_load         (** memory read — uses a memory port *)
  | Op_store        (** memory write — uses a memory port *)
  | Op_rom          (** local-ROM lookup — LUT-implemented, no memory port *)
  | Op_select       (** 2:1 multiplexer from if-conversion *)
  | Op_move         (** register-to-register move (squash rotation) *)
  | Op_const        (** constant source *)

let equal_op_kind (a : op_kind) (b : op_kind) = a = b

let op_kind_name = function
  | Op_binop o -> Printf.sprintf "binop(%s)" (binop_name o)
  | Op_unop o -> Printf.sprintf "unop(%s)" (unop_name o)
  | Op_load -> "load"
  | Op_store -> "store"
  | Op_rom -> "rom"
  | Op_select -> "select"
  | Op_move -> "move"
  | Op_const -> "const"

(** Latency in clock cycles. *)
let default_delay = function
  | Op_binop (Add | Sub | BAnd | BOr | BXor | Shl | Shr) -> 1
  | Op_binop (Lt | Le | Gt | Ge | Eq | Ne) -> 1
  | Op_binop Mul -> 2
  | Op_binop (Div | Mod) -> 8
  | Op_binop (Fadd | Fsub) -> 3
  | Op_binop Fmul -> 4
  | Op_binop Fdiv -> 12
  | Op_binop (Fcmp_lt | Fcmp_le) -> 2
  | Op_unop (Neg | BNot) -> 1
  | Op_unop Fneg -> 1
  | Op_unop (I2f | F2i) -> 2
  | Op_load -> 2
  | Op_store -> 1
  | Op_rom -> 1
  | Op_select -> 1
  | Op_move -> 0
  | Op_const -> 0

(** Area in datapath rows. *)
let default_area = function
  | Op_binop (Add | Sub) -> 2
  | Op_binop (BAnd | BOr | BXor) -> 1
  | Op_binop (Shl | Shr) -> 1
  | Op_binop (Lt | Le | Gt | Ge | Eq | Ne) -> 1
  | Op_binop Mul -> 6
  | Op_binop (Div | Mod) -> 12
  | Op_binop (Fadd | Fsub) -> 9
  | Op_binop Fmul -> 12
  | Op_binop Fdiv -> 24
  | Op_binop (Fcmp_lt | Fcmp_le) -> 3
  | Op_unop (Neg | BNot) -> 1
  | Op_unop Fneg -> 1
  | Op_unop (I2f | F2i) -> 3
  | Op_load -> 2
  | Op_store -> 2
  | Op_rom -> 2
  | Op_select -> 1
  | Op_move -> 0  (* a move is a register write; registers are costed separately *)
  | Op_const -> 0

(** Does this operation consume a memory port in the cycle it issues? *)
let uses_memory_port = function
  | Op_load | Op_store -> true
  | Op_binop _ | Op_unop _ | Op_rom | Op_select | Op_move | Op_const -> false

(** Is this node a real datapath operator for Figure 6.4-style operator
    counting (registers/moves/constants excluded)? *)
let is_real_operator = function
  | Op_move | Op_const -> false
  | Op_binop _ | Op_unop _ | Op_load | Op_store | Op_rom | Op_select -> true
