(* C export — the "combined with the rest of the C source code by an
   embedded compiler" corner of the Nimble flow (Figure 5.2).

   Emits a self-contained C translation unit for a program, optionally
   with a [main] that loads a given workload and prints every output
   array (integers in decimal, doubles as hex floats), so emitted code
   can be compiled and diffed against the reference interpreter — the
   test suite does exactly that with gcc.

   Semantics note: IR integers are the interpreter's 63-bit OCaml ints;
   the emitted C uses [int64_t], which wraps at 64 bits.  Kernels that
   keep their values masked (all the benchmarks do) are bit-identical;
   code that overflows past 62 bits may differ.  Shifts emit
   arithmetic-shift semantics, matching the IR. *)

open Types

let buf_add = Buffer.add_string

let c_ty = function Tint -> "int64_t" | Tfloat -> "double"

(* every IR name is made C-safe: '@' and '#' from generated copies
   become unambiguous escapes *)
let c_name (v : string) : string =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '@' -> buf_add b "_at_"
      | '#' -> buf_add b "_v"
      | c -> Buffer.add_char b c)
    v;
  "uas_" ^ Buffer.contents b

let c_binop = function
  | Add | Fadd -> "+"
  | Sub | Fsub -> "-"
  | Mul | Fmul -> "*"
  | Div | Fdiv -> "/"
  | Mod -> "%"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt | Fcmp_lt -> "<"
  | Le | Fcmp_le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec emit_expr b (e : Expr.t) =
  match e with
  | Expr.Int n ->
    buf_add b "INT64_C(";
    buf_add b (string_of_int n);
    buf_add b ")"
  | Expr.Float f -> buf_add b (Printf.sprintf "%h" f)
  | Expr.Var v -> buf_add b (c_name v)
  | Expr.Load (a, i) ->
    buf_add b (c_name a);
    buf_add b "[";
    emit_expr b i;
    buf_add b "]"
  | Expr.Rom (r, i) ->
    buf_add b (c_name r);
    buf_add b "[";
    emit_expr b i;
    buf_add b "]"
  | Expr.Unop (o, x) ->
    let op =
      match o with
      | Neg | Fneg -> "-"
      | BNot -> "~"
      | I2f -> "(double)"
      | F2i -> "(int64_t)"
    in
    buf_add b "(";
    buf_add b op;
    emit_expr b x;
    buf_add b ")"
  | Expr.Binop ((Lt | Le | Gt | Ge | Eq | Ne | Fcmp_lt | Fcmp_le) as o, l, r)
    ->
    (* comparisons produce the IR's integer 0/1 *)
    buf_add b "((int64_t)(";
    emit_expr b l;
    buf_add b (" " ^ c_binop o ^ " ");
    emit_expr b r;
    buf_add b "))"
  | Expr.Binop (o, l, r) ->
    buf_add b "(";
    emit_expr b l;
    buf_add b (" " ^ c_binop o ^ " ");
    emit_expr b r;
    buf_add b ")"
  | Expr.Select (c, t, f) ->
    buf_add b "(";
    emit_expr b c;
    buf_add b " ? ";
    emit_expr b t;
    buf_add b " : ";
    emit_expr b f;
    buf_add b ")"

let rec emit_stmt b indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Assign (x, e) ->
    buf_add b pad;
    buf_add b (c_name x);
    buf_add b " = ";
    emit_expr b e;
    buf_add b ";\n"
  | Stmt.Store (a, i, e) ->
    buf_add b pad;
    buf_add b (c_name a);
    buf_add b "[";
    emit_expr b i;
    buf_add b "] = ";
    emit_expr b e;
    buf_add b ";\n"
  | Stmt.If (c, t, e) ->
    buf_add b pad;
    buf_add b "if (";
    emit_expr b c;
    buf_add b ") {\n";
    List.iter (emit_stmt b (indent + 2)) t;
    if e <> [] then begin
      buf_add b pad;
      buf_add b "} else {\n";
      List.iter (emit_stmt b (indent + 2)) e
    end;
    buf_add b pad;
    buf_add b "}\n"
  | Stmt.For l ->
    buf_add b pad;
    buf_add b (Printf.sprintf "for (%s = " (c_name l.index));
    emit_expr b l.lo;
    buf_add b (Printf.sprintf "; %s < " (c_name l.index));
    emit_expr b l.hi;
    buf_add b (Printf.sprintf "; %s += %d) {\n" (c_name l.index) l.step);
    List.iter (emit_stmt b (indent + 2)) l.body;
    buf_add b pad;
    buf_add b "}\n"

(** The program as a C translation unit: ROM tables, global scalars and
    arrays, and a [void <name>_kernel(void)] running the body. *)
let program_to_c (p : Stmt.program) : string =
  let b = Buffer.create 4096 in
  buf_add b "#include <stdint.h>\n\n";
  buf_add b (Printf.sprintf "/* generated from IR program %s */\n\n" p.prog_name);
  List.iter
    (fun (r : Stmt.rom_decl) ->
      buf_add b
        (Printf.sprintf "static const int64_t %s[%d] = {" (c_name r.r_name)
           (Array.length r.r_data));
      Array.iteri
        (fun k v ->
          if k > 0 then buf_add b ", ";
          buf_add b (Printf.sprintf "INT64_C(%d)" v))
        r.r_data;
      buf_add b "};\n")
    p.roms;
  List.iter
    (fun (v, t) ->
      buf_add b (Printf.sprintf "%s %s;\n" (c_ty t) (c_name v)))
    (Stmt.scalar_decls p);
  List.iter
    (fun (d : Stmt.array_decl) ->
      buf_add b
        (Printf.sprintf "%s %s[%d];\n" (c_ty d.a_ty) (c_name d.a_name)
           d.a_size))
    p.arrays;
  buf_add b (Printf.sprintf "\nvoid %s_kernel(void) {\n" p.prog_name);
  List.iter (emit_stmt b 2) p.body;
  buf_add b "}\n";
  Buffer.contents b

(** A full runnable C program: the translation unit plus a [main] that
    loads the workload into params and input arrays, runs the kernel,
    and prints every output array element on its own line — integers in
    decimal, doubles as hex floats — in declaration order. *)
let standalone (p : Stmt.program) ~(workload : Interp.workload) : string =
  let b = Buffer.create 8192 in
  buf_add b (program_to_c p);
  buf_add b "\n#include <stdio.h>\n\nint main(void) {\n";
  List.iter
    (fun (v, value) ->
      match value with
      | VInt n ->
        buf_add b (Printf.sprintf "  %s = INT64_C(%d);\n" (c_name v) n)
      | VFloat f ->
        buf_add b (Printf.sprintf "  %s = %h;\n" (c_name v) f))
    workload.Interp.w_scalars;
  List.iter
    (fun (a, data) ->
      Array.iteri
        (fun k value ->
          match value with
          | VInt n ->
            buf_add b
              (Printf.sprintf "  %s[%d] = INT64_C(%d);\n" (c_name a) k n)
          | VFloat f ->
            buf_add b (Printf.sprintf "  %s[%d] = %h;\n" (c_name a) k f))
        data)
    workload.Interp.w_arrays;
  buf_add b (Printf.sprintf "  %s_kernel();\n" p.prog_name);
  List.iter
    (fun (d : Stmt.array_decl) ->
      match d.a_kind with
      | Stmt.Output ->
        buf_add b
          (Printf.sprintf "  for (int uas_i_ = 0; uas_i_ < %d; uas_i_++)\n"
             d.a_size);
        (match d.a_ty with
        | Tint ->
          buf_add b
            (Printf.sprintf "    printf(\"%%lld\\n\", (long long)%s[uas_i_]);\n"
               (c_name d.a_name))
        | Tfloat ->
          buf_add b
            (Printf.sprintf "    printf(\"%%a\\n\", %s[uas_i_]);\n"
               (c_name d.a_name)))
      | Stmt.Input | Stmt.Local -> ())
    p.arrays;
  buf_add b "  return 0;\n}\n";
  Buffer.contents b

(** Write the standalone program to a file. *)
let write_standalone (p : Stmt.program) ~workload ~path : unit =
  let oc = open_out path in
  (try output_string oc (standalone p ~workload)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
