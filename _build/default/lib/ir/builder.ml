(* A small DSL for writing IR programs by hand (benchmarks, tests,
   examples).  Infix operators mirror C, with [~&], [~|] etc. avoided in
   favour of readable names where OCaml syntax forces it. *)

open Types

let int n = Expr.Int n
let flt f = Expr.Float f
let v x = Expr.Var x
let load a i = Expr.Load (a, i)
let rom r i = Expr.Rom (r, i)
let select c t f = Expr.Select (c, t, f)

let ( + ) a b = Expr.Binop (Add, a, b)
let ( - ) a b = Expr.Binop (Sub, a, b)
let ( * ) a b = Expr.Binop (Mul, a, b)
let ( / ) a b = Expr.Binop (Div, a, b)
let ( % ) a b = Expr.Binop (Mod, a, b)
let band a b = Expr.Binop (BAnd, a, b)
let bor a b = Expr.Binop (BOr, a, b)
let bxor a b = Expr.Binop (BXor, a, b)
let shl a b = Expr.Binop (Shl, a, b)
let shr a b = Expr.Binop (Shr, a, b)
let ( < ) a b = Expr.Binop (Lt, a, b)
let ( <= ) a b = Expr.Binop (Le, a, b)
let ( > ) a b = Expr.Binop (Gt, a, b)
let ( >= ) a b = Expr.Binop (Ge, a, b)
let ( == ) a b = Expr.Binop (Eq, a, b)
let ( != ) a b = Expr.Binop (Ne, a, b)
let ( +. ) a b = Expr.Binop (Fadd, a, b)
let ( -. ) a b = Expr.Binop (Fsub, a, b)
let ( *. ) a b = Expr.Binop (Fmul, a, b)
let ( /. ) a b = Expr.Binop (Fdiv, a, b)
let neg a = Expr.Unop (Neg, a)
let bnot a = Expr.Unop (BNot, a)
let fneg a = Expr.Unop (Fneg, a)
let i2f a = Expr.Unop (I2f, a)
let f2i a = Expr.Unop (F2i, a)

let ( <-- ) x e = Stmt.Assign (x, e)
let store a i e = Stmt.Store (a, i, e)
let if_ c t e = Stmt.If (c, t, e)

let for_ index ?(lo = Expr.Int 0) ~hi ?(step = 1) body =
  Stmt.For { Stmt.index; lo; hi; step; body }

let input ?(ty = Tint) name size =
  { Stmt.a_name = name; a_ty = ty; a_size = size; a_kind = Stmt.Input }

let output ?(ty = Tint) name size =
  { Stmt.a_name = name; a_ty = ty; a_size = size; a_kind = Stmt.Output }

let local_array ?(ty = Tint) name size =
  { Stmt.a_name = name; a_ty = ty; a_size = size; a_kind = Stmt.Local }

let rom_decl name data = { Stmt.r_name = name; r_data = data }

let program ?(params = []) ?(locals = []) ?(arrays = []) ?(roms = []) name body
    =
  { Stmt.prog_name = name; params; locals; arrays; roms; body }
