lib/core/experiments.mli: Fmt Nimble Uas_bench_suite Uas_hw
