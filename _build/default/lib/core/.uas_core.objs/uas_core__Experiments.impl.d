lib/core/experiments.ml: Fmt List Nimble Uas_bench_suite Uas_hw
