lib/core/nimble.mli: Stmt Uas_hw Uas_ir
