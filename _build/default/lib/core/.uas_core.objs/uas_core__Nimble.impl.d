lib/core/nimble.ml: List Printf Stmt Uas_analysis Uas_hw Uas_ir Uas_transform
