(* Array dependence analysis for 2-deep loop nests (§3.2, §4.2).

   Index expressions are abstracted as affine forms

       ci * i  +  cj * j  +  c0  +  Σ symbolic invariants

   in the outer index [i] and inner index [j].  Two accesses to the same
   array are compared with the classic ZIV / strong-SIV / GCD tests to
   bound the *outer-loop dependence distance* — the quantity the
   unroll-and-squash legality cases of §4.2 are stated over. *)

open Uas_ir
module Smap = Map.Make (String)

type affine = {
  ci : int;            (** coefficient of the outer index *)
  cj : int;            (** coefficient of the inner index *)
  c0 : int;            (** constant part *)
  sym : string list;   (** sorted additive loop-invariant symbols *)
}

let affine_const n = { ci = 0; cj = 0; c0 = n; sym = [] }

let pp_affine ppf a =
  Fmt.pf ppf "%d*i + %d*j + %d%a" a.ci a.cj a.c0
    Fmt.(list ~sep:(any "") (fun ppf s -> Fmt.pf ppf " + %s" s))
    a.sym

(* Unique straight-line definitions usable for substitution when
   extracting affine forms: scalars assigned exactly once in [pre] and
   nowhere else in the nest.  Loop-body definitions are iteration-variant
   and must not be chased across iterations, so they are excluded. *)
let pre_defs (nest : Loop_nest.t) : Expr.t Smap.t =
  let all = Loop_nest.all_stmts nest in
  List.fold_left
    (fun m s ->
      match s with
      | Stmt.Assign (v, e) when Induction.count_defs v all = 1 ->
        Smap.add v e m
      | _ -> m)
    Smap.empty nest.Loop_nest.pre

let add_sym a b =
  { ci = a.ci + b.ci;
    cj = a.cj + b.cj;
    c0 = a.c0 + b.c0;
    sym = List.sort String.compare (a.sym @ b.sym) }

let scale k a =
  if a.sym <> [] && k <> 1 then None
  else Some { ci = k * a.ci; cj = k * a.cj; c0 = k * a.c0; sym = a.sym }

(** Affine form of [e] in terms of the nest's indices; [None] when the
    expression is not (recognizably) affine. *)
let affine_of (nest : Loop_nest.t) (e : Expr.t) : affine option =
  let defs = pre_defs nest in
  let defined = Stmt.defs (Loop_nest.all_stmts nest) in
  let rec go depth (e : Expr.t) : affine option =
    if depth > 16 then None
    else
      match Expr.simplify e with
      | Expr.Int n -> Some (affine_const n)
      | Expr.Var v ->
        if String.equal v nest.outer_index then
          (* in terms of the index *value*; distances are converted to
             iteration units in [outer_distance] *)
          Some { ci = 1; cj = 0; c0 = 0; sym = [] }
        else if String.equal v nest.inner_index then
          Some { ci = 0; cj = 1; c0 = 0; sym = [] }
        else if Smap.mem v defs then go (depth + 1) (Smap.find v defs)
        else if Stmt.Sset.mem v defined then None  (* iteration-variant *)
        else Some { ci = 0; cj = 0; c0 = 0; sym = [ v ] }
      | Expr.Binop (Types.Add, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y -> Some (add_sym x y)
        | _ -> None)
      | Expr.Binop (Types.Sub, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y when y.sym = [] ->
          Some { ci = x.ci - y.ci; cj = x.cj - y.cj; c0 = x.c0 - y.c0;
                 sym = x.sym }
        | _ -> None)
      | Expr.Binop (Types.Mul, Expr.Int k, a)
      | Expr.Binop (Types.Mul, a, Expr.Int k) ->
        Option.bind (go (depth + 1) a) (scale k)
      | Expr.Binop (Types.Shl, a, Expr.Int k) when k >= 0 && k < 31 ->
        Option.bind (go (depth + 1) a) (scale (1 lsl k))
      | _ -> None
  in
  go 0 e

(** Outer-loop dependence distance between two accesses, in *outer
    iterations* (index-space distance divided by the outer step is the
    caller's concern; we report index-space distances of the outer
    index variable's values, normalized to iteration counts using the
    step). *)
type outer_distance =
  | No_dependence           (** accesses can never conflict *)
  | Exact of int            (** conflicts only at this outer-iteration distance *)
  | Within of int * int     (** all conflicts at distances in [lo, hi] *)
  | Any                     (** unknown / unbounded *)

let pp_outer_distance ppf = function
  | No_dependence -> Fmt.string ppf "independent"
  | Exact d -> Fmt.pf ppf "distance %d" d
  | Within (a, b) -> Fmt.pf ppf "distance in [%d, %d]" a b
  | Any -> Fmt.string ppf "unknown"

type access = {
  acc_array : Types.array_id;
  acc_index : Expr.t;
  acc_is_write : bool;
  acc_in_inner : bool;  (** the access sits in the inner-loop body *)
}

(** Every array access of the nest. *)
let accesses (nest : Loop_nest.t) : access list =
  let of_expr in_inner e =
    List.rev
      (Expr.fold
         (fun acc e ->
           match e with
           | Expr.Load (a, i) ->
             { acc_array = a; acc_index = i; acc_is_write = false;
               acc_in_inner = in_inner }
             :: acc
           | _ -> acc)
         [] e)
  in
  let rec of_stmts in_inner stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.Assign (_, e) -> of_expr in_inner e
        | Stmt.Store (a, i, e) ->
          of_expr in_inner i @ of_expr in_inner e
          @ [ { acc_array = a; acc_index = i; acc_is_write = true;
                acc_in_inner = in_inner } ]
        | Stmt.If (c, t, f) ->
          of_expr in_inner c @ of_stmts in_inner t @ of_stmts in_inner f
        | Stmt.For l -> of_stmts in_inner l.body)
      stmts
  in
  of_stmts false nest.Loop_nest.pre
  @ of_stmts true nest.inner_body
  @ of_stmts false nest.post

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Solve a*di + b*dj = delta for the range of di, with dj ranging over
   the inner index-value differences {-(n-1)*s, ..., (n-1)*s} when the
   inner trip count [n] and step [s] are known, and di bounded by the
   outer iteration range when [outer_trips] is known. *)
let solve_distance ~inner_trips ~inner_step ~outer_trips a b delta :
    outer_distance =
  let di_possible di =
    match outer_trips with None -> true | Some m -> abs di <= m - 1
  in
  if a = 0 && b = 0 then if delta = 0 then Exact 0 else No_dependence
  else if b = 0 then
    (* strong SIV on the outer index *)
    if delta mod a = 0 && di_possible (delta / a) then Exact (delta / a)
    else No_dependence
  else if a = 0 then
    (* the index ignores the outer loop: when the inner equation
       b*dj = delta has a solution in range, the same element recurs in
       every outer iteration *)
    if delta mod b <> 0 || delta / b mod inner_step <> 0 then No_dependence
    else (
      match inner_trips with
      | Some n when abs (delta / b / inner_step) > n - 1 -> No_dependence
      | Some _ | None -> Any)
  else if delta mod gcd a b <> 0 then No_dependence
  else
    match inner_trips with
    | None -> Any
    | Some n ->
      (* di = (delta - b*dj)/a over integer solutions *)
      let candidates = ref [] in
      for t = -(n - 1) to n - 1 do
        let dj = t * inner_step in
        let num = delta - (b * dj) in
        if num mod a = 0 && di_possible (num / a) then
          candidates := (num / a) :: !candidates
      done;
      (match !candidates with
      | [] -> No_dependence
      | ds ->
        let lo = List.fold_left min max_int ds in
        let hi = List.fold_left max min_int ds in
        if lo = hi then Exact lo else Within (lo, hi))

(** Outer dependence distance between two accesses of the same array.
    The result is in units of outer *iterations* (the affine outer
    coefficients already absorb the index step because the index
    variable itself advances by [outer_step]; we renormalize below). *)
let outer_distance (nest : Loop_nest.t) (x : access) (y : access) :
    outer_distance =
  if not (String.equal x.acc_array y.acc_array) then No_dependence
  else if not (x.acc_is_write || y.acc_is_write) then No_dependence
  else
    match (affine_of nest x.acc_index, affine_of nest y.acc_index) with
    | Some ax, Some ay
      when ax.ci = ay.ci && ax.cj = ay.cj
           && List.length ax.sym = List.length ay.sym
           && List.for_all2 String.equal ax.sym ay.sym ->
      let inner_trips = Loop_nest.inner_trip_count nest in
      let d =
        solve_distance ~inner_trips ~inner_step:nest.inner_step
          ~outer_trips:(Loop_nest.outer_trip_count nest) ax.ci ax.cj
          (ay.c0 - ax.c0)
      in
      (* index-space distance -> iteration distance *)
      let step = nest.outer_step in
      let norm v =
        if step = 1 then Some v
        else if v mod step = 0 then Some (v / step)
        else None
      in
      (match d with
      | No_dependence -> No_dependence
      | Any -> Any
      | Exact v -> (
        match norm v with Some v -> Exact v | None -> No_dependence)
      | Within (a, b) ->
        if step = 1 then Within (a, b)
        else
          (* conservative: round the interval outward in iteration units *)
          Within
            ( (if a >= 0 then a / step else -((-a + step - 1) / step)),
              if b >= 0 then (b + step - 1) / step
              else -(-b / step) ))
    | _ -> Any

(** All dependent pairs of the nest (at least one write, same array),
    with their outer distances. *)
let all_pairs (nest : Loop_nest.t) : (access * access * outer_distance) list =
  let accs = accesses nest in
  let rec pairs = function
    | [] -> []
    | x :: rest ->
      List.filter_map
        (fun y ->
          if
            String.equal x.acc_array y.acc_array
            && (x.acc_is_write || y.acc_is_write)
          then Some (x, y, outer_distance nest x y)
          else None)
        (x :: rest)  (* include self-pairs: a store conflicts with itself *)
      @ pairs rest
  in
  pairs accs
