(** Array dependence analysis for 2-deep nests (§3.2, §4.2): index
    expressions are abstracted as affine forms in the two loop indices
    (plus symbolic invariants) and compared with ZIV / strong-SIV / GCD
    tests to bound the outer-loop dependence distance — the quantity
    the squash legality cases are stated over. *)

open Uas_ir

type affine = {
  ci : int;  (** coefficient of the outer index *)
  cj : int;  (** coefficient of the inner index *)
  c0 : int;  (** constant part *)
  sym : string list;  (** sorted additive loop-invariant symbols *)
}

val affine_const : int -> affine
val pp_affine : affine Fmt.t

(** Affine form of an index expression in the nest's indices, chasing
    unique pre-header definitions; [None] when unrecognizable. *)
val affine_of : Loop_nest.t -> Expr.t -> affine option

type outer_distance =
  | No_dependence  (** provably never conflict *)
  | Exact of int  (** conflicts only at this outer-iteration distance *)
  | Within of int * int  (** all conflicts within this inclusive range *)
  | Any  (** unknown / unbounded *)

val pp_outer_distance : outer_distance Fmt.t

type access = {
  acc_array : Types.array_id;
  acc_index : Expr.t;
  acc_is_write : bool;
  acc_in_inner : bool;  (** sits in the inner-loop body *)
}

(** Every array access of the nest, in program order. *)
val accesses : Loop_nest.t -> access list

(** Outer dependence distance between two accesses, in outer
    iterations.  Reads-only pairs and different arrays are
    [No_dependence]. *)
val outer_distance : Loop_nest.t -> access -> access -> outer_distance

(** All potentially dependent pairs (same array, at least one write),
    including a store's self-pair. *)
val all_pairs : Loop_nest.t -> (access * access * outer_distance) list
