(* Static single assignment for straight-line blocks (§5.3: the inner
   loop code is converted into SSA form while the DFG is built, so that
   each variable is defined only once in the body).

   For a single basic block SSA is sequential renaming: the k-th
   assignment to [v] defines [v#k]; uses refer to the latest version, and
   upward-exposed uses refer to [v#0] (the value flowing in from outside
   or from the previous iteration). *)

open Uas_ir
module Smap = Map.Make (String)

type t = {
  ssa_body : Stmt.t list;        (** renamed block *)
  live_in : string Smap.t;       (** original name -> entry version *)
  live_out : string Smap.t;      (** original name -> exit version *)
  original : string Smap.t;      (** version name -> original name *)
}

let version v k = Printf.sprintf "%s#%d" v k

(** Original name of an SSA version (identity for names that are not
    versions). *)
let base_name v =
  match String.index_opt v '#' with
  | Some i -> String.sub v 0 i
  | None -> v

let convert (body : Stmt.t list) : t =
  if not (Stmt.is_straight_line body) then
    Types.ir_error "SSA conversion requires a straight-line block";
  let counts = ref Smap.empty in
  let current = ref Smap.empty in
  let originals = ref Smap.empty in
  let live_in = ref Smap.empty in
  let use v =
    match Smap.find_opt v !current with
    | Some v' -> v'
    | None ->
      let v0 = version v 0 in
      current := Smap.add v v0 !current;
      counts := Smap.add v 0 !counts;
      originals := Smap.add v0 v !originals;
      live_in := Smap.add v v0 !live_in;
      v0
  in
  let def v =
    let k = match Smap.find_opt v !counts with Some k -> k + 1 | None -> 1 in
    counts := Smap.add v k !counts;
    let v' = version v k in
    current := Smap.add v v' !current;
    originals := Smap.add v' v !originals;
    (* a def with no prior use still names version 0 as the live-in slot *)
    if not (Smap.mem v !live_in) then live_in := Smap.add v (version v 0) !live_in;
    v'
  in
  let rename_expr e = Expr.rename use e in
  let ssa_body =
    List.map
      (fun s ->
        match s with
        | Stmt.Assign (x, e) ->
          let e' = rename_expr e in  (* uses before the def *)
          Stmt.Assign (def x, e')
        | Stmt.Store (a, i, e) -> Stmt.Store (a, rename_expr i, rename_expr e)
        | Stmt.If _ | Stmt.For _ -> assert false)
      body
  in
  let live_out =
    Smap.mapi (fun _v cur -> cur) !current
  in
  { ssa_body; live_in = !live_in; live_out; original = !originals }

(** Map an SSA result back to original names (inverse of [convert] up to
    the single-assignment property; used by tests). *)
let deconvert (t : t) : Stmt.t list =
  Stmt.rename_vars_list base_name t.ssa_body

(** Every version name appearing in the converted block. *)
let versions (t : t) : string list =
  List.map fst (Smap.bindings t.original)
