lib/analysis/def_use.mli: Loop_nest Uas_ir
