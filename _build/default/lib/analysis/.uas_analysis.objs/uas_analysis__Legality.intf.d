lib/analysis/legality.mli: Dependence Fmt Induction Loop_nest Uas_ir
