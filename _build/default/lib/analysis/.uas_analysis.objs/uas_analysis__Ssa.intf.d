lib/analysis/ssa.mli: Map Stmt Uas_ir
