lib/analysis/dependence.mli: Expr Fmt Loop_nest Types Uas_ir
