lib/analysis/ssa.ml: Expr List Map Printf Stmt String Types Uas_ir
