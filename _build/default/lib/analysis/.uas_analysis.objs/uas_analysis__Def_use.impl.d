lib/analysis/def_use.ml: Expr List Loop_nest Stmt Uas_ir
