lib/analysis/legality.ml: Def_use Dependence Expr Fmt Induction List Loop_nest Printf Stmt Uas_ir
