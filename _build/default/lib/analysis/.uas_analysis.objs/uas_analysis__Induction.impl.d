lib/analysis/induction.ml: Expr List Loop_nest Stmt String Types Uas_ir
