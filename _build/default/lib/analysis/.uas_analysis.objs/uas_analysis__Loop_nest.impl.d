lib/analysis/loop_nest.ml: Expr List Stmt String Types Uas_ir
