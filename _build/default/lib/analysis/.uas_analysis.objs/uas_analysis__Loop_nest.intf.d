lib/analysis/loop_nest.mli: Expr Stmt Types Uas_ir
