lib/analysis/dependence.ml: Expr Fmt Induction List Loop_nest Map Option Stmt String Types Uas_ir
