lib/analysis/induction.mli: Expr Loop_nest Stmt Types Uas_ir
