(** Static single assignment for straight-line blocks (§5.3): the k-th
    assignment to [v] defines version [v#k]; upward-exposed uses read
    [v#0]. *)

open Uas_ir
module Smap : Map.S with type key = string

type t = {
  ssa_body : Stmt.t list;  (** renamed block *)
  live_in : string Smap.t;  (** original name -> entry version *)
  live_out : string Smap.t;  (** original name -> exit version *)
  original : string Smap.t;  (** version name -> original name *)
}

(** Version name [v#k]. *)
val version : string -> int -> string

(** Original name of a version (identity on plain names). *)
val base_name : string -> string

(** @raise Ir_error when the block is not straight-line. *)
val convert : Stmt.t list -> t

(** Strip version suffixes (inverse of [convert] on its output). *)
val deconvert : t -> Stmt.t list

(** Every version name of the converted block. *)
val versions : t -> string list
