(* Bit-width inference over kernel DFGs.

   The Nimble back end sizes each datapath operator to the bits its
   operands actually need (§5.4 discusses how the front end's whole-
   operator view loses such opportunities).  This module recovers them:
   a value-range analysis over the DFG semantics gives every node a
   conservative [lo, hi], from which the estimator can scale operator
   area by the required width.

   Loop-carried registers and memory loads are full width (their entry
   values are unknown), so the narrowing comes from what the body
   itself establishes — explicit masks, byte extracts, ROM contents,
   comparisons.  That is exactly where the crypto kernels win: the
   Skipjack round computes on bytes and 16-bit words behind `& 255`
   masks, so its adders and xors shrink to a quarter of the default
   32-bit rows, while DES stays near 32 bits.  The `ablation-width`
   bench target shows the difference. *)

open Uas_ir
module Build = Uas_dfg.Build
module Graph = Uas_dfg.Graph

(* Intervals are clamped to +-2^40 so interval arithmetic cannot
   overflow a native int; anything wider counts as full width anyway. *)
let bound = 1 lsl 40

type range = { lo : int; hi : int }

let full = { lo = -bound; hi = bound }
let const n = { lo = n; hi = n }
let clamp v = if v > bound then bound else if v < -bound then -bound else v
let make lo hi = { lo = clamp lo; hi = clamp hi }
let join a b = make (min a.lo b.lo) (max a.hi b.hi)
let is_nonneg r = r.lo >= 0

(* smallest all-ones mask covering [0, hi] *)
let rec next_mask m hi = if m >= hi then m else next_mask ((m * 2) + 1) hi

let binop_range (o : Types.binop) a b =
  match o with
  | Types.Add -> make (a.lo + b.lo) (a.hi + b.hi)
  | Types.Sub -> make (a.lo - b.hi) (a.hi - b.lo)
  | Types.Mul ->
    let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    make
      (List.fold_left min max_int products)
      (List.fold_left max min_int products)
  | Types.Div ->
    (* magnitude cannot grow (divisors of magnitude 0 fault anyway) *)
    make (min a.lo (-a.hi)) (max a.hi (-a.lo))
  | Types.Mod ->
    if is_nonneg a && is_nonneg b then make 0 (max 0 (b.hi - 1)) else full
  | Types.BAnd ->
    if is_nonneg a && is_nonneg b then make 0 (min a.hi b.hi)
    else if is_nonneg a then make 0 a.hi
    else if is_nonneg b then make 0 b.hi
    else full
  | Types.BOr | Types.BXor ->
    if is_nonneg a && is_nonneg b then make 0 (next_mask 0 (max a.hi b.hi))
    else full
  | Types.Shl ->
    if b.lo = b.hi && b.lo >= 0 && b.lo < 40 then
      make (a.lo lsl b.lo) (a.hi lsl b.lo)
    else full
  | Types.Shr ->
    if is_nonneg a && is_nonneg b then make 0 (a.hi asr b.lo) else full
  | Types.Lt | Types.Le | Types.Gt | Types.Ge | Types.Eq | Types.Ne
  | Types.Fcmp_lt | Types.Fcmp_le -> make 0 1
  | Types.Fadd | Types.Fsub | Types.Fmul | Types.Fdiv -> full

let unop_range (o : Types.unop) a =
  match o with
  | Types.Neg -> make (-a.hi) (-a.lo)
  | Types.BNot -> make (-a.hi - 1) (-a.lo - 1)
  | Types.Fneg | Types.I2f -> full
  | Types.F2i -> full

(** Conservative value ranges for every node of the kernel DFG, given
    the ROM contents (whose element ranges are statically known) and,
    optionally, entry ranges for the live-in registers ([entry] — e.g.
    the loop-index bounds, or known bus widths of the feeding values).
    A loop-carried register is the join of its entry range and its
    feeding definition, resolved by a short descending fixpoint from
    top (every iterate over-approximates the least fixpoint, so
    stopping early stays sound). *)
let node_ranges ?(rounds = 4) ?(entry = fun _ -> None)
    (detail : Build.detailed) (roms : (string * int array) list) :
    range array =
  let g = detail.Build.d_graph in
  let sem = detail.Build.d_sem in
  let n = Graph.node_count g in
  let ranges = Array.make n full in
  let order = Graph.topo_order g in
  (* carried-register feeding definitions *)
  let carry_source = Array.make n None in
  List.iter
    (fun (e : Graph.edge) ->
      if e.Graph.e_distance > 0 then
        match sem.(e.Graph.e_dst) with
        | Build.Sreg _ -> carry_source.(e.Graph.e_dst) <- Some e.Graph.e_src
        | _ -> ())
    g.Graph.edges;
  let entry_range base =
    match entry base with Some r -> r | None -> full
  in
  for _ = 1 to rounds do
    List.iter
      (fun i ->
        ranges.(i) <-
          (match sem.(i) with
          | Build.Sconst (Types.VInt v) -> const v
          | Build.Sconst (Types.VFloat _) -> full
          | Build.Sreg base -> (
            match carry_source.(i) with
            | Some src -> join (entry_range base) ranges.(src)
            | None -> entry_range base)
          | Build.Smove src -> ranges.(src)
          | Build.Sbinop (o, a, b) -> binop_range o ranges.(a) ranges.(b)
          | Build.Sunop (o, a) -> unop_range o ranges.(a)
          | Build.Sselect (_, a, b) -> join ranges.(a) ranges.(b)
          | Build.Srom (r, _) -> (
            match List.assoc_opt r roms with
            | Some data when Array.length data > 0 ->
              Array.fold_left
                (fun acc x -> join acc (const x))
                (const data.(0))
                data
            | _ -> make 0 bound)
          | Build.Sload _ -> full
          | Build.Sstore (_, _, v) -> ranges.(v)))
      order
  done;
  ranges

(** Bits needed for a (signed when necessary) value in the range. *)
let width_bits (r : range) : int =
  let bits_for v =
    let rec go b = if v < 1 lsl b || b >= 63 then b else go (b + 1) in
    go 1
  in
  let w =
    if r.lo >= 0 then bits_for (max 1 r.hi)
    else 1 + bits_for (max (max 1 r.hi) (-r.lo - 1))
  in
  min 32 w  (* the row model is 32-bit; wider values use full rows *)

(** Scale a 32-bit-row operator area to the inferred width (at least
    one row). *)
let scale_area ~area ~width : int =
  max 1 (((area * max 1 width) + 31) / 32)

(** Width-aware operator area of a kernel DFG: every operator's default
    area scaled by its result width. *)
let width_aware_operator_area ?(area_of = Opinfo.default_area)
    ?entry (detail : Build.detailed) ~(roms : (string * int array) list) :
    int =
  let g = detail.Build.d_graph in
  let ranges = node_ranges ?entry detail roms in
  let total = ref 0 in
  Array.iter
    (fun (nd : Graph.node) ->
      let a = area_of nd.Graph.kind in
      if a > 0 then
        total :=
          !total + scale_area ~area:a ~width:(width_bits ranges.(nd.Graph.id)))
    g.Graph.nodes;
  !total
