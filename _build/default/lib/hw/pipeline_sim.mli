(** Cycle-accurate simulation of a modulo-scheduled kernel — the
    stand-in for the paper's FPGA runs.  Iterations overlap exactly as
    the schedule prescribes; per-node results live in bounded register
    files sized by the modulo-variable-expansion window count; memory
    ports are enforced per absolute cycle; stores commit in hardware
    order.  Outcomes must match the sequential interpreter (enforced in
    the tests). *)

open Uas_ir
module Build = Uas_dfg.Build
module Sched = Uas_dfg.Sched

type hazard =
  | Register_overwritten of { node : int; iteration : int; reader : int }
  | Port_conflict of { cycle : int; used : int; ports : int }
  | Value_not_ready of { node : int; iteration : int }

val pp_hazard : hazard Fmt.t

(** A structural or register hazard: the schedule/register allocation
    would not work in hardware. *)
exception Hazard of hazard

type result = {
  sim_cycles : int;  (** makespan: last completion cycle + 1 *)
  sim_iterations : int;
  sim_live_out : (string * Types.value) list;
      (** base scalar -> value after the final iteration *)
  sim_port_pressure : float;  (** mean memory-port occupancy per cycle *)
}

(** Simulate [iterations] overlapped kernel iterations of the detailed
    DFG under [schedule].  [env] supplies live-in scalars (iteration-0
    values); when [index] names the loop-index register it advances by
    [index_step] per iteration.  [arrays] is mutated in place.
    @raise Hazard as described above. *)
val run :
  ?target:Datapath.t ->
  detail:Build.detailed ->
  schedule:Sched.schedule ->
  iterations:int ->
  env:(string -> Types.value) ->
  arrays:(string, Types.value array) Hashtbl.t ->
  roms:(string, int array) Hashtbl.t ->
  ?index:string ->
  ?index_step:int ->
  unit ->
  result
