(* Cycle-accurate simulation of a modulo-scheduled kernel on the
   datapath — the stand-in for the paper's FPGA runs.

   The kernel's DFG is executed with real values, iterations overlapped
   exactly as the schedule prescribes: iteration k issues node i at
   absolute cycle k*II + t(i).  The simulation models the physical
   constraints the analytical estimator only counts:

   - each node's result lives in a *bounded* register file of
     W = max(1, lifetime-windows) entries, written round-robin; a
     consumer that would read an already-overwritten slot is a register
     shortfall (the estimator's modulo-variable-expansion count was too
     small) and aborts the run;
   - memory operations occupy a port in their issue cycle; exceeding
     the port count is a structural hazard and aborts the run;
   - stores commit to the array state in absolute-cycle order, so
     cross-iteration memory effects happen exactly when the hardware
     would perform them.

   The observable outcome — final array contents and live-out scalars —
   must equal the sequential interpreter's; the throughput is
   II cycles per iteration plus the pipeline drain. *)

open Uas_ir
module Build = Uas_dfg.Build
module Graph = Uas_dfg.Graph
module Sched = Uas_dfg.Sched

type hazard =
  | Register_overwritten of { node : int; iteration : int; reader : int }
  | Port_conflict of { cycle : int; used : int; ports : int }
  | Value_not_ready of { node : int; iteration : int }

let pp_hazard ppf = function
  | Register_overwritten h ->
    Fmt.pf ppf
      "register of node n%d overwritten before iteration %d's read by n%d"
      h.node h.iteration h.reader
  | Port_conflict h ->
    Fmt.pf ppf "cycle %d uses %d memory ports (limit %d)" h.cycle h.used
      h.ports
  | Value_not_ready h ->
    Fmt.pf ppf "node n%d read before ready in iteration %d" h.node h.iteration

exception Hazard of hazard

let () =
  Printexc.register_printer (function
    | Hazard h -> Some (Fmt.str "Pipeline_sim.Hazard: %a" pp_hazard h)
    | _ -> None)

type result = {
  sim_cycles : int;  (** makespan: last completion cycle + 1 *)
  sim_iterations : int;
  sim_live_out : (string * Types.value) list;
  sim_port_pressure : float;  (** mean memory-port occupancy per cycle *)
}

(* per-node bounded output buffer *)
type slot = { mutable written_by : int (* iteration, -1 = never *);
              mutable value : Types.value }

let zero = Types.VInt 0

(** Simulate [iterations] overlapped kernel iterations.

    [env] supplies live-in scalar values (including the value the inner
    index would have had at iteration 0 — the index register is bumped
    per iteration internally when [index] is given with [index_step]).
    [arrays] is the memory state, mutated in place.  [roms] supplies
    lookup tables.

    @raise Hazard on a structural or register hazard — meaning the
    schedule/register allocation would NOT work in hardware. *)
let run ?(target = Datapath.default) ~(detail : Build.detailed)
    ~(schedule : Sched.schedule) ~iterations
    ~(env : string -> Types.value)
    ~(arrays : (string, Types.value array) Hashtbl.t)
    ~(roms : (string, int array) Hashtbl.t)
    ?index ?(index_step = 1) () : result =
  let g = detail.Build.d_graph in
  let sem = detail.Build.d_sem in
  let n = Graph.node_count g in
  let ii = schedule.Sched.s_ii in
  let t_of = schedule.Sched.s_times in
  (* bounded register files sized by the estimator's window count *)
  let windows = Array.make n 1 in
  for i = 0 to n - 1 do
    let produced_at = t_of.(i) + Graph.delay g i in
    let last_use =
      List.fold_left
        (fun m (d, dist) -> max m (t_of.(d) + (ii * dist)))
        produced_at g.Graph.succs.(i)
    in
    (* floor + 1 (see Sched.register_estimate) *)
    windows.(i) <- max 1 (((last_use - produced_at) / ii) + 1)
  done;
  let regs = Array.init n (fun i ->
      Array.init windows.(i) (fun _ -> { written_by = -1; value = zero }))
  in
  (* a register is written when its operator COMPLETES (issue + delay);
     deferred commits model the operator pipeline, so an in-flight
     successor iteration cannot clobber a value its consumers are
     still entitled to read *)
  let pending : (int * (unit -> unit)) list ref = ref [] in
  let defer cycle action =
    (* keep sorted by commit cycle (stable for equal cycles) *)
    let rec insert = function
      | [] -> [ (cycle, action) ]
      | (c, a) :: rest when c <= cycle -> (c, a) :: insert rest
      | later -> (cycle, action) :: later
    in
    pending := insert !pending
  in
  let drain_until cycle =
    let rec go () =
      match !pending with
      | (c, action) :: rest when c <= cycle ->
        pending := rest;
        action ();
        go ()
      | _ -> ()
    in
    go ()
  in
  let write_reg i k value =
    let slot = regs.(i).(k mod windows.(i)) in
    slot.written_by <- k;
    slot.value <- value
  in
  let read_reg ~reader i k =
    (* the value node [i] produced in iteration [k] *)
    if k < 0 then
      (* before the pipeline filled: live-in registers hold the entry
         values; anything else reading "iteration -1" is a bug *)
      match sem.(i) with
      | Build.Sreg base -> env base
      | _ -> raise (Hazard (Value_not_ready { node = i; iteration = k }))
    else begin
      let slot = regs.(i).(k mod windows.(i)) in
      if slot.written_by <> k then
        raise
          (Hazard
             (if slot.written_by > k then
                Register_overwritten { node = i; iteration = k; reader }
              else Value_not_ready { node = i; iteration = k }))
      else slot.value
    end
  in
  (* carried-register sources: the distance-d in-edge of an Sreg node *)
  let carry_source = Array.make n None in
  List.iter
    (fun (e : Graph.edge) ->
      if e.Graph.e_distance > 0 then
        match sem.(e.Graph.e_dst) with
        | Build.Sreg _ ->
          carry_source.(e.Graph.e_dst) <- Some (e.Graph.e_src, e.Graph.e_distance)
        | _ -> ())
    g.Graph.edges;
  (* event list: (absolute issue cycle, iteration, node); same-cycle
     events run in dependence (topological) order so zero-delay moves
     see their producer *)
  let topo_pos = Array.make n 0 in
  List.iteri (fun pos i -> topo_pos.(i) <- pos) (Graph.topo_order g);
  let events =
    List.concat
      (List.init iterations (fun k ->
           List.init n (fun i -> (((k * ii) + t_of.(i), k, topo_pos.(i)), i))))
    |> List.sort compare
    |> List.map (fun ((c, k, _), i) -> (c, k, i))
  in
  let int_of v =
    match v with
    | Types.VInt x -> x
    | Types.VFloat _ -> Types.ir_error "float used as an address"
  in
  let mem_ports_used : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let mem_ops = ref 0 in
  let eval_node ~cycle k i =
    let value =
      match sem.(i) with
      | Build.Sconst v -> v
      | Build.Sreg base -> (
        match carry_source.(i) with
        | Some (src, dist) ->
          if k - dist < 0 then env base
          else read_reg ~reader:i src (k - dist)
        | None ->
          (* invariant live-in, except the loop index which advances *)
          (match (index, env base) with
          | Some idx, Types.VInt v0 when String.equal idx base ->
            Types.VInt (v0 + (k * index_step))
          | _ -> env base))
      | Build.Smove src -> read_reg ~reader:i src k
      | Build.Sbinop (o, a, b) ->
        Expr.eval_binop o (read_reg ~reader:i a k) (read_reg ~reader:i b k)
      | Build.Sunop (o, a) -> Expr.eval_unop o (read_reg ~reader:i a k)
      | Build.Sselect (c, a, b) ->
        if int_of (read_reg ~reader:i c k) <> 0 then read_reg ~reader:i a k
        else read_reg ~reader:i b k
      | Build.Srom (r, a) -> (
        let idx = int_of (read_reg ~reader:i a k) in
        match Hashtbl.find_opt roms r with
        | Some data when idx >= 0 && idx < Array.length data ->
          Types.VInt data.(idx)
        | Some _ -> Types.ir_error "rom index out of bounds in simulation"
        | None -> Types.ir_error "undeclared rom %s in simulation" r)
      | Build.Sload (a, ia) -> (
        let idx = int_of (read_reg ~reader:i ia k) in
        match Hashtbl.find_opt arrays a with
        | Some data when idx >= 0 && idx < Array.length data -> data.(idx)
        | Some _ -> Types.ir_error "load out of bounds in simulation"
        | None -> Types.ir_error "undeclared array %s in simulation" a)
      | Build.Sstore (a, ia, va) -> (
        let idx = int_of (read_reg ~reader:i ia k) in
        let v = read_reg ~reader:i va k in
        match Hashtbl.find_opt arrays a with
        | Some data when idx >= 0 && idx < Array.length data ->
          (* memory commits at completion too *)
          defer
            (cycle + Graph.delay g i)
            (fun () -> data.(idx) <- v);
          v
        | Some _ -> Types.ir_error "store out of bounds in simulation"
        | None -> Types.ir_error "undeclared array %s in simulation" a)
    in
    let d = Graph.delay g i in
    if d = 0 then write_reg i k value
    else defer (cycle + d) (fun () -> write_reg i k value)
  in
  List.iter
    (fun (cycle, k, i) ->
      drain_until cycle;
      if Opinfo.uses_memory_port (Graph.node g i).Graph.kind then begin
        let used =
          1 + Option.value ~default:0 (Hashtbl.find_opt mem_ports_used cycle)
        in
        incr mem_ops;
        if used > target.Datapath.mem_ports then
          raise
            (Hazard
               (Port_conflict
                  { cycle; used; ports = target.Datapath.mem_ports }));
        Hashtbl.replace mem_ports_used cycle used
      end;
      eval_node ~cycle k i)
    events;
  drain_until max_int;
  let makespan =
    List.fold_left
      (fun m (c, _, i) -> max m (c + Graph.delay g i))
      0 events
  in
  let live_out =
    List.map
      (fun (base, node) -> (base, read_reg ~reader:node node (iterations - 1)))
      detail.Build.d_live_out_nodes
  in
  { sim_cycles = makespan + 1;
    sim_iterations = iterations;
    sim_live_out = live_out;
    sim_port_pressure =
      (if makespan = 0 then 0.0
       else float_of_int !mem_ops /. float_of_int (makespan + 1)) }
