(** Bit-width inference over kernel DFGs (the back-end operator sizing
    of §5.4): conservative value ranges per node, widths, and a
    width-aware operator-area estimate.  Narrowing comes from what the
    body establishes — masks, byte extracts, ROM contents,
    comparisons — since live-ins and loads are unknown. *)

open Uas_ir
module Build = Uas_dfg.Build

type range = { lo : int; hi : int }

val full : range
val const : int -> range
val join : range -> range -> range
val binop_range : Types.binop -> range -> range -> range
val unop_range : Types.unop -> range -> range

(** Per-node ranges, given ROM contents; [entry] supplies known entry
    ranges for live-in registers (loop-index bounds, bus widths).
    Loop-carried registers resolve through a short, sound descending
    fixpoint. *)
val node_ranges :
  ?rounds:int ->
  ?entry:(string -> range option) ->
  Build.detailed ->
  (string * int array) list ->
  range array

(** Bits needed (signed when the range is), capped at the 32-bit row
    model. *)
val width_bits : range -> int

val scale_area : area:int -> width:int -> int

(** Operator area with every operator scaled to its result width. *)
val width_aware_operator_area :
  ?area_of:(Opinfo.op_kind -> int) ->
  ?entry:(string -> range option) ->
  Build.detailed ->
  roms:(string * int array) list ->
  int
