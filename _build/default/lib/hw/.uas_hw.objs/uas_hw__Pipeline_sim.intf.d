lib/hw/pipeline_sim.mli: Datapath Fmt Hashtbl Types Uas_dfg Uas_ir
