lib/hw/estimate.ml: Bitwidth Datapath Expr Fmt List Printexc Printf Stmt String Uas_dfg Uas_ir
