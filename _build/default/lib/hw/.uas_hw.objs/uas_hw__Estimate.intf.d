lib/hw/estimate.mli: Datapath Fmt Stmt Uas_ir
