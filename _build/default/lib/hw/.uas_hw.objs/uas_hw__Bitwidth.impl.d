lib/hw/bitwidth.ml: Array List Opinfo Types Uas_dfg Uas_ir
