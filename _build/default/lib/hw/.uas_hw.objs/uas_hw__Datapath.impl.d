lib/hw/datapath.ml: Opinfo Uas_dfg Uas_ir
