lib/hw/datapath.mli: Opinfo Uas_dfg Uas_ir
