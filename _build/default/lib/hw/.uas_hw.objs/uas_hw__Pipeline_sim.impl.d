lib/hw/pipeline_sim.ml: Array Datapath Expr Fmt Hashtbl List Opinfo Option Printexc String Types Uas_dfg Uas_ir
