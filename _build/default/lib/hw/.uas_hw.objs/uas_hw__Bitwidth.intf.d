lib/hw/bitwidth.mli: Opinfo Types Uas_dfg Uas_ir
