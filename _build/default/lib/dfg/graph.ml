(* The data-flow graph (Figure 4.1): nodes are datapath operations,
   edges carry the dependence distance in iterations — 0 for
   intra-iteration flow, k >= 1 for loop-carried dependences
   ("backedges" in the paper's terminology, drawn from the bottom of the
   graph back to the registers at the top). *)

open Uas_ir

type node = {
  id : int;
  kind : Opinfo.op_kind;
  label : string;  (** defined SSA name, or a description of the op *)
}

type edge = {
  e_src : int;
  e_dst : int;
  e_distance : int;  (** iterations: 0 = same iteration, >=1 = carried *)
}

type t = {
  nodes : node array;
  edges : edge list;
  succs : (int * int) list array;  (** per node: (dst, distance) *)
  preds : (int * int) list array;  (** per node: (src, distance) *)
  delay_of : Opinfo.op_kind -> int;
}

let node_count g = Array.length g.nodes
let node g i = g.nodes.(i)
let delay g i = g.delay_of g.nodes.(i).kind

let create ?(delay_of = Opinfo.default_delay) (nodes : node list)
    (edges : edge list) : t =
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i n ->
      if n.id <> i then Types.ir_error "node %d has id %d" i n.id)
    nodes;
  let n = Array.length nodes in
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun e ->
      if e.e_src < 0 || e.e_src >= n || e.e_dst < 0 || e.e_dst >= n then
        Types.ir_error "edge %d->%d out of range" e.e_src e.e_dst;
      if e.e_distance < 0 then
        Types.ir_error "edge %d->%d has negative distance" e.e_src e.e_dst;
      succs.(e.e_src) <- (e.e_dst, e.e_distance) :: succs.(e.e_src);
      preds.(e.e_dst) <- (e.e_src, e.e_distance) :: preds.(e.e_dst))
    edges;
  { nodes; edges; succs; preds; delay_of }

(** Real datapath operators (excludes moves/constants). *)
let operator_nodes g =
  Array.to_list g.nodes |> List.filter (fun n -> Opinfo.is_real_operator n.kind)

let operator_count g = List.length (operator_nodes g)

let memory_op_count g =
  Array.to_list g.nodes
  |> List.filter (fun n -> Opinfo.uses_memory_port n.kind)
  |> List.length

let total_operator_area ?(area_of = Opinfo.default_area) g =
  List.fold_left (fun a n -> a + area_of n.kind) 0 (Array.to_list g.nodes)

(** Topological order of the distance-0 subgraph.
    @raise Ir_error if the intra-iteration subgraph has a cycle (a
    malformed DFG: SSA bodies are always acyclic within an iteration). *)
let topo_order (g : t) : int list =
  let n = node_count g in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun _i succs ->
      List.iter (fun (d, dist) -> if dist = 0 then indeg.(d) <- indeg.(d) + 1) succs)
    g.succs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    order := i :: !order;
    List.iter
      (fun (d, dist) ->
        if dist = 0 then begin
          indeg.(d) <- indeg.(d) - 1;
          if indeg.(d) = 0 then Queue.add d queue
        end)
      g.succs.(i)
  done;
  if !seen <> n then Types.ir_error "intra-iteration DFG has a cycle";
  List.rev !order

(** Length of the longest intra-iteration path, in cycles: the delay of
    the critical path through one iteration. *)
let critical_path (g : t) : int =
  let order = topo_order g in
  let finish = Array.make (node_count g) 0 in
  List.iter
    (fun i ->
      let start =
        List.fold_left
          (fun m (s, dist) -> if dist = 0 then max m finish.(s) else m)
          0 g.preds.(i)
      in
      finish.(i) <- start + delay g i)
    order;
  Array.fold_left max 0 finish

(** Total delay around the heaviest recurrence per unit distance:
    max over cycles C of ceil(delay(C) / distance(C)).  0 when the graph
    has no recurrence.  Computed by binary search on II: II is feasible
    iff the graph with edge weights delay(src) - II*distance has no
    positive-weight cycle (Bellman-Ford). *)
let recurrence_mii (g : t) : int =
  let n = node_count g in
  if n = 0 then 0
  else begin
    let has_positive_cycle ii =
      (* Bellman-Ford longest-path from a virtual source: simple paths
         have at most n-1 edges, so if the values still change after
         n+1 relaxation passes, a positive-weight cycle exists *)
      let dist = Array.make n 0 in
      let pass () =
        List.fold_left
          (fun changed e ->
            let w = delay g e.e_src - (ii * e.e_distance) in
            if dist.(e.e_src) + w > dist.(e.e_dst) then begin
              dist.(e.e_dst) <- dist.(e.e_src) + w;
              true
            end
            else changed)
          false g.edges
      in
      let rec go k = if not (pass ()) then false else k > n || go (k + 1) in
      go 0
    in
    let max_ii =
      Array.fold_left (fun a nd -> a + max 1 (g.delay_of nd.kind)) 1 g.nodes
    in
    if not (has_positive_cycle 0) then 0
    else begin
      (* smallest ii in [1, max_ii] without a positive cycle *)
      let lo = ref 1 and hi = ref max_ii in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if has_positive_cycle mid then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  end

let pp ppf (g : t) =
  Fmt.pf ppf "dfg: %d nodes, %d edges@\n" (node_count g) (List.length g.edges);
  Array.iter
    (fun nd ->
      Fmt.pf ppf "  n%d [%s] %s -> %a@\n" nd.id
        (Opinfo.op_kind_name nd.kind)
        nd.label
        Fmt.(list ~sep:(any ", ") (fun ppf (d, k) ->
                 if k = 0 then Fmt.pf ppf "n%d" d else Fmt.pf ppf "n%d(+%d)" d k))
        g.succs.(nd.id))
    g.nodes
