(* DFG construction from a straight-line inner-loop body (§4.3, §5.3).

   The body is converted to SSA, then every operation becomes a node:
   - scalar flow inside one iteration: distance-0 edges;
   - loop-carried scalars (a use of the live-in version of a variable
     that the body also defines): a distance-1 edge from the defining
     node — the paper's backedges;
   - loop-invariant live-ins: register-source nodes ([Op_move]), the
     "registers at the top of the graph";
   - memory ordering: edges between accesses to the same array,
     disambiguated with a small affine-in-the-inner-index analysis so
     that accesses to provably different elements are independent. *)

open Uas_ir
module Ssa = Uas_analysis.Ssa
module Smap = Ssa.Smap

type access_info = {
  acc_node : int;
  acc_write : bool;
  acc_idx : Expr.t;
}

(* --- affine-in-j memory disambiguation --- *)

type jaffine = { cj : int; k0 : int; syms : string list }

let jaffine_of ~inner_index ~body_defs (e : Expr.t) : jaffine option =
  let rec go depth e =
    if depth > 12 then None
    else
      match Expr.simplify e with
      | Expr.Int n -> Some { cj = 0; k0 = n; syms = [] }
      | Expr.Var v ->
        (* the expressions may be SSA-renamed (j -> j#0): compare and
           classify by base name, so the loop index stays recognizable
           and body-defined values stay conservative *)
        let base = Ssa.base_name v in
        if Some base = inner_index then Some { cj = 1; k0 = 0; syms = [] }
        else if Stmt.Sset.mem base body_defs || Stmt.Sset.mem v body_defs then
          None
        else Some { cj = 0; k0 = 0; syms = [ base ] }
      | Expr.Binop (Types.Add, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y ->
          Some
            { cj = x.cj + y.cj;
              k0 = x.k0 + y.k0;
              syms = List.sort String.compare (x.syms @ y.syms) }
        | _ -> None)
      | Expr.Binop (Types.Sub, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y when y.syms = [] ->
          Some { cj = x.cj - y.cj; k0 = x.k0 - y.k0; syms = x.syms }
        | _ -> None)
      | Expr.Binop (Types.Mul, Expr.Int k, a)
      | Expr.Binop (Types.Mul, a, Expr.Int k) -> (
        match go (depth + 1) a with
        | Some x when x.syms = [] ->
          Some { cj = k * x.cj; k0 = k * x.k0; syms = [] }
        | _ -> None)
      | Expr.Binop (Types.Shl, a, Expr.Int k) when k >= 0 && k < 31 -> (
        match go (depth + 1) a with
        | Some x when x.syms = [] ->
          Some { cj = x.cj lsl k; k0 = x.k0 lsl k; syms = [] }
        | _ -> None)
      | _ -> None
  in
  go 0 e

(* May accesses [a] (earlier) and [b] (later) touch the same element in
   the same iteration? *)
let may_alias_intra ~inner_index ~body_defs ia ib =
  match
    ( jaffine_of ~inner_index ~body_defs ia,
      jaffine_of ~inner_index ~body_defs ib )
  with
  | Some x, Some y
    when List.length x.syms = List.length y.syms
         && List.for_all2 String.equal x.syms y.syms ->
    (* c_x*j + k_x = c_y*j + k_y for the same j *)
    if x.cj = y.cj then x.k0 = y.k0
    else (y.k0 - x.k0) mod (x.cj - y.cj) = 0  (* some j may match: conservative *)
  | _ -> true

(* Smallest cross-iteration distance d >= 1 at which [a] (iteration j)
   and [b] (iteration j+d) may touch the same element; [None] when they
   never can. *)
let cross_distance ~inner_index ~inner_step ~body_defs ia ib : int option =
  match
    ( jaffine_of ~inner_index ~body_defs ia,
      jaffine_of ~inner_index ~body_defs ib )
  with
  | Some x, Some y
    when List.length x.syms = List.length y.syms
         && List.for_all2 String.equal x.syms y.syms ->
    (* c_x*j + k_x = c_y*(j + d*step) + k_y *)
    if x.cj = y.cj then
      if x.cj = 0 then if x.k0 = y.k0 then Some 1 else None
      else begin
        let num = x.k0 - y.k0 in
        let den = y.cj * inner_step in
        if den <> 0 && num mod den = 0 && num / den >= 1 then Some (num / den)
        else None
      end
    else Some 1 (* different strides: conservative *)
  | _ -> Some 1

(* Executable meaning of a node, recorded for the cycle-accurate
   pipeline simulator (operand order matters and the edge list does not
   preserve it). *)
type node_sem =
  | Sconst of Types.value
  | Sreg of string
      (* live-in register for this base name; a carried register also
         has a distance-1 backedge from the live-out definition *)
  | Sbinop of Types.binop * int * int
  | Sunop of Types.unop * int
  | Sload of Types.array_id * int
  | Sstore of Types.array_id * int * int  (* index node, value node *)
  | Srom of Types.rom_id * int
  | Sselect of int * int * int
  | Smove of int

type detailed = {
  d_graph : Graph.t;
  d_ssa : Ssa.t;
  d_sem : node_sem array;
  d_live_out_nodes : (string * int) list;
      (* base scalar -> node holding its end-of-iteration value *)
}

type builder = {
  mutable nodes : Graph.node list;  (* reversed *)
  mutable sems : node_sem list;     (* reversed, parallel to nodes *)
  mutable edges : Graph.edge list;
  mutable next_id : int;
  mutable defs : int Smap.t;        (* SSA name -> defining node *)
  mutable reg_sources : int Smap.t; (* live-in/invariant var -> source node *)
  mutable pending_carried : (string * int) list;  (* base var, consumer *)
  mutable accesses : (Types.array_id * access_info) list;  (* reversed *)
}

let add_node b kind label sem =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.nodes <- { Graph.id; kind; label } :: b.nodes;
  b.sems <- sem :: b.sems;
  id

let add_edge b src dst distance =
  b.edges <- { Graph.e_src = src; e_dst = dst; e_distance = distance } :: b.edges

(** Build the DFG of a straight-line loop body.

    [inner_index] (if given) names the loop index of the body, enabling
    memory disambiguation and marking the index as an implicit
    register source rather than a dependence.

    Returns the graph together with the SSA conversion (so callers can
    relate nodes, labeled by SSA names, back to source variables). *)
let build_detailed ?(delay_of = Opinfo.default_delay) ?inner_index
    (body : Stmt.t list) : detailed =
  let ssa = Ssa.convert body in
  let carried_bases =
    (* base variables whose live-in version is fed by a body def:
       upward-exposed and defined *)
    Smap.fold
      (fun base inv acc ->
        match Smap.find_opt base ssa.Ssa.live_out with
        | Some outv when not (String.equal inv outv) ->
          Stmt.Sset.add base acc
        | _ -> acc)
      ssa.Ssa.live_in Stmt.Sset.empty
  in
  let body_defs = Stmt.defs body in
  let inner_step = 1 in
  let b =
    { nodes = []; sems = []; edges = []; next_id = 0; defs = Smap.empty;
      reg_sources = Smap.empty; pending_carried = []; accesses = [] }
  in
  (* returns the node producing the value of [e], creating nodes *)
  let rec node_of (e : Expr.t) : int =
    match e with
    | Expr.Int n ->
      add_node b Opinfo.Op_const (string_of_int n) (Sconst (Types.VInt n))
    | Expr.Float f ->
      add_node b Opinfo.Op_const (Printf.sprintf "%g" f)
        (Sconst (Types.VFloat f))
    | Expr.Var v -> (
      match Smap.find_opt v b.defs with
      | Some id -> id
      | None ->
        (* a live-in version: either fed back by the body (carried) or a
           register at the top of the graph *)
        let base = Ssa.base_name v in
        if Stmt.Sset.mem base carried_bases then begin
          (* placeholder register; the backedge is added at the end *)
          match Smap.find_opt v b.reg_sources with
          | Some id -> id
          | None ->
            let id = add_node b Opinfo.Op_move (base ^ "@carry") (Sreg base) in
            b.reg_sources <- Smap.add v id b.reg_sources;
            b.pending_carried <- (base, id) :: b.pending_carried;
            id
        end
        else begin
          match Smap.find_opt v b.reg_sources with
          | Some id -> id
          | None ->
            let id = add_node b Opinfo.Op_move (base ^ "@in") (Sreg base) in
            b.reg_sources <- Smap.add v id b.reg_sources;
            id
        end)
    | Expr.Load (a, i) ->
      let ni = node_of i in
      let id = add_node b Opinfo.Op_load (Printf.sprintf "%s[]" a) (Sload (a, ni)) in
      add_edge b ni id 0;
      add_mem_edges a { acc_node = id; acc_write = false; acc_idx = i };
      id
    | Expr.Rom (r, i) ->
      let ni = node_of i in
      let id = add_node b Opinfo.Op_rom (Printf.sprintf "%s()" r) (Srom (r, ni)) in
      add_edge b ni id 0;
      id
    | Expr.Unop (o, x) ->
      let nx = node_of x in
      let id = add_node b (Opinfo.Op_unop o) (Types.unop_name o) (Sunop (o, nx)) in
      add_edge b nx id 0;
      id
    | Expr.Binop (o, l, r) ->
      let nl = node_of l in
      let nr = node_of r in
      let id =
        add_node b (Opinfo.Op_binop o) (Types.binop_name o)
          (Sbinop (o, nl, nr))
      in
      add_edge b nl id 0;
      add_edge b nr id 0;
      id
    | Expr.Select (c, t, f) ->
      let nc = node_of c in
      let nt = node_of t in
      let nf = node_of f in
      let id = add_node b Opinfo.Op_select "select" (Sselect (nc, nt, nf)) in
      add_edge b nc id 0;
      add_edge b nt id 0;
      add_edge b nf id 0;
      id

  and add_mem_edges array_id (acc : access_info) =
    (* ordering edges against every earlier access to the same array *)
    List.iter
      (fun (a, earlier) ->
        if String.equal a array_id && (earlier.acc_write || acc.acc_write)
        then begin
          if
            may_alias_intra ~inner_index ~body_defs earlier.acc_idx
              acc.acc_idx
          then add_edge b earlier.acc_node acc.acc_node 0;
          (match
             cross_distance ~inner_index ~inner_step ~body_defs acc.acc_idx
               earlier.acc_idx
           with
          | Some d -> add_edge b acc.acc_node earlier.acc_node d
          | None -> ());
          match
            cross_distance ~inner_index ~inner_step ~body_defs
              earlier.acc_idx acc.acc_idx
          with
          | Some d -> add_edge b earlier.acc_node acc.acc_node d
          | None -> ()
        end)
      b.accesses;
    (* cross-iteration self-conflict of a store *)
    if acc.acc_write then begin
      match
        cross_distance ~inner_index ~inner_step ~body_defs acc.acc_idx
          acc.acc_idx
      with
      | Some d -> add_edge b acc.acc_node acc.acc_node d
      | None -> ()
    end;
    b.accesses <- (array_id, acc) :: b.accesses
  in
  List.iter
    (fun s ->
      match s with
      | Stmt.Assign (x, e) ->
        let n = node_of e in
        (* reuse the producing node as the def unless the rhs is a bare
           variable or constant, which needs an explicit move/register *)
        let def_node =
          match e with
          | Expr.Var _ ->
            let id = add_node b Opinfo.Op_move x (Smove n) in
            add_edge b n id 0;
            id
          | Expr.Int _ | Expr.Float _ -> n
          | _ -> n
        in
        b.defs <- Smap.add x def_node b.defs
      | Stmt.Store (a, i, e) ->
        let ni = node_of i in
        let nv = node_of e in
        let id =
          add_node b Opinfo.Op_store (Printf.sprintf "%s[]=" a)
            (Sstore (a, ni, nv))
        in
        add_edge b ni id 0;
        add_edge b nv id 0;
        add_mem_edges a { acc_node = id; acc_write = true; acc_idx = i }
      | Stmt.If _ | Stmt.For _ ->
        Types.ir_error "DFG build requires a straight-line body")
    ssa.Ssa.ssa_body;
  (* resolve carried backedges: def of the live-out version feeds the
     carry register with distance 1 *)
  List.iter
    (fun (base, reg_node) ->
      match Smap.find_opt base ssa.Ssa.live_out with
      | Some outv -> (
        match Smap.find_opt outv b.defs with
        | Some def_node -> add_edge b def_node reg_node 1
        | None -> ())
      | None -> ())
    b.pending_carried;
  let g = Graph.create ~delay_of (List.rev b.nodes) b.edges in
  let live_out_nodes =
    Smap.fold
      (fun base outv acc ->
        match Smap.find_opt outv b.defs with
        | Some n -> (base, n) :: acc
        | None -> acc)
      ssa.Ssa.live_out []
  in
  { d_graph = g;
    d_ssa = ssa;
    d_sem = Array.of_list (List.rev b.sems);
    d_live_out_nodes = live_out_nodes }

(** Build the DFG of a straight-line loop body (graph + SSA only). *)
let build ?delay_of ?inner_index (body : Stmt.t list) : Graph.t * Ssa.t =
  let d = build_detailed ?delay_of ?inner_index body in
  (d.d_graph, d.d_ssa)
