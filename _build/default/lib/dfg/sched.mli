(** Scheduling (§3.5): initiation intervals and issue times under the
    datapath's memory-port budget.

    [list_schedule] models the original, non-overlapped execution (II =
    schedule length); [modulo_schedule] the pipelined one (iterative
    modulo scheduling by SDC-style constraint relaxation, II =
    max(RecMII, ResMII) when placement succeeds, growing otherwise). *)

type config = { mem_ports : int (** references per clock; §6.1 uses 2 *) }

val default_config : config

type schedule = {
  s_ii : int;  (** initiation interval in cycles *)
  s_times : int array;  (** issue cycle of every node *)
  s_length : int;  (** makespan of one iteration *)
}

(** ceil(memory ops / ports). *)
val resource_mii : config -> Graph.t -> int

(** max(1, RecMII, ResMII): the pipelined lower bound. *)
val min_ii : config -> Graph.t -> int

(** Resource-constrained acyclic scheduling of one iteration
    (distance-0 edges only). *)
val list_schedule : ?cfg:config -> Graph.t -> schedule

(** Smallest feasible pipelined II at or above [min_ii]; the acyclic
    schedule length is a guaranteed fallback. *)
val modulo_schedule : ?cfg:config -> Graph.t -> schedule

(** Hardware registers implied by a schedule: one per move node plus
    one per II-window each computed value stays live (modulo variable
    expansion). *)
val register_estimate : Graph.t -> schedule -> int

val pp_schedule : schedule Fmt.t
