(** DFG construction from a straight-line loop body (§4.3, §5.3): SSA
    conversion, one node per operation, distance-1 backedges for
    loop-carried scalars, register-source nodes for live-ins, and
    memory-ordering edges disambiguated by an affine-in-the-index
    analysis. *)

open Uas_ir
module Ssa = Uas_analysis.Ssa

(** Smallest cross-iteration distance d >= 1 at which access [ia] (at
    iteration j) and [ib] (at j+d) may touch the same element; [None]
    when provably never.  Exposed for reuse by fusion / distribution /
    pipelining legality. *)
val cross_distance :
  inner_index:string option ->
  inner_step:int ->
  body_defs:Stmt.Sset.t ->
  Expr.t ->
  Expr.t ->
  int option

(** May the two accesses touch the same element in one iteration? *)
val may_alias_intra :
  inner_index:string option ->
  body_defs:Stmt.Sset.t ->
  Expr.t ->
  Expr.t ->
  bool

(** Executable meaning of each node, with ordered operands (the edge
    list does not preserve operand order).  Consumed by the
    cycle-accurate pipeline simulator. *)
type node_sem =
  | Sconst of Types.value
  | Sreg of string
      (** live-in register for this base scalar; carried registers also
          have a distance-1 backedge from the live-out definition *)
  | Sbinop of Types.binop * int * int
  | Sunop of Types.unop * int
  | Sload of Types.array_id * int
  | Sstore of Types.array_id * int * int  (** index node, value node *)
  | Srom of Types.rom_id * int
  | Sselect of int * int * int
  | Smove of int

type detailed = {
  d_graph : Graph.t;
  d_ssa : Ssa.t;
  d_sem : node_sem array;
  d_live_out_nodes : (string * int) list;
      (** base scalar -> node holding its end-of-iteration value *)
}

(** Build the DFG with full per-node semantics.
    @raise Ir_error when the body is not straight-line. *)
val build_detailed :
  ?delay_of:(Opinfo.op_kind -> int) ->
  ?inner_index:string ->
  Stmt.t list ->
  detailed

(** Build the DFG of a straight-line body.  [inner_index] enables
    memory disambiguation across iterations.  Returns the graph and the
    SSA conversion relating node labels to source names.
    @raise Ir_error when the body is not straight-line. *)
val build :
  ?delay_of:(Opinfo.op_kind -> int) ->
  ?inner_index:string ->
  Stmt.t list ->
  Graph.t * Ssa.t
