(* Graphviz export of DFGs, for rendering Figure 4.1/4.2-style
   diagrams: operator nodes as boxes, register sources as ellipses,
   loop-carried backedges dashed with their distance. *)

open Uas_ir

let node_shape (k : Opinfo.op_kind) =
  match k with
  | Opinfo.Op_move -> "ellipse"
  | Opinfo.Op_const -> "plaintext"
  | Opinfo.Op_load | Opinfo.Op_store -> "box3d"
  | Opinfo.Op_rom -> "cylinder"
  | Opinfo.Op_binop _ | Opinfo.Op_unop _ | Opinfo.Op_select -> "box"

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** Render the graph in Graphviz dot syntax. *)
let to_dot ?(name = "dfg") (g : Graph.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  Array.iter
    (fun (n : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\" shape=%s];\n" n.Graph.id
           (escape n.Graph.label)
           (node_shape n.Graph.kind)))
    g.Graph.nodes;
  List.iter
    (fun (e : Graph.edge) ->
      if e.Graph.e_distance = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d;\n" e.Graph.e_src e.Graph.e_dst)
      else
        Buffer.add_string buf
          (Printf.sprintf
             "  n%d -> n%d [style=dashed constraint=false label=\"+%d\"];\n"
             e.Graph.e_src e.Graph.e_dst e.Graph.e_distance))
    g.Graph.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Write the dot rendering to a file. *)
let write_file ?name (g : Graph.t) ~path : unit =
  let oc = open_out path in
  (try output_string oc (to_dot ?name g)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
