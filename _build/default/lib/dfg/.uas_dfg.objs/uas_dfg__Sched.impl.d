lib/dfg/sched.ml: Array Fmt Graph Hashtbl List Opinfo Option Seq Uas_ir
