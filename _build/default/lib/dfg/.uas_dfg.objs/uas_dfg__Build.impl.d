lib/dfg/build.ml: Array Expr Graph List Opinfo Printf Stmt String Types Uas_analysis Uas_ir
