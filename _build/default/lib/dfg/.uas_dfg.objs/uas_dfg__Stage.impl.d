lib/dfg/stage.ml: Array Expr List Opinfo Stmt Types Uas_ir
