lib/dfg/sched.mli: Fmt Graph
