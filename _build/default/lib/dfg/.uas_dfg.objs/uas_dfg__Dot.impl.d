lib/dfg/dot.ml: Array Buffer Graph List Opinfo Printf String Uas_ir
