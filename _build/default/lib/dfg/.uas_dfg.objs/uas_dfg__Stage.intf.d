lib/dfg/stage.mli: Opinfo Stmt Uas_ir
