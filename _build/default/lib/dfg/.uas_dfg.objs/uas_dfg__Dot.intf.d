lib/dfg/dot.mli: Graph
