lib/dfg/graph.mli: Fmt Opinfo Uas_ir
