lib/dfg/build.mli: Expr Graph Opinfo Stmt Types Uas_analysis Uas_ir
