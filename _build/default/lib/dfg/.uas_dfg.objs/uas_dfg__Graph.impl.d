lib/dfg/graph.ml: Array Fmt List Opinfo Queue Types Uas_ir
