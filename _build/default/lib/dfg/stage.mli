(** Pipeline-stage assignment for unroll-and-squash (§4.3): cut a
    straight-line body into exactly DS contiguous slices minimizing the
    maximum slice delay (the linear-partition dynamic program).
    Backedges are ignored by construction — slicing never reorders. *)

open Uas_ir

(** Critical-path delay of one statement's expression tree.
    @raise Ir_error on loops. *)
val stmt_delay : ?delay_of:(Opinfo.op_kind -> int) -> Stmt.t -> int

(** Cut into exactly [stages] slices (possibly empty); concatenating
    the result yields the input.  @raise Ir_error when [stages <= 0]. *)
val partition :
  ?delay_of:(Opinfo.op_kind -> int) ->
  stages:int ->
  Stmt.t list ->
  Stmt.t list list

(** Largest single-statement delay over the slices. *)
val max_stage_delay :
  ?delay_of:(Opinfo.op_kind -> int) -> Stmt.t list list -> int

(** Sum of statement delays per slice. *)
val stage_costs : ?delay_of:(Opinfo.op_kind -> int) -> Stmt.t list list -> int list
