(** Graphviz export of DFGs (Figure 4.1/4.2-style diagrams): operators
    as boxes, register sources as ellipses, loop-carried backedges
    dashed and labelled with their distance. *)

(** Render in dot syntax. *)
val to_dot : ?name:string -> Graph.t -> string

(** Write [to_dot] to a file. *)
val write_file : ?name:string -> Graph.t -> path:string -> unit
