(* Pipeline-stage assignment for unroll-and-squash (§4.3: "Pipeline the
   resulting DFG ignoring the backedges, producing exactly DS pipeline
   stages.  Empty stages may be added or pipeline registers may be
   removed to adjust the stage count to DS.")

   The software realization keeps the inner-loop body as an ordered list
   of statements and cuts it into DS contiguous slices.  The cut is
   chosen to minimize the maximum slice delay (the post-squash stage
   delay bounds the initiation interval), using the classic linear-
   partition dynamic program.  Backedges are ignored by construction:
   slicing never reorders statements. *)

open Uas_ir

(** Estimated delay of one statement: the critical path of its
    expression tree (operators chain sequentially within a statement). *)
let rec stmt_delay ?(delay_of = Opinfo.default_delay) (s : Stmt.t) : int =
  let rec expr_delay (e : Expr.t) : int =
    match e with
    | Expr.Int _ | Expr.Float _ | Expr.Var _ -> 0
    | Expr.Load (_, i) -> expr_delay i + delay_of Opinfo.Op_load
    | Expr.Rom (_, i) -> expr_delay i + delay_of Opinfo.Op_rom
    | Expr.Unop (o, x) -> expr_delay x + delay_of (Opinfo.Op_unop o)
    | Expr.Binop (o, l, r) ->
      max (expr_delay l) (expr_delay r) + delay_of (Opinfo.Op_binop o)
    | Expr.Select (c, t, f) ->
      max (expr_delay c) (max (expr_delay t) (expr_delay f))
      + delay_of Opinfo.Op_select
  in
  match s with
  | Stmt.Assign (_, e) -> max 1 (expr_delay e)
  | Stmt.Store (_, i, e) ->
    max 1 (max (expr_delay i) (expr_delay e) + delay_of Opinfo.Op_store)
  | Stmt.If (c, t, f) ->
    max 1 (expr_delay c)
    + List.fold_left (fun a s -> a + stmt_delay ~delay_of s) 0 (t @ f)
  | Stmt.For _ -> Types.ir_error "stage assignment requires straight-line code"

(** Cut [stmts] into exactly [stages] contiguous slices (possibly empty
    at the tail) minimizing the maximum slice cost.  Returns the slices
    in order; their concatenation is [stmts]. *)
let partition ?(delay_of = Opinfo.default_delay) ~stages (stmts : Stmt.t list)
    : Stmt.t list list =
  if stages <= 0 then Types.ir_error "stage count must be positive";
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let cost = Array.map (stmt_delay ~delay_of) arr in
  (* prefix.(i) = cost of the first i statements *)
  let prefix = Array.make (n + 1) 0 in
  for i = 1 to n do
    prefix.(i) <- prefix.(i - 1) + cost.(i - 1)
  done;
  let range_cost i j = prefix.(j) - prefix.(i) in
  (* dp.(k).(i): minimal max-slice-cost splitting the first i statements
     into k slices; cut.(k).(i): position of the last cut *)
  let k_max = stages in
  let dp = Array.make_matrix (k_max + 1) (n + 1) max_int in
  let cut = Array.make_matrix (k_max + 1) (n + 1) 0 in
  dp.(0).(0) <- 0;
  for k = 1 to k_max do
    for i = 0 to n do
      for j = 0 to i do
        if dp.(k - 1).(j) < max_int then begin
          let candidate = max dp.(k - 1).(j) (range_cost j i) in
          if candidate < dp.(k).(i) then begin
            dp.(k).(i) <- candidate;
            cut.(k).(i) <- j
          end
        end
      done
    done
  done;
  (* reconstruct the slice boundaries *)
  let bounds = Array.make (k_max + 1) n in
  let rec back k i =
    bounds.(k) <- i;
    if k > 0 then back (k - 1) cut.(k).(i)
  in
  back k_max n;
  List.init k_max (fun k ->
      let lo = bounds.(k) and hi = bounds.(k + 1) in
      Array.to_list (Array.sub arr lo (hi - lo)))

(** Maximum slice delay of a partition (the stage-imbalance bound on
    the squashed II). *)
let max_stage_delay ?(delay_of = Opinfo.default_delay)
    (slices : Stmt.t list list) : int =
  List.fold_left
    (fun m slice ->
      max m (List.fold_left (fun a s -> max a (stmt_delay ~delay_of s)) 0 slice))
    0 slices

(** Sum-of-delays per slice, for reporting. *)
let stage_costs ?(delay_of = Opinfo.default_delay) (slices : Stmt.t list list)
    : int list =
  List.map
    (fun slice -> List.fold_left (fun a s -> a + stmt_delay ~delay_of s) 0 slice)
    slices
