(** Data-flow graphs (Figure 4.1): nodes are datapath operations, edges
    carry the dependence distance in iterations — 0 for intra-iteration
    flow, k >= 1 for loop-carried "backedges". *)

open Uas_ir

type node = {
  id : int;
  kind : Opinfo.op_kind;
  label : string;  (** defined SSA name or an op description *)
}

type edge = {
  e_src : int;
  e_dst : int;
  e_distance : int;  (** iterations: 0 = same iteration, >=1 carried *)
}

type t = {
  nodes : node array;
  edges : edge list;
  succs : (int * int) list array;  (** per node: (dst, distance) *)
  preds : (int * int) list array;  (** per node: (src, distance) *)
  delay_of : Opinfo.op_kind -> int;
}

val node_count : t -> int
val node : t -> int -> node
val delay : t -> int -> int

(** @raise Ir_error on malformed ids/edges. *)
val create :
  ?delay_of:(Opinfo.op_kind -> int) -> node list -> edge list -> t

(** Real datapath operators (moves/constants excluded). *)
val operator_nodes : t -> node list

val operator_count : t -> int
val memory_op_count : t -> int
val total_operator_area : ?area_of:(Opinfo.op_kind -> int) -> t -> int

(** Topological order of the distance-0 subgraph.
    @raise Ir_error when it has a cycle (malformed: SSA bodies are
    acyclic within an iteration). *)
val topo_order : t -> int list

(** Delay of the longest intra-iteration path. *)
val critical_path : t -> int

(** max over cycles of ceil(delay/distance); 0 without recurrences.
    The recurrence-constrained lower bound on a pipelined II. *)
val recurrence_mii : t -> int

val pp : t Fmt.t
