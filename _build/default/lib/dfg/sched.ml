(* Scheduling (§3.5, §6): computes the initiation interval and issue
   times that the hardware estimator reports.

   - [list_schedule]: resource-constrained acyclic scheduling of one
     iteration (the *original*, non-overlapped execution: the next
     iteration starts only when the current one finishes, so II equals
     the schedule length);
   - [modulo_schedule]: iterative modulo scheduling for pipelined
     execution: II = max(RecMII, ResMII) when the greedy placement
     succeeds, growing II otherwise until it does (Rau-style IMS with a
     bounded retry budget per II). *)

open Uas_ir

type config = {
  mem_ports : int;  (** memory references allowed per clock (§6.1: 2) *)
}

let default_config = { mem_ports = 2 }

type schedule = {
  s_ii : int;             (** initiation interval in cycles *)
  s_times : int array;    (** issue cycle of every node *)
  s_length : int;         (** makespan of one iteration *)
}

let resource_mii (cfg : config) (g : Graph.t) : int =
  let mems = Graph.memory_op_count g in
  if mems = 0 then 1 else (mems + cfg.mem_ports - 1) / cfg.mem_ports

(** Lower bound on the pipelined II: recurrence- and resource-
    constrained. *)
let min_ii (cfg : config) (g : Graph.t) : int =
  max 1 (max (Graph.recurrence_mii g) (resource_mii cfg g))

(** Resource-constrained list schedule of one iteration, honoring only
    intra-iteration (distance-0) edges.  Memory operations respect the
    port limit per absolute cycle. *)
let list_schedule ?(cfg = default_config) (g : Graph.t) : schedule =
  let n = Graph.node_count g in
  let times = Array.make n 0 in
  let order = Graph.topo_order g in
  let mem_use : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let ready =
        List.fold_left
          (fun t (p, dist) ->
            if dist = 0 then max t (times.(p) + Graph.delay g p) else t)
          0 g.Graph.preds.(i)
      in
      let needs_port = Opinfo.uses_memory_port (Graph.node g i).kind in
      let rec place t =
        if needs_port then begin
          let used = Option.value ~default:0 (Hashtbl.find_opt mem_use t) in
          if used >= cfg.mem_ports then place (t + 1)
          else begin
            Hashtbl.replace mem_use t (used + 1);
            t
          end
        end
        else t
      in
      times.(i) <- place ready)
    order;
  let length =
    Array.to_seq times
    |> Seq.mapi (fun i t -> t + Graph.delay g i)
    |> Seq.fold_left max 0
  in
  { s_ii = max 1 length; s_times = times; s_length = max 1 length }

(* Check every edge constraint t(dst) >= t(src) + delay(src) - II*dist. *)
let feasible (g : Graph.t) ~ii times =
  List.for_all
    (fun e ->
      times.(e.Graph.e_dst)
      >= times.(e.Graph.e_src) + Graph.delay g e.Graph.e_src
         - (ii * e.Graph.e_distance))
    g.Graph.edges

(* Longest-path (ASAP) times under II via Bellman-Ford with per-node
   extra lower bounds; virtual source at 0.  [None] when a positive
   cycle makes the II infeasible. *)
let asap_times ?(lb : int array option) (g : Graph.t) ~ii =
  let n = Graph.node_count g in
  let t =
    match lb with Some l -> Array.copy l | None -> Array.make n 0
  in
  let pass () =
    List.fold_left
      (fun changed e ->
        let w = Graph.delay g e.Graph.e_src - (ii * e.Graph.e_distance) in
        if t.(e.Graph.e_src) + w > t.(e.Graph.e_dst) then begin
          t.(e.Graph.e_dst) <- t.(e.Graph.e_src) + w;
          true
        end
        else changed)
      false g.Graph.edges
  in
  (* simple paths have at most n-1 edges: changes past n+1 passes mean
     a positive cycle, i.e. the II is infeasible *)
  let rec go k =
    if not (pass ()) then Some t else if k > n then None else go (k + 1)
  in
  go 0

(* Modulo placement at a fixed II by constraint relaxation (an SDC-style
   formulation): the Bellman-Ford solution satisfies every dependence by
   construction; memory-port oversubscription of a modulo slot is
   resolved by bumping the latest offender's lower bound and re-solving,
   so dependences stay satisfied.  Bounded retries keep it total. *)
let try_modulo (cfg : config) (g : Graph.t) ~ii : int array option =
  let n = Graph.node_count g in
  let mem_nodes =
    List.filter
      (fun i -> Opinfo.uses_memory_port (Graph.node g i).kind)
      (List.init n (fun i -> i))
  in
  let lb = Array.make n 0 in
  let budget = ref (64 + (List.length mem_nodes * ii * 4)) in
  let rec solve () =
    match asap_times ~lb g ~ii with
    | None -> None
    | Some t ->
      (* most-loaded oversubscribed modulo slot, if any *)
      let slots = Array.make ii [] in
      List.iter
        (fun i ->
          let s = ((t.(i) mod ii) + ii) mod ii in
          slots.(s) <- i :: slots.(s))
        mem_nodes;
      let offender = ref None in
      Array.iter
        (fun nodes ->
          if List.length nodes > cfg.mem_ports then begin
            (* bump the latest-scheduled op in the slot: it has the most
               slack left before wrapping all the way around *)
            let latest =
              List.fold_left
                (fun best i ->
                  match best with
                  | None -> Some i
                  | Some b -> if t.(i) > t.(b) then Some i else best)
                None nodes
            in
            match (!offender, latest) with
            | None, Some i -> offender := Some i
            | _ -> ()
          end)
        slots;
      match !offender with
      | None -> Some t
      | Some i ->
        decr budget;
        if !budget <= 0 then None
        else begin
          lb.(i) <- t.(i) + 1;
          solve ()
        end
  in
  match solve () with
  | Some t when feasible g ~ii t -> Some t
  | Some _ | None -> None

(** Iterative modulo scheduling: find the smallest feasible II at or
    above the recurrence/resource lower bound.  Always succeeds — the
    acyclic list-schedule length is a feasible fallback. *)
let modulo_schedule ?(cfg = default_config) (g : Graph.t) : schedule =
  if Graph.node_count g = 0 then { s_ii = 1; s_times = [||]; s_length = 1 }
  else begin
    let fallback = list_schedule ~cfg g in
    let lower = min_ii cfg g in
    let rec search ii =
      if ii >= fallback.s_length then
        { fallback with s_ii = max 1 fallback.s_length }
      else
        match try_modulo cfg g ~ii with
        | Some times ->
          let length =
            Array.to_seq times
            |> Seq.mapi (fun i t -> t + Graph.delay g i)
            |> Seq.fold_left max 0
          in
          { s_ii = ii; s_times = times; s_length = max 1 length }
        | None -> search (ii + 1)
    in
    search lower
  end

(** Number of hardware registers implied by a schedule: one per register
    source / move node, plus, for every produced value, the number of
    II-wide windows its lifetime spans (modulo variable expansion: a
    value alive for more than one II needs a new register per in-flight
    iteration). *)
let register_estimate (g : Graph.t) (s : schedule) : int =
  let n = Graph.node_count g in
  let regs = ref 0 in
  for i = 0 to n - 1 do
    let kind = (Graph.node g i).kind in
    let produced_at = s.s_times.(i) + Graph.delay g i in
    let last_use =
      List.fold_left
        (fun m (d, dist) -> max m (s.s_times.(d) + (s.s_ii * dist)))
        produced_at g.Graph.succs.(i)
    in
    let lifetime = last_use - produced_at in
    (* zero-lifetime values are consumed combinationally (no register);
       stored values need floor(lifetime/II) + 1 — floor plus one, not
       ceiling: when the lifetime is an exact multiple of the II, the
       next iteration's result arrives on the very edge of the last
       read and a further buffer register is required (found by the
       cycle-accurate simulator's hazard check) *)
    let windows = if lifetime = 0 then 0 else (lifetime / s.s_ii) + 1 in
    (match kind with
    | Opinfo.Op_move ->
      (* a move IS a register write: at least one register, more when
         the value stays live across several initiation windows *)
      regs := !regs + max 1 windows
    | Opinfo.Op_const -> ()
    | _ ->
      (* a computed value needs one register per II-window it stays
         live; a value consumed the cycle it appears needs none *)
      if g.Graph.succs.(i) <> [] then regs := !regs + windows)
  done;
  !regs

let pp_schedule ppf s =
  Fmt.pf ppf "II=%d length=%d" s.s_ii s.s_length
