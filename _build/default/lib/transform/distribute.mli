(** Loop distribution (fission): split one loop into two at a statement
    cut.  Legal when no value flows backwards between the groups
    (scalars may not cross the cut at all; arrays only forward at the
    same iteration). *)

open Uas_ir

type failure =
  | Scalar_flow of string
  | Array_flow of string
  | Bad_cut

val pp_failure : failure Fmt.t

exception Distribute_error of failure

(** Why cutting the body after its first [cut] statements would be
    illegal; empty when safe. *)
val failures : Stmt.loop -> cut:int -> failure list

(** Distribute the loop with this index at position [cut].
    @raise Distribute_error when illegal
    @raise Ir_error when the loop is absent. *)
val apply : Stmt.program -> index:string -> cut:int -> Stmt.program
