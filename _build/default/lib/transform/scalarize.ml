(* Scalarization (§4.2: "Scalarization may be used to reduce the number
   of memory references in the inner loop and replace them with
   register-to-register moves").

   The pattern handled: a loop body that repeatedly loads the same
   loop-invariant address.  The load is performed once into a fresh
   scalar before the loop and every occurrence becomes a register read.
   Loads whose array is also stored in the body are left alone.

   This is exactly what turns the Skipjack-mem key accesses into the
   Skipjack-hw register/ROM style when the key index is invariant, and
   it reduces ResMII for memory-bound kernels. *)

open Uas_ir
module Sset = Stmt.Sset

(* invariant w.r.t. the loop: reads nothing the body writes, not the
   index, and only constant/invariant scalars *)
let invariant_addr (l : Stmt.loop) (e : Expr.t) =
  let defs = Sset.add l.index (Stmt.defs l.body) in
  Sset.is_empty (Sset.inter (Expr.var_set e) defs) && not (Expr.has_load e)

(* collect distinct invariant load sites (array, index expression) *)
let invariant_loads (l : Stmt.loop) : (string * Expr.t) list =
  let stored = Stmt.arrays_written l.body in
  let sites = ref [] in
  let record a i =
    if
      (not (Sset.mem a stored))
      && invariant_addr l i
      && not
           (List.exists
              (fun (a', i') -> String.equal a a' && Expr.equal i i')
              !sites)
    then sites := (a, i) :: !sites
  in
  ignore
    (Stmt.fold_exprs
       (fun () e ->
         Expr.fold
           (fun () e ->
             match e with Expr.Load (a, i) -> record a i | _ -> ())
           () e)
       () l.body);
  List.rev !sites

(** Scalarize invariant loads of the loop with index [index] in [p].
    Returns the rewritten program (identity when nothing applies). *)
let apply (p : Stmt.program) ~index : Stmt.program =
  let fresh_base = ref 0 in
  let decls = ref [] in
  let replaced = ref false in
  let ty_of_array a =
    match Stmt.lookup_array p a with
    | Some d -> d.Stmt.a_ty
    | None -> Types.Tint
  in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index index && not !replaced -> (
          replaced := true;
          match invariant_loads l with
          | [] -> [ s ]
          | sites ->
            let bindings =
              List.map
                (fun (a, i) ->
                  incr fresh_base;
                  let name = Printf.sprintf "%s@scal%d" a !fresh_base in
                  decls := (name, ty_of_array a) :: !decls;
                  ((a, i), name))
                sites
            in
            let rewrite e =
              Expr.map
                (fun e ->
                  match e with
                  | Expr.Load (a, i) -> (
                    match
                      List.find_opt
                        (fun ((a', i'), _) ->
                          String.equal a a' && Expr.equal i i')
                        bindings
                    with
                    | Some (_, name) -> Expr.Var name
                    | None -> e)
                  | e -> e)
                e
            in
            let preload =
              List.map
                (fun ((a, i), name) -> Stmt.Assign (name, Expr.Load (a, i)))
                bindings
            in
            preload
            @ [ Stmt.For { l with body = Stmt.map_exprs_list rewrite l.body } ])
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then Types.ir_error "no loop with index %s" index;
  Stmt.add_locals { p with body } (List.rev !decls)
