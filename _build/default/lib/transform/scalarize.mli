(** Scalarization (§4.2): loads from loop-invariant addresses of arrays
    the loop never stores to are performed once before the loop and
    become register reads inside it, reducing the §6.1 memory-reference
    pressure. *)

open Uas_ir

(** Scalarize the loop with this index.
    @raise Ir_error when the loop is absent. *)
val apply : Stmt.program -> index:string -> Stmt.program
