(** Classic scalar optimizations (§4.2): constant folding, copy and
    constant propagation, dead-code elimination, strength reduction.
    Block-level passes act on straight-line regions and are
    conservative elsewhere. *)

open Uas_ir
module Sset = Stmt.Sset

val const_fold : Stmt.program -> Stmt.program
val propagate : Stmt.program -> Stmt.program

(** Remove assignments never observed; [live_out] defaults to every
    declared scalar (a safe identity). *)
val dead_code : ?live_out:Sset.t -> Stmt.program -> Stmt.program

(** Multiplications/divisions/modulus by powers of two become shifts
    and masks where exactness is provable. *)
val strength_reduce : Stmt.program -> Stmt.program

(** [const_fold |> propagate |> strength_reduce |> const_fold]. *)
val cleanup : Stmt.program -> Stmt.program
