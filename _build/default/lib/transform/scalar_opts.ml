(* Classic scalar optimizations (§4.2: constant propagation and
   folding, copy propagation, dead-code elimination, strength
   reduction).  They run before the loop transformations to shrink the
   inner body, and are useful after them to clean up staging moves.

   All block-level passes operate on straight-line regions only and are
   conservative everywhere else. *)

open Uas_ir
module Smap = Map.Make (String)
module Sset = Stmt.Sset

(** Constant folding + algebraic simplification over every expression. *)
let const_fold (p : Stmt.program) : Stmt.program =
  { p with body = Stmt.map_exprs_list Expr.simplify p.body }

(* Propagate copies and constants through a straight-line block.  The
   environment maps a scalar to a replacement expression that is either
   a constant or a variable still holding the same value. *)
let propagate_block (stmts : Stmt.t list) : Stmt.t list =
  let env = ref Smap.empty in
  let kill x =
    (* x changes: drop its binding and any binding that reads x *)
    env :=
      Smap.filter
        (fun v e -> (not (String.equal v x)) && not (Expr.mem_var x e))
        !env
  in
  let subst e = Expr.subst_vars (fun v -> Smap.find_opt v !env) e in
  List.map
    (fun s ->
      match s with
      | Stmt.Assign (x, e) ->
        let e' = Expr.simplify (subst e) in
        kill x;
        (match e' with
        | Expr.Int _ | Expr.Float _ -> env := Smap.add x e' !env
        | Expr.Var y when not (String.equal x y) ->
          env := Smap.add x (Expr.Var y) !env
        | _ -> ());
        Stmt.Assign (x, e')
      | Stmt.Store (a, i, e) ->
        Stmt.Store (a, Expr.simplify (subst i), Expr.simplify (subst e))
      | Stmt.If _ | Stmt.For _ ->
        env := Smap.empty;
        s)
    stmts

(** Copy/constant propagation inside every straight-line region. *)
let propagate (p : Stmt.program) : Stmt.program =
  let rec go stmts =
    propagate_block
      (List.map
         (fun s ->
           match s with
           | Stmt.For l -> Stmt.For { l with body = go l.body }
           | Stmt.If (c, t, e) -> Stmt.If (c, go t, go e)
           | Stmt.Assign _ | Stmt.Store _ -> s)
         stmts)
  in
  { p with body = go p.body }

(* Dead assignment elimination on a straight-line block given the
   scalars live at its end. *)
let dce_block ~(live_out : Sset.t) (stmts : Stmt.t list) : Stmt.t list =
  let rec go = function
    | [] -> (live_out, [])
    | s :: rest ->
      let live_after, rest' = go rest in
      (match s with
      | Stmt.Assign (x, e) ->
        if Sset.mem x live_after then
          ( Sset.union (Expr.var_set e) (Sset.remove x live_after),
            s :: rest' )
        else (live_after, rest')
      | Stmt.Store (_, i, e) ->
        ( Sset.union live_after (Sset.union (Expr.var_set i) (Expr.var_set e)),
          s :: rest' )
      | Stmt.If _ | Stmt.For _ ->
        let du = Uas_analysis.Def_use.of_stmt s in
        (Sset.union du.du_uses (Sset.union live_after du.du_defs), s :: rest'))
  in
  snd (go stmts)

(** Eliminate assignments whose value is never observed.  Conservative:
    a loop body keeps everything it might feed to a later iteration, so
    only straight-line tails get cleaned; [live_out] defaults to every
    scalar (safe identity), callers pass the real live set when known. *)
let dead_code ?(live_out : Sset.t option) (p : Stmt.program) : Stmt.program =
  let live_out =
    match live_out with
    | Some s -> s
    | None -> Sset.of_list (List.map fst (Stmt.scalar_decls p))
  in
  { p with body = dce_block ~live_out p.body }

(** Strength reduction: multiplications and divisions by powers of two
    become shifts; modulus by a power of two becomes a mask (non-
    negative ranges cannot be proven here, so only [land] with provably
    non-negative operands — loads from ROMs and masked values — are
    rewritten; the rest is left to the folder). *)
let strength_reduce (p : Stmt.program) : Stmt.program =
  let rec is_nonneg (e : Expr.t) =
    match e with
    | Expr.Int n -> n >= 0
    | Expr.Rom _ -> true  (* ROM contents are table bytes in this IR *)
    | Expr.Binop (Types.BAnd, a, b) -> is_nonneg a || is_nonneg b
    | Expr.Binop (Types.Shr, a, _) -> is_nonneg a
    | Expr.Binop (Types.Mod, _, Expr.Int n) -> n > 0
    | _ -> false
  in
  let log2 n =
    let rec go k = if 1 lsl k = n then Some k else if 1 lsl k > n then None else go (k + 1) in
    if n <= 0 then None else go 0
  in
  let rewrite e =
    Expr.map
      (fun e ->
        match e with
        | Expr.Binop (Types.Mul, a, Expr.Int n)
        | Expr.Binop (Types.Mul, Expr.Int n, a) -> (
          match log2 n with
          | Some k -> Expr.Binop (Types.Shl, a, Expr.Int k)
          | None -> e)
        | Expr.Binop (Types.Div, a, Expr.Int n) when is_nonneg a -> (
          match log2 n with
          | Some k -> Expr.Binop (Types.Shr, a, Expr.Int k)
          | None -> e)
        | Expr.Binop (Types.Mod, a, Expr.Int n) when is_nonneg a -> (
          match log2 n with
          | Some _ -> Expr.Binop (Types.BAnd, a, Expr.Int (n - 1))
          | None -> e)
        | e -> e)
      e
  in
  { p with body = Stmt.map_exprs_list rewrite p.body }

(** The standard pre-transformation cleanup pipeline. *)
let cleanup (p : Stmt.program) : Stmt.program =
  p |> const_fold |> propagate |> strength_reduce |> const_fold
