(* If-conversion (§4.2): turn conditionals whose arms contain only
   scalar assignments into straight-line [Select] code, so the inner
   loop becomes the single basic block the squash/jam requirements
   demand.

   For each arm, assignments are composed symbolically: after
   [x = e1; y = f(x)] the arm's effect is {x -> e1, y -> f(e1)}.  The
   condition is bound to a fresh temporary once, and every variable
   defined by either arm gets [v = select(c, v_then, v_else)].  Arms
   containing stores, loops or nested unconvertible ifs are left alone
   (this transformation is best-effort; [Legality] reports what is
   still blocking). *)

open Uas_ir
module Smap = Map.Make (String)
module Sset = Stmt.Sset

(* The net effect of a pure-assignment arm, as a substitution map. *)
let arm_effect (stmts : Stmt.t list) : Expr.t Smap.t option =
  let step acc s =
    match (acc, s) with
    | None, _ -> None
    | Some m, Stmt.Assign (x, e) ->
      let e' =
        Expr.subst_vars (fun v -> Smap.find_opt v m) e
      in
      Some (Smap.add x e' m)
    | Some _, (Stmt.Store _ | Stmt.If _ | Stmt.For _) -> None
  in
  List.fold_left step (Some Smap.empty) stmts

let convert_if ~fresh (c : Expr.t) (t : Stmt.t list) (e : Stmt.t list) :
    Stmt.t list option =
  match (arm_effect t, arm_effect e) with
  | Some mt, Some me ->
    let cvar = fresh () in
    let defined =
      Sset.union
        (Sset.of_list (List.map fst (Smap.bindings mt)))
        (Sset.of_list (List.map fst (Smap.bindings me)))
    in
    let selects =
      (* each converted variable reads the PRE-if values of everything,
         because arm effects were composed symbolically; assignment
         order between converted variables must not interfere, so
         selects write fresh shadow names first, then commit *)
      let shadow v = v ^ "@ifc" in
      let compute =
        Sset.fold
          (fun v acc ->
            let tv = Option.value ~default:(Expr.Var v) (Smap.find_opt v mt) in
            let ev = Option.value ~default:(Expr.Var v) (Smap.find_opt v me) in
            Stmt.Assign (shadow v, Expr.Select (Expr.Var cvar, tv, ev)) :: acc)
          defined []
      in
      let commit =
        Sset.fold
          (fun v acc -> Stmt.Assign (v, Expr.Var (shadow v)) :: acc)
          defined []
      in
      compute @ commit
    in
    Some (Stmt.Assign (cvar, c) :: selects)
  | _ -> None

(** Names of the shadow/condition temporaries [apply] may introduce for
    a program, so they can be declared.  (Internal helper exposed for
    tests.) *)
let shadow_name v = v ^ "@ifc"

(** If-convert every convertible conditional in [p] (bottom-up). *)
let apply (p : Stmt.program) : Stmt.program =
  let counter = ref 0 in
  let new_decls = ref [] in
  let ty_of v =
    match Stmt.lookup_scalar_ty p v with Some t -> t | None -> Types.Tint
  in
  let fresh () =
    incr counter;
    let name = Printf.sprintf "c@ifc%d" !counter in
    new_decls := (name, Types.Tint) :: !new_decls;
    name
  in
  let rewritten =
    Stmt.rewrite_list
      (fun s ->
        match s with
        | Stmt.If (c, t, e) -> (
          match convert_if ~fresh c t e with
          | Some stmts ->
            (* declare the shadows of converted variables *)
            List.iter
              (fun s' ->
                match s' with
                | Stmt.Assign (x, _) when String.length x > 4
                                          && Filename.check_suffix x "@ifc" ->
                  let base = String.sub x 0 (String.length x - 4) in
                  new_decls := (x, ty_of base) :: !new_decls
                | _ -> ())
              stmts;
            stmts
          | None -> [ s ])
        | s -> [ s ])
      p.body
  in
  Stmt.add_locals { p with body = rewritten } (List.rev !new_decls)
