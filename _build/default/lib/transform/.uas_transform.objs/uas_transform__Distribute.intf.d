lib/transform/distribute.mli: Fmt Stmt Uas_ir
