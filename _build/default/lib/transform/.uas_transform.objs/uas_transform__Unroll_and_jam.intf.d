lib/transform/unroll_and_jam.mli: Stmt Uas_analysis Uas_ir
