lib/transform/interchange.ml: Expr Fmt List Printexc Stmt Uas_analysis Uas_ir
