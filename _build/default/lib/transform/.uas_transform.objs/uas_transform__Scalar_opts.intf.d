lib/transform/scalar_opts.mli: Stmt Uas_ir
