lib/transform/expand.mli: Expr Stmt Types Uas_analysis Uas_ir
