lib/transform/expand.ml: Expr List Printf Stmt Types Uas_analysis Uas_ir
