lib/transform/ifconv.mli: Stmt Uas_ir
