lib/transform/ifconv.ml: Expr Filename List Map Option Printf Stmt String Types Uas_ir
