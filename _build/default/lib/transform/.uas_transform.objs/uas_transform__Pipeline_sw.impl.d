lib/transform/pipeline_sw.ml: Expand Expr Fmt Fusion List Opinfo Printexc Stmt String Types Uas_analysis Uas_dfg Uas_ir
