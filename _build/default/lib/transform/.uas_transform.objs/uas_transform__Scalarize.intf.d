lib/transform/scalarize.mli: Stmt Uas_ir
