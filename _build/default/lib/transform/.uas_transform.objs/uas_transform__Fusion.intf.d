lib/transform/fusion.mli: Expr Fmt Stmt Uas_ir
