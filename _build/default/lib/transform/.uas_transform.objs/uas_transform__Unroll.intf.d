lib/transform/unroll.mli: Stmt Uas_ir
