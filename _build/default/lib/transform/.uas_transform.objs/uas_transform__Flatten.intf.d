lib/transform/flatten.mli: Fmt Stmt Uas_ir
