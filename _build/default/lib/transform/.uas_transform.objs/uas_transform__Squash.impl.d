lib/transform/squash.ml: Expand Expr Fmt List Opinfo Peel Printexc Stmt String Types Uas_analysis Uas_dfg Uas_ir
