lib/transform/unroll_and_jam.ml: Expand Expr Fmt List Peel Printexc Stmt Types Uas_analysis Uas_ir
