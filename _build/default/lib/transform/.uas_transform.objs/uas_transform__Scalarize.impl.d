lib/transform/scalarize.ml: Expr List Printf Stmt String Types Uas_ir
