lib/transform/hoist.mli: Stmt Uas_ir
