lib/transform/unroll.ml: Expr List Pp Stmt String Types Uas_ir
