lib/transform/scalar_opts.ml: Expr List Map Stmt String Types Uas_analysis Uas_ir
