lib/transform/peel.mli: Stmt Uas_analysis Uas_ir
