lib/transform/distribute.ml: Fmt Fusion List Printexc Stmt String Types Uas_dfg Uas_ir
