lib/transform/peel.ml: Expr List Stmt Types Uas_analysis Uas_ir
