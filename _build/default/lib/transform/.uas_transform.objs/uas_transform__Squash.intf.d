lib/transform/squash.mli: Fmt Opinfo Stmt Uas_analysis Uas_ir
