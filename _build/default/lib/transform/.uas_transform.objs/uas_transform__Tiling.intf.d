lib/transform/tiling.mli: Stmt Uas_ir
