lib/transform/flatten.ml: Expr Fmt Printexc Stmt Types Uas_analysis Uas_ir
