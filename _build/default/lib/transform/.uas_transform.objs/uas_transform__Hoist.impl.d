lib/transform/hoist.ml: Expr Hashtbl List Option Stmt Uas_ir
