lib/transform/tiling.ml: Expr List Stmt String Types Uas_ir
