lib/transform/pipeline_sw.mli: Fmt Opinfo Stmt Uas_ir
