lib/transform/fusion.ml: Expr Fmt List Stmt String Types Uas_dfg Uas_ir
