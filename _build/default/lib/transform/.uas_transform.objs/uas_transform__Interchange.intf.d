lib/transform/interchange.mli: Fmt Stmt Uas_analysis Uas_ir
