(* Plain loop unrolling (§3.4): replace the body by [factor] copies,
   copy k operating on index value [i + k*step].  The index stays a
   single variable; copies substitute [i + k*step] for its uses.  A
   non-divisible trip count leaves a remainder of peeled copies after
   the loop (static bounds required in that case). *)

open Uas_ir

let subst_index index offset stmts =
  if offset = 0 then stmts
  else
    let replacement =
      Expr.simplify (Expr.Binop (Types.Add, Expr.Var index, Expr.Int offset))
    in
    Stmt.map_exprs_list
      (Expr.subst_vars (fun v ->
           if String.equal v index then Some replacement else None))
      stmts

(** Unroll [l] by [factor].  Returns the statements replacing the loop.
    @raise Ir_error if the body writes scalars read across iterations in
    a way unrolling cannot express — none: unrolling is always legal
    for counted loops; only static bounds are needed for remainders. *)
let unroll_loop (l : Stmt.loop) ~factor : Stmt.t list =
  if factor <= 0 then Types.ir_error "unroll factor must be positive";
  if factor = 1 then [ Stmt.For l ]
  else
    match (Expr.simplify l.lo, Expr.simplify l.hi) with
    | Expr.Int lo, Expr.Int hi ->
      let trips = if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step in
      let keep = trips / factor * factor in
      let unrolled_body =
        List.concat
          (List.init factor (fun k -> subst_index l.index (k * l.step) l.body))
      in
      let main =
        if keep = 0 then []
        else
          [ Stmt.For
              { l with
                hi = Expr.Int (lo + (keep * l.step));
                step = l.step * factor;
                body = unrolled_body } ]
      in
      let remainder =
        List.concat
          (List.init (trips - keep) (fun k ->
               Stmt.Assign (l.index, Expr.Int (lo + ((keep + k) * l.step)))
               :: l.body))
      in
      let fix_exit =
        (* peeled copies leave the index one step short of the exit
           value a full loop would produce *)
        if trips > keep then
          [ Stmt.Assign (l.index, Expr.Int (lo + (trips * l.step))) ]
        else []
      in
      main @ remainder @ fix_exit
    | _ ->
      Types.ir_error "unrolling requires static bounds (got %s..%s)"
        (Pp.expr_to_string l.lo) (Pp.expr_to_string l.hi)

(** Fully unroll a loop with static bounds into straight-line copies.
    Each copy binds the index explicitly so later reads see its value. *)
let fully_unroll (l : Stmt.loop) : Stmt.t list =
  match (Expr.simplify l.lo, Expr.simplify l.hi) with
  | Expr.Int lo, Expr.Int hi ->
    let trips = if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step in
    let bind_index k stmts =
      Stmt.map_exprs_list
        (Expr.subst_vars (fun v ->
             if String.equal v l.index then Some (Expr.Int (lo + (k * l.step)))
             else None))
        (Stmt.map_exprs_list Expr.simplify stmts)
    in
    List.concat (List.init trips (fun k -> bind_index k l.body))
    @ [ Stmt.Assign (l.index, Expr.Int (max lo (lo + (trips * l.step)))) ]
  | _ -> Types.ir_error "full unrolling requires static bounds"

(** Unroll the loop with index [index] inside [p]. *)
let apply (p : Stmt.program) ~index ~factor : Stmt.program =
  let replaced = ref false in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index index && not !replaced ->
          replaced := true;
          unroll_loop l ~factor
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then Types.ir_error "no loop with index %s" index;
  { p with body }
