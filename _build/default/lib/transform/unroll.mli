(** Plain loop unrolling (§3.4): the body is replaced by [factor]
    copies, copy k substituting [index + k*step] for index uses.
    Non-dividing trip counts leave peeled remainder copies (static
    bounds required then). *)

open Uas_ir

(** Statements replacing the unrolled loop.
    @raise Ir_error when bounds are dynamic and the factor does not
    divide. *)
val unroll_loop : Stmt.loop -> factor:int -> Stmt.t list

(** Fully unroll a static loop into straight-line copies (the tile-loop
    step of the §3.4 jam decomposition). *)
val fully_unroll : Stmt.loop -> Stmt.t list

(** Unroll the (first) loop with this index inside the program.
    @raise Ir_error when absent. *)
val apply : Stmt.program -> index:string -> factor:int -> Stmt.program
