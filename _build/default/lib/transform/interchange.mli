(** Loop interchange (§3.3/§3.4): swap the loops of a perfectly nested
    pair.  Conservative legality via the affine dependence tests on
    both orientations. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

type failure =
  | Not_perfect
  | Bounds_use_index
  | Carried_dependence of string

val pp_failure : failure Fmt.t

exception Interchange_error of failure

val check : Loop_nest.t -> failure option

(** Interchange the nest with this outer index.
    @raise Interchange_error when illegal
    @raise Not_found when absent. *)
val apply : Stmt.program -> outer_index:string -> Stmt.program
