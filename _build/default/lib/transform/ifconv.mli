(** If-conversion (§4.2): conditionals whose arms contain only scalar
    assignments become straight-line [Select] code, making inner loops
    the single basic block squash/jam require.  Note the hardware-mux
    semantics: both arms evaluate. *)

open Uas_ir

(** Convert every convertible conditional, bottom-up; unconvertible
    ones (stores/loops in arms) are left in place. *)
val apply : Stmt.program -> Stmt.program

(** Shadow-name convention for converted variables (exposed for
    tests). *)
val shadow_name : string -> string
