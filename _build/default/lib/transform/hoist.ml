(* Loop-invariant code motion (§4.2: "loop invariant code motion" among
   the standard optimizations run before unroll-and-squash).

   An assignment [v = e] inside a loop body hoists to just before the
   loop when
   - [e] reads nothing written in the body (including [v] itself) nor
     the loop index, and contains no memory loads from arrays the body
     stores to;
   - [v] has no other definition in the body;
   - hoisting preserves the "executed at least once" semantics: the
     loop must have a statically positive trip count, because the
     hoisted assignment will now execute even for zero-trip loops. *)

open Uas_ir
module Sset = Stmt.Sset

let positive_trip (l : Stmt.loop) =
  match (Expr.simplify l.lo, Expr.simplify l.hi) with
  | Expr.Int lo, Expr.Int hi -> hi > lo
  | _ -> false

let hoistable (l : Stmt.loop) : (Stmt.t list * Stmt.t list) option =
  if not (Stmt.is_straight_line l.body) || not (positive_trip l) then None
  else begin
    let defs = Stmt.defs l.body in
    let stored = Stmt.arrays_written l.body in
    let def_counts = Hashtbl.create 8 in
    List.iter
      (fun s ->
        match s with
        | Stmt.Assign (x, _) ->
          Hashtbl.replace def_counts x
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_counts x))
        | _ -> ())
      l.body;
    (* scan front-to-back; a statement is hoistable if its inputs are
       invariant AND no earlier non-hoisted statement could change them
       — achieved by only hoisting a prefix-closed set: once a
       statement stays, later statements reading its target stay too,
       which the [defs]-based check already guarantees *)
    let invariant_expr e =
      Sset.is_empty (Sset.inter (Expr.var_set e) (Sset.add l.index defs))
      && List.for_all
           (fun a -> not (Sset.mem a stored))
           (Expr.arrays_loaded e)
    in
    let hoisted, kept =
      List.partition
        (fun s ->
          match s with
          | Stmt.Assign (x, e) ->
            Hashtbl.find_opt def_counts x = Some 1 && invariant_expr e
          | Stmt.Store _ | Stmt.If _ | Stmt.For _ -> false)
        l.body
    in
    if hoisted = [] then None else Some (hoisted, kept)
  end

(** Hoist invariant assignments out of every eligible loop, bottom-up,
    to fixpoint (hoisting from an inner loop can expose invariance in
    the outer one). *)
let apply (p : Stmt.program) : Stmt.program =
  let changed = ref true in
  let body = ref p.Stmt.body in
  while !changed do
    changed := false;
    let rec go stmts =
      List.concat_map
        (fun s ->
          match s with
          | Stmt.For l -> (
            let l = { l with Stmt.body = go l.body } in
            match hoistable l with
            | Some (hoisted, kept) ->
              changed := true;
              hoisted @ [ Stmt.For { l with body = kept } ]
            | None -> [ Stmt.For l ])
          | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
          | Stmt.Assign _ | Stmt.Store _ -> [ s ])
        stmts
    in
    body := go !body
  done;
  { p with body = !body }
