(** Loop-invariant code motion (§4.2): single-definition assignments
    whose inputs the loop never changes move in front of it.
    Restricted to statically non-empty loops (the hoisted code now
    always executes). *)

open Uas_ir

(** Hoist to fixpoint across all loops, bottom-up. *)
val apply : Stmt.program -> Stmt.program
