(** Software pipelining of a single counted loop (§3.5, Figure 3.4):
    K-stage overlap of consecutive iterations with rotating register
    copies, prolog and epilog.  Conservative legality: no scalar
    recurrences, array recurrences only at distance >= K, static
    bounds. *)

open Uas_ir

type failure =
  | Not_straight_line
  | Carried_scalar of string
  | Carried_array of string
  | Too_few_iterations
  | Non_static_bounds

val pp_failure : failure Fmt.t

exception Pipeline_error of failure

(** Why pipelining this loop into [stages] stages would be illegal. *)
val failures : Stmt.loop -> stages:int -> failure list

(** Pipeline the loop with this index.  Identity when [stages <= 1].
    @raise Pipeline_error when illegal
    @raise Ir_error when the loop is absent. *)
val apply :
  ?delay_of:(Opinfo.op_kind -> int) ->
  Stmt.program ->
  index:string ->
  stages:int ->
  Stmt.program
