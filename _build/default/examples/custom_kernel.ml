(* Bring-your-own kernel: a branchy checksum loop that needs the
   enabling rewrites — if-conversion to make the inner body a single
   basic block, induction-variable elimination for a running pointer —
   and then the combined transformation the paper suggests in §2:
   unroll-and-jam to fill the datapath, unroll-and-squash on top to
   fill the idle time slots.

   Run with:  dune exec examples/custom_kernel.exe *)

open Uas_ir
module B = Builder
module T = Uas_transform

let () =
  let m = 16 and n = 12 in
  (* per block: walk a running pointer through the stream and fold each
     byte into a Fletcher-ish state with a data-dependent branch *)
  let program =
    B.program "branchy_checksum"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("ptr", Types.Tint);
          ("x", Types.Tint); ("s1", Types.Tint); ("s2", Types.Tint) ]
      ~arrays:[ B.input "stream" (m * n); B.output "sums" (2 * m) ]
      [ B.("ptr" <-- int 0);
        B.for_ "i" ~hi:(B.int m)
          [ B.("s1" <-- int 1);
            B.("s2" <-- int 0);
            B.for_ "j" ~hi:(B.int n)
              [ B.("x" <-- load "stream" (v "ptr" + v "j"));
                B.if_
                  B.(band (v "x") (int 1) == int 1)
                  [ B.("s1" <-- band (v "s1" + v "x") (int 65535)) ]
                  [ B.("s1" <-- band (v "s1" + shr (v "x") (int 1)) (int 65535)) ];
                B.("s2" <-- band (v "s2" + v "s1") (int 65535)) ];
            B.store "sums" B.(v "i" * int 2) (B.v "s1");
            B.store "sums" B.(v "i" * int 2 + int 1) (B.v "s2");
            B.("ptr" <-- v "ptr" + int n) ] ]
  in
  Fmt.pr "--- original kernel ---@.%a@." Pp.pp_program program;

  (* step 1: the raw nest is not transformable (branch in the body) *)
  let nest0 = Uas_analysis.Loop_nest.find_by_outer_index program "i" in
  Fmt.pr "before if-conversion: %a@." Uas_analysis.Legality.pp_verdict
    (Uas_analysis.Legality.check nest0 ~ds:2);

  (* step 2: if-convert; the induction variable [ptr] is handled
     automatically by the legality-driven rewrite inside squash/jam *)
  let converted = T.Ifconv.apply program in
  let nest1 = Uas_analysis.Loop_nest.find_by_outer_index converted "i" in
  Fmt.pr "after if-conversion:  %a@." Uas_analysis.Legality.pp_verdict
    (Uas_analysis.Legality.check nest1 ~ds:2);

  (* step 3: jam(2) to double the datapath, then squash(2) on top *)
  let jammed = T.Unroll_and_jam.apply converted nest1 ~ds:2 in
  let nest2 =
    Uas_analysis.Loop_nest.find_by_outer_index
      jammed.T.Unroll_and_jam.program "i"
  in
  let combined =
    T.Squash.apply jammed.T.Unroll_and_jam.program nest2 ~ds:2
  in

  (* every stage still computes the same checksums *)
  let workload =
    Interp.workload
      ~arrays:
        [ ("stream",
           Array.init (m * n) (fun k -> Types.VInt ((k * 131) land 255))) ]
      ()
  in
  let reference = Interp.run program workload in
  List.iter
    (fun (name, (p : Stmt.program)) ->
      let r = Interp.run p workload in
      Fmt.pr "%-22s outputs identical: %b@." name
        (Interp.outputs_equal reference r))
    [ ("if-converted", converted);
      ("jam(2)", jammed.T.Unroll_and_jam.program);
      ("jam(2)+squash(2)", combined.T.Squash.program) ];

  (* the §2 arithmetic: jam doubles performance and operators; the
     squash on top doubles performance again for registers only *)
  let report name p index pipelined =
    let r = Uas_hw.Estimate.kernel ~pipelined ~name p ~index in
    Fmt.pr "%a@." Uas_hw.Estimate.pp_report r;
    r
  in
  Fmt.pr "@.";
  let _ = report "original" converted "j" false in
  let _ = report "jam(2)" jammed.T.Unroll_and_jam.program "j" true in
  let _ =
    report "jam(2)+squash(2)" combined.T.Squash.program
      combined.T.Squash.new_inner_index true
  in
  ()
