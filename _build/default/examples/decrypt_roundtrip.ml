(* Encrypt with a squashed pipeline, decrypt with a squashed pipeline,
   and get the message back: the end-to-end story on real ciphers with
   every kernel transformed.

   Run with:  dune exec examples/decrypt_roundtrip.exe *)

open Uas_ir
module S = Uas_bench_suite

let message = "The quick brown fox jumps over the lazy dog 0123456789!"

let words_of_string s =
  let padded =
    let rem = String.length s mod 8 in
    if rem = 0 then s else s ^ String.make (8 - rem) ' '
  in
  Array.init
    (String.length padded / 2)
    (fun k ->
      (Char.code padded.[2 * k] lsl 8) lor Char.code padded.[(2 * k) + 1])

let string_of_words (ws : int array) =
  String.init
    (2 * Array.length ws)
    (fun k ->
      let w = ws.(k / 2) in
      Char.chr (if k mod 2 = 0 then (w lsr 8) land 0xff else w land 0xff))

let out_words r =
  Array.map
    (fun v -> match v with Types.VInt x -> x | _ -> 0)
    (List.assoc "data_out" r.Interp.outputs)

let squash_by p ds =
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  (Uas_transform.Squash.apply p nest ~ds).Uas_transform.Squash.program

let () =
  let key = [| 0x31; 0x41; 0x59; 0x26; 0x53; 0x58; 0x97; 0x93; 0x23; 0x84 |] in
  let words = words_of_string message in
  let blocks = Array.length words / 4 in
  Fmt.pr "message: %S (%d blocks)@." message blocks;

  (* encrypt through a squash(4) pipeline *)
  let enc = squash_by (S.Skipjack.skipjack_hw ~m:blocks ~key) 4 in
  let cipher =
    out_words (Interp.run enc (S.Skipjack.workload_hw words))
  in
  Fmt.pr "ciphertext (squash(4) encryptor): %s...@."
    (String.concat " "
       (List.filteri (fun i _ -> i < 6)
          (List.map (Printf.sprintf "%04x") (Array.to_list cipher))));

  (* decrypt through a squash(4) pipeline of the inverse cipher *)
  let dec = squash_by (S.Skipjack.skipjack_hw_decrypt ~m:blocks ~key) 4 in
  let plain =
    out_words (Interp.run dec (S.Skipjack.workload_hw cipher))
  in
  let recovered = string_of_words plain in
  Fmt.pr "recovered: %S@." (String.sub recovered 0 (String.length message));
  Fmt.pr "round-trip exact: %b@."
    (String.sub recovered 0 (String.length message) = message);

  (* hardware estimates for both pipelines *)
  let report name p =
    let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
    let out = Uas_transform.Squash.apply p nest ~ds:4 in
    let r =
      Uas_hw.Estimate.kernel ~name out.Uas_transform.Squash.program
        ~index:out.Uas_transform.Squash.new_inner_index
    in
    Fmt.pr "%a@." Uas_hw.Estimate.pp_report r
  in
  report "enc squash(4)" (S.Skipjack.skipjack_hw ~m:blocks ~key);
  report "dec squash(4)" (S.Skipjack.skipjack_hw_decrypt ~m:blocks ~key)
