(* Quickstart: write a nested loop in the builder DSL, unroll-and-squash
   it, check it still computes the same thing, and compare the hardware
   estimates.

   Run with:  dune exec examples/quickstart.exe *)

open Uas_ir
module B = Builder

let () =
  (* The Figure 2.1 pattern: an outer loop over independent data blocks
     and an inner loop whose body carries a value between iterations
     (b depends on a, next a depends on b — no inner pipelining). *)
  let m = 16 and n = 8 in
  let program =
    B.program "quickstart"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
          ("b", Types.Tint) ]
      ~arrays:[ B.input "data_in" m; B.output "data_out" m ]
      [ B.for_ "i" ~hi:(B.int m)
          [ B.("a" <-- load "data_in" (v "i"));
            B.for_ "j" ~hi:(B.int n)
              [ B.("b" <-- band (v "a" * int 5 + int 1) (int 65535));
                B.("a" <-- bxor (v "b") (shr (v "b") (int 3))) ];
            B.store "data_out" (B.v "i") (B.v "a") ]
      ]
  in
  Fmt.pr "--- the kernel ---@.%a@." Pp.pp_program program;

  (* 1. find the nest and check the transformation is legal at DS=4 *)
  let nest = Uas_analysis.Loop_nest.find_by_outer_index program "i" in
  let verdict = Uas_analysis.Legality.check nest ~ds:4 in
  Fmt.pr "legality at DS=4: %a@." Uas_analysis.Legality.pp_verdict verdict;

  (* 2. apply unroll-and-squash by 4 *)
  let squashed = Uas_transform.Squash.apply program nest ~ds:4 in
  Fmt.pr "@.--- unroll-and-squash by 4 ---@.%a@." Pp.pp_program
    squashed.Uas_transform.Squash.program;

  (* 3. the transformed program is still ordinary software: run both on
     the same inputs and compare outputs *)
  let workload =
    Interp.workload
      ~arrays:
        [ ("data_in", Array.init m (fun k -> Types.VInt (k * 37 + 11))) ]
      ()
  in
  let r0 = Interp.run program workload in
  let r1 = Interp.run squashed.Uas_transform.Squash.program workload in
  Fmt.pr "@.outputs identical: %b@." (Interp.outputs_equal r0 r1);

  (* 4. hardware estimates: the squashed kernel pipelines down to a
     fraction of the original initiation interval, for only registers *)
  let original =
    Uas_hw.Estimate.kernel ~pipelined:false program ~index:"j"
      ~name:"original"
  in
  let squashed_est =
    Uas_hw.Estimate.kernel squashed.Uas_transform.Squash.program
      ~index:squashed.Uas_transform.Squash.new_inner_index ~name:"squash(4)"
  in
  Fmt.pr "@.%a@.%a@." Uas_hw.Estimate.pp_report original
    Uas_hw.Estimate.pp_report squashed_est;
  let speedup =
    float_of_int original.Uas_hw.Estimate.r_total_cycles
    /. float_of_int squashed_est.Uas_hw.Estimate.r_total_cycles
  in
  let area =
    float_of_int squashed_est.Uas_hw.Estimate.r_area_rows
    /. float_of_int original.Uas_hw.Estimate.r_area_rows
  in
  Fmt.pr "speedup %.2fx for %.2fx area (efficiency %.2f)@." speedup area
    (speedup /. area)
