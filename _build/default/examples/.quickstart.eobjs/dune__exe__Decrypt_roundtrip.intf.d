examples/decrypt_roundtrip.mli:
