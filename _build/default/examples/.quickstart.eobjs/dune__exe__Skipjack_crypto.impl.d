examples/skipjack_crypto.ml: Array Char Fmt List String Uas_bench_suite Uas_core Uas_hw Uas_ir
