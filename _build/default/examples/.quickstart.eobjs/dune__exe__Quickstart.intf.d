examples/quickstart.mli:
