examples/iir_filter.mli:
