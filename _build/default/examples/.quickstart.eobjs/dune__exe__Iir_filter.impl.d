examples/iir_filter.ml: Array Fmt List Option Uas_analysis Uas_bench_suite Uas_core Uas_hw Uas_ir Uas_transform
