examples/skipjack_crypto.mli:
