examples/decrypt_roundtrip.ml: Array Char Fmt Interp List Printf String Types Uas_analysis Uas_bench_suite Uas_hw Uas_ir Uas_transform
