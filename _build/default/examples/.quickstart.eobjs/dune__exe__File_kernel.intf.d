examples/file_kernel.mli:
