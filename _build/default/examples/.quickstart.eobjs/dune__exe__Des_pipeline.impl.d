examples/des_pipeline.ml: Array Fmt List Uas_bench_suite Uas_core Uas_hw Uas_ir
