examples/file_kernel.ml: Array Fmt List Parser Stmt Sys Uas_analysis Uas_core Uas_hw Uas_ir Validate
