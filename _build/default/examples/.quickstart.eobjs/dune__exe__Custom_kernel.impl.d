examples/custom_kernel.ml: Array Builder Fmt Interp List Pp Stmt Types Uas_analysis Uas_hw Uas_ir Uas_transform
