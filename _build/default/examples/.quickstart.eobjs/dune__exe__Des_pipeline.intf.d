examples/des_pipeline.mli:
