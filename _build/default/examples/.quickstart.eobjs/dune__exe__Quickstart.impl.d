examples/quickstart.ml: Array Builder Fmt Interp Pp Types Uas_analysis Uas_hw Uas_ir Uas_transform
