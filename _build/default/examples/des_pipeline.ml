(* DES and the memory wall: with the SP-boxes in memory, unroll-and-jam
   multiplies the number of table lookups per cycle and saturates the
   two memory ports, while unroll-and-squash keeps the original lookup
   count — the crossover the paper's §6.3 analysis describes.

   Run with:  dune exec examples/des_pipeline.exe *)

module S = Uas_bench_suite
module N = Uas_core.Nimble

let () =
  let m = 16 in
  let key64 = 0x0123456789ABCDEFL in
  let halves = S.Des.random_halves ~seed:7 (2 * m) in
  let program = S.Des.des_mem ~m in
  let workload = S.Des.workload_mem ~key64 halves in

  (* correctness first: the IR core agrees with the host DES *)
  let r = Uas_ir.Interp.run program workload in
  let got = List.assoc "data_out" r.Uas_ir.Interp.outputs in
  let expected =
    S.Des.encrypt_stream ~subkeys:(S.Des.key_schedule key64) halves
  in
  Fmt.pr "DES core matches host: %b@.@."
    (Array.for_all2 (fun a b -> a = Uas_ir.Types.VInt b) got expected);

  (* II as a function of the unroll factor: squash stays at the memory
     floor, jam grows with it *)
  let factors = [ 2; 4; 8; 16 ] in
  let ii version =
    let built =
      N.build_version program ~outer_index:"i" ~inner_index:"j" version
    in
    (N.estimate built).Uas_hw.Estimate.r_ii
  in
  Fmt.pr "%-8s %10s %10s@." "factor" "squash II" "jam II";
  List.iter
    (fun ds ->
      Fmt.pr "%-8d %10d %10d@." ds (ii (N.Squashed ds)) (ii (N.Jammed ds)))
    factors;
  Fmt.pr "@.(9 memory references per round; 2 ports -> squash floors at 5,@.";
  Fmt.pr " jam needs ceil(9*DS/2) cycles just for the lookups)@.";

  (* and the same sweep on the ROM-based variant, where jam stays flat *)
  let program_hw = S.Des.des_hw ~m ~key64 in
  let ii_hw version =
    let built =
      N.build_version program_hw ~outer_index:"i" ~inner_index:"j" version
    in
    (N.estimate built).Uas_hw.Estimate.r_ii
  in
  Fmt.pr "@.DES-hw (S-boxes in ROM): no memory pressure@.";
  Fmt.pr "%-8s %10s %10s@." "factor" "squash II" "jam II";
  List.iter
    (fun ds ->
      Fmt.pr "%-8d %10d %10d@." ds (ii_hw (N.Squashed ds)) (ii_hw (N.Jammed ds)))
    factors
