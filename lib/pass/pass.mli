(** First-class compiler passes and the pipeline runner.

    A pass is a named step from compilation unit to compilation unit
    that either succeeds or stops the pipeline with a structured
    {!Diag.t}.  The runner wraps every pass in a
    [Uas_runtime.Instrument] span named [pass.<name>] — so [--timings]
    covers each pipeline stage uniformly — translates the known
    layer-local exceptions into diagnostics ({!Diag.of_exn}), and calls
    an optional [after] hook with the unit each pass produced (the
    mechanism behind nimblec's [--dump-after]). *)

type t = {
  name : string;  (** stable name: span key, [--dump-after] selector *)
  run : Cu.t -> (Cu.t, Diag.t) result;
}

val v : string -> (Cu.t -> (Cu.t, Diag.t) result) -> t

(** An analysis pass: populates caches on the unit, never fails on its
    own (exceptions still become diagnostics in the runner). *)
val analysis : string -> (Cu.t -> unit) -> t

(** A transform pass from the raw rewrite function; exceptions are
    handled by the runner. *)
val transform : string -> (Cu.t -> Cu.t) -> t

(** Called after each successful pass with the unit it produced. *)
type hook = pass:string -> Cu.t -> unit

(** Run the passes in order.  The first failure stops the pipeline and
    returns its diagnostic; recognized exceptions (illegal transform,
    missing nest, non-kernel loop, ...) are converted via
    {!Diag.of_exn}, anything else propagates with its backtrace. *)
val run : ?after:hook -> Cu.t -> t list -> (Cu.t, Diag.t) result
