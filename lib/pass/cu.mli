(** The typed compilation unit the pass pipeline threads: a program, the
    kernel nest location, memoized analyses (loop nest, def/use,
    liveness, induction variables, array dependences), and the optional
    downstream artifacts (kernel DFG, schedule, hardware estimate).

    Analyses are computed on first demand and cached; a transform pass
    replaces the program through {!with_program}, which starts a fresh
    cache (minus anything the pass declares it [preserves]) — the
    invalidation story that keeps memoization sound.

    A unit is confined to one domain: the sweep engine builds a fresh
    unit per (benchmark, version) task, so the mutable caches need no
    locking.  Cache traffic is visible through {!hits}/{!misses} and,
    when instrumentation is enabled, the [cu.analysis-hit]/
    [cu.analysis-miss] counters. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Dependence = Uas_analysis.Dependence
module Induction = Uas_analysis.Induction

(** The analyses a unit memoizes (the artifacts below are invalidated
    unconditionally by a program change). *)
type analysis = Nest | Def_use | Liveness | Induction | Dependence

val analysis_name : analysis -> string
val all_analyses : analysis list

(** Def/use summary of the kernel nest's inner body. *)
type def_use = {
  du_upward_exposed : Stmt.Sset.t;  (** read before any write *)
  du_defined : Stmt.Sset.t;
  du_loop_carried : Stmt.Sset.t;  (** upward-exposed and defined *)
}

(** Liveness summary of the kernel nest's inner body. *)
type liveness = {
  lv_live_out : Stmt.Sset.t;  (** candidates observable after the body *)
  lv_max_live : int;  (** peak simultaneously-live scalars *)
}

type t

(** A fresh unit with an empty cache.  [outer_index]/[inner_index]
    locate the kernel nest (as in {!Uas_core.Nimble.build_version}). *)
val make : Stmt.program -> outer_index:string -> inner_index:string -> t

val program : t -> Stmt.program
val outer_index : t -> string

(** Loop index of the hardware kernel — updated by the squash pass,
    whose steady-state loop gets a new index. *)
val inner_index : t -> string

(** [with_program cu p] is the unit a transform pass returns: program
    replaced, analyses dropped except those in [preserves] (default:
    none), artifacts dropped, cache counters carried over.
    [inner_index] re-points the kernel when the transform moved it;
    [outer_index] re-points the nest itself (interchange swaps the two,
    flattening collapses them onto one loop). *)
val with_program :
  ?preserves:analysis list ->
  ?outer_index:string ->
  ?inner_index:string ->
  t ->
  Stmt.program ->
  t

(** {2 Memoized analyses} *)

(** The kernel nest, as the adjacent-pair view headed by the unit's
    outer index.  @raise Not_found when the outer index heads no nest
    level. *)
val nest : t -> Loop_nest.pair

val def_use : t -> def_use
val liveness : t -> liveness

(** Induction variables of the kernel nest's outer loop. *)
val induction : t -> Induction.t list

(** All potentially dependent array access pairs of the kernel nest. *)
val dependence :
  t ->
  (Dependence.access * Dependence.access * Dependence.outer_distance) list

(** {2 Artifacts} *)

val dfg : t -> Uas_dfg.Build.detailed option
val set_dfg : t -> Uas_dfg.Build.detailed -> unit
val schedule : t -> Uas_dfg.Sched.schedule option
val set_schedule : t -> Uas_dfg.Sched.schedule -> unit

(** The exact-II oracle's verdict ({!Uas_pass.Stages.exact_ii}):
    memoized like the schedule, invalidated by {!with_program}. *)
val exact : t -> Uas_dfg.Sched.exact option

val set_exact : t -> Uas_dfg.Sched.exact -> unit
val report : t -> Uas_hw.Estimate.report option
val set_report : t -> Uas_hw.Estimate.report -> unit

(** The program compiled for the fast interpreter tier, built on first
    demand (under an [interp.compile] instrumentation span) and cached
    like the analyses: invalidated by {!with_program}, counted through
    {!hits}/{!misses} and the [cu.compiled-hit]/[cu.compiled-miss]
    counters. *)
val compiled : t -> Fast_interp.compiled

(** The program prepared for the native JIT tier (codegen + ocamlopt +
    Dynlink, store-backed; see {!Uas_ir.Native_interp}), built on first
    demand and cached like {!compiled}: invalidated by
    {!with_program}, counted through the
    [cu.native-hit]/[cu.native-miss] counters.  [Error reason] — the
    program cannot run natively — memoizes too, so a cell degrades
    once, not per run; store corruption lands in the incident log
    under the [cmxs] kind. *)
val native : t -> (Uas_ir.Native_interp.compiled, string) result

(** {2 Cache introspection (tests, counters)} *)

(** Is this analysis currently cached? *)
val cached : t -> analysis -> bool

(** Memoized lookups served from the cache since [make]. *)
val hits : t -> int

(** Analyses actually computed since [make]. *)
val misses : t -> int

(** {2 Incidents}

    Non-fatal trouble — a validation mismatch the pipeline degraded
    around, a fault it recovered from — logged on the unit so the
    sweep/planner can footnote the cell and the trajectory can record
    it.  The log survives {!with_program} (it is the unit's history,
    not an analysis), is returned in chronological order, and counts as
    [cu.incident]. *)

val add_incident : t -> Diag.t -> unit
val incidents : t -> Diag.t list

(** {2 The persistent artifact store}

    Load/save hooks over {!Uas_runtime.Store}: every expensive artifact
    (kernel schedule, exact-II certificate, hardware estimate, planner
    row) is keyed by a content hash of its full provenance — the
    canonical program text (the {!Uas_ir.Pp} round-trip form), the
    rewrite trail that produced it, the caller's [context] parts
    (datapath fingerprint, effort budgets, cost-model version) and the
    store format version.  All hooks are no-ops when no store is
    installed; lookups count as [cu.store-hit]/[cu.store-miss], and a
    bad or undecodable entry is a miss plus an incident (pass
    ["store"]) — never a wrong answer. *)

(** The program's canonical text ({!Uas_ir.Pp.program_to_string}),
    memoized; reset by {!with_program}. *)
val canonical_text : t -> string

(** The rewrite trail, oldest first: one label per successfully applied
    rewrite (pushed by [Rewrite.apply]).  Survives {!with_program}. *)
val trail : t -> string list

val push_trail : t -> string -> unit

(** The full cache key an artifact of [kind] would be stored under
    (exposed for tests and external poisoning). *)
val store_key : t -> kind:string -> context:string list -> string

(** Look the artifact up in the installed store.  [None] on a miss, a
    bad entry (incident logged), verify mode, or no store. *)
val store_get : t -> kind:string -> context:string list -> string option

(** Publish the artifact.  In verify mode ([--cache-verify]) the fresh
    payload is first compared against the cached bytes: a mismatch
    logs an incident and counts [cu.store-verify-mismatch], then the
    recomputed value replaces the entry. *)
val store_put : t -> kind:string -> context:string list -> string -> unit

(** Record that a payload under this kind decoded to nothing usable:
    logs the incident (callers then recompute). *)
val store_undecodable : t -> kind:string -> unit
