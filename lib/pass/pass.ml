(* The pass abstraction and the pipeline runner. *)

module Instrument = Uas_runtime.Instrument

type t = {
  name : string;
  run : Cu.t -> (Cu.t, Diag.t) result;
}

let v name run = { name; run }

let analysis name f =
  { name;
    run =
      (fun cu ->
        f cu;
        Ok cu) }

let transform name f = { name; run = (fun cu -> Ok (f cu)) }

type hook = pass:string -> Cu.t -> unit

let run_one ?after cu (p : t) =
  let result =
    Instrument.span ("pass." ^ p.name) (fun () ->
        match
          Uas_runtime.Fault.raise_if_armed ~label:p.name "pass.run";
          p.run cu
        with
        | result -> result
        | exception exn -> (
          match Diag.of_exn ~pass:p.name ~loop:(Cu.outer_index cu) exn with
          | Some d -> Error d
          | None -> raise exn))
  in
  (match result with
  | Ok cu' -> ( match after with Some h -> h ~pass:p.name cu' | None -> ())
  | Error _ -> Instrument.incr "pass.failed");
  result

let run ?after cu passes =
  List.fold_left
    (fun acc p -> match acc with Error _ -> acc | Ok cu -> run_one ?after cu p)
    (Ok cu) passes
