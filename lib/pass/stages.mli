(** The analysis and quick-synthesis passes of the Nimble-style flow,
    each a thin pass wrapper over an existing [lib/analysis] /
    [lib/dfg] / [lib/hw] stage.  The transform passes (squash, jam,
    interchange, ...) live in the [Uas_transform.Rewrite] registry and
    convert to passes through [Rewrite.pass].  See docs/PIPELINE.md for
    the pass-ordering table and the thesis section each pass
    reproduces. *)

module Datapath = Uas_hw.Datapath

(** ["loop-nest"]: locate the kernel nest and warm the def/use,
    liveness, and induction caches.  Fails with a diagnostic when the
    outer index heads no nest level. *)
val analyze : Pass.t

(** ["legality"]: the §4.1/§4.2 check at factor [ds]; fails with the
    verdict's violations when the nest is not transformable.  Squash
    and jam re-derive the verdict internally (it also carries their
    enabling rewrites), so this pass is for early/explicit checking. *)
val legality : ds:int -> Pass.t

(** ["dfg-build"]: build the kernel DFG artifact. *)
val dfg_build : ?target:Datapath.t -> unit -> Pass.t

(** ["schedule"]: schedule the kernel DFG (modulo when [pipelined],
    list otherwise), building the DFG first if missing.  A modulo run
    that exhausts its effort budget degrades to the non-overlapped
    fallback with an incident logged on the unit. *)
val schedule : ?target:Datapath.t -> pipelined:bool -> unit -> Pass.t

(** ["exact-ii"]: the second II oracle.  [Exact_check] validates the
    heuristic schedule with {!Uas_dfg.Sched.check_schedule};
    [Exact_report] additionally runs {!Uas_dfg.Sched.optimal_schedule}
    on pipelined kernels (memoized on the unit as the [exact] artifact,
    witness-capped by the heuristic schedule).  Violations — an invalid
    heuristic schedule, or a heuristic II below the proven optimum —
    become incidents; the pass never fails, so sweeps always complete.
    [Exact_off] is a no-op. *)
val exact_ii :
  ?target:Datapath.t ->
  pipelined:bool ->
  mode:Uas_dfg.Sched.exact_mode ->
  unit ->
  Pass.t

(** ["estimate"]: assemble the hardware report from the cached DFG and
    schedule artifacts (building them if missing) — bit-identical to
    [Uas_hw.Estimate.kernel]. *)
val estimate : ?target:Datapath.t -> pipelined:bool -> ?name:string -> unit -> Pass.t

(** Every stage name above, in canonical pipeline order.  nimblec's
    [--dump-after] accepts these plus every registered rewrite name. *)
val names : string list
