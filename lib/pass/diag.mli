(** Structured compiler diagnostics.

    Every pass failure on a user-facing path — an illegal squash/jam
    factor, a missing loop nest, dynamic kernel bounds — is reported as
    one of these instead of a raw exception: the sweep engine records
    them per version ("skipped: squash(16) — ..."), and nimblec prints
    them and exits non-zero instead of dumping an OCaml backtrace. *)

type severity = Error | Warning | Note

(** Where in the program the diagnostic points: the loop (by index
    variable) and/or a pretty-printed statement. *)
type loc = { loc_loop : string option; loc_stmt : string option }

val no_loc : loc
val loop_loc : string -> loc

type t = {
  d_severity : severity;
  d_pass : string;  (** name of the pass that reported it *)
  d_loc : loc;
  d_message : string;
}

val pp_severity : severity Fmt.t

(** ["error[squash] at loop i: <message>"]. *)
val pp : t Fmt.t

val to_string : t -> string

(** Build a diagnostic with a format string, e.g.
    [errorf ~pass:"squash" ~loop:"i" "illegal at factor %d" ds]. *)
val errorf :
  pass:string ->
  ?loop:string ->
  ?stmt:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val warningf :
  pass:string ->
  ?loop:string ->
  ?stmt:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** The carrier used by the raising convenience APIs ([Nimble.build_version],
    the nimblec command bodies): a structured diagnostic as an exception. *)
exception Failed of t

(** [fail d] raises {!Failed}. *)
val fail : t -> 'a

(** Register a renderer for a layer-local exception family ([None] for
    exceptions the renderer does not recognize).  Each transform module
    registers its own failure exception at module-initialization time —
    so any program that can raise the exception has necessarily
    installed its translator — keeping this layer free of upward
    dependencies on [lib/transform]. *)
val register_exn_translator : (exn -> string option) -> unit

(** Translate the known layer-local exceptions — the registered
    transform failures (see {!register_exn_translator}),
    [Estimate.Not_a_kernel], [Ir_error], [Not_found] (loop-nest
    lookup), [Failure], [Invalid_argument] — into a diagnostic
    attributed to [pass]; [None] for anything unrecognized (a genuine
    bug, which should keep its backtrace). *)
val of_exn : pass:string -> ?loop:string -> exn -> t option
