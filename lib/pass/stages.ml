(* The analysis and quick-synthesis passes: each wraps one existing
   compiler stage in the Pass/Cu/Diag protocol.  (The transform passes
   live in the Uas_transform.Rewrite registry, which builds on this
   layer.)  Artifact-producing stages (dfg-build, schedule, estimate)
   are written ensure-style — they reuse a cached artifact when an
   earlier pass already built it, and build it themselves when run
   standalone — so pipelines stay composable without recomputation. *)

module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath

let analyze =
  Pass.v "loop-nest" (fun cu ->
      match
        Loop_nest.find_by_outer_index_opt (Cu.program cu) (Cu.outer_index cu)
      with
      | None ->
        Error
          (Diag.errorf ~pass:"loop-nest" ~loop:(Cu.outer_index cu)
             "no 2-deep loop nest with outer index %s" (Cu.outer_index cu))
      | Some _ ->
        (* warm the caches the downstream passes consult *)
        ignore (Cu.nest cu);
        ignore (Cu.def_use cu);
        ignore (Cu.liveness cu);
        ignore (Cu.induction cu);
        Ok cu)

let legality ~ds =
  Pass.v "legality" (fun cu ->
      let verdict = Legality.check (Cu.nest cu) ~ds in
      if verdict.Legality.ok then Ok cu
      else
        Error
          (Diag.errorf ~pass:"legality" ~loop:(Cu.outer_index cu)
             "factor %d: %a" ds Legality.pp_verdict verdict))

(* ensure-style artifact accessors *)

let ensure_dfg ~target cu =
  match Cu.dfg cu with
  | Some d -> d
  | None ->
    let d =
      Estimate.kernel_detail ~target (Cu.program cu)
        ~index:(Cu.inner_index cu)
    in
    Cu.set_dfg cu d;
    d

let ensure_schedule ~target ~pipelined cu =
  match Cu.schedule cu with
  | Some s -> s
  | None ->
    let s, note =
      Estimate.kernel_schedule_note ~target ~pipelined (ensure_dfg ~target cu)
    in
    (* an exhausted effort budget degrades the cell, it never hangs the
       sweep: the note becomes a footnoted incident on the unit *)
    (match note with
    | Some m -> Cu.add_incident cu (Diag.errorf ~pass:"schedule" "%s" m)
    | None -> ());
    Cu.set_schedule cu s;
    s

let ensure_exact ~target ~pipelined cu =
  match Cu.exact cu with
  | Some e -> e
  | None ->
    let witness = ensure_schedule ~target ~pipelined cu in
    let e = Estimate.kernel_exact ~target ~witness (ensure_dfg ~target cu) in
    Cu.set_exact cu e;
    e

let dfg_build ?(target = Datapath.default) () =
  Pass.v "dfg-build" (fun cu ->
      ignore (ensure_dfg ~target cu);
      Ok cu)

let schedule ?(target = Datapath.default) ~pipelined () =
  Pass.v "schedule" (fun cu ->
      ignore (ensure_schedule ~target ~pipelined cu);
      Ok cu)

(* ["exact-ii"]: the second oracle.  In [Exact_check] the heuristic
   schedule is validated against the raw constraint system; in
   [Exact_report] the exact backend additionally certifies (or
   brackets) the optimal II of a pipelined kernel.  An invalid
   heuristic schedule or a heuristic II below the certified optimum is
   a soundness incident on the unit — the pass itself never fails, so
   a sweep always completes with the evidence footnoted. *)
let exact_ii ?(target = Datapath.default) ~pipelined
    ~(mode : Uas_dfg.Sched.exact_mode) () =
  Pass.v "exact-ii" (fun cu ->
      (match mode with
      | Uas_dfg.Sched.Exact_off -> ()
      | Exact_check | Exact_report ->
        let detail = ensure_dfg ~target cu in
        let sched = ensure_schedule ~target ~pipelined cu in
        let cfg = Datapath.sched_config target in
        (match
           Uas_dfg.Sched.check_schedule ~cfg detail.Uas_dfg.Build.d_graph
             sched
         with
        | Ok () -> ()
        | Error msgs ->
          List.iter
            (fun m ->
              Cu.add_incident cu
                (Diag.errorf ~pass:"exact-ii"
                   "heuristic schedule invalid: %s" m))
            msgs);
        if mode = Exact_report && pipelined then begin
          let e = ensure_exact ~target ~pipelined cu in
          if sched.Uas_dfg.Sched.s_ii < e.Uas_dfg.Sched.e_proved then
            Cu.add_incident cu
              (Diag.errorf ~pass:"exact-ii"
                 "SOUNDNESS VIOLATION: heuristic II %d below the exact \
                  oracle's proven bound %d"
                 sched.Uas_dfg.Sched.s_ii e.Uas_dfg.Sched.e_proved)
        end);
      Ok cu)

let estimate ?(target = Datapath.default) ~pipelined ?name () =
  Pass.v "estimate" (fun cu ->
      let detail = ensure_dfg ~target cu in
      let sched = ensure_schedule ~target ~pipelined cu in
      let report =
        Estimate.assemble ~target ~pipelined ?name (Cu.program cu)
          ~index:(Cu.inner_index cu) detail sched
      in
      Cu.set_report cu report;
      Ok cu)

let names =
  [ "loop-nest"; "legality"; "dfg-build"; "schedule"; "exact-ii"; "estimate" ]
