(* The analysis and quick-synthesis passes: each wraps one existing
   compiler stage in the Pass/Cu/Diag protocol.  (The transform passes
   live in the Uas_transform.Rewrite registry, which builds on this
   layer.)  Artifact-producing stages (dfg-build, schedule, estimate)
   are written ensure-style — they reuse a cached artifact when an
   earlier pass already built it, and build it themselves when run
   standalone — so pipelines stay composable without recomputation. *)

module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath

let analyze =
  Pass.v "loop-nest" (fun cu ->
      match
        Loop_nest.find_by_outer_index_opt (Cu.program cu) (Cu.outer_index cu)
      with
      | None ->
        Error
          (Diag.errorf ~pass:"loop-nest" ~loop:(Cu.outer_index cu)
             "no 2-deep loop nest with outer index %s" (Cu.outer_index cu))
      | Some _ ->
        (* warm the caches the downstream passes consult *)
        ignore (Cu.nest cu);
        ignore (Cu.def_use cu);
        ignore (Cu.liveness cu);
        ignore (Cu.induction cu);
        Ok cu)

let legality ~ds =
  Pass.v "legality" (fun cu ->
      let verdict = Legality.check (Cu.nest cu) ~ds in
      if verdict.Legality.ok then Ok cu
      else
        Error
          (Diag.errorf ~pass:"legality" ~loop:(Cu.outer_index cu)
             "factor %d: %a" ds Legality.pp_verdict verdict))

(* ensure-style artifact accessors *)

let ensure_dfg ~target cu =
  match Cu.dfg cu with
  | Some d -> d
  | None ->
    let d =
      Estimate.kernel_detail ~target (Cu.program cu)
        ~index:(Cu.inner_index cu)
    in
    Cu.set_dfg cu d;
    d

let ensure_schedule ~target ~pipelined cu =
  match Cu.schedule cu with
  | Some s -> s
  | None ->
    let s = Estimate.kernel_schedule ~target ~pipelined (ensure_dfg ~target cu) in
    Cu.set_schedule cu s;
    s

let dfg_build ?(target = Datapath.default) () =
  Pass.v "dfg-build" (fun cu ->
      ignore (ensure_dfg ~target cu);
      Ok cu)

let schedule ?(target = Datapath.default) ~pipelined () =
  Pass.v "schedule" (fun cu ->
      ignore (ensure_schedule ~target ~pipelined cu);
      Ok cu)

let estimate ?(target = Datapath.default) ~pipelined ?name () =
  Pass.v "estimate" (fun cu ->
      let detail = ensure_dfg ~target cu in
      let sched = ensure_schedule ~target ~pipelined cu in
      let report =
        Estimate.assemble ~target ~pipelined ?name (Cu.program cu)
          ~index:(Cu.inner_index cu) detail sched
      in
      Cu.set_report cu report;
      Ok cu)

let names = [ "loop-nest"; "legality"; "dfg-build"; "schedule"; "estimate" ]
