(* The analysis and quick-synthesis passes: each wraps one existing
   compiler stage in the Pass/Cu/Diag protocol.  (The transform passes
   live in the Uas_transform.Rewrite registry, which builds on this
   layer.)  Artifact-producing stages (dfg-build, schedule, estimate)
   are written ensure-style — they reuse a cached artifact when an
   earlier pass already built it, and build it themselves when run
   standalone — so pipelines stay composable without recomputation. *)

module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath

let analyze =
  Pass.v "loop-nest" (fun cu ->
      match
        Loop_nest.find_by_outer_index_opt (Cu.program cu) (Cu.outer_index cu)
      with
      | None ->
        Error
          (Diag.errorf ~pass:"loop-nest" ~loop:(Cu.outer_index cu)
             "no loop nest with outer index %s" (Cu.outer_index cu))
      | Some _ ->
        (* warm the caches the downstream passes consult *)
        ignore (Cu.nest cu);
        ignore (Cu.def_use cu);
        ignore (Cu.liveness cu);
        ignore (Cu.induction cu);
        Ok cu)

let legality ~ds =
  Pass.v "legality" (fun cu ->
      let verdict = Legality.check (Cu.nest cu) ~ds in
      if verdict.Legality.ok then Ok cu
      else
        Error
          (Diag.errorf ~pass:"legality" ~loop:(Cu.outer_index cu)
             "factor %d: %a" ds Legality.pp_verdict verdict))

(* ensure-style artifact accessors *)

let ensure_dfg ~target cu =
  match Cu.dfg cu with
  | Some d -> d
  | None ->
    let d =
      Estimate.kernel_detail ~target (Cu.program cu)
        ~index:(Cu.inner_index cu)
    in
    Cu.set_dfg cu d;
    d

(* ---- persistent-store payloads and contexts ----

   The schedule payload carries the degradation note alongside the
   schedule itself, so a warm run replays the effort-exhausted incident
   and renders footers byte-identical to the cold run.  The context
   lists hash everything the computation depends on besides the program
   text and rewrite trail (which Cu.store_key adds): which loop is the
   kernel, the datapath, the pipelining flag, effort budgets and — for
   reports — the cost-model version and the report name. *)

let schedule_payload (s, note) =
  (match note with
  | None -> "note -"
  | Some m -> "note " ^ String.escaped m)
  ^ "\n"
  ^ Uas_dfg.Sched.schedule_to_string s

let schedule_of_payload payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some i -> (
    let first = String.sub payload 0 i in
    let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
    let note =
      if String.equal first "note -" then Some None
      else if
        String.length first > 5 && String.equal (String.sub first 0 5) "note "
      then
        match Scanf.unescaped (String.sub first 5 (String.length first - 5)) with
        | m -> Some (Some m)
        | exception _ -> None
      else None
    in
    match (note, Uas_dfg.Sched.schedule_of_string rest) with
    | Some note, Some s -> Some (s, note)
    | _ -> None)

let schedule_context ~target ~pipelined cu =
  [ "target=" ^ Datapath.fingerprint target;
    "kernel=" ^ Cu.inner_index cu;
    "pipelined=" ^ string_of_bool pipelined;
    "effort=" ^ string_of_int Uas_dfg.Sched.default_effort ]

let exact_context ~target ~pipelined cu =
  schedule_context ~target ~pipelined cu
  @ [ "exact-effort=" ^ string_of_int Uas_dfg.Sched.default_exact_effort ]

let ensure_schedule ~target ~pipelined cu =
  match Cu.schedule cu with
  | Some s -> s
  | None -> (
    let context = schedule_context ~target ~pipelined cu in
    let cached =
      match Cu.store_get cu ~kind:"schedule" ~context with
      | None -> None
      | Some payload -> (
        match schedule_of_payload payload with
        | Some _ as ok -> ok
        | None ->
          Cu.store_undecodable cu ~kind:"schedule";
          None)
    in
    match cached with
    | Some (s, note) ->
      (* replay the degradation note, so a warm cell footnotes exactly
         like the cold one did *)
      (match note with
      | Some m -> Cu.add_incident cu (Diag.errorf ~pass:"schedule" "%s" m)
      | None -> ());
      Cu.set_schedule cu s;
      s
    | None ->
      let s, note =
        Estimate.kernel_schedule_note ~target ~pipelined
          (ensure_dfg ~target cu)
      in
      (* an exhausted effort budget degrades the cell, it never hangs
         the sweep: the note becomes a footnoted incident on the unit *)
      (match note with
      | Some m -> Cu.add_incident cu (Diag.errorf ~pass:"schedule" "%s" m)
      | None -> ());
      Cu.store_put cu ~kind:"schedule" ~context (schedule_payload (s, note));
      Cu.set_schedule cu s;
      s)

let ensure_exact ~target ~pipelined cu =
  match Cu.exact cu with
  | Some e -> e
  | None -> (
    let context = exact_context ~target ~pipelined cu in
    let cached =
      match Cu.store_get cu ~kind:"exact" ~context with
      | None -> None
      | Some payload -> (
        match Uas_dfg.Sched.exact_of_string payload with
        | Some _ as ok -> ok
        | None ->
          Cu.store_undecodable cu ~kind:"exact";
          None)
    in
    match cached with
    | Some e ->
      Cu.set_exact cu e;
      e
    | None ->
      let witness = ensure_schedule ~target ~pipelined cu in
      let e = Estimate.kernel_exact ~target ~witness (ensure_dfg ~target cu) in
      Cu.store_put cu ~kind:"exact" ~context
        (Uas_dfg.Sched.exact_to_string e);
      Cu.set_exact cu e;
      e)

let dfg_build ?(target = Datapath.default) () =
  Pass.v "dfg-build" (fun cu ->
      ignore (ensure_dfg ~target cu);
      Ok cu)

let schedule ?(target = Datapath.default) ~pipelined () =
  Pass.v "schedule" (fun cu ->
      ignore (ensure_schedule ~target ~pipelined cu);
      Ok cu)

(* ["exact-ii"]: the second oracle.  In [Exact_check] the heuristic
   schedule is validated against the raw constraint system; in
   [Exact_report] the exact backend additionally certifies (or
   brackets) the optimal II of a pipelined kernel.  An invalid
   heuristic schedule or a heuristic II below the certified optimum is
   a soundness incident on the unit — the pass itself never fails, so
   a sweep always completes with the evidence footnoted. *)
let exact_ii ?(target = Datapath.default) ~pipelined
    ~(mode : Uas_dfg.Sched.exact_mode) () =
  Pass.v "exact-ii" (fun cu ->
      (match mode with
      | Uas_dfg.Sched.Exact_off -> ()
      | Exact_check | Exact_report ->
        let detail = ensure_dfg ~target cu in
        let sched = ensure_schedule ~target ~pipelined cu in
        let cfg = Datapath.sched_config target in
        (match
           Uas_dfg.Sched.check_schedule ~cfg detail.Uas_dfg.Build.d_graph
             sched
         with
        | Ok () -> ()
        | Error msgs ->
          List.iter
            (fun m ->
              Cu.add_incident cu
                (Diag.errorf ~pass:"exact-ii"
                   "heuristic schedule invalid: %s" m))
            msgs);
        if mode = Exact_report && pipelined then begin
          let e = ensure_exact ~target ~pipelined cu in
          if sched.Uas_dfg.Sched.s_ii < e.Uas_dfg.Sched.e_proved then
            Cu.add_incident cu
              (Diag.errorf ~pass:"exact-ii"
                 "SOUNDNESS VIOLATION: heuristic II %d below the exact \
                  oracle's proven bound %d"
                 sched.Uas_dfg.Sched.s_ii e.Uas_dfg.Sched.e_proved)
        end);
      Ok cu)

let estimate ?(target = Datapath.default) ~pipelined ?name () =
  Pass.v "estimate" (fun cu ->
      let resolved_name =
        match name with
        | Some n -> n
        | None -> (Cu.program cu).Uas_ir.Stmt.prog_name
      in
      let context =
        schedule_context ~target ~pipelined cu
        @ [ "cost-model=" ^ string_of_int Estimate.cost_model_version;
            "name=" ^ resolved_name ]
      in
      let cached =
        match Cu.store_get cu ~kind:"report" ~context with
        | None -> None
        | Some payload -> (
          match Estimate.report_of_string payload with
          | Some _ as ok -> ok
          | None ->
            Cu.store_undecodable cu ~kind:"report";
            None)
      in
      let report =
        match cached with
        | Some r -> r
        | None ->
          let detail = ensure_dfg ~target cu in
          let sched = ensure_schedule ~target ~pipelined cu in
          let r =
            Estimate.assemble ~target ~pipelined ?name (Cu.program cu)
              ~index:(Cu.inner_index cu) detail sched
          in
          Cu.store_put cu ~kind:"report" ~context
            (Estimate.report_to_string r);
          r
      in
      Cu.set_report cu report;
      Ok cu)

let names =
  [ "loop-nest"; "legality"; "dfg-build"; "schedule"; "exact-ii"; "estimate" ]
