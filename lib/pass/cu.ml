(* The compilation unit: program + memoized analyses + artifacts.
   Memoization is a per-field [option ref]-style mutable cache; the
   unit is confined to one domain (one sweep task), so no locking. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Def_use_a = Uas_analysis.Def_use
module Dependence = Uas_analysis.Dependence
module Induction = Uas_analysis.Induction
module Instrument = Uas_runtime.Instrument
module Store = Uas_runtime.Store

type analysis = Nest | Def_use | Liveness | Induction | Dependence

let analysis_name = function
  | Nest -> "loop-nest"
  | Def_use -> "def-use"
  | Liveness -> "liveness"
  | Induction -> "induction"
  | Dependence -> "dependence"

let all_analyses = [ Nest; Def_use; Liveness; Induction; Dependence ]

type def_use = {
  du_upward_exposed : Stmt.Sset.t;
  du_defined : Stmt.Sset.t;
  du_loop_carried : Stmt.Sset.t;
}

type liveness = { lv_live_out : Stmt.Sset.t; lv_max_live : int }

type t = {
  cu_program : Stmt.program;
  cu_outer : string;
  cu_inner : string;
  mutable c_nest : Loop_nest.pair option;
  mutable c_def_use : def_use option;
  mutable c_liveness : liveness option;
  mutable c_induction : Induction.t list option;
  mutable c_dependence :
    (Dependence.access * Dependence.access * Dependence.outer_distance) list
    option;
  mutable c_dfg : Uas_dfg.Build.detailed option;
  mutable c_schedule : Uas_dfg.Sched.schedule option;
  mutable c_exact : Uas_dfg.Sched.exact option;
  mutable c_report : Uas_hw.Estimate.report option;
  mutable c_compiled : Fast_interp.compiled option;
  mutable c_native : (Native_interp.compiled, string) result option;
  mutable c_hits : int;
  mutable c_misses : int;
  (* canonical program text (the Pp round-trip form), memoized because
     every store key hashes it; reset by [with_program] *)
  mutable c_text : string option;
  (* the rewrite trail: labels of every rewrite applied so far, newest
     first — the provenance half of the store key.  Survives
     [with_program] (it is how this unit's program came to be); pushed
     by Rewrite.apply after each successful application *)
  mutable c_trail : string list;
  (* non-fatal trouble logged while building this unit (validation
     mismatches, recovered faults); survives [with_program] because it
     is the unit's history, not an analysis of its program *)
  mutable c_incidents : Diag.t list;
}

let make p ~outer_index ~inner_index =
  { cu_program = p;
    cu_outer = outer_index;
    cu_inner = inner_index;
    c_nest = None;
    c_def_use = None;
    c_liveness = None;
    c_induction = None;
    c_dependence = None;
    c_dfg = None;
    c_schedule = None;
    c_exact = None;
    c_report = None;
    c_compiled = None;
    c_native = None;
    c_hits = 0;
    c_misses = 0;
    c_text = None;
    c_trail = [];
    c_incidents = [] }

let program cu = cu.cu_program
let outer_index cu = cu.cu_outer
let inner_index cu = cu.cu_inner

let with_program ?(preserves = []) ?outer_index ?inner_index cu p =
  let keep a v = if List.mem a preserves then v else None in
  { cu with
    cu_program = p;
    cu_outer = (match outer_index with Some i -> i | None -> cu.cu_outer);
    cu_inner = (match inner_index with Some i -> i | None -> cu.cu_inner);
    c_nest = keep Nest cu.c_nest;
    c_def_use = keep Def_use cu.c_def_use;
    c_liveness = keep Liveness cu.c_liveness;
    c_induction = keep Induction cu.c_induction;
    c_dependence = keep Dependence cu.c_dependence;
    (* downstream artifacts never survive a program change *)
    c_dfg = None;
    c_schedule = None;
    c_exact = None;
    c_report = None;
    c_compiled = None;
    c_native = None;
    c_text = None }

(* One memoized lookup: serve the cache or compute-and-fill, keeping
   the per-unit and global counters honest. *)
let memo cu get set compute =
  match get cu with
  | Some v ->
    cu.c_hits <- cu.c_hits + 1;
    Instrument.incr "cu.analysis-hit";
    v
  | None ->
    cu.c_misses <- cu.c_misses + 1;
    Instrument.incr "cu.analysis-miss";
    let v = compute cu in
    set cu (Some v);
    v

let nest cu =
  memo cu
    (fun c -> c.c_nest)
    (fun c v -> c.c_nest <- v)
    (fun c -> Loop_nest.find_by_outer_index c.cu_program c.cu_outer)

let def_use cu =
  memo cu
    (fun c -> c.c_def_use)
    (fun c v -> c.c_def_use <- v)
    (fun c ->
      let body = (nest c).Loop_nest.inner_body in
      { du_upward_exposed = Def_use_a.upward_exposed body;
        du_defined = Def_use_a.defined body;
        du_loop_carried = Def_use_a.loop_carried body })

let liveness cu =
  memo cu
    (fun c -> c.c_liveness)
    (fun c v -> c.c_liveness <- v)
    (fun c ->
      let body = (nest c).Loop_nest.inner_body in
      let live_out = Def_use_a.live_out_candidates body in
      { lv_live_out = live_out;
        lv_max_live = Def_use_a.max_live ~live_out body })

let induction cu =
  memo cu
    (fun c -> c.c_induction)
    (fun c v -> c.c_induction <- v)
    (fun c -> Induction.find (nest c))

let dependence cu =
  memo cu
    (fun c -> c.c_dependence)
    (fun c v -> c.c_dependence <- v)
    (fun c -> Dependence.all_pairs (nest c))

let dfg cu = cu.c_dfg
let set_dfg cu d = cu.c_dfg <- Some d
let schedule cu = cu.c_schedule
let set_schedule cu s = cu.c_schedule <- Some s
let exact cu = cu.c_exact
let set_exact cu e = cu.c_exact <- Some e
let report cu = cu.c_report
let set_report cu r = cu.c_report <- Some r

let compiled cu =
  match cu.c_compiled with
  | Some c ->
    cu.c_hits <- cu.c_hits + 1;
    Instrument.incr "cu.compiled-hit";
    c
  | None ->
    cu.c_misses <- cu.c_misses + 1;
    Instrument.incr "cu.compiled-miss";
    let c =
      Instrument.span "interp.compile" (fun () ->
          Fast_interp.compile cu.cu_program)
    in
    cu.c_compiled <- Some c;
    c

let cached cu = function
  | Nest -> Option.is_some cu.c_nest
  | Def_use -> Option.is_some cu.c_def_use
  | Liveness -> Option.is_some cu.c_liveness
  | Induction -> Option.is_some cu.c_induction
  | Dependence -> Option.is_some cu.c_dependence

let hits cu = cu.c_hits
let misses cu = cu.c_misses

let add_incident cu d =
  Instrument.incr "cu.incident";
  cu.c_incidents <- d :: cu.c_incidents

let incidents cu = List.rev cu.c_incidents

(* ---- the persistent artifact store (load/save hooks) ---- *)

let canonical_text cu =
  match cu.c_text with
  | Some t -> t
  | None ->
    let t = Pp.program_to_string cu.cu_program in
    cu.c_text <- Some t;
    t

let trail cu = List.rev cu.c_trail
let push_trail cu label = cu.c_trail <- label :: cu.c_trail

(* The one key-construction point: every part of an artifact's
   provenance — store format version, artifact kind, the rewrite trail
   that produced this program, caller context (datapath fingerprint,
   effort budgets, cost-model version, ...) and the canonical program
   text itself — goes through the same hash. *)
(* Fault specs at non-store sites change what a cell computes (an
   injected raise skips it, an injected corruption rewrites it), so
   they are part of an artifact's provenance — keying them keeps a
   chaos run from ever poisoning a clean run's entries.  The store's
   own sites model cache corruption and must leave keys alone, or an
   injected read fault could never find the entry it is meant to
   corrupt. *)
let content_fault_plan () =
  match Uas_runtime.Fault.plan () with
  | None -> ""
  | Some p ->
    String.split_on_char ',' p
    |> List.filter (fun spec ->
           let s = String.trim spec in
           not
             (String.length s >= 6
             && String.equal (String.sub s 0 6) "store."))
    |> String.concat ","

let store_key cu ~kind ~context =
  Store.key
    (("store-format=" ^ string_of_int Store.format_version)
     :: ("kind=" ^ kind)
     :: ("trail=" ^ String.concat ";" (trail cu))
     :: ("fault=" ^ content_fault_plan ())
     :: context
    @ [ canonical_text cu ])

let store_incident cu ~kind msg =
  add_incident cu
    (Diag.errorf ~pass:"store" "cached %s artifact: %s" kind msg)

(* A payload that decodes to garbage (checksum OK but the serialized
   form's own version tag is off — next to impossible, since serializer
   versions are hashed into the key) degrades like a bad entry: the
   caller recomputes, with the incident on record.  The lookup was
   already counted by [store_get]. *)
let store_undecodable cu ~kind =
  store_incident cu ~kind "undecodable payload; recomputing"

let store_get cu ~kind ~context : string option =
  match Store.installed () with
  | None -> None
  | Some s ->
    if Store.verify_mode () then
      (* verify mode: always recompute; [store_put] then compares *)
      None
    else (
      match Store.read s ~kind ~key:(store_key cu ~kind ~context) with
      | Store.Hit payload ->
        Instrument.incr "cu.store-hit";
        Some payload
      | Store.Miss ->
        Instrument.incr "cu.store-miss";
        None
      | Store.Bad msg ->
        Instrument.incr "cu.store-miss";
        store_incident cu ~kind (msg ^ "; recomputing");
        None)

let store_put cu ~kind ~context payload =
  match Store.installed () with
  | None -> ()
  | Some s ->
    let key = store_key cu ~kind ~context in
    if Store.verify_mode () then (
      (match Store.read s ~kind ~key with
      | Store.Hit cached when String.equal cached payload ->
        Instrument.incr "cu.store-verify-ok"
      | Store.Hit _ ->
        Instrument.incr "cu.store-verify-mismatch";
        store_incident cu ~kind
          "verify: cached artifact differs from recomputation; entry \
           replaced"
      | Store.Miss -> ()
      | Store.Bad msg -> store_incident cu ~kind (msg ^ "; entry replaced"));
      match Store.write s ~kind ~key payload with
      | Ok () -> ()
      | Error msg -> store_incident cu ~kind ("write failed: " ^ msg))
    else
      match Store.write s ~kind ~key payload with
      | Ok () -> ()
      | Error msg -> store_incident cu ~kind ("write failed: " ^ msg)

(* The native-JIT artifact, memoized like [compiled].  Refusals memoize
   too — a program the JIT cannot serve degrades once, not per run.
   Store-corruption messages land in the incident log under the cmxs
   kind; Native_interp handles the store traffic itself (its key folds
   in the compiler fingerprint, which is outside [store_key]'s
   grammar). *)
let native cu =
  match cu.c_native with
  | Some r ->
    cu.c_hits <- cu.c_hits + 1;
    Instrument.incr "cu.native-hit";
    r
  | None ->
    cu.c_misses <- cu.c_misses + 1;
    Instrument.incr "cu.native-miss";
    let r =
      Native_interp.prepare
        ~on_store_bad:(fun msg -> store_incident cu ~kind:"cmxs" msg)
        cu.cu_program
    in
    cu.c_native <- Some r;
    r
