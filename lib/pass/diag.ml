(* Structured diagnostics: the data type every user-facing failure of
   the compilation pipeline is reported through. *)

type severity = Error | Warning | Note

type loc = { loc_loop : string option; loc_stmt : string option }

let no_loc = { loc_loop = None; loc_stmt = None }
let loop_loc i = { loc_loop = Some i; loc_stmt = None }

type t = {
  d_severity : severity;
  d_pass : string;
  d_loc : loc;
  d_message : string;
}

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf d =
  Fmt.pf ppf "%a[%s]" pp_severity d.d_severity d.d_pass;
  (match d.d_loc.loc_loop with
  | Some i -> Fmt.pf ppf " at loop %s" i
  | None -> ());
  (match d.d_loc.loc_stmt with
  | Some s -> Fmt.pf ppf " at `%s'" s
  | None -> ());
  Fmt.pf ppf ": %s" d.d_message

let to_string d = Fmt.str "%a" pp d

let make severity ~pass ?loop ?stmt fmt =
  Fmt.kstr
    (fun msg ->
      { d_severity = severity;
        d_pass = pass;
        d_loc = { loc_loop = loop; loc_stmt = stmt };
        d_message = msg })
    fmt

let errorf ~pass ?loop ?stmt fmt = make Error ~pass ?loop ?stmt fmt
let warningf ~pass ?loop ?stmt fmt = make Warning ~pass ?loop ?stmt fmt

exception Failed of t

let () =
  Printexc.register_printer (function
    | Failed d -> Some (to_string d)
    | _ -> None)

let fail d = raise (Failed d)

(* Layer-local exception families (the transform failures, mostly) are
   translated through an extensible registry: the module that defines an
   exception registers its renderer at module-initialization time, so
   any program able to raise it has necessarily installed the
   translator.  This keeps the diagnostics layer free of upward
   dependencies on the transform layer. *)

let translators : (exn -> string option) list ref = ref []

let register_exn_translator f = translators := f :: !translators

let translate exn = List.find_map (fun f -> f exn) !translators

let of_exn ~pass ?loop (exn : exn) : t option =
  let err fmt = Fmt.kstr (fun m -> Some (errorf ~pass ?loop "%s" m)) fmt in
  match exn with
  | Failed d -> Some d
  | Uas_runtime.Fault.Injected { site; kind } ->
    err "injected fault at site %s (kind %s)" site
      (Uas_runtime.Fault.kind_name kind)
  | Uas_hw.Estimate.Not_a_kernel m -> err "not a hardware kernel: %s" m
  | Uas_ir.Types.Ir_error m -> err "%s" m
  | Not_found -> err "no loop nest with the requested outer index"
  | Failure m -> err "%s" m
  | Invalid_argument m -> err "%s" m
  | exn -> ( match translate exn with Some m -> err "%s" m | None -> None)
