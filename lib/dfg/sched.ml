(* Scheduling (§3.5, §6): computes the initiation interval and issue
   times that the hardware estimator reports.

   - [list_schedule]: resource-constrained acyclic scheduling of one
     iteration (the *original*, non-overlapped execution: the next
     iteration starts only when the current one finishes, so II equals
     the schedule length);
   - [modulo_schedule]: iterative modulo scheduling for pipelined
     execution: II = max(RecMII, ResMII) when the greedy placement
     succeeds, growing II otherwise until it does (Rau-style IMS with a
     bounded retry budget per II and an overall effort budget that
     degrades to the list schedule instead of burning minutes);
   - [optimal_schedule]: the exact oracle — a budgeted branch-and-bound
     over the modulo reservation table that proves candidate IIs
     infeasible or returns a witness, so the first feasible II is
     certified optimal;
   - [check_schedule]: the validity checker both backends (and the test
     suites) use as a shared post-condition, written directly from the
     constraint system rather than from either scheduler. *)

open Uas_ir

type config = {
  mem_ports : int;  (** memory references allowed per clock (§6.1: 2) *)
}

let default_config = { mem_ports = 2 }

type schedule = {
  s_ii : int;             (** initiation interval in cycles *)
  s_times : int array;    (** issue cycle of every node *)
  s_length : int;         (** makespan of one iteration *)
}

let resource_mii (cfg : config) (g : Graph.t) : int =
  let mems = Graph.memory_op_count g in
  if mems = 0 then 1 else (mems + cfg.mem_ports - 1) / cfg.mem_ports

(** Lower bound on the pipelined II: recurrence- and resource-
    constrained. *)
let min_ii (cfg : config) (g : Graph.t) : int =
  max 1 (max (Graph.recurrence_mii g) (resource_mii cfg g))

let makespan (g : Graph.t) (times : int array) : int =
  let len = ref 0 in
  Array.iteri (fun i t -> len := max !len (t + Graph.delay g i)) times;
  max 1 !len

(** Resource-constrained list schedule of one iteration, honoring only
    intra-iteration (distance-0) edges.  Memory operations respect the
    port limit per absolute cycle. *)
let list_schedule ?(cfg = default_config) (g : Graph.t) : schedule =
  let n = Graph.node_count g in
  let times = Array.make n 0 in
  let order = Graph.topo_order g in
  let mem_use : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let ready =
        List.fold_left
          (fun t (p, dist) ->
            if dist = 0 then max t (times.(p) + Graph.delay g p) else t)
          0 g.Graph.preds.(i)
      in
      let needs_port = Opinfo.uses_memory_port (Graph.node g i).kind in
      let rec place t =
        if needs_port then begin
          let used = Option.value ~default:0 (Hashtbl.find_opt mem_use t) in
          if used >= cfg.mem_ports then place (t + 1)
          else begin
            Hashtbl.replace mem_use t (used + 1);
            t
          end
        end
        else t
      in
      times.(i) <- place ready)
    order;
  let length = makespan g times in
  { s_ii = length; s_times = times; s_length = length }

(* Check every edge constraint t(dst) >= t(src) + delay(src) - II*dist. *)
let feasible (g : Graph.t) ~ii times =
  List.for_all
    (fun e ->
      times.(e.Graph.e_dst)
      >= times.(e.Graph.e_src) + Graph.delay g e.Graph.e_src
         - (ii * e.Graph.e_distance))
    g.Graph.edges

(* ---- the validity checker (shared post-condition) ---- *)

(** Verify a schedule against the raw constraint system — every
    dependence edge with its distance×II slack and every modulo
    reservation row — independently of how it was produced.  A
    non-pipelined list schedule passes the same check: its II equals
    its makespan, so rows coincide with absolute cycles and
    cross-iteration edges are trivially slack. *)
let check_schedule ?(cfg = default_config) (g : Graph.t) (s : schedule) :
    (unit, string list) result =
  let n = Graph.node_count g in
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun m -> errs := m :: !errs) fmt in
  if Array.length s.s_times <> n then
    err "times array has %d entries for %d nodes" (Array.length s.s_times) n
  else begin
    if s.s_ii < 1 then err "initiation interval %d < 1" s.s_ii;
    Array.iteri
      (fun i t -> if t < 0 then err "node %d issues at negative cycle %d" i t)
      s.s_times;
    List.iter
      (fun e ->
        let slack =
          s.s_times.(e.Graph.e_dst) - s.s_times.(e.Graph.e_src)
          - Graph.delay g e.Graph.e_src
          + (s.s_ii * e.Graph.e_distance)
        in
        if slack < 0 then
          err "dependence %d -> %d (distance %d) violated by %d cycle(s)"
            e.Graph.e_src e.Graph.e_dst e.Graph.e_distance (-slack))
      g.Graph.edges;
    if s.s_ii >= 1 then begin
      let rows = Array.make s.s_ii 0 in
      Array.iteri
        (fun i t ->
          if Opinfo.uses_memory_port (Graph.node g i).kind then begin
            let r = ((t mod s.s_ii) + s.s_ii) mod s.s_ii in
            rows.(r) <- rows.(r) + 1
          end)
        s.s_times;
      Array.iteri
        (fun r used ->
          if used > cfg.mem_ports then
            err "modulo row %d holds %d memory ops (ports: %d)" r used
              cfg.mem_ports)
        rows
    end;
    let len = makespan g s.s_times in
    if s.s_length <> len then
      err "recorded makespan %d but issue times span %d" s.s_length len
  end;
  match List.rev !errs with [] -> Ok () | es -> Error es

(* ---- the longest-path solver shared by both backends ---- *)

exception Out_of_effort

exception Blocked

(* Raise [t] in place to the least fixpoint of t(dst) >= t(src) + w at
   or above its starting values, revisiting what [seeds] reach.
   Queue-based Bellman-Ford with round sentinels: nodes still active
   after [max_rounds] rounds mean a positive cycle (the II is
   infeasible) — the fixpoint is unique, so this computes exactly what
   a pass-based relaxation would, only incrementally.  Returns [false]
   on positive cycle.  Every edge relaxation costs one unit of
   [effort]; exhausting the budget raises {!Out_of_effort}. *)
let relax_up ~effort ~max_rounds (adj : (int * int) list array)
    (t : int array) (seeds : int list) : bool =
  let q = Queue.create () in
  let inq = Array.make (Array.length t) false in
  List.iter
    (fun i ->
      if not inq.(i) then begin
        Queue.add i q;
        inq.(i) <- true
      end)
    seeds;
  Queue.add (-1) q;
  let rounds = ref 0 in
  try
    while Queue.length q > 1 do
      let i = Queue.pop q in
      if i = -1 then begin
        incr rounds;
        if !rounds > max_rounds then raise Blocked;
        Queue.add (-1) q
      end
      else begin
        inq.(i) <- false;
        let ti = t.(i) in
        List.iter
          (fun (j, w) ->
            decr effort;
            if !effort < 0 then raise Out_of_effort;
            if ti + w > t.(j) then begin
              t.(j) <- ti + w;
              if not inq.(j) then begin
                Queue.add j q;
                inq.(j) <- true
              end
            end)
          adj.(i)
      end
    done;
    true
  with Blocked -> false

(* Weighted successor / predecessor adjacency at a fixed II: the edge
   src -> dst of distance d contributes t(dst) >= t(src) + delay(src)
   - II*d. *)
let succ_adj (g : Graph.t) ~ii =
  let adj = Array.make (Graph.node_count g) [] in
  List.iter
    (fun e ->
      let w = Graph.delay g e.Graph.e_src - (ii * e.Graph.e_distance) in
      adj.(e.Graph.e_src) <- (e.Graph.e_dst, w) :: adj.(e.Graph.e_src))
    g.Graph.edges;
  adj

let mem_nodes_of (g : Graph.t) : int list =
  List.filter
    (fun i -> Opinfo.uses_memory_port (Graph.node g i).kind)
    (List.init (Graph.node_count g) (fun i -> i))

(* Modulo placement at a fixed II by constraint relaxation (an SDC-style
   formulation): the Bellman-Ford solution satisfies every dependence by
   construction; memory-port oversubscription of a modulo slot is
   resolved by bumping the latest offender's lower bound and re-solving
   incrementally (the re-solved fixpoint is identical to a from-scratch
   solve, because the old fixpoint dominates every lower bound except
   the bumped one), so dependences stay satisfied.  Bounded retries
   keep it total. *)
let try_modulo (cfg : config) (g : Graph.t) ~effort ~ii : int array option =
  let n = Graph.node_count g in
  let mem_nodes = mem_nodes_of g in
  let adj = succ_adj g ~ii in
  let t = Array.make n 0 in
  let max_rounds = n + 1 in
  let budget = ref (64 + (List.length mem_nodes * ii * 4)) in
  if not (relax_up ~effort ~max_rounds adj t (List.init n Fun.id)) then None
  else begin
    let rec solve () =
      (* most-loaded oversubscribed modulo slot, if any *)
      let slots = Array.make ii [] in
      List.iter
        (fun i ->
          let s = ((t.(i) mod ii) + ii) mod ii in
          slots.(s) <- i :: slots.(s))
        mem_nodes;
      let offender = ref None in
      Array.iter
        (fun nodes ->
          if List.length nodes > cfg.mem_ports then begin
            (* bump the latest-scheduled op in the slot: it has the most
               slack left before wrapping all the way around *)
            let latest =
              List.fold_left
                (fun best i ->
                  match best with
                  | None -> Some i
                  | Some b -> if t.(i) > t.(b) then Some i else best)
                None nodes
            in
            match (!offender, latest) with
            | None, Some i -> offender := Some i
            | _ -> ()
          end)
        slots;
      match !offender with
      | None -> Some t
      | Some i ->
        decr budget;
        if !budget <= 0 then None
        else begin
          t.(i) <- t.(i) + 1;
          if relax_up ~effort ~max_rounds adj t [ i ] then solve () else None
        end
    in
    match solve () with
    | Some t when feasible g ~ii t -> Some t
    | Some _ | None -> None
  end

(* Generous enough that every benchmark × version of the paper suite
   completes its full II search (the worst, Skipjack-mem jam(16), needs
   a few million relaxations with the incremental solver); a graph that
   would burn seconds instead degrades to the list schedule with a
   note. *)
let default_effort = 50_000_000

(** Iterative modulo scheduling with the degradation note: find the
    smallest feasible II at or above the recurrence/resource lower
    bound.  Always succeeds — the acyclic list-schedule length is a
    feasible fallback; when the [effort] budget (total edge relaxations
    across the whole II search) runs out first, the fallback is
    returned with a note saying so. *)
let modulo_schedule_note ?(cfg = default_config) ?(effort = default_effort)
    (g : Graph.t) : schedule * string option =
  if Graph.node_count g = 0 then
    ({ s_ii = 1; s_times = [||]; s_length = 1 }, None)
  else begin
    let fallback = list_schedule ~cfg g in
    let lower = min_ii cfg g in
    let fuel = ref effort in
    let rec search ii =
      if ii >= fallback.s_length then
        ({ fallback with s_ii = max 1 fallback.s_length }, None)
      else
        match try_modulo cfg g ~effort:fuel ~ii with
        | Some times ->
          ({ s_ii = ii; s_times = times; s_length = makespan g times }, None)
        | None -> search (ii + 1)
        | exception Out_of_effort ->
          ( { fallback with s_ii = max 1 fallback.s_length },
            Some
              (Printf.sprintf
                 "modulo scheduling effort budget exhausted at II=%d; \
                  degraded to the non-overlapped schedule (II=%d)"
                 ii fallback.s_length) )
    in
    search lower
  end

(** Iterative modulo scheduling: find the smallest feasible II at or
    above the recurrence/resource lower bound.  Always succeeds — the
    acyclic list-schedule length is a feasible fallback. *)
let modulo_schedule ?cfg ?effort (g : Graph.t) : schedule =
  fst (modulo_schedule_note ?cfg ?effort g)

(* ---- the exact backend ---- *)

type exact_status = Exact_optimal | Exact_feasible | Exact_unknown

let exact_status_name = function
  | Exact_optimal -> "optimal"
  | Exact_feasible -> "feasible"
  | Exact_unknown -> "unknown"

type exact = {
  e_status : exact_status;
  e_schedule : schedule option;
  e_min_ii : int;
  e_proved : int;
  e_expansions : int;
  e_effort_exhausted : bool;
}

(* ceil(a / b) for b > 0 and either sign of a *)
let cdiv a b = if a > 0 then (a + b - 1) / b else -(-a / b)

let neg_inf = min_int / 4

(* Symmetry breaking for the exact search: unroll-and-jam produces
   disjoint, schedule-isomorphic copies of the loop body, and any
   solution can permute whole copies, so the canonical solution orders
   the copies' first memory residues.  Two connected components are
   schedule-isomorphic when, under the order-preserving node map, every
   position has the same delay and port usage and both have the same
   positioned edge set (labels and constants may differ — they do not
   affect validity).  Returns [prev]: for each memory node (by memory
   index), the memory index whose residue must stay <= its own, or -1. *)
let symmetry_chain (g : Graph.t) (mem : int array) (mem_idx : int array) :
    int array =
  let n = Graph.node_count g in
  let m = Array.length mem in
  let parent = Array.init n Fun.id in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  List.iter
    (fun e ->
      let rx = find e.Graph.e_src and ry = find e.Graph.e_dst in
      if rx <> ry then
        if rx < ry then parent.(ry) <- rx else parent.(rx) <- ry)
    g.Graph.edges;
  let comp_nodes : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = find v in
    let tl = Option.value ~default:[] (Hashtbl.find_opt comp_nodes r) in
    Hashtbl.replace comp_nodes r (v :: tl)
  done;
  let comp_edges : (int, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let pos_of : (int, int) Hashtbl.t = Hashtbl.create n in
  Hashtbl.iter
    (fun _ vs -> List.iteri (fun p v -> Hashtbl.replace pos_of v p) vs)
    comp_nodes;
  List.iter
    (fun e ->
      let r = find e.Graph.e_src in
      let tup =
        ( Hashtbl.find pos_of e.Graph.e_src,
          Hashtbl.find pos_of e.Graph.e_dst,
          e.Graph.e_distance )
      in
      let tl = Option.value ~default:[] (Hashtbl.find_opt comp_edges r) in
      Hashtbl.replace comp_edges r (tup :: tl))
    g.Graph.edges;
  (* signature -> leaders (first memory node of each copy), in node
     order so the chain is deterministic *)
  let signature vs root =
    ( List.map
        (fun v ->
          (Graph.delay g v, Opinfo.uses_memory_port (Graph.node g v).kind))
        vs,
      List.sort compare
        (Option.value ~default:[] (Hashtbl.find_opt comp_edges root)) )
  in
  let groups = ref [] in
  let roots =
    List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) comp_nodes [])
  in
  List.iter
    (fun root ->
      let vs = Hashtbl.find comp_nodes root in
      match List.find_opt (fun v -> mem_idx.(v) >= 0) vs with
      | None -> ()
      | Some leader ->
        let sg = signature vs root in
        let rec add = function
          | [] -> groups := !groups @ [ (sg, ref [ leader ]) ]
          | (sg', leaders) :: rest ->
            if sg = sg' then leaders := leader :: !leaders else add rest
        in
        add !groups)
    roots;
  let prev = Array.make m (-1) in
  List.iter
    (fun (_, leaders) ->
      let chain = List.rev !leaders in
      ignore
        (List.fold_left
           (fun before v ->
             (match before with
             | Some b -> prev.(mem_idx.(v)) <- mem_idx.(b)
             | None -> ());
             Some v)
           None chain))
    !groups;
  prev

(* Decide one candidate II exactly, in residue space.

   A modulo schedule is determined by the residues (mod II) of the
   memory nodes — the only resource-constrained ones: write their times
   as t(a) = r(a) + II*k(a) and every non-memory node takes the least
   fixpoint over its predecessors.  Let L(a,b) be the longest walk from
   memory node a to memory node b whose intermediates are all
   non-memory (finite because every cycle has non-positive gain at
   II >= RecMII; walks through a third memory node c compose
   transitively through c's own constraint, which is tighter).  Then a
   schedule with residues r exists iff the pure difference system

       k(b) - k(a) >= ceil((L(a,b) + r(a) - r(b)) / II)

   has a solution, decided by Bellman-Ford positive-cycle detection
   over the memory nodes alone — no time horizon and no slow climb
   toward one.  The branch-and-bound assigns residues one memory node
   at a time (most-coupled-to-assigned first, earliest-issue residue
   first), pruning on reservation-row capacity, a pigeonhole count, and
   infeasibility of the partial k-system (sound: it relaxes unassigned
   nodes to unconstrained).  Exhausting the tree without a witness is a
   proof that the II is infeasible. *)
let decide (cfg : config) (g : Graph.t) ~effort ~expansions ~ii =
  let n = Graph.node_count g in
  let mem = Array.of_list (mem_nodes_of g) in
  let m = Array.length mem in
  let mem_idx = Array.make n (-1) in
  Array.iteri (fun a i -> mem_idx.(i) <- a) mem;
  let adj = succ_adj g ~ii in
  let all_nodes = List.init n Fun.id in
  let asap = Array.make n 0 in
  let round_up t r = t + ((((r - t) mod ii) + ii) mod ii) in
  (* a positive cycle at this II is infeasible outright *)
  if not (relax_up ~effort ~max_rounds:(n + 1) adj asap all_nodes) then
    `Infeasible
  else begin
    (* L.(a).(b): longest memory-free walk between memory endpoints.
       One bounded Bellman-Ford per source; walks never relax out of a
       memory node, so intermediates stay non-memory. *)
    let l = Array.make_matrix m m neg_inf in
    Array.iteri
      (fun a s ->
        let d = Array.make n neg_inf in
        let q = Queue.create () in
        let inq = Array.make n false in
        let arrive v x =
          decr effort;
          if !effort < 0 then raise Out_of_effort;
          let b = mem_idx.(v) in
          if b >= 0 then begin
            if x > l.(a).(b) then l.(a).(b) <- x
          end
          else if x > d.(v) then begin
            d.(v) <- x;
            if not inq.(v) then begin
              Queue.add v q;
              inq.(v) <- true
            end
          end
        in
        List.iter (fun (v, w) -> arrive v w) adj.(s);
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          inq.(u) <- false;
          let du = d.(u) in
          List.iter (fun (v, w) -> arrive v (du + w)) adj.(u)
        done)
      mem;
    (* max-plus transitive closure over the memory nodes (walks through
       any intermediates): the tightest pairwise bounds, with
       t(b) - t(a) >= C(a,b) in every schedule.  A pair bounded from
       both sides with negative total slack kills the II outright. *)
    let c = Array.map Array.copy l in
    for v = 0 to m - 1 do
      for a = 0 to m - 1 do
        effort := !effort - m;
        if !effort < 0 then raise Out_of_effort;
        let row_a = c.(a) in
        if row_a.(v) > neg_inf then begin
          let cav = row_a.(v) and row_v = c.(v) in
          for b = 0 to m - 1 do
            if row_v.(b) > neg_inf && cav + row_v.(b) > row_a.(b) then
              row_a.(b) <- cav + row_v.(b)
          done
        end
      done
    done;
    let impossible = ref false in
    for a = 0 to m - 1 do
      for b = 0 to m - 1 do
        if
          c.(a).(b) > neg_inf
          && c.(b).(a) > neg_inf
          && c.(a).(b) + c.(b).(a) > 0
        then impossible := true
      done
    done;
    if !impossible then `Infeasible
    else begin
      begin
        let sym_prev = symmetry_chain g mem mem_idx in
        let sym_next = Array.make m (-1) in
        Array.iteri
          (fun a p -> if p >= 0 then sym_next.(p) <- a)
          sym_prev;
        let residue = Array.make m (-1) in
        let row_load = Array.make ii 0 in
        let k = Array.make m 0 in
        (* a pair is TIGHT when it is bounded from both sides with a
           window narrower than the II — only tight pairs restrict
           residues, so only they drive the fail-first variable choice:
           nodes with one-sided constraints (pure sources/sinks) can
           take any free reservation row and are placed last, where the
           pigeonhole bound makes them trivial *)
        let tight = Array.make_matrix m m false in
        for a = 0 to m - 1 do
          for b = 0 to m - 1 do
            if
              a <> b
              && c.(a).(b) > neg_inf
              && c.(b).(a) > neg_inf
              && -c.(b).(a) - c.(a).(b) < ii - 1
            then tight.(a).(b) <- true
          done
        done;
        let degree = Array.make m 0 in
        for a = 0 to m - 1 do
          for b = 0 to m - 1 do
            if tight.(a).(b) then degree.(a) <- degree.(a) + 1
          done
        done;
        let coupled = Array.make m 0 in
        let touch v delta =
          for u = 0 to m - 1 do
            if tight.(v).(u) then coupled.(u) <- coupled.(u) + delta
          done
        in
        (* incremental Bellman-Ford over the assigned k-system; round
           sentinel m+1 detects a positive cycle (dead branch) *)
        let relax_k seed =
          let q = Queue.create () in
          let inq = Array.make m false in
          Queue.add seed q;
          inq.(seed) <- true;
          Queue.add (-1) q;
          let rounds = ref 0 in
          try
            while Queue.length q > 1 do
              let a = Queue.pop q in
              if a = -1 then begin
                incr rounds;
                if !rounds > m + 1 then raise Blocked;
                Queue.add (-1) q
              end
              else begin
                inq.(a) <- false;
                let ka = k.(a) and ra = residue.(a) in
                for b = 0 to m - 1 do
                  decr effort;
                  if !effort < 0 then raise Out_of_effort;
                  if residue.(b) >= 0 && c.(a).(b) > neg_inf then begin
                    let cand = ka + cdiv (c.(a).(b) + ra - residue.(b)) ii in
                    if cand > k.(b) then begin
                      k.(b) <- cand;
                      if not inq.(b) then begin
                        Queue.add b q;
                        inq.(b) <- true
                      end
                    end
                  end
                done
              end
            done;
            true
          with Blocked -> false
        in
        (* witness from a full assignment: anchor the memory nodes at
           r + II*k (shifted up by whole IIs until every anchor clears
           its zero-source ASAP bound), give everything else its least
           fixpoint, and insist the independent checker accepts it *)
        let complete () =
          let shift = ref 0 in
          for a = 0 to m - 1 do
            let anchor = residue.(a) + (ii * k.(a)) in
            let need = cdiv (asap.(mem.(a)) - anchor) ii in
            if need > !shift then shift := need
          done;
          let t = Array.make n 0 in
          for a = 0 to m - 1 do
            t.(mem.(a)) <- residue.(a) + (ii * (k.(a) + !shift))
          done;
          if not (relax_up ~effort ~max_rounds:(n + 1) adj t all_nodes) then
            None
          else begin
            let s = { s_ii = ii; s_times = t; s_length = makespan g t } in
            (* a failure here would be a solver bug: abandon the branch
               rather than emit an invalid certificate *)
            match check_schedule ~cfg g s with Ok () -> Some s | Error _ -> None
          end
        in
        (* earliest issue time still open to unassigned node a, judged
           from the zero-source ASAP bound and the assigned anchors —
           used only to order residue trials, never to prune *)
        let earliest a =
          let lb = ref asap.(mem.(a)) in
          for b = 0 to m - 1 do
            if residue.(b) >= 0 && c.(b).(a) > neg_inf then begin
              let tb = residue.(b) + (ii * k.(b)) in
              if tb + c.(b).(a) > !lb then lb := tb + c.(b).(a)
            end
          done;
          !lb
        in
        let rec branch unassigned =
          if unassigned = 0 then complete ()
          else begin
            let free = ref 0 in
            Array.iter
              (fun load -> free := !free + max 0 (cfg.mem_ports - load))
              row_load;
            if !free < unassigned then None
            else begin
              (* branch on the node most coupled to the assigned set
                 (fail-first); ties by static degree, then index *)
              let a = ref (-1) in
              for u = m - 1 downto 0 do
                if
                  residue.(u) < 0
                  && (!a < 0
                     || coupled.(u) > coupled.(!a)
                     || (coupled.(u) = coupled.(!a)
                        && degree.(u) > degree.(!a)))
                then a := u
              done;
              let a = !a in
              (* a residue survives when its reservation row has space,
                 it respects the canonical copy order, and for every
                 assigned node sharing a two-sided difference window
                 narrower than the II, it lands inside that window *)
              let viable r =
                row_load.(r) < cfg.mem_ports
                && (sym_prev.(a) < 0
                   || residue.(sym_prev.(a)) < 0
                   || residue.(sym_prev.(a)) <= r)
                && (sym_next.(a) < 0
                   || residue.(sym_next.(a)) < 0
                   || r <= residue.(sym_next.(a)))
                &&
                let ok = ref true in
                for b = 0 to m - 1 do
                  if !ok && residue.(b) >= 0 && tight.(b).(a) then begin
                    let lo = c.(b).(a) in
                    let width = -c.(a).(b) - lo in
                    let rel =
                      (((r - residue.(b) - lo) mod ii) + ii) mod ii
                    in
                    if rel > width then ok := false
                  end
                done;
                !ok
              in
              effort := !effort - (ii * m);
              if !effort < 0 then raise Out_of_effort;
              let lb = earliest a in
              let dom =
                List.init ii (fun r -> r)
                |> List.filter viable
                |> List.sort (fun r1 r2 ->
                       compare (round_up lb r1) (round_up lb r2))
              in
              let saved_k = Array.copy k in
              let rec try_residues = function
                | [] -> None
                | r :: rest -> (
                  incr expansions;
                  residue.(a) <- r;
                  row_load.(r) <- row_load.(r) + 1;
                  touch a 1;
                  (* seed k(a) from its assigned predecessors, then
                     propagate *)
                  let ka = ref 0 in
                  for b = 0 to m - 1 do
                    if residue.(b) >= 0 && b <> a && c.(b).(a) > neg_inf
                    then begin
                      let x = k.(b) + cdiv (c.(b).(a) + residue.(b) - r) ii in
                      if x > !ka then ka := x
                    end
                  done;
                  k.(a) <- !ka;
                  let result =
                    if relax_k a then branch (unassigned - 1) else None
                  in
                  match result with
                  | Some _ -> result
                  | None ->
                    residue.(a) <- -1;
                    row_load.(r) <- row_load.(r) - 1;
                    touch a (-1);
                    Array.blit saved_k 0 k 0 m;
                    try_residues rest)
              in
              try_residues dom
            end
          end
        in
        match branch m with Some s -> `Feasible s | None -> `Infeasible
      end
    end
  end

(* The exact search visits every II the heuristic visits, but each with
   a full branch-and-bound rather than one greedy descent; the shared
   relaxation budget is sized so all paper cells certify in well under
   a second each. *)
let default_exact_effort = 80_000_000

(** The exact II oracle: iterate the candidate II upward from [min_ii],
    proving each infeasible or returning a witness schedule, so the
    first feasible II is certified optimal.  [witness], when given (the
    heuristic's schedule), caps the search and is reported as a
    non-certified fallback ([Exact_feasible]) if the [effort] budget
    runs out mid-proof; with no witness the result degrades to
    [Exact_unknown].  Deterministic: the budget counts edge
    relaxations, not wall-clock. *)
let optimal_schedule ?(cfg = default_config)
    ?(effort = default_exact_effort) ?witness (g : Graph.t) : exact =
  let lower = min_ii cfg g in
  if Graph.node_count g = 0 then
    { e_status = Exact_optimal;
      e_schedule = Some { s_ii = 1; s_times = [||]; s_length = 1 };
      e_min_ii = lower;
      e_proved = 1;
      e_expansions = 0;
      e_effort_exhausted = false }
  else begin
    let fallback = list_schedule ~cfg g in
    (* the list schedule is a valid modulo schedule at II = its length
       (rows coincide with absolute cycles), so the search always
       terminates with a witness *)
    let cap =
      match witness with
      | Some (w : schedule) -> max lower (min w.s_ii fallback.s_length)
      | None -> max lower fallback.s_length
    in
    let fuel = ref effort in
    let expansions = ref 0 in
    let finish ~proved ~exhausted =
      let valid_witness =
        match witness with
        | Some w when w.s_ii >= proved -> (
          match check_schedule ~cfg g w with Ok () -> Some w | Error _ -> None)
        | _ -> None
      in
      match valid_witness with
      | Some w ->
        { e_status = Exact_feasible;
          e_schedule = Some w;
          e_min_ii = lower;
          e_proved = proved;
          e_expansions = !expansions;
          e_effort_exhausted = exhausted }
      | None ->
        { e_status = Exact_unknown;
          e_schedule = None;
          e_min_ii = lower;
          e_proved = proved;
          e_expansions = !expansions;
          e_effort_exhausted = exhausted }
    in
    let rec search ii =
      if ii > cap then finish ~proved:ii ~exhausted:false
      else
        match decide cfg g ~effort:fuel ~expansions ~ii with
        | `Feasible s ->
          { e_status = Exact_optimal;
            e_schedule = Some s;
            e_min_ii = lower;
            e_proved = ii;
            e_expansions = !expansions;
            e_effort_exhausted = false }
        | `Infeasible -> search (ii + 1)
        | exception Out_of_effort -> finish ~proved:ii ~exhausted:true
    in
    search lower
  end

(* ---- reporting ---- *)

type exact_mode = Exact_off | Exact_check | Exact_report

let exact_mode_name = function
  | Exact_off -> "off"
  | Exact_check -> "check"
  | Exact_report -> "report"

let exact_mode_of_string = function
  | "off" -> Some Exact_off
  | "check" -> Some Exact_check
  | "report" -> Some Exact_report
  | _ -> None

(** Render the heuristic-vs-exact story of one cell, as the table
    footnotes print it. *)
let pp_gap ppf ((heuristic_ii : int), (e : exact)) =
  match (e.e_status, e.e_schedule) with
  | Exact_optimal, Some w ->
    let gap = heuristic_ii - w.s_ii in
    if gap < 0 then
      Fmt.pf ppf
        "SOUNDNESS VIOLATION: heuristic II %d below certified optimum %d"
        heuristic_ii w.s_ii
    else
      Fmt.pf ppf "optimal II %d, gap %d (certified, %d expansions)" w.s_ii gap
        e.e_expansions
  | Exact_feasible, Some w ->
    Fmt.pf ppf "optimal II in [%d, %d], gap <= %d (budget)" e.e_proved w.s_ii
      (heuristic_ii - e.e_proved)
  | _ -> Fmt.pf ppf "gap unknown (budget)"

(** Number of hardware registers implied by a schedule: one per register
    source / move node, plus, for every produced value, the number of
    II-wide windows its lifetime spans (modulo variable expansion: a
    value alive for more than one II needs a new register per in-flight
    iteration). *)
let register_estimate (g : Graph.t) (s : schedule) : int =
  let n = Graph.node_count g in
  let regs = ref 0 in
  for i = 0 to n - 1 do
    let kind = (Graph.node g i).kind in
    let produced_at = s.s_times.(i) + Graph.delay g i in
    let last_use =
      List.fold_left
        (fun m (d, dist) -> max m (s.s_times.(d) + (s.s_ii * dist)))
        produced_at g.Graph.succs.(i)
    in
    let lifetime = last_use - produced_at in
    (* zero-lifetime values are consumed combinationally (no register);
       stored values need floor(lifetime/II) + 1 — floor plus one, not
       ceiling: when the lifetime is an exact multiple of the II, the
       next iteration's result arrives on the very edge of the last
       read and a further buffer register is required (found by the
       cycle-accurate simulator's hazard check) *)
    let windows = if lifetime = 0 then 0 else (lifetime / s.s_ii) + 1 in
    (match kind with
    | Opinfo.Op_move ->
      (* a move IS a register write: at least one register, more when
         the value stays live across several initiation windows *)
      regs := !regs + max 1 windows
    | Opinfo.Op_const -> ()
    | _ ->
      (* a computed value needs one register per II-window it stays
         live; a value consumed the cycle it appears needs none *)
      if g.Graph.succs.(i) <> [] then regs := !regs + windows)
  done;
  !regs

let pp_schedule ppf s =
  Fmt.pf ppf "II=%d length=%d" s.s_ii s.s_length

(* ---- serialization (the artifact store's stable forms) ----

   Hand-rolled, versioned, all-integer formats: the leading tag pins
   the schema (bump it on any field change — the store then treats old
   entries as undecodable, which is a miss, never a wrong answer), and
   parsing returns [None] on any malformed input. *)

let ( let* ) = Option.bind

let exact_status_of_name = function
  | "optimal" -> Some Exact_optimal
  | "feasible" -> Some Exact_feasible
  | "unknown" -> Some Exact_unknown
  | _ -> None

let strip_field ~name s =
  let prefix = name ^ "=" in
  let np = String.length prefix in
  if String.length s >= np && String.equal (String.sub s 0 np) prefix then
    Some (String.sub s np (String.length s - np))
  else None

let int_field ~name s =
  let* v = strip_field ~name s in
  int_of_string_opt v

(* a schedule as one space-free token, so it embeds in the exact form *)
let sched_atom s =
  Printf.sprintf "ii:%d;len:%d;times:%s" s.s_ii s.s_length
    (String.concat "," (List.map string_of_int (Array.to_list s.s_times)))

let sched_of_atom str =
  let sub ~name s =
    let prefix = name ^ ":" in
    let np = String.length prefix in
    if String.length s >= np && String.equal (String.sub s 0 np) prefix then
      Some (String.sub s np (String.length s - np))
    else None
  in
  match String.split_on_char ';' str with
  | [ ii_f; len_f; times_f ] ->
    let* ii = Option.bind (sub ~name:"ii" ii_f) int_of_string_opt in
    let* len = Option.bind (sub ~name:"len" len_f) int_of_string_opt in
    let* times_s = sub ~name:"times" times_f in
    let parts =
      if String.equal times_s "" then []
      else String.split_on_char ',' times_s
    in
    let times = List.map int_of_string_opt parts in
    if List.exists Option.is_none times then None
    else
      Some
        { s_ii = ii;
          s_length = len;
          s_times = Array.of_list (List.map Option.get times) }
  | _ -> None

let schedule_to_string s = "sched 1 " ^ sched_atom s

let schedule_of_string str =
  match String.split_on_char ' ' str with
  | [ "sched"; "1"; atom ] -> sched_of_atom atom
  | _ -> None

let exact_to_string e =
  Printf.sprintf "exact 1 status=%s min=%d proved=%d exp=%d exh=%b sched=%s"
    (exact_status_name e.e_status)
    e.e_min_ii e.e_proved e.e_expansions e.e_effort_exhausted
    (match e.e_schedule with None -> "-" | Some s -> sched_atom s)

let exact_of_string str =
  match String.split_on_char ' ' str with
  | [ "exact"; "1"; st_f; min_f; proved_f; exp_f; exh_f; sched_f ] ->
    let* status = Option.bind (strip_field ~name:"status" st_f) exact_status_of_name in
    let* min_ii = int_field ~name:"min" min_f in
    let* proved = int_field ~name:"proved" proved_f in
    let* expansions = int_field ~name:"exp" exp_f in
    let* exhausted =
      Option.bind (strip_field ~name:"exh" exh_f) bool_of_string_opt
    in
    let* sched_s = strip_field ~name:"sched" sched_f in
    let* sched =
      if String.equal sched_s "-" then Some None
      else
        match sched_of_atom sched_s with
        | Some s -> Some (Some s)
        | None -> None
    in
    Some
      { e_status = status;
        e_schedule = sched;
        e_min_ii = min_ii;
        e_proved = proved;
        e_expansions = expansions;
        e_effort_exhausted = exhausted }
  | _ -> None
