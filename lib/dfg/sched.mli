(** Scheduling (§3.5): initiation intervals and issue times under the
    datapath's memory-port budget.

    [list_schedule] models the original, non-overlapped execution (II =
    schedule length); [modulo_schedule] the pipelined one (iterative
    modulo scheduling by SDC-style constraint relaxation, II =
    max(RecMII, ResMII) when placement succeeds, growing otherwise);
    [optimal_schedule] is the exact second oracle (branch-and-bound
    over the modulo reservation table, certifying the first feasible
    II); [check_schedule] validates any schedule against the raw
    constraint system, independently of every backend. *)

type config = { mem_ports : int (** references per clock; §6.1 uses 2 *) }

val default_config : config

type schedule = {
  s_ii : int;  (** initiation interval in cycles *)
  s_times : int array;  (** issue cycle of every node *)
  s_length : int;  (** makespan of one iteration *)
}

(** ceil(memory ops / ports). *)
val resource_mii : config -> Graph.t -> int

(** max(1, RecMII, ResMII): the pipelined lower bound. *)
val min_ii : config -> Graph.t -> int

(** Resource-constrained acyclic scheduling of one iteration
    (distance-0 edges only). *)
val list_schedule : ?cfg:config -> Graph.t -> schedule

(** Verify a schedule against the constraint system itself — every
    dependence edge ([t(dst) >= t(src) + delay(src) - II*distance]),
    every modulo reservation row (at most [mem_ports] memory ops per
    residue class mod II), non-negative issue times, and makespan
    consistency.  [Error] carries one message per violated constraint.
    Shared post-condition for all three scheduling backends. *)
val check_schedule :
  ?cfg:config -> Graph.t -> schedule -> (unit, string list) result

(** Smallest feasible pipelined II at or above [min_ii]; the acyclic
    schedule length is a guaranteed fallback.  [effort] bounds the
    total number of edge relaxations across the whole II search
    (deterministic, not wall-clock); exhausting it degrades to the
    fallback. *)
val modulo_schedule : ?cfg:config -> ?effort:int -> Graph.t -> schedule

(** [modulo_schedule] plus the degradation note: [Some message] when
    the effort budget ran out and the non-overlapped fallback was
    returned in place of a pipelined schedule. *)
val modulo_schedule_note :
  ?cfg:config -> ?effort:int -> Graph.t -> schedule * string option

(** Default effort budget of {!modulo_schedule} (edge relaxations). *)
val default_effort : int

(** Verdict of the exact backend. *)
type exact_status =
  | Exact_optimal  (** witness at the first feasible II: certified *)
  | Exact_feasible
      (** budget ran out mid-proof, but a validated witness bounds the
          optimum within [[e_proved, witness II]] *)
  | Exact_unknown  (** budget ran out and no witness is available *)

val exact_status_name : exact_status -> string

type exact = {
  e_status : exact_status;
  e_schedule : schedule option;
      (** the certified witness ([Exact_optimal]) or the supplied
          fallback witness ([Exact_feasible]) *)
  e_min_ii : int;  (** the recurrence/resource lower bound *)
  e_proved : int;
      (** smallest II NOT proven infeasible: every II below it was
          refuted by exhaustive search *)
  e_expansions : int;  (** branch-and-bound nodes expanded *)
  e_effort_exhausted : bool;
}

(** The exact II oracle: iterate candidate IIs upward from {!min_ii},
    proving each infeasible (branch-and-bound over the modulo residues
    of the memory operations, bounded by a compression-argument
    horizon) or returning a witness schedule, so the first feasible II
    is certified optimal.  [witness] (typically the heuristic's
    schedule) caps the search and, if the deterministic [effort] budget
    runs out mid-proof, is revalidated and reported as [Exact_feasible]
    with the optimum bracketed; without one the result degrades to
    [Exact_unknown]. *)
val optimal_schedule :
  ?cfg:config -> ?effort:int -> ?witness:schedule -> Graph.t -> exact

(** Default effort budget of {!optimal_schedule} (edge relaxations). *)
val default_exact_effort : int

(** How much exact scheduling the pipelines run: [Exact_off] — none
    (the default); [Exact_check] — validate the heuristic schedule
    with {!check_schedule} only; [Exact_report] — also run
    {!optimal_schedule} and report the optimality gap. *)
type exact_mode = Exact_off | Exact_check | Exact_report

val exact_mode_name : exact_mode -> string
val exact_mode_of_string : string -> exact_mode option

(** Render one cell's heuristic-vs-exact story, as the table footnotes
    print it: certified gap, bracketed gap, or unknown (budget). *)
val pp_gap : (int * exact) Fmt.t

(** Hardware registers implied by a schedule: one per move node plus
    one per II-window each computed value stays live (modulo variable
    expansion). *)
val register_estimate : Graph.t -> schedule -> int

val pp_schedule : schedule Fmt.t

(** {2 Serialization (artifact store)}

    Versioned, all-integer, single-line textual forms.  [*_of_string]
    returns [None] on any malformed or version-mismatched input — the
    store treats an undecodable payload as a miss. *)

val schedule_to_string : schedule -> string
val schedule_of_string : string -> schedule option
val exact_to_string : exact -> string
val exact_of_string : string -> exact option
