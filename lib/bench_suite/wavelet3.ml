(* A 3-deep lifting-wavelet-style kernel (Table 1.1's cascade shape):
   bands of rows of taps.  The outer two loops (b, r) walk 32 row
   slots; the innermost c loop folds 8 taps of the row through an
   integer lifting recurrence

       acc' = ((acc + s) >> 1) ^ ((acc - s + wk) & 255)

   whose cyclic dependence keeps the inner II well above the minimum —
   the same pressure that motivates unroll-and-squash on the 2-deep
   suite.  Because the nest is 3 deep, the raw squash is illegal
   (the candidate inner body contains a loop); the enabling route is
   flatten (b, r) into one 32-trip loop, then squash that pair.  The
   row pointer [p] is a genuine cross-row induction variable: after
   flattening, induction analysis rewrites it to [pbase + t], keeping
   every array access affine despite the div/mod recomputes flatten
   introduces.

   A host implementation mirrors the IR operation-for-operation
   ([>>] is [asr], [&] is [land], [^] is [lxor]) so verification can
   require bit-identical integers across all three interpreter
   tiers. *)

open Uas_ir
module B = Builder

let bands = 4
let rows_per_band = 8
let taps = 8
let rows = bands * rows_per_band
let img_len = rows * taps

(* --- host reference --- *)

(** Fold one row of [taps] samples, matching the IR operation order
    exactly. *)
let fold_row (img : int array) (coeff : int array) ~p : int =
  let acc = ref 0 in
  let wk = coeff.(p mod rows_per_band) in
  for c = 0 to taps - 1 do
    let s = img.((p * taps) + c) in
    let lo = (!acc + s) asr 1 in
    let hi = (!acc - s + wk) land 255 in
    acc := lo lxor hi
  done;
  !acc

(** All [rows] row signatures, row-major ([p] = band * rows_per_band +
    row). *)
let transform (img : int array) (coeff : int array) : int array =
  Array.init rows (fun p -> fold_row img coeff ~p)

(* --- IR benchmark program --- *)

let locals =
  List.map
    (fun n -> (n, Types.Tint))
    [ "b"; "r"; "c"; "p"; "acc"; "wk"; "s"; "lo"; "hi" ]

(** The 3-deep wavelet nest.  The (b, r) pair is perfect — [b]'s body
    is exactly the [r] loop — so flatten can collapse it; the inner
    [c] loop is the loop-free kernel squash then targets. *)
let wavelet3 () : Stmt.program =
  let open B in
  B.program "wavelet3" ~locals
    ~arrays:
      [ B.input ~ty:Types.Tint "img" img_len;
        B.input ~ty:Types.Tint "coeff" rows_per_band;
        B.output ~ty:Types.Tint "row_out" rows ]
    [ ("p" <-- int 0);
      for_ "b" ~hi:(int bands)
        [ for_ "r" ~hi:(int rows_per_band)
            ([ ("acc" <-- int 0); ("wk" <-- load "coeff" (v "r")) ]
            @ [ for_ "c" ~hi:(int taps)
                  [ ("s" <-- load "img" ((v "p" * int taps) + v "c"));
                    ("lo" <-- shr (v "acc" + v "s") (int 1));
                    ("hi" <-- band (v "acc" - v "s" + v "wk") (int 255));
                    ("acc" <-- bxor (v "lo") (v "hi")) ]
              ]
            @ [ store "row_out" (v "p") (v "acc"); ("p" <-- v "p" + int 1) ])
        ]
    ]

(* --- workloads --- *)

let random_image ~seed =
  let rng = Random.State.make [| seed; 0x3a7 |] in
  Array.init img_len (fun _ -> Random.State.int rng 256)

let random_coeffs ~seed =
  let rng = Random.State.make [| seed; 0xc0e |] in
  Array.init rows_per_band (fun _ -> Random.State.int rng 64)

let workload (img : int array) (coeff : int array) : Interp.workload =
  Interp.workload
    ~arrays:
      [ ("img", Array.map (fun x -> Types.VInt x) img);
        ("coeff", Array.map (fun x -> Types.VInt x) coeff) ]
    ()
