(** The Table 1.1 profiling study: six modeled applications (real hot
    kernels, cold-loop populations matching the static counts) run
    under the interpreter's profiler. *)

open Uas_ir

type app = {
  app_name : string;
  program : Stmt.program;
  workload : Interp.workload;
  paper_loops : int;
  paper_hot : int;
  paper_percent : int;
}

val wavelet : size:int -> app
val epic : unit -> app
val unepic : unit -> app
val adpcm : samples:int -> app
val mpeg2 : unit -> app
val skipjack_app : blocks:int -> app

(** The six applications with the paper's workload sizes. *)
val all : unit -> app list

type row = {
  row_app : string;
  loops : int;  (** static loop count *)
  hot_loops : int;  (** loops above 1% of execution time *)
  hot_percent : float;  (** time covered by the outermost hot loops *)
  paper : int * int * int;
}

val static_loop_count : Stmt.program -> int

(** [tier] selects the interpreter (default
    {!Fast_interp.default_tier}); the profile, and hence the row, is
    bit-identical on either tier. *)
val profile_app : ?tier:Fast_interp.tier -> app -> row

(** The full Table 1.1. *)
val table : unit -> row list
