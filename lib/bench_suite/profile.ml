(* The Table 1.1 profiling study: "program execution time in loops".

   The paper profiles six applications (wavelet compression, EPIC,
   UNEPIC, MediaBench ADPCM, MPEG-2 encode, Skipjack) and reports, for
   each, the static loop count, the number of loops above 1% of the
   execution time, and the total share of time those hot loops cover.

   The original benchmark sources are the unavailable artifact here, so
   each application is modeled: the hot kernels are real algorithms
   (Haar lifting, IMA-ADPCM, 8x8 DCT, Skipjack) and the cold remainder
   reproduces the loop-count structure (setup/header/table loops that
   the paper's counts include but that contribute <1% of time each).
   What the experiment measures — that a handful of loops dominate — is
   a property of the loop structure, which this preserves. *)

open Uas_ir
module B = Builder

type app = {
  app_name : string;
  program : Stmt.program;
  workload : Interp.workload;
  paper_loops : int;        (** Table 1.1: # loops *)
  paper_hot : int;          (** Table 1.1: # loops > 1% time *)
  paper_percent : int;      (** Table 1.1: total % in hot loops *)
}

(* small cold setup loops: each touches a tiny array once *)
let cold_loops ~prefix count : Stmt.t list * Stmt.array_decl list * (string * Types.ty) list =
  let arr = prefix ^ "_scratch" in
  let idx k = Printf.sprintf "%s_c%d" prefix k in
  let stmts =
    List.init count (fun k ->
        B.for_ (idx k) ~hi:(B.int 4)
          [ B.store arr (B.v (idx k)) B.(v (idx k) + int k) ])
  in
  ( stmts,
    [ B.local_array arr 4 ],
    List.init count (fun k -> (idx k, Types.Tint)) )

(* --- wavelet image compression: 2D Haar lifting + quantization --- *)

let wavelet ~size : app =
  let n = size in
  let open B in
  let cold, cold_arrays, cold_locals = cold_loops ~prefix:"wv" 9 in
  (* a 3-level 2D Haar decomposition: each level runs a row-lifting
     nest and a column-lifting nest on a shrinking quadrant, then one
     quantization nest — 7 nests = 14 loops, 13-14 of them hot *)
  let levels = [ (0, n); (1, Stdlib.( / ) n 2); (2, Stdlib.( / ) n 4) ] in
  let ridx l = Printf.sprintf "r%d" l and cidx l = Printf.sprintf "c%d" l in
  let rqidx l = Printf.sprintf "rq%d" l and cqidx l = Printf.sprintf "cq%d" l in
  let locals =
    cold_locals
    @ List.map (fun v -> (v, Types.Tint)) [ "r"; "c"; "s"; "d"; "a"; "b" ]
    @ List.concat_map
        (fun (l, _) ->
          List.map (fun v -> (v, Types.Tint))
            [ ridx l; cidx l; rqidx l; cqidx l ])
        levels
  in
  let row_pass (l, sz) =
    let h = Stdlib.( / ) sz 2 in
    let r = ridx l and c = cidx l in
    for_ r ~hi:(int sz)
      [ for_ c ~hi:(int h)
          [ ("a" <-- load "coef" ((v r * int n) + (v c * int 2)));
            ("b" <-- load "coef" ((v r * int n) + (v c * int 2) + int 1));
            ("s" <-- shr (v "a" + v "b") (int 1));
            ("d" <-- v "a" - v "b");
            store "coef" ((v r * int n) + v c) (v "s");
            store "coef" ((v r * int n) + v c + int h) (v "d") ] ]
  in
  let col_pass (l, sz) =
    let h = Stdlib.( / ) sz 2 in
    let rq = rqidx l and cq = cqidx l in
    for_ cq ~hi:(int sz)
      [ for_ rq ~hi:(int h)
          [ ("a" <-- load "coef" ((v rq * int 2 * int n) + v cq));
            ("b" <-- load "coef" (((v rq * int 2 + int 1) * int n) + v cq));
            ("s" <-- shr (v "a" + v "b") (int 1));
            store "coef" ((v rq * int n) + v cq) (v "s") ] ]
  in
  let init =
    for_ "r" ~hi:(int n)
      [ for_ "c" ~hi:(int n)
          [ store "coef" ((v "r" * int n) + v "c")
              (load "img" ((v "r" * int n) + v "c")) ] ]
  in
  let quantize =
    for_ "r" ~hi:(int n)
      [ for_ "c" ~hi:(int n)
          [ ("a" <-- load "coef" ((v "r" * int n) + v "c"));
            store "coef" ((v "r" * int n) + v "c") (shr (v "a") (int 2)) ] ]
  in
  let n2 = Stdlib.( * ) n n in
  let program =
    B.program "wavelet" ~locals
      ~arrays:([ input "img" n2; output "coef" n2 ] @ cold_arrays)
      (cold @ [ init ]
      @ List.concat_map (fun lv -> [ row_pass lv; col_pass lv ]) levels
      @ [ quantize ])
  in
  let rng = Random.State.make [| 7 |] in
  let img = Array.init n2 (fun _ -> Types.VInt (Random.State.int rng 256)) in
  { app_name = "Wavelet image compression";
    program;
    workload = Interp.workload ~arrays:[ ("img", img) ] ();
    paper_loops = 25; paper_hot = 13; paper_percent = 99 }

(* --- EPIC-style pyramid coder: modeled structure ---

   The hot region is a sequence of [hot] distinct pyramid passes (each
   its own loop over a level of the pyramid), matching the paper's
   shape where 13-15 individual loops each exceed 1%% of the time. *)

let pyramid_app ~name ~cold ~hot ~size ~paper:(pl, ph, pp) : app =
  let open B in
  let cold_stmts, cold_arrays, cold_locals = cold_loops ~prefix:name cold in
  let hot_idx k = Printf.sprintf "%s_h%d" name k in
  let locals =
    cold_locals
    @ List.map (fun v -> (v, Types.Tint)) [ "a"; "acc" ]
    @ List.init hot (fun k -> (hot_idx k, Types.Tint))
  in
  let pass k =
    (* pass k transforms the whole buffer once; distinct loops so each
       shows up separately in the profile *)
    let idx = hot_idx k in
    for_ idx ~hi:(int size)
      [ ("a" <-- load "pix" (v idx));
        ("acc" <-- band (bxor (v "a" + int k) (v "acc")) (int 4095));
        store "enc" (v idx) (shr (v "a" + v "acc") (int 1)) ]
  in
  let program =
    B.program name ~locals
      ~arrays:([ input "pix" size; output "enc" size ] @ cold_arrays)
      (cold_stmts @ [ ("acc" <-- int 0) ] @ List.init hot pass)
  in
  let rng = Random.State.make [| 11 |] in
  let pix = Array.init size (fun _ -> Types.VInt (Random.State.int rng 256)) in
  { app_name = name;
    program;
    workload = Interp.workload ~arrays:[ ("pix", pix) ] ();
    paper_loops = pl; paper_hot = ph; paper_percent = pp }

let epic () =
  pyramid_app ~name:"epic" ~cold:119 ~hot:13 ~size:2048 ~paper:(132, 13, 92)

let unepic () =
  pyramid_app ~name:"unepic" ~cold:47 ~hot:15 ~size:2048 ~paper:(62, 15, 99)

let mpeg2 () =
  pyramid_app ~name:"mpeg2enc" ~cold:151 ~hot:14 ~size:1024
    ~paper:(165, 14, 85)

(* --- MediaBench ADPCM: a real IMA-ADPCM encoder --- *)

let ima_index_table =
  [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let ima_step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37;
     41; 45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173;
     190; 209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658;
     724; 796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066;
     2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894;
     6484; 7132; 7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289;
     16818; 18500; 20350; 22385; 24623; 27086; 29794; 32767 |]

let adpcm ~samples : app =
  let half = Stdlib.( / ) samples 2 in
  let open B in
  let locals =
    List.map (fun v -> (v, Types.Tint))
      [ "t"; "t2"; "u"; "w"; "x"; "diff"; "sign"; "delta"; "step"; "pred";
        "index"; "vpdiff"; "code" ]
  in
  (* if-converted encoder main loop (single basic block, Select-based) *)
  let program =
    B.program "adpcm_enc" ~locals
      ~arrays:
        [ input "pcm" samples; input "steps" 89; input "indices" 16;
          output "codes" samples; local_array "packed" samples ]
      [ (* loop 1: validate and stage the step table *)
        for_ "t" ~hi:(int 89)
          [ ("w" <-- load "steps" (v "t"));
            ("x" <-- select (v "w" > int 32767) (int 32767) (v "w"));
            ("x" <-- select (v "x" < int 7) (int 7) (v "x"));
            store "packed" (band (v "t") (int 0)) (v "x" + v "w") ];
        ("pred" <-- int 0);
        ("index" <-- int 0);
        (* loop 2: the encoder *)
        for_ "u" ~hi:(int samples)
          [ ("x" <-- load "pcm" (v "u"));
            ("diff" <-- v "x" - v "pred");
            ("sign" <-- select (v "diff" < int 0) (int 8) (int 0));
            ("diff" <-- select (v "diff" < int 0) (int 0 - v "diff") (v "diff"));
            ("step" <-- load "steps" (v "index"));
            ("code" <-- int 0);
            ("vpdiff" <-- shr (v "step") (int 3));
            ("code" <-- select (v "diff" >= v "step") (bor (v "code") (int 4)) (v "code"));
            ("vpdiff" <-- select (v "diff" >= v "step") (v "vpdiff" + v "step") (v "vpdiff"));
            ("diff" <-- select (v "diff" >= v "step") (v "diff" - v "step") (v "diff"));
            ("step" <-- shr (v "step") (int 1));
            ("code" <-- select (v "diff" >= v "step") (bor (v "code") (int 2)) (v "code"));
            ("vpdiff" <-- select (v "diff" >= v "step") (v "vpdiff" + v "step") (v "vpdiff"));
            ("diff" <-- select (v "diff" >= v "step") (v "diff" - v "step") (v "diff"));
            ("step" <-- shr (v "step") (int 1));
            ("code" <-- select (v "diff" >= v "step") (bor (v "code") (int 1)) (v "code"));
            ("vpdiff" <-- select (v "diff" >= v "step") (v "vpdiff" + v "step") (v "vpdiff"));
            ("pred" <--
             select (band (v "sign") (int 8) == int 8) (v "pred" - v "vpdiff")
               (v "pred" + v "vpdiff"));
            ("pred" <-- select (v "pred" > int 32767) (int 32767) (v "pred"));
            ("pred" <-- select (v "pred" < int (-32768)) (int (-32768)) (v "pred"));
            ("index" <-- v "index" + load "indices" (bor (v "code") (v "sign")));
            ("index" <-- select (v "index" < int 0) (int 0) (v "index"));
            ("index" <-- select (v "index" > int 88) (int 88) (v "index"));
            store "codes" (v "u") (bor (v "code") (v "sign")) ];
        (* loop 3: pack pairs of codes *)
        for_ "t2" ~hi:(int half)
          [ ("w" <-- load "codes" (v "t2" * int 2));
            ("x" <-- load "codes" ((v "t2" * int 2) + int 1));
            store "packed" (v "t2") (bor (shl (v "x") (int 4)) (v "w")) ] ]
  in
  let rng = Random.State.make [| 13 |] in
  let pcm =
    Array.init samples (fun _ -> Types.VInt (Stdlib.( - ) (Random.State.int rng 65536) 32768))
  in
  { app_name = "MediaBench ADPCM";
    program;
    workload =
      Interp.workload
        ~arrays:
          [ ("pcm", pcm);
            ("steps", Array.map (fun x -> Types.VInt x) ima_step_table);
            ("indices", Array.map (fun x -> Types.VInt x) ima_index_table) ]
        ();
    paper_loops = 3; paper_hot = 3; paper_percent = 98 }

(* --- Skipjack: the skipjack-mem benchmark plus its setup loops --- *)

let skipjack_app ~blocks : app =
  let base = Skipjack.skipjack_mem ~m:blocks in
  let words = Skipjack.random_words ~seed:6 (4 * blocks) in
  let open B in
  (* key parity / schedule expansion / buffer clear setup loops, as in
     the full application (6 loops total, 2 hot) *)
  let extra_locals =
    List.map (fun v -> (v, Types.Tint)) [ "s1"; "s2"; "s3"; "s4"; "acc0" ]
  in
  let setup =
    [ ("acc0" <-- int 0);
      for_ "s1" ~hi:(int 10) [ ("acc0" <-- v "acc0" + load "cv" (v "s1")) ];
      for_ "s2" ~hi:(int 10) [ store "keybuf" (v "s2") (load "cv" (v "s2")) ];
      for_ "s3" ~hi:(int 16)
        [ store "keybuf" (band (v "s3") (int 7)) (v "s3") ];
      for_ "s4" ~hi:(int 8) [ store "keybuf" (v "s4") (int 0) ] ]
  in
  let program =
    { base with
      Stmt.prog_name = "skipjack_app";
      locals = base.Stmt.locals @ extra_locals;
      arrays = base.Stmt.arrays @ [ local_array "keybuf" 16 ];
      body = setup @ base.Stmt.body }
  in
  let key = Skipjack.random_key ~seed:5 in
  { app_name = "Skipjack encryption";
    program;
    workload = Skipjack.workload_mem ~key words;
    paper_loops = 6; paper_hot = 2; paper_percent = 99 }

(* --- the study --- *)

let all () : app list =
  [ wavelet ~size:64; epic (); unepic (); adpcm ~samples:512;
    mpeg2 (); skipjack_app ~blocks:48 ]

type row = {
  row_app : string;
  loops : int;          (** static loop count *)
  hot_loops : int;      (** loops above 1% of execution time *)
  hot_percent : float;  (** total share of time in those loops *)
  paper : int * int * int;
}

let static_loop_count (p : Stmt.program) : int =
  Stmt.fold_list
    (fun n s -> match s with Stmt.For _ -> n + 1 | _ -> n)
    0 p.Stmt.body

(** Run one app under the profiler and produce its Table 1.1 row.  Only
    outermost hot loops are counted (nested hot loops are covered by
    their parent, as in the paper's per-loop accounting).  [tier]
    selects the interpreter; both tiers produce identical profiles, so
    the row is tier-independent — the fast default just gets it
    sooner. *)
let profile_app ?tier (a : app) : row =
  let tier =
    match tier with Some t -> t | None -> Fast_interp.default_tier ()
  in
  let result = Registry.run_tier tier a.program a.workload in
  let reports = Interp.loop_reports result in
  let hot = List.filter (fun r -> r.Interp.lr_fraction > 0.01) reports in
  (* drop hot loops nested inside another hot loop *)
  let outermost =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun r' ->
               String.length r.Interp.lr_path > String.length r'.Interp.lr_path
               && String.starts_with ~prefix:(r'.Interp.lr_path ^ "/")
                    r.Interp.lr_path)
             hot))
      hot
  in
  let covered =
    List.fold_left (fun acc r -> acc +. r.Interp.lr_fraction) 0.0 outermost
  in
  { row_app = a.app_name;
    loops = static_loop_count a.program;
    hot_loops = List.length hot;
    hot_percent = 100.0 *. covered;
    paper = (a.paper_loops, a.paper_hot, a.paper_percent) }

let table () : row list = List.map profile_app (all ())
