(** The Table 6.1 benchmark suite packaged uniformly: program, kernel
    location, reference workload, and host-computed expected outputs. *)

open Uas_ir

type benchmark = {
  b_name : string;  (** Table 6.1 name, e.g. "Skipjack-mem" *)
  b_description : string;
  b_program : Stmt.program;
  b_outer_index : string;
  b_inner_index : string;
  b_workload : Interp.workload;
  b_reference : (Types.array_id * Types.value array) list;
}

val default_blocks : int
val default_channels : int

val skipjack_mem : ?m:int -> unit -> benchmark
val skipjack_hw : ?m:int -> unit -> benchmark
val des_mem : ?m:int -> unit -> benchmark
val des_hw : ?m:int -> unit -> benchmark
val iir : ?channels:int -> unit -> benchmark
val wavelet3 : unit -> benchmark

(** The five benchmarks in the paper's order. *)
val all : unit -> benchmark list

(** Benchmarks beyond the Table 6.1 suite (the 3-deep wavelet nest),
    kept out of {!all} so the Table 6.2 goldens are untouched. *)
val extras : unit -> benchmark list

(** Case-insensitive lookup by name, over {!all} and {!extras}. *)
val find : string -> benchmark option

(** Deterministically perturb the first output value of a result (the
    [corrupt] fault kind at the [interp.run] site; exposed for
    tests). *)
val corrupt_result : Interp.result -> Interp.result

(** The tiny fuel budget a [stall] fault at the [interp.run] site runs
    under (so the run deterministically raises [Interp.Out_of_fuel]). *)
val stall_fuel : int

(** Run a program on a workload on the chosen interpreter tier, under
    an [interp.run.ref]/[interp.run.fast] instrumentation span.

    This is the [interp.run] fault-injection site (label: ["ref"] or
    ["fast"]): [raise] throws [Fault.Injected], [stall] runs with a
    tiny fuel budget so the run surfaces as [Interp.Out_of_fuel], and
    [corrupt] perturbs the first output value — the scenarios the
    sweep's verification must absorb as unverified/skipped cells. *)
val run_tier :
  ?fuel:int ->
  Fast_interp.tier ->
  Stmt.program ->
  Interp.workload ->
  Interp.result

(** Does an already-computed interpreter result reproduce the host
    reference bit-for-bit?  A missing output array is reported with the
    benchmark name and the outputs that were actually produced. *)
val check_result : benchmark -> Interp.result -> (unit, string) result

(** Does running [p] on the benchmark workload reproduce the host
    reference bit-for-bit?  [tier] defaults to
    {!Fast_interp.default_tier}. *)
val check_against_reference :
  ?tier:Fast_interp.tier -> benchmark -> Stmt.program -> (unit, string) result
