(* The Table 6.1 benchmark suite, packaged uniformly: program, nest
   location, workloads, and a host-reference output for verification. *)

open Uas_ir

type benchmark = {
  b_name : string;              (** Table 6.1 name, e.g. "Skipjack-mem" *)
  b_description : string;       (** Table 6.1 description *)
  b_program : Stmt.program;
  b_outer_index : string;       (** outer loop of the kernel nest *)
  b_inner_index : string;       (** inner (hardware kernel) loop *)
  b_workload : Interp.workload; (** reference workload *)
  b_reference : (Types.array_id * Types.value array) list;
      (** expected contents of the output arrays on [b_workload],
          computed by the host implementations *)
}

let vint = Array.map (fun x -> Types.VInt x)
let vflt = Array.map (fun x -> Types.VFloat x)

(* sizes kept small enough that every version interprets quickly but
   large enough that all unroll factors up to 16 divide or peel *)
let default_blocks = 48
let default_channels = 16

let skipjack_mem ?(m = default_blocks) () : benchmark =
  let key = Skipjack.random_key ~seed:101 in
  let words = Skipjack.random_words ~seed:102 (4 * m) in
  { b_name = "Skipjack-mem";
    b_description =
      "Skipjack encryption, software implementation with memory references";
    b_program = Skipjack.skipjack_mem ~m;
    b_outer_index = "i";
    b_inner_index = "j";
    b_workload = Skipjack.workload_mem ~key words;
    b_reference = [ ("data_out", vint (Skipjack.encrypt_stream ~key words)) ] }

let skipjack_hw ?(m = default_blocks) () : benchmark =
  let key = Skipjack.random_key ~seed:103 in
  let words = Skipjack.random_words ~seed:104 (4 * m) in
  { b_name = "Skipjack-hw";
    b_description =
      "Skipjack encryption, optimized for hardware: F-table and key \
       schedule in local ROM, no memory references in the round loop";
    b_program = Skipjack.skipjack_hw ~m ~key;
    b_outer_index = "i";
    b_inner_index = "j";
    b_workload = Skipjack.workload_hw words;
    b_reference = [ ("data_out", vint (Skipjack.encrypt_stream ~key words)) ] }

let des_mem ?(m = default_blocks) () : benchmark =
  let key64 = 0x0123456789ABCDEFL in
  let halves = Des.random_halves ~seed:105 (2 * m) in
  let subkeys = Des.key_schedule key64 in
  { b_name = "DES-mem";
    b_description = "DES encryption, SBOX implemented in software with \
                     memory references";
    b_program = Des.des_mem ~m;
    b_outer_index = "i";
    b_inner_index = "j";
    b_workload = Des.workload_mem ~key64 halves;
    b_reference = [ ("data_out", vint (Des.encrypt_stream ~subkeys halves)) ] }

let des_hw ?(m = default_blocks) () : benchmark =
  let key64 = 0x0123456789ABCDEFL in
  let halves = Des.random_halves ~seed:106 (2 * m) in
  let subkeys = Des.key_schedule key64 in
  { b_name = "DES-hw";
    b_description =
      "DES encryption, SBOX implemented in hardware without memory \
       references";
    b_program = Des.des_hw ~m ~key64;
    b_outer_index = "i";
    b_inner_index = "j";
    b_workload = Des.workload_hw halves;
    b_reference = [ ("data_out", vint (Des.encrypt_stream ~subkeys halves)) ] }

let iir ?(channels = default_channels) () : benchmark =
  let signal =
    Iir.random_signal ~seed:107 (channels * Iir.points_per_channel)
  in
  { b_name = "IIR";
    b_description = "4-cascaded IIR biquad filter processing 64 points";
    b_program = Iir.iir ~channels;
    b_outer_index = "i";
    b_inner_index = "j";
    b_workload = Iir.workload signal;
    b_reference = [ ("signal_out", vflt (Iir.filter_bank ~channels signal)) ] }

let wavelet3 () : benchmark =
  let img = Wavelet3.random_image ~seed:211 in
  let coeff = Wavelet3.random_coeffs ~seed:211 in
  { b_name = "Wavelet3";
    b_description =
      "3-deep integer lifting-wavelet cascade (4 bands x 8 rows x 8 taps)";
    b_program = Wavelet3.wavelet3 ();
    b_outer_index = "b";
    b_inner_index = "c";
    b_workload = Wavelet3.workload img coeff;
    b_reference = [ ("row_out", vint (Wavelet3.transform img coeff)) ] }

(** The five benchmarks of Table 6.1/6.2, in the paper's order. *)
let all () : benchmark list =
  [ skipjack_mem (); skipjack_hw (); des_mem (); des_hw (); iir () ]

(** Benchmarks beyond the Table 6.1 suite: the 3-deep wavelet nest
    that exercises the flatten-then-squash route.  Kept out of
    {!all} so the Table 6.2 reproduction stays byte-identical. *)
let extras () : benchmark list = [ wavelet3 () ]

(** Look a benchmark up by name (case-insensitive), over the Table 6.1
    suite and the extras. *)
let find name : benchmark option =
  List.find_opt
    (fun b -> String.lowercase_ascii b.b_name = String.lowercase_ascii name)
    (all () @ extras ())

(* The [interp.run] fault-injection site (label: tier name).  The
   [stall] kind exhausts the fuel budget instead of spinning — the run
   surfaces as [Out_of_fuel], exactly what a runaway interpretation
   looks like to callers; [corrupt] perturbs the first output value of
   an otherwise-normal run. *)
let stall_fuel = 64

let tier_name = function
  | Fast_interp.Ref -> "ref"
  | Fast -> "fast"
  | Native -> "native"

let corrupt_result (r : Interp.result) : Interp.result =
  match r.Interp.outputs with
  | [] -> r
  | (name, vs) :: rest ->
    let vs = Array.copy vs in
    if Array.length vs > 0 then
      vs.(0) <-
        (match vs.(0) with
        | Types.VInt x -> Types.VInt (x + 1)
        | Types.VFloat x -> Types.VFloat (x +. 1.0));
    { r with Interp.outputs = (name, vs) :: rest }

(** Run [p] on [w] on the chosen interpreter tier, under an
    instrumentation span naming the tier. *)
let run_tier ?fuel (tier : Fast_interp.tier) (p : Stmt.program)
    (w : Interp.workload) : Interp.result =
  let span =
    match tier with
    | Fast_interp.Ref -> "interp.run.ref"
    | Fast -> "interp.run.fast"
    | Native -> "interp.run.native"
  in
  Uas_runtime.Instrument.span span (fun () ->
      match Uas_runtime.Fault.hit ~label:(tier_name tier) "interp.run" with
      | None -> Native_interp.run_tier ?fuel tier p w
      | Some Uas_runtime.Fault.Raise ->
        raise
          (Uas_runtime.Fault.Injected
             { site = "interp.run"; kind = Uas_runtime.Fault.Raise })
      | Some Uas_runtime.Fault.Stall ->
        Native_interp.run_tier ~fuel:stall_fuel tier p w
      | Some Uas_runtime.Fault.Corrupt ->
        corrupt_result (Native_interp.run_tier ?fuel tier p w))

(** Does an interpreter result reproduce the benchmark's host
    reference outputs exactly? *)
let check_result (b : benchmark) (r : Interp.result) : (unit, string) result =
  let check (name, expected) =
    match List.assoc_opt name r.Interp.outputs with
    | None ->
      let available =
        match r.Interp.outputs with
        | [] -> "none"
        | outs -> String.concat ", " (List.map fst outs)
      in
      Some
        (Printf.sprintf
           "benchmark %s: expected output array %s is missing from the \
            interpreted result (available outputs: %s)"
           b.b_name name available)
    | Some got ->
      if Array.length got <> Array.length expected then
        Some (Printf.sprintf "%s: length mismatch" name)
      else
        let rec go k =
          if k >= Array.length got then None
          else if not (Types.equal_value got.(k) expected.(k)) then
            Some
              (Fmt.str "%s[%d]: got %a, expected %a" name k Types.pp_value
                 got.(k) Types.pp_value expected.(k))
          else go (k + 1)
        in
        go 0
  in
  match List.find_map check b.b_reference with
  | None -> Ok ()
  | Some msg -> Error msg

(** Does running [p] on the benchmark's workload reproduce the host
    reference outputs exactly?  [tier] picks the interpreter (default:
    the process-wide {!Fast_interp.default_tier}). *)
let check_against_reference ?tier (b : benchmark) (p : Stmt.program) :
    (unit, string) result =
  let tier =
    match tier with Some t -> t | None -> Fast_interp.default_tier ()
  in
  check_result b (run_tier tier p b.b_workload)
