(** A 3-deep lifting-wavelet-style kernel (the Table 1.1 cascade
    shape): 4 bands × 8 rows × 8 taps, folding each row through an
    integer lifting recurrence.  The raw squash on the (b, r) pair is
    illegal — the candidate inner body contains the taps loop — so the
    enabling route is flatten then squash, which is what the deep-nest
    planner and sweep exercise end to end. *)

open Uas_ir

val bands : int
val rows_per_band : int
val taps : int

(** [bands * rows_per_band], the number of row signatures produced. *)
val rows : int

(** [rows * taps], the image length. *)
val img_len : int

(** Host reference, mirroring the IR operation-for-operation. *)
val transform : int array -> int array -> int array

(** The 3-deep IR nest ([b]/[r]/[c] with row pointer [p]). *)
val wavelet3 : unit -> Stmt.program

val random_image : seed:int -> int array
val random_coeffs : seed:int -> int array
val workload : int array -> int array -> Interp.workload
