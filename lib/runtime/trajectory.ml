(* The perf-trajectory collector behind bench/main.exe --json: one
   schema-stable JSON document per harness run, recording what ran
   (targets with wall-clock), what was measured (named metrics), how it
   was configured (interpreter tier, pool size) and, when
   instrumentation is enabled, the full span/counter breakdown.

   The schema is versioned and deliberately free of timestamps and
   hostnames so committed snapshots diff cleanly run-to-run; bump
   [version] on any key change. *)

let schema = "uas-bench-trajectory"

(* v2: the "plans" array (ranked planner tables per benchmark).
   v3: the "incidents" array (faults recovered, cells degraded or
   skipped during the run) and the "fault_plan" key.
   v4: the "gaps" array (heuristic vs exact-oracle II per
   benchmark × version, from --exact-ii report).
   v5: the "store" key (artifact-store hit/miss/latency counters when
   a cache is installed via UAS_CACHE/--cache; null otherwise — no
   directory path, so snapshots stay machine-independent).
   v6: the native JIT tier — "interp_tier" may now be "native",
   micro targets gain per-tier interp-native rows, and the counter
   dump gains the jit.* family (compile/memo/store traffic) with the
   jit.compile span.
   v7: the "daemon" key (nimbled service counters — admitted, shed,
   timed-out, degraded, drained, queue depth, request latency — when
   the document comes from a daemon run; null otherwise), and the
   "store" object gains "evict_skipped" (cross-process eviction sweeps
   skipped because another process held the store lock). *)
let version = 7

type target = { t_name : string; t_wall_s : float }
type metric = { m_name : string; m_value : float; m_unit : string }

type incident = {
  i_site : string;  (** where: "sweep", "plan", "validate", ... *)
  i_cell : string;  (** which cell: "<benchmark>/<version or candidate>" *)
  i_message : string;  (** the rendered diagnostic *)
}

type plan_row = {
  pr_rank : int;  (** 1-based plan order; 0 on skipped candidates *)
  pr_label : string;
  pr_ds : int;
  pr_ii : int;
  pr_area : int;
  pr_cycles : int;
  pr_speedup : float;
  pr_ratio : float;
  pr_skipped : string option;  (** the diagnostic, when skipped *)
}

type plan = {
  pl_benchmark : string;
  pl_objective : string;
  pl_rows : plan_row list;
}

type gap_row = {
  g_benchmark : string;
  g_version : string;
  g_heuristic_ii : int;
  g_optimal_ii : int option;  (** [None] unless certified optimal *)
  g_proved_ii : int;  (** every II below was refuted exhaustively *)
  g_gap : int option;  (** heuristic - optimal; [None] when uncertified *)
  g_status : string;  (** "optimal" | "feasible" | "unknown" *)
  g_expansions : int;  (** branch-and-bound nodes expanded *)
}

type t = {
  interp_tier : string;
  jobs : int option;
  mutable daemon_json : string option;
      (** pre-rendered daemon counter object (the [Store.stats_json]
          precedent); [None] renders as [null] *)
  mutable rev_targets : target list;
  mutable rev_metrics : metric list;
  mutable rev_plans : plan list;
  mutable rev_incidents : incident list;
  mutable rev_gaps : gap_row list;
}

let make ~interp_tier ~jobs () =
  { interp_tier;
    jobs;
    daemon_json = None;
    rev_targets = [];
    rev_metrics = [];
    rev_plans = [];
    rev_incidents = [];
    rev_gaps = [] }

let set_daemon_json t json = t.daemon_json <- Some json

let add_target t ~name ~wall_s =
  t.rev_targets <- { t_name = name; t_wall_s = wall_s } :: t.rev_targets

let add_metric t ~name ~value ~unit_label =
  t.rev_metrics <-
    { m_name = name; m_value = value; m_unit = unit_label } :: t.rev_metrics

let add_plan t ~benchmark ~objective rows =
  t.rev_plans <-
    { pl_benchmark = benchmark; pl_objective = objective; pl_rows = rows }
    :: t.rev_plans

let add_incident t ~site ~cell ~message =
  t.rev_incidents <-
    { i_site = site; i_cell = cell; i_message = message } :: t.rev_incidents

let add_gap t (g : gap_row) = t.rev_gaps <- g :: t.rev_gaps

(** [time f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let targets t = List.rev t.rev_targets
let metrics t = List.rev t.rev_metrics
let plans t = List.rev t.rev_plans
let incidents t = List.rev t.rev_incidents
let gaps t = List.rev t.rev_gaps

let esc = Instrument.json_escape

let to_json t =
  let target_json x =
    Printf.sprintf "{\"name\":\"%s\",\"wall_s\":%.6f}" (esc x.t_name)
      x.t_wall_s
  in
  let metric_json x =
    Printf.sprintf "{\"name\":\"%s\",\"value\":%.6f,\"unit\":\"%s\"}"
      (esc x.m_name) x.m_value (esc x.m_unit)
  in
  let plan_row_json (r : plan_row) =
    Printf.sprintf
      "{\"rank\":%d,\"label\":\"%s\",\"ds\":%d,\"ii\":%d,\"area\":%d,\"cycles\":%d,\"speedup\":%.4f,\"ratio\":%.4f,\"skipped\":%s}"
      r.pr_rank (esc r.pr_label) r.pr_ds r.pr_ii r.pr_area r.pr_cycles
      r.pr_speedup r.pr_ratio
      (match r.pr_skipped with
      | None -> "null"
      | Some d -> Printf.sprintf "\"%s\"" (esc d))
  in
  let plan_json (p : plan) =
    Printf.sprintf "{\"benchmark\":\"%s\",\"objective\":\"%s\",\"rows\":[%s]}"
      (esc p.pl_benchmark) (esc p.pl_objective)
      (String.concat "," (List.map plan_row_json p.pl_rows))
  in
  let incident_json (i : incident) =
    Printf.sprintf "{\"site\":\"%s\",\"cell\":\"%s\",\"message\":\"%s\"}"
      (esc i.i_site) (esc i.i_cell) (esc i.i_message)
  in
  let opt_int = function None -> "null" | Some n -> string_of_int n in
  let gap_json (g : gap_row) =
    Printf.sprintf
      "{\"benchmark\":\"%s\",\"version\":\"%s\",\"heuristic_ii\":%d,\"optimal_ii\":%s,\"proved_ii\":%d,\"gap\":%s,\"status\":\"%s\",\"expansions\":%d}"
      (esc g.g_benchmark) (esc g.g_version) g.g_heuristic_ii
      (opt_int g.g_optimal_ii) g.g_proved_ii (opt_int g.g_gap)
      (esc g.g_status) g.g_expansions
  in
  let jobs_json =
    match t.jobs with None -> "null" | Some n -> string_of_int n
  in
  let fault_plan_json =
    match Fault.plan () with
    | None -> "null"
    | Some p -> Printf.sprintf "\"%s\"" (esc p)
  in
  let store_json =
    match Store.installed () with
    | None -> "null"
    | Some s -> Store.stats_json s
  in
  let daemon_json =
    match t.daemon_json with None -> "null" | Some j -> j
  in
  Printf.sprintf
    "{\"schema\":\"%s\",\"version\":%d,\"interp_tier\":\"%s\",\"jobs\":%s,\"fault_plan\":%s,\"store\":%s,\"daemon\":%s,\"targets\":[%s],\"metrics\":[%s],\"plans\":[%s],\"gaps\":[%s],\"incidents\":[%s],\"instrumentation\":%s}"
    (esc schema) version (esc t.interp_tier) jobs_json fault_plan_json
    store_json daemon_json
    (String.concat "," (List.map target_json (targets t)))
    (String.concat "," (List.map metric_json (metrics t)))
    (String.concat "," (List.map plan_json (plans t)))
    (String.concat "," (List.map gap_json (gaps t)))
    (String.concat "," (List.map incident_json (incidents t)))
    (Instrument.to_json ())

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
