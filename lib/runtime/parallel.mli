(** A fixed-size Domain worker pool for the version sweep, with
    optional supervision.

    The sweep of Table 6.2 is embarrassingly parallel — every
    (benchmark, version) cell builds, estimates and verifies
    independently — so the pool is deliberately simple: an atomic
    work-queue index over an immutable input array, one worker per
    domain, results written to disjoint slots.  Results always come
    back in input order.

    Two entry points share that machinery.  {!map} is observably
    [List.map] — an exception raised by a task is captured with its
    backtrace and re-raised in the caller (the input-order first one
    wins) after the remaining tasks drain.  {!map_results} is the
    supervised variant: each input gets a per-cell
    [('b, Task_failure.t) result], a wall budget turns an overrunning
    task into [Timed_out] (via a watchdog domain) instead of hanging
    the pool, and retryable failures — injected faults, by default —
    are retried with exponential backoff.

    Tasks must not touch shared mutable state; every pass in this
    repository is pure (all its refs are function-local), which is what
    makes the fan-out sound.  Each task runs at the fault-injection
    site [parallel.task] (label: decimal input index) with the worker's
    cancellation flag installed via {!Fault.set_cancel}, so a
    cooperative stall ends as soon as the watchdog times the task
    out. *)

(** The environment variable consulted by [default_jobs]: ["UAS_JOBS"]. *)
val jobs_env_var : string

(** Pool size: [$UAS_JOBS] when set, [Domain.recommended_domain_count]
    otherwise; [Error] describes a malformed [$UAS_JOBS].  CLIs check
    this at startup so the user sees a diagnostic, not a backtrace. *)
val default_jobs_result : unit -> (int, string) result

(** [default_jobs_result] for internal callers.
    @raise Invalid_argument when [$UAS_JOBS] is not a positive
    integer. *)
val default_jobs : unit -> int

(** Why a supervised task produced no result. *)
module Task_failure : sig
  type t =
    | Raised of {
        exn : exn;
        backtrace : Printexc.raw_backtrace;
        attempts : int;  (** total attempts made, [>= 1] *)
      }
        (** The task raised on its last attempt (after exhausting any
            retry budget). *)
    | Timed_out of { elapsed_s : float; budget_s : float }
        (** The watchdog resolved the slot after the task overran its
            wall budget; any late result from the task is discarded. *)

  val to_message : t -> string
  val pp : t Fmt.t
end

(** [map_results ?jobs ?timeout_s ?retries ?retry_backoff_s ?retryable
    f xs] runs [f] over [xs] on the pool and returns one
    [('b, Task_failure.t) result] per input, in input order — no
    exception ever escapes.

    - [timeout_s]: per-task wall budget.  When set, a watchdog domain
      polls running tasks, marks overrunners [Timed_out] and raises
      their worker's cancellation flag ({!Fault.cancel_requested}).  A
      task deaf to cancellation costs its worker, never the pool:
      remaining tasks drain through the other workers and the stuck
      domain is abandoned (counted as ["pool.abandoned-workers"])
      rather than joined.
    - [retries] (default 0): extra attempts for a failure that
      satisfies [retryable] (default {!Fault.is_injected}), with
      backoff [retry_backoff_s * 2^(attempt-1)] (default base 10ms)
      between attempts.  Retries count as ["pool.retries"], timeouts as
      ["pool.timed-out"]. *)
val map_results :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?retryable:(exn -> bool) ->
  ('a -> 'b) ->
  'a list ->
  ('b, Task_failure.t) result list

(** [map ?jobs f xs] is [List.map f xs] computed by a pool of [jobs]
    domains (default [default_jobs ()]; never more than
    [List.length xs]).  [jobs = 1] runs sequentially in the calling
    domain with no pool at all.  Results are in input order.  If one or
    more applications of [f] raise, the remaining tasks still run and
    the exception of the earliest failed *input* is re-raised with its
    original backtrace. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce ?jobs ~map ~reduce ~init xs] maps over the pool, then
    folds the results left-to-right in input order:
    [List.fold_left reduce init (map ?jobs map xs)] — deterministic
    even when [reduce] is not commutative. *)
val map_reduce :
  ?jobs:int ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
