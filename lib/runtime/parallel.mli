(** A fixed-size Domain worker pool for the version sweep.

    The sweep of Table 6.2 is embarrassingly parallel — every
    (benchmark, version) cell builds, estimates and verifies
    independently — so the pool is deliberately simple: an atomic
    work-queue index over an immutable input array, one worker per
    domain, results written to disjoint slots.  Results always come
    back in input order, and an exception raised by a task is captured
    with its backtrace and re-raised in the caller (the input-order
    first one wins), so [map] is observably [List.map] — only faster.

    Tasks must not touch shared mutable state; every pass in this
    repository is pure (all its refs are function-local), which is what
    makes the fan-out sound. *)

(** The environment variable consulted by [default_jobs]: ["UAS_JOBS"]. *)
val jobs_env_var : string

(** Pool size: [$UAS_JOBS] when set, [Domain.recommended_domain_count]
    otherwise.
    @raise Invalid_argument when [$UAS_JOBS] is not a positive
    integer. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] is [List.map f xs] computed by a pool of [jobs]
    domains (default [default_jobs ()]; never more than
    [List.length xs]).  [jobs = 1] runs sequentially in the calling
    domain with no pool at all.  Results are in input order.  If one or
    more applications of [f] raise, the remaining tasks still run and
    the exception of the earliest failed *input* is re-raised with its
    original backtrace. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce ?jobs ~map ~reduce ~init xs] maps over the pool, then
    folds the results left-to-right in input order:
    [List.fold_left reduce init (map ?jobs map xs)] — deterministic
    even when [reduce] is not commutative. *)
val map_reduce :
  ?jobs:int ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
