(** Shared validation of the supervision budget flags.

    [--task-timeout], [--retries] and the daemon budgets
    ([--request-budget], [--drain-timeout]) are parsed by every CLI
    through this one module, so a nonsensical value (0, negative, NaN,
    infinite, absurdly large) is rejected with the same structured
    diagnostic everywhere — the diagnostic always names the valid
    range, matching the [UAS_JOBS]/[UAS_FAULT] precedent.

    All functions take the flag name being validated ([~flag]) so the
    message points at the exact spelling the user typed
    ([--task-timeout] vs [--request-budget] vs [UAS_TIMEOUT]). *)

(** Upper bound accepted for any wall budget: one day, in seconds. *)
val timeout_max_s : float

(** Upper bound accepted for [--retries]. *)
val retries_max : int

(** Human rendering of the valid ranges (for help strings). *)
val timeout_range : string

val retries_range : string

(** Accepts finite [t] with [0 < t <= timeout_max_s]. *)
val check_timeout : flag:string -> float -> (float, string) result

(** {!check_timeout} after parsing; a non-numeric string is its own
    diagnostic. *)
val timeout_of_string : flag:string -> string -> (float, string) result

(** Accepts [0 <= n <= retries_max]. *)
val check_retries : flag:string -> int -> (int, string) result

val retries_of_string : flag:string -> string -> (int, string) result
