(* A fixed-size Domain worker pool with deterministic, input-ordered
   results and optional supervision.  See the interface for the
   contract; the implementation notes that matter:

   - work distribution is a single [Atomic] fetch-and-add over the
     input array, so domains never contend on anything but the index;
   - each result lands in its own [Atomic] slot, resolved exactly once
     by a compare-and-set from [Pending] — a worker that finishes a
     task the watchdog already marked [Timed_out] loses the race and
     its late result is discarded;
   - the watchdog is one extra domain, spawned only when a wall budget
     is requested.  It polls each worker's published (task, start-time)
     pair, marks overrunners [Timed_out] and raises the worker's
     cancellation flag so cooperative code (the fault harness's stall,
     long-running passes that poll [Fault.cancel_requested]) can bail
     out.  A task that ignores cancellation costs its worker, never the
     pool: remaining tasks drain through the other workers and the
     stuck domain is abandoned at exit instead of joined;
   - a retryable failure (by default: an injected fault) is retried up
     to [retries] times with exponential backoff before the task is
     declared failed. *)

let jobs_env_var = "UAS_JOBS"

let default_jobs_result () =
  match Sys.getenv_opt jobs_env_var with
  | None -> Ok (Domain.recommended_domain_count ())
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
      Error
        (Printf.sprintf "%s must be a positive integer (got %S)" jobs_env_var
           s))

let default_jobs () =
  match default_jobs_result () with Ok n -> n | Error m -> invalid_arg m

module Task_failure = struct
  type t =
    | Raised of {
        exn : exn;
        backtrace : Printexc.raw_backtrace;
        attempts : int;
      }
    | Timed_out of { elapsed_s : float; budget_s : float }

  let to_message = function
    | Raised { exn; attempts; _ } ->
      if attempts > 1 then
        Printf.sprintf "task failed after %d attempts: %s" attempts
          (Printexc.to_string exn)
      else Printf.sprintf "task failed: %s" (Printexc.to_string exn)
    | Timed_out { elapsed_s; budget_s } ->
      Printf.sprintf "task timed out after %.2fs (budget %.2fs)" elapsed_s
        budget_s

  let pp ppf t = Fmt.string ppf (to_message t)
end

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of Task_failure.t

let slot_resolved s = match s with Pending -> false | Done _ | Failed _ -> true

let site = "parallel.task"

(* One attempt cycle for one input: the fault-injection site, then the
   task itself, retried while the failure is retryable. *)
let run_task ~retries ~retry_backoff_s ~retryable f x ~label :
    ('b, Task_failure.t) result =
  let rec attempt k =
    match
      Fault.raise_if_armed ~label site;
      f x
    with
    | v -> Ok v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if k <= retries && retryable e then begin
        Instrument.incr "pool.retries";
        if retry_backoff_s > 0.0 then
          Unix.sleepf (retry_backoff_s *. float_of_int (1 lsl (k - 1)));
        attempt (k + 1)
      end
      else Error (Task_failure.Raised { exn = e; backtrace = bt; attempts = k })
  in
  attempt 1

let map_results ?jobs ?timeout_s ?(retries = 0) ?(retry_backoff_s = 0.01)
    ?(retryable = Fault.is_injected) (f : 'a -> 'b) (xs : 'a list) :
    ('b, Task_failure.t) result list =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map_results: jobs must be >= 1";
  if retries < 0 then invalid_arg "Parallel.map_results: retries must be >= 0";
  let run_task = run_task ~retries ~retry_backoff_s ~retryable f in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if min jobs n <= 1 && timeout_s = None then
    (* sequential, unsupervised: no pool, no watchdog, no atomics *)
    List.mapi (fun i x -> run_task x ~label:(string_of_int i)) xs
  else begin
    let workers = min jobs n in
    let slots = Array.init n (fun _ -> Atomic.make Pending) in
    let next = Atomic.make 0 in
    (* per-worker supervision state: the running (task, start) pair the
       watchdog polls, the cancellation flag it raises, and the
       completion flag the join phase waits on *)
    let current = Array.init workers (fun _ -> Atomic.make None) in
    let cancels = Array.init workers (fun _ -> Atomic.make false) in
    let finished = Array.init workers (fun _ -> Atomic.make false) in
    let worker w () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Atomic.set cancels.(w) false;
          Fault.set_cancel (Some cancels.(w));
          Atomic.set current.(w) (Some (i, Unix.gettimeofday ()));
          let outcome = run_task items.(i) ~label:(string_of_int i) in
          Atomic.set current.(w) None;
          Fault.set_cancel None;
          let resolved =
            match outcome with Ok v -> Done v | Error tf -> Failed tf
          in
          (* the watchdog may have resolved the slot [Timed_out] while
             we ran: first write wins, a late result is dropped *)
          ignore (Atomic.compare_and_set slots.(i) Pending resolved);
          go ()
        end
      in
      go ();
      Atomic.set finished.(w) true
    in
    let stop_watchdog = Atomic.make false in
    let watchdog =
      match timeout_s with
      | None -> None
      | Some budget_s ->
        Some
          (Domain.spawn (fun () ->
               let poll = Float.min 0.005 (Float.max 0.001 (budget_s /. 4.0)) in
               while not (Atomic.get stop_watchdog) do
                 Unix.sleepf poll;
                 let now = Unix.gettimeofday () in
                 Array.iteri
                   (fun w cur ->
                     match Atomic.get cur with
                     | Some (i, t0) when now -. t0 > budget_s ->
                       if
                         Atomic.compare_and_set slots.(i) Pending
                           (Failed
                              (Task_failure.Timed_out
                                 { elapsed_s = now -. t0; budget_s }))
                       then begin
                         Instrument.incr "pool.timed-out";
                         Atomic.set cancels.(w) true
                       end
                     | _ -> ())
                   current
               done))
    in
    let helpers =
      List.init (workers - 1) (fun k -> (k + 1, Domain.spawn (worker (k + 1))))
    in
    worker 0 ();
    (match watchdog with
    | None ->
      (* unsupervised: every worker terminates (tasks may raise but not
         stall), so a plain join drains the pool *)
      List.iter (fun (_, d) -> Domain.join d) helpers
    | Some wd ->
      (* supervised: wait for every slot to resolve — each Pending slot
         belongs to a running worker, which either finishes it or gets
         timed out by the watchdog — then join the workers that
         completed and abandon any that ignored cancellation *)
      let all_resolved () =
        Array.for_all (fun s -> slot_resolved (Atomic.get s)) slots
      in
      while not (all_resolved ()) do
        Unix.sleepf 0.001
      done;
      List.iter
        (fun (w, d) ->
          let deadline = Unix.gettimeofday () +. 0.5 in
          let rec wait_join () =
            if Atomic.get finished.(w) then Domain.join d
            else if Unix.gettimeofday () < deadline then begin
              Unix.sleepf 0.002;
              wait_join ()
            end
            else
              (* stuck past its budget and deaf to cancellation: the
                 domain is leaked rather than hanging the pool *)
              Instrument.incr "pool.abandoned-workers"
          in
          wait_join ())
        helpers;
      Atomic.set stop_watchdog true;
      Domain.join wd);
    (match watchdog with
    | Some _ -> ()
    | None -> Atomic.set stop_watchdog true);
    List.init n (fun i ->
        match Atomic.get slots.(i) with
        | Done v -> Ok v
        | Failed tf -> Error tf
        | Pending -> assert false)
  end

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let results = map_results ?jobs f xs in
  (* fail like a sequential run: the earliest failed input's exception,
     with its original backtrace *)
  List.iter
    (function
      | Error (Task_failure.Raised { exn; backtrace; _ }) ->
        Printexc.raise_with_backtrace exn backtrace
      | Error (Task_failure.Timed_out _ as tf) ->
        (* unreachable: [map] never sets a wall budget *)
        failwith (Task_failure.to_message tf)
      | Ok _ -> ())
    results;
  List.map (function Ok v -> v | Error _ -> assert false) results

let map_reduce ?jobs ~map:fm ~reduce ~init xs =
  List.fold_left reduce init (map ?jobs fm xs)
