(* A fixed-size Domain worker pool with deterministic, input-ordered
   results.  See the interface for the contract; the implementation
   notes that matter:

   - work distribution is a single [Atomic] fetch-and-add over the
     input array, so domains never contend on anything but the index;
   - each result lands in its own slot of a preallocated array, and
     [Domain.join] provides the happens-before edge that makes those
     writes visible to the caller — no locks needed;
   - exceptions are captured per-slot with their backtrace and the
     input-order first one is re-raised after the pool drains, so a
     parallel run fails with the same exception a sequential run
     would. *)

let jobs_env_var = "UAS_JOBS"

let default_jobs () =
  match Sys.getenv_opt jobs_env_var with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "%s must be a positive integer (got %S)" jobs_env_var
           s))

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map: jobs must be >= 1";
  let items = Array.of_list xs in
  let n = Array.length items in
  if min jobs n <= 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          | v -> results.(i) <- Done v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(i) <- Failed (e, bt));
          go ()
        end
      in
      go ()
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Done v -> v
        | Pending | Failed _ -> assert false)
  end

let map_reduce ?jobs ~map:fm ~reduce ~init xs =
  List.fold_left reduce init (map ?jobs fm xs)
