(** Deterministic fault injection for the compilation pipeline.

    A fault {e plan} is a comma-separated list of specs:

    {v site[=label]:kind:nth v}

    The [nth] (1-based) matching hit of the named injection site fires
    the fault, exactly once; counting is per spec and purely
    counter-based — no seeds, no randomness — so a plan replays exactly
    on a sequential run.  A spec may pin a [label]: it then matches
    only hits whose own label equals it, or hits made inside a
    {!with_scope} frame carrying it (the sweep engine opens one scope
    per (benchmark, version) cell, e.g. ["Skipjack-mem/squash(4)"]),
    which makes a fault land on one specific cell at any pool size.

    Sites wired through the stack: [parallel.task] (label: input
    index), [pass.run] (label: pass name), [rewrite.apply] (label:
    rewrite name), [interp.run] (label: interpreter tier),
    [store.read] and [store.write] (label: artifact kind — [schedule],
    [exact], [report], [plan-row]).  The store sites are absorbed
    inside {!Uas_runtime.Store}: a read fault classifies the lookup as
    [Bad] (a miss plus a [Cu] incident, then recomputation), a write
    [raise]/[stall] fails the save, and a write [corrupt] poisons the
    entry on disk under a truthful header so the {e next} read detects
    the checksum mismatch — proving a poisoned cache can never change
    an answer.

    Kinds: [raise] throws {!Injected} at the site; [stall] spins
    cooperatively until a pool watchdog cancels the task (or a cap
    expires) — at the interpreter site it instead exhausts the fuel
    budget, surfacing as [Out_of_fuel]; [corrupt] makes the site
    return a deterministically-perturbed result (sites that have
    nothing to corrupt treat it as [raise]).

    The plan comes from the [UAS_FAULT] environment variable (armed at
    program start) or a CLI [--fault] flag ({!arm}). *)

(** The environment variable consulted at startup: ["UAS_FAULT"]. *)
val env_var : string

type kind = Raise | Stall | Corrupt

val kind_name : kind -> string
val kind_of_string : string -> kind option

(** The exception a fired [raise]/[stall] spec throws.  The pass
    runner's diagnostics layer renders it, so an injected fault
    surfaces as a structured [Diag] — never a backtrace. *)
exception Injected of { site : string; kind : kind }

val is_injected : exn -> bool

(** Parse and install a plan, replacing any armed one (hit counters
    restart).  [Error] describes the first malformed spec. *)
val arm : string -> (unit, string) result

(** Drop the armed plan (tests). *)
val clear : unit -> unit

(** The armed plan string, when one is installed. *)
val plan : unit -> string option

(** Is any spec armed?  (Cheap; sites bail out immediately when not.) *)
val active : unit -> bool

(** The parse error of a malformed [UAS_FAULT] environment value, if
    there was one at startup.  Module initialization never crashes; the
    CLIs check this and exit 1 with the message. *)
val env_error : unit -> string option

(** {2 Scopes and cancellation (domain-local)} *)

(** [with_scope label f] runs [f] with [label] pushed on the calling
    domain's scope stack; spec labels match active scopes. *)
val with_scope : string -> (unit -> 'a) -> 'a

(** The calling domain's scope stack, innermost first. *)
val scopes : unit -> string list

(** Install (or clear) the calling domain's cancellation flag — set by
    the {!Parallel} pool around each task so its watchdog can cancel a
    cooperative {!stall}. *)
val set_cancel : bool Atomic.t option -> unit

(** Has the pool watchdog cancelled the calling domain's current
    task? *)
val cancel_requested : unit -> bool

(** {2 Sites} *)

(** [hit ?label site] advances every matching spec's counter and
    returns the kind to inject when one fired.  [None] means proceed
    normally (the overwhelmingly common case: one list check). *)
val hit : ?label:string -> string -> kind option

(** [raise_if_armed ?label site] is {!hit} for sites that cannot act on
    [Corrupt]: [raise]/[corrupt] throw {!Injected}, [stall] spins via
    {!stall} first. *)
val raise_if_armed : ?label:string -> string -> unit

(** Spin until {!cancel_requested} or the stall cap (default 1s)
    expires, then raise {!Injected} with kind [Stall].  Sleeps in 2ms
    slices, so a watchdog-cancelled stall ends promptly. *)
val stall : site:string -> unit -> 'a

(** Override the unsupervised-stall give-up cap, in seconds (tests). *)
val set_stall_cap : float -> unit
