(** Per-pass timing spans and counters for the sweep engine.

    Off by default: a disabled [span] is a direct call with no clock
    read, so instrumentation can stay compiled into the hot passes.
    When enabled (the [--timings] flag of bench/main.exe and
    nimblec), every span records wall-clock time into a registry
    shared by all pool domains and guarded by a single mutex — spans
    only lock on entry/exit, never during the timed work.

    The {!Uas_pass.Pass} runner names its spans [pass.<name>] — one per
    pipeline pass ([pass.loop-nest], [pass.squash], [pass.jam],
    [pass.dfg-build], [pass.schedule], [pass.estimate], plus
    [pass.verify] around interpreter replay).  The estimator's internal
    [dfg-build]/[schedule]/[estimate] spans remain for finer-grained
    attribution, and the compilation unit publishes
    [cu.analysis-hit]/[cu.analysis-miss] counters. *)

(** Record spans and counters from now on ([true]) or make them
    no-ops ([false], the initial state). *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** [span name f] runs [f ()]; when enabled, its wall-clock duration is
    added to the stats of [name] (also on exception). *)
val span : string -> (unit -> 'a) -> 'a

(** [incr ?by name] bumps counter [name] (default [by = 1]); a no-op
    when disabled. *)
val incr : ?by:int -> string -> unit

(** Drop all recorded spans and counters. *)
val reset : unit -> unit

type span_stat = {
  calls : int;
  total_s : float;  (** summed wall-clock seconds *)
  max_s : float;  (** longest single call *)
}

(** Snapshot of every recorded span, most total time first (ties by
    name). *)
val spans : unit -> (string * span_stat) list

(** Snapshot of every counter, by name. *)
val counters : unit -> (string * int) list

(** The summary table: one row per span (calls, total, mean, max in
    milliseconds) followed by the counters. *)
val pp_summary : unit Fmt.t

(** The same data as a JSON object:
    [{"spans": {name: {"calls": n, "total_ms": x, "mean_ms": x,
    "max_ms": x}}, "counters": {name: n}}]. *)
val to_json : unit -> string

(** Escape a string for embedding in a JSON string literal (also used
    by {!Trajectory}). *)
val json_escape : string -> string
