(* keep in sync with (version ...) in dune-project *)
let package_version = "0.7.0"

let version_string =
  Printf.sprintf "unroll_and_squash %s (trajectory schema v%d)"
    package_version Trajectory.version
