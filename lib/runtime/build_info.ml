(* keep in sync with (version ...) in dune-project *)
let package_version = "0.8.0"

let version_string =
  Printf.sprintf "unroll_and_squash %s (trajectory schema v%d)"
    package_version Trajectory.version

(* ---------- native-JIT toolchain identity ---------- *)

let jit_ocamlfind_env_var = "UAS_JIT_OCAMLFIND"

let jit_ocamlfind () =
  match Sys.getenv_opt jit_ocamlfind_env_var with
  | Some s when String.trim s <> "" -> s
  | _ -> "ocamlfind"

let jit_compile_flags = "-shared -w -a -package fmt"
let fingerprint_mutex = Mutex.create ()
let fingerprint_memo : string option ref = ref None

(* Probe `ocamlfind ocamlopt -version` once per process.  The result
   is folded into the cmxs store key, so a toolchain upgrade (or an
   unavailable toolchain) can never serve a stale compiled module. *)
let compiler_fingerprint () =
  Mutex.protect fingerprint_mutex @@ fun () ->
  match !fingerprint_memo with
  | Some f -> f
  | None ->
    let version =
      let tmp = Filename.temp_file "uas-ocamlopt" ".ver" in
      Fun.protect ~finally:(fun () ->
          try Sys.remove tmp with Sys_error _ -> ())
      @@ fun () ->
      let cmd =
        Printf.sprintf "%s ocamlopt -version > %s 2>/dev/null"
          (Filename.quote (jit_ocamlfind ()))
          (Filename.quote tmp)
      in
      if Sys.command cmd <> 0 then None
      else
        match In_channel.with_open_bin tmp In_channel.input_all with
        | s -> ( match String.trim s with "" -> None | v -> Some v)
        | exception Sys_error _ -> None
    in
    let f =
      match version with
      | Some v -> Printf.sprintf "ocamlopt %s %s" v jit_compile_flags
      | None -> Printf.sprintf "ocamlopt unavailable %s" jit_compile_flags
    in
    fingerprint_memo := Some f;
    f

let jit_version_line () = "jit: " ^ compiler_fingerprint ()
