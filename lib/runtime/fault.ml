(* The deterministic fault-injection registry behind the chaos tests.

   A fault plan is a comma-separated list of specs, each
   [site[=label]:kind:nth]: the [nth] matching hit of the named
   injection site fires the fault of that [kind], exactly once.
   Everything is counter-based — no random number generator anywhere —
   so a plan replays exactly on a sequential run, and a spec whose
   label pins a scope (the sweep engine publishes one scope per
   (benchmark, version) cell) replays exactly at any pool size.

   The registry is written to be armed once (from the environment at
   program start, or from a --fault flag before the run begins) and
   then hit from every domain of the worker pool: the per-spec hit
   counters are atomics, the scope stack and the cancellation flag are
   domain-local. *)

let env_var = "UAS_FAULT"

type kind = Raise | Stall | Corrupt

let kind_name = function
  | Raise -> "raise"
  | Stall -> "stall"
  | Corrupt -> "corrupt"

let kind_of_string = function
  | "raise" -> Some Raise
  | "stall" -> Some Stall
  | "corrupt" -> Some Corrupt
  | _ -> None

type spec = {
  sp_site : string;
  sp_label : string option;
  sp_kind : kind;
  sp_nth : int;
  sp_count : int Atomic.t;  (** matching hits so far *)
}

exception Injected of { site : string; kind : kind }

let () =
  Printexc.register_printer (function
    | Injected { site; kind } ->
      Some
        (Printf.sprintf "injected fault at site %s (kind %s)" site
           (kind_name kind))
    | _ -> None)

let is_injected = function Injected _ -> true | _ -> false

(* ---- the armed plan ---- *)

let specs : spec list ref = ref []
let armed_plan : string option ref = ref None

let parse_spec s : (spec, string) result =
  match String.split_on_char ':' (String.trim s) with
  | [ site_part; kind_s; nth_s ] -> (
    let site, label =
      match String.index_opt site_part '=' with
      | None -> (site_part, None)
      | Some i ->
        ( String.sub site_part 0 i,
          Some (String.sub site_part (i + 1) (String.length site_part - i - 1))
        )
    in
    if String.equal site "" then Error (Printf.sprintf "%S: empty site" s)
    else
      match kind_of_string kind_s with
      | None ->
        Error
          (Printf.sprintf "%S: unknown fault kind %s (raise, stall, corrupt)"
             s kind_s)
      | Some kind -> (
        match int_of_string_opt nth_s with
        | Some nth when nth >= 1 ->
          Ok
            { sp_site = site;
              sp_label = label;
              sp_kind = kind;
              sp_nth = nth;
              sp_count = Atomic.make 0 }
        | Some _ | None ->
          Error (Printf.sprintf "%S: nth must be a positive integer" s)))
  | _ ->
    Error
      (Printf.sprintf "%S: expected site[=label]:kind:nth (kinds: raise, \
                       stall, corrupt)"
         s)

let arm plan : (unit, string) result =
  let parts =
    List.filter
      (fun s -> not (String.equal (String.trim s) ""))
      (String.split_on_char ',' plan)
  in
  if parts = [] then Error "empty fault plan"
  else
    let rec go acc = function
      | [] ->
        specs := List.rev acc;
        armed_plan := Some plan;
        Ok ()
      | p :: rest -> (
        match parse_spec p with
        | Ok sp -> go (sp :: acc) rest
        | Error m -> Error m)
    in
    go [] parts

let clear () =
  specs := [];
  armed_plan := None

let plan () = !armed_plan
let active () = !specs <> []

(* The environment plan is armed at module-initialization time; a
   malformed value is remembered (not raised — module init must not
   crash) for the CLIs to render as a user error. *)
let env_arm_error : string option ref = ref None

let () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some plan -> (
    match arm plan with Ok () -> () | Error m -> env_arm_error := Some m)

let env_error () = !env_arm_error

(* ---- domain-local scope and cancellation ---- *)

let scope_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_scope label f =
  let old = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key (label :: old);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key old) f

let scopes () = Domain.DLS.get scope_key

let cancel_key : bool Atomic.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_cancel flag = Domain.DLS.set cancel_key flag

let cancel_requested () =
  match Domain.DLS.get cancel_key with
  | Some flag -> Atomic.get flag
  | None -> false

(* ---- hitting a site ---- *)

let matches sp ~site ~label =
  String.equal sp.sp_site site
  &&
  match sp.sp_label with
  | None -> true
  | Some want ->
    (match label with Some got -> String.equal want got | None -> false)
    || List.exists (String.equal want) (scopes ())

let hit ?label site : kind option =
  match !specs with
  | [] -> None
  | sps ->
    List.find_map
      (fun sp ->
        if matches sp ~site ~label then
          let n = Atomic.fetch_and_add sp.sp_count 1 + 1 in
          if n = sp.sp_nth then Some sp.sp_kind else None
        else None)
      sps

(* ---- the stall fault ---- *)

let stall_cap = ref 1.0
let set_stall_cap s = stall_cap := Float.max 0.0 s

(* Spin cooperatively: give a pool watchdog the chance to mark the task
   [Timed_out] and cancel us; without one, give up after the cap so an
   unsupervised run degrades to an ordinary injected failure instead of
   hanging. *)
let stall ~site () =
  let t0 = Unix.gettimeofday () in
  let rec spin () =
    if cancel_requested () || Unix.gettimeofday () -. t0 >= !stall_cap then
      raise (Injected { site; kind = Stall })
    else begin
      Unix.sleepf 0.002;
      spin ()
    end
  in
  spin ()

(* The one-line site helper for code that cannot act on [Corrupt]
   (there is nothing generic to corrupt): every kind degenerates to an
   exception, except [Stall], which spins first. *)
let raise_if_armed ?label site =
  match hit ?label site with
  | None -> ()
  | Some Stall -> stall ~site ()
  | Some ((Raise | Corrupt) as k) -> raise (Injected { site; kind = k })
