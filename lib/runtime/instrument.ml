(* Thread-safe pass instrumentation.  The registry is two hashtables
   behind one mutex; entries are immutable records replaced wholesale,
   so a snapshot under the lock is consistent without copying.  The
   enabled flag is an [Atomic] read on the fast path — a disabled span
   costs one load. *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

type span_stat = { calls : int; total_s : float; max_s : float }

let lock = Mutex.create ()
let span_tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 32
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record name dt =
  with_lock (fun () ->
      let prev =
        match Hashtbl.find_opt span_tbl name with
        | Some s -> s
        | None -> { calls = 0; total_s = 0.0; max_s = 0.0 }
      in
      Hashtbl.replace span_tbl name
        { calls = prev.calls + 1;
          total_s = prev.total_s +. dt;
          max_s = Float.max prev.max_s dt })

let span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> record name (Unix.gettimeofday () -. t0)) f
  end

let incr ?(by = 1) name =
  if Atomic.get enabled then
    with_lock (fun () ->
        let prev =
          match Hashtbl.find_opt counter_tbl name with Some v -> v | None -> 0
        in
        Hashtbl.replace counter_tbl name (prev + by))

let reset () =
  with_lock (fun () ->
      Hashtbl.reset span_tbl;
      Hashtbl.reset counter_tbl)

let spans () =
  with_lock (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) span_tbl [])
  |> List.sort (fun (na, a) (nb, b) ->
         match Float.compare b.total_s a.total_s with
         | 0 -> String.compare na nb
         | c -> c)

let counters () =
  with_lock (fun () ->
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) counter_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_summary ppf () =
  let sp = spans () and cs = counters () in
  if sp = [] && cs = [] then
    Fmt.pf ppf "(no instrumentation recorded — was --timings on?)@\n"
  else begin
    if sp <> [] then begin
      Fmt.pf ppf "%-24s %8s %12s %12s %12s@\n" "span" "calls" "total(ms)"
        "mean(ms)" "max(ms)";
      List.iter
        (fun (name, s) ->
          Fmt.pf ppf "%-24s %8d %12.2f %12.3f %12.3f@\n" name s.calls
            (1000.0 *. s.total_s)
            (1000.0 *. s.total_s /. float_of_int (max 1 s.calls))
            (1000.0 *. s.max_s))
        sp
    end;
    if cs <> [] then begin
      Fmt.pf ppf "%-24s %8s@\n" "counter" "value";
      List.iter (fun (name, v) -> Fmt.pf ppf "%-24s %8d@\n" name v) cs
    end
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  let span_fields =
    List.map
      (fun (name, s) ->
        Printf.sprintf
          "\"%s\":{\"calls\":%d,\"total_ms\":%.3f,\"mean_ms\":%.4f,\"max_ms\":%.4f}"
          (json_escape name) s.calls
          (1000.0 *. s.total_s)
          (1000.0 *. s.total_s /. float_of_int (max 1 s.calls))
          (1000.0 *. s.max_s))
      (spans ())
  in
  let counter_fields =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\":%d" (json_escape name) v)
      (counters ())
  in
  Printf.sprintf "{\"spans\":{%s},\"counters\":{%s}}"
    (String.concat "," span_fields)
    (String.concat "," counter_fields)
