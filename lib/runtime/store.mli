(** Persistent content-addressed artifact store.

    Expensive compilation artifacts (kernel schedules, exact-II
    certificates, hardware estimates, planner rows) are serialized and
    keyed by a content hash of their full provenance: canonical program
    text, rewrite trail, tool parameters, cost-model version and the
    store format version.  Same key, same bytes — so a warm cache run
    is byte-identical to a cold one, and a stale or corrupted entry can
    only ever be a {e miss} (plus a [Cu] incident), never a wrong
    answer.

    On-disk layout under the store directory:

    {v
    <dir>/objects/<kind>/<k0k1>/<key>   one artifact per file
    <dir>/tmp/                          write staging (rename target)
    v}

    Each object file carries a small header (format version, kind, key,
    payload checksum, payload length) followed by the payload; {!read}
    re-validates all of it and classifies any mismatch as {!Bad}.
    Writes go to a unique temp file first and are published with
    [Sys.rename], so concurrent writers and crashed runs never leave a
    torn entry.  When the store grows past its byte budget an eviction
    sweep deletes oldest-modified objects first.

    Multi-process use (a daemon plus concurrent CLIs on one directory)
    is serialized by an advisory fcntl lock on [<dir>/lock]: publishes
    hold it briefly (blocking) around the rename, eviction tries it
    non-blocking and — losing the race to another process — degrades to
    skipping the sweep with an incident
    ({!stats.st_evict_skipped}, counter [store.evict-skipped]), never
    an error and never a half-removed entry.

    Fault injection: the [store.read] and [store.write] sites (label =
    artifact kind) are handled {e inside} this module — an injected
    read fault surfaces as {!Bad}, an injected write fault as [Error],
    and nothing ever escapes as an exception. *)

(** The environment variable naming the store directory: ["UAS_CACHE"].
    CLIs consult it when no [--cache] flag is given. *)
val env_var : string

(** The environment variable overriding the byte budget:
    ["UAS_CACHE_MAX_BYTES"]. *)
val max_bytes_env_var : string

(** On-disk entry format version; part of every cache key, so a format
    bump invalidates the whole store without deleting it. *)
val format_version : int

type t

(** [open_dir ?max_bytes dir] creates [dir] (and its [objects/] and
    [tmp/] subdirectories) if needed and scans the existing objects to
    seed the size accounting.  [max_bytes] defaults to
    [UAS_CACHE_MAX_BYTES] or 256 MiB.  [Error] renders any filesystem
    or malformed-budget problem as one line. *)
val open_dir : ?max_bytes:int -> string -> (t, string) result

(** The store directory. *)
val dir : t -> string

(** The advisory lock file serializing eviction and publish across
    processes: [<dir>/lock].  Exposed so tests (and external tooling)
    can contend for it. *)
val lock_file : t -> string

(** [key parts] is the content hash (MD5, hex) of the parts joined with
    a NUL separator — the one key-construction function, so every
    caller hashes provenance the same way. *)
val key : string list -> string

type read_result =
  | Hit of string  (** the validated payload *)
  | Miss  (** no entry under this key *)
  | Bad of string
      (** an entry exists but failed validation (torn write, flipped
          bits, header/kind/key mismatch, injected fault); callers must
          treat it as a miss and record an incident *)

val read : t -> kind:string -> key:string -> read_result

(** [write t ~kind ~key payload] publishes the entry atomically
    (write-then-rename) and runs the eviction sweep when over budget.
    [Error] (filesystem trouble or an injected fault) means the entry
    was not (correctly) published; callers degrade to an incident. *)
val write : t -> kind:string -> key:string -> string -> (unit, string) result

(** {2 Statistics}

    Always on (plain atomic counters, no instrumentation gate) so the
    CLIs can report hit rates and per-request latency even on clean
    runs. *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_bad : int;  (** entries that failed validation *)
  st_writes : int;
  st_evicted : int;
  st_evict_skipped : int;
      (** eviction sweeps skipped because another process held the
          store lock — each is an incident, never an error *)
  st_read_s : float;  (** cumulative wall-clock spent in {!read} *)
  st_write_s : float;  (** cumulative wall-clock spent in {!write} *)
}

val stats : t -> stats

(** Walk the object tree and return [(entries, bytes)] — the restart
    verification pass [nimbled] runs after reopening a store. *)
val scan : t -> int * int

(** Run one eviction sweep right now, through the same cross-process
    trylock as the over-budget write path: when another process holds
    the store lock the sweep is skipped with an incident
    ([st_evict_skipped], counter ["store.evict-skipped"]), never an
    error. *)
val evict_now : t -> unit

(** Hits over all lookups ([hits + misses + bad]); [0.] when none. *)
val hit_rate : stats -> float

(** The stats as a JSON object (trajectory ["store"] key; the
    [evict_skipped] field arrived with schema v7). *)
val stats_json : t -> string

(** One human line for stderr: hit rate, lookups, mean latencies. *)
val pp_stats : Format.formatter -> t -> unit

(** {2 The installed store}

    Process-global, installed once at CLI startup before any worker
    domain spawns; [Cu] load/save hooks consult it. *)

val install : t -> unit
val installed : unit -> t option

(** Remove the installed store (tests). *)
val uninstall : unit -> unit

(** Verify mode ([--cache-verify]): loads always recompute, and saves
    compare the fresh artifact against the cached bytes — a mismatch is
    surfaced by the caller as an incident and the entry is replaced. *)
val set_verify : bool -> unit

val verify_mode : unit -> bool
