(* The persistent content-addressed artifact store behind UAS_CACHE.

   Design constraints, in order:

   1. Never a wrong answer.  Every entry carries its own header (format
      version, kind, key, MD5 of the payload, payload length) and read
      re-validates all of it; anything off — torn write, flipped bits,
      a different format version, an injected fault — classifies as
      [Bad], which callers must treat as a miss plus an incident.  The
      payload itself is additionally schema-versioned by the caller
      (the serialized form's own tag) and version-keyed (the key hashes
      the format version and the cost-model version), so stale entries
      can't even be looked up.

   2. Never a torn entry.  Writes stage into <dir>/tmp/ under a name
      unique per (pid, domain, counter) and publish with Sys.rename —
      atomic on POSIX within one filesystem — so concurrent writers
      and killed runs leave either the old entry, the new entry, or
      nothing.

   3. Never an escaped exception.  All filesystem trouble and both
      fault-injection sites (store.read / store.write, label = artifact
      kind) are absorbed here: reads degrade to [Bad], writes to
      [Error].  The degradation policy (PR 5) then keeps the trouble in
      the cell that hit it.

   4. Bounded size.  An atomic running total (seeded by a scan at
      open) triggers a mutex-guarded eviction sweep when a write pushes
      the store past its budget; the sweep deletes oldest-mtime objects
      until the store is back under 7/8 of the budget.

   5. Multi-process safe.  A daemon and a concurrent CLI may share one
      store directory, so eviction and write-publish are serialized
      across processes by an advisory fcntl lock on <dir>/lock: the
      publisher holds it (blocking, briefly) around rename+accounting,
      the sweeper tries it non-blocking and — losing the race — skips
      the sweep with an incident counter instead of racing a foreign
      eviction into a half-removed entry.  fcntl locks are per-process,
      so all lockf calls additionally run under one in-process mutex
      (one thread's unlock must not drop a lock another thread of this
      process still relies on). *)

let env_var = "UAS_CACHE"
let max_bytes_env_var = "UAS_CACHE_MAX_BYTES"
let format_version = 1
let default_max_bytes = 256 * 1024 * 1024

type t = {
  s_dir : string;
  s_max_bytes : int;
  total_bytes : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  bad : int Atomic.t;
  writes : int Atomic.t;
  evicted : int Atomic.t;
  evict_skipped : int Atomic.t;
      (** sweeps abandoned because another process held the store lock *)
  read_us : int Atomic.t;  (** cumulative read latency, microseconds *)
  write_us : int Atomic.t;
  evict_lock : Mutex.t;
  lock_fd : Unix.file_descr option;  (** <dir>/lock; [None] degrades *)
  lockf_mutex : Mutex.t;  (** serializes every lockf on [lock_fd] *)
  tmp_counter : int Atomic.t;
}

let dir t = t.s_dir
let lock_file t = Filename.concat t.s_dir "lock"
let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* ---- paths ---- *)

let objects_dir t = Filename.concat t.s_dir "objects"
let tmp_dir t = Filename.concat t.s_dir "tmp"

let object_path t ~kind ~key =
  (* two-level fan-out on the key prefix keeps directories small *)
  let prefix = if String.length key >= 2 then String.sub key 0 2 else key in
  Filename.concat
    (Filename.concat (objects_dir t) kind)
    (Filename.concat prefix key)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if String.length parent < String.length path then mkdir_p parent;
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---- opening ---- *)

(* walk a directory tree, calling [f path size mtime] on each regular
   file; missing directories are fine (concurrent eviction) *)
let rec walk_files dirpath f =
  let entries = try Sys.readdir dirpath with Sys_error _ -> [||] in
  Array.iter
    (fun name ->
      let path = Filename.concat dirpath name in
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
        f path st_size st_mtime
      | { Unix.st_kind = Unix.S_DIR; _ } -> walk_files path f
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    entries

let open_dir ?max_bytes dir =
  let budget =
    match max_bytes with
    | Some n -> Ok n
    | None -> (
      match Sys.getenv_opt max_bytes_env_var with
      | None -> Ok default_max_bytes
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> Ok n
        | Some _ | None ->
          Error
            (Printf.sprintf "%s=%S: expected a positive byte count"
               max_bytes_env_var s)))
  in
  match budget with
  | Error _ as e -> e
  | Ok s_max_bytes -> (
    match
      mkdir_p dir;
      mkdir_p (Filename.concat dir "objects");
      mkdir_p (Filename.concat dir "tmp")
    with
    | () ->
      let initial = ref 0 in
      walk_files (Filename.concat dir "objects") (fun _ size _ ->
          initial := !initial + size);
      let lock_fd =
        (* a store that cannot open its lock file still works — it just
           skips every eviction sweep (counted) instead of risking a
           cross-process race *)
        try
          Some
            (Unix.openfile (Filename.concat dir "lock")
               [ Unix.O_CREAT; Unix.O_RDWR ] 0o644)
        with Unix.Unix_error _ | Sys_error _ -> None
      in
      Ok
        { s_dir = dir;
          s_max_bytes;
          total_bytes = Atomic.make !initial;
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          bad = Atomic.make 0;
          writes = Atomic.make 0;
          evicted = Atomic.make 0;
          evict_skipped = Atomic.make 0;
          read_us = Atomic.make 0;
          write_us = Atomic.make 0;
          evict_lock = Mutex.create ();
          lock_fd;
          lockf_mutex = Mutex.create ();
          tmp_counter = Atomic.make 0 }
    | exception Unix.Unix_error (e, _, p) ->
      Error
        (Printf.sprintf "cannot open cache directory %s: %s: %s" dir p
           (Unix.error_message e))
    | exception Sys_error m ->
      Error (Printf.sprintf "cannot open cache directory %s: %s" dir m))

(* ---- entry encoding ---- *)

let encode ~kind ~key payload =
  Printf.sprintf "uas-store %d\nkind %s\nkey %s\nmd5 %s\nlen %d\n--\n%s"
    format_version kind key
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

(* flip one payload bit: used by the corrupt fault kind (on read, to
   model bit rot; on write, to poison the entry under a truthful
   header) *)
let flip_last_byte s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 1));
    Bytes.to_string b
  end

let decode ~kind ~key contents : (string, string) result =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* header = 5 lines + a "--" separator, then the raw payload *)
  let rec split_lines contents pos acc = function
    | 0 -> Some (List.rev acc, pos)
    | n -> (
      match String.index_from_opt contents pos '\n' with
      | None -> None
      | Some i ->
        split_lines contents (i + 1)
          (String.sub contents pos (i - pos) :: acc)
          (n - 1))
  in
  match split_lines contents 0 [] 6 with
  | None -> fail "truncated header"
  | Some (lines, payload_pos) -> (
    let payload =
      String.sub contents payload_pos (String.length contents - payload_pos)
    in
    match lines with
    | [ magic; kind_l; key_l; md5_l; len_l; "--" ] ->
      if not (String.equal magic (Printf.sprintf "uas-store %d" format_version))
      then fail "format version mismatch (%s)" magic
      else if not (String.equal kind_l ("kind " ^ kind)) then
        fail "kind mismatch (%s)" kind_l
      else if not (String.equal key_l ("key " ^ key)) then
        fail "key mismatch"
      else if
        not (String.equal len_l ("len " ^ string_of_int (String.length payload)))
      then fail "length mismatch (%s, payload %d)" len_l (String.length payload)
      else if
        not
          (String.equal md5_l
             ("md5 " ^ Digest.to_hex (Digest.string payload)))
      then fail "checksum mismatch"
      else Ok payload
    | _ -> fail "malformed header")

(* ---- read ---- *)

type read_result = Hit of string | Miss | Bad of string

let injected_msg site kind =
  Printf.sprintf "injected fault at site %s (kind %s)" site (Fault.kind_name kind)

let read t ~kind ~key =
  let t0 = Unix.gettimeofday () in
  let fire = Fault.hit ~label:kind "store.read" in
  let result =
    match fire with
    | Some Fault.Raise -> Bad (injected_msg "store.read" Fault.Raise)
    | Some Fault.Stall -> (
      try Fault.stall ~site:"store.read" ()
      with Fault.Injected _ -> Bad (injected_msg "store.read" Fault.Stall))
    | (None | Some Fault.Corrupt) as fire -> (
      let path = object_path t ~kind ~key in
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | contents -> (
        let contents =
          match fire with
          | Some Fault.Corrupt -> flip_last_byte contents
          | _ -> contents
        in
        match decode ~kind ~key contents with
        | Ok payload -> Hit payload
        | Error m -> Bad m)
      | exception Sys_error _ -> Miss
      | exception End_of_file -> Bad "truncated entry")
  in
  (match result with
  | Hit _ -> Atomic.incr t.hits
  | Miss -> Atomic.incr t.misses
  | Bad _ -> Atomic.incr t.bad);
  let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  ignore (Atomic.fetch_and_add t.read_us us);
  result

(* ---- cross-process store lock ---- *)

(* [with_file_lock t ~block f] runs [f] under the advisory lock on
   <dir>/lock.  [block = true] (publish path) waits for the lock and,
   with no usable lock fd, degrades to running [f] unlocked — a write
   must never be lost to lock trouble.  [block = false] (eviction
   path) returns [None] instead of waiting: the caller skips the sweep
   and counts the incident.  fcntl locks are per-process, so every
   lockf call is serialized by [lockf_mutex] — otherwise one thread's
   unlock would drop a lock a sibling thread still holds. *)
let with_file_lock t ~block f =
  match t.lock_fd with
  | None -> if block then Some (f ()) else None
  | Some fd ->
    Mutex.lock t.lockf_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lockf_mutex)
      (fun () ->
        let cmd = if block then Unix.F_LOCK else Unix.F_TLOCK in
        match Unix.lockf fd cmd 0 with
        | () ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.lockf fd Unix.F_ULOCK 0
              with Unix.Unix_error _ -> ())
            (fun () -> Some (f ()))
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _)
          when not block ->
          None
        | exception Unix.Unix_error _ ->
          (* lock machinery itself broken: publishes proceed unlocked,
             sweeps skip — same degradation as a missing lock fd *)
          if block then Some (f ()) else None)

(* ---- eviction ---- *)

let sweep_locked t =
  (* re-walk under the lock: the atomic total is only a trigger; the
     sweep works from ground truth *)
  let files = ref [] in
  walk_files (objects_dir t) (fun path size mtime ->
      files := (path, size, mtime) :: !files);
  let files =
    List.sort
      (fun (p1, _, m1) (p2, _, m2) ->
        match Float.compare m1 m2 with
        | 0 -> String.compare p1 p2 (* deterministic ties *)
        | c -> c)
      !files
  in
  let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 files in
  let low_water = t.s_max_bytes / 8 * 7 in
  let remaining = ref total in
  List.iter
    (fun (path, size, _) ->
      if !remaining > low_water then begin
        (try Sys.remove path with Sys_error _ -> ());
        remaining := !remaining - size;
        Atomic.incr t.evicted
      end)
    files;
  Atomic.set t.total_bytes !remaining

let evict_sweep t =
  Mutex.lock t.evict_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.evict_lock)
    (fun () ->
      match with_file_lock t ~block:false (fun () -> sweep_locked t) with
      | Some () -> ()
      | None ->
        (* another process holds the store lock (its own sweep or
           publish in flight): racing it could tear an entry out from
           under a reader, so skip this sweep — the next over-budget
           write retries — and record the incident *)
        Atomic.incr t.evict_skipped;
        Instrument.incr "store.evict-skipped")

(* ---- write ---- *)

let write t ~kind ~key payload =
  let t0 = Unix.gettimeofday () in
  let fire = Fault.hit ~label:kind "store.write" in
  let result =
    match fire with
    | Some Fault.Raise -> Error (injected_msg "store.write" Fault.Raise)
    | Some Fault.Stall -> (
      try Fault.stall ~site:"store.write" ()
      with Fault.Injected _ -> Error (injected_msg "store.write" Fault.Stall))
    | (None | Some Fault.Corrupt) as fire -> (
      let entry = encode ~kind ~key payload in
      let entry =
        (* poison the payload under a truthful header: the entry lands
           on disk, and the next read detects the checksum mismatch *)
        match fire with
        | Some Fault.Corrupt -> flip_last_byte entry
        | _ -> entry
      in
      let dst = object_path t ~kind ~key in
      let tmp =
        Filename.concat (tmp_dir t)
          (Printf.sprintf "w-%d-%d-%d" (Unix.getpid ())
             (Domain.self () :> int)
             (Atomic.fetch_and_add t.tmp_counter 1))
      in
      match
        mkdir_p (Filename.dirname dst);
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc entry);
        (* publish under the cross-process lock so a foreign eviction
           sweep never interleaves with the rename *)
        ignore (with_file_lock t ~block:true (fun () -> Sys.rename tmp dst))
      with
      | () ->
        Atomic.incr t.writes;
        let total =
          Atomic.fetch_and_add t.total_bytes (String.length entry)
          + String.length entry
        in
        if total > t.s_max_bytes then evict_sweep t;
        Ok ()
      | exception Sys_error m ->
        (try Sys.remove tmp with Sys_error _ -> ());
        Error m
      | exception Unix.Unix_error (e, _, p) ->
        (try Sys.remove tmp with Sys_error _ -> ());
        Error (Printf.sprintf "%s: %s" p (Unix.error_message e)))
  in
  let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  ignore (Atomic.fetch_and_add t.write_us us);
  result

(* ---- statistics ---- *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_bad : int;
  st_writes : int;
  st_evicted : int;
  st_evict_skipped : int;
  st_read_s : float;
  st_write_s : float;
}

let stats t =
  { st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_bad = Atomic.get t.bad;
    st_writes = Atomic.get t.writes;
    st_evicted = Atomic.get t.evicted;
    st_evict_skipped = Atomic.get t.evict_skipped;
    st_read_s = float_of_int (Atomic.get t.read_us) /. 1e6;
    st_write_s = float_of_int (Atomic.get t.write_us) /. 1e6 }

(* Run one sweep through the same cross-process trylock as the
   over-budget write path: a maintenance entry point, and the
   deterministic way to exercise the lock-held degradation. *)
let evict_now t = evict_sweep t

(* ---- restart verification ---- *)

let scan t =
  let count = ref 0 and bytes = ref 0 in
  walk_files (objects_dir t) (fun _ size _ ->
      incr count;
      bytes := !bytes + size);
  (!count, !bytes)

let hit_rate st =
  let lookups = st.st_hits + st.st_misses + st.st_bad in
  if lookups = 0 then 0.0
  else float_of_int st.st_hits /. float_of_int lookups

let stats_json t =
  let st = stats t in
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"bad\":%d,\"writes\":%d,\"evicted\":%d,\"evict_skipped\":%d,\"hit_rate\":%.4f,\"read_s\":%.6f,\"write_s\":%.6f}"
    st.st_hits st.st_misses st.st_bad st.st_writes st.st_evicted
    st.st_evict_skipped (hit_rate st) st.st_read_s st.st_write_s

let pp_stats ppf t =
  let st = stats t in
  let lookups = st.st_hits + st.st_misses + st.st_bad in
  let mean_us total n =
    if n = 0 then 0.0 else total *. 1e6 /. float_of_int n
  in
  Format.fprintf ppf
    "artifact store: %d/%d hits (%.1f%%), %d bad, %d writes, %d evicted; \
     mean read %.0f us, mean write %.0f us"
    st.st_hits lookups
    (100.0 *. hit_rate st)
    st.st_bad st.st_writes st.st_evicted
    (mean_us st.st_read_s lookups)
    (mean_us st.st_write_s st.st_writes);
  if st.st_evict_skipped > 0 then
    Format.fprintf ppf ", %d eviction sweep(s) skipped (store lock held)"
      st.st_evict_skipped

(* ---- the installed store ---- *)

(* written once at CLI startup, before the worker pool spawns; workers
   only ever read it *)
let installed_ref : t option ref = ref None
let install s = installed_ref := Some s
let installed () = !installed_ref
let uninstall () = installed_ref := None
let verify_ref = Atomic.make false
let set_verify b = Atomic.set verify_ref b
let verify_mode () = Atomic.get verify_ref
