(** Build identification for the CLIs' [--version] output, so cached
    artifacts and committed JSON snapshots can be traced to a build. *)

(** The opam package version; kept in sync with [(version ...)] in
    [dune-project]. *)
val package_version : string

(** The one-line [--version] string: package name, package version and
    the trajectory JSON schema version. *)
val version_string : string

(** Environment variable overriding the [ocamlfind] binary the native
    JIT tier invokes (default ["ocamlfind"]); pointing it at a
    non-existent command simulates a missing toolchain. *)
val jit_ocamlfind_env_var : string

(** The ocamlfind command the JIT uses, honoring
    {!jit_ocamlfind_env_var}. *)
val jit_ocamlfind : unit -> string

(** The fixed flag set passed to [ocamlfind ocamlopt] when compiling a
    generated kernel to a [.cmxs]. *)
val jit_compile_flags : string

(** The native-compiler fingerprint: [ocamlopt <version> <flags>], or
    [ocamlopt unavailable <flags>] when the toolchain cannot be
    probed.  Memoized per process (the probe forks a subprocess);
    folded into the cmxs store key so a toolchain change invalidates
    cached compiled modules. *)
val compiler_fingerprint : unit -> string

(** The [--version] line describing the JIT toolchain:
    ["jit: " ^ compiler_fingerprint ()]. *)
val jit_version_line : unit -> string
