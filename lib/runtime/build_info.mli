(** Build identification for the CLIs' [--version] output, so cached
    artifacts and committed JSON snapshots can be traced to a build. *)

(** The opam package version; kept in sync with [(version ...)] in
    [dune-project]. *)
val package_version : string

(** The one-line [--version] string: package name, package version and
    the trajectory JSON schema version. *)
val version_string : string
