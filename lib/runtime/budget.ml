(* One validator for the supervision budget flags, shared by nimblec,
   bench/main.exe and nimbled so the three CLIs cannot drift: the same
   nonsensical value (0, negative, NaN, absurdly large) is rejected
   with the same diagnostic everywhere, and the diagnostic always
   names the valid range — the UAS_JOBS / UAS_FAULT precedent. *)

let timeout_max_s = 86_400.0
let retries_max = 100

let timeout_range = Printf.sprintf "finite seconds in (0, %.0f]" timeout_max_s
let retries_range = Printf.sprintf "an integer in [0, %d]" retries_max

let check_timeout ~flag t =
  if Float.is_nan t || not (Float.is_finite t) then
    Error
      (Printf.sprintf "%s %s is not a finite duration; expected %s" flag
         (string_of_float t) timeout_range)
  else if t <= 0.0 || t > timeout_max_s then
    Error
      (Printf.sprintf "%s %g is out of range; expected %s" flag t
         timeout_range)
  else Ok t

let timeout_of_string ~flag s =
  match float_of_string_opt (String.trim s) with
  | None ->
    Error
      (Printf.sprintf "%s %S is not a number; expected %s" flag s
         timeout_range)
  | Some t -> check_timeout ~flag t

let check_retries ~flag n =
  if n < 0 || n > retries_max then
    Error
      (Printf.sprintf "%s %d is out of range; expected %s" flag n
         retries_range)
  else Ok n

let retries_of_string ~flag s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Error
      (Printf.sprintf "%s %S is not an integer; expected %s" flag s
         retries_range)
  | Some n -> check_retries ~flag n
