(** The perf-trajectory document behind [bench/main.exe --json FILE]:
    a schema-stable JSON record of one harness run — per-target
    wall-clock, named metrics (e.g. microbenchmark ns/run), ranked
    planner tables, the interpreter tier and pool size, and the
    {!Instrument} span/counter breakdown.

    Schema (version 7; no timestamps, so snapshots diff cleanly):
    {v
    { "schema": "uas-bench-trajectory",
      "version": 7,
      "interp_tier": "fast",
      "jobs": null | N,
      "fault_plan": null | "site:kind:nth,...",
      "store": null | {"hits": n, "misses": n, "bad": n, "writes": n,
                       "evicted": n, "evict_skipped": n, "hit_rate": x,
                       "read_s": s, "write_s": s},
      "daemon": null | {"admitted": n, "shed": n, "timed_out": n,
                        "degraded": n, "drained": n,
                        "protocol_errors": n, "disconnects": n,
                        "requests": n, "request_s": s,
                        "queue_depth": n, "inflight": n},
      "targets": [ {"name": "...", "wall_s": s}, ... ],
      "metrics": [ {"name": "...", "value": x, "unit": "..."}, ... ],
      "plans": [ { "benchmark": "...", "objective": "...",
                   "rows": [ {"rank": k, "label": "...", "ds": d,
                              "ii": n, "area": n, "cycles": n,
                              "speedup": x, "ratio": x,
                              "skipped": null | "diagnostic"}, ... ] },
                 ... ],
      "gaps": [ {"benchmark": "...", "version": "...",
                 "heuristic_ii": n, "optimal_ii": null | n,
                 "proved_ii": n, "gap": null | n,
                 "status": "optimal" | "feasible" | "unknown",
                 "expansions": n}, ... ],
      "incidents": [ {"site": "sweep" | "plan" | "validate" | ...,
                      "cell": "<benchmark>/<version>",
                      "message": "diagnostic"}, ... ],
      "instrumentation": { "spans": {...}, "counters": {...} } }
    v}

    [fault_plan] echoes the armed {!Fault} plan (null on a clean run,
    so clean snapshots are unchanged by-key from v2 apart from the
    version bump and the empty [incidents] array).  [store] echoes the
    installed {!Store}'s counters — null when no artifact cache is
    configured, and never the cache directory path.  [daemon] (v7)
    echoes the [nimbled] service counters when the document comes from
    a daemon run — null from the plain CLIs.  Incidents record
    every cell the run degraded or skipped non-fatally.  Gaps record
    the second II oracle's verdict per benchmark × version
    ([--exact-ii report]): [gap] is [heuristic_ii - optimal_ii] when
    the optimum was certified, null when the budget ran out with the
    optimum only bracketed in [[proved_ii, heuristic_ii]]. *)

val schema : string
val version : int

type t

val make : interp_tier:string -> jobs:int option -> unit -> t

(** Attach the daemon counter object (a pre-rendered JSON object, the
    [Store.stats_json] convention) to the document's ["daemon"] key.
    Never called by the plain CLIs — their documents render [null]. *)
val set_daemon_json : t -> string -> unit

(** Record a completed harness target and its wall-clock seconds. *)
val add_target : t -> name:string -> wall_s:float -> unit

(** Record a named scalar measurement ([unit_label] e.g. ["ns/run"]). *)
val add_metric : t -> name:string -> value:float -> unit_label:string -> unit

(** One row of a recorded plan table: rank 0 and a [pr_skipped]
    diagnostic mark a candidate the planner could not estimate. *)
type plan_row = {
  pr_rank : int;
  pr_label : string;
  pr_ds : int;
  pr_ii : int;
  pr_area : int;
  pr_cycles : int;
  pr_speedup : float;
  pr_ratio : float;
  pr_skipped : string option;
}

type plan = {
  pl_benchmark : string;
  pl_objective : string;
  pl_rows : plan_row list;
}

(** Record one benchmark's ranked plan table. *)
val add_plan : t -> benchmark:string -> objective:string -> plan_row list -> unit

(** One non-fatal incident: a cell degraded or skipped during the
    run. *)
type incident = { i_site : string; i_cell : string; i_message : string }

(** Record an incident ([site]: which stage — "sweep", "plan",
    "validate"; [cell]: ["<benchmark>/<version>"]; [message]: the
    rendered diagnostic). *)
val add_incident : t -> site:string -> cell:string -> message:string -> unit

(** One row of the gaps array: the heuristic II of a pipelined
    (benchmark, version) cell next to the exact oracle's verdict. *)
type gap_row = {
  g_benchmark : string;
  g_version : string;
  g_heuristic_ii : int;
  g_optimal_ii : int option;  (** [None] unless certified optimal *)
  g_proved_ii : int;  (** every II below was refuted exhaustively *)
  g_gap : int option;  (** heuristic - optimal; [None] when uncertified *)
  g_status : string;  (** "optimal" | "feasible" | "unknown" *)
  g_expansions : int;  (** branch-and-bound nodes expanded *)
}

(** Record one exact-oracle gap row. *)
val add_gap : t -> gap_row -> unit

(** [time f] runs [f ()], returning its result and the elapsed
    wall-clock seconds. *)
val time : (unit -> 'a) -> 'a * float

type target = { t_name : string; t_wall_s : float }
type metric = { m_name : string; m_value : float; m_unit : string }

val targets : t -> target list
val metrics : t -> metric list
val plans : t -> plan list
val incidents : t -> incident list
val gaps : t -> gap_row list

(** The full document, keys in schema order. *)
val to_json : t -> string

(** Write {!to_json} (newline-terminated) to [path]. *)
val write_file : t -> string -> unit
