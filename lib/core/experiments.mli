(** The Chapter 6 experiments: Table 6.2 (raw), Table 6.3 (normalized),
    the Figure 6.x series, and the Figure 2.4 operator-usage timeline —
    over the Table 6.1 benchmark suite, with optional bit-for-bit
    verification of every generated version against the host
    references. *)

module Registry = Uas_bench_suite.Registry
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath

type cell = {
  c_version : Nimble.version;
  c_report : Estimate.report;
  c_verified : bool;  (** outputs match the host reference *)
  c_gap : (int * Uas_dfg.Sched.exact) option;
      (** with [exact = Exact_report] on a pipelined version: the
          heuristic II next to the exact oracle's verdict, rendered as
          a [gap:] footer via {!Uas_dfg.Sched.pp_gap}; [None] in
          off/check modes and on non-pipelined cells *)
  c_incidents : Uas_pass.Diag.t list;
      (** non-fatal trouble the cell degraded around (rewrites rejected
          by translation validation, verification runs gone stuck/out
          of fuel, reference mismatches) — rendered as [degraded:]
          footers; empty on a clean cell *)
}

type skip = {
  s_version : Nimble.version;
  s_diag : Uas_pass.Diag.t;  (** why the version was not built *)
}

type bench_row = {
  br_benchmark : Registry.benchmark;
  br_cells : cell list;  (** built versions, in request order *)
  br_skipped : skip list;
      (** versions a pass rejected — reported in the table footers,
          never silently dropped *)
}

type normalized = {
  n_version : Nimble.version;
  n_speedup : float;
  n_area : float;
  n_registers : float;
  n_efficiency : float;  (** speedup / area *)
  n_operator_share : float;  (** Fig 6.4: operators / area *)
}

(** One benchmark's Table 6.2 sweep, versions fanned out over a
    [Uas_runtime.Parallel] pool of [jobs] domains (default: [UAS_JOBS]
    or the core count; cells are input-ordered and bit-identical to a
    sequential run).  [verify] replays every version in the interpreter
    (on by default).  [after] observes the compilation unit after every
    pipeline pass (pass [jobs:1] with it — output hooks interleave
    across domains).  [tier] picks the verification interpreter
    (default {!Uas_ir.Fast_interp.default_tier}); the fast tier reuses
    each compilation unit's memoized compiled program and produces
    bit-identical cells.

    Fault tolerance: every cell runs inside a
    [Uas_runtime.Fault.with_scope] frame named
    ["<benchmark>/<version>"]; [validate] translation-validates each
    rewrite on the benchmark workload (a miscompiling rewrite degrades
    its cell instead of propagating a wrong program);
    [timeout_s]/[retries] supervise the pool
    ({!Uas_runtime.Parallel.map_results}), and a task the pool gives up
    on surfaces as a skipped cell with a [task] diagnostic.  A
    verification run that goes stuck or out of fuel marks its cell
    unverified with an incident — it never aborts the sweep.

    [exact] (default [Exact_off]) runs the second II oracle per cell:
    [Exact_check] validates every heuristic schedule with
    {!Uas_dfg.Sched.check_schedule}, [Exact_report] additionally
    certifies (or brackets, under budget exhaustion) the optimal II of
    the pipelined cells and fills {!cell.c_gap}. *)
val run_benchmark :
  ?target:Datapath.t ->
  ?verify:bool ->
  ?tier:Uas_ir.Fast_interp.tier ->
  ?validate:bool ->
  ?exact:Uas_dfg.Sched.exact_mode ->
  ?versions:Nimble.version list ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?after:Uas_pass.Pass.hook ->
  Registry.benchmark ->
  bench_row

(** The whole suite; every (benchmark, version) cell is an independent
    pool task, so the full table scales with the core count.  Fault
    tolerance as in {!run_benchmark}. *)
val table_6_2 :
  ?target:Datapath.t ->
  ?verify:bool ->
  ?tier:Uas_ir.Fast_interp.tier ->
  ?validate:bool ->
  ?exact:Uas_dfg.Sched.exact_mode ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  unit ->
  bench_row list

(** Table 6.3 normalization against the Original cell.
    @raise Invalid_argument without an Original version. *)
val normalize : bench_row -> normalized list

type series = (string * (Nimble.version * float) list) list

val figure : value:(normalized -> float) -> bench_row list -> series

(** Speedup factor. *)
val figure_6_1 : bench_row list -> series

(** Area increase factor. *)
val figure_6_2 : bench_row list -> series

(** Efficiency (speedup/area). *)
val figure_6_3 : bench_row list -> series

(** Operators as a percentage of area. *)
val figure_6_4 : bench_row list -> series

type usage_cell = {
  u_time : int;
  u_operator : string;
  u_data_set : int option;  (** [None] = idle slot *)
}

(** Figure 2.4: jam vs squash operator occupancy on the f/g example. *)
val figure_2_4 : cycles:int -> (string * usage_cell list) list

val pp_version : Nimble.version Fmt.t

(** The [degraded: <version> — <diagnostic>] footer lines of a row's
    cells (one per incident; silent on clean cells). *)
val pp_degraded : cell list Fmt.t

(** The [gap: <version> — <verdict>] footer lines of a row's cells
    (one per cell that ran the exact oracle; silent otherwise, so the
    default table output is unchanged). *)
val pp_gaps : cell list Fmt.t

val pp_table_6_2 : bench_row list Fmt.t
val pp_table_6_3 : bench_row list Fmt.t
val pp_series : unit_label:string -> series Fmt.t
