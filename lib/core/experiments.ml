(* The Chapter 6 experiments: Table 6.2 (raw II / area / registers),
   Table 6.3 (normalized speedup / area / registers / efficiency) and
   the four derived figures, computed over the Table 6.1 benchmark
   suite.  Also verifies that every generated version still computes
   the host-reference outputs bit-for-bit — a check the paper could not
   make mechanically. *)

module Registry = Uas_bench_suite.Registry
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Fast_interp = Uas_ir.Fast_interp
module Native_interp = Uas_ir.Native_interp
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Sched = Uas_dfg.Sched

type cell = {
  c_version : Nimble.version;
  c_report : Estimate.report;
  c_verified : bool;  (** outputs match the host reference *)
  c_gap : (int * Sched.exact) option;
      (** with [--exact-ii report] on a pipelined version: the
          heuristic II next to the exact oracle's verdict — rendered as
          [gap:] table footers *)
  c_incidents : Diag.t list;
      (** non-fatal trouble the cell degraded around: rewrites rejected
          by translation validation, verification runs that went stuck
          or out of fuel — rendered as [degraded:] table footers *)
}

type skip = {
  s_version : Nimble.version;
  s_diag : Uas_pass.Diag.t;  (** why the version was not built *)
}

type bench_row = {
  br_benchmark : Registry.benchmark;
  br_cells : cell list;  (** built versions, in request order *)
  br_skipped : skip list;  (** versions rejected by a pass, in order *)
}

type normalized = {
  n_version : Nimble.version;
  n_speedup : float;
  n_area : float;
  n_registers : float;
  n_efficiency : float;  (** speedup / area *)
  n_operator_share : float;  (** operators as a fraction of area (Fig 6.4) *)
}

let tier_label = function
  | Fast_interp.Ref -> "ref"
  | Fast -> "fast"
  | Native -> "native"

(* One (benchmark, version) cell: the version's pass pipeline
   (transform + quick synthesis) plus interpreter-replay verification —
   the independent unit of work the pool fans out.  Nothing here
   touches shared mutable state: each pipeline run builds its own
   compilation unit, both interpreter tiers copy the workload's input
   arrays, and the benchmark record is only read.

   The whole cell runs inside a fault scope named
   "<benchmark>/<version>", so a labeled fault spec lands on one exact
   cell at any pool size.  A verification run that goes wrong — stuck,
   out of fuel, an injected interpreter fault, outputs differing from
   the host reference — marks the cell unverified with an incident; it
   never aborts the sweep. *)
let build_cell ?after ?(validate = false) ?(exact = Sched.Exact_off) ~target
    ~verify ~tier (b : Registry.benchmark) (v : Nimble.version) :
    (cell, skip) result =
  Fault.with_scope (b.Registry.b_name ^ "/" ^ Nimble.version_name v)
  @@ fun () ->
  let probe = if validate then Some b.Registry.b_workload else None in
  match
    Nimble.run_version_cu ~target ?after ?validate:probe ~exact
      b.Registry.b_program ~outer_index:b.Registry.b_outer_index
      ~inner_index:b.Registry.b_inner_index v
  with
  | Error d -> Error { s_version = v; s_diag = d }
  | Ok (cu, built, report) ->
    let gap =
      if exact = Sched.Exact_report && Nimble.pipelined v then
        match (Cu.schedule cu, Cu.exact cu) with
        | Some s, Some e -> Some (s.Sched.s_ii, e)
        | _ -> None
      else None
    in
    let incidents = ref (Cu.incidents cu) in
    let incident fmt =
      Fmt.kstr
        (fun m ->
          incidents := !incidents @ [ Diag.errorf ~pass:"verify" "%s" m ])
        fmt
    in
    let verified =
      (not verify)
      || Instrument.span "pass.verify" (fun () ->
             (* resolve the unit's native artifact up front so a
                compile/load failure degrades the cell (incident
                footnote, fast tier) rather than failing it *)
             let native =
               match (tier : Fast_interp.tier) with
               | Ref | Fast -> None
               | Native -> (
                 match Cu.native cu with
                 | Ok nc -> Some nc
                 | Error m ->
                   incident "native jit unavailable: %s; degraded to fast \
                             tier" m;
                   None)
             in
             let run ?fuel () =
               match ((tier : Fast_interp.tier), native) with
               | Ref, _ ->
                 Instrument.span "interp.run.ref" (fun () ->
                     Uas_ir.Interp.run ?fuel built.Nimble.bv_program
                       b.Registry.b_workload)
               | Native, Some nc ->
                 Instrument.span "interp.run.native" (fun () ->
                     Native_interp.run ?fuel nc b.Registry.b_workload)
               | (Fast | Native), None | Fast, Some _ ->
                 (* reuse (or create) the unit's compiled artifact *)
                 let compiled = Cu.compiled cu in
                 Instrument.span "interp.run.fast" (fun () ->
                     Fast_interp.run ?fuel compiled b.Registry.b_workload)
             in
             match
               (* the [interp.run] fault site, tier-labeled like
                  [Registry.run_tier] *)
               match Fault.hit ~label:(tier_label tier) "interp.run" with
               | None -> run ()
               | Some Fault.Raise ->
                 raise
                   (Fault.Injected { site = "interp.run"; kind = Fault.Raise })
               | Some Fault.Stall -> run ~fuel:Registry.stall_fuel ()
               | Some Fault.Corrupt -> Registry.corrupt_result (run ())
             with
             | result -> (
               match Registry.check_result b result with
               | Ok () -> true
               | Error m ->
                 incident "outputs differ from host reference: %s" m;
                 false)
             | exception Uas_ir.Interp.Stuck m ->
               incident "verification run stuck: %s" m;
               false
             | exception Uas_ir.Interp.Out_of_fuel ->
               incident "verification run out of fuel";
               false
             | exception Fault.Injected { site; kind } ->
               incident "injected fault at site %s (kind %s)" site
                 (Fault.kind_name kind);
               false)
    in
    Ok
      { c_version = v;
        c_report = report;
        c_verified = verified;
        c_gap = gap;
        c_incidents = !incidents }

let row_of_results b results =
  { br_benchmark = b;
    br_cells = List.filter_map Result.to_option results;
    br_skipped =
      List.filter_map
        (function Ok _ -> None | Error s -> Some s)
        results }

(* A task the pool itself gave up on — uncaught exception after
   retries, wall-budget timeout — becomes a skipped cell, so one bad
   (benchmark, version) can never abort the table. *)
let skip_of_failure v (tf : Parallel.Task_failure.t) : skip =
  Instrument.incr "sweep.task-failures";
  { s_version = v;
    s_diag = Diag.errorf ~pass:"task" "%s" (Parallel.Task_failure.to_message tf)
  }

(** Run the full Table 6.2 sweep for one benchmark, versions fanned out
    over the domain pool.  [verify] replays every transformed program
    in the interpreter against the host reference (slower; on by
    default).  [validate] translation-validates every rewrite on the
    benchmark workload (degrading cells whose rewrites miscompile).
    [timeout_s]/[retries] supervise the pool tasks
    ({!Uas_runtime.Parallel.map_results}).  [after] observes the
    compilation unit after every pass (nimblec's [--dump-after]);
    dumping interleaves across domains, so pass [jobs:1] with it.
    [tier] picks the verification interpreter (default: the
    process-wide {!Fast_interp.default_tier}). *)
let run_benchmark ?(target = Datapath.default) ?(verify = true) ?tier
    ?(validate = false) ?exact ?versions ?jobs ?timeout_s ?retries ?after
    (b : Registry.benchmark) : bench_row =
  let versions =
    match versions with
    | Some vs -> vs
    | None ->
      (* default to the depth-appropriate set: the Table 6.2 versions
         on a 2-deep kernel, flatten+squash on deeper nests *)
      let depth =
        Option.value ~default:2
          (Uas_analysis.Loop_nest.depth_at b.Registry.b_program
             b.Registry.b_outer_index)
      in
      Nimble.versions_for ~depth
  in
  let tier =
    match tier with Some t -> t | None -> Fast_interp.default_tier ()
  in
  row_of_results b
    (Parallel.map_results ?jobs ?timeout_s ?retries
       (build_cell ?after ~validate ?exact ~target ~verify ~tier b)
       versions
    |> List.map2
         (fun v -> function
           | Ok r -> r | Error tf -> Error (skip_of_failure v tf))
         versions)

(** Table 6.2 over the whole suite.  All (benchmark, version) cells —
    ~50 independent build+estimate+verify tasks — go through one flat
    pool fan-out, so the hot path scales with the core count instead of
    running strictly sequentially. *)
let table_6_2 ?(target = Datapath.default) ?(verify = true) ?tier
    ?(validate = false) ?exact ?jobs ?timeout_s ?retries () : bench_row list =
  let tier =
    match tier with Some t -> t | None -> Fast_interp.default_tier ()
  in
  let benches = Registry.all () in
  let versions = Nimble.paper_versions in
  let tasks =
    List.concat_map (fun b -> List.map (fun v -> (b, v)) versions) benches
  in
  let cells =
    Parallel.map_results ?jobs ?timeout_s ?retries
      (fun (b, v) -> build_cell ~validate ?exact ~target ~verify ~tier b v)
      tasks
    |> List.map2
         (fun (_, v) -> function
           | Ok r -> r | Error tf -> Error (skip_of_failure v tf))
         tasks
  in
  (* regroup the flat, input-ordered cell list benchmark-major *)
  let nv = List.length versions in
  List.mapi
    (fun bi b ->
      row_of_results b (List.filteri (fun i _ -> i / nv = bi) cells))
    benches

(** Normalize one benchmark row against its original version
    (Table 6.3). *)
let normalize (row : bench_row) : normalized list =
  let base =
    match
      List.find_opt (fun c -> c.c_version = Nimble.Original) row.br_cells
    with
    | Some c -> c.c_report
    | None -> invalid_arg "normalize: no original version"
  in
  let f = float_of_int in
  List.map
    (fun c ->
      let r = c.c_report in
      let speedup =
        f base.Estimate.r_total_cycles /. f (max 1 r.Estimate.r_total_cycles)
      in
      let area = f r.Estimate.r_area_rows /. f (max 1 base.Estimate.r_area_rows) in
      let regs =
        f r.Estimate.r_registers /. f (max 1 base.Estimate.r_registers)
      in
      { n_version = c.c_version;
        n_speedup = speedup;
        n_area = area;
        n_registers = regs;
        n_efficiency = speedup /. area;
        n_operator_share = Estimate.operator_area_fraction r })
    row.br_cells

(* --- figure series: one (benchmark, per-version values) list each --- *)

type series = (string * (Nimble.version * float) list) list

let figure ~(value : normalized -> float) (rows : bench_row list) : series =
  List.map
    (fun row ->
      ( row.br_benchmark.Registry.b_name,
        List.map (fun n -> (n.n_version, value n)) (normalize row) ))
    rows

let figure_6_1 rows = figure ~value:(fun n -> n.n_speedup) rows
let figure_6_2 rows = figure ~value:(fun n -> n.n_area) rows
let figure_6_3 rows = figure ~value:(fun n -> n.n_efficiency) rows
let figure_6_4 rows = figure ~value:(fun n -> 100.0 *. n.n_operator_share) rows

(* --- Figure 2.4: operator usage over time, jam vs squash --- *)

type usage_cell = {
  u_time : int;
  u_operator : string;
  u_data_set : int option;  (** None = idle *)
}

(** The operator-usage timeline of Figure 2.4 for the f/g example:
    which data set occupies operator f and operator g at each cycle,
    under unroll-and-jam(2) and unroll-and-squash(2). *)
let figure_2_4 ~cycles : (string * usage_cell list) list =
  let squash =
    (* round-robin: at step t, f works on data set t mod 2 and g on
       (t-1) mod 2 — every slot busy *)
    List.concat
      (List.init cycles (fun t ->
           [ { u_time = t; u_operator = "f"; u_data_set = Some (t mod 2) };
             { u_time = t;
               u_operator = "g";
               u_data_set = (if t = 0 then None else Some ((t - 1) mod 2)) } ]))
  in
  let jam =
    (* both copies in lockstep: f0/g0 for set 1, f1/g1 for set 2, with
       the g units idle while f computes and vice versa (II = 2) *)
    List.concat
      (List.init cycles (fun t ->
           let phase = t mod 2 in
           [ { u_time = t; u_operator = "f0";
               u_data_set = (if phase = 0 then Some 0 else None) };
             { u_time = t; u_operator = "f1";
               u_data_set = (if phase = 0 then Some 1 else None) };
             { u_time = t; u_operator = "g0";
               u_data_set = (if phase = 1 then Some 0 else None) };
             { u_time = t; u_operator = "g1";
               u_data_set = (if phase = 1 then Some 1 else None) } ]))
  in
  [ ("unroll-and-jam(2)", jam); ("unroll-and-squash(2)", squash) ]

(* --- pretty-printed tables (consumed by bench/main.exe and the CLI) --- *)

let pp_version ppf v = Fmt.string ppf (Nimble.version_name v)

(* The footers shared by the Table 6.2/6.3 printers: one
   "degraded: <version> — <diagnostic>" line per incident a cell
   recovered from, then one "skipped: <version> — <diagnostic>" line
   per version a pass rejected.  Both empty (and silent) when every
   version built cleanly — the clean table output is byte-identical to
   the pre-fault-tolerance printers. *)
(* One "gap: <version> — <verdict>" footnote per cell that ran the
   exact oracle (silent in off/check modes, so the default table output
   is byte-identical to the pre-oracle printers). *)
let pp_gaps ppf (cells : cell list) =
  List.iter
    (fun c ->
      match c.c_gap with
      | None -> ()
      | Some gap ->
        Fmt.pf ppf "  gap: %-12s — %a@\n"
          (Nimble.version_name c.c_version)
          Sched.pp_gap gap)
    cells

let pp_degraded ppf (cells : cell list) =
  List.iter
    (fun c ->
      List.iter
        (fun d ->
          Fmt.pf ppf "  degraded: %-12s — %a@\n"
            (Nimble.version_name c.c_version)
            Uas_pass.Diag.pp d)
        c.c_incidents)
    cells

let pp_skipped ppf (skips : skip list) =
  List.iter
    (fun s ->
      Fmt.pf ppf "  skipped: %-12s — %a@\n"
        (Nimble.version_name s.s_version)
        Uas_pass.Diag.pp s.s_diag)
    skips

let pp_table_6_2 ppf (rows : bench_row list) =
  Fmt.pf ppf "Table 6.2: raw data — II (cycles), area (rows), registers@\n";
  List.iter
    (fun row ->
      Fmt.pf ppf "@\n%s@\n" row.br_benchmark.Registry.b_name;
      Fmt.pf ppf "  %-12s %6s %8s %6s %5s %9s@\n" "version" "II" "area" "regs"
        "mem" "verified";
      List.iter
        (fun c ->
          let r = c.c_report in
          Fmt.pf ppf "  %-12s %6d %8d %6d %5d %9s@\n"
            (Nimble.version_name c.c_version)
            r.Estimate.r_ii r.Estimate.r_area_rows r.Estimate.r_registers
            r.Estimate.r_mem_refs
            (if c.c_verified then "yes" else "NO"))
        row.br_cells;
      pp_gaps ppf row.br_cells;
      pp_degraded ppf row.br_cells;
      pp_skipped ppf row.br_skipped)
    rows

let pp_table_6_3 ppf (rows : bench_row list) =
  Fmt.pf ppf
    "Table 6.3: normalized — speedup, area, registers, speedup/area@\n";
  List.iter
    (fun row ->
      Fmt.pf ppf "@\n%s@\n" row.br_benchmark.Registry.b_name;
      Fmt.pf ppf "  %-12s %8s %8s %8s %9s@\n" "version" "speedup" "area"
        "regs" "spd/area";
      List.iter
        (fun n ->
          Fmt.pf ppf "  %-12s %8.2f %8.2f %8.2f %9.2f@\n"
            (Nimble.version_name n.n_version)
            n.n_speedup n.n_area n.n_registers n.n_efficiency)
        (normalize row);
      pp_degraded ppf row.br_cells;
      pp_skipped ppf row.br_skipped)
    rows

let pp_series ~unit_label ppf (s : series) =
  List.iter
    (fun (bench, values) ->
      Fmt.pf ppf "@\n%s (%s)@\n" bench unit_label;
      List.iter
        (fun (v, x) ->
          Fmt.pf ppf "  %-12s %8.2f@\n" (Nimble.version_name v) x)
        values)
    s
