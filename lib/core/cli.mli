(** Argument parsing for the bench harness (bench/main.exe).

    Kept in the library rather than the executable so the target parser
    is unit-testable: historically an unknown target only failed after
    the (expensive) targets before it had already run. [parse] now
    validates the whole command line up front. *)

type options = {
  o_jobs : int option;  (** [-j N] / [--jobs N]: worker-pool size *)
  o_timings : bool;  (** [--timings]: print the instrumentation summary *)
  o_interp : Uas_ir.Fast_interp.tier option;
      (** [--interp ref|fast]: interpreter tier (default: the
          process-wide {!Uas_ir.Fast_interp.default_tier}) *)
  o_json : string option;
      (** [--json FILE]: write the perf-trajectory JSON here *)
  o_validate : bool;
      (** [--validate off|probe]: translation-validate every rewrite on
          the benchmark workload (default off) *)
  o_exact : Uas_dfg.Sched.exact_mode;
      (** [--exact-ii off|check|report]: run the second II oracle per
          cell — validate heuristic schedules ([check]) or also certify
          the optimal II and report the gap ([report]); default off *)
  o_task_timeout : float option;
      (** [--task-timeout SECS]: per-task wall budget for the pool *)
  o_retries : int option;
      (** [--retries N]: retry budget for retryable task failures *)
  o_fault : string option;
      (** [--fault PLAN]: arm the fault-injection registry (testing;
          same grammar as [UAS_FAULT]) *)
  o_cache : string option;
      (** [--cache DIR]: persistent artifact store directory (default:
          the [UAS_CACHE] environment variable; none = no store) *)
  o_cache_verify : bool;
      (** [--cache-verify]: recompute everything and compare against
          cached artifacts (mismatches become incidents) *)
  o_cache_warm : bool;
      (** [--cache-warm]: after the cold pass, run every requested
          target a second time, recording "<target> (warm)" wall-clock
          — the cold-vs-warm numbers of the committed snapshot *)
  o_version : bool;
      (** [--version]: print the build version line and exit 0 *)
  o_targets : string list;
      (** requested targets, in command-line order; empty = run all *)
}

(** Parse a bench command line.  Every non-flag argument must be a
    member of [available]; the first unknown one yields [Error] with a
    message naming it and listing the valid targets.  [-j] requires a
    positive integer, [--interp] one of [ref]/[fast], [--json] a file
    name, [--validate] one of [off]/[probe], [--exact-ii] one of
    [off]/[check]/[report], [--task-timeout] positive seconds,
    [--retries] a non-negative integer, [--fault] a plan string
    (validated when armed, not here), [--cache] a directory
    (opened/validated when installed, not here). *)
val parse : available:string list -> string list -> (options, string) result
