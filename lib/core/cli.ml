module Fast_interp = Uas_ir.Fast_interp

type options = {
  o_jobs : int option;
  o_timings : bool;
  o_interp : Fast_interp.tier option;
  o_json : string option;
  o_targets : string list;
}

let parse ~available args =
  let rec go targets jobs timings interp json = function
    | [] ->
      Ok
        { o_jobs = jobs;
          o_timings = timings;
          o_interp = interp;
          o_json = json;
          o_targets = List.rev targets }
    | "--timings" :: rest -> go targets jobs true interp json rest
    | ("-j" | "--jobs") :: rest -> (
      match rest with
      | n :: rest' -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> go targets (Some n) timings interp json rest'
        | Some _ | None ->
          Error (Printf.sprintf "-j expects a positive integer, got %s" n))
      | [] -> Error "-j expects a positive integer")
    | "--interp" :: rest -> (
      match rest with
      | t :: rest' -> (
        match Fast_interp.tier_of_string t with
        | Some tier -> go targets jobs timings (Some tier) json rest'
        | None ->
          Error (Printf.sprintf "--interp expects ref or fast, got %s" t))
      | [] -> Error "--interp expects ref or fast")
    | "--json" :: rest -> (
      match rest with
      | f :: rest' -> go targets jobs timings interp (Some f) rest'
      | [] -> Error "--json expects a file name")
    | arg :: rest ->
      if List.mem arg available then
        go (arg :: targets) jobs timings interp json rest
      else
        Error
          (Printf.sprintf "unknown target %s; available: %s" arg
             (String.concat " " available))
  in
  go [] None false None None args
