type options = {
  o_jobs : int option;
  o_timings : bool;
  o_targets : string list;
}

let parse ~available args =
  let rec go targets jobs timings = function
    | [] ->
      Ok { o_jobs = jobs; o_timings = timings; o_targets = List.rev targets }
    | "--timings" :: rest -> go targets jobs true rest
    | ("-j" | "--jobs") :: rest -> (
      match rest with
      | n :: rest' -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> go targets (Some n) timings rest'
        | Some _ | None ->
          Error (Printf.sprintf "-j expects a positive integer, got %s" n))
      | [] -> Error "-j expects a positive integer")
    | arg :: rest ->
      if List.mem arg available then go (arg :: targets) jobs timings rest
      else
        Error
          (Printf.sprintf "unknown target %s; available: %s" arg
             (String.concat " " available))
  in
  go [] None false args
