module Fast_interp = Uas_ir.Fast_interp
module Sched = Uas_dfg.Sched

type options = {
  o_jobs : int option;
  o_timings : bool;
  o_interp : Fast_interp.tier option;
  o_json : string option;
  o_validate : bool;
  o_exact : Sched.exact_mode;
  o_task_timeout : float option;
  o_retries : int option;
  o_fault : string option;
  o_cache : string option;
  o_cache_verify : bool;
  o_cache_warm : bool;
  o_version : bool;
  o_targets : string list;
}

let parse ~available args =
  let rec go acc = function
    | [] -> Ok { acc with o_targets = List.rev acc.o_targets }
    | "--timings" :: rest -> go { acc with o_timings = true } rest
    | ("-j" | "--jobs") :: rest -> (
      match rest with
      | n :: rest' -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> go { acc with o_jobs = Some n } rest'
        | Some _ | None ->
          Error (Printf.sprintf "-j expects a positive integer, got %s" n))
      | [] -> Error "-j expects a positive integer")
    | "--interp" :: rest -> (
      match rest with
      | t :: rest' -> (
        match Fast_interp.tier_of_string t with
        | Some tier -> go { acc with o_interp = Some tier } rest'
        | None ->
          Error
            (Printf.sprintf "--interp expects %s, got %s"
               Fast_interp.valid_tiers t))
      | [] -> Error ("--interp expects " ^ Fast_interp.valid_tiers))
    | "--json" :: rest -> (
      match rest with
      | f :: rest' -> go { acc with o_json = Some f } rest'
      | [] -> Error "--json expects a file name")
    | "--validate" :: rest -> (
      match rest with
      | "off" :: rest' -> go { acc with o_validate = false } rest'
      | "probe" :: rest' -> go { acc with o_validate = true } rest'
      | m :: _ -> Error (Printf.sprintf "--validate expects off or probe, got %s" m)
      | [] -> Error "--validate expects off or probe")
    | "--exact-ii" :: rest -> (
      match rest with
      | m :: rest' -> (
        match Sched.exact_mode_of_string m with
        | Some mode -> go { acc with o_exact = mode } rest'
        | None ->
          Error
            (Printf.sprintf "--exact-ii expects off, check or report, got %s"
               m))
      | [] -> Error "--exact-ii expects off, check or report")
    | "--task-timeout" :: rest -> (
      (* shared validator (Uas_runtime.Budget): same ranges and the
         same diagnostic as nimblec and nimbled *)
      match rest with
      | s :: rest' -> (
        match Uas_runtime.Budget.timeout_of_string ~flag:"--task-timeout" s with
        | Ok t -> go { acc with o_task_timeout = Some t } rest'
        | Error m -> Error m)
      | [] ->
        Error
          (Printf.sprintf "--task-timeout expects %s"
             Uas_runtime.Budget.timeout_range))
    | "--retries" :: rest -> (
      match rest with
      | n :: rest' -> (
        match Uas_runtime.Budget.retries_of_string ~flag:"--retries" n with
        | Ok n -> go { acc with o_retries = Some n } rest'
        | Error m -> Error m)
      | [] ->
        Error
          (Printf.sprintf "--retries expects %s"
             Uas_runtime.Budget.retries_range))
    | "--fault" :: rest -> (
      match rest with
      | p :: rest' -> go { acc with o_fault = Some p } rest'
      | [] -> Error "--fault expects a fault plan (site[=label]:kind:nth,...)")
    | "--cache" :: rest -> (
      match rest with
      | d :: rest' -> go { acc with o_cache = Some d } rest'
      | [] -> Error "--cache expects a directory")
    | "--cache-verify" :: rest -> go { acc with o_cache_verify = true } rest
    | "--cache-warm" :: rest -> go { acc with o_cache_warm = true } rest
    | "--version" :: rest -> go { acc with o_version = true } rest
    | arg :: rest ->
      if List.mem arg available then
        go { acc with o_targets = arg :: acc.o_targets } rest
      else
        Error
          (Printf.sprintf "unknown target %s; available: %s" arg
             (String.concat " " available))
  in
  go
    { o_jobs = None;
      o_timings = false;
      o_interp = None;
      o_json = None;
      o_validate = false;
      o_exact = Sched.Exact_off;
      o_task_timeout = None;
      o_retries = None;
      o_fault = None;
      o_cache = None;
      o_cache_verify = false;
      o_cache_warm = false;
      o_version = false;
      o_targets = [] }
    args
