(** The Nimble-Compiler-style driver (§5.2): generate the transformed
    versions Table 6.2 compares, estimate each, and select the best by
    the Figure 6.3 efficiency metric. *)

open Uas_ir

type version =
  | Original  (** non-pipelined *)
  | Pipelined
  | Squashed of int
  | Jammed of int
  | Combined of int * int
      (** jam by the first factor, then squash by the second (§2) *)

val version_name : version -> string

(** original, pipelined, squash 2/4/8/16, jam 2/4/8/16. *)
val paper_versions : version list

type built = {
  bv_version : version;
  bv_program : Stmt.program;  (** complete program, still runnable *)
  bv_kernel_index : string;  (** loop index of the hardware kernel *)
}

(** Apply one version to the nest identified by [outer_index].
    @raise Squash.Squash_error / Jam_error when the transformation is
    illegal at that factor. *)
val build_version :
  Stmt.program -> outer_index:string -> inner_index:string -> version -> built

val estimate : ?target:Uas_hw.Datapath.t -> built -> Uas_hw.Estimate.report

(** Build and estimate every requested version, fanned out over a
    [Uas_runtime.Parallel] pool of [jobs] domains (default: [UAS_JOBS]
    or the core count).  Results are input-ordered and identical to a
    sequential run; illegal factors are dropped from the result. *)
val sweep :
  ?target:Uas_hw.Datapath.t ->
  ?versions:version list ->
  ?jobs:int ->
  Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  (version * built * Uas_hw.Estimate.report) list

(** The version maximizing speedup per area over the [Original]
    baseline; [None] without a baseline. *)
val select_best :
  (version * built * Uas_hw.Estimate.report) list ->
  (version * built * Uas_hw.Estimate.report) option
