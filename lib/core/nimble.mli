(** The Nimble-Compiler-style driver (§5.2): generate the transformed
    versions Table 6.2 compares, estimate each, and select the best by
    the Figure 6.3 efficiency metric.

    Every version runs as a {!Uas_pass} pipeline — transform passes
    composed per version, then the quick-synthesis passes — so
    [--timings] spans cover each pass and illegal versions surface as
    structured diagnostics instead of exceptions. *)

open Uas_ir

type version =
  | Original  (** non-pipelined *)
  | Pipelined
  | Squashed of int
  | Jammed of int
  | Combined of int * int
      (** jam by the first factor, then squash by the second (§2) *)
  | Flat_squashed of int
      (** flatten the kernel pair, then squash the flattened loop — the
          enabling route for nests deeper than 2 *)

val version_name : version -> string

(** original, pipelined, squash 2/4/8/16, jam 2/4/8/16. *)
val paper_versions : version list

(** {!paper_versions} at depth 2; original, pipelined and
    flatten+squash 2/4/8 at deeper depths. *)
val versions_for : depth:int -> version list

type built = {
  bv_version : version;
  bv_program : Stmt.program;  (** complete program, still runnable *)
  bv_kernel_index : string;  (** loop index of the hardware kernel *)
}

(** Overlapped (modulo-scheduled) hardware kernel?  False only for
    [Original]. *)
val pipelined : version -> bool

(** The transformation pipeline of a version: [loop-nest] analysis then
    the squash/jam composition.  [validate] translation-validates every
    rewrite on the probe workload ({!Uas_transform.Rewrite.validated_apply}):
    a rewrite that fails validation is not applied — the pipeline
    degrades to the last-known-good program with incidents logged on
    the compilation unit. *)
val transform_passes :
  ?validate:Uas_ir.Interp.workload -> version -> Uas_pass.Pass.t list

(** The quick-synthesis pipeline:
    [dfg-build; schedule; exact-ii; estimate].  [exact] selects how
    much exact scheduling the [exact-ii] pass runs (default:
    {!Uas_dfg.Sched.Exact_off}, a no-op). *)
val estimate_passes :
  ?target:Uas_hw.Datapath.t ->
  ?exact:Uas_dfg.Sched.exact_mode ->
  version ->
  Uas_pass.Pass.t list

(** Apply one version to the nest identified by [outer_index] by
    running its transformation pipeline.  [after] observes the
    compilation unit after each pass. *)
val build_version_result :
  ?after:Uas_pass.Pass.hook ->
  Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  version ->
  (built, Uas_pass.Diag.t) result

(** [build_version_result], raising on failure.
    @raise Uas_pass.Diag.Failed when the transformation is illegal at
    that factor. *)
val build_version :
  Stmt.program -> outer_index:string -> inner_index:string -> version -> built

val estimate : ?target:Uas_hw.Datapath.t -> built -> Uas_hw.Estimate.report

(** Per-version sweep result: built with its report; built but
    [Degraded] (translation validation rejected one or more rewrites —
    the report describes the last-known-good program, the diagnostics
    say why); or skipped with the diagnostic of the rejecting pass. *)
type outcome =
  | Built of built * Uas_hw.Estimate.report
  | Degraded of built * Uas_hw.Estimate.report * Uas_pass.Diag.t list
  | Skipped of Uas_pass.Diag.t

(** Run one version's full pipeline (transform + quick synthesis),
    returning the final compilation unit alongside the built version —
    callers that go on to execute the program can reuse the unit's
    memoized {!Uas_pass.Cu.compiled} artifact.  [validate] as in
    {!transform_passes}; validation failures leave the result [Ok] with
    incidents on the unit. *)
val run_version_cu :
  ?target:Uas_hw.Datapath.t ->
  ?after:Uas_pass.Pass.hook ->
  ?validate:Uas_ir.Interp.workload ->
  ?exact:Uas_dfg.Sched.exact_mode ->
  Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  version ->
  (Uas_pass.Cu.t * built * Uas_hw.Estimate.report, Uas_pass.Diag.t) result

(** Run one version's full pipeline (transform + quick synthesis). *)
val run_version :
  ?target:Uas_hw.Datapath.t ->
  ?after:Uas_pass.Pass.hook ->
  ?validate:Uas_ir.Interp.workload ->
  Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  version ->
  outcome

(** Build and estimate every requested version, fanned out over a
    [Uas_runtime.Parallel] pool of [jobs] domains (default: [UAS_JOBS]
    or the core count).  Results are input-ordered and identical to a
    sequential run; every version is reported — illegal factors as
    [Skipped] with their diagnostic, never silently dropped.

    Fault tolerance: each version runs inside a
    {!Uas_runtime.Fault.with_scope} frame named after it; [timeout_s]
    and [retries] are handed to {!Uas_runtime.Parallel.map_results}, and
    a task the pool gives up on (uncaught exception after retries,
    wall-budget timeout) comes back [Skipped] with a [task] diagnostic
    instead of aborting the sweep ([sweep.task-failures] counts them).
    [validate] as in {!transform_passes}. *)
val sweep :
  ?target:Uas_hw.Datapath.t ->
  ?versions:version list ->
  ?jobs:int ->
  ?validate:Uas_ir.Interp.workload ->
  ?timeout_s:float ->
  ?retries:int ->
  Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  (version * outcome) list

(** The successfully built rows (degraded cells included — their
    reports describe the last-known-good program), in sweep order. *)
val successes :
  (version * outcome) list ->
  (version * built * Uas_hw.Estimate.report) list

(** The skipped versions with their diagnostics, in sweep order. *)
val skipped : (version * outcome) list -> (version * Uas_pass.Diag.t) list

(** The degraded versions with their incident logs, in sweep order. *)
val degraded :
  (version * outcome) list -> (version * Uas_pass.Diag.t list) list

(** The version maximizing speedup per area over the [Original]
    baseline; [None] without a baseline. *)
val select_best :
  (version * built * Uas_hw.Estimate.report) list ->
  (version * built * Uas_hw.Estimate.report) option
