(* The Nimble-Compiler-style driver (§5.2): takes a kernel, generates
   the transformed versions Table 6.2 compares, estimates each with the
   quick-synthesis model, and can select the best version by a given
   figure of merit (the kernel-selection step).

   Every version is built by running a pass pipeline (Uas_pass) over a
   compilation unit: the transform passes composed per version, then
   the quick-synthesis passes (dfg-build / schedule / estimate).  A
   version whose transformation is illegal at the requested factor
   yields a structured diagnostic instead of an exception — the sweep
   reports it per version rather than silently dropping the row.

   The ten versions per benchmark: original (non-pipelined), pipelined,
   unroll-and-squash by 2/4/8/16, pipelined unroll-and-jam by
   2/4/8/16. *)

open Uas_ir
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module Rewrite = Uas_transform.Rewrite

type version =
  | Original
  | Pipelined
  | Squashed of int
  | Jammed of int
  | Combined of int * int
      (* jam by the first factor, then squash the result by the second
         (the §2 composition: operators scale with the jam factor only,
         the squash on top fills their idle slots) *)

let version_name = function
  | Original -> "original"
  | Pipelined -> "pipelined"
  | Squashed ds -> Printf.sprintf "squash(%d)" ds
  | Jammed ds -> Printf.sprintf "jam(%d)" ds
  | Combined (j, s) -> Printf.sprintf "jam(%d)+squash(%d)" j s

(** The version set of Table 6.2. *)
let paper_versions : version list =
  [ Original; Pipelined;
    Squashed 2; Squashed 4; Squashed 8; Squashed 16;
    Jammed 2; Jammed 4; Jammed 8; Jammed 16 ]

type built = {
  bv_version : version;
  bv_program : Stmt.program;
  bv_kernel_index : string;  (** loop index of the hardware kernel *)
}

(** Is the version's hardware kernel overlapped (modulo-scheduled)?
    Only the original non-pipelined design is not. *)
let pipelined = function Original -> false | _ -> true

(** The transformation pipeline of a version: locate/analyze the nest,
    then the squash/jam composition, each transform a registered
    rewrite converted to a pass. *)
let transform_passes (version : version) : Pass.t list =
  Stages.analyze
  ::
  (match version with
  | Original | Pipelined -> []
  | Squashed ds -> [ Rewrite.pass ~factor:ds "squash" ]
  | Jammed ds -> [ Rewrite.pass ~factor:ds "jam" ]
  | Combined (jam_ds, squash_ds) ->
    (* the squash pass re-analyzes the jammed program: the jam pass
       invalidated the loop-nest cache along with the program *)
    [ Rewrite.pass ~factor:jam_ds "jam"; Rewrite.pass ~factor:squash_ds "squash" ])

(** The quick-synthesis pipeline of a version (§5.2): DFG, schedule,
    estimate report. *)
let estimate_passes ?(target = Datapath.default) (version : version) :
    Pass.t list =
  let pipelined = pipelined version in
  [ Stages.dfg_build ~target ();
    Stages.schedule ~target ~pipelined ();
    Stages.estimate ~target ~pipelined ~name:(version_name version) () ]

let built_of_cu version cu =
  { bv_version = version;
    bv_program = Cu.program cu;
    bv_kernel_index = Cu.inner_index cu }

(** Apply [version] to the nest identified by [outer_index] in [p],
    running the transformation pipeline.  [after] is called with the
    compilation unit after every pass (nimblec's [--dump-after]). *)
let build_version_result ?after (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : (built, Diag.t) result =
  let cu = Cu.make p ~outer_index ~inner_index in
  Result.map (built_of_cu version) (Pass.run ?after cu (transform_passes version))

(** [build_version_result], raising the diagnostic.
    @raise Uas_pass.Diag.Failed when the transformation is illegal at
    the requested factor (or the nest is missing). *)
let build_version (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : built =
  match build_version_result p ~outer_index ~inner_index version with
  | Ok b -> b
  | Error d -> Diag.fail d

(** Estimate a built version on [target]. *)
let estimate ?(target = Datapath.default) (b : built) : Estimate.report =
  Estimate.kernel ~target ~pipelined:(pipelined b.bv_version)
    ~name:(version_name b.bv_version)
    b.bv_program ~index:b.bv_kernel_index

(** Per-version result of a sweep: the built program with its report,
    or the diagnostic explaining why the version was skipped. *)
type outcome = Built of built * Estimate.report | Skipped of Diag.t

(** Transform + quick-synthesis pipeline for one version, keeping the
    final compilation unit (whose memoized artifacts — notably the
    fast-interpreter compilation — downstream verification reuses). *)
let run_version_cu ?(target = Datapath.default) ?after (p : Stmt.program)
    ~outer_index ~inner_index (version : version) :
    (Cu.t * built * Estimate.report, Diag.t) result =
  let cu = Cu.make p ~outer_index ~inner_index in
  let passes = transform_passes version @ estimate_passes ~target version in
  match Pass.run ?after cu passes with
  | Ok cu -> (
    match Cu.report cu with
    | Some r -> Ok (cu, built_of_cu version cu, r)
    | None ->
      (* the estimate pass always sets the report artifact *)
      assert false)
  | Error d ->
    Instrument.incr "sweep.illegal-versions";
    Error d

(** Transform + quick-synthesis pipeline for one version, end to
    end. *)
let run_version ?target ?after (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : outcome =
  match run_version_cu ?target ?after p ~outer_index ~inner_index version with
  | Ok (_, b, r) -> Built (b, r)
  | Error d -> Skipped d

(** Build and estimate every requested version of a benchmark nest,
    fanning the independent versions out over the domain pool.  Every
    version gets an outcome: [Built] with its report, or [Skipped] with
    the diagnostic of the pass that rejected it. *)
let sweep ?(target = Datapath.default) ?(versions = paper_versions) ?jobs
    (p : Stmt.program) ~outer_index ~inner_index :
    (version * outcome) list =
  Parallel.map ?jobs
    (fun v -> (v, run_version ~target p ~outer_index ~inner_index v))
    versions

(** The successfully built rows of a sweep, in sweep order. *)
let successes (rows : (version * outcome) list) :
    (version * built * Estimate.report) list =
  List.filter_map
    (function v, Built (b, r) -> Some (v, b, r) | _, Skipped _ -> None)
    rows

(** The skipped versions of a sweep with their diagnostics. *)
let skipped (rows : (version * outcome) list) : (version * Diag.t) list =
  List.filter_map
    (function v, Skipped d -> Some (v, d) | _, Built _ -> None)
    rows

(** Kernel selection: the version maximizing speedup per area (the
    efficiency metric of Figure 6.3), given the original's report as
    the baseline. *)
let select_best (rows : (version * built * Estimate.report) list) :
    (version * built * Estimate.report) option =
  let baseline =
    List.find_map
      (fun (v, _, r) -> if v = Original then Some r else None)
      rows
  in
  match baseline with
  | None -> None
  | Some base ->
    let efficiency (r : Estimate.report) =
      let speedup =
        float_of_int base.Estimate.r_total_cycles
        /. float_of_int (max 1 r.Estimate.r_total_cycles)
      in
      let area_factor =
        float_of_int r.Estimate.r_area_rows
        /. float_of_int (max 1 base.Estimate.r_area_rows)
      in
      speedup /. area_factor
    in
    List.fold_left
      (fun best row ->
        let _, _, r = row in
        match best with
        | None -> Some row
        | Some (_, _, rb) ->
          if efficiency r > efficiency rb then Some row else best)
      None rows
