(* The Nimble-Compiler-style driver (§5.2): takes a kernel, generates
   the transformed versions Table 6.2 compares, estimates each with the
   quick-synthesis model, and can select the best version by a given
   figure of merit (the kernel-selection step).

   Every version is built by running a pass pipeline (Uas_pass) over a
   compilation unit: the transform passes composed per version, then
   the quick-synthesis passes (dfg-build / schedule / estimate).  A
   version whose transformation is illegal at the requested factor
   yields a structured diagnostic instead of an exception — the sweep
   reports it per version rather than silently dropping the row.

   The ten versions per benchmark: original (non-pipelined), pipelined,
   unroll-and-squash by 2/4/8/16, pipelined unroll-and-jam by
   2/4/8/16. *)

open Uas_ir
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module Rewrite = Uas_transform.Rewrite

type version =
  | Original
  | Pipelined
  | Squashed of int
  | Jammed of int
  | Combined of int * int
      (* jam by the first factor, then squash the result by the second
         (the §2 composition: operators scale with the jam factor only,
         the squash on top fills their idle slots) *)
  | Flat_squashed of int
      (* flatten the kernel pair first, then squash the flattened loop
         against the next level down — the enabling-rewrite route that
         makes a 3-deep nest squashable *)

let version_name = function
  | Original -> "original"
  | Pipelined -> "pipelined"
  | Squashed ds -> Printf.sprintf "squash(%d)" ds
  | Jammed ds -> Printf.sprintf "jam(%d)" ds
  | Combined (j, s) -> Printf.sprintf "jam(%d)+squash(%d)" j s
  | Flat_squashed ds -> Printf.sprintf "flatten+squash(%d)" ds

(** The version set of Table 6.2. *)
let paper_versions : version list =
  [ Original; Pipelined;
    Squashed 2; Squashed 4; Squashed 8; Squashed 16;
    Jammed 2; Jammed 4; Jammed 8; Jammed 16 ]

(** The default version set for a kernel nest of the given depth: the
    Table 6.2 set at depth 2; at deeper depths the squash/jam factors
    target the pair left by one flatten (squash needs a loop-free inner
    body, which the raw deep pair does not have). *)
let versions_for ~depth : version list =
  if depth <= 2 then paper_versions
  else
    [ Original; Pipelined; Flat_squashed 2; Flat_squashed 4; Flat_squashed 8 ]

type built = {
  bv_version : version;
  bv_program : Stmt.program;
  bv_kernel_index : string;  (** loop index of the hardware kernel *)
}

(** Is the version's hardware kernel overlapped (modulo-scheduled)?
    Only the original non-pipelined design is not. *)
let pipelined = function Original -> false | _ -> true

(** The transformation pipeline of a version: locate/analyze the nest,
    then the squash/jam composition, each transform a registered
    rewrite converted to a pass.  [validate] translation-validates every
    rewrite application on the given probe workload
    ({!Rewrite.validated_apply}): a rewrite whose output fails the
    check is skipped — the pipeline degrades to the last-known-good
    program with an incident logged on the unit. *)
let transform_passes ?validate (version : version) : Pass.t list =
  Stages.analyze
  ::
  (match version with
  | Original | Pipelined -> []
  | Squashed ds -> [ Rewrite.pass ~factor:ds ?validate "squash" ]
  | Jammed ds -> [ Rewrite.pass ~factor:ds ?validate "jam" ]
  | Combined (jam_ds, squash_ds) ->
    (* the squash pass re-analyzes the jammed program: the jam pass
       invalidated the loop-nest cache along with the program *)
    [ Rewrite.pass ~factor:jam_ds ?validate "jam";
      Rewrite.pass ~factor:squash_ds ?validate "squash" ]
  | Flat_squashed ds ->
    (* flatten re-points the kernel onto the fresh flat loop; the
       squash pass then re-analyzes and targets it *)
    [ Rewrite.pass ?validate "flatten";
      Rewrite.pass ~factor:ds ?validate "squash" ])

(** The quick-synthesis pipeline of a version (§5.2): DFG, schedule,
    the optional exact-II oracle, estimate report. *)
let estimate_passes ?(target = Datapath.default)
    ?(exact = Uas_dfg.Sched.Exact_off) (version : version) : Pass.t list =
  let pipelined = pipelined version in
  [ Stages.dfg_build ~target ();
    Stages.schedule ~target ~pipelined ();
    Stages.exact_ii ~target ~pipelined ~mode:exact ();
    Stages.estimate ~target ~pipelined ~name:(version_name version) () ]

let built_of_cu version cu =
  { bv_version = version;
    bv_program = Cu.program cu;
    bv_kernel_index = Cu.inner_index cu }

(** Apply [version] to the nest identified by [outer_index] in [p],
    running the transformation pipeline.  [after] is called with the
    compilation unit after every pass (nimblec's [--dump-after]). *)
let build_version_result ?after (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : (built, Diag.t) result =
  let cu = Cu.make p ~outer_index ~inner_index in
  Result.map (built_of_cu version) (Pass.run ?after cu (transform_passes version))

(** [build_version_result], raising the diagnostic.
    @raise Uas_pass.Diag.Failed when the transformation is illegal at
    the requested factor (or the nest is missing). *)
let build_version (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : built =
  match build_version_result p ~outer_index ~inner_index version with
  | Ok b -> b
  | Error d -> Diag.fail d

(** Estimate a built version on [target]. *)
let estimate ?(target = Datapath.default) (b : built) : Estimate.report =
  Estimate.kernel ~target ~pipelined:(pipelined b.bv_version)
    ~name:(version_name b.bv_version)
    b.bv_program ~index:b.bv_kernel_index

(** Per-version result of a sweep: the built program with its report;
    built but degraded (one or more rewrites failed validation and were
    not applied — the report describes the last-known-good program, the
    diagnostics say what went wrong); or skipped with the diagnostic
    explaining why the version was not built at all. *)
type outcome =
  | Built of built * Estimate.report
  | Degraded of built * Estimate.report * Diag.t list
  | Skipped of Diag.t

(** Transform + quick-synthesis pipeline for one version, keeping the
    final compilation unit (whose memoized artifacts — notably the
    fast-interpreter compilation — downstream verification reuses). *)
let run_version_cu ?(target = Datapath.default) ?after ?validate ?exact
    (p : Stmt.program) ~outer_index ~inner_index (version : version) :
    (Cu.t * built * Estimate.report, Diag.t) result =
  let cu = Cu.make p ~outer_index ~inner_index in
  let passes =
    transform_passes ?validate version @ estimate_passes ~target ?exact version
  in
  match Pass.run ?after cu passes with
  | Ok cu -> (
    match Cu.report cu with
    | Some r -> Ok (cu, built_of_cu version cu, r)
    | None ->
      (* the estimate pass always sets the report artifact *)
      assert false)
  | Error d ->
    Instrument.incr "sweep.illegal-versions";
    Error d

let outcome_of_cu_result = function
  | Ok (cu, b, r) -> (
    match Cu.incidents cu with [] -> Built (b, r) | ds -> Degraded (b, r, ds))
  | Error d -> Skipped d

(** Transform + quick-synthesis pipeline for one version, end to
    end. *)
let run_version ?target ?after ?validate (p : Stmt.program) ~outer_index
    ~inner_index (version : version) : outcome =
  outcome_of_cu_result
    (run_version_cu ?target ?after ?validate p ~outer_index ~inner_index
       version)

(** Build and estimate every requested version of a benchmark nest,
    fanning the independent versions out over the domain pool.  Every
    version gets an outcome: [Built] with its report, [Degraded] when
    validation rejected a rewrite, or [Skipped] with the diagnostic of
    the pass that rejected it — a task the pool itself gives up on
    (uncaught exception after retries, wall-budget timeout) becomes
    [Skipped] too, so no single bad cell can abort the sweep. *)
let sweep ?(target = Datapath.default) ?(versions = paper_versions) ?jobs
    ?validate ?timeout_s ?retries (p : Stmt.program) ~outer_index ~inner_index
    : (version * outcome) list =
  Parallel.map_results ?jobs ?timeout_s ?retries
    (fun v ->
      Fault.with_scope (version_name v) (fun () ->
          run_version ~target ?validate p ~outer_index ~inner_index v))
    versions
  |> List.map2
       (fun v -> function
         | Ok outcome -> (v, outcome)
         | Error tf ->
           Instrument.incr "sweep.task-failures";
           ( v,
             Skipped
               (Diag.errorf ~pass:"task" "%s"
                  (Parallel.Task_failure.to_message tf)) ))
       versions

(** The successfully built rows of a sweep (degraded cells included —
    their reports describe the last-known-good program), in sweep
    order. *)
let successes (rows : (version * outcome) list) :
    (version * built * Estimate.report) list =
  List.filter_map
    (function
      | v, (Built (b, r) | Degraded (b, r, _)) -> Some (v, b, r)
      | _, Skipped _ -> None)
    rows

(** The skipped versions of a sweep with their diagnostics. *)
let skipped (rows : (version * outcome) list) : (version * Diag.t) list =
  List.filter_map
    (function
      | v, Skipped d -> Some (v, d) | _, (Built _ | Degraded _) -> None)
    rows

(** The degraded versions of a sweep with their incident logs. *)
let degraded (rows : (version * outcome) list) : (version * Diag.t list) list
    =
  List.filter_map
    (function
      | v, Degraded (_, _, ds) -> Some (v, ds)
      | _, (Built _ | Skipped _) -> None)
    rows

(** Kernel selection: the version maximizing speedup per area (the
    efficiency metric of Figure 6.3), given the original's report as
    the baseline. *)
let select_best (rows : (version * built * Estimate.report) list) :
    (version * built * Estimate.report) option =
  let baseline =
    List.find_map
      (fun (v, _, r) -> if v = Original then Some r else None)
      rows
  in
  match baseline with
  | None -> None
  | Some base ->
    let efficiency (r : Estimate.report) =
      let speedup =
        float_of_int base.Estimate.r_total_cycles
        /. float_of_int (max 1 r.Estimate.r_total_cycles)
      in
      let area_factor =
        float_of_int r.Estimate.r_area_rows
        /. float_of_int (max 1 base.Estimate.r_area_rows)
      in
      speedup /. area_factor
    in
    List.fold_left
      (fun best row ->
        let _, _, r = row in
        match best with
        | None -> Some row
        | Some (_, _, rb) ->
          if efficiency r > efficiency rb then Some row else best)
      None rows
