(* The Nimble-Compiler-style driver (§5.2): takes a kernel, generates
   the transformed versions Table 6.2 compares, estimates each with the
   quick-synthesis model, and can select the best version by a given
   figure of merit (the kernel-selection step).

   The ten versions per benchmark: original (non-pipelined), pipelined,
   unroll-and-squash by 2/4/8/16, pipelined unroll-and-jam by
   2/4/8/16. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Squash = Uas_transform.Squash
module Jam = Uas_transform.Unroll_and_jam
module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument

type version =
  | Original
  | Pipelined
  | Squashed of int
  | Jammed of int
  | Combined of int * int
      (* jam by the first factor, then squash the result by the second
         (the §2 composition: operators scale with the jam factor only,
         the squash on top fills their idle slots) *)

let version_name = function
  | Original -> "original"
  | Pipelined -> "pipelined"
  | Squashed ds -> Printf.sprintf "squash(%d)" ds
  | Jammed ds -> Printf.sprintf "jam(%d)" ds
  | Combined (j, s) -> Printf.sprintf "jam(%d)+squash(%d)" j s

(** The version set of Table 6.2. *)
let paper_versions : version list =
  [ Original; Pipelined;
    Squashed 2; Squashed 4; Squashed 8; Squashed 16;
    Jammed 2; Jammed 4; Jammed 8; Jammed 16 ]

type built = {
  bv_version : version;
  bv_program : Stmt.program;
  bv_kernel_index : string;  (** loop index of the hardware kernel *)
}

(** Apply [version] to the nest identified by [outer_index] in [p].
    The returned program is the complete transformed program (still
    runnable in software); the kernel index locates the loop that maps
    to hardware. *)
let build_version (p : Stmt.program) ~outer_index ~inner_index
    (version : version) : built =
  let find q idx = Instrument.span "analyze" (fun () ->
      Loop_nest.find_by_outer_index q idx)
  in
  let squash q nest ~ds = Instrument.span "build" (fun () ->
      Squash.apply q nest ~ds)
  in
  let jam q nest ~ds = Instrument.span "build" (fun () ->
      Jam.apply q nest ~ds)
  in
  match version with
  | Original | Pipelined ->
    { bv_version = version; bv_program = p; bv_kernel_index = inner_index }
  | Squashed ds ->
    let nest = find p outer_index in
    let out = squash p nest ~ds in
    { bv_version = version;
      bv_program = out.Squash.program;
      bv_kernel_index = out.Squash.new_inner_index }
  | Jammed ds ->
    let nest = find p outer_index in
    let out = jam p nest ~ds in
    { bv_version = version;
      bv_program = out.Jam.program;
      bv_kernel_index = inner_index }
  | Combined (jam_ds, squash_ds) ->
    let nest = find p outer_index in
    let jammed = jam p nest ~ds:jam_ds in
    let nest' = find jammed.Jam.program outer_index in
    let out = squash jammed.Jam.program nest' ~ds:squash_ds in
    { bv_version = version;
      bv_program = out.Squash.program;
      bv_kernel_index = out.Squash.new_inner_index }

(** Estimate a built version on [target]. *)
let estimate ?(target = Datapath.default) (b : built) : Estimate.report =
  let pipelined = match b.bv_version with Original -> false | _ -> true in
  Estimate.kernel ~target ~pipelined
    ~name:(version_name b.bv_version)
    b.bv_program ~index:b.bv_kernel_index

(** Build and estimate every requested version of a benchmark nest,
    fanning the independent versions out over the domain pool.
    Versions whose transformation is illegal at that factor are
    dropped. *)
let sweep ?(target = Datapath.default) ?(versions = paper_versions) ?jobs
    (p : Stmt.program) ~outer_index ~inner_index :
    (version * built * Estimate.report) list =
  let build_one v =
    match build_version p ~outer_index ~inner_index v with
    | b -> Some (v, b, estimate ~target b)
    | exception (Squash.Squash_error _ | Jam.Jam_error _) ->
      Instrument.incr "sweep.illegal-versions";
      None
  in
  List.filter_map Fun.id (Parallel.map ?jobs build_one versions)

(** Kernel selection: the version maximizing speedup per area (the
    efficiency metric of Figure 6.3), given the original's report as
    the baseline. *)
let select_best (rows : (version * built * Estimate.report) list) :
    (version * built * Estimate.report) option =
  let baseline =
    List.find_map
      (fun (v, _, r) -> if v = Original then Some r else None)
      rows
  in
  match baseline with
  | None -> None
  | Some base ->
    let efficiency (r : Estimate.report) =
      let speedup =
        float_of_int base.Estimate.r_total_cycles
        /. float_of_int (max 1 r.Estimate.r_total_cycles)
      in
      let area_factor =
        float_of_int r.Estimate.r_area_rows
        /. float_of_int (max 1 base.Estimate.r_area_rows)
      in
      speedup /. area_factor
    in
    List.fold_left
      (fun best row ->
        let _, _, r = row in
        match best with
        | None -> Some row
        | Some (_, _, rb) ->
          if efficiency r > efficiency rb then Some row else best)
      None rows
