(* The cost-model-driven transform planner: enumerate legal rewrite
   sequences ending in unroll-and-squash, score each with the §5.2
   quick-synthesis estimate, and rank them by an objective.

   A candidate is an enabling prefix (hoist, if-conversion,
   scalarization, scalar cleanup, interchange — the §4.2 rewrites that
   widen squash's applicability or shrink its kernel) followed by
   squash at DS in {2, 4, 8}; the two untransformed designs (original,
   pipelined) anchor the ranking.  Every candidate runs the same
   memoized pass pipeline the sweep engine uses — analyze, the rewrite
   passes from the registry, then dfg-build/schedule/estimate — fanned
   out over the domain pool.  An illegal candidate keeps its diagnostic
   and ranks below every estimated one, so a plan table always accounts
   for the full search space. *)

module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module Rewrite = Uas_transform.Rewrite

type objective = Ii | Area | Ratio

let objective_name = function Ii -> "ii" | Area -> "area" | Ratio -> "ratio"

let objective_of_string = function
  | "ii" -> Some Ii
  | "area" -> Some Area
  | "ratio" -> Some Ratio
  | _ -> None

(** A point of the search space: the rewrite sequence (registry names;
    squash last carries the factor) and the squash factor, or one of
    the two baselines at [ds = 1]. *)
type candidate = {
  c_label : string;
  c_sequence : string list;  (** registry names, applied in order *)
  c_ds : int;  (** squash factor; 1 on the baselines *)
  c_pipelined : bool;  (** modulo-scheduled kernel? *)
}

(** The enabling prefixes the planner explores, each a registry-name
    sequence. *)
let enabling_prefixes : string list list =
  [ []; [ "hoist" ]; [ "ifconv" ]; [ "scalarize" ]; [ "scalar-opts" ];
    [ "interchange" ]; [ "hoist"; "scalar-opts" ] ]

let default_factors = [ 2; 4; 8 ]

let label_of sequence ds =
  match sequence with
  | [] -> Printf.sprintf "squash(%d)" ds
  | prefix ->
    Printf.sprintf "%s+squash(%d)" (String.concat "+" prefix) ds

(** The search space for a kernel nest of the given depth (default 2).
    Deeper nests prepend one flatten per extra level to every prefix:
    squash needs an adjacent pair with a loop-free inner body, and each
    flatten collapses the top pair, so depth d takes d-2 of them. *)
let candidates ?(factors = default_factors) ?(depth = 2) () : candidate list =
  let flatten_prefix = List.init (max 0 (depth - 2)) (fun _ -> "flatten") in
  { c_label = "original"; c_sequence = []; c_ds = 1; c_pipelined = false }
  :: { c_label = "pipelined"; c_sequence = []; c_ds = 1; c_pipelined = true }
  :: List.concat_map
       (fun prefix ->
         let prefix = flatten_prefix @ prefix in
         List.map
           (fun ds ->
             { c_label = label_of prefix ds;
               c_sequence = prefix @ [ "squash" ];
               c_ds = ds;
               c_pipelined = true })
           factors)
       enabling_prefixes

(** One scored candidate: the estimate report, or the diagnostic of the
    pass that rejected it.  [r_incidents] carries the non-fatal trouble
    the candidate's pipeline degraded around (rewrites rejected by
    translation validation) — its report then describes the
    last-known-good program of the sequence. *)
type row = {
  r_candidate : candidate;
  r_outcome : (Estimate.report, Diag.t) result;
  r_gap : (int * Uas_dfg.Sched.exact) option;
      (** with [exact = Exact_report] on a pipelined candidate: the
          heuristic II next to the exact oracle's verdict *)
  r_incidents : Diag.t list;
}

type plan = {
  p_benchmark : string;
  p_objective : objective;
  p_baseline : Estimate.report option;  (** the original design's report *)
  p_rows : row list;  (** ranked, best first; skipped candidates last *)
}

let rewrite_passes ?validate (c : candidate) : Pass.t list =
  List.map
    (fun name ->
      if String.equal name "squash" then
        Rewrite.pass ~factor:c.c_ds ?validate "squash"
      else Rewrite.pass ?validate name)
    c.c_sequence

(* ---- plan-row serialization (artifact store) ----

   A whole scored row — outcome (report or diagnostic), optional gap
   verdict, incident list — round-trips through a versioned line-based
   form, so a warm [plan] run replays every footnote byte-identically
   without running a single pass pipeline. *)

let severity_name = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Note -> "note"

let severity_of_name = function
  | "error" -> Some Diag.Error
  | "warning" -> Some Diag.Warning
  | "note" -> Some Diag.Note
  | _ -> None

(* one diagnostic as a single tab-separated line: String.escaped
   removes embedded tabs/newlines, and optional fields carry a -/+
   marker so [None] and [Some ""] stay distinct *)
let diag_atom (d : Diag.t) =
  let opt = function None -> "-" | Some s -> "+" ^ String.escaped s in
  String.concat "\t"
    [ severity_name d.Diag.d_severity;
      String.escaped d.Diag.d_pass;
      opt d.Diag.d_loc.Diag.loc_loop;
      opt d.Diag.d_loc.Diag.loc_stmt;
      String.escaped d.Diag.d_message ]

let diag_of_atom s : Diag.t option =
  let ( let* ) = Option.bind in
  let unesc x =
    match Scanf.unescaped x with v -> Some v | exception _ -> None
  in
  let opt = function
    | "-" -> Some None
    | x when String.length x >= 1 && Char.equal x.[0] '+' ->
      Option.map Option.some (unesc (String.sub x 1 (String.length x - 1)))
    | _ -> None
  in
  match String.split_on_char '\t' s with
  | [ sev_s; pass_s; loop_s; stmt_s; msg_s ] ->
    let* sev = severity_of_name sev_s in
    let* pass = unesc pass_s in
    let* loop = opt loop_s in
    let* stmt = opt stmt_s in
    let* msg = unesc msg_s in
    Some
      { Diag.d_severity = sev;
        d_pass = pass;
        d_loc = { Diag.loc_loop = loop; loc_stmt = stmt };
        d_message = msg }
  | _ -> None

let row_payload (row : row) =
  let b = Buffer.create 256 in
  Buffer.add_string b "plan-row 1\n";
  (match row.r_outcome with
  | Ok r ->
    Buffer.add_string b ("outcome ok " ^ Estimate.report_to_string r ^ "\n")
  | Error d -> Buffer.add_string b ("outcome err " ^ diag_atom d ^ "\n"));
  (match row.r_gap with
  | None -> Buffer.add_string b "gap -\n"
  | Some (hii, e) ->
    Buffer.add_string b
      (Printf.sprintf "gap %d %s\n" hii (Uas_dfg.Sched.exact_to_string e)));
  List.iter
    (fun d -> Buffer.add_string b ("incident " ^ diag_atom d ^ "\n"))
    row.r_incidents;
  Buffer.contents b

let row_of_payload (c : candidate) payload : row option =
  let ( let* ) = Option.bind in
  let strip ~prefix s =
    let np = String.length prefix in
    if String.length s >= np && String.equal (String.sub s 0 np) prefix then
      Some (String.sub s np (String.length s - np))
    else None
  in
  match String.split_on_char '\n' payload with
  | "plan-row 1" :: outcome_l :: gap_l :: rest ->
    let* outcome =
      match strip ~prefix:"outcome ok " outcome_l with
      | Some r_s -> Option.map Result.ok (Estimate.report_of_string r_s)
      | None -> (
        match strip ~prefix:"outcome err " outcome_l with
        | Some d_s -> Option.map Result.error (diag_of_atom d_s)
        | None -> None)
    in
    let* gap =
      if String.equal gap_l "gap -" then Some None
      else
        let* g_s = strip ~prefix:"gap " gap_l in
        let* i = String.index_opt g_s ' ' in
        let* hii = int_of_string_opt (String.sub g_s 0 i) in
        let* e =
          Uas_dfg.Sched.exact_of_string
            (String.sub g_s (i + 1) (String.length g_s - i - 1))
        in
        Some (Some (hii, e))
    in
    let rec incs acc = function
      | [] | [ "" ] -> Some (List.rev acc)
      | l :: rest ->
        let* d_s = strip ~prefix:"incident " l in
        let* d = diag_of_atom d_s in
        incs (d :: acc) rest
    in
    let* incidents = incs [] rest in
    Some
      { r_candidate = c;
        r_outcome = outcome;
        r_gap = gap;
        r_incidents = incidents }
  | _ -> None

(* everything a scored row depends on besides the benchmark program
   text (which Cu.store_key hashes): the candidate, the kernel
   location, the datapath, oracle modes and effort budgets, whether
   rewrites are translation-validated, and the cost-model version *)
let row_context ?validate ~exact ~target ~outer_index ~inner_index
    (c : candidate) =
  [ "target=" ^ Datapath.fingerprint target;
    "outer=" ^ outer_index;
    "inner=" ^ inner_index;
    "label=" ^ c.c_label;
    "seq=" ^ String.concat "+" c.c_sequence;
    "ds=" ^ string_of_int c.c_ds;
    "pipelined=" ^ string_of_bool c.c_pipelined;
    "exact=" ^ Uas_dfg.Sched.exact_mode_name exact;
    "validate=" ^ string_of_bool (Option.is_some validate);
    "cost-model=" ^ string_of_int Estimate.cost_model_version;
    "effort=" ^ string_of_int Uas_dfg.Sched.default_effort;
    "exact-effort=" ^ string_of_int Uas_dfg.Sched.default_exact_effort ]

let run_candidate ?validate ?(exact = Uas_dfg.Sched.Exact_off) ~target
    (p : Uas_ir.Stmt.program) ~outer_index ~inner_index (c : candidate) : row
    =
  let cu = Cu.make p ~outer_index ~inner_index in
  let kind = "plan-row" in
  let context =
    row_context ?validate ~exact ~target ~outer_index ~inner_index c
  in
  let cached =
    match Cu.store_get cu ~kind ~context with
    | None -> None
    | Some payload -> (
      match row_of_payload c payload with
      | Some _ as ok -> ok
      | None ->
        Cu.store_undecodable cu ~kind;
        None)
  in
  match cached with
  | Some row -> row
  | None ->
    let passes =
      (Stages.analyze :: rewrite_passes ?validate c)
      @ [ Stages.dfg_build ~target ();
          Stages.schedule ~target ~pipelined:c.c_pipelined ();
          Stages.exact_ii ~target ~pipelined:c.c_pipelined ~mode:exact ();
          Stages.estimate ~target ~pipelined:c.c_pipelined ~name:c.c_label ()
        ]
    in
    let row =
      match Pass.run cu passes with
      | Ok cu -> (
        match Cu.report cu with
        | Some r ->
          let gap =
            if exact = Uas_dfg.Sched.Exact_report && c.c_pipelined then
              match (Cu.schedule cu, Cu.exact cu) with
              | Some s, Some e -> Some (s.Uas_dfg.Sched.s_ii, e)
              | _ -> None
            else None
          in
          { r_candidate = c;
            r_outcome = Ok r;
            r_gap = gap;
            r_incidents = Cu.incidents cu }
        | None -> assert false (* the estimate pass always sets the report *)
        )
      | Error d ->
        { r_candidate = c; r_outcome = Error d; r_gap = None; r_incidents = [] }
    in
    Cu.store_put cu ~kind ~context (row_payload row);
    row

(* ---- metrics and ranking ---- *)

let speedup ~(base : Estimate.report) (r : Estimate.report) =
  float_of_int base.Estimate.r_total_cycles
  /. float_of_int (max 1 r.Estimate.r_total_cycles)

let area_factor ~(base : Estimate.report) (r : Estimate.report) =
  float_of_int r.Estimate.r_area_rows
  /. float_of_int (max 1 base.Estimate.r_area_rows)

let ratio ~base r = speedup ~base r /. area_factor ~base r

(* Smaller key ranks first; ties break deterministically on II, cycles,
   area, and finally the label, so plan tables are reproducible across
   domain pools. *)
let rank_key objective ~base (row : row) =
  match row.r_outcome with
  | Error _ -> (infinity, (max_int, max_int, max_int, row.r_candidate.c_label))
  | Ok r ->
    let primary =
      match objective with
      | Ii -> float_of_int r.Estimate.r_ii
      | Area -> float_of_int r.Estimate.r_area_rows
      | Ratio -> (
        match base with Some b -> -.ratio ~base:b r | None -> 0.0)
    in
    ( primary,
      ( r.Estimate.r_ii,
        r.Estimate.r_total_cycles,
        r.Estimate.r_area_rows,
        row.r_candidate.c_label ) )

(** Score every candidate of the search space on the benchmark nest and
    rank by [objective] (default: [Ratio], the Figure 6.3 efficiency
    metric).  Candidates fan out over the domain pool like sweep
    versions; each runs inside a fault scope named
    ["<benchmark>/<label>"], and a task the pool gives up on ranks last
    with a [task] diagnostic instead of aborting the plan. *)
let plan ?(target = Datapath.default) ?jobs ?(objective = Ratio)
    ?(factors = default_factors) ?validate ?exact ?timeout_s ?retries
    (p : Uas_ir.Stmt.program) ~outer_index ~inner_index ~benchmark : plan =
  let cands =
    let depth =
      Option.value ~default:2
        (Uas_analysis.Loop_nest.depth_at p outer_index)
    in
    candidates ~factors ~depth ()
  in
  let rows =
    Parallel.map_results ?jobs ?timeout_s ?retries
      (fun c ->
        Fault.with_scope
          (benchmark ^ "/" ^ c.c_label)
          (fun () ->
            run_candidate ?validate ?exact ~target p ~outer_index ~inner_index
              c))
      cands
    |> List.map2
         (fun c -> function
           | Ok row -> row
           | Error tf ->
             Instrument.incr "plan.task-failures";
             { r_candidate = c;
               r_outcome =
                 Error
                   (Diag.errorf ~pass:"task" "%s"
                      (Parallel.Task_failure.to_message tf));
               r_gap = None;
               r_incidents = [] })
         cands
  in
  let baseline =
    List.find_map
      (fun row ->
        match (row.r_candidate.c_label, row.r_outcome) with
        | "original", Ok r -> Some r
        | _ -> None)
      rows
  in
  let ranked =
    List.stable_sort
      (fun a b ->
        compare (rank_key objective ~base:baseline a)
          (rank_key objective ~base:baseline b))
      rows
  in
  { p_benchmark = benchmark;
    p_objective = objective;
    p_baseline = baseline;
    p_rows = ranked }

(** The rank (1-based, in plan order) of the first estimated row whose
    label satisfies the predicate. *)
let rank_of (plan : plan) f : int option =
  let rec go k = function
    | [] -> None
    | { r_candidate; r_outcome = Ok _; _ } :: _ when f r_candidate -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 1 plan.p_rows

(* ---- rendering ---- *)

let pp ppf (plan : plan) =
  Fmt.pf ppf "plan for %s (objective: %s)@." plan.p_benchmark
    (objective_name plan.p_objective);
  Fmt.pf ppf "%-4s %-28s %4s %6s %6s %8s %8s %7s %7s@." "rank" "plan" "DS"
    "II" "sched" "area" "cycles" "speedup" "ratio";
  let rank = ref 0 in
  List.iter
    (fun row ->
      match row.r_outcome with
      | Ok r ->
        incr rank;
        let sp, rt =
          match plan.p_baseline with
          | Some base -> (speedup ~base r, ratio ~base r)
          | None -> (1.0, 1.0)
        in
        Fmt.pf ppf "%-4d %-28s %4d %6d %6d %8d %8d %7.2f %7.2f@." !rank
          row.r_candidate.c_label row.r_candidate.c_ds r.Estimate.r_ii
          r.Estimate.r_sched_len r.Estimate.r_area_rows
          r.Estimate.r_total_cycles sp rt
      | Error _ -> ())
    plan.p_rows;
  List.iter
    (fun row ->
      match row.r_gap with
      | None -> ()
      | Some gap ->
        Fmt.pf ppf "gap: %s — %a@." row.r_candidate.c_label
          Uas_dfg.Sched.pp_gap gap)
    plan.p_rows;
  List.iter
    (fun row ->
      List.iter
        (fun d ->
          Fmt.pf ppf "degraded: %s — %a@." row.r_candidate.c_label Diag.pp d)
        row.r_incidents)
    plan.p_rows;
  let skipped =
    List.filter_map
      (fun row ->
        match row.r_outcome with
        | Error d -> Some (row.r_candidate.c_label, d)
        | Ok _ -> None)
      plan.p_rows
  in
  List.iter
    (fun (label, d) -> Fmt.pf ppf "skipped: %s — %a@." label Diag.pp d)
    skipped
