(* The cost-model-driven transform planner: enumerate legal rewrite
   sequences ending in unroll-and-squash, score each with the §5.2
   quick-synthesis estimate, and rank them by an objective.

   A candidate is an enabling prefix (hoist, if-conversion,
   scalarization, scalar cleanup, interchange — the §4.2 rewrites that
   widen squash's applicability or shrink its kernel) followed by
   squash at DS in {2, 4, 8}; the two untransformed designs (original,
   pipelined) anchor the ranking.  Every candidate runs the same
   memoized pass pipeline the sweep engine uses — analyze, the rewrite
   passes from the registry, then dfg-build/schedule/estimate — fanned
   out over the domain pool.  An illegal candidate keeps its diagnostic
   and ranks below every estimated one, so a plan table always accounts
   for the full search space. *)

module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module Rewrite = Uas_transform.Rewrite

type objective = Ii | Area | Ratio

let objective_name = function Ii -> "ii" | Area -> "area" | Ratio -> "ratio"

let objective_of_string = function
  | "ii" -> Some Ii
  | "area" -> Some Area
  | "ratio" -> Some Ratio
  | _ -> None

(** A point of the search space: the rewrite sequence (registry names;
    squash last carries the factor) and the squash factor, or one of
    the two baselines at [ds = 1]. *)
type candidate = {
  c_label : string;
  c_sequence : string list;  (** registry names, applied in order *)
  c_ds : int;  (** squash factor; 1 on the baselines *)
  c_pipelined : bool;  (** modulo-scheduled kernel? *)
}

(** The enabling prefixes the planner explores, each a registry-name
    sequence. *)
let enabling_prefixes : string list list =
  [ []; [ "hoist" ]; [ "ifconv" ]; [ "scalarize" ]; [ "scalar-opts" ];
    [ "interchange" ]; [ "hoist"; "scalar-opts" ] ]

let default_factors = [ 2; 4; 8 ]

let label_of sequence ds =
  match sequence with
  | [] -> Printf.sprintf "squash(%d)" ds
  | prefix ->
    Printf.sprintf "%s+squash(%d)" (String.concat "+" prefix) ds

let candidates ?(factors = default_factors) () : candidate list =
  { c_label = "original"; c_sequence = []; c_ds = 1; c_pipelined = false }
  :: { c_label = "pipelined"; c_sequence = []; c_ds = 1; c_pipelined = true }
  :: List.concat_map
       (fun prefix ->
         List.map
           (fun ds ->
             { c_label = label_of prefix ds;
               c_sequence = prefix @ [ "squash" ];
               c_ds = ds;
               c_pipelined = true })
           factors)
       enabling_prefixes

(** One scored candidate: the estimate report, or the diagnostic of the
    pass that rejected it.  [r_incidents] carries the non-fatal trouble
    the candidate's pipeline degraded around (rewrites rejected by
    translation validation) — its report then describes the
    last-known-good program of the sequence. *)
type row = {
  r_candidate : candidate;
  r_outcome : (Estimate.report, Diag.t) result;
  r_gap : (int * Uas_dfg.Sched.exact) option;
      (** with [exact = Exact_report] on a pipelined candidate: the
          heuristic II next to the exact oracle's verdict *)
  r_incidents : Diag.t list;
}

type plan = {
  p_benchmark : string;
  p_objective : objective;
  p_baseline : Estimate.report option;  (** the original design's report *)
  p_rows : row list;  (** ranked, best first; skipped candidates last *)
}

let rewrite_passes ?validate (c : candidate) : Pass.t list =
  List.map
    (fun name ->
      if String.equal name "squash" then
        Rewrite.pass ~factor:c.c_ds ?validate "squash"
      else Rewrite.pass ?validate name)
    c.c_sequence

let run_candidate ?validate ?(exact = Uas_dfg.Sched.Exact_off) ~target
    (p : Uas_ir.Stmt.program) ~outer_index ~inner_index (c : candidate) : row
    =
  let cu = Cu.make p ~outer_index ~inner_index in
  let passes =
    (Stages.analyze :: rewrite_passes ?validate c)
    @ [ Stages.dfg_build ~target ();
        Stages.schedule ~target ~pipelined:c.c_pipelined ();
        Stages.exact_ii ~target ~pipelined:c.c_pipelined ~mode:exact ();
        Stages.estimate ~target ~pipelined:c.c_pipelined ~name:c.c_label () ]
  in
  match Pass.run cu passes with
  | Ok cu -> (
    match Cu.report cu with
    | Some r ->
      let gap =
        if exact = Uas_dfg.Sched.Exact_report && c.c_pipelined then
          match (Cu.schedule cu, Cu.exact cu) with
          | Some s, Some e -> Some (s.Uas_dfg.Sched.s_ii, e)
          | _ -> None
        else None
      in
      { r_candidate = c;
        r_outcome = Ok r;
        r_gap = gap;
        r_incidents = Cu.incidents cu }
    | None -> assert false (* the estimate pass always sets the report *))
  | Error d ->
    { r_candidate = c; r_outcome = Error d; r_gap = None; r_incidents = [] }

(* ---- metrics and ranking ---- *)

let speedup ~(base : Estimate.report) (r : Estimate.report) =
  float_of_int base.Estimate.r_total_cycles
  /. float_of_int (max 1 r.Estimate.r_total_cycles)

let area_factor ~(base : Estimate.report) (r : Estimate.report) =
  float_of_int r.Estimate.r_area_rows
  /. float_of_int (max 1 base.Estimate.r_area_rows)

let ratio ~base r = speedup ~base r /. area_factor ~base r

(* Smaller key ranks first; ties break deterministically on II, cycles,
   area, and finally the label, so plan tables are reproducible across
   domain pools. *)
let rank_key objective ~base (row : row) =
  match row.r_outcome with
  | Error _ -> (infinity, (max_int, max_int, max_int, row.r_candidate.c_label))
  | Ok r ->
    let primary =
      match objective with
      | Ii -> float_of_int r.Estimate.r_ii
      | Area -> float_of_int r.Estimate.r_area_rows
      | Ratio -> (
        match base with Some b -> -.ratio ~base:b r | None -> 0.0)
    in
    ( primary,
      ( r.Estimate.r_ii,
        r.Estimate.r_total_cycles,
        r.Estimate.r_area_rows,
        row.r_candidate.c_label ) )

(** Score every candidate of the search space on the benchmark nest and
    rank by [objective] (default: [Ratio], the Figure 6.3 efficiency
    metric).  Candidates fan out over the domain pool like sweep
    versions; each runs inside a fault scope named
    ["<benchmark>/<label>"], and a task the pool gives up on ranks last
    with a [task] diagnostic instead of aborting the plan. *)
let plan ?(target = Datapath.default) ?jobs ?(objective = Ratio)
    ?(factors = default_factors) ?validate ?exact ?timeout_s ?retries
    (p : Uas_ir.Stmt.program) ~outer_index ~inner_index ~benchmark : plan =
  let cands = candidates ~factors () in
  let rows =
    Parallel.map_results ?jobs ?timeout_s ?retries
      (fun c ->
        Fault.with_scope
          (benchmark ^ "/" ^ c.c_label)
          (fun () ->
            run_candidate ?validate ?exact ~target p ~outer_index ~inner_index
              c))
      cands
    |> List.map2
         (fun c -> function
           | Ok row -> row
           | Error tf ->
             Instrument.incr "plan.task-failures";
             { r_candidate = c;
               r_outcome =
                 Error
                   (Diag.errorf ~pass:"task" "%s"
                      (Parallel.Task_failure.to_message tf));
               r_gap = None;
               r_incidents = [] })
         cands
  in
  let baseline =
    List.find_map
      (fun row ->
        match (row.r_candidate.c_label, row.r_outcome) with
        | "original", Ok r -> Some r
        | _ -> None)
      rows
  in
  let ranked =
    List.stable_sort
      (fun a b ->
        compare (rank_key objective ~base:baseline a)
          (rank_key objective ~base:baseline b))
      rows
  in
  { p_benchmark = benchmark;
    p_objective = objective;
    p_baseline = baseline;
    p_rows = ranked }

(** The rank (1-based, in plan order) of the first estimated row whose
    label satisfies the predicate. *)
let rank_of (plan : plan) f : int option =
  let rec go k = function
    | [] -> None
    | { r_candidate; r_outcome = Ok _; _ } :: _ when f r_candidate -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 1 plan.p_rows

(* ---- rendering ---- *)

let pp ppf (plan : plan) =
  Fmt.pf ppf "plan for %s (objective: %s)@." plan.p_benchmark
    (objective_name plan.p_objective);
  Fmt.pf ppf "%-4s %-28s %4s %6s %6s %8s %8s %7s %7s@." "rank" "plan" "DS"
    "II" "sched" "area" "cycles" "speedup" "ratio";
  let rank = ref 0 in
  List.iter
    (fun row ->
      match row.r_outcome with
      | Ok r ->
        incr rank;
        let sp, rt =
          match plan.p_baseline with
          | Some base -> (speedup ~base r, ratio ~base r)
          | None -> (1.0, 1.0)
        in
        Fmt.pf ppf "%-4d %-28s %4d %6d %6d %8d %8d %7.2f %7.2f@." !rank
          row.r_candidate.c_label row.r_candidate.c_ds r.Estimate.r_ii
          r.Estimate.r_sched_len r.Estimate.r_area_rows
          r.Estimate.r_total_cycles sp rt
      | Error _ -> ())
    plan.p_rows;
  List.iter
    (fun row ->
      match row.r_gap with
      | None -> ()
      | Some gap ->
        Fmt.pf ppf "gap: %s — %a@." row.r_candidate.c_label
          Uas_dfg.Sched.pp_gap gap)
    plan.p_rows;
  List.iter
    (fun row ->
      List.iter
        (fun d ->
          Fmt.pf ppf "degraded: %s — %a@." row.r_candidate.c_label Diag.pp d)
        row.r_incidents)
    plan.p_rows;
  let skipped =
    List.filter_map
      (fun row ->
        match row.r_outcome with
        | Error d -> Some (row.r_candidate.c_label, d)
        | Ok _ -> None)
      plan.p_rows
  in
  List.iter
    (fun (label, d) -> Fmt.pf ppf "skipped: %s — %a@." label Diag.pp d)
    skipped
