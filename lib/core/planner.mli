(** The cost-model-driven transform planner: enumerate rewrite
    sequences ending in unroll-and-squash (enabling prefixes from the
    {!Uas_transform.Rewrite} registry × DS in [{2, 4, 8}]), score each
    with the §5.2 quick-synthesis estimate on the sweep engine's
    memoized pass pipeline, and rank by an objective.  Illegal
    candidates keep their diagnostics and rank last, so the table
    accounts for the whole search space. *)

module Estimate = Uas_hw.Estimate
module Datapath = Uas_hw.Datapath
module Diag = Uas_pass.Diag

(** What the ranking optimizes: kernel initiation interval, area rows,
    or speedup per area (the Figure 6.3 efficiency metric, the
    default). *)
type objective = Ii | Area | Ratio

val objective_name : objective -> string

(** ["ii"], ["area"], ["ratio"]. *)
val objective_of_string : string -> objective option

(** A point of the search space. *)
type candidate = {
  c_label : string;  (** e.g. ["hoist+squash(4)"], ["original"] *)
  c_sequence : string list;  (** registry names, applied in order *)
  c_ds : int;  (** squash factor; 1 on the baselines *)
  c_pipelined : bool;  (** modulo-scheduled kernel? *)
}

(** The enabling prefixes explored, each a registry-name sequence. *)
val enabling_prefixes : string list list

(** The squash factors explored by default: [2; 4; 8]. *)
val default_factors : int list

(** The full search space: the [original]/[pipelined] baselines plus
    every enabling prefix × factor, squash last.  For a kernel nest of
    [depth] > 2 (default 2), every prefix is preceded by [depth - 2]
    flattens, which collapse the nest to the adjacent-pair shape squash
    requires. *)
val candidates : ?factors:int list -> ?depth:int -> unit -> candidate list

type row = {
  r_candidate : candidate;
  r_outcome : (Estimate.report, Diag.t) result;
  r_gap : (int * Uas_dfg.Sched.exact) option;
      (** with [exact = Exact_report] on a pipelined candidate: the
          heuristic II next to the exact oracle's verdict, rendered as
          a [gap:] footer via {!Uas_dfg.Sched.pp_gap} *)
  r_incidents : Diag.t list;
      (** rewrites translation validation rejected along this
          candidate's sequence — the report then describes the
          last-known-good program; rendered as [degraded:] footers *)
}

type plan = {
  p_benchmark : string;
  p_objective : objective;
  p_baseline : Estimate.report option;  (** the original design's report *)
  p_rows : row list;  (** ranked, best first; skipped candidates last *)
}

(** Score every candidate on the benchmark nest and rank.  Candidates
    fan out over the domain pool ([jobs]) like sweep versions; ranking
    is deterministic (ties break on II, cycles, area, label).

    Fault tolerance: each candidate runs inside a
    [Uas_runtime.Fault.with_scope] frame named ["<benchmark>/<label>"];
    [validate] translation-validates every rewrite on the probe
    workload (a rejected rewrite degrades the candidate to its
    last-known-good program, logged in [r_incidents]);
    [timeout_s]/[retries] supervise the pool, and a task the pool gives
    up on ranks last with a [task] diagnostic.

    [exact] (default [Exact_off]) runs the second II oracle per
    candidate: [Exact_check] validates the heuristic schedules,
    [Exact_report] additionally certifies the optimal II of pipelined
    candidates and fills [r_gap]. *)
val plan :
  ?target:Datapath.t ->
  ?jobs:int ->
  ?objective:objective ->
  ?factors:int list ->
  ?validate:Uas_ir.Interp.workload ->
  ?exact:Uas_dfg.Sched.exact_mode ->
  ?timeout_s:float ->
  ?retries:int ->
  Uas_ir.Stmt.program ->
  outer_index:string ->
  inner_index:string ->
  benchmark:string ->
  plan

(** The 1-based rank of the first estimated row whose candidate
    satisfies the predicate; [None] when every match was skipped. *)
val rank_of : plan -> (candidate -> bool) -> int option

(** The relative metrics of the ranking, against the original design's
    report. *)
val speedup : base:Estimate.report -> Estimate.report -> float

val area_factor : base:Estimate.report -> Estimate.report -> float

(** [speedup /. area_factor] — the Figure 6.3 efficiency metric. *)
val ratio : base:Estimate.report -> Estimate.report -> float

(** The ranked plan table, skipped candidates footnoted with their
    diagnostics. *)
val pp : plan Fmt.t
