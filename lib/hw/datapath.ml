(* The target datapath model (§5.1, §6.1): an Agile-hardware style
   reconfigurable coprocessor measured in rows.

   Configuration bundles the assumptions Table 6.2 was collected under:
   - at most two memory references per clock cycle, no cache misses;
   - per-operator delays (cycles) and areas (rows);
   - every register occupies one row (the prototype's conservative
     convention, discussed with Figure 6.4);
   - operators are internally pipelined (one new input per cycle). *)

open Uas_ir

type t = {
  name : string;
  mem_ports : int;
  delay_of : Opinfo.op_kind -> int;
  area_of : Opinfo.op_kind -> int;
  registers_per_row : int;
      (** how many registers share one row: 1 for the conservative
          prototype convention; more for packed shift registers *)
  width_aware : bool;
      (** size each operator to its inferred bit width (the back-end
          sizing of §5.4) instead of full 32-bit rows *)
}

(** The ACEV-like default target used throughout the evaluation. *)
let default : t =
  { name = "acev";
    mem_ports = 2;
    delay_of = Opinfo.default_delay;
    area_of = Opinfo.default_area;
    registers_per_row = 1;
    width_aware = false }

(** A single-ported memory variant, for ablation benches. *)
let single_port : t = { default with name = "acev-1port"; mem_ports = 1 }

(** A wide-memory variant (four references per cycle). *)
let quad_port : t = { default with name = "acev-4port"; mem_ports = 4 }

(** A target that packs shift registers four to a row — §6.3 notes most
    squash registers are shift/rotate chains that pack with minimal
    interconnect, making the 1-row-per-register figures conservative. *)
let packed_registers : t =
  { default with name = "acev-packedregs"; registers_per_row = 4 }

(** Width-aware operator sizing (§5.4 back-end behaviour). *)
let width_sized : t = { default with name = "acev-width"; width_aware = true }

(** Rows occupied by [n] registers on this target. *)
let register_area (t : t) n =
  (n + t.registers_per_row - 1) / t.registers_per_row

let sched_config (t : t) : Uas_dfg.Sched.config =
  { Uas_dfg.Sched.mem_ports = t.mem_ports }

(* The functional fields (delay_of/area_of) are determined by the
   target name for every built-in target, so name + scalar fields
   identify the model; Estimate.cost_model_version covers changes to
   the tables behind a name. *)
let fingerprint t =
  Printf.sprintf "%s/ports=%d/regrow=%d/width=%b" t.name t.mem_ports
    t.registers_per_row t.width_aware
