(** Kernel hardware estimation — the quick-synthesis step the Nimble
    flow runs before kernel selection (§5.2), and the source of every
    Table 6.2 number: II by scheduling the kernel DFG, area in rows
    (operators + registers), register count, memory references, and
    total execution time from the static trip counts. *)

open Uas_ir

type report = {
  r_name : string;
  r_ii : int;  (** initiation interval, cycles *)
  r_sched_len : int;  (** one-iteration schedule length *)
  r_operators : int;  (** real datapath operators *)
  r_operator_rows : int;
  r_registers : int;
  r_area_rows : int;  (** operators + registers *)
  r_mem_refs : int;  (** memory references per kernel iteration *)
  r_kernel_iterations : int;  (** total kernel iterations over the run *)
  r_total_cycles : int;  (** II * iterations *)
}

val pp_report : report Fmt.t

exception Not_a_kernel of string

(** Total kernel-body executions: the loop's static trip count times
    those of every enclosing loop.  @raise Not_a_kernel on dynamic
    bounds or a missing loop. *)
val kernel_iterations : Stmt.program -> index:string -> int

(** The quick-synthesis flow split into its three stages, so the pass
    pipeline can run them individually and cache the artifacts.
    [kernel] composes exactly these three — a staged run produces a
    bit-identical report. *)

(** Locate the kernel loop and build its DFG with per-node semantics.
    @raise Not_a_kernel as for {!kernel}. *)
val kernel_detail :
  ?target:Datapath.t -> Stmt.program -> index:string -> Uas_dfg.Build.detailed

(** Schedule a kernel DFG under the target's memory-port budget
    ([pipelined] selects modulo vs list scheduling, default true). *)
val kernel_schedule :
  ?target:Datapath.t ->
  ?pipelined:bool ->
  Uas_dfg.Build.detailed ->
  Uas_dfg.Sched.schedule

(** [kernel_schedule] plus the degradation note: [Some message] when
    the modulo scheduler's effort budget ran out and the
    non-overlapped fallback was substituted (also counted as
    [sched.effort-degraded]). *)
val kernel_schedule_note :
  ?target:Datapath.t ->
  ?pipelined:bool ->
  Uas_dfg.Build.detailed ->
  Uas_dfg.Sched.schedule * string option

(** The exact second II oracle ({!Uas_dfg.Sched.optimal_schedule})
    on a kernel DFG, run under a [schedule.exact] instrumentation span;
    the verdict lands in the [sched.exact.<status>] counters and the
    branch-and-bound size in [sched.exact.expansions].  [witness]
    (typically the heuristic schedule) caps the search. *)
val kernel_exact :
  ?target:Datapath.t ->
  ?effort:int ->
  ?witness:Uas_dfg.Sched.schedule ->
  Uas_dfg.Build.detailed ->
  Uas_dfg.Sched.exact

(** Derive the report from a kernel DFG and its schedule.
    @raise Not_a_kernel when the trip counts are dynamic. *)
val assemble :
  ?target:Datapath.t ->
  ?pipelined:bool ->
  ?name:string ->
  Stmt.program ->
  index:string ->
  Uas_dfg.Build.detailed ->
  Uas_dfg.Sched.schedule ->
  report

(** Estimate the kernel identified by the loop index.  [pipelined]
    selects overlapped (modulo-scheduled) execution; the Table 6.2
    "original" designs use [pipelined:false].
    @raise Not_a_kernel when the loop is absent, has dynamic bounds, or
    is not a single basic block. *)
val kernel :
  ?target:Datapath.t ->
  ?pipelined:bool ->
  ?name:string ->
  Stmt.program ->
  index:string ->
  report

(** Operators as a fraction of total area (Figure 6.4). *)
val operator_area_fraction : report -> float

(** {2 Serialization (artifact store)} *)

(** Version of the area/delay cost model; hashed into every estimate
    and planner-row cache key, so cost-model changes invalidate cached
    reports.  Bump it whenever {!Datapath} tables, the register
    estimator or the report derivation change meaning. *)
val cost_model_version : int

(** Versioned single-line form; [report_of_string] returns [None] on
    malformed or version-mismatched input. *)
val report_to_string : report -> string

val report_of_string : string -> report option
