(* Kernel hardware estimation — the quick-synthesis step the Nimble
   Compiler uses before kernel selection (§5.2) and the source of every
   number in Table 6.2.

   Given a program and the loop index of the hardware kernel (the inner
   loop mapped to the datapath), the estimator:
   1. locates the loop and builds the DFG of its straight-line body;
   2. schedules it — resource-constrained list scheduling for a
      non-overlapped design, iterative modulo scheduling for a
      pipelined one — giving the initiation interval;
   3. counts operators, operator rows, memory references and registers;
   4. derives the total kernel execution time from the static trip
      counts of the loop and its enclosing loops. *)

open Uas_ir
module Sched = Uas_dfg.Sched
module Graph = Uas_dfg.Graph
module Build = Uas_dfg.Build

type report = {
  r_name : string;           (** program/version label *)
  r_ii : int;                (** initiation interval, cycles *)
  r_sched_len : int;         (** one-iteration schedule length *)
  r_operators : int;         (** real datapath operators *)
  r_operator_rows : int;     (** rows occupied by the operators *)
  r_registers : int;         (** register count *)
  r_area_rows : int;         (** total rows: operators + registers *)
  r_mem_refs : int;          (** memory references per kernel iteration *)
  r_kernel_iterations : int; (** total kernel iterations over the run *)
  r_total_cycles : int;      (** II * iterations: estimated execution time *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "%-12s II=%-4d ops=%-4d rows=%-5d regs=%-4d mem=%-3d cycles=%d"
    r.r_name r.r_ii r.r_operators r.r_area_rows r.r_registers r.r_mem_refs
    r.r_total_cycles

exception Not_a_kernel of string

let () =
  Printexc.register_printer (function
    | Not_a_kernel m -> Some ("Not_a_kernel: " ^ m)
    | _ -> None)

(* Locate the loop with [index] and the static trip counts of every
   enclosing loop (outermost first). *)
let find_kernel (p : Stmt.program) ~index : Stmt.loop * int list =
  let static_trips (l : Stmt.loop) =
    match (Expr.simplify l.lo, Expr.simplify l.hi) with
    | Expr.Int lo, Expr.Int hi ->
      if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step
    | _ -> raise (Not_a_kernel (Printf.sprintf "loop %s has dynamic bounds" l.index))
  in
  let rec scan enclosing stmts =
    List.find_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index index -> Some (l, List.rev enclosing)
        | Stmt.For l -> scan (static_trips l :: enclosing) l.body
        | Stmt.If (_, t, e) -> (
          match scan enclosing t with Some r -> Some r | None -> scan enclosing e)
        | Stmt.Assign _ | Stmt.Store _ -> None)
      stmts
  in
  match scan [] p.body with
  | Some r -> r
  | None -> raise (Not_a_kernel (Printf.sprintf "no loop with index %s" index))

(** Total number of times the kernel body executes across the program
    run (product of its trip count and all enclosing trip counts). *)
let kernel_iterations (p : Stmt.program) ~index : int =
  let l, enclosing = find_kernel p ~index in
  let own =
    match (Expr.simplify l.lo, Expr.simplify l.hi) with
    | Expr.Int lo, Expr.Int hi ->
      if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step
    | _ -> raise (Not_a_kernel "dynamic kernel bounds")
  in
  List.fold_left ( * ) own enclosing

(* The three quick-synthesis stages, exposed separately so the pass
   pipeline (Uas_pass.Stages) can run them as individual passes with
   their intermediate artifacts cached on the compilation unit.
   [kernel] below composes exactly these three, so a staged run and a
   monolithic run produce identical reports. *)

(** Stage 1: locate the kernel loop and build its DFG (with per-node
    semantics).  @raise Not_a_kernel as for {!kernel}. *)
let kernel_detail ?(target = Datapath.default) (p : Stmt.program) ~index :
    Build.detailed =
  let l, _ = find_kernel p ~index in
  if not (Stmt.is_straight_line l.body) then
    raise
      (Not_a_kernel
         (Printf.sprintf "kernel %s body is not a single basic block" index));
  Uas_runtime.Instrument.span "dfg-build" (fun () ->
      Build.build_detailed ~delay_of:target.Datapath.delay_of
        ~inner_index:l.index l.body)

(** Stage 2: schedule the kernel DFG under the target's port budget.
    The returned note, when present, says the modulo scheduler's effort
    budget ran out and the non-overlapped fallback was substituted
    (counted as [sched.effort-degraded]). *)
let kernel_schedule_note ?(target = Datapath.default) ?(pipelined = true)
    (detail : Build.detailed) : Sched.schedule * string option =
  let cfg = Datapath.sched_config target in
  Uas_runtime.Instrument.span "schedule" (fun () ->
      if pipelined then begin
        let s, note = Sched.modulo_schedule_note ~cfg detail.Build.d_graph in
        if Option.is_some note then
          Uas_runtime.Instrument.incr "sched.effort-degraded";
        (s, note)
      end
      else (Sched.list_schedule ~cfg detail.Build.d_graph, None))

let kernel_schedule ?target ?pipelined (detail : Build.detailed) :
    Sched.schedule =
  fst (kernel_schedule_note ?target ?pipelined detail)

(** The exact second oracle on a kernel DFG: {!Uas_dfg.Sched.optimal_schedule}
    under a [schedule.exact] span, with the verdict and search size
    published as [sched.exact.*] counters.  [witness] (typically the
    heuristic schedule) caps the search and keeps a budget-exhausted
    run bracketed instead of unknown. *)
let kernel_exact ?(target = Datapath.default) ?effort ?witness
    (detail : Build.detailed) : Sched.exact =
  let cfg = Datapath.sched_config target in
  Uas_runtime.Instrument.span "schedule.exact" (fun () ->
      let e =
        Sched.optimal_schedule ~cfg ?effort ?witness detail.Build.d_graph
      in
      Uas_runtime.Instrument.incr
        ("sched.exact." ^ Sched.exact_status_name e.Sched.e_status);
      Uas_runtime.Instrument.incr ~by:e.Sched.e_expansions
        "sched.exact.expansions";
      e)

(** Stage 3: derive the report from the DFG and its schedule. *)
let assemble ?(target = Datapath.default) ?(pipelined = true) ?name
    (p : Stmt.program) ~index (detail : Build.detailed)
    (sched : Sched.schedule) : report =
  let g = detail.Build.d_graph in
  let ii = if pipelined then sched.Sched.s_ii else sched.Sched.s_length in
  let registers = Sched.register_estimate g { sched with Sched.s_ii = ii } in
  let operator_rows =
    if target.Datapath.width_aware then
      Bitwidth.width_aware_operator_area ~area_of:target.area_of detail
        ~roms:
          (List.map
             (fun (r : Stmt.rom_decl) -> (r.Stmt.r_name, r.Stmt.r_data))
             p.Stmt.roms)
    else Graph.total_operator_area ~area_of:target.area_of g
  in
  let iterations = kernel_iterations p ~index in
  { r_name = (match name with Some n -> n | None -> p.prog_name);
    r_ii = ii;
    r_sched_len = sched.Sched.s_length;
    r_operators = Graph.operator_count g;
    r_operator_rows = operator_rows;
    r_registers = registers;
    r_area_rows = operator_rows + Datapath.register_area target registers;
    r_mem_refs = Graph.memory_op_count g;
    r_kernel_iterations = iterations;
    r_total_cycles = ii * iterations }

(** Estimate the kernel identified by loop [index] in [p].

    [pipelined] selects overlapped (modulo-scheduled) execution; the
    original designs of Table 6.2 use [pipelined:false]. *)
let kernel ?(target = Datapath.default) ?(pipelined = true) ?name
    (p : Stmt.program) ~index : report =
  Uas_runtime.Instrument.span "estimate" @@ fun () ->
  let detail = kernel_detail ~target p ~index in
  let sched = kernel_schedule ~target ~pipelined detail in
  assemble ~target ~pipelined ?name p ~index detail sched

(** Operator share of the area, the quantity of Figure 6.4. *)
let operator_area_fraction (r : report) : float =
  if r.r_area_rows = 0 then 0.0
  else float_of_int r.r_operator_rows /. float_of_int r.r_area_rows

(* ---- serialization (artifact store) ---- *)

let cost_model_version = 1

(* [name] goes last, after a fixed field count, so the (arbitrary)
   report name needs no escaping: everything after " name=" is it *)
let report_to_string (r : report) =
  Printf.sprintf
    "report 1 ii=%d len=%d ops=%d oprows=%d regs=%d area=%d mem=%d iters=%d \
     cycles=%d name=%s"
    r.r_ii r.r_sched_len r.r_operators r.r_operator_rows r.r_registers
    r.r_area_rows r.r_mem_refs r.r_kernel_iterations r.r_total_cycles r.r_name

let report_of_string str : report option =
  let ( let* ) = Option.bind in
  let name_marker = " name=" in
  let* name_pos =
    (* the first occurrence: every field before it is integer-valued *)
    let rec find i =
      if i + String.length name_marker > String.length str then None
      else if String.equal (String.sub str i (String.length name_marker)) name_marker
      then Some i
      else find (i + 1)
    in
    find 0
  in
  let r_name =
    String.sub str
      (name_pos + String.length name_marker)
      (String.length str - name_pos - String.length name_marker)
  in
  let prefix = String.sub str 0 name_pos in
  let int_field ~name s =
    let p = name ^ "=" in
    let np = String.length p in
    if String.length s >= np && String.equal (String.sub s 0 np) p then
      int_of_string_opt (String.sub s np (String.length s - np))
    else None
  in
  match String.split_on_char ' ' prefix with
  | [ "report"; "1"; ii_f; len_f; ops_f; oprows_f; regs_f; area_f; mem_f;
      iters_f; cycles_f ] ->
    let* r_ii = int_field ~name:"ii" ii_f in
    let* r_sched_len = int_field ~name:"len" len_f in
    let* r_operators = int_field ~name:"ops" ops_f in
    let* r_operator_rows = int_field ~name:"oprows" oprows_f in
    let* r_registers = int_field ~name:"regs" regs_f in
    let* r_area_rows = int_field ~name:"area" area_f in
    let* r_mem_refs = int_field ~name:"mem" mem_f in
    let* r_kernel_iterations = int_field ~name:"iters" iters_f in
    let* r_total_cycles = int_field ~name:"cycles" cycles_f in
    Some
      { r_name;
        r_ii;
        r_sched_len;
        r_operators;
        r_operator_rows;
        r_registers;
        r_area_rows;
        r_mem_refs;
        r_kernel_iterations;
        r_total_cycles }
  | _ -> None
