(** The target datapath model (§5.1, §6.1): an Agile-hardware style
    reconfigurable coprocessor measured in rows, with the Table 6.2
    assumptions bundled as a configuration. *)

open Uas_ir

type t = {
  name : string;
  mem_ports : int;  (** memory references per clock (§6.1: 2) *)
  delay_of : Opinfo.op_kind -> int;
  area_of : Opinfo.op_kind -> int;
  registers_per_row : int;
      (** 1 for the conservative prototype convention; more for packed
          shift registers (§6.3) *)
  width_aware : bool;
      (** size operators to inferred bit widths (§5.4) *)
}

(** The ACEV-like default target used throughout the evaluation. *)
val default : t

(** Single-ported memory, for ablations. *)
val single_port : t

(** Four memory references per cycle. *)
val quad_port : t

(** Shift registers packed four to a row. *)
val packed_registers : t

(** Operators sized to inferred bit widths. *)
val width_sized : t

(** Rows occupied by [n] registers. *)
val register_area : t -> int -> int

val sched_config : t -> Uas_dfg.Sched.config

(** A stable identity string for cache keys: the target name plus its
    scalar fields.  The delay/area tables are covered by the name (all
    built-in targets) together with {!Estimate.cost_model_version}. *)
val fingerprint : t -> string
