(* The nimblec --server side: connect to a nimbled socket with bounded
   retry, exponential backoff and deterministic jitter, send one
   request frame, validate the reply.

   Failure policy (the degradation matrix's client column):

   - connect refused / socket gone / I/O error / truncated or
     corrupted reply  -> retry with backoff, then give up with the
     last error (the caller falls back to local compilation with an
     incident footnote);
   - BUSY              -> retry after max(backoff, the daemon's
     retry-after hint); still BUSY after the attempt budget -> give up
     as above;
   - ERR               -> no retry: the daemon is alive and has
     rejected or failed this request deterministically; the caller
     falls back (or reports) immediately.

   The jitter is a pure function of (seed, attempt): tests pin the
   seed and assert the whole schedule; production callers default the
   seed to the pid so a stampede of clients decorrelates. *)

let default_attempts = 4
let default_base_s = 0.05

(* delay before retry k (0-based): base * 2^k * (1 + j), j in [0, 0.5)
   — deterministic in (seed, k) *)
let backoff_schedule ~attempts ~base_s ~seed =
  List.init (max 0 (attempts - 1)) (fun k ->
      let j =
        float_of_int (Hashtbl.hash (seed, k) land 0xffff)
        /. float_of_int 0x20000
      in
      base_s *. (2. ** float_of_int k) *. (1.0 +. j))

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr : (conn, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX addr) with
  | () ->
    Ok
      { fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" addr (Unix.error_message e))

let close conn =
  (* the channels share conn.fd; flush what we can, close the fd once *)
  (try flush conn.oc with Sys_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* One request/reply exchange on an open connection. *)
let request conn (f : Protocol.frame) : (Protocol.frame, string) result =
  match Protocol.write_frame conn.oc f with
  | () -> (
    match Protocol.read_frame conn.ic with
    | Ok reply -> Ok reply
    | Error e -> Error (Protocol.error_message e))
  | exception Sys_error m -> Error (Printf.sprintf "send failed: %s" m)
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

(* The daemon's BUSY hint: "retry-after=<secs> ..." *)
let retry_after_hint body =
  String.split_on_char ' ' body
  |> List.find_map (fun part ->
         match String.split_on_char '=' part with
         | [ "retry-after"; v ] -> float_of_string_opt v
         | _ -> None)

type outcome =
  | Served of string  (** OK payload *)
  | Rejected of string  (** ERR body: daemon alive, request failed *)
  | Unreachable of string  (** no usable daemon after all attempts *)

let call ?(attempts = default_attempts) ?(base_s = default_base_s) ?seed addr
    (f : Protocol.frame) : outcome =
  let seed = match seed with Some s -> s | None -> Unix.getpid () in
  let delays = backoff_schedule ~attempts ~base_s ~seed in
  let rec go k last_err =
    if k >= attempts then Unreachable last_err
    else
      let retry err =
        (match List.nth_opt delays k with
        | Some d -> Thread.delay d
        | None -> ());
        go (k + 1) err
      in
      match connect addr with
      | Error m -> retry m
      | Ok conn -> (
        let r = request conn f in
        close conn;
        match r with
        | Error m -> retry m
        | Ok { Protocol.tag = Protocol.Reply_ok; body } -> Served body
        | Ok { Protocol.tag = Protocol.Reply_err; body } -> Rejected body
        | Ok { Protocol.tag = Protocol.Reply_busy; body } ->
          (* honor the daemon's hint when it is longer than our own
             backoff for this attempt *)
          (match (List.nth_opt delays k, retry_after_hint body) with
          | Some d, Some hint when hint > d -> Thread.delay (hint -. d)
          | None, Some hint -> Thread.delay hint
          | _ -> ());
          retry (Printf.sprintf "daemon busy (%s)" body)
        | Ok { Protocol.tag; _ } ->
          retry
            (Printf.sprintf "unexpected reply tag %s" (Protocol.tag_name tag)))
  in
  go 0 "no attempts made"

let serve_work ?attempts ?base_s ?seed addr (w : Handler.work) : outcome =
  call ?attempts ?base_s ?seed addr (Handler.to_frame (Handler.Work w))
