(* The nimbled wire protocol: one frame per request or reply.

   A frame is a single header line followed by an exact-length binary
   body:

     uas/<proto> <TAG> <len> <md5hex>\n<body: len bytes>

   The header is versioned (a daemon and client from different
   releases fail fast with [Version_mismatch], not a hang), the length
   is bounded (an absurd length is [Oversized] before any allocation),
   and the checksum covers the body (a reply corrupted in flight — or
   by the service.reply:corrupt fault — classifies as
   [Checksum_mismatch] at the receiver, which degrades instead of
   consuming garbage).  Every malformed input maps to a typed [error];
   nothing in this module raises on wire data. *)

let proto_version = 1
let magic = Printf.sprintf "uas/%d" proto_version

(* Generous for rendered tables, small enough that a hostile length
   can't balloon the daemon: 1 MiB. *)
let default_max_frame = 1 lsl 20

(* The header line is tiny; reading stops well before this. *)
let max_header_len = 256

type tag =
  | Hello
  | Sweep
  | Plan
  | Estimate
  | Stats
  | Health
  | Drain
  | Reply_ok
  | Reply_err
  | Reply_busy

let tag_name = function
  | Hello -> "HELLO"
  | Sweep -> "SWEEP"
  | Plan -> "PLAN"
  | Estimate -> "ESTIMATE"
  | Stats -> "STATS"
  | Health -> "HEALTH"
  | Drain -> "DRAIN"
  | Reply_ok -> "OK"
  | Reply_err -> "ERR"
  | Reply_busy -> "BUSY"

let all_tags =
  [ Hello; Sweep; Plan; Estimate; Stats; Health; Drain; Reply_ok; Reply_err;
    Reply_busy ]

let tag_of_string s =
  List.find_opt (fun t -> String.equal (tag_name t) s) all_tags

type frame = { tag : tag; body : string }

type error =
  | Closed  (** orderly EOF at a frame boundary — not a fault *)
  | Truncated of string  (** EOF or short read inside a frame *)
  | Oversized of { len : int; max : int }
  | Garbage of string  (** unparseable header or unknown tag *)
  | Version_mismatch of string  (** a uas/<n> header from another era *)
  | Checksum_mismatch  (** body does not match the header md5 *)

let error_message = function
  | Closed -> "connection closed"
  | Truncated what -> Printf.sprintf "truncated frame (%s)" what
  | Oversized { len; max } ->
    Printf.sprintf "oversized frame (%d bytes, limit %d)" len max
  | Garbage what -> Printf.sprintf "garbage frame (%s)" what
  | Version_mismatch m ->
    Printf.sprintf "protocol version mismatch (got %s, speaking %s)" m magic
  | Checksum_mismatch -> "frame checksum mismatch"

(* ---- encoding ---- *)

let encode { tag; body } =
  Printf.sprintf "%s %s %d %s\n%s" magic (tag_name tag) (String.length body)
    (Digest.to_hex (Digest.string body))
    body

(* ---- header parsing ---- *)

let parse_header ~max_len line : (tag * int * string, error) result =
  match String.split_on_char ' ' line with
  | [ m; tag_s; len_s; md5 ] ->
    if not (String.equal m magic) then
      if String.length m >= 4 && String.equal (String.sub m 0 4) "uas/" then
        Error (Version_mismatch m)
      else Error (Garbage (Printf.sprintf "bad magic %S" m))
    else (
      match tag_of_string tag_s with
      | None -> Error (Garbage (Printf.sprintf "unknown tag %S" tag_s))
      | Some tag -> (
        match int_of_string_opt len_s with
        | None -> Error (Garbage (Printf.sprintf "bad length %S" len_s))
        | Some len when len < 0 ->
          Error (Garbage (Printf.sprintf "bad length %S" len_s))
        | Some len when len > max_len -> Error (Oversized { len; max = max_len })
        | Some len ->
          if String.length md5 <> 32 then
            Error (Garbage "bad checksum field")
          else Ok (tag, len, md5)))
  | _ -> Error (Garbage "malformed header line")

let check_body ~md5 body =
  if String.equal (Digest.to_hex (Digest.string body)) md5 then Ok body
  else Error Checksum_mismatch

(* ---- string decoding (tests, and anywhere a frame is in memory) ---- *)

let decode ?(max_len = default_max_frame) s : (frame, error) result =
  if String.length s = 0 then Error Closed
  else
    match String.index_opt s '\n' with
    | None ->
      if String.length s > max_header_len then
        Error (Garbage "unterminated header")
      else Error (Truncated "no header terminator")
    | Some nl -> (
      match parse_header ~max_len (String.sub s 0 nl) with
      | Error _ as e -> e
      | Ok (tag, len, md5) ->
        let avail = String.length s - nl - 1 in
        if avail < len then
          Error
            (Truncated (Printf.sprintf "body: %d of %d bytes" avail len))
        else if avail > len then
          Error (Garbage "trailing bytes after frame")
        else (
          match check_body ~md5 (String.sub s (nl + 1) len) with
          | Ok body -> Ok { tag; body }
          | Error _ as e -> e))

(* ---- channel I/O ---- *)

(* Read the header line byte-by-byte (bounded), never trusting the
   peer to terminate it. *)
let read_header_line ic : (string, error) result =
  let buf = Buffer.create 64 in
  let rec go () =
    if Buffer.length buf > max_header_len then
      Error (Garbage "unterminated header")
    else
      match input_char ic with
      | '\n' -> Ok (Buffer.contents buf)
      | c ->
        Buffer.add_char buf c;
        go ()
      | exception End_of_file ->
        if Buffer.length buf = 0 then Error Closed
        else Error (Truncated "header")
  in
  go ()

let read_frame ?(max_len = default_max_frame) ic : (frame, error) result =
  match read_header_line ic with
  | Error _ as e -> e
  | Ok line -> (
    match parse_header ~max_len line with
    | Error _ as e -> e
    | Ok (tag, len, md5) -> (
      match really_input_string ic len with
      | body -> (
        match check_body ~md5 body with
        | Ok body -> Ok { tag; body }
        | Error _ as e -> e)
      | exception End_of_file -> Error (Truncated "body")))

let write_frame oc frame =
  output_string oc (encode frame);
  flush oc
