(** The nimbled wire protocol: length-prefixed, checksummed, versioned
    frames over a Unix-domain socket.

    Grammar (one frame):
    {v
    frame  = header LF body
    header = "uas/" proto SP tag SP len SP md5hex
    tag    = "HELLO" | "SWEEP" | "PLAN" | "ESTIMATE" | "STATS"
           | "HEALTH" | "DRAIN" | "OK" | "ERR" | "BUSY"
    len    = decimal byte count of body (bounded)
    md5hex = 32 hex chars, MD5 of body
    body   = len bytes, uninterpreted at this layer
    v}

    Every malformed input maps to a typed {!error} — truncated,
    oversized, garbage, wrong protocol era, bad checksum — and nothing
    here raises on wire data, so one hostile or broken peer can only
    ever cost the daemon its own connection.  See docs/SERVICE.md. *)

(** Protocol era carried in every header (["uas/1"]). *)
val proto_version : int

val magic : string

(** Default frame-size bound: 1 MiB. *)
val default_max_frame : int

type tag =
  | Hello
  | Sweep
  | Plan
  | Estimate
  | Stats
  | Health
  | Drain
  | Reply_ok
  | Reply_err
  | Reply_busy

val tag_name : tag -> string
val tag_of_string : string -> tag option

type frame = { tag : tag; body : string }

type error =
  | Closed  (** orderly EOF at a frame boundary — not a fault *)
  | Truncated of string  (** EOF or short read inside a frame *)
  | Oversized of { len : int; max : int }
      (** header length field exceeds the bound; rejected before any
          body allocation *)
  | Garbage of string  (** unparseable header or unknown tag *)
  | Version_mismatch of string
  | Checksum_mismatch  (** body does not match the header md5 *)

val error_message : error -> string

(** [encode f] is the complete wire form (header + body). *)
val encode : frame -> string

(** Parse a complete in-memory frame; [Garbage] on trailing bytes. *)
val decode : ?max_len:int -> string -> (frame, error) result

(** Read one frame; header read is byte-bounded, body read is exact.
    [Closed] on EOF at a frame boundary, [Truncated] on EOF inside. *)
val read_frame : ?max_len:int -> in_channel -> (frame, error) result

(** Write and flush one frame. *)
val write_frame : out_channel -> frame -> unit
