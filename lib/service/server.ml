(* The nimbled engine: accept loop, per-connection reader threads, a
   bounded admission queue, one dispatcher executing work requests
   under per-request wall budgets, graceful drain, crash recovery.

   Threading model.  The accept loop runs in the caller of [run]; each
   connection gets one reader thread (cheap verbs — HELLO, STATS,
   HEALTH — answered inline, work verbs pushed through admission); one
   dispatcher thread pops the queue and executes requests through
   [Handler.execute], whose nested [Parallel] pools fan cells out over
   domains.  Requests with a wall budget run in a worker thread
   watched by the dispatcher: on overrun the dispatcher seals the
   result slot (CAS), replies ERR, and abandons the worker — the
   worker's own cells are budget-capped by the PR 5 pool watchdog, so
   it winds down on its own and can never wedge the daemon.

   Containment invariants (the degradation matrix, docs/SERVICE.md):

   - a malformed, oversized or garbage frame costs the sender an ERR
     (when the connection can still carry one) and that connection —
     counted in [protocol_errors], never a backtrace;
   - a disconnect mid-request is counted and the result discarded;
   - injected faults at service.accept / service.request /
     service.reply cost one connection or one request;
   - overload is explicit: a full queue sheds with BUSY + retry-after,
     never a silent hang;
   - SIGTERM/DRAIN stops admitting, finishes (or times out) in-flight
     work, removes socket and pidfile, and [run] returns [Ok ()] — the
     daemon exits 0. *)

module Fault = Uas_runtime.Fault
module Store = Uas_runtime.Store

type config = {
  c_socket : string;
  c_pidfile : string option;
  c_queue_depth : int;
  c_limits : Handler.limits;  (** jobs / per-cell timeout / retries *)
  c_request_budget_s : float option;
      (** default per-request wall budget; a request's [budget=] key
          overrides it downward or upward *)
  c_drain_timeout_s : float;
  c_max_frame : int;
  c_handle_signals : bool;  (** install SIGTERM/SIGINT drain handlers *)
  c_log : string -> unit;
  c_on_drained : daemon_json:string -> unit;
      (** called once after drain with the final v7 ["daemon"] object
          (nimbled threads it into the trajectory --json file) *)
}

let default_config ~socket =
  { c_socket = socket;
    c_pidfile = None;
    c_queue_depth = 16;
    c_limits = Handler.no_limits;
    c_request_budget_s = None;
    c_drain_timeout_s = 30.0;
    c_max_frame = Protocol.default_max_frame;
    c_handle_signals = false;
    c_log = ignore;
    c_on_drained = (fun ~daemon_json:_ -> ()) }

type peer = {
  p_fd : Unix.file_descr;
  p_ic : in_channel;
  p_oc : out_channel;
  p_wmutex : Mutex.t;
  p_alive : bool Atomic.t;
}

type job = { j_work : Handler.work; j_peer : peer; j_enqueued_at : float }

type t = {
  cfg : config;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  draining : bool Atomic.t;
  drain_done : bool Atomic.t;
  inflight : int Atomic.t;
  started_at : float;
}

(* ---- connection plumbing ---- *)

let make_peer fd =
  { p_fd = fd;
    p_ic = Unix.in_channel_of_descr fd;
    p_oc = Unix.out_channel_of_descr fd;
    p_wmutex = Mutex.create ();
    p_alive = Atomic.make true }

let close_peer peer =
  (* first closer wins; the fd is shared by both channels *)
  if Atomic.compare_and_set peer.p_alive true false then begin
    (try flush peer.p_oc with Sys_error _ -> ());
    try Unix.close peer.p_fd with Unix.Unix_error _ -> ()
  end

(* Send one reply frame through the service.reply fault site (label =
   reply tag).  raise drops the connection (the client sees EOF and
   degrades); stall holds the reply for the stall cap, then drops;
   corrupt flips one wire byte so the client's checksum catches it.
   An I/O failure here is a mid-request disconnect: counted, contained. *)
let send st peer (frame : Protocol.frame) =
  Mutex.lock peer.p_wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock peer.p_wmutex)
    (fun () ->
      if not (Atomic.get peer.p_alive) then
        (* the peer vanished before its reply: mid-request disconnect *)
        Atomic.incr st.metrics.Metrics.disconnects
      else
        let write bytes =
          match
            output_string peer.p_oc bytes;
            flush peer.p_oc
          with
          | () -> ()
          | exception (Sys_error _ | Unix.Unix_error _) ->
            Atomic.incr st.metrics.Metrics.disconnects;
            close_peer peer
        in
        match Fault.hit ~label:(Protocol.tag_name frame.Protocol.tag)
                "service.reply"
        with
        | Some Fault.Raise -> close_peer peer
        | Some Fault.Stall ->
          (try Fault.stall ~site:"service.reply" ()
           with Fault.Injected _ -> close_peer peer)
        | Some Fault.Corrupt ->
          (* flip the last wire byte: the header checksum no longer
             matches the body, and the client degrades instead of
             consuming a silently-wrong reply *)
          let bytes = Bytes.of_string (Protocol.encode frame) in
          let n = Bytes.length bytes in
          if n > 0 then
            Bytes.set bytes (n - 1)
              (Char.chr (Char.code (Bytes.get bytes (n - 1)) lxor 1));
          write (Bytes.to_string bytes)
        | None -> write (Protocol.encode frame))

let ok body = { Protocol.tag = Protocol.Reply_ok; body }
let err body = { Protocol.tag = Protocol.Reply_err; body }
let busy body = { Protocol.tag = Protocol.Reply_busy; body }

(* ---- payloads for the cheap verbs ---- *)

let queue_depth st =
  Mutex.lock st.qmutex;
  let n = Queue.length st.queue in
  Mutex.unlock st.qmutex;
  n

let stats_payload st =
  let store =
    match Store.installed () with
    | None -> "null"
    | Some s -> Store.stats_json s
  in
  Printf.sprintf "{\"daemon\":%s,\"store\":%s}"
    (Metrics.to_json st.metrics ~queue_depth:(queue_depth st)
       ~inflight:(Atomic.get st.inflight))
    store

let health_payload st =
  Printf.sprintf "ok uptime=%.1f queue=%d inflight=%d draining=%b"
    (Unix.gettimeofday () -. st.started_at)
    (queue_depth st)
    (Atomic.get st.inflight)
    (Atomic.get st.draining)

let hello_payload () =
  Printf.sprintf "uas/%d nimbled %s ready" Protocol.proto_version
    Uas_runtime.Build_info.version_string

(* ---- drain ---- *)

let begin_drain st =
  if Atomic.compare_and_set st.draining false true then begin
    st.cfg.c_log "draining: admission closed, finishing in-flight work";
    (* wake the dispatcher so an idle daemon drains immediately *)
    Mutex.lock st.qmutex;
    Condition.broadcast st.qcond;
    Mutex.unlock st.qmutex
  end

let await_drained st ~deadline =
  let rec go () =
    if Atomic.get st.drain_done then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* ---- admission ---- *)

let admit st peer w =
  if Atomic.get st.draining then begin
    Atomic.incr st.metrics.Metrics.shed;
    send st peer (busy "retry-after=1.00 reason=draining")
  end
  else begin
    Mutex.lock st.qmutex;
    let depth = Queue.length st.queue in
    if depth >= st.cfg.c_queue_depth then begin
      Mutex.unlock st.qmutex;
      Atomic.incr st.metrics.Metrics.shed;
      (* retry-after scales with the backlog: a deeper queue asks the
         client to stay away longer *)
      send st peer
        (busy
           (Printf.sprintf "retry-after=%.2f reason=queue-full depth=%d"
              (0.25 *. float_of_int (depth + 1))
              depth))
    end
    else begin
      Queue.push
        { j_work = w; j_peer = peer; j_enqueued_at = Unix.gettimeofday () }
        st.queue;
      Atomic.incr st.metrics.Metrics.admitted;
      Condition.signal st.qcond;
      Mutex.unlock st.qmutex
    end
  end

(* ---- request execution ---- *)

let injected_msg site kind =
  Printf.sprintf "injected fault at site %s (kind %s)" site
    (Fault.kind_name kind)

(* The service.request fault site (label = request verb), then the
   handler.  [corrupt] has nothing to corrupt before execution and is
   documented as raise-equivalent here. *)
let exec_with_faults st w =
  match Fault.hit ~label:(Handler.work_name w) "service.request" with
  | Some Fault.Raise -> Error (injected_msg "service.request" Fault.Raise)
  | Some Fault.Corrupt -> Error (injected_msg "service.request" Fault.Corrupt)
  | Some Fault.Stall -> (
    try Fault.stall ~site:"service.request" ()
    with Fault.Injected _ -> Error (injected_msg "service.request" Fault.Stall))
  | None ->
    let budget =
      match Handler.budget_s w with
      | Some b -> Some b
      | None -> st.cfg.c_request_budget_s
    in
    let limits =
      (* the request budget caps each nested cell too, so the PR 5
         pool watchdog enforces most of the budget from inside *)
      let base = st.cfg.c_limits in
      let cell_timeout =
        match (base.Handler.l_timeout_s, budget) with
        | Some t, Some b -> Some (Float.min t b)
        | (Some _ as t), None -> t
        | None, (Some _ as b) -> b
        | None, None -> None
      in
      { base with Handler.l_timeout_s = cell_timeout }
    in
    Handler.execute ~limits w

type exec_failure = Timed_out of string | Failed of string

(* Run one request under its wall budget.  Without a budget the
   request executes inline in the dispatcher.  With one, it runs in a
   worker thread whose result lands in a CAS slot: if the budget
   expires first, the dispatcher seals the slot, reports the timeout,
   and abandons the worker (whose budget-capped cells wind it down). *)
let supervised_execute st w : (string * int, exec_failure) result =
  let budget =
    match Handler.budget_s w with
    | Some b -> Some b
    | None -> st.cfg.c_request_budget_s
  in
  match budget with
  | None -> (
    match exec_with_faults st w with
    | Ok r -> Ok r
    | Error m -> Error (Failed m))
  | Some b ->
    let slot = Atomic.make `Pending in
    let (_ : Thread.t) =
      Thread.create
        (fun () ->
          let r =
            match exec_with_faults st w with
            | Ok r -> `Ok r
            | Error m -> `Err m
          in
          ignore (Atomic.compare_and_set slot `Pending (`Done r)))
        ()
    in
    let deadline = Unix.gettimeofday () +. b in
    let rec wait () =
      match Atomic.get slot with
      | `Done (`Ok r) -> Ok r
      | `Done (`Err m) -> Error (Failed m)
      | `Abandoned ->
        (* unreachable: only the dispatcher seals the slot *)
        Error (Timed_out "request abandoned")
      | `Pending ->
        if Unix.gettimeofday () >= deadline then
          if Atomic.compare_and_set slot `Pending `Abandoned then begin
            Atomic.incr st.metrics.Metrics.timed_out;
            Error
              (Timed_out
                 (Printf.sprintf
                    "request %s/%s timed out (budget %.2fs)"
                    (Handler.work_name w) (Handler.bench_name w) b))
          end
          else wait () (* the worker won the race at the wire *)
        else begin
          Thread.delay 0.005;
          wait ()
        end
    in
    wait ()

let run_job st job =
  if not (Atomic.get job.j_peer.p_alive) then
    (* the client left while its request sat in the queue: drop the
       work, count the disconnect *)
    Atomic.incr st.metrics.Metrics.disconnects
  else begin
    Atomic.incr st.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr st.inflight)
      (fun () ->
        let result = supervised_execute st job.j_work in
        Atomic.incr st.metrics.Metrics.requests;
        Metrics.add_latency st.metrics
          ~wall_s:(Unix.gettimeofday () -. job.j_enqueued_at);
        if Atomic.get st.draining then
          Atomic.incr st.metrics.Metrics.drained;
        match result with
        | Ok (payload, incidents) ->
          if incidents > 0 then Atomic.incr st.metrics.Metrics.degraded;
          send st job.j_peer (ok payload)
        | Error (Timed_out m) ->
          (* timed_out already counted at the seal *)
          send st job.j_peer (err m)
        | Error (Failed m) ->
          (* the request degraded, the daemon did not *)
          Atomic.incr st.metrics.Metrics.degraded;
          send st job.j_peer (err m))
  end

let dispatcher st =
  let rec loop () =
    Mutex.lock st.qmutex;
    let rec await () =
      if not (Queue.is_empty st.queue) then Some (Queue.pop st.queue)
      else if Atomic.get st.draining then None
      else begin
        Condition.wait st.qcond st.qmutex;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock st.qmutex;
    match job with
    | Some job ->
      run_job st job;
      loop ()
    | None ->
      (* draining and the queue is dry: everything admitted has been
         answered *)
      Atomic.set st.drain_done true
  in
  loop ()

(* ---- per-connection reader ---- *)

let rec reader st peer =
  match Protocol.read_frame ~max_len:st.cfg.c_max_frame peer.p_ic with
  | Error Protocol.Closed ->
    (* orderly close at a frame boundary *)
    close_peer peer
  | Error e ->
    (* protocol trouble: answer with a typed one-liner when the pipe
       still works, then drop the connection — framing is not
       recoverable after garbage.  Counted, contained, no backtrace. *)
    Atomic.incr st.metrics.Metrics.protocol_errors;
    send st peer (err ("protocol: " ^ Protocol.error_message e));
    close_peer peer
  | Ok frame -> (
    match Handler.parse frame with
    | Error m ->
      (* the frame was well-formed, its body was not: ERR and keep the
         connection *)
      Atomic.incr st.metrics.Metrics.protocol_errors;
      send st peer (err m);
      reader st peer
    | Ok (Handler.Hello _client) ->
      send st peer (ok (hello_payload ()));
      reader st peer
    | Ok Handler.Stats ->
      send st peer (ok (stats_payload st));
      reader st peer
    | Ok Handler.Health ->
      send st peer (ok (health_payload st));
      reader st peer
    | Ok Handler.Drain ->
      begin_drain st;
      let drained =
        await_drained st
          ~deadline:(Unix.gettimeofday () +. st.cfg.c_drain_timeout_s)
      in
      send st peer
        (ok (if drained then "drained" else "drain timed out"));
      close_peer peer
    | Ok (Handler.Work w) ->
      admit st peer w;
      reader st peer)

(* ---- crash recovery ---- *)

(* kill 0 answers for zombies too (a SIGKILLed daemon the parent never
   reaped), so a positive answer is double-checked against the process
   state in /proc: state Z is dead for our purposes. *)
let proc_is_zombie pid =
  let path = Printf.sprintf "/proc/%d/stat" pid in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> input_line ic)
  with
  | line -> (
    (* "pid (comm) STATE ..." — comm may contain anything, so the
       state flag is the first field after the last ')' *)
    match String.rindex_opt line ')' with
    | Some i when i + 2 < String.length line -> line.[i + 2] = 'Z'
    | _ -> false)
  | exception (Sys_error _ | End_of_file) -> false

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> not (proc_is_zombie pid)
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: someone owns it *)

let read_pidfile path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> input_line ic)
  with
  | line -> int_of_string_opt (String.trim line)
  | exception (Sys_error _ | End_of_file) -> None

(* A previous daemon may have been SIGKILLed: its socket and pidfile
   survive.  A live daemon is an error; stale leftovers are removed
   with a log line. *)
let recover cfg : (unit, string) result =
  let stale_pidfile =
    match cfg.c_pidfile with
    | Some pf when Sys.file_exists pf -> (
      match read_pidfile pf with
      | Some pid when pid <> Unix.getpid () && pid_alive pid ->
        Error
          (Printf.sprintf "nimbled already running (pid %d, pidfile %s)" pid
             pf)
      | _ ->
        cfg.c_log (Printf.sprintf "recovering: removing stale pidfile %s" pf);
        (try Sys.remove pf with Sys_error _ -> ());
        Ok ())
    | _ -> Ok ()
  in
  match stale_pidfile with
  | Error _ as e -> e
  | Ok () ->
    if Sys.file_exists cfg.c_socket then begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect fd (Unix.ADDR_UNIX cfg.c_socket) with
        | () ->
          Error
            (Printf.sprintf "a daemon is already listening on %s"
               cfg.c_socket)
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
          cfg.c_log
            (Printf.sprintf "recovering: removing stale socket %s"
               cfg.c_socket);
          (try Sys.remove cfg.c_socket with Sys_error _ -> ());
          Ok ()
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot probe existing socket %s: %s"
               cfg.c_socket (Unix.error_message e))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      verdict
    end
    else Ok ()

(* ---- accept loop ---- *)

let accept_loop st =
  let rec loop () =
    if Atomic.get st.draining then ()
    else
      match Unix.select [ st.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _, _, _ -> (
        match Unix.accept st.listen_fd with
        | fd, _ ->
          (match Fault.hit "service.accept" with
          | Some kind ->
            (* any injected kind refuses this one connection: raise
               and corrupt drop it now, stall holds it for the stall
               cap first — either way the daemon keeps accepting *)
            (if kind = Fault.Stall then
               try Fault.stall ~site:"service.accept" ()
               with Fault.Injected _ -> ());
            Atomic.incr st.metrics.Metrics.disconnects;
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | None ->
            let peer = make_peer fd in
            ignore (Thread.create (fun () -> reader st peer) ()));
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error _ -> if Atomic.get st.draining then ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ---- the daemon ---- *)

let run (cfg : config) : (unit, string) result =
  (* a peer that vanishes mid-write must cost one EPIPE, not the
     process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match recover cfg with
  | Error _ as e -> e
  | Ok () -> (
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.c_socket);
      Unix.listen listen_fd 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" cfg.c_socket
           (Unix.error_message e))
    | () ->
      (match cfg.c_pidfile with
      | None -> ()
      | Some pf ->
        let oc = open_out pf in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (string_of_int (Unix.getpid ()) ^ "\n")));
      let st =
        { cfg;
          metrics = Metrics.create ();
          listen_fd;
          queue = Queue.create ();
          qmutex = Mutex.create ();
          qcond = Condition.create ();
          draining = Atomic.make false;
          drain_done = Atomic.make false;
          inflight = Atomic.make 0;
          started_at = Unix.gettimeofday () }
      in
      if cfg.c_handle_signals then begin
        let h = Sys.Signal_handle (fun _ -> begin_drain st) in
        Sys.set_signal Sys.sigterm h;
        Sys.set_signal Sys.sigint h
      end;
      let (_ : Thread.t) = Thread.create dispatcher st in
      cfg.c_log
        (Printf.sprintf "listening on %s (pid %d, queue %d)" cfg.c_socket
           (Unix.getpid ()) cfg.c_queue_depth);
      accept_loop st;
      (* admission is closed; stop listening so late connectors get
         ECONNREFUSED (a typed client failure), then wait the in-flight
         work out *)
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      let finished =
        await_drained st
          ~deadline:(Unix.gettimeofday () +. cfg.c_drain_timeout_s)
      in
      if not finished then begin
        (* drain timed out: answer whatever is still queued with a
           typed ERR and abandon the in-flight worker (its cells are
           budget-capped); degraded, not dead *)
        Mutex.lock st.qmutex;
        let leftovers = Queue.fold (fun acc j -> j :: acc) [] st.queue in
        Queue.clear st.queue;
        Mutex.unlock st.qmutex;
        List.iter
          (fun j ->
            Atomic.incr st.metrics.Metrics.shed;
            send st j.j_peer (err "daemon draining; request abandoned"))
          leftovers;
        cfg.c_log
          (Printf.sprintf "drain timed out after %.1fs; %d queued abandoned"
             cfg.c_drain_timeout_s (List.length leftovers))
      end;
      (* store writes are synchronous (write-then-rename); nothing is
         buffered, so "flush" is a final stats line *)
      (match Store.installed () with
      | Some s -> cfg.c_log (Format.asprintf "%a" Store.pp_stats s)
      | None -> ());
      cfg.c_log
        (Format.asprintf "%a" Metrics.pp
           (st.metrics, queue_depth st, Atomic.get st.inflight));
      (try Sys.remove cfg.c_socket with Sys_error _ -> ());
      (match cfg.c_pidfile with
      | None -> ()
      | Some pf -> ( try Sys.remove pf with Sys_error _ -> ()));
      cfg.c_on_drained
        ~daemon_json:
          (Metrics.to_json st.metrics ~queue_depth:(queue_depth st)
             ~inflight:(Atomic.get st.inflight));
      Ok ())
