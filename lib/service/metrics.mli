(** nimbled service counters: exported via [STATS] and as the
    trajectory schema v7 ["daemon"] object.  All fields are atomics —
    the accept loop, reader threads and the dispatcher update them
    concurrently. *)

type t = {
  admitted : int Atomic.t;  (** work requests accepted into the queue *)
  shed : int Atomic.t;  (** work requests refused with [BUSY] *)
  timed_out : int Atomic.t;  (** requests killed by their wall budget *)
  degraded : int Atomic.t;  (** requests served with >= 1 incident *)
  drained : int Atomic.t;  (** requests completed during a drain *)
  protocol_errors : int Atomic.t;
  disconnects : int Atomic.t;  (** peers lost mid-request *)
  requests : int Atomic.t;  (** work requests completed (any outcome) *)
  request_us : int Atomic.t;  (** cumulative per-request latency, µs *)
}

val create : unit -> t
val add_latency : t -> wall_s:float -> unit

(** The v7 ["daemon"] JSON object; the two gauges are sampled by the
    caller at render time. *)
val to_json : t -> queue_depth:int -> inflight:int -> string

(** One human line for stderr. *)
val pp : Format.formatter -> t * int * int -> unit
