(* Request bodies and request execution, shared by three parties so
   daemon-served output is byte-identical to local output by
   construction:

   - the daemon (Server) parses bodies with [parse] and runs them with
     [execute];
   - the client (nimblec --server) renders bodies with [to_frame];
   - the fallback and the differential tests render the same requests
     locally through the same [execute]/[render_*] functions.

   A work body is line-oriented and order-insensitive after the first
   line:

     <benchmark>\n
     key=value\n ...        tier|verify|validate|exact|objective|budget

   Unknown keys and malformed values are parse errors (a one-line
   message the daemon sends back as ERR), never exceptions. *)

module E = Uas_core.Experiments
module N = Uas_core.Nimble
module P = Uas_core.Planner
module Registry = Uas_bench_suite.Registry
module Diag = Uas_pass.Diag
module Fast_interp = Uas_ir.Fast_interp
module Sched = Uas_dfg.Sched
module Budget = Uas_runtime.Budget
module Fault = Uas_runtime.Fault

type estimate_opts = {
  e_bench : string;
  e_verify : bool;
  e_tier : Fast_interp.tier option;
  e_validate : bool;
  e_exact : Sched.exact_mode;
  e_budget_s : float option;
}

type sweep_opts = {
  s_bench : string;
  s_validate : bool;
  s_tier : Fast_interp.tier option;
      (* accepted for request symmetry; the sweep pipeline is
         execution-free, so the tier cannot change its output — which
         is exactly what the byte-identity property demonstrates *)
  s_budget_s : float option;
}

type plan_opts = {
  p_bench : string;
  p_objective : P.objective;
  p_validate : bool;
  p_exact : Sched.exact_mode;
  p_budget_s : float option;
}

type work =
  | W_estimate of estimate_opts
  | W_sweep of sweep_opts
  | W_plan of plan_opts

type request = Hello of string | Work of work | Stats | Health | Drain

let work_name = function
  | W_estimate _ -> "estimate"
  | W_sweep _ -> "sweep"
  | W_plan _ -> "plan"

let bench_name = function
  | W_estimate o -> o.e_bench
  | W_sweep o -> o.s_bench
  | W_plan o -> o.p_bench

let budget_s = function
  | W_estimate o -> o.e_budget_s
  | W_sweep o -> o.s_budget_s
  | W_plan o -> o.p_budget_s

(* ---- body rendering (client side) ---- *)

let opt_line key = function None -> [] | Some v -> [ key ^ "=" ^ v ]

let work_body w =
  let bench = bench_name w in
  let kvs =
    match w with
    | W_estimate o ->
      [ Printf.sprintf "verify=%b" o.e_verify;
        Printf.sprintf "validate=%b" o.e_validate;
        Printf.sprintf "exact=%s" (Sched.exact_mode_name o.e_exact) ]
      @ opt_line "tier" (Option.map Fast_interp.tier_name o.e_tier)
      @ opt_line "budget" (Option.map string_of_float o.e_budget_s)
    | W_sweep o ->
      [ Printf.sprintf "validate=%b" o.s_validate ]
      @ opt_line "tier" (Option.map Fast_interp.tier_name o.s_tier)
      @ opt_line "budget" (Option.map string_of_float o.s_budget_s)
    | W_plan o ->
      [ Printf.sprintf "objective=%s" (P.objective_name o.p_objective);
        Printf.sprintf "validate=%b" o.p_validate;
        Printf.sprintf "exact=%s" (Sched.exact_mode_name o.p_exact) ]
      @ opt_line "budget" (Option.map string_of_float o.p_budget_s)
  in
  String.concat "\n" (bench :: kvs)

let to_frame : request -> Protocol.frame = function
  | Hello client -> { Protocol.tag = Protocol.Hello; body = client }
  | Stats -> { Protocol.tag = Protocol.Stats; body = "" }
  | Health -> { Protocol.tag = Protocol.Health; body = "" }
  | Drain -> { Protocol.tag = Protocol.Drain; body = "" }
  | Work w ->
    let tag =
      match w with
      | W_estimate _ -> Protocol.Estimate
      | W_sweep _ -> Protocol.Sweep
      | W_plan _ -> Protocol.Plan
    in
    { Protocol.tag; body = work_body w }

(* ---- body parsing (daemon side) ---- *)

let ( let* ) = Result.bind

let parse_kvs lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | line :: rest -> (
      match String.index_opt line '=' with
      | None -> Error (Printf.sprintf "malformed request line %S" line)
      | Some i ->
        let k = String.sub line 0 i in
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        go ((k, v) :: acc) rest)
  in
  go [] lines

let parse_bool ~key v =
  match bool_of_string_opt v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%s expects true or false, got %S" key v)

let parse_tier v =
  match Fast_interp.tier_of_string v with
  | Some t -> Ok (Some t)
  | None -> Error (Printf.sprintf "tier expects %s, got %S" Fast_interp.valid_tiers v)

let parse_exact v =
  match Sched.exact_mode_of_string v with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "exact expects off, check or report, got %S" v)

let parse_objective v =
  match P.objective_of_string v with
  | Some o -> Ok o
  | None -> Error (Printf.sprintf "objective expects ii, area or ratio, got %S" v)

let parse_budget v =
  let* b = Budget.timeout_of_string ~flag:"budget" v in
  Ok (Some b)

let split_body body =
  match String.split_on_char '\n' body with
  | [] | [ "" ] -> Error "empty request body (expected a benchmark name)"
  | bench :: rest ->
    if String.equal bench "" then
      Error "empty benchmark name in request body"
    else
      let* kvs = parse_kvs rest in
      Ok (bench, kvs)

let fold_kvs ~on_kv init kvs =
  List.fold_left
    (fun acc (k, v) ->
      let* acc = acc in
      on_kv acc k v)
    (Ok init) kvs

let parse_estimate body =
  let* bench, kvs = split_body body in
  let init =
    { e_bench = bench;
      e_verify = false;
      e_tier = None;
      e_validate = false;
      e_exact = Sched.Exact_off;
      e_budget_s = None }
  in
  fold_kvs init kvs ~on_kv:(fun o k v ->
      match k with
      | "verify" ->
        let* b = parse_bool ~key:k v in
        Ok { o with e_verify = b }
      | "validate" ->
        let* b = parse_bool ~key:k v in
        Ok { o with e_validate = b }
      | "tier" ->
        let* t = parse_tier v in
        Ok { o with e_tier = t }
      | "exact" ->
        let* m = parse_exact v in
        Ok { o with e_exact = m }
      | "budget" ->
        let* b = parse_budget v in
        Ok { o with e_budget_s = b }
      | _ -> Error (Printf.sprintf "unknown ESTIMATE key %S" k))

let parse_sweep body =
  let* bench, kvs = split_body body in
  let init =
    { s_bench = bench; s_validate = false; s_tier = None; s_budget_s = None }
  in
  fold_kvs init kvs ~on_kv:(fun o k v ->
      match k with
      | "validate" ->
        let* b = parse_bool ~key:k v in
        Ok { o with s_validate = b }
      | "tier" ->
        let* t = parse_tier v in
        Ok { o with s_tier = t }
      | "budget" ->
        let* b = parse_budget v in
        Ok { o with s_budget_s = b }
      | _ -> Error (Printf.sprintf "unknown SWEEP key %S" k))

let parse_plan body =
  let* bench, kvs = split_body body in
  let init =
    { p_bench = bench;
      p_objective = P.Ratio;
      p_validate = false;
      p_exact = Sched.Exact_off;
      p_budget_s = None }
  in
  fold_kvs init kvs ~on_kv:(fun o k v ->
      match k with
      | "objective" ->
        let* ob = parse_objective v in
        Ok { o with p_objective = ob }
      | "validate" ->
        let* b = parse_bool ~key:k v in
        Ok { o with p_validate = b }
      | "exact" ->
        let* m = parse_exact v in
        Ok { o with p_exact = m }
      | "budget" ->
        let* b = parse_budget v in
        Ok { o with p_budget_s = b }
      | _ -> Error (Printf.sprintf "unknown PLAN key %S" k))

let parse (f : Protocol.frame) : (request, string) result =
  match f.Protocol.tag with
  | Protocol.Hello -> Ok (Hello f.Protocol.body)
  | Protocol.Stats -> Ok Stats
  | Protocol.Health -> Ok Health
  | Protocol.Drain -> Ok Drain
  | Protocol.Estimate ->
    let* o = parse_estimate f.Protocol.body in
    Ok (Work (W_estimate o))
  | Protocol.Sweep ->
    let* o = parse_sweep f.Protocol.body in
    Ok (Work (W_sweep o))
  | Protocol.Plan ->
    let* o = parse_plan f.Protocol.body in
    Ok (Work (W_plan o))
  | Protocol.Reply_ok | Protocol.Reply_err | Protocol.Reply_busy ->
    Error
      (Printf.sprintf "unexpected reply tag %s in a request"
         (Protocol.tag_name f.Protocol.tag))

(* ---- rendering ---- *)

(* Exactly nimblec's estimate output: two tables, each terminated by
   [Fmt.pr "%a@."]. *)
let render_estimate (row : E.bench_row) =
  Fmt.str "%a@.%a@." E.pp_table_6_2 [ row ] E.pp_table_6_3 [ row ]

(* Exactly nimblec's plan output. *)
let render_plan (plan : P.plan) = Fmt.str "%a@." P.pp plan

(* The sweep rendering the byte-identity property pins: one line per
   (version, outcome), in sweep order. *)
let render_sweep (outcomes : (N.version * N.outcome) list) =
  let line (v, outcome) =
    let name = N.version_name v in
    match outcome with
    | N.Built (_, r) ->
      Printf.sprintf "%-20s ii=%d len=%d area=%d cycles=%d" name
        r.Uas_hw.Estimate.r_ii r.Uas_hw.Estimate.r_sched_len
        r.Uas_hw.Estimate.r_area_rows r.Uas_hw.Estimate.r_total_cycles
    | N.Degraded (_, r, ds) ->
      Printf.sprintf "%-20s ii=%d len=%d area=%d cycles=%d degraded:%d" name
        r.Uas_hw.Estimate.r_ii r.Uas_hw.Estimate.r_sched_len
        r.Uas_hw.Estimate.r_area_rows r.Uas_hw.Estimate.r_total_cycles
        (List.length ds)
    | N.Skipped d -> Printf.sprintf "%-20s skipped: %s" name (Diag.to_string d)
  in
  String.concat "\n" (List.map line outcomes) ^ "\n"

(* ---- incident accounting (the "degraded" daemon counter) ---- *)

let estimate_incidents (row : E.bench_row) =
  List.length row.E.br_skipped
  + List.fold_left
      (fun acc (c : E.cell) -> acc + List.length c.E.c_incidents)
      0 row.E.br_cells

(* Rows whose outcome is [Error] are ranked planner output (structural
   rejections are routine — a factor that does not divide the trip
   count); only recorded incidents mark a degraded request. *)
let plan_incidents (plan : P.plan) =
  List.fold_left
    (fun acc (r : P.row) -> acc + List.length r.P.r_incidents)
    0 plan.P.p_rows

let sweep_incidents outcomes =
  List.length (N.skipped outcomes) + List.length (N.degraded outcomes)

(* ---- execution ---- *)

type limits = {
  l_jobs : int option;  (** pool width for the request's cells *)
  l_timeout_s : float option;  (** per-cell wall budget (PR 5 watchdog) *)
  l_retries : int option;
}

let no_limits = { l_jobs = None; l_timeout_s = None; l_retries = None }

let find_benchmark name =
  match Registry.find name with
  | Some b -> Ok b
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %s; known: %s" name
         (String.concat ", "
            (List.map
               (fun (b : Registry.benchmark) -> b.Registry.b_name)
               (Registry.all () @ Registry.extras ()))))

let sweep_versions (b : Registry.benchmark) =
  (* mirror run_benchmark's depth-appropriate default *)
  let depth =
    Option.value ~default:2
      (Uas_analysis.Loop_nest.depth_at b.Registry.b_program
         b.Registry.b_outer_index)
  in
  N.versions_for ~depth

(* [execute] returns the rendered payload with the request's incident
   count, or a one-line error.  Nothing escapes as an exception: a
   structured diagnostic, an injected fault or any other exception all
   land in [Error] — the daemon turns that into one ERR reply and
   lives on. *)
let execute ?(limits = no_limits) (w : work) : (string * int, string) result =
  let { l_jobs; l_timeout_s; l_retries } = limits in
  match
    let* b = find_benchmark (bench_name w) in
    match w with
    | W_estimate o ->
      let row =
        E.run_benchmark ~verify:o.e_verify ?tier:o.e_tier
          ~validate:o.e_validate ~exact:o.e_exact ?jobs:l_jobs
          ?timeout_s:l_timeout_s ?retries:l_retries b
      in
      Ok (render_estimate row, estimate_incidents row)
    | W_sweep o ->
      let probe = if o.s_validate then Some b.Registry.b_workload else None in
      let outcomes =
        N.sweep
          ~versions:(sweep_versions b)
          ?jobs:l_jobs ?validate:probe ?timeout_s:l_timeout_s
          ?retries:l_retries b.Registry.b_program
          ~outer_index:b.Registry.b_outer_index
          ~inner_index:b.Registry.b_inner_index
      in
      Ok (render_sweep outcomes, sweep_incidents outcomes)
    | W_plan o ->
      let probe = if o.p_validate then Some b.Registry.b_workload else None in
      let plan =
        P.plan ?jobs:l_jobs ~objective:o.p_objective ?validate:probe
          ~exact:o.p_exact ?timeout_s:l_timeout_s ?retries:l_retries
          b.Registry.b_program ~outer_index:b.Registry.b_outer_index
          ~inner_index:b.Registry.b_inner_index ~benchmark:b.Registry.b_name
      in
      Ok (render_plan plan, plan_incidents plan)
  with
  | result -> result
  | exception Diag.Failed d -> Error (Diag.to_string d)
  | exception Fault.Injected { site; kind } ->
    Error
      (Printf.sprintf "injected fault at site %s (kind %s)" site
         (Fault.kind_name kind))
  | exception e -> Error (Printexc.to_string e)
