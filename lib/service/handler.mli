(** Typed nimbled requests: body grammar, parsing, rendering and
    execution — shared by the daemon, the [nimblec --server] client
    and its local fallback, so daemon-served output is byte-identical
    to in-process output by construction.

    A work body is line-oriented:
    {v
    <benchmark>
    key=value ...     tier|verify|validate|exact|objective|budget
    v}
    Unknown keys and malformed values are one-line parse errors (the
    daemon replies ERR), never exceptions. *)

type estimate_opts = {
  e_bench : string;
  e_verify : bool;
  e_tier : Uas_ir.Fast_interp.tier option;
      (** verification tier; [None] follows the daemon's default *)
  e_validate : bool;
  e_exact : Uas_dfg.Sched.exact_mode;
  e_budget_s : float option;  (** per-request wall budget override *)
}

type sweep_opts = {
  s_bench : string;
  s_validate : bool;
  s_tier : Uas_ir.Fast_interp.tier option;
      (** accepted for request symmetry; the sweep pipeline is
          execution-free, so the tier cannot change its output — which
          is exactly what the byte-identity property demonstrates *)
  s_budget_s : float option;
}

type plan_opts = {
  p_bench : string;
  p_objective : Uas_core.Planner.objective;
  p_validate : bool;
  p_exact : Uas_dfg.Sched.exact_mode;
  p_budget_s : float option;
}

type work =
  | W_estimate of estimate_opts
  | W_sweep of sweep_opts
  | W_plan of plan_opts

type request = Hello of string | Work of work | Stats | Health | Drain

val work_name : work -> string
val bench_name : work -> string
val budget_s : work -> float option

(** Render a request as its wire frame (the client side). *)
val to_frame : request -> Protocol.frame

(** Parse a received frame's body into a typed request (the daemon
    side); [Error] is the one-line ERR message. *)
val parse : Protocol.frame -> (request, string) result

(** {2 Rendering}

    The exact bytes the daemon serves — and the exact bytes the local
    paths print, which is what makes the CI goldens one set. *)

(** nimblec's estimate output: Table 6.2 then Table 6.3. *)
val render_estimate : Uas_core.Experiments.bench_row -> string

(** nimblec's plan output. *)
val render_plan : Uas_core.Planner.plan -> string

(** One line per (version, outcome), in sweep order — the rendering
    the daemon-vs-[Nimble.sweep] byte-identity property pins. *)
val render_sweep :
  (Uas_core.Nimble.version * Uas_core.Nimble.outcome) list -> string

(** {2 Execution} *)

(** The daemon-wide execution limits threaded into every request's
    nested {!Uas_runtime.Parallel} pool. *)
type limits = {
  l_jobs : int option;
  l_timeout_s : float option;  (** per-cell wall budget (PR 5 watchdog) *)
  l_retries : int option;
}

val no_limits : limits

(** The version set a [SWEEP] explores: depth-aware, mirroring
    [Experiments.run_benchmark] (a deep nest adds the flatten+squash
    route) — what the byte-identity property compares against. *)
val sweep_versions :
  Uas_bench_suite.Registry.benchmark -> Uas_core.Nimble.version list

(** Run one work request through the Cu pipeline and render its reply
    payload, returning the payload with the request's incident count
    (skipped or degraded cells — the daemon's [degraded] counter).
    [Error] is a one-line message: unknown benchmark, a structured
    diagnostic, or an injected fault.  Never raises. *)
val execute : ?limits:limits -> work -> (string * int, string) result
