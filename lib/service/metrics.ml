(* The daemon counters exported via STATS and the trajectory schema v7
   "daemon" object.  Plain atomics — always on, shared across the
   accept loop, reader threads and the dispatcher. *)

type t = {
  admitted : int Atomic.t;  (* work requests accepted into the queue *)
  shed : int Atomic.t;  (* work requests refused with BUSY *)
  timed_out : int Atomic.t;  (* requests killed by their wall budget *)
  degraded : int Atomic.t;  (* requests served with >= 1 incident *)
  drained : int Atomic.t;  (* requests completed during a drain *)
  protocol_errors : int Atomic.t;  (* malformed/oversized/garbage frames *)
  disconnects : int Atomic.t;  (* peers lost mid-request *)
  requests : int Atomic.t;  (* work requests completed (any outcome) *)
  request_us : int Atomic.t;  (* cumulative queue+execute latency *)
}

let create () =
  { admitted = Atomic.make 0;
    shed = Atomic.make 0;
    timed_out = Atomic.make 0;
    degraded = Atomic.make 0;
    drained = Atomic.make 0;
    protocol_errors = Atomic.make 0;
    disconnects = Atomic.make 0;
    requests = Atomic.make 0;
    request_us = Atomic.make 0 }

let add_latency t ~wall_s =
  ignore (Atomic.fetch_and_add t.request_us (int_of_float (wall_s *. 1e6)))

(* Key order is part of the schema: see Trajectory's v7 comment and
   docs/INTERP.md. *)
let to_json t ~queue_depth ~inflight =
  Printf.sprintf
    "{\"admitted\":%d,\"shed\":%d,\"timed_out\":%d,\"degraded\":%d,\"drained\":%d,\"protocol_errors\":%d,\"disconnects\":%d,\"requests\":%d,\"request_s\":%.6f,\"queue_depth\":%d,\"inflight\":%d}"
    (Atomic.get t.admitted) (Atomic.get t.shed) (Atomic.get t.timed_out)
    (Atomic.get t.degraded) (Atomic.get t.drained)
    (Atomic.get t.protocol_errors)
    (Atomic.get t.disconnects) (Atomic.get t.requests)
    (float_of_int (Atomic.get t.request_us) /. 1e6)
    queue_depth inflight

let pp ppf (t, queue_depth, inflight) =
  Format.fprintf ppf
    "daemon: %d admitted, %d shed, %d timed out, %d degraded, %d drained; %d \
     protocol errors, %d disconnects; queue %d, inflight %d"
    (Atomic.get t.admitted) (Atomic.get t.shed) (Atomic.get t.timed_out)
    (Atomic.get t.degraded) (Atomic.get t.drained)
    (Atomic.get t.protocol_errors)
    (Atomic.get t.disconnects) queue_depth inflight
