(** The [nimblec --server] client: bounded retry, exponential backoff,
    deterministic jitter, reply validation.

    Degradation contract: {!Unreachable} (connect failures, I/O
    errors, truncated or checksum-failed replies, BUSY beyond the
    attempt budget) tells the caller to fall back to local in-process
    compilation with an incident footnote; {!Rejected} (an ERR reply)
    means the daemon is alive and failed this request deterministically
    — retrying would not help, so the caller falls back immediately. *)

val default_attempts : int
val default_base_s : float

(** The full delay schedule ([attempts - 1] waits): delay k is
    [base_s * 2^k * (1 + j)] with jitter [j] in [0, 0.5) a pure
    function of [(seed, k)] — pin the seed and the schedule is
    reproducible; default the seed to the pid and concurrent clients
    decorrelate. *)
val backoff_schedule :
  attempts:int -> base_s:float -> seed:int -> float list

type conn

val connect : string -> (conn, string) result
val close : conn -> unit

(** One request/reply exchange; [Error] covers I/O failures and every
    {!Protocol.error} (a corrupted reply is an error here, which the
    retry loop then treats as a failed attempt). *)
val request : conn -> Protocol.frame -> (Protocol.frame, string) result

(** Parse the daemon's BUSY hint ("retry-after=<secs> ..."). *)
val retry_after_hint : string -> float option

type outcome =
  | Served of string  (** OK payload *)
  | Rejected of string  (** ERR body: daemon alive, request failed *)
  | Unreachable of string  (** no usable daemon after all attempts *)

(** Connect–request–close with the retry policy above.  [seed]
    defaults to the pid. *)
val call :
  ?attempts:int -> ?base_s:float -> ?seed:int -> string -> Protocol.frame ->
  outcome

(** {!call} on a work request rendered by {!Handler.to_frame}. *)
val serve_work :
  ?attempts:int -> ?base_s:float -> ?seed:int -> string -> Handler.work ->
  outcome
