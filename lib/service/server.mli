(** The nimbled engine: a Unix-domain-socket daemon serving
    sweep/plan/estimate requests through the Cu pipeline with bounded
    admission, per-request wall budgets, per-connection fault
    isolation, graceful drain and crash recovery.

    {!run} blocks until the daemon drains (via SIGTERM when
    [c_handle_signals], or a [DRAIN] frame) and returns [Ok ()] on a
    clean exit — the caller maps that to exit status 0.  Degradation
    semantics per fault site are documented in [docs/SERVICE.md]. *)

type config = {
  c_socket : string;  (** Unix-domain socket path *)
  c_pidfile : string option;
  c_queue_depth : int;  (** admission bound; beyond it requests shed *)
  c_limits : Handler.limits;  (** jobs / per-cell timeout / retries *)
  c_request_budget_s : float option;
      (** default per-request wall budget; a request's [budget=] key
          overrides it *)
  c_drain_timeout_s : float;
  c_max_frame : int;  (** largest accepted request body, bytes *)
  c_handle_signals : bool;
      (** install SIGTERM/SIGINT drain handlers (the nimbled binary
          does; in-process tests do not) *)
  c_log : string -> unit;  (** one line per event, e.g. [prerr_endline] *)
  c_on_drained : daemon_json:string -> unit;
      (** called once, after a clean drain, with the final trajectory
          v7 ["daemon"] JSON object *)
}

(** Queue 16, no limits or budget, 30 s drain timeout, no pidfile, no
    signal handlers, silent log. *)
val default_config : socket:string -> config

(** Bind, recover stale state, serve until drained.  [Error] covers a
    live daemon already owning the socket or pidfile and bind
    failures; after a successful bind the daemon never returns
    [Error] — faults degrade requests, not the process. *)
val run : config -> (unit, string) result
