(** Loop interchange (§3.3/§3.4): swap the loops of a perfectly nested
    pair.  Conservative legality via the affine dependence tests on
    both orientations. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

type failure =
  | Not_perfect
  | Bounds_use_index
  | Carried_dependence of string

val pp_failure : failure Fmt.t

exception Interchange_error of failure

val check : Loop_nest.t -> failure option

(** Interchange the nest with this outer index, the failure as data —
    the entry point the {!Rewrite} registry builds on.
    @raise Not_found when the nest is absent. *)
val apply_res : Stmt.program -> outer_index:string -> (Stmt.program, failure) result

(** [apply_res], raising.  Prefer {!apply_res} (or the registry) in new
    code.
    @raise Interchange_error when illegal
    @raise Not_found when absent. *)
val apply : Stmt.program -> outer_index:string -> Stmt.program
