(** Loop interchange (§3.3/§3.4): swap two adjacent loops of a
    perfectly nested pair, at any level of a nest.  Conservative
    legality via the affine dependence tests on both orientations for a
    loop-free pair, and via the direction-vector test for a pair buried
    in a deeper nest. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

type failure =
  | Not_perfect
  | Bounds_use_index
  | Carried_dependence of string

val pp_failure : failure Fmt.t

exception Interchange_error of failure

(** Legality for a pair whose inner body is loop-free; {!apply_res}
    picks the direction-vector test instead for deeper pairs. *)
val check : Loop_nest.pair -> failure option

(** Depth-aware legality at the pair headed by [outer_index].
    @raise Not_found when absent. *)
val check_at : Stmt.program -> outer_index:string -> failure option

(** Interchange the nest with this outer index, the failure as data —
    the entry point the {!Rewrite} registry builds on.
    @raise Not_found when the nest is absent. *)
val apply_res : Stmt.program -> outer_index:string -> (Stmt.program, failure) result

(** [apply_res], raising.  Prefer {!apply_res} (or the registry) in new
    code.
    @raise Interchange_error when illegal
    @raise Not_found when absent. *)
val apply : Stmt.program -> outer_index:string -> Stmt.program
