(** First-class loop rewrites: every transformation of the library
    behind one named, parameterized interface on the pass pipeline's
    compilation units, plus the registry that maps stable names to
    rewrites.

    A rewrite is applied uniformly as
    [apply rw ~params cu : (Cu.t, Diag.t) result]: success is a new
    unit with the transformed program (analyses invalidated, kernel
    indices re-pointed when the rewrite moved the kernel), failure is a
    structured diagnostic — never an escaping transform exception.
    [check] answers the legality question alone; [apply] always checks
    first.

    Registered names (registration order): interchange, tiling, peel,
    fusion, distribute, flatten, hoist, ifconv, scalarize, scalar-opts,
    expand, pipeline-sw, unroll, jam, squash. *)

module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass

(** Parameters of a rewrite application.  [target] names the loop the
    rewrite acts on — the nest's outer index for nest rewrites, the
    loop's own index for single-loop rewrites — and defaults to the
    unit's kernel ([Cu.outer_index] / [Cu.inner_index] respectively).
    [factor] is the rewrite's count (unroll/squash factor DS, tile
    size, peel iterations, stage count, expansion data-set number);
    [cut] is distribution's statement position.  A rewrite that needs a
    missing parameter fails with a diagnostic, not an exception. *)
type params = {
  target : string option;
  factor : int option;
  cut : int option;
}

(** All fields [None]: every rewrite acts on the kernel nest with its
    required counts missing. *)
val default_params : params

(** A named, parameterized loop rewrite.  The descriptive fields drive
    docs/TRANSFORMS.md and [nimblec] listings; [rw_check]/[rw_apply]
    are the raw callbacks — use {!check}/{!apply}, which add the
    exception guard. *)
type t = {
  rw_name : string;  (** stable registry/pass name *)
  rw_summary : string;  (** one-line description *)
  rw_section : string;  (** thesis section reproduced *)
  rw_legality : string;  (** legality test, prose *)
  rw_parameters : string;  (** parameter conventions, prose *)
  rw_failure_modes : string;  (** failure modes, prose *)
  rw_check : params -> Cu.t -> Diag.t option;
  rw_apply : params -> Cu.t -> (Cu.t, Diag.t) result;
}

val name : t -> string

(** Would applying the rewrite here succeed?  [None] when legal, the
    diagnostic otherwise.  Escaping layer-local exceptions are
    translated like pass failures; unrecognized exceptions (genuine
    bugs) propagate. *)
val check : ?params:params -> t -> Cu.t -> Diag.t option

(** Apply the rewrite: {!check} first, then transform.  On success the
    unit's kernel indices follow the kernel (squash's fresh steady
    index, interchange's swap, flattening's collapse).

    The application runs at the fault-injection site [rewrite.apply]
    (label: the rewrite name); the [corrupt] kind makes a successful
    application return a deterministically-miscompiled program — the
    scenario {!validated_apply} exists to catch. *)
val apply : ?params:params -> t -> Cu.t -> (Cu.t, Diag.t) result

(** {!apply} followed by translation validation on the [probe]
    workload: both interpreter tiers run the transformed program and
    must agree bit-for-bit ([Interp.diff_results]), and the rewrite
    must preserve the program's outputs ([Interp.diff_outputs] against
    a pre-rewrite reference run — profiles legitimately change under a
    rewrite, outputs never).

    On a validation failure — including a probe run going [Stuck] or
    out of fuel — the rewrite is {e not} applied: the pre-rewrite unit
    is returned ([Ok], so the pipeline continues on the last-known-good
    program), the failure is logged on it as a {!Cu.add_incident}
    diagnostic (which the sweep and planner render as a
    [degraded:] footer), and [rewrite.validation-failed] is counted.
    Validation runs under a [rewrite.validate] instrumentation span. *)
val validated_apply :
  ?params:params ->
  probe:Uas_ir.Interp.workload ->
  t ->
  Cu.t ->
  (Cu.t, Diag.t) result

(** {2 Registry} *)

(** Add a rewrite; @raise Invalid_argument on a duplicate name. *)
val register : t -> unit

(** Every registered rewrite, in registration order. *)
val all : unit -> t list

(** Registered names, in registration order — these are also valid
    [--dump-after] selectors in nimblec. *)
val names : unit -> string list

val find : string -> t option

(** @raise Invalid_argument on unknown names, listing the valid ones. *)
val get : string -> t

(** {2 Pipeline integration} *)

(** The rewrite as a pipeline pass named [rw_name].  [validate] makes
    the pass use {!validated_apply} with the given probe workload. *)
val to_pass : ?params:params -> ?validate:Uas_ir.Interp.workload -> t -> Pass.t

(** [pass ?target ?factor ?cut ?validate name] looks the rewrite up and
    converts it: [pass ~factor:4 "squash"] is the historical squash
    pipeline pass.  @raise Invalid_argument on unknown names. *)
val pass :
  ?target:string ->
  ?factor:int ->
  ?cut:int ->
  ?validate:Uas_ir.Interp.workload ->
  string ->
  Pass.t
