(* Loop fusion (§3.4): merge two adjacent loops with identical bounds
   into one.  Legal when no operation of the second loop at iteration j
   depends on an operation of the first loop at a *later* iteration
   j' > j (fusion only moves second-loop iterations earlier relative to
   first-loop iterations).

   The check is conservative:
   - scalars: the second loop may not read a scalar the first writes
     (it would observe a per-iteration value instead of the final one),
     and may not write a scalar the first reads or writes;
   - arrays: for every (write, access) pair across the two bodies on the
     same array, there must be no conflict between iteration j of the
     second loop and iteration j+d (d >= 1) of the first — tested with
     the same affine-in-index disambiguation the DFG builder uses. *)

open Uas_ir
module Sset = Stmt.Sset

type failure =
  | Different_bounds
  | Scalar_flow of string
  | Array_conflict of string
  | No_fusable_pair

let pp_failure ppf = function
  | Different_bounds -> Fmt.string ppf "loop bounds differ"
  | Scalar_flow v -> Fmt.pf ppf "scalar %s flows between the loops" v
  | Array_conflict a -> Fmt.pf ppf "array %s conflicts across the loops" a
  | No_fusable_pair -> Fmt.string ppf "no adjacent fusable pair of loops"

let accesses_of body =
  let of_expr e =
    List.rev
      (Expr.fold
         (fun acc e ->
           match e with
           | Expr.Load (a, i) -> (a, i, false) :: acc
           | _ -> acc)
         [] e)
  in
  Stmt.fold_list
    (fun acc s ->
      match s with
      | Stmt.Assign (_, e) -> acc @ of_expr e
      | Stmt.Store (a, i, e) -> acc @ of_expr i @ of_expr e @ [ (a, i, true) ]
      | Stmt.If (c, _, _) -> acc @ of_expr c
      | Stmt.For _ -> acc)
    [] body

(** Why fusing [l1] (first) with [l2] (second) would be illegal; empty
    when fusion is safe. *)
let failures (l1 : Stmt.loop) (l2 : Stmt.loop) : failure list =
  let fs = ref [] in
  if
    not
      (String.equal l1.index l2.index
      && Expr.equal l1.lo l2.lo && Expr.equal l1.hi l2.hi && l1.step = l2.step)
  then fs := Different_bounds :: !fs;
  let d1 = Stmt.defs l1.body and u1 = Stmt.uses l1.body in
  let d2 = Stmt.defs l2.body and u2 = Stmt.uses l2.body in
  let bad =
    Sset.union (Sset.inter d1 u2) (Sset.inter d2 (Sset.union u1 d1))
  in
  Sset.iter
    (fun v -> if not (String.equal v l1.index) then fs := Scalar_flow v :: !fs)
    bad;
  let body_defs = Sset.union d1 d2 in
  let a1 = accesses_of l1.body and a2 = accesses_of l2.body in
  List.iter
    (fun (arr1, i1, w1) ->
      List.iter
        (fun (arr2, i2, w2) ->
          if String.equal arr1 arr2 && (w1 || w2) then
            (* second loop's access at j versus first loop's at j+d *)
            match
              Uas_dfg.Build.cross_distance ~inner_index:(Some l1.index)
                ~inner_step:l1.step ~body_defs i2 i1
            with
            | Some _ -> fs := Array_conflict arr1 :: !fs
            | None -> ())
        a2)
    a1;
  List.rev !fs

(** Fuse the two loops into one; @raise Ir_error when illegal. *)
let fuse (l1 : Stmt.loop) (l2 : Stmt.loop) : Stmt.loop =
  match failures l1 l2 with
  | [] -> { l1 with body = l1.body @ l2.body }
  | f :: _ -> Types.ir_error "cannot fuse: %s" (Fmt.str "%a" pp_failure f)

(** Fuse the first adjacent fusable pair of loops found in [p]. *)
let apply_first (p : Stmt.program) : Stmt.program option =
  let changed = ref false in
  let rec go stmts =
    match stmts with
    | Stmt.For l1 :: Stmt.For l2 :: rest
      when (not !changed) && failures l1 l2 = [] ->
      changed := true;
      Stmt.For (fuse l1 l2) :: go rest
    | Stmt.For l :: rest -> Stmt.For { l with body = go l.body } :: go rest
    | Stmt.If (c, t, e) :: rest -> Stmt.If (c, go t, go e) :: go rest
    | s :: rest -> s :: go rest
    | [] -> []
  in
  let body = go p.body in
  if !changed then Some { p with body } else None

(** [apply_first] with the no-pair case as a failure — the entry point
    the {!Rewrite} registry builds on. *)
let apply_res (p : Stmt.program) : (Stmt.program, failure) result =
  match apply_first p with
  | Some q -> Ok q
  | None -> Error No_fusable_pair
