(** Unroll-and-squash (Chapter 4), the paper's contribution.

    For an adjacent loop pair and unroll factor DS: the inner body is
    cut into
    DS balanced stage slices; every scalar the body touches gets DS
    rotating copies; stage s always executes on copy s and a rotation
    hands each data set's whole scalar state to the next stage (copy
    DS-1 wraps to copy 0 — the round-robin of Figure 2.4 and the
    stretched backedges of Figure 4.2 as register moves).  The outer
    loop advances by DS; a prolog fills the pipeline, the steady loop
    runs DS*N - (DS-1) iterations (§4.4), an epilog drains it.

    The result is an ordinary program: it runs in the interpreter and
    computes bit-identical outputs (the test suite enforces this), and
    its inner loop maps to hardware with the *original* operator count
    plus registers only. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality

type error =
  | Illegal of Legality.verdict
  | Needs_static_trip_counts
  | Inner_loop_empty

val pp_error : error Fmt.t

exception Squash_error of error

type outcome = {
  program : Stmt.program;  (** the full transformed program *)
  new_inner_index : string;  (** index of the squashed steady loop *)
  new_inner_body : Stmt.t list;  (** steady-state body incl. rotation *)
  stages : Stmt.t list list;  (** the DS slices of the original body *)
  rotated : string list;  (** base scalars given rotating copies *)
  ds : int;
}

(** Apply unroll-and-squash by [ds] to [nest] inside [p].  Enabling
    rewrites (induction variables, peeling of [M mod DS] iterations)
    are applied automatically when the legality check calls for them.
    @raise Squash_error when the nest does not meet the §4.1/§4.2
    requirements. *)
val apply :
  ?delay_of:(Opinfo.op_kind -> int) ->
  Stmt.program ->
  Loop_nest.pair ->
  ds:int ->
  outcome

(** [apply] with the failure modes as data instead of an exception —
    the entry point the pass pipeline ({!Uas_pass}) builds on. *)
val apply_res :
  ?delay_of:(Opinfo.op_kind -> int) ->
  Stmt.program ->
  Loop_nest.pair ->
  ds:int ->
  (outcome, error) result
