(* Unroll-and-jam (§3.4, Figure 3.3): unroll the outer loop by DS and
   fuse the resulting inner loops back into one.  We emit the fused form
   directly: the new inner body is the concatenation of the DS data
   sets' bodies, each operating on its own expanded copies [v@u<d>] of
   the nest's scalars; the inner index is shared.

   Legality is the same §4.2 condition as unroll-and-squash (the paper:
   "unroll-and-squash can be applied to any set of 2 nested loops that
   can be successfully unroll-and-jammed"). *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Induction = Uas_analysis.Induction
module Sset = Stmt.Sset

type outcome = {
  program : Stmt.program;
  new_inner_body : Stmt.t list;
  ds : int;
}

exception Jam_error of Legality.verdict

let () =
  Printexc.register_printer (function
    | Jam_error v -> Some (Fmt.str "Jam_error: %a" Legality.pp_verdict v)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Jam_error v -> Some (Fmt.str "%a" Legality.pp_verdict v)
    | _ -> None)

let apply (p : Stmt.program) (nest : Loop_nest.pair) ~ds : outcome =
  if ds <= 0 then Types.ir_error "unroll factor must be positive";
  let verdict = Legality.check nest ~ds in
  if not verdict.Legality.ok then raise (Jam_error verdict);
  let p, nest =
    List.fold_left
      (fun (p, nest) iv -> Induction.rewrite p nest iv)
      (p, nest) verdict.Legality.induction_rewrites
  in
  let p, nest =
    if verdict.Legality.needs_peel > 0 then
      Peel.peel_back p nest ~iterations:verdict.Legality.needs_peel
    else (p, nest)
  in
  let i = nest.Loop_nest.outer_index and j = nest.inner_index in
  let versioned = Sset.remove j (Expand.versioned_scalars nest) in
  let restore_set =
    Sset.remove i
      (Sset.remove j
         (Sset.inter (Expand.versioned_scalars nest)
            (Uas_analysis.Def_use.used_outside_nest p nest)))
  in
  let copy d stmts =
    Expand.rename_in versioned (fun v -> Expand.unroll_copy v d) stmts
  in
  let pre_d d =
    Stmt.Assign
      ( Expand.unroll_copy i d,
        Expr.simplify
          (Expr.Binop (Types.Add, Expr.Var i, Expr.Int (d * nest.outer_step))) )
    :: copy d nest.pre
  in
  let new_body = List.concat (List.init ds (fun d -> copy d nest.inner_body)) in
  let inner =
    Stmt.For
      { index = j;
        lo = nest.inner_lo;
        hi = nest.inner_hi;
        step = nest.inner_step;
        body = new_body }
  in
  let post_d d = copy d nest.post in
  let restore =
    Sset.fold
      (fun v acc ->
        Stmt.Assign (v, Expr.Var (Expand.unroll_copy v (ds - 1))) :: acc)
      restore_set []
  in
  let outer_body =
    List.concat (List.init ds pre_d)
    @ [ inner ]
    @ List.concat (List.init ds post_d)
    @ restore
  in
  let new_outer =
    Stmt.For
      { index = i;
        lo = nest.outer_lo;
        hi = nest.outer_hi;
        step = nest.outer_step * ds;
        body = outer_body }
  in
  let decls =
    Expand.copy_decls p versioned (fun v -> List.init ds (Expand.unroll_copy v))
  in
  let p = Loop_nest.replace p ~outer_index:i [ new_outer ] in
  let p = Stmt.add_locals p decls in
  { program = p; new_inner_body = new_body; ds }

(* Non-raising entry point for the pass pipeline, as for
   {!Squash.apply_res}. *)
let apply_res (p : Stmt.program) (nest : Loop_nest.pair) ~ds :
    (outcome, Legality.verdict) result =
  match apply p nest ~ds with
  | out -> Ok out
  | exception Jam_error v -> Error v
