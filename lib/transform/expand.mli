(** Variable expansion (§4.3): naming and declaration helpers for the
    per-data-set scalar copies.  Generated names contain '@', which the
    builder-level source names never do. *)

open Uas_ir
module Sset = Stmt.Sset

(** [stage_copy v k] is the rotating pipeline copy [v@s<k>]. *)
val stage_copy : string -> int -> string

(** [pre_copy v d] is the pre-staging copy [v@pre<d>]. *)
val pre_copy : string -> int -> string

(** [post_copy v d] is the post-staging copy [v@post<d>]. *)
val post_copy : string -> int -> string

(** [rot_temp v] is the rotation temporary [v@rot]. *)
val rot_temp : string -> string

(** [unroll_copy v d] is the jam/unroll copy [v@u<d>]. *)
val unroll_copy : string -> int -> string

(** Rename the scalars of [set] through the function; others
    untouched. *)
val rename_in : Sset.t -> (string -> string) -> Stmt.t list -> Stmt.t list

(** Declarations for all copies of all variables of [set], typed like
    the originals.  @raise Ir_error on collisions or undeclared
    sources. *)
val copy_decls :
  Stmt.program ->
  Sset.t ->
  (string -> string list) ->
  (string * Types.ty) list

(** Scalars a nest transformation must version: everything the nest
    writes plus both loop indices. *)
val versioned_scalars : Uas_analysis.Loop_nest.pair -> Sset.t

(** Exit value of a loop index after the loop, constant-folded when the
    bounds are static. *)
val index_exit_value : lo:Expr.t -> hi:Expr.t -> step:int -> Expr.t
