(** Loop fusion (§3.4): merge two adjacent loops with identical bounds.
    Legal when no operation of the second loop at iteration j depends
    on a first-loop operation at a later iteration. *)

open Uas_ir

type failure =
  | Different_bounds
  | Scalar_flow of string
  | Array_conflict of string
  | No_fusable_pair

val pp_failure : failure Fmt.t

(** All array accesses (array, index, is-write) of a block, in program
    order.  Exposed for reuse by distribution / pipelining. *)
val accesses_of : Stmt.t list -> (string * Expr.t * bool) list

(** Why fusing the first loop with the second would be illegal; empty
    when safe. *)
val failures : Stmt.loop -> Stmt.loop -> failure list

(** @raise Ir_error when illegal. *)
val fuse : Stmt.loop -> Stmt.loop -> Stmt.loop

(** Fuse the first adjacent fusable pair found; [None] when none. *)
val apply_first : Stmt.program -> Stmt.program option

(** [apply_first] with the no-pair case as a failure — the entry point
    the {!Rewrite} registry builds on. *)
val apply_res : Stmt.program -> (Stmt.program, failure) result
