(** Loop flattening (coalescing, §5.2): collapse a perfect static
    adjacent loop pair — at any level of a nest — into one loop over
    the combined iteration space, the original indices recomputed by
    division/modulus.  Always legal for perfect pairs (traversal order
    unchanged); on a deeper nest, flattening the top pair reduces the
    depth by one, so repeated flattening reaches the loop-pair shape
    squash needs. *)

open Uas_ir

type failure = Not_perfect | Non_static_bounds

val pp_failure : failure Fmt.t

exception Flatten_error of failure

(** Flatten the nest with this outer index, also returning the fresh
    flattened index — the entry point the {!Rewrite} registry builds
    on.
    @raise Not_found when absent. *)
val apply_res :
  Stmt.program -> outer_index:string -> (Stmt.program * string, failure) result

(** [apply_res], raising and dropping the fresh index.
    @raise Flatten_error on imperfect/dynamic nests
    @raise Not_found when absent. *)
val apply : Stmt.program -> outer_index:string -> Stmt.program
