(* Variable expansion (§4.3: "expand each variable in the inner/outer
   loop nest to DS versions").

   Naming scheme for generated scalars — the '@' separator cannot occur
   in source-level names written through the builder DSL, so generated
   names never collide with user names; a defensive check enforces it:

     v@s<k>     rotating pipeline copy for stage k
     v@pre<d>   staging copy written by data set d's unrolled pre code
     v@post<d>  staging copy read by data set d's unrolled post code
     v@rot      rotation temporary
     v@u<d>     unroll copy for unroll-and-jam / plain unrolling *)

open Uas_ir
module Sset = Stmt.Sset

let stage_copy v k = Printf.sprintf "%s@s%d" v k
let pre_copy v d = Printf.sprintf "%s@pre%d" v d
let post_copy v d = Printf.sprintf "%s@post%d" v d
let rot_temp v = v ^ "@rot"
let unroll_copy v d = Printf.sprintf "%s@u%d" v d

(** Rename scalars of [set] in [stmts] through [f]; other scalars are
    untouched. *)
let rename_in (set : Sset.t) (f : string -> string) (stmts : Stmt.t list) :
    Stmt.t list =
  Stmt.rename_vars_list (fun v -> if Sset.mem v set then f v else v) stmts

(** Declarations for the copies produced by [names] applied to every
    variable of [set], typed like the originals.  @raise Ir_error when a
    generated name is already declared (user names may not contain '@'). *)
let copy_decls (p : Stmt.program) (set : Sset.t)
    (names : string -> string list) : (string * Types.ty) list =
  let ty_of v =
    match Stmt.lookup_scalar_ty p v with
    | Some t -> t
    | None -> Types.ir_error "expansion of undeclared scalar %s" v
  in
  Sset.fold
    (fun v acc ->
      List.fold_left
        (fun acc name ->
          if Stmt.lookup_scalar_ty p name <> None then
            Types.ir_error "generated name %s collides with a declared scalar"
              name;
          (name, ty_of v) :: acc)
        acc (names v))
    set []

(** The scalars a nest transformation must version: everything the nest
    writes, plus both loop indices (each data set owns its own index
    values). *)
let versioned_scalars (nest : Uas_analysis.Loop_nest.pair) : Sset.t =
  Stmt.defs (Uas_analysis.Loop_nest.all_stmts nest)
  |> Sset.add nest.Uas_analysis.Loop_nest.outer_index
  |> Sset.add nest.inner_index

(** Exit value of a loop index after the loop completes, as a constant
    expression when the bounds are static. *)
let index_exit_value ~(lo : Expr.t) ~(hi : Expr.t) ~step : Expr.t =
  match (Expr.simplify lo, Expr.simplify hi) with
  | Expr.Int l, Expr.Int h ->
    if h <= l then Expr.Int l
    else Expr.Int (l + ((h - l + step - 1) / step * step))
  | lo', hi' ->
    (* lo + ceil((hi-lo)/step)*step, emitted symbolically *)
    let diff = Expr.Binop (Types.Sub, hi', lo') in
    let steps =
      Expr.Binop
        ( Types.Div,
          Expr.Binop (Types.Add, diff, Expr.Int (step - 1)),
          Expr.Int step )
    in
    Expr.simplify
      (Expr.Binop (Types.Add, lo', Expr.Binop (Types.Mul, steps, Expr.Int step)))
