(* Loop distribution (fission, §5.2 mentions it among the Nimble
   front-end transformations): split one loop into a sequence of loops,
   one per group of statements, enabling other transformations on the
   pieces.

   Splitting [for j { S1; S2 }] into [for j { S1 }; for j { S2 }] is
   legal when no value flows from S2's iterations back into S1's later
   iterations — i.e. the statement groups can be topologically ordered
   by their inter-group dependences with the cut respecting that order.
   We check the simple sufficient condition: no scalar or array written
   by the second group is read or written by the first, and no scalar
   defined in the first group and consumed in the second is loop-
   carried (each iteration of the second group must only need the same
   iteration's value, which distribution preserves... it does NOT:
   distribution gives the second loop the *last* iteration's scalars).

   Hence scalars flowing between the groups are only allowed when the
   flow goes through arrays indexed by the loop variable. *)

open Uas_ir
module Sset = Stmt.Sset

type failure =
  | Scalar_flow of string
  | Array_flow of string
  | Bad_cut

let pp_failure ppf = function
  | Scalar_flow v -> Fmt.pf ppf "scalar %s flows between the groups" v
  | Array_flow a -> Fmt.pf ppf "array %s flows backwards between the groups" a
  | Bad_cut -> Fmt.string ppf "cut position out of range"

exception Distribute_error of failure

let () =
  Printexc.register_printer (function
    | Distribute_error f -> Some (Fmt.str "Distribute_error: %a" pp_failure f)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Distribute_error f -> Some (Fmt.str "%a" pp_failure f)
    | _ -> None)

(** Why cutting [l.body] after its first [cut] statements would be
    illegal; empty when safe. *)
let failures (l : Stmt.loop) ~cut : failure list =
  if cut <= 0 || cut >= List.length l.body then [ Bad_cut ]
  else begin
    let g1 = List.filteri (fun k _ -> k < cut) l.body in
    let g2 = List.filteri (fun k _ -> k >= cut) l.body in
    let fs = ref [] in
    (* scalars may not cross the cut at all (the second loop would see
       only the last iteration's values) *)
    let crossing =
      Sset.union
        (Sset.inter (Stmt.defs g1) (Stmt.uses g2))
        (Sset.inter (Stmt.defs g2) (Sset.union (Stmt.uses g1) (Stmt.defs g1)))
    in
    Sset.iter
      (fun v -> if not (String.equal v l.index) then fs := Scalar_flow v :: !fs)
      crossing;
    (* arrays: g2's writes must not feed g1 at any later iteration, and
       g1's writes may feed g2 only at the same iteration *)
    let body_defs = Sset.union (Stmt.defs g1) (Stmt.defs g2) in
    let a1 = Fusion.accesses_of g1 and a2 = Fusion.accesses_of g2 in
    List.iter
      (fun (arr1, i1, w1) ->
        List.iter
          (fun (arr2, i2, w2) ->
            if String.equal arr1 arr2 && (w1 || w2) then begin
              (* conflict between g2 at iteration j and g1 at j+d, d>=1:
                 distribution runs ALL of g1 first, so this reorders *)
              match
                Uas_dfg.Build.cross_distance ~inner_index:(Some l.index)
                  ~inner_step:l.step ~body_defs i2 i1
              with
              | Some _ -> fs := Array_flow arr1 :: !fs
              | None -> ()
            end)
          a2)
      a1;
    List.rev !fs
  end

(** Distribute the loop with index [index] in [p] at statement position
    [cut]. *)
let apply (p : Stmt.program) ~index ~cut : Stmt.program =
  let replaced = ref false in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index index && not !replaced -> (
          match failures l ~cut with
          | f :: _ -> raise (Distribute_error f)
          | [] ->
            replaced := true;
            let g1 = List.filteri (fun k _ -> k < cut) l.body in
            let g2 = List.filteri (fun k _ -> k >= cut) l.body in
            [ Stmt.For { l with body = g1 }; Stmt.For { l with body = g2 } ])
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then Types.ir_error "no loop with index %s" index;
  { p with body }
