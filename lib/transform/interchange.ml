(* Loop interchange (permutation, §3.3/§3.4): swap the two loops of a
   perfectly nested pair.  Legal when the loops are fully permutable —
   conservatively, when no dependence is carried with a direction that
   interchange would reverse.

   We accept the common safe cases:
   - no statement of the body writes memory, or
   - every dependent access pair is independent across both loops
     (checked with the affine machinery of [Dependence] applied twice,
     once per loop orientation).

   Interchange requires a *perfect* nest: the outer body is exactly the
   inner loop, and the bounds of each loop do not use the other's
   index. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Dependence = Uas_analysis.Dependence

type failure =
  | Not_perfect
  | Bounds_use_index
  | Carried_dependence of string

let pp_failure ppf = function
  | Not_perfect -> Fmt.string ppf "the nest is not perfectly nested"
  | Bounds_use_index -> Fmt.string ppf "a loop bound uses the other index"
  | Carried_dependence a ->
    Fmt.pf ppf "array %s carries a dependence that interchange would reverse" a

exception Interchange_error of failure

let () =
  Printexc.register_printer (function
    | Interchange_error f -> Some (Fmt.str "Interchange_error: %a" pp_failure f)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Interchange_error f -> Some (Fmt.str "%a" pp_failure f)
    | _ -> None)

let check (nest : Loop_nest.t) : failure option =
  if nest.Loop_nest.pre <> [] || nest.post <> [] then Some Not_perfect
  else if
    Expr.mem_var nest.outer_index nest.inner_lo
    || Expr.mem_var nest.outer_index nest.inner_hi
    || Expr.mem_var nest.inner_index nest.outer_lo
    || Expr.mem_var nest.inner_index nest.outer_hi
  then Some Bounds_use_index
  else begin
    (* conservative dependence test: every pair that may conflict must
       conflict only at distance (0, 0) — independence in both the outer
       direction and, by symmetry of the swapped nest, the inner one *)
    let swapped =
      { nest with
        Loop_nest.outer_index = nest.inner_index;
        outer_lo = nest.inner_lo;
        outer_hi = nest.inner_hi;
        outer_step = nest.inner_step;
        inner_index = nest.outer_index;
        inner_lo = nest.outer_lo;
        inner_hi = nest.outer_hi;
        inner_step = nest.outer_step }
    in
    let offending n =
      List.find_map
        (fun ((x : Dependence.access), _, d) ->
          match d with
          | Dependence.No_dependence | Dependence.Exact 0 -> None
          | Dependence.Within (0, 0) -> None
          | _ -> Some x.Dependence.acc_array)
        (Dependence.all_pairs n)
    in
    match offending nest with
    | Some a -> Some (Carried_dependence a)
    | None -> (
      match offending swapped with
      | Some a -> Some (Carried_dependence a)
      | None -> None)
  end

(** Interchange the nest identified by its outer index inside [p], the
    §4.1/§4.2 failure modes as data. *)
let apply_res (p : Stmt.program) ~outer_index :
    (Stmt.program, failure) result =
  let nest = Loop_nest.find_by_outer_index p outer_index in
  match check nest with
  | Some f -> Error f
  | None ->
    let swapped =
      Stmt.For
        { index = nest.inner_index;
          lo = nest.inner_lo;
          hi = nest.inner_hi;
          step = nest.inner_step;
          body =
            [ Stmt.For
                { index = nest.outer_index;
                  lo = nest.outer_lo;
                  hi = nest.outer_hi;
                  step = nest.outer_step;
                  body = nest.inner_body } ] }
    in
    Ok (Loop_nest.replace p ~outer_index [ swapped ])

(** [apply_res], raising the failure. *)
let apply (p : Stmt.program) ~outer_index : Stmt.program =
  match apply_res p ~outer_index with
  | Ok q -> q
  | Error f -> raise (Interchange_error f)
