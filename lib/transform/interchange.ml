(* Loop interchange (permutation, §3.3/§3.4): swap two adjacent loops
   of a perfectly nested pair.  Legal when the loops are fully
   permutable — conservatively, when no dependence is carried with a
   direction that interchange would reverse.

   For a pair whose inner body is loop-free we accept the common safe
   cases:
   - no statement of the body writes memory, or
   - every dependent access pair is independent across both loops
     (checked with the affine machinery of [Dependence] applied twice,
     once per loop orientation).

   For a pair buried in a deeper nest, the affine pair forms cannot see
   the deeper indices; there the classic direction-vector test decides:
   swapping levels (k, k+1) is illegal exactly when some dependence has
   a distance vector whose leading nonzero entry sits at level k and
   whose level-(k+1) entry is negative.

   Interchange requires a *perfect* pair: the outer body is exactly the
   inner loop, and the bounds of each loop do not use the other's
   index. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Dependence = Uas_analysis.Dependence

type failure =
  | Not_perfect
  | Bounds_use_index
  | Carried_dependence of string

let pp_failure ppf = function
  | Not_perfect -> Fmt.string ppf "the nest is not perfectly nested"
  | Bounds_use_index -> Fmt.string ppf "a loop bound uses the other index"
  | Carried_dependence a ->
    Fmt.pf ppf "array %s carries a dependence that interchange would reverse" a

exception Interchange_error of failure

let () =
  Printexc.register_printer (function
    | Interchange_error f -> Some (Fmt.str "Interchange_error: %a" pp_failure f)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Interchange_error f -> Some (Fmt.str "%a" pp_failure f)
    | _ -> None)

(* Shape requirements shared by both dependence tests. *)
let structural (nest : Loop_nest.pair) : failure option =
  if nest.Loop_nest.pre <> [] || nest.post <> [] then Some Not_perfect
  else if
    Expr.mem_var nest.outer_index nest.inner_lo
    || Expr.mem_var nest.outer_index nest.inner_hi
    || Expr.mem_var nest.inner_index nest.outer_lo
    || Expr.mem_var nest.inner_index nest.outer_hi
  then Some Bounds_use_index
  else None

let check (nest : Loop_nest.pair) : failure option =
  match structural nest with
  | Some f -> Some f
  | None ->
    (* conservative dependence test: every pair that may conflict must
       conflict only at distance (0, 0) — independence in both the outer
       direction and, by symmetry of the swapped nest, the inner one *)
    let swapped =
      { nest with
        Loop_nest.outer_index = nest.inner_index;
        outer_lo = nest.inner_lo;
        outer_hi = nest.inner_hi;
        outer_step = nest.inner_step;
        inner_index = nest.outer_index;
        inner_lo = nest.outer_lo;
        inner_hi = nest.outer_hi;
        inner_step = nest.outer_step }
    in
    let offending n =
      List.find_map
        (fun ((x : Dependence.access), _, d) ->
          match d with
          | Dependence.No_dependence | Dependence.Exact 0 -> None
          | Dependence.Within (0, 0) -> None
          | _ -> Some x.Dependence.acc_array)
        (Dependence.all_pairs n)
    in
    (match offending nest with
    | Some a -> Some (Carried_dependence a)
    | None -> (
      match offending swapped with
      | Some a -> Some (Carried_dependence a)
      | None -> None))

(* Direction-vector test for a pair at level [k] of a deeper nest. *)
let deep_check (n : Uas_analysis.Loop_nest.t) ~level : failure option =
  let accs = Dependence.nest_accesses n in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) (x :: rest) @ pairs rest
  in
  List.find_map
    (fun ((x : Dependence.access), (y : Dependence.access)) ->
      if
        (not (String.equal x.Dependence.acc_array y.Dependence.acc_array))
        || not (x.Dependence.acc_is_write || y.Dependence.acc_is_write)
      then None
      else
        match Dependence.distance_vectors n x y with
        | None -> Some (Carried_dependence x.Dependence.acc_array)
        | Some vs ->
          if
            List.exists
              (fun v ->
                let lead = ref (-1) in
                Array.iteri
                  (fun i d -> if d <> 0 && !lead < 0 then lead := i)
                  v;
                !lead = level
                && level + 1 < Array.length v
                && v.(level + 1) < 0)
              vs
          then Some (Carried_dependence x.Dependence.acc_array)
          else None)
    (pairs accs)

(** Depth-aware legality at the pair headed by [outer_index]: the
    affine pair test when its inner body is loop-free, the
    direction-vector test when it is buried in a deeper nest.
    @raise Not_found when absent. *)
let check_at (p : Stmt.program) ~outer_index : failure option =
  let nest = Loop_nest.find_by_outer_index p outer_index in
  match Loop_nest.depth_at p outer_index with
  | Some d when d > 2 -> (
    match structural nest with
    | Some f -> Some f
    | None -> (
      match Loop_nest.find_nest_opt p outer_index with
      | None -> Some Not_perfect
      | Some n ->
        let level =
          let rec pos k = function
            | [] -> 0
            | lv :: rest ->
              if String.equal lv.Uas_analysis.Loop_nest.l_index outer_index
              then k
              else pos (k + 1) rest
          in
          pos 0 n.Uas_analysis.Loop_nest.levels
        in
        deep_check n ~level))
  | _ -> check nest

(** Interchange the pair identified by its outer index inside [p], the
    failure modes as data. *)
let apply_res (p : Stmt.program) ~outer_index :
    (Stmt.program, failure) result =
  let nest = Loop_nest.find_by_outer_index p outer_index in
  match check_at p ~outer_index with
  | Some f -> Error f
  | None ->
    let swapped =
      Stmt.For
        { index = nest.inner_index;
          lo = nest.inner_lo;
          hi = nest.inner_hi;
          step = nest.inner_step;
          body =
            [ Stmt.For
                { index = nest.outer_index;
                  lo = nest.outer_lo;
                  hi = nest.outer_hi;
                  step = nest.outer_step;
                  body = nest.inner_body } ] }
    in
    Ok (Loop_nest.replace p ~outer_index [ swapped ])

(** [apply_res], raising the failure. *)
let apply (p : Stmt.program) ~outer_index : Stmt.program =
  match apply_res p ~outer_index with
  | Ok q -> q
  | Error f -> raise (Interchange_error f)
