(* Unroll-and-squash (Chapter 4), the paper's contribution.

   Given an adjacent loop pair (any level of a nest, via the pair
   view), outer trip count M (a multiple of DS), inner trip count N
   (static, >= 1), and unroll factor DS:

   - the inner body is cut into DS contiguous stage slices, balanced by
     estimated delay (Stage.partition — the "pipeline the DFG ignoring
     backedges" step expressed on the software side);
   - every scalar the body touches gets DS rotating copies [v@s0 ..
     v@s{DS-1}]; stage s always executes on copy s, and a rotation at
     the end of each squashed iteration hands every data set's whole
     scalar state to the next stage — copy DS-1 wraps to copy 0, which
     is exactly the round-robin of Figure 2.4 and realizes the
     "stretched" backedges of Figure 4.2 as register moves;
   - the outer loop advances by DS*step; the DS data sets' pre/post
     blocks are unrolled into private staging copies [v@pre<d>],
     [v@post<d>];
   - a prolog fills the pipeline (data set d is injected into copy 0
     just before squashed step d), the steady-state inner loop runs
     DS*N - (DS-1) iterations (the count in §4.4), and an epilog drains
     it, extracting data set d right after its last stage completes.

   Correctness argument (validated exhaustively by the test suite): a
   data set's scalar state lives in exactly one copy at every step and
   rotates forward once per step, so it experiences the DS slices in
   program order with its own state — the sequential semantics.  Memory
   accesses of one data set keep their program order; accesses of
   different data sets interleave, which the §4.2 legality cases allow. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Induction = Uas_analysis.Induction
module Stage = Uas_dfg.Stage
module Sset = Stmt.Sset

type error =
  | Illegal of Legality.verdict
  | Needs_static_trip_counts
  | Inner_loop_empty

let pp_error ppf = function
  | Illegal v -> Legality.pp_verdict ppf v
  | Needs_static_trip_counts ->
    Fmt.string ppf "unroll-and-squash requires static loop bounds"
  | Inner_loop_empty -> Fmt.string ppf "inner loop runs zero iterations"

exception Squash_error of error

let () =
  Printexc.register_printer (function
    | Squash_error e -> Some (Fmt.str "Squash_error: %a" pp_error e)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Squash_error e -> Some (Fmt.str "%a" pp_error e)
    | _ -> None)

(** Result of the transformation, with the structural facts the
    hardware estimator and the tests consume. *)
type outcome = {
  program : Stmt.program;
  new_inner_index : string;      (** index of the squashed steady loop *)
  new_inner_body : Stmt.t list;  (** steady-state body incl. rotation *)
  stages : Stmt.t list list;     (** the DS slices of the original body *)
  rotated : string list;         (** base scalars given rotating copies *)
  ds : int;
}

let assign x e = Stmt.Assign (x, e)

(* Rename body statements to a stage's copy space. *)
let on_copy (w : Sset.t) (s : int) (stmts : Stmt.t list) : Stmt.t list =
  Expand.rename_in w (fun v -> Expand.stage_copy v s) stmts

let apply ?(delay_of = Opinfo.default_delay) (p : Stmt.program)
    (nest : Loop_nest.pair) ~ds : outcome =
  if ds <= 0 then Types.ir_error "unroll factor must be positive";
  (* 1. legality, after automatic enabling rewrites *)
  let verdict = Legality.check nest ~ds in
  if not verdict.Legality.ok then raise (Squash_error (Illegal verdict));
  let p, nest =
    List.fold_left
      (fun (p, nest) iv -> Induction.rewrite p nest iv)
      (p, nest) verdict.Legality.induction_rewrites
  in
  let p, nest =
    if verdict.Legality.needs_peel > 0 then
      Peel.peel_back p nest ~iterations:verdict.Legality.needs_peel
    else (p, nest)
  in
  let n_inner =
    match Loop_nest.inner_trip_count nest with
    | Some n -> n
    | None -> raise (Squash_error Needs_static_trip_counts)
  in
  if n_inner <= 0 then raise (Squash_error Inner_loop_empty);
  let m_outer =
    match Loop_nest.outer_trip_count nest with
    | Some m -> m
    | None -> raise (Squash_error Needs_static_trip_counts)
  in
  ignore m_outer;
  (* 2. classify scalars *)
  let i = nest.Loop_nest.outer_index and j = nest.inner_index in
  let versioned = Expand.versioned_scalars nest in
  let body_scalars = Stmt.scalars nest.inner_body in
  let rotated = Sset.inter body_scalars versioned in
  let body_livein = Sset.inter (Uas_analysis.Def_use.upward_exposed nest.inner_body) versioned in
  let body_defs = Stmt.defs nest.inner_body in
  (* scalars of the nest whose value may be observed after the nest:
     they must be restored from the last data set's copies *)
  let restore_set =
    Sset.remove nest.outer_index
      (Sset.inter versioned (Uas_analysis.Def_use.used_outside_nest p nest))
  in
  let post_uses =
    Sset.union restore_set (Sset.inter (Stmt.uses nest.post) versioned)
  in
  (* 3. stage slices *)
  let stages = Stage.partition ~delay_of ~stages:ds nest.inner_body in
  (* 4. generated code pieces *)
  let int_e n = Expr.Int n in
  let pre_d d =
    (* data set d's private outer-index value, then its pre code *)
    assign (Expand.pre_copy i d)
      (Expr.simplify
         (Expr.Binop
            (Types.Add, Expr.Var i, int_e (d * nest.outer_step))))
    :: Expand.rename_in versioned (fun v -> Expand.pre_copy v d) nest.pre
  in
  let inject d =
    (* load data set d's live-ins into copy 0 and start its j at lo *)
    Sset.fold
      (fun v acc ->
        if String.equal v j then
          assign (Expand.stage_copy j 0) nest.inner_lo :: acc
        else
          assign (Expand.stage_copy v 0) (Expr.Var (Expand.pre_copy v d)) :: acc)
      body_livein
      (if Sset.mem j body_livein then []
       else if Sset.mem j rotated then
         [ assign (Expand.stage_copy j 0) nest.inner_lo ]
       else [])
  in
  let rotation =
    if ds = 1 then []
    else
      Sset.fold
        (fun v acc ->
          (assign (Expand.rot_temp v) (Expr.Var (Expand.stage_copy v (ds - 1)))
           :: List.concat
                (List.init (ds - 1) (fun k ->
                     let s = ds - 1 - k in
                     [ assign (Expand.stage_copy v s)
                         (Expr.Var (Expand.stage_copy v (s - 1))) ])))
          @ [ assign (Expand.stage_copy v 0) (Expr.Var (Expand.rot_temp v)) ]
          @ acc)
        rotated []
  in
  let advance_j =
    if Sset.mem j rotated then
      [ assign (Expand.stage_copy j 0)
          (Expr.Binop
             ( Types.Add,
               Expr.Var (Expand.stage_copy j 0),
               int_e nest.inner_step )) ]
    else []
  in
  let slices_range lo hi =
    (* stage s's slice on copy s, for s in [lo, hi] *)
    List.concat
      (List.init
         (max 0 (hi - lo + 1))
         (fun k ->
           let s = lo + k in
           on_copy rotated s (List.nth stages s)))
  in
  let extract d =
    (* hand data set d's observable values to its post staging copies *)
    let j_exit =
      Expand.index_exit_value ~lo:nest.inner_lo ~hi:nest.inner_hi
        ~step:nest.inner_step
    in
    Sset.fold
      (fun v acc ->
        let rhs =
          if String.equal v j then j_exit
          else if Sset.mem v body_defs then Expr.Var (Expand.stage_copy v 0)
          else if String.equal v i then Expr.Var (Expand.pre_copy i d)
          else Expr.Var (Expand.pre_copy v d)
        in
        assign (Expand.post_copy v d) rhs :: acc)
      post_uses []
  in
  let post_d d =
    Expand.rename_in versioned (fun v -> Expand.post_copy v d) nest.post
  in
  let restore =
    (* original names take the last data set's final values, so code
       after the nest observes the sequential semantics *)
    Sset.fold
      (fun v acc ->
        assign v (Expr.Var (Expand.post_copy v (ds - 1))) :: acc)
      restore_set []
  in
  (* 5. assemble the new outer body *)
  let prolog =
    List.concat
      (List.init (ds - 1) (fun t ->
           slices_range 0 t @ rotation @ inject (t + 1)))
  in
  let steady_count = (ds * n_inner) - (ds - 1) in
  let new_index =
    Stmt.fresh_var p ~avoid:(Sset.elements versioned) (j ^ "@sq")
  in
  let steady_body = slices_range 0 (ds - 1) @ rotation @ advance_j in
  let steady =
    Stmt.For
      { index = new_index;
        lo = int_e 0;
        hi = int_e steady_count;
        step = 1;
        body = steady_body }
  in
  let epilog =
    List.concat
      (List.init (ds - 1) (fun e -> extract e @ slices_range (e + 1) (ds - 1) @ rotation))
    @ extract (ds - 1)
  in
  let outer_body =
    List.concat (List.init ds pre_d)
    @ inject 0 @ prolog @ [ steady ] @ epilog
    @ List.concat (List.init ds post_d)
    @ restore
  in
  let new_outer =
    Stmt.For
      { index = nest.outer_index;
        lo = nest.outer_lo;
        hi = nest.outer_hi;
        step = nest.outer_step * ds;
        body = outer_body }
  in
  (* 6. declarations for every generated copy *)
  let decls =
    Expand.copy_decls p rotated (fun v ->
        Expand.rot_temp v :: List.init ds (Expand.stage_copy v))
    @ Expand.copy_decls p versioned (fun v ->
          List.init ds (Expand.pre_copy v) @ List.init ds (Expand.post_copy v))
    @ [ (new_index, Types.Tint) ]
  in
  let p = Loop_nest.replace p ~outer_index:nest.outer_index [ new_outer ] in
  let p = Stmt.add_locals p decls in
  { program = p;
    new_inner_index = new_index;
    new_inner_body = steady_body;
    stages;
    rotated = Sset.elements rotated;
    ds }

(* The non-raising entry point the pass pipeline builds on: same
   transformation, with the §4.1/§4.2 failure modes surfaced as data
   instead of an exception. *)
let apply_res ?delay_of (p : Stmt.program) (nest : Loop_nest.pair) ~ds :
    (outcome, error) result =
  match apply ?delay_of p nest ~ds with
  | out -> Ok out
  | exception Squash_error e -> Error e
