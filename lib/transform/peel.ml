(* Loop peeling (§4.2: "M mod DS iterations of the outer loop may be
   executed independently from the remaining M - (M mod DS)").

   We peel from the back: the outer loop keeps its first
   M - k iterations and the last k are emitted as straight copies after
   it, each preceded by an assignment of the index value (the index is
   an ordinary scalar).  Requires static outer bounds. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

(** Peel the last [iterations] outer iterations of [nest] inside [p].
    Returns the updated program and the shrunken nest. *)
let peel_back (p : Stmt.program) (nest : Loop_nest.pair) ~iterations :
    Stmt.program * Loop_nest.pair =
  if iterations < 0 then Types.ir_error "cannot peel %d iterations" iterations;
  if iterations = 0 then (p, nest)
  else
    match Loop_nest.outer_trip_count nest with
    | None -> Types.ir_error "peeling requires static outer bounds"
    | Some trips ->
      if iterations > trips then
        Types.ir_error "cannot peel %d of %d iterations" iterations trips;
      let lo =
        match Expr.simplify nest.Loop_nest.outer_lo with
        | Expr.Int n -> n
        | _ -> Types.ir_error "peeling requires static outer bounds"
      in
      let keep = trips - iterations in
      let new_hi = lo + (keep * nest.outer_step) in
      let nest' = { nest with Loop_nest.outer_hi = Expr.Int new_hi } in
      let copy k =
        let iv = lo + ((keep + k) * nest.outer_step) in
        Stmt.Assign (nest.outer_index, Expr.Int iv)
        :: nest.pre
        @ [ Stmt.For
              { index = nest.inner_index;
                lo = nest.inner_lo;
                hi = nest.inner_hi;
                step = nest.inner_step;
                body = nest.inner_body } ]
        @ nest.post
      in
      let replacement =
        (* the zero-trip loop is kept when everything peels away, so
           callers can still locate and rewrite the nest; the final
           assignment restores the index exit value of the full loop *)
        (Loop_nest.pair_to_stmt nest' :: List.concat (List.init iterations copy))
        @ [ Stmt.Assign
              (nest.outer_index, Expr.Int (lo + (trips * nest.outer_step))) ]
      in
      let p = Loop_nest.replace p ~outer_index:nest.outer_index replacement in
      (p, nest')

(** [peel_back] with the [Ir_error] message surfaced as data — the
    entry point the {!Rewrite} registry builds on. *)
let peel_back_res (p : Stmt.program) (nest : Loop_nest.pair) ~iterations :
    (Stmt.program * Loop_nest.pair, string) result =
  match peel_back p nest ~iterations with
  | r -> Ok r
  | exception Types.Ir_error m -> Error m

(** Peel the first [iterations] iterations of a plain loop, for use by
    transformations on single loops.  Static bounds required. *)
let peel_front_loop (l : Stmt.loop) ~iterations : Stmt.t list * Stmt.loop =
  if iterations < 0 then Types.ir_error "cannot peel %d iterations" iterations;
  match (Expr.simplify l.Stmt.lo, Expr.simplify l.Stmt.hi) with
  | Expr.Int lo, Expr.Int hi ->
    let trips = if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step in
    if iterations > trips then
      Types.ir_error "cannot peel %d of %d iterations" iterations trips;
    let copies =
      List.concat
        (List.init iterations (fun k ->
             Stmt.Assign (l.index, Expr.Int (lo + (k * l.step))) :: l.body))
    in
    let l' = { l with Stmt.lo = Expr.Int (lo + (iterations * l.step)) } in
    (copies, l')
  | _ -> Types.ir_error "peeling requires static bounds"
