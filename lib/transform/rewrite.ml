(* The first-class rewrite interface: every loop transformation of the
   library — the paper's unroll-and-squash and all its §3/§4 relatives
   and enabling rewrites — behind one uniform, named, parameterized
   signature on the pass pipeline's compilation units.

   A rewrite separates legality ([check]) from application ([apply]):
   check answers "would this rewrite succeed here" without building the
   transformed program; apply runs check first, then transforms.  Both
   report failures as structured [Diag.t] values — an escaping
   layer-local exception is translated through [Diag.of_exn] (each
   transform module registers its failure exception's renderer), so no
   transform failure ever reaches a driver as a backtrace.

   The registry maps stable names ("squash", "jam", "interchange", ...)
   to rewrites; [pass] converts a registered rewrite into a pipeline
   [Pass.t], which is how nimblec, the sweep engine, and the planner
   reach every transformation. *)

open Uas_ir
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Fault = Uas_runtime.Fault
module Instrument = Uas_runtime.Instrument
module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality
module Sset = Stmt.Sset

type params = {
  target : string option;
  factor : int option;
  cut : int option;
}

let default_params = { target = None; factor = None; cut = None }

type t = {
  rw_name : string;
  rw_summary : string;
  rw_section : string;
  rw_legality : string;
  rw_parameters : string;
  rw_failure_modes : string;
  rw_check : params -> Cu.t -> Diag.t option;
  rw_apply : params -> Cu.t -> (Cu.t, Diag.t) result;
}

let name t = t.rw_name

(* ---- plumbing shared by the catalog entries ---- *)

(* Translate an escaping layer-local exception into a diagnostic
   attributed to the rewrite; genuine bugs keep their backtrace. *)
let guard rw_name cu f =
  match f () with
  | r -> r
  | exception exn -> (
    match Diag.of_exn ~pass:rw_name ~loop:(Cu.outer_index cu) exn with
    | Some d -> Error d
    | None -> raise exn)

let errf rw_name cu fmt = Diag.errorf ~pass:rw_name ~loop:(Cu.outer_index cu) fmt

let outer_target cu p = Option.value p.target ~default:(Cu.outer_index cu)
let inner_target cu p = Option.value p.target ~default:(Cu.inner_index cu)

let require_factor rw_name cu p =
  match p.factor with
  | Some f -> Ok f
  | None -> Error (errf rw_name cu "missing required parameter: factor")

let require_cut rw_name cu p =
  match p.cut with
  | Some c -> Ok c
  | None -> Error (errf rw_name cu "missing required parameter: cut")

(* The kernel nest when the target is the unit's own outer index (the
   memoized path), any other nest by explicit lookup. *)
let nest_of cu ~outer_index =
  if String.equal outer_index (Cu.outer_index cu) then Cu.nest cu
  else Loop_nest.find_by_outer_index (Cu.program cu) outer_index

(* First loop with this index, at any depth. *)
let find_loop (p : Stmt.program) index : Stmt.loop option =
  let rec go = function
    | [] -> None
    | Stmt.For l :: rest ->
      if String.equal l.Stmt.index index then Some l
      else (match go l.body with Some l' -> Some l' | None -> go rest)
    | Stmt.If (_, th, el) :: rest -> (
      match go th with
      | Some l -> Some l
      | None -> ( match go el with Some l -> Some l | None -> go rest))
    | (Stmt.Assign _ | Stmt.Store _) :: rest -> go rest
  in
  go p.body

let ( let* ) = Result.bind

(* A check derived from the apply by discarding the transformed unit —
   for the cheap rewrites where a dedicated legality test would just
   duplicate the transformation's own validation. *)
let check_via_apply apply p cu =
  match apply p cu with Ok _ -> None | Error d -> Some d

(* ---- the catalog ---- *)

let interchange =
  let apply p cu =
    let t = outer_target cu p in
    let pr = nest_of cu ~outer_index:t in
    match Interchange.apply_res (Cu.program cu) ~outer_index:t with
    | Error f -> Error (errf "interchange" cu "%a" Interchange.pp_failure f)
    | Ok q ->
      (* the pair's loops swapped: re-point whichever kernel index
         named one of them *)
      let outer' =
        if String.equal t (Cu.outer_index cu) then
          pr.Loop_nest.inner_index
        else Cu.outer_index cu
      in
      let inner' =
        if String.equal pr.Loop_nest.inner_index (Cu.inner_index cu) then t
        else Cu.inner_index cu
      in
      Ok (Cu.with_program cu q ~outer_index:outer' ~inner_index:inner')
  in
  { rw_name = "interchange";
    rw_summary = "swap two adjacent loops of a perfect nest";
    rw_section = "§3.3/§3.4";
    rw_legality =
      "perfect nest, bounds independent of the other index, no dependence \
       carried with a direction interchange would reverse";
    rw_parameters = "target: outer index of the nest (default: kernel nest)";
    rw_failure_modes =
      "not perfectly nested; a bound uses the other index; carried \
       dependence";
    rw_check =
      (fun p cu ->
        let t = outer_target cu p in
        ignore (nest_of cu ~outer_index:t);
        match Interchange.check_at (Cu.program cu) ~outer_index:t with
        | Some f -> Some (errf "interchange" cu "%a" Interchange.pp_failure f)
        | None -> None);
    rw_apply = apply }

let tiling =
  let apply p cu =
    let* tile = require_factor "tiling" cu p in
    match Tiling.apply_res (Cu.program cu) ~index:(inner_target cu p) ~tile with
    | Ok q -> Ok (Cu.with_program cu q)
    | Error m -> Error (errf "tiling" cu "%s" m)
  in
  { rw_name = "tiling";
    rw_summary = "split one loop into a tile loop over a traversal loop";
    rw_section = "§3.3";
    rw_legality =
      "always legal (order-preserving); static bounds required when the \
       tile does not divide the trip count";
    rw_parameters =
      "target: loop index (default: kernel inner loop); factor: tile size";
    rw_failure_modes =
      "missing factor; non-positive tile; dynamic bounds with a \
       non-dividing tile; no such loop";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let peel =
  let apply p cu =
    let* iterations = require_factor "peel" cu p in
    let t = outer_target cu p in
    match Peel.peel_back_res (Cu.program cu) (nest_of cu ~outer_index:t) ~iterations with
    | Ok (q, _nest) -> Ok (Cu.with_program cu q)
    | Error m -> Error (errf "peel" cu "%s" m)
  in
  { rw_name = "peel";
    rw_summary = "peel the last iterations of the nest's outer loop";
    rw_section = "§4.2";
    rw_legality = "static outer bounds; count within the trip count";
    rw_parameters =
      "target: outer index of the nest (default: kernel nest); factor: \
       iterations to peel";
    rw_failure_modes =
      "missing factor; dynamic outer bounds; peel count exceeds the trip \
       count";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let fusion =
  let apply _p cu =
    match Fusion.apply_res (Cu.program cu) with
    | Ok q -> Ok (Cu.with_program cu q)
    | Error f -> Error (errf "fusion" cu "%a" Fusion.pp_failure f)
  in
  { rw_name = "fusion";
    rw_summary = "fuse the first adjacent fusable pair of loops";
    rw_section = "§3.4";
    rw_legality =
      "identical bounds; no scalar flow between the bodies; no array \
       conflict between iteration j of the second and j+d of the first";
    rw_parameters = "none";
    rw_failure_modes = "no adjacent fusable pair of loops";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let distribute =
  let apply p cu =
    let* cut = require_cut "distribute" cu p in
    let index = inner_target cu p in
    guard "distribute" cu (fun () ->
        Ok (Cu.with_program cu (Distribute.apply (Cu.program cu) ~index ~cut)))
  in
  { rw_name = "distribute";
    rw_summary = "split one loop into two at a statement cut";
    rw_section = "§5.2";
    rw_legality =
      "no scalar crosses the cut; no array value flows backwards across \
       it at a later iteration";
    rw_parameters =
      "target: loop index (default: kernel inner loop); cut: statement \
       position";
    rw_failure_modes =
      "missing cut; cut out of range; scalar or array flow between the \
       groups; no such loop";
    rw_check =
      (fun p cu ->
        match require_cut "distribute" cu p with
        | Error d -> Some d
        | Ok cut -> (
          let index = inner_target cu p in
          match find_loop (Cu.program cu) index with
          | None -> Some (errf "distribute" cu "no loop with index %s" index)
          | Some l -> (
            match Distribute.failures l ~cut with
            | [] -> None
            | f :: _ -> Some (errf "distribute" cu "%a" Distribute.pp_failure f))));
    rw_apply = apply }

let flatten =
  let apply p cu =
    let t = outer_target cu p in
    let pr = nest_of cu ~outer_index:t in
    match Flatten.apply_res (Cu.program cu) ~outer_index:t with
    | Error f -> Error (errf "flatten" cu "%a" Flatten.pp_failure f)
    | Ok (q, flat_index) ->
      (* the pair's two loops collapsed onto the fresh flat loop: any
         kernel index that named one of them now names the flat loop
         (on a deeper nest only one of them may be a kernel index) *)
      let outer' =
        if String.equal t (Cu.outer_index cu) then flat_index
        else Cu.outer_index cu
      in
      let inner' =
        if String.equal pr.Loop_nest.inner_index (Cu.inner_index cu) then
          flat_index
        else Cu.inner_index cu
      in
      Ok (Cu.with_program cu q ~outer_index:outer' ~inner_index:inner')
  in
  { rw_name = "flatten";
    rw_summary = "collapse a perfect static nest into one loop";
    rw_section = "§5.2";
    rw_legality = "perfect nest with static bounds (order-preserving)";
    rw_parameters = "target: outer index of the nest (default: kernel nest)";
    rw_failure_modes = "not perfectly nested; dynamic bounds";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let hoist =
  let apply _p cu = Ok (Cu.with_program cu (Hoist.apply (Cu.program cu))) in
  { rw_name = "hoist";
    rw_summary = "move loop-invariant single definitions out of loops";
    rw_section = "§4.2";
    rw_legality = "always legal (restricted to statically non-empty loops)";
    rw_parameters = "none";
    rw_failure_modes = "none (fixpoint, identity when nothing moves)";
    rw_check = (fun _ _ -> None);
    rw_apply = apply }

let ifconv =
  let apply _p cu = Ok (Cu.with_program cu (Ifconv.apply (Cu.program cu))) in
  { rw_name = "ifconv";
    rw_summary = "convert scalar conditionals to straight-line selects";
    rw_section = "§4.2";
    rw_legality =
      "always legal for scalar-only arms (hardware-mux semantics: both \
       arms evaluate); others left in place";
    rw_parameters = "none";
    rw_failure_modes = "none (unconvertible conditionals are kept)";
    rw_check = (fun _ _ -> None);
    rw_apply = apply }

let scalarize =
  let apply p cu =
    let index = inner_target cu p in
    guard "scalarize" cu (fun () ->
        Ok (Cu.with_program cu (Scalarize.apply (Cu.program cu) ~index)))
  in
  { rw_name = "scalarize";
    rw_summary = "turn loop-invariant loads into pre-loop register reads";
    rw_section = "§4.2";
    rw_legality =
      "address loop-invariant and the array never stored to in the loop";
    rw_parameters = "target: loop index (default: kernel inner loop)";
    rw_failure_modes = "no such loop (ineligible loads are simply kept)";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let scalar_opts =
  let apply _p cu =
    Ok (Cu.with_program cu (Scalar_opts.cleanup (Cu.program cu)))
  in
  { rw_name = "scalar-opts";
    rw_summary = "constant folding, propagation, strength reduction";
    rw_section = "§4.2";
    rw_legality = "always legal (conservative outside straight-line code)";
    rw_parameters = "none";
    rw_failure_modes = "none";
    rw_check = (fun _ _ -> None);
    rw_apply = apply }

let expand =
  let apply p cu =
    let d = Option.value p.factor ~default:0 in
    let t = outer_target cu p in
    guard "expand" cu (fun () ->
        let nest = nest_of cu ~outer_index:t in
        let prog = Cu.program cu in
        let locals = Sset.of_list (List.map fst prog.Stmt.locals) in
        let vs = Sset.inter (Expand.versioned_scalars nest) locals in
        let rename v = if Sset.mem v vs then Expand.unroll_copy v d else v in
        let decls = Expand.copy_decls prog vs (fun v -> [ Expand.unroll_copy v d ]) in
        let q =
          Stmt.add_locals
            { prog with Stmt.body = Stmt.rename_vars_list rename prog.Stmt.body }
            decls
        in
        Ok
          (Cu.with_program cu q
             ~outer_index:(rename (Cu.outer_index cu))
             ~inner_index:(rename (Cu.inner_index cu))))
  in
  { rw_name = "expand";
    rw_summary = "rename the nest's scalar state to a data-set copy space";
    rw_section = "§4.3";
    rw_legality =
      "always legal (alpha-renaming of local scalars; arrays untouched)";
    rw_parameters =
      "target: outer index of the nest (default: kernel nest); factor: \
       data-set number d (default 0), copies named v@u<d>";
    rw_failure_modes = "copy-name collision with an existing declaration";
    rw_check = check_via_apply apply;
    rw_apply = apply }

let pipeline_sw =
  let apply p cu =
    let* stages = require_factor "pipeline-sw" cu p in
    let index = inner_target cu p in
    guard "pipeline-sw" cu (fun () ->
        Ok (Cu.with_program cu (Pipeline_sw.apply (Cu.program cu) ~index ~stages)))
  in
  { rw_name = "pipeline-sw";
    rw_summary = "software-pipeline one counted loop into stages";
    rw_section = "§3.5";
    rw_legality =
      "straight-line body, no scalar recurrence, array recurrences at \
       distance >= stages, static bounds, trip count >= stages";
    rw_parameters =
      "target: loop index (default: kernel inner loop); factor: stage \
       count (identity when <= 1)";
    rw_failure_modes =
      "missing factor; recurrence; too few iterations; dynamic bounds; \
       no such loop";
    rw_check =
      (fun p cu ->
        match require_factor "pipeline-sw" cu p with
        | Error d -> Some d
        | Ok stages when stages <= 1 -> None
        | Ok stages -> (
          let index = inner_target cu p in
          match find_loop (Cu.program cu) index with
          | None -> Some (errf "pipeline-sw" cu "no loop with index %s" index)
          | Some l -> (
            match Pipeline_sw.failures l ~stages with
            | [] -> None
            | f :: _ ->
              Some (errf "pipeline-sw" cu "%a" Pipeline_sw.pp_failure f))));
    rw_apply = apply }

let unroll =
  let apply p cu =
    let* factor = require_factor "unroll" cu p in
    let index = inner_target cu p in
    guard "unroll" cu (fun () ->
        Ok (Cu.with_program cu (Unroll.apply (Cu.program cu) ~index ~factor)))
  in
  { rw_name = "unroll";
    rw_summary = "replace a loop body by factor copies";
    rw_section = "§3.4";
    rw_legality =
      "always legal; static bounds required when the factor does not \
       divide the trip count";
    rw_parameters =
      "target: loop index (default: kernel inner loop); factor: unroll \
       factor";
    rw_failure_modes =
      "missing factor; dynamic bounds with a non-dividing factor; no \
       such loop";
    rw_check = check_via_apply apply;
    rw_apply = apply }

(* The legality test squash and jam share (§4.1/§4.2), phrased exactly
   as the historical pipeline passes did — the sweep's skip footers are
   part of the table-6.2 golden output. *)
let legality_check rw_name p cu =
  match require_factor rw_name cu p with
  | Error d -> Some d
  | Ok ds when ds <= 0 -> Some (errf rw_name cu "unroll factor must be positive")
  | Ok ds -> (
    let nest = nest_of cu ~outer_index:(outer_target cu p) in
    let verdict = Legality.check nest ~ds in
    if verdict.Legality.ok then None
    else Some (errf rw_name cu "factor %d: %a" ds Legality.pp_verdict verdict))

let jam =
  let apply p cu =
    let* ds = require_factor "jam" cu p in
    let nest = nest_of cu ~outer_index:(outer_target cu p) in
    match Unroll_and_jam.apply_res (Cu.program cu) nest ~ds with
    | Ok out -> Ok (Cu.with_program cu out.Unroll_and_jam.program)
    | Error verdict ->
      Error (errf "jam" cu "factor %d: %a" ds Legality.pp_verdict verdict)
  in
  { rw_name = "jam";
    rw_summary = "unroll the outer loop by DS and fuse the inner loops";
    rw_section = "§3.4";
    rw_legality =
      "the §4.1/§4.2 condition (same as squash), after automatic \
       induction rewrites and peeling";
    rw_parameters =
      "target: outer index of the nest (default: kernel nest); factor: DS";
    rw_failure_modes = "missing factor; illegal nest (verdict violations)";
    rw_check = (fun p cu -> legality_check "jam" p cu);
    rw_apply = apply }

let squash =
  let apply p cu =
    let* ds = require_factor "squash" cu p in
    let nest = nest_of cu ~outer_index:(outer_target cu p) in
    match Squash.apply_res (Cu.program cu) nest ~ds with
    | Ok out ->
      Ok
        (Cu.with_program cu out.Squash.program
           ~inner_index:out.Squash.new_inner_index)
    | Error e ->
      Error (errf "squash" cu "factor %d: %a" ds Squash.pp_error e)
  in
  { rw_name = "squash";
    rw_summary = "unroll-and-squash: overlap DS data sets in one kernel";
    rw_section = "Ch. 4";
    rw_legality =
      "the §4.1/§4.2 condition, after automatic induction rewrites and \
       peeling; static trip counts; non-empty inner loop";
    rw_parameters =
      "target: outer index of the nest (default: kernel nest); factor: DS";
    rw_failure_modes =
      "missing factor; illegal nest (verdict violations); dynamic trip \
       counts; empty inner loop";
    rw_check = (fun p cu -> legality_check "squash" p cu);
    rw_apply = apply }

(* ---- the registry ---- *)

let registry : t list ref = ref []

let register t =
  if List.exists (fun r -> String.equal r.rw_name t.rw_name) !registry then
    invalid_arg (Fmt.str "Rewrite.register: duplicate name %s" t.rw_name);
  registry := !registry @ [ t ]

let () =
  List.iter register
    [ interchange; tiling; peel; fusion; distribute; flatten; hoist; ifconv;
      scalarize; scalar_opts; expand; pipeline_sw; unroll; jam; squash ]

let all () = !registry
let names () = List.map (fun r -> r.rw_name) !registry
let find n = List.find_opt (fun r -> String.equal r.rw_name n) !registry

let get n =
  match find n with
  | Some r -> r
  | None ->
    invalid_arg
      (Fmt.str "unknown rewrite %s (valid: %s)" n
         (String.concat ", " (names ())))

(* ---- uniform application ---- *)

let check ?(params = default_params) t cu : Diag.t option =
  match
    guard t.rw_name cu (fun () ->
        match t.rw_check params cu with None -> Ok () | Some d -> Error d)
  with
  | Ok () -> None
  | Error d -> Some d

(* Deterministic semantic perturbation behind the [corrupt] fault kind:
   shift the first store's index by one (store indices are always
   integer, so the program stays well-typed); a program without stores
   gets its first integer assignment bumped instead.  Either way the
   translation validator sees the probe outputs diverge — or the probe
   run go stuck on an out-of-bounds store — and degrades the cell. *)
let corrupt_program (p : Stmt.program) : Stmt.program =
  let bump e = Expr.Binop (Types.Add, e, Expr.Int 1) in
  let int_scalar v =
    List.exists
      (fun (w, ty) -> String.equal v w && Types.equal_ty ty Types.Tint)
      (p.Stmt.params @ p.Stmt.locals)
  in
  let hit = ref false in
  let pick_store = List.exists (function Stmt.Store _ -> true | _ -> false) in
  let rec exists_store ss =
    pick_store ss
    || List.exists
         (function
           | Stmt.For l -> exists_store l.Stmt.body
           | Stmt.If (_, th, el) -> exists_store th || exists_store el
           | Stmt.Assign _ | Stmt.Store _ -> false)
         ss
  in
  let corrupt_stores = exists_store p.Stmt.body in
  let rec go ss =
    List.map
      (fun s ->
        if !hit then s
        else
          match s with
          | Stmt.Store (a, idx, e) when corrupt_stores ->
            hit := true;
            Stmt.Store (a, bump idx, e)
          | Stmt.Assign (v, e) when (not corrupt_stores) && int_scalar v ->
            hit := true;
            Stmt.Assign (v, bump e)
          | Stmt.For l -> Stmt.For { l with Stmt.body = go l.Stmt.body }
          | Stmt.If (c, th, el) ->
            let th = go th in
            Stmt.If (c, th, go el)
          | Stmt.Assign _ | Stmt.Store _ -> s)
      ss
  in
  { p with Stmt.body = go p.Stmt.body }

(* The label a successful application leaves on the unit's rewrite
   trail — name plus the present parameters, rendered deterministically
   — which the artifact store hashes as provenance. *)
let trail_label t params =
  let parts =
    List.filter_map Fun.id
      [ Option.map (fun v -> "target=" ^ v) params.target;
        Option.map (fun v -> "factor=" ^ string_of_int v) params.factor;
        Option.map (fun v -> "cut=" ^ string_of_int v) params.cut ]
  in
  match parts with
  | [] -> t.rw_name
  | ps -> t.rw_name ^ "{" ^ String.concat "," ps ^ "}"

let apply ?(params = default_params) t cu : (Cu.t, Diag.t) result =
  match check ~params t cu with
  | Some d -> Error d
  | None ->
    Result.map
      (fun cu' ->
        Cu.push_trail cu' (trail_label t params);
        cu')
    @@ guard t.rw_name cu (fun () ->
        match Fault.hit ~label:t.rw_name "rewrite.apply" with
        | None -> t.rw_apply params cu
        | Some Fault.Stall -> Fault.stall ~site:"rewrite.apply" ()
        | Some Fault.Raise ->
          raise
            (Fault.Injected { site = "rewrite.apply"; kind = Fault.Raise })
        | Some Fault.Corrupt ->
          (* a miscompiling rewrite: succeeds, but the transformed
             program computes something else — exactly what translation
             validation exists to catch *)
          Result.map
            (fun cu' ->
              Cu.with_program cu'
                ~outer_index:(Cu.outer_index cu')
                ~inner_index:(Cu.inner_index cu')
                (corrupt_program (Cu.program cu')))
            (t.rw_apply params cu))

(* ---- translation validation ---- *)

let validation_fuel = Interp.default_fuel

(* Run both interpreter tiers on the probe; any runtime error is a
   validation verdict, not an escaping exception. *)
let probe_runs (p : Stmt.program) probe =
  match
    let ref_r = Interp.run ~fuel:validation_fuel p probe in
    let fast_r =
      Fast_interp.run ~fuel:validation_fuel (Fast_interp.compile p) probe
    in
    (ref_r, fast_r)
  with
  | pair -> Ok pair
  | exception Interp.Stuck m -> Error (Printf.sprintf "probe run stuck: %s" m)
  | exception Interp.Out_of_fuel -> Error "probe run out of fuel"

let validated_apply ?(params = default_params) ~probe t cu :
    (Cu.t, Diag.t) result =
  match apply ~params t cu with
  | Error _ as e -> e
  | Ok cu' ->
    Instrument.span "rewrite.validate" (fun () ->
        let verdict =
          match probe_runs (Cu.program cu') probe with
          | Error m -> Some m
          | Ok (post_ref, post_fast) -> (
            (* tier differential: the two interpreters must agree
               bit-for-bit on the transformed program *)
            match Interp.diff_results post_ref post_fast with
            | Some m -> Some (Printf.sprintf "interpreter tiers disagree: %s" m)
            | None -> (
              (* semantic preservation: the rewrite must not change
                 what the program computes (profiles legitimately
                 change, outputs never) *)
              match
                Interp.run ~fuel:validation_fuel (Cu.program cu) probe
              with
              | exception Interp.Stuck m ->
                Some (Printf.sprintf "pre-rewrite probe run stuck: %s" m)
              | exception Interp.Out_of_fuel ->
                Some "pre-rewrite probe run out of fuel"
              | pre_ref -> (
                match Interp.diff_outputs pre_ref post_ref with
                | Some m ->
                  Some (Printf.sprintf "outputs changed by rewrite: %s" m)
                | None -> None)))
        in
        match verdict with
        | None -> Ok cu'
        | Some reason ->
          (* degrade: keep the last-known-good unit and log why *)
          Instrument.incr "rewrite.validation-failed";
          let d =
            Diag.errorf ~pass:t.rw_name ~loop:(Cu.outer_index cu)
              "validation failed, rewrite not applied: %s" reason
          in
          Cu.add_incident cu d;
          Ok cu)

let to_pass ?(params = default_params) ?validate t =
  match validate with
  | None -> Pass.v t.rw_name (fun cu -> apply ~params t cu)
  | Some probe -> Pass.v t.rw_name (fun cu -> validated_apply ~params ~probe t cu)

let pass ?target ?factor ?cut ?validate n =
  to_pass ~params:{ target; factor; cut } ?validate (get n)
