(* Loop flattening (coalescing), one of the Nimble front-end
   transformations listed in §5.2: a perfect adjacent loop pair with
   static bounds collapses into a single loop over the combined
   iteration space, with the original indices recomputed by
   division/modulus.  The pair may sit at any level of a deeper nest
   (the deeper loops ride along inside [inner_body]), so repeated
   flattening reduces any perfect nest to the adjacent-pair shape squash
   needs.

     for (i = lo_i; i < hi_i; i++)
       for (j = lo_j; j < hi_j; j++) S(i, j);
   =>
     for (t = 0; t < trips_i * trips_j; t++) {
       i = lo_i + (t / trips_j) * step_i;
       j = lo_j + (t % trips_j) * step_j;
       S(i, j);
     }

   Always legal for a perfect nest (the traversal order is unchanged);
   useful to concentrate all execution time in one kernel loop at the
   cost of the index arithmetic. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

type failure = Not_perfect | Non_static_bounds

let pp_failure ppf = function
  | Not_perfect -> Fmt.string ppf "the nest is not perfectly nested"
  | Non_static_bounds -> Fmt.string ppf "bounds are not static"

exception Flatten_error of failure

let () =
  Printexc.register_printer (function
    | Flatten_error f -> Some (Fmt.str "Flatten_error: %a" pp_failure f)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Flatten_error f -> Some (Fmt.str "%a" pp_failure f)
    | _ -> None)

let static_bounds lo hi step =
  match (Expr.simplify lo, Expr.simplify hi) with
  | Expr.Int l, Expr.Int h ->
    Some (l, if h <= l then 0 else (h - l + step - 1) / step)
  | _ -> None

(** Flatten the nest with this outer index inside [p], also returning
    the fresh flattened index (callers maintaining a current-kernel
    pointer need it).  The flattened index is freshly named and
    declared; the original indices become plain scalars recomputed at
    the top of the body.
    @raise Not_found when absent. *)
let apply_res (p : Stmt.program) ~outer_index :
    (Stmt.program * string, failure) result =
  let nest = Loop_nest.find_by_outer_index p outer_index in
  match
    ( nest.Loop_nest.pre = [] && nest.post = [],
      static_bounds nest.outer_lo nest.outer_hi nest.outer_step,
      static_bounds nest.inner_lo nest.inner_hi nest.inner_step )
  with
  | false, _, _ -> Error Not_perfect
  | true, None, _ | true, _, None -> Error Non_static_bounds
  | true, Some (lo_i, trips_i), Some (lo_j, trips_j) ->
  let t = Stmt.fresh_var p (nest.outer_index ^ "@flat") in
  let recompute =
    [ Stmt.Assign
        ( nest.outer_index,
          Expr.simplify
            (Expr.Binop
               ( Types.Add,
                 Expr.Int lo_i,
                 Expr.Binop
                   ( Types.Mul,
                     Expr.Binop (Types.Div, Expr.Var t, Expr.Int (max 1 trips_j)),
                     Expr.Int nest.outer_step ) )) );
      Stmt.Assign
        ( nest.inner_index,
          Expr.simplify
            (Expr.Binop
               ( Types.Add,
                 Expr.Int lo_j,
                 Expr.Binop
                   ( Types.Mul,
                     Expr.Binop (Types.Mod, Expr.Var t, Expr.Int (max 1 trips_j)),
                     Expr.Int nest.inner_step ) )) ) ]
  in
  let flattened =
    Stmt.For
      { index = t;
        lo = Expr.Int 0;
        hi = Expr.Int (trips_i * trips_j);
        step = 1;
        body = recompute @ nest.inner_body }
  in
  (* the original indices keep their loop exit values; the inner index
     only ran if the outer loop did *)
  let exit_fixes =
    Stmt.Assign
      (nest.outer_index, Expr.Int (lo_i + (trips_i * nest.outer_step)))
    ::
    (if trips_i > 0 then
       [ Stmt.Assign
           (nest.inner_index, Expr.Int (lo_j + (trips_j * nest.inner_step))) ]
     else [])
  in
  let p =
    Loop_nest.replace p ~outer_index ((flattened :: exit_fixes))
  in
  Ok (Stmt.add_locals p [ (t, Types.Tint) ], t)

(** [apply_res], raising and dropping the fresh index.
    @raise Flatten_error when the nest is imperfect or dynamic
    @raise Not_found when absent. *)
let apply (p : Stmt.program) ~outer_index : Stmt.program =
  match apply_res p ~outer_index with
  | Ok (q, _) -> q
  | Error f -> raise (Flatten_error f)
