(* Software pipelining of a single counted loop (§3.5, Figure 3.4).

   The kernel overlaps K consecutive iterations: at kernel step t,
   stage s executes iteration t - s.  The loop body is cut into K
   balanced contiguous slices (as in unroll-and-squash) and every
   scalar the body touches gets K rotating copies; the rotation hands
   each iteration's state to the next stage.  The iteration entering
   the pipe at step t binds its private index copy to [lo + t*step]
   before stage 0 runs.

   Legality (conservative):
   - the body is straight-line and does not carry scalars across
     iterations (no recurrences — those are exactly what blocks
     pipelining in Figure 2.1 and what unroll-and-squash addresses);
   - array dependences carried across iterations must have distance at
     least K, so that any stage split keeps producer before consumer;
   - static bounds, trip count >= K. *)

open Uas_ir
module Sset = Stmt.Sset
module Stage = Uas_dfg.Stage

type failure =
  | Not_straight_line
  | Carried_scalar of string
  | Carried_array of string
  | Too_few_iterations
  | Non_static_bounds

let pp_failure ppf = function
  | Not_straight_line -> Fmt.string ppf "loop body is not straight-line"
  | Carried_scalar v -> Fmt.pf ppf "scalar recurrence on %s" v
  | Carried_array a -> Fmt.pf ppf "array recurrence on %s within %d iterations" a 0
  | Too_few_iterations -> Fmt.string ppf "trip count below the stage count"
  | Non_static_bounds -> Fmt.string ppf "bounds are not static"

exception Pipeline_error of failure

let () =
  Printexc.register_printer (function
    | Pipeline_error f -> Some (Fmt.str "Pipeline_error: %a" pp_failure f)
    | _ -> None);
  Uas_pass.Diag.register_exn_translator (function
    | Pipeline_error f -> Some (Fmt.str "%a" pp_failure f)
    | _ -> None)

let failures (l : Stmt.loop) ~stages : failure list =
  let fs = ref [] in
  if not (Stmt.is_straight_line l.body) then fs := Not_straight_line :: !fs
  else begin
    Sset.iter
      (fun v -> fs := Carried_scalar v :: !fs)
      (Uas_analysis.Def_use.loop_carried l.body);
    (* array recurrences with distance < stages *)
    let body_defs = Stmt.defs l.body in
    let accs = Fusion.accesses_of l.body in
    List.iter
      (fun (a1, i1, w1) ->
        List.iter
          (fun (a2, i2, w2) ->
            if String.equal a1 a2 && (w1 || w2) then
              match
                Uas_dfg.Build.cross_distance ~inner_index:(Some l.index)
                  ~inner_step:l.step ~body_defs i1 i2
              with
              | Some d when d < stages -> fs := Carried_array a1 :: !fs
              | Some _ | None -> ())
          accs)
      accs
  end;
  (match (Expr.simplify l.lo, Expr.simplify l.hi) with
  | Expr.Int lo, Expr.Int hi ->
    let trips = if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step in
    if trips < stages then fs := Too_few_iterations :: !fs
  | _ -> fs := Non_static_bounds :: !fs);
  List.rev !fs

(** Pipeline the loop with index [index] in [p] into [stages] stages. *)
let apply ?(delay_of = Opinfo.default_delay) (p : Stmt.program) ~index ~stages
    : Stmt.program =
  if stages <= 1 then p
  else begin
    let loop =
      let found = ref None in
      ignore
        (Stmt.rewrite_list
           (fun s ->
             (match s with
             | Stmt.For l when String.equal l.index index && !found = None ->
               found := Some l
             | _ -> ());
             [ s ])
           p.body);
      match !found with
      | Some l -> l
      | None -> Types.ir_error "no loop with index %s" index
    in
    (match failures loop ~stages with
    | [] -> ()
    | f :: _ -> raise (Pipeline_error f));
    let lo, hi =
      match (Expr.simplify loop.lo, Expr.simplify loop.hi) with
      | Expr.Int lo, Expr.Int hi -> (lo, hi)
      | _ -> raise (Pipeline_error Non_static_bounds)
    in
    let trips = if hi <= lo then 0 else (hi - lo + loop.step - 1) / loop.step in
    let body_scalars =
      Sset.add index (Sset.union (Stmt.defs loop.body) (Stmt.uses loop.body))
    in
    (* rotate only what the body touches and may change per iteration:
       everything it defines, plus the index *)
    let rotated =
      Sset.add index
        (Sset.inter body_scalars
           (Sset.union (Stmt.defs loop.body) (Sset.singleton index)))
    in
    let slices = Stage.partition ~delay_of ~stages loop.body in
    let on_copy s stmts =
      Expand.rename_in rotated (fun v -> Expand.stage_copy v s) stmts
    in
    let assign x e = Stmt.Assign (x, e) in
    let rotation =
      Sset.fold
        (fun v acc ->
          (assign (Expand.rot_temp v)
             (Expr.Var (Expand.stage_copy v (stages - 1)))
           :: List.concat
                (List.init (stages - 1) (fun k ->
                     let s = stages - 1 - k in
                     [ assign (Expand.stage_copy v s)
                         (Expr.Var (Expand.stage_copy v (s - 1))) ])))
          @ [ assign (Expand.stage_copy v 0) (Expr.Var (Expand.rot_temp v)) ]
          @ acc)
        rotated []
    in
    let slice_range lo_s hi_s =
      List.concat
        (List.init
           (max 0 (hi_s - lo_s + 1))
           (fun k -> on_copy (lo_s + k) (List.nth slices (lo_s + k))))
    in
    let kidx = Stmt.fresh_var p (index ^ "@pl") in
    let enter_expr offset =
      (* index value of the iteration entering the pipe at kernel step
         [kidx + offset] *)
      Expr.simplify
        (Expr.Binop
           ( Types.Add,
             Expr.Int (lo + (offset * loop.step)),
             Expr.Binop (Types.Mul, Expr.Var kidx, Expr.Int loop.step) ))
    in
    let prolog =
      List.concat
        (List.init (stages - 1) (fun t ->
             (assign (Expand.stage_copy index 0) (Expr.Int (lo + (t * loop.step)))
              :: slice_range 0 t)
             @ rotation))
    in
    let kernel_body =
      (assign (Expand.stage_copy index 0) (enter_expr (stages - 1))
       :: slice_range 0 (stages - 1))
      @ rotation
    in
    let kernel =
      Stmt.For
        { index = kidx;
          lo = Expr.Int 0;
          hi = Expr.Int (trips - (stages - 1));
          step = 1;
          body = kernel_body }
    in
    let epilog =
      List.concat
        (List.init (stages - 1) (fun e -> slice_range (e + 1) (stages - 1) @ rotation))
    in
    let restore =
      (* after the last epilog rotation, the final iteration's state sits
         in copy 0: restore the original names for code after the loop *)
      Sset.fold
        (fun v acc ->
          if String.equal v index then acc
          else assign v (Expr.Var (Expand.stage_copy v 0)) :: acc)
        rotated []
    in
    let exit_fix = [ assign index (Expr.Int (lo + (trips * loop.step))) ] in
    let replacement = prolog @ [ kernel ] @ epilog @ restore @ exit_fix in
    let decls =
      Expand.copy_decls p rotated (fun v ->
          Expand.rot_temp v :: List.init stages (Expand.stage_copy v))
      @ [ (kidx, Types.Tint) ]
    in
    let replaced = ref false in
    let rec go stmts =
      List.concat_map
        (fun s ->
          match s with
          | Stmt.For l when String.equal l.index index && not !replaced ->
            replaced := true;
            replacement
          | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
          | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
          | Stmt.Assign _ | Stmt.Store _ -> [ s ])
        stmts
    in
    let body = go p.body in
    Stmt.add_locals { p with body } decls
  end
