(** Unroll-and-jam (§3.4, Figure 3.3): unroll the outer loop by DS and
    fuse the inner loops back into one.  The fused body concatenates
    the DS data sets' bodies on private scalar copies; the inner index
    is shared.  Operator count and memory references scale by DS. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest
module Legality = Uas_analysis.Legality

type outcome = {
  program : Stmt.program;
  new_inner_body : Stmt.t list;
  ds : int;
}

exception Jam_error of Legality.verdict

(** Apply unroll-and-jam by [ds]; enabling rewrites are automatic, as
    for {!Squash.apply}.  @raise Jam_error when illegal. *)
val apply : Stmt.program -> Loop_nest.pair -> ds:int -> outcome

(** [apply] with the illegality verdict as data instead of an
    exception, as for {!Squash.apply_res}. *)
val apply_res :
  Stmt.program -> Loop_nest.pair -> ds:int -> (outcome, Legality.verdict) result
