(** Tiling (§3.3): replace one loop by a tile loop striding
    [tile * step] over an inner traversal loop.  Order-preserving for a
    single loop, hence always legal; remainder tiles are peeled. *)

open Uas_ir

(** Replacement statements.  @raise Ir_error on dynamic bounds with a
    non-dividing tile. *)
val tile_loop : Stmt.loop -> tile:int -> tile_index:string -> Stmt.t list

(** Tile the loop with this index; the tile index is freshly named and
    declared.  @raise Ir_error when absent. *)
val apply : Stmt.program -> index:string -> tile:int -> Stmt.program

(** [apply] with the failure message as data — the entry point the
    {!Rewrite} registry builds on. *)
val apply_res :
  Stmt.program -> index:string -> tile:int -> (Stmt.program, string) result
