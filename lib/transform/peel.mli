(** Loop peeling (§4.2): execute [M mod DS] outer iterations separately
    so the remaining count divides the unroll factor. *)

open Uas_ir
module Loop_nest = Uas_analysis.Loop_nest

(** Peel the last [iterations] outer iterations of the nest; the
    (possibly zero-trip) loop is kept in place so callers can still
    rewrite it.  Static outer bounds required.
    @raise Ir_error on bad counts or dynamic bounds. *)
val peel_back :
  Stmt.program -> Loop_nest.pair -> iterations:int -> Stmt.program * Loop_nest.pair

(** [peel_back] with the failure message as data — the entry point the
    {!Rewrite} registry builds on. *)
val peel_back_res :
  Stmt.program ->
  Loop_nest.pair ->
  iterations:int ->
  (Stmt.program * Loop_nest.pair, string) result

(** Peel the first [iterations] of a plain loop; returns the peeled
    copies and the shrunken loop. *)
val peel_front_loop : Stmt.loop -> iterations:int -> Stmt.t list * Stmt.loop
