(* Tiling (§3.3): replace a loop by a pair of loops — the outer tile
   loop strides by [tile * step], the inner traverses one tile.  For a
   single loop this preserves the iteration order exactly, so it is
   always legal; the remainder tile is peeled when the trip count does
   not divide (static bounds required then).

   Tiling the outer loop of a nest by DS and fully unrolling the tile
   loop is the alternative decomposition of unroll-and-jam the paper
   describes at the end of §3.4 — tested for equivalence in the suite. *)

open Uas_ir

(** Tile loop [l] with tile size [tile].  The result is the replacement
    statement list.  A fresh name for the tile index must be provided by
    the caller (declared as an int). *)
let tile_loop (l : Stmt.loop) ~tile ~tile_index : Stmt.t list =
  if tile <= 0 then Types.ir_error "tile size must be positive";
  if tile = 1 then [ Stmt.For l ]
  else
    match (Expr.simplify l.lo, Expr.simplify l.hi) with
    | Expr.Int lo, Expr.Int hi ->
      let trips = if hi <= lo then 0 else (hi - lo + l.step - 1) / l.step in
      let keep = trips / tile * tile in
      let tiled =
        if keep = 0 then []
        else
          [ Stmt.For
              { index = tile_index;
                lo = Expr.Int lo;
                hi = Expr.Int (lo + (keep * l.step));
                step = l.step * tile;
                body =
                  [ Stmt.For
                      { index = l.index;
                        lo = Expr.Var tile_index;
                        hi =
                          Expr.Binop
                            ( Types.Add,
                              Expr.Var tile_index,
                              Expr.Int (tile * l.step) );
                        step = l.step;
                        body = l.body } ] } ]
      in
      let remainder =
        if trips = keep then []
        else
          [ Stmt.For
              { l with lo = Expr.Int (lo + (keep * l.step));
                       hi = Expr.Int hi } ]
      in
      tiled @ remainder
    | _ -> Types.ir_error "tiling requires static bounds"

(** Tile the loop with index [index] inside [p]; the tile index is
    freshly named and declared. *)
let apply (p : Stmt.program) ~index ~tile : Stmt.program =
  if tile <= 0 then Types.ir_error "tile size must be positive";
  let tile_index = Stmt.fresh_var p (index ^ "@tile") in
  let replaced = ref false in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index index && not !replaced ->
          replaced := true;
          tile_loop l ~tile ~tile_index
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then Types.ir_error "no loop with index %s" index;
  Stmt.add_locals { p with body } [ (tile_index, Types.Tint) ]

(** [apply] with the [Ir_error] message surfaced as data — the entry
    point the {!Rewrite} registry builds on. *)
let apply_res (p : Stmt.program) ~index ~tile : (Stmt.program, string) result =
  match apply p ~index ~tile with
  | q -> Ok q
  | exception Types.Ir_error m -> Error m
