(** The slot-compiled fast interpreter tier.

    Compiles a program once to closures over dense slot-indexed arrays
    ({!Slots}): no string hashing and no AST dispatch on the hot path.
    Observationally identical to the reference interpreter {!Interp} —
    outputs, final scalars, the complete cycle/trip/mem-ref profile,
    and the same {!Interp.Stuck} messages and {!Interp.Out_of_fuel}
    cutoffs in the same evaluation order.  [Interp] stays the oracle;
    this tier is what the sweeps and verifications actually run.

    A {!compiled} value is immutable: every {!run} builds a fresh
    per-run state, so one compilation is reusable across workloads and
    domains (the {!Uas_pass.Cu} compilation unit memoizes it as an
    artifact). *)

(** {2 Interpreter tiers} *)

type tier =
  | Ref  (** the tree-walking reference interpreter ({!Interp.run}) *)
  | Fast  (** this compile-to-closure tier *)
  | Native
      (** the JIT tier ([Native_interp]): codegen to OCaml, compile
          out-of-process, load via Dynlink *)

val tier_name : tier -> string

(** ["ref"]/["reference"], ["fast"] or ["native"] (case-insensitive). *)
val tier_of_string : string -> tier option

(** The [UAS_INTERP] environment variable name. *)
val env_var : string

(** The valid tier names, for diagnostics: ["ref, fast or native"]. *)
val valid_tiers : string

(** [Some message] if {!env_var} is set to an unknown tier name — the
    CLIs report it up front and exit 1 (never a silent fallback, never
    a backtrace). *)
val env_tier_error : unit -> string option

(** The process-wide default tier used by the production execution
    paths (benchmark verification, the Table 1.1 profiler, nimblec
    run).  Initially [Fast], or the value of the [UAS_INTERP]
    environment variable; set from the CLIs' [--interp] flag. *)
val default_tier : unit -> tier

val set_default_tier : tier -> unit

(** {2 Compilation and execution} *)

type compiled

(** Compile [p] to closures.  Never raises on ill-formed programs: a
    reference to an undeclared name compiles to a closure that raises
    the reference interpreter's [Stuck] when (and only when) it is
    actually executed. *)
val compile : Stmt.program -> compiled

val program : compiled -> Stmt.program
val slots : compiled -> Slots.t

(** Run a compiled program on a workload.  The compiled value is not
    mutated — each call builds a fresh state, so one compilation can
    be replayed on any number of workloads, from any domain.
    @raise Interp.Stuck on runtime errors
    @raise Interp.Out_of_fuel past [fuel] executed statements. *)
val run : ?fuel:int -> compiled -> Interp.workload -> Interp.result

(** Compile and run in one step (no artifact reuse). *)
val run_program : ?fuel:int -> Stmt.program -> Interp.workload -> Interp.result

(** Run on the given tier: {!Interp.run}, or {!run_program}.  [Native]
    degrades to the fast tier here (the JIT lives above this module);
    production paths use [Native_interp.run_tier], which dispatches
    all three. *)
val run_tier :
  ?fuel:int -> tier -> Stmt.program -> Interp.workload -> Interp.result
