(** Reference interpreter and profiler.

    Runs a program on a workload and returns the contents of every
    [Output] array plus the final scalar environment.  Transformation
    correctness is defined as bit-for-bit equality of these results.
    The interpreter also attributes estimated cycle costs to every
    enclosing loop (the Table 1.1 profiling study). *)

open Types

type workload = {
  w_scalars : (var * value) list;  (** values for the program's params *)
  w_arrays : (array_id * value array) list;  (** [Input] array contents *)
}

val workload :
  ?scalars:(var * value) list ->
  ?arrays:(array_id * value array) list ->
  unit ->
  workload

type loop_stats = { mutable trips : int; mutable cycles : int }

type profile = {
  mutable total_cycles : int;
  mutable stmts_executed : int;
  mutable mem_refs : int;
  loops : (string, loop_stats) Hashtbl.t;  (** keyed by loop path *)
}

type result = {
  outputs : (array_id * value array) list;
  final_scalars : (var * value) list;
  profile : profile;
}

(** Runtime error: out-of-bounds access, division by zero, undeclared
    name, ill-typed workload. *)
exception Stuck of string

(** Raised past the statement budget (runaway-loop guard). *)
exception Out_of_fuel

val default_fuel : int

(** Execute the program.
    @raise Stuck on runtime errors
    @raise Out_of_fuel past [fuel] executed statements. *)
val run : ?fuel:int -> Stmt.program -> workload -> result

(** Bit-for-bit equality of output arrays (declaration order
    irrelevant). *)
val outputs_equal : result -> result -> bool

(** Human-readable description of the first output difference. *)
val diff_outputs : result -> result -> string option

(** Bit-for-bit equality of profiles: cycles, statements, memory
    references and every per-loop trip/cycle count. *)
val profiles_equal : profile -> profile -> bool

(** Human-readable description of the first profile difference. *)
val diff_profiles : profile -> profile -> string option

(** First difference between two complete results — outputs, final
    scalars, then profile.  [None] means bit-for-bit identical (the
    contract the fast tier is held to). *)
val diff_results : result -> result -> string option

type loop_report = {
  lr_path : string;
  lr_trips : int;
  lr_cycles : int;
  lr_fraction : float;  (** of total program cycles, inclusive *)
}

(** Per-loop execution-time shares, hottest first. *)
val loop_reports : result -> loop_report list
