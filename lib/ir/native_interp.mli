(** The native JIT interpreter tier (interp v3).

    Lowers a program to generated OCaml source specialized to it,
    compiles that source out-of-process with
    [ocamlfind ocamlopt -shared], loads the resulting [.cmxs] with
    [Dynlink], and executes it.  The compiled bytes are cached in the
    persistent artifact store (kind {!store_kind}) keyed by canonical
    program text + {!codegen_version} + the compiler fingerprint
    ({!Uas_runtime.Build_info.compiler_fingerprint}) + an ABI digest
    of this library's compiled interface, so repeat traffic loads a
    cached module instead of re-invoking the compiler.

    The tier contract is the same one {!Fast_interp} satisfies:
    observationally bit-identical to {!Interp} — outputs, final
    scalars, the full cycle/trip/mem-ref profile, the exact
    [Interp.Stuck] strings and [Interp.Out_of_fuel] cutoffs, in the
    same evaluation order.

    Every failure mode — no native Dynlink, no toolchain on PATH, a
    codegen refusal, a compile or load error, an injected
    [jit.compile] fault — surfaces as [Error reason] from {!prepare},
    and the dispatch helpers degrade to the fast tier: never a crash,
    never a wrong answer.  Callers that render incident footnotes
    (the bench table per the PR 5 policy) call {!prepare} themselves
    to get the reason. *)

(** Version of the OCaml-source lowering; part of the store key, so a
    codegen change invalidates every cached module. *)
val codegen_version : int

(** The artifact-store kind compiled modules are filed under
    (["cmxs"]).  Entries are binary and exempt from [--cache-verify]
    byte-comparison (native compiler output is not bit-stable); verify
    mode simply recompiles and overwrites. *)
val store_kind : string

(** The fault-injection site ([jit.compile]) covering the compile
    pipeline.  [raise]/[stall] degrade preparation; [corrupt] mangles
    the generated source so the compiler rejects it — degraded, never
    dead. *)
val fault_site : string

(** Environment variable pointing at the dune [_build/default] root
    holding [uas_ir]'s compiled interfaces, for processes whose
    executable does not live under the build tree (tests set it to a
    nonexistent path to simulate a missing toolchain). *)
val objs_env_var : string

(** Lower a program to a standalone OCaml module (source text), or
    [Error reason] for the few statically ill-typed shapes the
    generator refuses (e.g. conflicting duplicate scalar declarations,
    select arms of two different types).  Exposed for tests and
    inspection; {!prepare} is the production entry point. *)
val generate : Stmt.program -> (string, string) result

(** Called by a loaded module's initializer to hand its kernel to the
    host.  Not for external use. *)
val register : (Interp.workload -> fuel:int -> Interp.result) -> unit

(** A prepared (compiled + loaded) program. *)
type compiled

val program : compiled -> Stmt.program

(** Whether the module bytes came from the artifact store rather than
    a fresh compile. *)
val from_store : compiled -> bool

(** Generate, compile, load — or return the reason this program cannot
    run natively.  Results (including refusals) are memoized per
    process by canonical program text; the artifact store, when
    installed, is consulted first.  [on_store_bad] receives
    store-corruption messages (for incident reporting); counters:
    [jit.memo-hit], [jit.compile-ok], [jit.degraded],
    [jit.store-hit]/[jit.store-miss], and the [jit.compile] span
    around the compiler subprocess. *)
val prepare :
  ?on_store_bad:(string -> unit) -> Stmt.program -> (compiled, string) result

(** Drop the per-process preparation memo (loaded native modules
    cannot be unloaded and are kept; a re-prepare reuses the linked
    code).  Tests use this to re-arm fault sites. *)
val clear_memo : unit -> unit

(** Run a prepared program ([fuel] defaults to
    {!Interp.default_fuel}). *)
val run : ?fuel:int -> compiled -> Interp.workload -> Interp.result

(** Prepare and run, degrading silently to
    {!Fast_interp.run_program} if preparation fails. *)
val run_program : ?fuel:int -> Stmt.program -> Interp.workload -> Interp.result

(** The three-way tier dispatcher: {!Interp.run}, fast, or native
    (with silent degradation to fast).  This is the dispatcher
    production paths use; {!Fast_interp.run_tier} cannot see this
    tier. *)
val run_tier :
  ?fuel:int ->
  Fast_interp.tier ->
  Stmt.program ->
  Interp.workload ->
  Interp.result
