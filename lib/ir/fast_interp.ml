(* The slot-compiled fast interpreter tier.

   [compile] translates a program once into a tree of OCaml closures
   over a slot-indexed runtime environment (Slots): scalars live in a
   [value array], arrays in a [value array array], ROM contents are
   baked into the lookup closures as pre-boxed values.  Name
   resolution, operator dispatch and loop-path construction all happen
   at compile time, so the hot path does no string hashing and no AST
   matching.  The compiled program is immutable and reusable: each
   [run] builds a fresh mutable state, so one compilation serves every
   workload of a sweep (and may be shared across domains).

   The tier is observationally identical to the reference interpreter
   (Interp) — outputs, final scalars, the full cycle/trip/mem-ref
   profile, and the same [Interp.Stuck] messages and
   [Interp.Out_of_fuel] cutoffs, in the same evaluation order.  The
   differential test suite and [Interp.diff_results] hold it to that
   contract bit-for-bit. *)

open Types

(* --- interpreter tiers --- *)

type tier = Ref | Fast | Native

let tier_name = function Ref -> "ref" | Fast -> "fast" | Native -> "native"

let tier_of_string s =
  match String.lowercase_ascii s with
  | "ref" | "reference" -> Some Ref
  | "fast" -> Some Fast
  | "native" -> Some Native
  | _ -> None

let env_var = "UAS_INTERP"
let valid_tiers = "ref, fast or native"

(* An unknown tier name in the environment is a configuration error
   the CLIs report up front (exit 1, like a malformed UAS_JOBS) — not
   something to silently fall back from. *)
let env_tier_error () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
    match tier_of_string s with
    | Some _ -> None
    | None ->
      Some (Printf.sprintf "%s expects %s, got %s" env_var valid_tiers s))

(* The process-wide default tier: what the production paths (benchmark
   verification, the Table 1.1 profiler, nimblec run) use when no tier
   is passed explicitly.  Set once at CLI startup (--interp) or via
   UAS_INTERP; an Atomic so pool domains read it safely. *)
let default =
  Atomic.make
    (match Option.bind (Sys.getenv_opt env_var) tier_of_string with
    | Some t -> t
    | None -> Fast)

let default_tier () = Atomic.get default
let set_default_tier t = Atomic.set default t

(* --- runtime state (one per run) --- *)

type rt = {
  scal : value array;  (* scalar slots *)
  defined : bool array;  (* only consulted for undeclared-index slots *)
  arrs : value array array;  (* array slots *)
  prof : Interp.profile;
  mutable fuel : int;
  mutable loop_stack : Interp.loop_stats list;
}

let stuck fmt = Fmt.kstr (fun s -> raise (Interp.Stuck s)) fmt

let charge rt cycles =
  rt.prof.Interp.total_cycles <- rt.prof.Interp.total_cycles + cycles;
  List.iter
    (fun (ls : Interp.loop_stats) -> ls.cycles <- ls.cycles + cycles)
    rt.loop_stack

let burn rt =
  if rt.fuel <= 0 then raise Interp.Out_of_fuel;
  rt.fuel <- rt.fuel - 1;
  rt.prof.Interp.stmts_executed <- rt.prof.Interp.stmts_executed + 1

let op_cost (k : Opinfo.op_kind) = max 1 (Opinfo.default_delay k)

(* --- compile-time operator specialization ---

   Each operator is resolved to a direct [value -> value] closure
   once.  The well-typed case is inlined; anything else (type
   mismatch, division by zero, shift out of range) falls back to
   [Expr.eval_binop], which raises [Ir_error] with exactly the
   message the reference interpreter converts to [Stuck]. *)

let fallback_binop o a b =
  try Expr.eval_binop o a b with Ir_error m -> raise (Interp.Stuck m)

let fallback_unop o a =
  try Expr.eval_unop o a with Ir_error m -> raise (Interp.Stuck m)

let truth n = if n then 1 else 0

let binop_fn (o : binop) : value -> value -> value =
  let fb = fallback_binop o in
  match o with
  | Add -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x + y) | _ -> fb a b)
  | Sub -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x - y) | _ -> fb a b)
  | Mul -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x * y) | _ -> fb a b)
  | Div -> (fun a b ->
      match (a, b) with
      | VInt x, VInt y when y <> 0 -> VInt (x / y)
      | _ -> fb a b)
  | Mod -> (fun a b ->
      match (a, b) with
      | VInt x, VInt y when y <> 0 -> VInt (x mod y)
      | _ -> fb a b)
  | BAnd -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x land y) | _ -> fb a b)
  | BOr -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x lor y) | _ -> fb a b)
  | BXor -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (x lxor y) | _ -> fb a b)
  | Shl -> (fun a b ->
      match (a, b) with
      | VInt x, VInt y when y >= 0 && y <= 62 -> VInt (x lsl y)
      | _ -> fb a b)
  | Shr -> (fun a b ->
      match (a, b) with
      | VInt x, VInt y when y >= 0 && y <= 62 -> VInt (x asr y)
      | _ -> fb a b)
  | Lt -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x < y)) | _ -> fb a b)
  | Le -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x <= y)) | _ -> fb a b)
  | Gt -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x > y)) | _ -> fb a b)
  | Ge -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x >= y)) | _ -> fb a b)
  | Eq -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x = y)) | _ -> fb a b)
  | Ne -> (fun a b ->
      match (a, b) with VInt x, VInt y -> VInt (truth (x <> y)) | _ -> fb a b)
  | Fadd -> (fun a b ->
      match (a, b) with VFloat x, VFloat y -> VFloat (x +. y) | _ -> fb a b)
  | Fsub -> (fun a b ->
      match (a, b) with VFloat x, VFloat y -> VFloat (x -. y) | _ -> fb a b)
  | Fmul -> (fun a b ->
      match (a, b) with VFloat x, VFloat y -> VFloat (x *. y) | _ -> fb a b)
  | Fdiv -> (fun a b ->
      match (a, b) with VFloat x, VFloat y -> VFloat (x /. y) | _ -> fb a b)
  | Fcmp_lt -> (fun a b ->
      match (a, b) with
      | VFloat x, VFloat y -> VInt (truth (x < y))
      | _ -> fb a b)
  | Fcmp_le -> (fun a b ->
      match (a, b) with
      | VFloat x, VFloat y -> VInt (truth (x <= y))
      | _ -> fb a b)

let unop_fn (o : unop) : value -> value =
  let fb = fallback_unop o in
  match o with
  | Neg -> (fun a -> match a with VInt x -> VInt (-x) | _ -> fb a)
  | BNot -> (fun a -> match a with VInt x -> VInt (lnot x) | _ -> fb a)
  | Fneg -> (fun a -> match a with VFloat x -> VFloat (-.x) | _ -> fb a)
  | I2f -> (fun a -> match a with VInt x -> VFloat (float_of_int x) | _ -> fb a)
  | F2i -> (fun a -> match a with VFloat x -> VInt (int_of_float x) | _ -> fb a)

(* --- expression compilation ---

   The compile-time context: the slot resolver plus the program (for
   ROM contents, which are baked into the lookup closures). *)

type ctx = { sl : Slots.t; prog : Stmt.program }

let rec compile_expr ({ sl; _ } as ctx : ctx) (e : Expr.t) : rt -> value =
  match e with
  | Int n ->
    let v = VInt n in
    fun _ -> v
  | Float f ->
    let v = VFloat f in
    fun _ -> v
  | Var x -> (
    match Slots.scalar_slot sl x with
    | None -> fun _ -> stuck "read of undeclared scalar %s" x
    | Some s ->
      if Slots.scalar_is_declared sl s then fun rt -> Array.unsafe_get rt.scal s
      else
        (* an undeclared loop index: readable only once its loop ran *)
        fun rt ->
          if rt.defined.(s) then rt.scal.(s)
          else stuck "read of undeclared scalar %s" x)
  | Load (a, i) -> (
    let ci = compile_int ctx i in
    let cost = op_cost Opinfo.Op_load in
    match Slots.array_slot sl a with
    | None ->
      fun rt ->
        let _ = ci rt in
        rt.prof.Interp.mem_refs <- rt.prof.Interp.mem_refs + 1;
        charge rt cost;
        stuck "load from undeclared array %s" a
    | Some s ->
      fun rt ->
        let idx = ci rt in
        rt.prof.Interp.mem_refs <- rt.prof.Interp.mem_refs + 1;
        charge rt cost;
        let data = Array.unsafe_get rt.arrs s in
        if idx < 0 || idx >= Array.length data then
          stuck "load %s[%d] out of bounds (size %d)" a idx (Array.length data)
        else Array.unsafe_get data idx)
  | Rom (r, i) -> (
    let ci = compile_int ctx i in
    let cost = op_cost Opinfo.Op_rom in
    (* the last declaration of a name wins, as in the reference
       interpreter's rom table *)
    let decl =
      List.fold_left
        (fun acc (d : Stmt.rom_decl) ->
          if String.equal d.r_name r then Some d else acc)
        None ctx.prog.Stmt.roms
    in
    match decl with
    | None ->
      fun rt ->
        let _ = ci rt in
        charge rt cost;
        stuck "lookup in undeclared rom %s" r
    | Some d ->
      (* ROM contents are program constants: pre-box every element at
         compile time so a hit allocates nothing *)
      let values = Array.map (fun n -> VInt n) d.Stmt.r_data in
      let size = Array.length values in
      fun rt ->
        let idx = ci rt in
        charge rt cost;
        if idx < 0 || idx >= size then
          stuck "rom lookup %s(%d) out of bounds (size %d)" r idx size
        else Array.unsafe_get values idx)
  | Unop (o, x) ->
    let cx = compile_expr ctx x in
    let cost = op_cost (Opinfo.Op_unop o) in
    let f = unop_fn o in
    fun rt ->
      let vx = cx rt in
      charge rt cost;
      f vx
  | Binop (o, l, r) ->
    let cl = compile_expr ctx l in
    let cr = compile_expr ctx r in
    let cost = op_cost (Opinfo.Op_binop o) in
    let f = binop_fn o in
    fun rt ->
      let vl = cl rt in
      let vr = cr rt in
      charge rt cost;
      f vl vr
  | Select (c, t, f) ->
    let cc = compile_int ctx c in
    let ct = compile_expr ctx t in
    let cf = compile_expr ctx f in
    let cost = op_cost Opinfo.Op_select in
    fun rt ->
      (* both arms evaluate, as in the reference (hardware mux) *)
      let vc = cc rt in
      let vt = ct rt in
      let vf = cf rt in
      charge rt cost;
      if vc <> 0 then vt else vf

and compile_int ctx (e : Expr.t) : rt -> int =
  let ce = compile_expr ctx e in
  fun rt ->
    match ce rt with
    | VInt n -> n
    | VFloat _ ->
      (* the pretty-printed expression is only built on the error path,
         exactly as in the reference interpreter *)
      stuck "expected an integer value for %s" (Pp.expr_to_string e)

(* --- statement compilation --- *)

let loop_stats_for rt path : Interp.loop_stats =
  match Hashtbl.find_opt rt.prof.Interp.loops path with
  | Some ls -> ls
  | None ->
    let ls = { Interp.trips = 0; cycles = 0 } in
    Hashtbl.replace rt.prof.Interp.loops path ls;
    ls

let move_cost = op_cost Opinfo.Op_move
let store_cost = op_cost Opinfo.Op_store

let rec compile_stmt ({ sl; _ } as ctx : ctx) path (s : Stmt.t) : rt -> unit =
  match s with
  | Assign (x, e) -> (
    let ce = compile_expr ctx e in
    match Slots.scalar_slot sl x with
    | None ->
      fun rt ->
        burn rt;
        let _ = ce rt in
        stuck "assignment to undeclared scalar %s" x
    | Some slot ->
      if Slots.scalar_is_declared sl slot then
        fun rt ->
          burn rt;
          let v = ce rt in
          charge rt move_cost;
          Array.unsafe_set rt.scal slot v
      else
        (* assignable only once its loop introduced it, as in the
           reference interpreter's dynamic environment *)
        fun rt ->
          burn rt;
          let v = ce rt in
          if not rt.defined.(slot) then
            stuck "assignment to undeclared scalar %s" x;
          charge rt move_cost;
          rt.scal.(slot) <- v)
  | Store (a, i, e) -> (
    let ci = compile_int ctx i in
    let ce = compile_expr ctx e in
    match Slots.array_slot sl a with
    | None ->
      fun rt ->
        burn rt;
        let _ = ci rt in
        let _ = ce rt in
        rt.prof.Interp.mem_refs <- rt.prof.Interp.mem_refs + 1;
        charge rt store_cost;
        stuck "store to undeclared array %s" a
    | Some slot ->
      fun rt ->
        burn rt;
        let idx = ci rt in
        let v = ce rt in
        rt.prof.Interp.mem_refs <- rt.prof.Interp.mem_refs + 1;
        charge rt store_cost;
        let data = Array.unsafe_get rt.arrs slot in
        if idx < 0 || idx >= Array.length data then
          stuck "store %s[%d] out of bounds (size %d)" a idx (Array.length data)
        else Array.unsafe_set data idx v)
  | If (c, t, e) ->
    let cc = compile_int ctx c in
    let ct = compile_block ctx path t in
    let ce = compile_block ctx path e in
    fun rt ->
      burn rt;
      let vc = cc rt in
      charge rt 1;
      if vc <> 0 then ct rt else ce rt
  | For l ->
    let clo = compile_int ctx l.lo in
    let chi = compile_int ctx l.hi in
    let lpath = path ^ "/" ^ l.index in
    let body = compile_block ctx lpath l.body in
    let step = l.step in
    let slot =
      match Slots.scalar_slot sl l.index with
      | Some s -> s
      | None -> assert false (* slots cover every loop index *)
    in
    let declared = Slots.scalar_is_declared sl slot in
    fun rt ->
      burn rt;
      let lo = clo rt in
      let hi = chi rt in
      let ls = loop_stats_for rt lpath in
      rt.loop_stack <- ls :: rt.loop_stack;
      if not declared then rt.defined.(slot) <- true;
      let rec iterate i =
        if i < hi then begin
          rt.scal.(slot) <- VInt i;
          ls.trips <- ls.trips + 1;
          body rt;
          iterate (i + step)
        end
      in
      let finish () =
        rt.loop_stack <-
          (match rt.loop_stack with [] -> [] | _ :: rest -> rest)
      in
      (try iterate lo with e -> finish (); raise e);
      finish ();
      (* the index keeps its exit value, like a C loop variable *)
      let exit_value =
        if hi <= lo then lo else lo + ((hi - lo + step - 1) / step) * step
      in
      rt.scal.(slot) <- VInt exit_value

and compile_block ctx path (stmts : Stmt.t list) : rt -> unit =
  match List.map (compile_stmt ctx path) stmts with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f; g ] -> fun rt -> f rt; g rt
  | fs ->
    let fs = Array.of_list fs in
    fun rt -> Array.iter (fun f -> f rt) fs

(* --- whole-program compilation --- *)

type compiled = {
  c_program : Stmt.program;
  c_slots : Slots.t;
  c_body : rt -> unit;
}

let compile (p : Stmt.program) : compiled =
  let sl = Slots.of_program p in
  { c_program = p;
    c_slots = sl;
    c_body = compile_block { sl; prog = p } "" p.body }

let program c = c.c_program
let slots c = c.c_slots

(* --- per-run state initialization (mirrors Interp.init_state) --- *)

let zero_of = function Tint -> VInt 0 | Tfloat -> VFloat 0.0

let init (c : compiled) (w : Interp.workload) ~fuel : rt =
  let sl = c.c_slots in
  let scal = Array.make (max 1 (Slots.scalar_count sl)) (VInt 0) in
  let defined = Array.make (max 1 (Slots.scalar_count sl)) false in
  let p = c.c_program in
  List.iter
    (fun (v, t) ->
      match Slots.scalar_slot sl v with
      | Some s ->
        scal.(s) <- zero_of t;
        defined.(s) <- true
      | None -> assert false)
    (Stmt.scalar_decls p);
  List.iter
    (fun (v, value) ->
      match Stmt.lookup_scalar_ty p v with
      | None -> stuck "workload sets undeclared scalar %s" v
      | Some t when not (equal_ty t (ty_of_value value)) ->
        stuck "workload sets %s with wrong-typed value" v
      | Some _ -> (
        match Slots.scalar_slot sl v with
        | Some s -> scal.(s) <- value
        | None -> assert false))
    w.Interp.w_scalars;
  let arrs =
    Array.of_list
      (List.map
         (fun (d : Stmt.array_decl) ->
           match (d.a_kind, List.assoc_opt d.a_name w.Interp.w_arrays) with
           | Stmt.Input, Some data ->
             if Array.length data <> d.a_size then
               stuck "workload array %s has length %d, declared %d" d.a_name
                 (Array.length data) d.a_size;
             Array.iter
               (fun value ->
                 if not (equal_ty (ty_of_value value) d.a_ty) then
                   stuck "workload array %s has wrong-typed element" d.a_name)
               data;
             Array.copy data
           | Stmt.Input, None -> Array.make d.a_size (zero_of d.a_ty)
           | (Stmt.Output | Stmt.Local), _ ->
             Array.make d.a_size (zero_of d.a_ty))
         p.arrays)
  in
  { scal;
    defined;
    arrs;
    prof =
      { Interp.total_cycles = 0;
        stmts_executed = 0;
        mem_refs = 0;
        loops = Hashtbl.create 16 };
    fuel;
    loop_stack = [] }

(** Run a compiled program on a workload.  The compiled value is not
    mutated: each call builds a fresh state, so one compilation can be
    replayed on any number of workloads (and from any domain).
    @raise Interp.Stuck on runtime errors
    @raise Interp.Out_of_fuel past [fuel] executed statements. *)
let run ?(fuel = Interp.default_fuel) (c : compiled) (w : Interp.workload) :
    Interp.result =
  let rt = init c w ~fuel in
  c.c_body rt;
  let sl = c.c_slots in
  let outputs =
    List.filter_map
      (fun (d : Stmt.array_decl) ->
        match d.a_kind with
        | Stmt.Output -> (
          match Slots.array_slot sl d.a_name with
          | Some s -> Some (d.a_name, rt.arrs.(s))
          | None -> assert false)
        | Stmt.Input | Stmt.Local -> None)
      c.c_program.arrays
  in
  let final_scalars =
    List.map
      (fun (v, _) ->
        match Slots.scalar_slot sl v with
        | Some s -> (v, rt.scal.(s))
        | None -> assert false)
      (Stmt.scalar_decls c.c_program)
  in
  { Interp.outputs; final_scalars; profile = rt.prof }

(** Compile and run in one step (no artifact reuse). *)
let run_program ?fuel (p : Stmt.program) (w : Interp.workload) :
    Interp.result =
  run ?fuel (compile p) w

(** Run on the given tier: the reference interpreter, or compile+run on
    the fast tier.  [Native] also runs the fast tier here: the JIT
    lives above this module ([Native_interp] depends on it), so this
    dispatcher can only degrade; production paths route through
    [Native_interp.run_tier], which handles all three. *)
let run_tier ?fuel (t : tier) (p : Stmt.program) (w : Interp.workload) :
    Interp.result =
  match t with
  | Ref -> Interp.run ?fuel p w
  | Fast | Native -> run_program ?fuel p w
