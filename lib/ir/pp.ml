(* C-like pretty-printer for the IR; used by the CLI, examples and error
   messages.  The output is meant for humans, round-tripping is not a
   goal. *)

open Types

let prec_of_binop = function
  | Mul | Div | Mod | Fmul | Fdiv -> 7
  | Add | Sub | Fadd | Fsub -> 6
  | Shl | Shr -> 5
  | Lt | Le | Gt | Ge | Fcmp_lt | Fcmp_le -> 4
  | Eq | Ne -> 3
  | BAnd -> 2
  | BXor -> 1
  | BOr -> 0

let rec pp_expr_prec prec ppf (e : Expr.t) =
  match e with
  | Int n -> Fmt.int ppf n
  (* +. 0. normalizes IEEE negative zero: "%g" would print it "-0",
     which reparses as the integer 0 and reprints as "0" — breaking
     the canonical-text fixpoint the artifact-store keys rely on *)
  | Float f -> Fmt.pf ppf "%g" (f +. 0.)
  | Var v -> Fmt.string ppf v
  | Load (a, i) -> Fmt.pf ppf "%s[%a]" a (pp_expr_prec 0) i
  | Rom (r, i) -> Fmt.pf ppf "%s(%a)" r (pp_expr_prec 0) i
  | Unop (o, x) -> Fmt.pf ppf "%s%a" (unop_name o) (pp_expr_prec 8) x
  | Binop (o, l, r) ->
    let p = prec_of_binop o in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr_prec p) l (binop_name o)
        (pp_expr_prec (p + 1)) r
    in
    if Stdlib.( < ) p prec then Fmt.pf ppf "(%a)" body ()
    else body ppf ()
  | Select (c, t, f) ->
    Fmt.pf ppf "(%a ? %a : %a)" (pp_expr_prec 1) c (pp_expr_prec 1) t
      (pp_expr_prec 1) f

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_stmt ~indent ppf (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Assign (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x pp_expr e
  | Store (a, i, e) -> Fmt.pf ppf "%s%s[%a] = %a;" pad a pp_expr i pp_expr e
  | If (c, t, []) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c
      (pp_block ~indent:(indent + 2)) t pad
  | If (c, t, e) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
      (pp_block ~indent:(indent + 2)) t pad
      (pp_block ~indent:(indent + 2)) e pad
  | For l ->
    let step_s =
      if l.step = 1 then Printf.sprintf "%s++" l.index
      else Printf.sprintf "%s += %d" l.index l.step
    in
    Fmt.pf ppf "%sfor (%s = %a; %s < %a; %s) {@\n%a@\n%s}" pad l.index pp_expr
      l.lo l.index pp_expr l.hi step_s
      (pp_block ~indent:(indent + 2)) l.body pad

and pp_block ~indent ppf stmts =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent))
    stmts

let pp_array_decl ppf (d : Stmt.array_decl) =
  let kind =
    match d.a_kind with
    | Stmt.Input -> "in" | Stmt.Output -> "out" | Stmt.Local -> "local"
  in
  Fmt.pf ppf "%s %a %s[%d];" kind pp_ty d.a_ty d.a_name d.a_size

let pp_rom_decl ppf (r : Stmt.rom_decl) =
  Fmt.pf ppf "rom %s = { %s };" r.r_name
    (String.concat ", " (Array.to_list (Array.map string_of_int r.r_data)))

(* The printed form is the surface syntax [Parser] reads back: the
   round-trip parse (program_to_string p) == p holds structurally. *)
let pp_program ppf (p : Stmt.program) =
  Fmt.pf ppf "program %s {@\n" p.prog_name;
  List.iter (fun (x, t) -> Fmt.pf ppf "  param %a %s;@\n" pp_ty t x) p.params;
  List.iter (fun d -> Fmt.pf ppf "  %a@\n" pp_array_decl d) p.arrays;
  List.iter (fun r -> Fmt.pf ppf "  %a@\n" pp_rom_decl r) p.roms;
  List.iter (fun (x, t) -> Fmt.pf ppf "  %a %s;@\n" pp_ty t x) p.locals;
  Fmt.pf ppf "%a@\n}@\n" (pp_block ~indent:2) p.body

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
let program_to_string p = Fmt.str "%a" pp_program p
