(* Dense integer slot resolution for the fast interpreter tier.

   The reference interpreter resolves every scalar, array and ROM
   access through string-keyed hashtables on the hot path.  This
   module assigns each name a dense integer slot once per program, so
   the compiled tier (Fast_interp) can hold the runtime environment in
   plain arrays indexed by slot.

   Scalar slots cover the declared scalars (params then locals, in
   declaration order — the first [declared_count] slots) plus every
   loop index that appears in the body without a declaration.  The
   reference interpreter admits such indices into its environment the
   first time their loop executes; keeping a slot (and a definedness
   flag, maintained by Fast_interp) for them preserves that dynamic
   behavior bit-for-bit. *)

open Types

type t = {
  scalar_names : var array;  (* slot -> name; declared scalars first *)
  declared : int;  (* slots [0, declared) are declared scalars *)
  scalar_index : (var, int) Hashtbl.t;
  array_names : array_id array;  (* slot -> name, declaration order *)
  array_index : (array_id, int) Hashtbl.t;
  rom_names : rom_id array;
  rom_index : (rom_id, int) Hashtbl.t;
}

let of_program (p : Stmt.program) : t =
  let scalar_index = Hashtbl.create 32 in
  let rev_names = ref [] in
  let add v =
    if not (Hashtbl.mem scalar_index v) then begin
      Hashtbl.add scalar_index v (Hashtbl.length scalar_index);
      rev_names := v :: !rev_names
    end
  in
  List.iter (fun (v, _) -> add v) (Stmt.scalar_decls p);
  let declared = Hashtbl.length scalar_index in
  (* undeclared loop indices: the reference interpreter lets a For loop
     introduce its index into the environment on first execution *)
  Stmt.fold_list
    (fun () s -> match s with Stmt.For l -> add l.index | _ -> ())
    () p.body;
  let scalar_names = Array.of_list (List.rev !rev_names) in
  (* on a (degenerate) duplicated name the later declaration wins,
     matching the reference interpreter's [Hashtbl.replace] *)
  let array_index = Hashtbl.create 8 in
  let array_names =
    Array.of_list (List.map (fun (d : Stmt.array_decl) -> d.a_name) p.arrays)
  in
  Array.iteri (fun i a -> Hashtbl.replace array_index a i) array_names;
  let rom_index = Hashtbl.create 8 in
  let rom_names =
    Array.of_list (List.map (fun (r : Stmt.rom_decl) -> r.r_name) p.roms)
  in
  Array.iteri (fun i r -> Hashtbl.replace rom_index r i) rom_names;
  { scalar_names; declared; scalar_index; array_names; array_index;
    rom_names; rom_index }

let scalar_count t = Array.length t.scalar_names
let declared_count t = t.declared
let scalar_slot t v = Hashtbl.find_opt t.scalar_index v
let scalar_name t slot = t.scalar_names.(slot)

(** Is the slot a declared scalar (always present in the environment),
    as opposed to an undeclared loop index (present only after its loop
    first executed)? *)
let scalar_is_declared t slot = slot < t.declared

let array_count t = Array.length t.array_names
let array_slot t a = Hashtbl.find_opt t.array_index a
let array_name t slot = t.array_names.(slot)

let rom_count t = Array.length t.rom_names
let rom_slot t r = Hashtbl.find_opt t.rom_index r
let rom_name t slot = t.rom_names.(slot)
