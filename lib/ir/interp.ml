(* Reference interpreter.

   Runs a program on a workload (scalar parameters + input-array
   contents) and returns the observable outputs: the contents of every
   [Output] array plus the final scalar environment.  All transformation
   correctness tests compare these results bit-for-bit against the
   original program.

   The interpreter also acts as the profiler behind the Table 1.1
   experiment: it attributes an estimated cycle cost (the default
   operator delays) to every enclosing loop, so we can report the
   fraction of execution time spent in each loop. *)

open Types

type workload = {
  w_scalars : (var * value) list;       (** values for [params] *)
  w_arrays : (array_id * value array) list;  (** contents for [Input] arrays *)
}

let workload ?(scalars = []) ?(arrays = []) () =
  { w_scalars = scalars; w_arrays = arrays }

type loop_stats = {
  mutable trips : int;   (** total iterations executed *)
  mutable cycles : int;  (** estimated cycles spent inside (inclusive) *)
}

type profile = {
  mutable total_cycles : int;
  mutable stmts_executed : int;
  mutable mem_refs : int;
  loops : (string, loop_stats) Hashtbl.t;  (** keyed by loop path *)
}

let new_profile () =
  { total_cycles = 0; stmts_executed = 0; mem_refs = 0; loops = Hashtbl.create 16 }

type result = {
  outputs : (array_id * value array) list;
  final_scalars : (var * value) list;
  profile : profile;
}

exception Stuck of string
exception Out_of_fuel

let stuck fmt = Fmt.kstr (fun s -> raise (Stuck s)) fmt

type state = {
  scalars : (var, value) Hashtbl.t;
  arrays : (array_id, value array) Hashtbl.t;
  roms : (rom_id, int array) Hashtbl.t;
  prof : profile;
  mutable fuel : int;
  mutable loop_stack : loop_stats list;
}

let zero_of = function Tint -> VInt 0 | Tfloat -> VFloat 0.0

let init_state (p : Stmt.program) (w : workload) ~fuel =
  let scalars = Hashtbl.create 32 in
  List.iter (fun (v, t) -> Hashtbl.replace scalars v (zero_of t))
    (Stmt.scalar_decls p);
  List.iter
    (fun (v, value) ->
      match Stmt.lookup_scalar_ty p v with
      | None -> stuck "workload sets undeclared scalar %s" v
      | Some t when not (equal_ty t (ty_of_value value)) ->
        stuck "workload sets %s with wrong-typed value" v
      | Some _ -> Hashtbl.replace scalars v value)
    w.w_scalars;
  let arrays = Hashtbl.create 8 in
  List.iter
    (fun (d : Stmt.array_decl) ->
      let contents =
        match (d.a_kind, List.assoc_opt d.a_name w.w_arrays) with
        | Stmt.Input, Some data ->
          if Array.length data <> d.a_size then
            stuck "workload array %s has length %d, declared %d" d.a_name
              (Array.length data) d.a_size;
          Array.iter
            (fun value ->
              if not (equal_ty (ty_of_value value) d.a_ty) then
                stuck "workload array %s has wrong-typed element" d.a_name)
            data;
          Array.copy data
        | Stmt.Input, None -> Array.make d.a_size (zero_of d.a_ty)
        | (Stmt.Output | Stmt.Local), _ -> Array.make d.a_size (zero_of d.a_ty)
      in
      Hashtbl.replace arrays d.a_name contents)
    p.arrays;
  let roms = Hashtbl.create 8 in
  List.iter (fun (r : Stmt.rom_decl) -> Hashtbl.replace roms r.r_name r.r_data)
    p.roms;
  { scalars; arrays; roms; prof = new_profile (); fuel; loop_stack = [] }

let charge st cycles =
  st.prof.total_cycles <- st.prof.total_cycles + cycles;
  List.iter (fun ls -> ls.cycles <- ls.cycles + cycles) st.loop_stack

let op_cost (k : Opinfo.op_kind) = max 1 (Opinfo.default_delay k)

let rec eval st (e : Expr.t) : value =
  match e with
  | Int n -> VInt n
  | Float f -> VFloat f
  | Var v -> (
    match Hashtbl.find_opt st.scalars v with
    | Some value -> value
    | None -> stuck "read of undeclared scalar %s" v)
  | Load (a, i) -> (
    let idx = eval_int st i in
    st.prof.mem_refs <- st.prof.mem_refs + 1;
    charge st (op_cost Opinfo.Op_load);
    match Hashtbl.find_opt st.arrays a with
    | None -> stuck "load from undeclared array %s" a
    | Some data ->
      if idx < 0 || idx >= Array.length data then
        stuck "load %s[%d] out of bounds (size %d)" a idx (Array.length data)
      else data.(idx))
  | Rom (r, i) -> (
    let idx = eval_int st i in
    charge st (op_cost Opinfo.Op_rom);
    match Hashtbl.find_opt st.roms r with
    | None -> stuck "lookup in undeclared rom %s" r
    | Some data ->
      if idx < 0 || idx >= Array.length data then
        stuck "rom lookup %s(%d) out of bounds (size %d)" r idx
          (Array.length data)
      else VInt data.(idx))
  | Unop (o, x) -> (
    let vx = eval st x in
    charge st (op_cost (Opinfo.Op_unop o));
    try Expr.eval_unop o vx with Ir_error m -> stuck "%s" m)
  | Binop (o, l, r) -> (
    let vl = eval st l in
    let vr = eval st r in
    charge st (op_cost (Opinfo.Op_binop o));
    try Expr.eval_binop o vl vr with Ir_error m -> stuck "%s" m)
  | Select (c, t, f) ->
    (* both arms evaluate, as in the hardware realization of a mux *)
    let vc = eval_int st c in
    let vt = eval st t in
    let vf = eval st f in
    charge st (op_cost Opinfo.Op_select);
    if vc <> 0 then vt else vf

and eval_int st e =
  match eval st e with
  | VInt n -> n
  | VFloat _ -> stuck "expected an integer value for %s" (Pp.expr_to_string e)

let burn st =
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1;
  st.prof.stmts_executed <- st.prof.stmts_executed + 1

let loop_stats_for st path =
  match Hashtbl.find_opt st.prof.loops path with
  | Some ls -> ls
  | None ->
    let ls = { trips = 0; cycles = 0 } in
    Hashtbl.replace st.prof.loops path ls;
    ls

let rec exec st path (s : Stmt.t) : unit =
  burn st;
  match s with
  | Assign (x, e) ->
    let value = eval st e in
    if not (Hashtbl.mem st.scalars x) then
      stuck "assignment to undeclared scalar %s" x;
    charge st (op_cost Opinfo.Op_move);
    Hashtbl.replace st.scalars x value
  | Store (a, i, e) -> (
    let idx = eval_int st i in
    let value = eval st e in
    st.prof.mem_refs <- st.prof.mem_refs + 1;
    charge st (op_cost Opinfo.Op_store);
    match Hashtbl.find_opt st.arrays a with
    | None -> stuck "store to undeclared array %s" a
    | Some data ->
      if idx < 0 || idx >= Array.length data then
        stuck "store %s[%d] out of bounds (size %d)" a idx (Array.length data)
      else data.(idx) <- value)
  | If (c, t, e) ->
    let vc = eval_int st c in
    charge st 1;
    exec_block st path (if vc <> 0 then t else e)
  | For l ->
    let lo = eval_int st l.lo in
    let hi = eval_int st l.hi in
    let lpath = path ^ "/" ^ l.index in
    let ls = loop_stats_for st lpath in
    st.loop_stack <- ls :: st.loop_stack;
    let rec iterate i =
      if i < hi then begin
        Hashtbl.replace st.scalars l.index (VInt i);
        ls.trips <- ls.trips + 1;
        exec_block st lpath l.body;
        iterate (i + l.step)
      end
    in
    let finish () =
      st.loop_stack <-
        (match st.loop_stack with [] -> [] | _ :: rest -> rest)
    in
    (try iterate lo with e -> finish (); raise e);
    finish ();
    (* the index keeps its exit value, like a C loop variable *)
    let exit_value = if hi <= lo then lo else lo + ((hi - lo + l.step - 1) / l.step) * l.step in
    Hashtbl.replace st.scalars l.index (VInt exit_value)

and exec_block st path stmts = List.iter (exec st path) stmts

let default_fuel = 50_000_000

(** Run [p] on workload [w].  @raise Stuck on runtime errors,
    [Out_of_fuel] past [fuel] executed statements. *)
let run ?(fuel = default_fuel) (p : Stmt.program) (w : workload) : result =
  let st = init_state p w ~fuel in
  exec_block st "" p.body;
  let outputs =
    List.filter_map
      (fun (d : Stmt.array_decl) ->
        match d.a_kind with
        | Stmt.Output -> Some (d.a_name, Hashtbl.find st.arrays d.a_name)
        | Stmt.Input | Stmt.Local -> None)
      p.arrays
  in
  let final_scalars =
    List.map
      (fun (v, _) -> (v, Hashtbl.find st.scalars v))
      (Stmt.scalar_decls p)
  in
  { outputs; final_scalars; profile = st.prof }

(** Bit-for-bit equality of the output arrays of two runs (order of
    declaration does not matter). *)
let outputs_equal (a : result) (b : result) : bool =
  let sorted r =
    List.sort (fun (x, _) (y, _) -> String.compare x y) r.outputs
  in
  let xa = sorted a and xb = sorted b in
  List.length xa = List.length xb
  && List.for_all2
       (fun (na, da) (nb, db) ->
         String.equal na nb
         && Array.length da = Array.length db
         && Array.for_all2 equal_value da db)
       xa xb

(** Describe the first difference between two results, for test
    diagnostics. *)
let diff_outputs (a : result) (b : result) : string option =
  let find name r = List.assoc_opt name r.outputs in
  let check (name, da) =
    match find name b with
    | None -> Some (Printf.sprintf "output %s missing in second result" name)
    | Some db ->
      if Array.length da <> Array.length db then
        Some
          (Printf.sprintf "output %s: lengths %d vs %d" name (Array.length da)
             (Array.length db))
      else
        let rec go i =
          if i >= Array.length da then None
          else if not (equal_value da.(i) db.(i)) then
            Some
              (Fmt.str "output %s[%d]: %a vs %a" name i pp_value da.(i)
                 pp_value db.(i))
          else go (i + 1)
        in
        go 0
  in
  List.find_map check a.outputs

let profiles_equal (a : profile) (b : profile) : bool =
  a.total_cycles = b.total_cycles
  && a.stmts_executed = b.stmts_executed
  && a.mem_refs = b.mem_refs
  && Hashtbl.length a.loops = Hashtbl.length b.loops
  && Hashtbl.fold
       (fun path (la : loop_stats) ok ->
         ok
         &&
         match Hashtbl.find_opt b.loops path with
         | Some lb -> la.trips = lb.trips && la.cycles = lb.cycles
         | None -> false)
       a.loops true

(** Describe the first difference between two profiles, for test
    diagnostics. *)
let diff_profiles (a : profile) (b : profile) : string option =
  if a.total_cycles <> b.total_cycles then
    Some
      (Printf.sprintf "total_cycles: %d vs %d" a.total_cycles b.total_cycles)
  else if a.stmts_executed <> b.stmts_executed then
    Some
      (Printf.sprintf "stmts_executed: %d vs %d" a.stmts_executed
         b.stmts_executed)
  else if a.mem_refs <> b.mem_refs then
    Some (Printf.sprintf "mem_refs: %d vs %d" a.mem_refs b.mem_refs)
  else if Hashtbl.length a.loops <> Hashtbl.length b.loops then
    Some
      (Printf.sprintf "loop count: %d vs %d" (Hashtbl.length a.loops)
         (Hashtbl.length b.loops))
  else
    Hashtbl.fold
      (fun path (la : loop_stats) acc ->
        match acc with
        | Some _ -> acc
        | None -> (
          match Hashtbl.find_opt b.loops path with
          | None -> Some (Printf.sprintf "loop %s missing in second profile" path)
          | Some lb ->
            if la.trips <> lb.trips then
              Some
                (Printf.sprintf "loop %s trips: %d vs %d" path la.trips
                   lb.trips)
            else if la.cycles <> lb.cycles then
              Some
                (Printf.sprintf "loop %s cycles: %d vs %d" path la.cycles
                   lb.cycles)
            else None))
      a.loops None

(** First difference between two complete results — outputs, final
    scalars, then profile.  [None] means bit-for-bit identical. *)
let diff_results (a : result) (b : result) : string option =
  match diff_outputs a b with
  | Some _ as d -> d
  | None -> (
    let sorted r =
      List.sort (fun (x, _) (y, _) -> String.compare x y) r.final_scalars
    in
    let sa = sorted a and sb = sorted b in
    let scalar_diff =
      if List.length sa <> List.length sb then
        Some
          (Printf.sprintf "final scalar count: %d vs %d" (List.length sa)
             (List.length sb))
      else
        List.find_map
          (fun ((na, va), (nb, vb)) ->
            if not (String.equal na nb) then
              Some (Printf.sprintf "final scalars: %s vs %s" na nb)
            else if not (equal_value va vb) then
              Some (Fmt.str "final scalar %s: %a vs %a" na pp_value va
                      pp_value vb)
            else None)
          (List.combine sa sb)
    in
    match scalar_diff with
    | Some _ as d -> d
    | None ->
      Option.map (Printf.sprintf "profile: %s")
        (diff_profiles a.profile b.profile))

(* --- profiling report for the Table 1.1 experiment --- *)

type loop_report = {
  lr_path : string;
  lr_trips : int;
  lr_cycles : int;
  lr_fraction : float;  (** of total program cycles *)
}

(** Per-loop execution-time shares, hottest first. *)
let loop_reports (r : result) : loop_report list =
  let total = max 1 r.profile.total_cycles in
  Hashtbl.fold
    (fun path (ls : loop_stats) acc ->
      { lr_path = path;
        lr_trips = ls.trips;
        lr_cycles = ls.cycles;
        lr_fraction = float_of_int ls.cycles /. float_of_int total }
      :: acc)
    r.profile.loops []
  |> List.sort (fun a b -> compare b.lr_cycles a.lr_cycles)
