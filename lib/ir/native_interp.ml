(* The native JIT interpreter tier (interp v3).

   [generate] lowers a program to OCaml source specialized to it —
   scalars in unboxed [int array]/[float array] cells, arrays in typed
   native arrays, ROM contents baked as literals, cycle/mem-ref profile
   charges folded into per-block constants, and every [Stuck] message
   baked as the exact string the reference interpreter would render.
   [prepare] compiles that source out-of-process with
   [ocamlfind ocamlopt -shared] against this library's own build
   artifacts, loads the resulting [.cmxs] with [Dynlink], and caches
   the bytes in the persistent artifact store (kind ["cmxs"]) so repeat
   traffic skips the compiler entirely.

   The tier contract is the one PR 3 established for [Fast_interp]:
   observationally bit-identical to [Interp] — outputs, final scalars,
   the complete cycle/trip/mem-ref profile, the exact [Interp.Stuck]
   strings and the same [Interp.Out_of_fuel] cutoff, in the same
   evaluation order.  Two observations make the 10x-class speedup
   legal:

   - the profile of a run is only observable when the run {e succeeds}
     (a [Stuck]/[Out_of_fuel] run returns no result), so cycle and
     mem-ref charges can be summed statically per straight-line block
     and attributed to one dense counter per static loop path, with
     the inclusive rollup done once at the end;
   - fuel, by contrast, {e orders} against [Stuck] raises, so it is
     decremented per statement — batched only across maximal runs of
     provably non-raising statements, where the only observable
     outcome of exhaustion is [Out_of_fuel] itself.

   A program the generator cannot statically type (the IR is
   dynamically typed; every well-formed benchmark kernel and every
   transformed version types fine) — or any toolchain, compile, or
   load failure — surfaces as [Error reason] from [prepare], and the
   dispatch helpers degrade to the fast tier: never a crash, never a
   wrong answer.  The [jit.compile] fault site and instrumentation
   span cover the compile pipeline. *)

open Types
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Store = Uas_runtime.Store
module Build_info = Uas_runtime.Build_info

let codegen_version = 1
let store_kind = "cmxs"
let fault_site = "jit.compile"
let objs_env_var = "UAS_JIT_OBJS"

(* ---------- static typing ---------- *)

(* The static type of a generated expression.  [SBot] marks code whose
   evaluation always raises (an undeclared name, a statically
   guaranteed type error): its generated form ends in a polymorphic
   raise helper, so it embeds at any type and everything sequenced
   after it is dead. *)
type sty = SInt | SFloat | SBot

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt
let sty_of_ty = function Tint -> SInt | Tfloat -> SFloat

(* ---------- program layout ---------- *)

(* One storage cell per scalar name, mirroring the reference
   interpreter's environment: declared scalars (a duplicate
   declaration shares the cell, which is only faithful when the
   declared types agree — otherwise we refuse) followed by undeclared
   loop indices, which become readable only once their loop has run
   and so carry a definedness flag. *)
type cell = {
  cl_ty : ty;
  cl_idx : int;  (* index into _si (Tint) or _sf (Tfloat) *)
  cl_declared : bool;
  cl_def : int;  (* definedness-flag index; -1 for declared cells *)
}

type layout = {
  cells : (var, cell) Hashtbl.t;
  decl_order : var list;  (* declared names, first occurrence only *)
  n_int : int;
  n_float : int;
  n_def : int;
  arrs : Stmt.array_decl array;
  arr_of_name : (array_id, int) Hashtbl.t;  (* name -> last decl index *)
  roms : Stmt.rom_decl array;
  rom_of_name : (rom_id, int) Hashtbl.t;
  (* static loop tree: ids are 1-based, 0 is the root charge counter;
     two loops with the same path share the reference interpreter's
     stats entry, so they share an id *)
  loop_ids : (string, int) Hashtbl.t;  (* path -> id *)
  mutable loop_meta : (int * string) list;  (* (parent id, path), rev by id *)
  mutable n_loops : int;
  mutable tmp : int;
}

let build_layout (p : Stmt.program) : layout =
  let cells = Hashtbl.create 32 in
  let decl_order = ref [] in
  let n_int = ref 0 and n_float = ref 0 and n_def = ref 0 in
  List.iter
    (fun (v, t) ->
      match Hashtbl.find_opt cells v with
      | Some c ->
        if not (equal_ty c.cl_ty t) then
          unsupported "scalar %s declared with two conflicting types" v
      | None ->
        let counter = match t with Tint -> n_int | Tfloat -> n_float in
        Stdlib.incr counter;
        Hashtbl.replace cells v
          { cl_ty = t; cl_idx = !counter - 1; cl_declared = true; cl_def = -1 };
        decl_order := v :: !decl_order)
    (Stmt.scalar_decls p);
  (* undeclared loop indices (the reference interpreter materializes
     them on loop entry, always as integers) *)
  Stmt.fold_list
    (fun () s ->
      match s with
      | Stmt.For l -> (
        match Hashtbl.find_opt cells l.index with
        | Some c ->
          if not (equal_ty c.cl_ty Tint) then
            unsupported "loop index %s is declared as a float" l.index
        | None ->
          Stdlib.incr n_int;
          Stdlib.incr n_def;
          Hashtbl.replace cells l.index
            { cl_ty = Tint;
              cl_idx = !n_int - 1;
              cl_declared = false;
              cl_def = !n_def - 1 })
      | _ -> ())
    () p.body;
  let arr_of_name = Hashtbl.create 8 in
  List.iteri
    (fun i (d : Stmt.array_decl) -> Hashtbl.replace arr_of_name d.a_name i)
    p.arrays;
  let rom_of_name = Hashtbl.create 8 in
  List.iteri
    (fun i (r : Stmt.rom_decl) -> Hashtbl.replace rom_of_name r.r_name i)
    p.roms;
  let lay =
    { cells;
      decl_order = List.rev !decl_order;
      n_int = !n_int;
      n_float = !n_float;
      n_def = !n_def;
      arrs = Array.of_list p.arrays;
      arr_of_name;
      roms = Array.of_list p.roms;
      rom_of_name;
      loop_ids = Hashtbl.create 8;
      loop_meta = [];
      n_loops = 0;
      tmp = 0 }
  in
  let rec walk parent path stmts =
    List.iter
      (fun s ->
        match s with
        | Stmt.For l ->
          let lpath = path ^ "/" ^ l.index in
          let id =
            match Hashtbl.find_opt lay.loop_ids lpath with
            | Some id -> id
            | None ->
              lay.n_loops <- lay.n_loops + 1;
              Hashtbl.replace lay.loop_ids lpath lay.n_loops;
              lay.loop_meta <- (parent, lpath) :: lay.loop_meta;
              lay.n_loops
          in
          walk id lpath l.body
        | Stmt.If (_, t, e) ->
          walk parent path t;
          walk parent path e
        | Stmt.Assign _ | Stmt.Store _ -> ())
      stmts
  in
  walk 0 "" p.body;
  lay

let fresh lay =
  lay.tmp <- lay.tmp + 1;
  Printf.sprintf "_t%d" lay.tmp

(* ---------- static profile accounting ---------- *)

let op_cost (k : Opinfo.op_kind) = max 1 (Opinfo.default_delay k)

let rec expr_cycles (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Float _ | Expr.Var _ -> 0
  | Expr.Load (_, i) -> expr_cycles i + op_cost Opinfo.Op_load
  | Expr.Rom (_, i) -> expr_cycles i + op_cost Opinfo.Op_rom
  | Expr.Unop (o, x) -> expr_cycles x + op_cost (Opinfo.Op_unop o)
  | Expr.Binop (o, l, r) ->
    expr_cycles l + expr_cycles r + op_cost (Opinfo.Op_binop o)
  | Expr.Select (c, t, f) ->
    expr_cycles c + expr_cycles t + expr_cycles f + op_cost Opinfo.Op_select

(* charges at this block level only: branch and loop bodies flush
   into their own counters *)
let stmt_cycles (s : Stmt.t) =
  match s with
  | Stmt.Assign (_, e) -> expr_cycles e + op_cost Opinfo.Op_move
  | Stmt.Store (_, i, e) ->
    expr_cycles i + expr_cycles e + op_cost Opinfo.Op_store
  | Stmt.If (c, _, _) -> expr_cycles c + 1
  | Stmt.For l -> expr_cycles l.lo + expr_cycles l.hi

let stmt_mems (s : Stmt.t) =
  match s with
  | Stmt.Assign (_, e) -> Expr.load_count e
  | Stmt.Store (_, i, e) -> Expr.load_count i + Expr.load_count e + 1
  | Stmt.If (c, _, _) -> Expr.load_count c
  | Stmt.For l -> Expr.load_count l.lo + Expr.load_count l.hi

(* ---------- operator tables ---------- *)

let binop_ctor = function
  | Add -> "Add" | Sub -> "Sub" | Mul -> "Mul" | Div -> "Div" | Mod -> "Mod"
  | BAnd -> "BAnd" | BOr -> "BOr" | BXor -> "BXor" | Shl -> "Shl" | Shr -> "Shr"
  | Lt -> "Lt" | Le -> "Le" | Gt -> "Gt" | Ge -> "Ge" | Eq -> "Eq" | Ne -> "Ne"
  | Fadd -> "Fadd" | Fsub -> "Fsub" | Fmul -> "Fmul" | Fdiv -> "Fdiv"
  | Fcmp_lt -> "Fcmp_lt" | Fcmp_le -> "Fcmp_le"

let unop_ctor = function
  | Neg -> "Neg" | BNot -> "BNot" | Fneg -> "Fneg" | I2f -> "I2f" | F2i -> "F2i"

let binop_sig = function
  | Add | Sub | Mul | Div | Mod | BAnd | BOr | BXor | Shl | Shr | Lt | Le | Gt
  | Ge | Eq | Ne ->
    (Tint, Tint, Tint)
  | Fadd | Fsub | Fmul | Fdiv -> (Tfloat, Tfloat, Tfloat)
  | Fcmp_lt | Fcmp_le -> (Tfloat, Tfloat, Tint)

let unop_sig = function
  | Neg | BNot -> (Tint, Tint)
  | Fneg -> (Tfloat, Tfloat)
  | I2f -> (Tint, Tfloat)
  | F2i -> (Tfloat, Tint)

(* ---------- expression generation ---------- *)

type gexpr = { g_ty : sty; g_code : string; g_raises : bool }

let scal_arr (c : cell) = match c.cl_ty with Tint -> "_si" | Tfloat -> "_sf"

(* a bound operand rendered as a boxed [value] — cold error paths
   only, handing [Expr.eval_binop] the operands its messages embed *)
let boxed t v =
  match t with
  | SInt -> Printf.sprintf "(VInt %s)" v
  | SFloat -> Printf.sprintf "(VFloat %s)" v
  | SBot -> assert false

let rec gen_expr lay (e : Expr.t) : gexpr =
  match e with
  | Expr.Int n ->
    { g_ty = SInt; g_code = Printf.sprintf "(%d)" n; g_raises = false }
  | Expr.Float f ->
    (* exact bit pattern, immune to literal round-tripping *)
    { g_ty = SFloat;
      g_code =
        Printf.sprintf "(Int64.float_of_bits 0x%LxL)" (Int64.bits_of_float f);
      g_raises = false }
  | Expr.Var x -> (
    match Hashtbl.find_opt lay.cells x with
    | None ->
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(_stuck %S)" ("read of undeclared scalar " ^ x);
        g_raises = true }
    | Some c when c.cl_declared ->
      { g_ty = sty_of_ty c.cl_ty;
        g_code =
          Printf.sprintf "(Array.unsafe_get %s %d)" (scal_arr c) c.cl_idx;
        g_raises = false }
    | Some c ->
      (* an undeclared loop index: readable only once its loop ran *)
      { g_ty = SInt;
        g_code =
          Printf.sprintf
            "(if Array.unsafe_get _def %d then Array.unsafe_get _si %d else \
             _stuck %S)"
            c.cl_def c.cl_idx
            ("read of undeclared scalar " ^ x);
        g_raises = true })
  | Expr.Load (a, i) -> (
    let gi = gen_int lay i in
    match Hashtbl.find_opt lay.arr_of_name a with
    | None ->
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(let _ = %s in _stuck %S)" gi.g_code
            ("load from undeclared array " ^ a);
        g_raises = true }
    | Some k ->
      let d = lay.arrs.(k) in
      let t = fresh lay in
      { g_ty = sty_of_ty d.a_ty;
        g_code =
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s >= %d then _stuck (Printf.sprintf \
             %S %S %s %d) else Array.unsafe_get _a%d %s)"
            t gi.g_code t t d.a_size "load %s[%d] out of bounds (size %d)"
            d.a_name t d.a_size k t;
        g_raises = true })
  | Expr.Rom (r, i) -> (
    let gi = gen_int lay i in
    match Hashtbl.find_opt lay.rom_of_name r with
    | None ->
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(let _ = %s in _stuck %S)" gi.g_code
            ("lookup in undeclared rom " ^ r);
        g_raises = true }
    | Some k ->
      let size = Array.length lay.roms.(k).r_data in
      let t = fresh lay in
      { g_ty = SInt;
        g_code =
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s >= %d then _stuck (Printf.sprintf \
             %S %S %s %d) else Array.unsafe_get _rom%d %s)"
            t gi.g_code t t size "rom lookup %s(%d) out of bounds (size %d)"
            lay.roms.(k).r_name t size k t;
        g_raises = true })
  | Expr.Unop (o, x) -> (
    let gx = gen_expr lay x in
    let targ, tres = unop_sig o in
    match gx.g_ty with
    | SBot -> gx
    | t when t = sty_of_ty targ ->
      let a = fresh lay in
      let body =
        match o with
        | Neg -> Printf.sprintf "(- %s)" a
        | BNot -> Printf.sprintf "(lnot %s)" a
        | Fneg -> Printf.sprintf "(-. %s)" a
        | I2f -> Printf.sprintf "(float_of_int %s)" a
        | F2i -> Printf.sprintf "(int_of_float %s)" a
      in
      { g_ty = sty_of_ty tres;
        g_code = Printf.sprintf "(let %s = %s in %s)" a gx.g_code body;
        g_raises = gx.g_raises }
    | t ->
      (* statically guaranteed type error: let the reference
         evaluator render it *)
      let a = fresh lay in
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(let %s = %s in _uu %s %s)" a gx.g_code (unop_ctor o)
            (boxed t a);
        g_raises = true })
  | Expr.Binop (o, l, r) -> (
    let gl = gen_expr lay l in
    let gr = gen_expr lay r in
    let tl, tr, tres = binop_sig o in
    match (gl.g_ty, gr.g_ty) with
    | SBot, _ | _, SBot ->
      (* left operand evaluates (and raises) first, as in the
         reference; the other side is dead but well-typed *)
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(let _ = %s in let _ = %s in _unreachable ())"
            gl.g_code gr.g_code;
        g_raises = true }
    | tl', tr' when tl' = sty_of_ty tl && tr' = sty_of_ty tr ->
      let a = fresh lay and b = fresh lay in
      let body, guarded =
        match o with
        | Add -> (Printf.sprintf "(%s + %s)" a b, false)
        | Sub -> (Printf.sprintf "(%s - %s)" a b, false)
        | Mul -> (Printf.sprintf "(%s * %s)" a b, false)
        | Div ->
          ( Printf.sprintf
              "(if %s = 0 then _ub Div (VInt %s) (VInt %s) else %s / %s)" b a b
              a b,
            true )
        | Mod ->
          ( Printf.sprintf
              "(if %s = 0 then _ub Mod (VInt %s) (VInt %s) else %s mod %s)" b a
              b a b,
            true )
        | BAnd -> (Printf.sprintf "(%s land %s)" a b, false)
        | BOr -> (Printf.sprintf "(%s lor %s)" a b, false)
        | BXor -> (Printf.sprintf "(%s lxor %s)" a b, false)
        | Shl ->
          ( Printf.sprintf
              "(if %s < 0 || %s > 62 then _ub Shl (VInt %s) (VInt %s) else %s \
               lsl %s)"
              b b a b a b,
            true )
        | Shr ->
          ( Printf.sprintf
              "(if %s < 0 || %s > 62 then _ub Shr (VInt %s) (VInt %s) else %s \
               asr %s)"
              b b a b a b,
            true )
        | Lt -> (Printf.sprintf "(if %s < %s then 1 else 0)" a b, false)
        | Le -> (Printf.sprintf "(if %s <= %s then 1 else 0)" a b, false)
        | Gt -> (Printf.sprintf "(if %s > %s then 1 else 0)" a b, false)
        | Ge -> (Printf.sprintf "(if %s >= %s then 1 else 0)" a b, false)
        | Eq -> (Printf.sprintf "(if %s = %s then 1 else 0)" a b, false)
        | Ne -> (Printf.sprintf "(if %s <> %s then 1 else 0)" a b, false)
        | Fadd -> (Printf.sprintf "(%s +. %s)" a b, false)
        | Fsub -> (Printf.sprintf "(%s -. %s)" a b, false)
        | Fmul -> (Printf.sprintf "(%s *. %s)" a b, false)
        | Fdiv -> (Printf.sprintf "(%s /. %s)" a b, false)
        | Fcmp_lt -> (Printf.sprintf "(if %s < %s then 1 else 0)" a b, false)
        | Fcmp_le -> (Printf.sprintf "(if %s <= %s then 1 else 0)" a b, false)
      in
      { g_ty = sty_of_ty tres;
        g_code =
          Printf.sprintf "(let %s = %s in let %s = %s in %s)" a gl.g_code b
            gr.g_code body;
        g_raises = gl.g_raises || gr.g_raises || guarded }
    | tl', tr' ->
      (* statically guaranteed operand type error *)
      let a = fresh lay and b = fresh lay in
      { g_ty = SBot;
        g_code =
          Printf.sprintf "(let %s = %s in let %s = %s in _ub %s %s %s)" a
            gl.g_code b gr.g_code (binop_ctor o) (boxed tl' a) (boxed tr' b);
        g_raises = true })
  | Expr.Select (c, t, f) -> (
    let gc = gen_int lay c in
    match gc.g_ty with
    | SBot -> gc
    | _ -> (
      let gt = gen_expr lay t in
      let gf = gen_expr lay f in
      match (gt.g_ty, gf.g_ty) with
      | SBot, _ ->
        { g_ty = SBot;
          g_code = Printf.sprintf "(let _ = %s in %s)" gc.g_code gt.g_code;
          g_raises = true }
      | _, SBot ->
        { g_ty = SBot;
          g_code =
            Printf.sprintf "(let _ = %s in let _ = %s in %s)" gc.g_code
              gt.g_code gf.g_code;
          g_raises = true }
      | a, b when a = b ->
        let vc = fresh lay and va = fresh lay and vb = fresh lay in
        { g_ty = a;
          g_code =
            Printf.sprintf
              "(let %s = %s in let %s = %s in let %s = %s in if %s <> 0 then \
               %s else %s)"
              vc gc.g_code va gt.g_code vb gf.g_code vc va vb;
          g_raises = gc.g_raises || gt.g_raises || gf.g_raises }
      | _ -> unsupported "select arms with two different static types"))

(* an expression in the reference interpreter's [eval_int] position:
   a float result is a baked Stuck over the printed expression *)
and gen_int lay (e : Expr.t) : gexpr =
  let g = gen_expr lay e in
  match g.g_ty with
  | SInt | SBot -> g
  | SFloat ->
    { g_ty = SBot;
      g_code =
        Printf.sprintf "(let _ = %s in _stuck %S)" g.g_code
          ("expected an integer value for " ^ Pp.expr_to_string e);
      g_raises = true }

(* ---------- statement generation ---------- *)

(* returns the statement's code (a unit expression, fuel burn NOT
   included — the enclosing block batches burns) and whether it is
   "quiet": provably unable to raise, hence batchable *)
let rec gen_stmt lay ~lid ~path (s : Stmt.t) : string * bool =
  match s with
  | Stmt.Assign (x, e) -> (
    let ge = gen_expr lay e in
    match Hashtbl.find_opt lay.cells x with
    | None ->
      ( Printf.sprintf "(let _ = %s in _stuck %S)" ge.g_code
          ("assignment to undeclared scalar " ^ x),
        false )
    | Some c when c.cl_declared -> (
      match ge.g_ty with
      | SBot -> (Printf.sprintf "(let _ = %s in ())" ge.g_code, false)
      | t when t = sty_of_ty c.cl_ty ->
        ( Printf.sprintf "(Array.unsafe_set %s %d %s)" (scal_arr c) c.cl_idx
            ge.g_code,
          not ge.g_raises )
      | _ -> unsupported "assignment of a statically mismatched type to %s" x)
    | Some c -> (
      (* undeclared loop index: assignable only once its loop ran *)
      match ge.g_ty with
      | SBot -> (Printf.sprintf "(let _ = %s in ())" ge.g_code, false)
      | SInt ->
        let t = fresh lay in
        ( Printf.sprintf
            "(let %s = %s in if Array.unsafe_get _def %d then Array.unsafe_set \
             _si %d %s else _stuck %S)"
            t ge.g_code c.cl_def c.cl_idx t
            ("assignment to undeclared scalar " ^ x),
          false )
      | SFloat ->
        unsupported "assignment of a float to the undeclared loop index %s" x))
  | Stmt.Store (a, i, e) -> (
    let gi = gen_int lay i in
    let ge = gen_expr lay e in
    match Hashtbl.find_opt lay.arr_of_name a with
    | None ->
      ( Printf.sprintf "(let _ = %s in let _ = %s in _stuck %S)" gi.g_code
          ge.g_code
          ("store to undeclared array " ^ a),
        false )
    | Some k ->
      let d = lay.arrs.(k) in
      (match ge.g_ty with
      | SBot -> ()
      | t when t = sty_of_ty d.a_ty -> ()
      | _ ->
        unsupported "store of a statically mismatched element type to %s" a);
      let ti = fresh lay and tv = fresh lay in
      ( Printf.sprintf
          "(let %s = %s in let %s = %s in if %s < 0 || %s >= %d then _stuck \
           (Printf.sprintf %S %S %s %d) else Array.unsafe_set _a%d %s %s)"
          ti gi.g_code tv ge.g_code ti ti d.a_size
          "store %s[%d] out of bounds (size %d)" d.a_name ti d.a_size k ti tv,
        false ))
  | Stmt.If (c, bt, bf) -> (
    let gc = gen_int lay c in
    match gc.g_ty with
    | SBot -> (Printf.sprintf "(let _ = %s in ())" gc.g_code, false)
    | _ ->
      let t = fresh lay in
      let ct = gen_block lay ~lid ~path bt in
      let cf = gen_block lay ~lid ~path bf in
      ( Printf.sprintf "(let %s = %s in if %s <> 0 then %s else %s)" t gc.g_code
          t ct cf,
        false ))
  | Stmt.For l -> (
    let glo = gen_int lay l.lo in
    let ghi = gen_int lay l.hi in
    match (glo.g_ty, ghi.g_ty) with
    | SBot, _ -> (Printf.sprintf "(let _ = %s in ())" glo.g_code, false)
    | _, SBot ->
      ( Printf.sprintf "(let _ = %s in let _ = %s in ())" glo.g_code ghi.g_code,
        false )
    | _ ->
      let c = Hashtbl.find lay.cells l.index in
      let lpath = path ^ "/" ^ l.index in
      let id = Hashtbl.find lay.loop_ids lpath in
      let lo = fresh lay and hi = fresh lay and n = fresh lay in
      lay.tmp <- lay.tmp + 1;
      let fn = Printf.sprintf "_loop%d" lay.tmp in
      let iv = Printf.sprintf "_i%d" lay.tmp in
      let body = gen_block lay ~lid:id ~path:lpath l.body in
      let set_def =
        if c.cl_declared then ""
        else Printf.sprintf " Array.unsafe_set _def %d true;" c.cl_def
      in
      (* trips are batched post-loop (unobservable unless the run
         succeeds); the index keeps its exit value, like a C loop *)
      ( Printf.sprintf
          "(let %s = %s in\n\
           let %s = %s in\n\
           _entered.(%d) <- true;%s\n\
           let rec %s %s =\n\
           if %s < %s then (Array.unsafe_set _si %d %s;\n\
           %s;\n\
           %s (%s + %d)) in\n\
           %s %s;\n\
           let %s = if %s <= %s then 0 else (%s - %s + %d) / %d in\n\
           _trips.(%d) <- _trips.(%d) + %s;\n\
           Array.unsafe_set _si %d (if %s = 0 then %s else %s + %s * %d))"
          lo glo.g_code hi ghi.g_code id set_def fn iv iv hi c.cl_idx iv body fn
          iv l.step fn lo n hi lo hi lo (l.step - 1) l.step id id n c.cl_idx n
          lo lo n l.step,
        false ))

and gen_block lay ~lid ~path (stmts : Stmt.t list) : string =
  let cycles = List.fold_left (fun a s -> a + stmt_cycles s) 0 stmts in
  let mems = List.fold_left (fun a s -> a + stmt_mems s) 0 stmts in
  let parts = ref [] (* reverse order *) in
  let pending = ref [] (* quiet statements awaiting a burn, reversed *) in
  let npend = ref 0 in
  let burn k =
    parts :=
      Printf.sprintf
        "(if !_fuel < %d then raise Interp.Out_of_fuel; _fuel := !_fuel - %d)" k
        k
      :: !parts
  in
  List.iter
    (fun s ->
      let code, quiet = gen_stmt lay ~lid ~path s in
      if quiet then (
        pending := code :: !pending;
        Stdlib.incr npend)
      else (
        (* fold this statement's own burn into the pending quiet run:
           none of the preceding statements can raise, so the only
           observable outcome of batched exhaustion is the same
           Out_of_fuel the reference would raise *)
        burn (!npend + 1);
        parts := !pending @ !parts;
        pending := [];
        npend := 0;
        parts := code :: !parts))
    stmts;
  if !npend > 0 then (
    burn !npend;
    parts := !pending @ !parts);
  if cycles > 0 then
    parts :=
      Printf.sprintf "_own.(%d) <- _own.(%d) + %d" lid lid cycles :: !parts;
  if mems > 0 then parts := Printf.sprintf "_mr := !_mr + %d" mems :: !parts;
  match !parts with
  | [] -> "()"
  | ps -> "(" ^ String.concat ";\n" (List.rev ps) ^ ")"

(* ---------- module assembly ---------- *)

let generate_source (p : Stmt.program) : string =
  let lay = build_layout p in
  let body = gen_block lay ~lid:0 ~path:"" p.body in
  let b = Buffer.create 8192 in
  let pf fmt = Printf.bprintf b fmt in
  pf "(* generated by Uas_ir.Native_interp codegen v%d for %S — do not edit *)\n"
    codegen_version p.prog_name;
  pf "open Uas_ir\n";
  pf "open Types\n\n";
  pf "let _stuck s = raise (Interp.Stuck s)\n";
  pf "let _unreachable () = assert false\n";
  pf
    "let _ub o a b = try ignore (Expr.eval_binop o a b); assert false with \
     Ir_error m -> raise (Interp.Stuck m)\n";
  pf
    "let _uu o a = try ignore (Expr.eval_unop o a); assert false with Ir_error \
     m -> raise (Interp.Stuck m)\n\n";
  Array.iteri
    (fun k (r : Stmt.rom_decl) ->
      pf "let _rom%d = [|" k;
      Array.iter (fun v -> pf " %d;" v) r.r_data;
      pf " |]\n")
    lay.roms;
  pf "\nlet run (w : Interp.workload) ~fuel : Interp.result =\n";
  pf "  let _fuel = ref fuel in\n";
  pf "  let _mr = ref 0 in\n";
  pf "  let _own = Array.make %d 0 in\n" (lay.n_loops + 1);
  pf "  let _entered = Array.make %d false in\n" (lay.n_loops + 1);
  pf "  let _trips = Array.make %d 0 in\n" (lay.n_loops + 1);
  pf "  let _si = Array.make %d 0 in\n" (max 1 lay.n_int);
  pf "  let _sf = Array.make %d 0.0 in\n" (max 1 lay.n_float);
  pf "  let _def = Array.make %d false in\n" (max 1 lay.n_def);
  (* workload scalars, mirroring Interp.init_state: each entry is
     checked against the first declaration of its name (the layout
     refuses conflicting duplicates, so cell type = first-decl type)
     and undeclared names are rejected *)
  pf "  List.iter\n";
  pf "    (fun ((_k : string), (_v : value)) ->\n";
  pf "      match _k with\n";
  List.iter
    (fun v ->
      let c = Hashtbl.find lay.cells v in
      match c.cl_ty with
      | Tint ->
        pf
          "      | %S -> (match _v with VInt _x -> Array.unsafe_set _si %d _x \
           | VFloat _ -> _stuck %S)\n"
          v c.cl_idx
          ("workload sets " ^ v ^ " with wrong-typed value")
      | Tfloat ->
        pf
          "      | %S -> (match _v with VFloat _x -> Array.unsafe_set _sf %d \
           _x | VInt _ -> _stuck %S)\n"
          v c.cl_idx
          ("workload sets " ^ v ^ " with wrong-typed value"))
    lay.decl_order;
  pf "      | _ -> _stuck (\"workload sets undeclared scalar \" ^ _k))\n";
  pf "    w.Interp.w_scalars;\n";
  (* arrays, in declaration order (a duplicate name runs every
     declaration's workload checks; the last declaration's storage
     wins, which is what arr_of_name indexes) *)
  Array.iteri
    (fun k (d : Stmt.array_decl) ->
      let zero = match d.a_ty with Tint -> "0" | Tfloat -> "0.0" in
      match d.a_kind with
      | Stmt.Input ->
        pf "  let _a%d =\n" k;
        pf "    (match List.assoc_opt %S w.Interp.w_arrays with\n" d.a_name;
        pf "     | Some _data ->\n";
        pf "       if Array.length _data <> %d then\n" d.a_size;
        pf "         _stuck (Printf.sprintf %S %S (Array.length _data) %d);\n"
          "workload array %s has length %d, declared %d" d.a_name d.a_size;
        (match d.a_ty with
        | Tint ->
          pf
            "       Array.map (function VInt _x -> _x | VFloat _ -> _stuck %S) \
             _data\n"
            ("workload array " ^ d.a_name ^ " has wrong-typed element")
        | Tfloat ->
          pf
            "       Array.map (function VFloat _x -> _x | VInt _ -> _stuck %S) \
             _data\n"
            ("workload array " ^ d.a_name ^ " has wrong-typed element"));
        pf "     | None -> Array.make %d %s)\n" d.a_size zero;
        pf "  in\n"
      | Stmt.Output | Stmt.Local ->
        pf "  let _a%d = Array.make %d %s in\n" k d.a_size zero)
    lay.arrs;
  pf "  %s;\n" body;
  (* profile assembly: own-counter rollup into inclusive cycles.
     Loop ids are assigned parent-before-child, so a descending sweep
     adds every subtree into its parent exactly once. *)
  pf
    "  let _loops : (string, Interp.loop_stats) Hashtbl.t = Hashtbl.create %d \
     in\n"
    (max 1 lay.n_loops);
  pf "  let _incl = Array.copy _own in\n";
  let meta = Array.of_list (List.rev lay.loop_meta) (* index id-1 *) in
  for id = lay.n_loops downto 1 do
    let parent, _ = meta.(id - 1) in
    pf "  _incl.(%d) <- _incl.(%d) + _incl.(%d);\n" parent parent id
  done;
  Array.iteri
    (fun i (_, lpath) ->
      let id = i + 1 in
      pf
        "  if _entered.(%d) then Hashtbl.replace _loops %S { Interp.trips = \
         _trips.(%d); cycles = _incl.(%d) };\n"
        id lpath id id)
    meta;
  pf "  ignore _incl;\n";
  pf "  { Interp.outputs =\n";
  pf "      [";
  Array.iter
    (fun (d : Stmt.array_decl) ->
      match d.a_kind with
      | Stmt.Output ->
        let k = Hashtbl.find lay.arr_of_name d.a_name in
        let ctor =
          match lay.arrs.(k).a_ty with Tint -> "VInt" | Tfloat -> "VFloat"
        in
        pf " (%S, Array.map (fun _x -> %s _x) _a%d);\n       " d.a_name ctor k
      | Stmt.Input | Stmt.Local -> ())
    lay.arrs;
  pf "];\n";
  pf "    final_scalars =\n";
  pf "      [";
  List.iter
    (fun (v, _) ->
      let c = Hashtbl.find lay.cells v in
      match c.cl_ty with
      | Tint -> pf " (%S, VInt (Array.unsafe_get _si %d));\n       " v c.cl_idx
      | Tfloat ->
        pf " (%S, VFloat (Array.unsafe_get _sf %d));\n       " v c.cl_idx)
    (Stmt.scalar_decls p);
  pf "];\n";
  pf "    profile =\n";
  pf "      { Interp.total_cycles = Array.fold_left ( + ) 0 _own;\n";
  pf "        stmts_executed = fuel - !_fuel;\n";
  pf "        mem_refs = !_mr;\n";
  pf "        loops = _loops } }\n\n";
  pf "let () = Native_interp.register run\n";
  Buffer.contents b

let generate (p : Stmt.program) : (string, string) result =
  match generate_source p with
  | src -> Ok src
  | exception Unsupported m -> Error m

(* ---------- out-of-process compilation + Dynlink ---------- *)

type run_fn = Interp.workload -> fuel:int -> Interp.result

(* handoff slot a freshly loaded module registers itself through;
   guarded by [jit_mutex] *)
let registered : run_fn option ref = ref None
let register f = registered := Some f

type compiled = {
  nc_program : Stmt.program;
  nc_run : run_fn;
  nc_from_store : bool;
}

let program nc = nc.nc_program
let from_store nc = nc.nc_from_store
let jit_mutex = Mutex.create ()

(* canonical text -> prepared result (successes and refusals both);
   used under [jit_mutex], cleared by [clear_memo] *)
let memo : (string, (compiled, string) result) Hashtbl.t = Hashtbl.create 16

(* store key -> loaded kernel.  Never cleared: a native module cannot
   be unloaded, and Dynlink refuses a second module of the same name —
   so after a memo reset the linked code must be reused, not reloaded. *)
let loaded : (string, run_fn) Hashtbl.t = Hashtbl.create 16

let clear_memo () = Mutex.protect jit_mutex (fun () -> Hashtbl.reset memo)
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let objs_probe root =
  List.fold_left Filename.concat root
    [ "lib"; "ir"; ".uas_ir.objs"; "byte"; "uas_ir.cmi" ]

(* Locate the dune build root holding uas_ir's compiled interfaces:
   UAS_JIT_OBJS if set, else walk up from the running executable
   (dune places binaries under _build/default/...). *)
let find_build_root () =
  match Sys.getenv_opt objs_env_var with
  | Some d ->
    if Sys.file_exists (objs_probe d) then Ok d
    else
      Error
        (Printf.sprintf "%s=%s does not contain the uas_ir build objects"
           objs_env_var d)
  | None ->
    let start =
      let exe = Sys.executable_name in
      let exe =
        if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
        else exe
      in
      Filename.dirname exe
    in
    let rec up d n =
      if Sys.file_exists (objs_probe d) then Ok d
      else
        let parent = Filename.dirname d in
        if n >= 12 || String.equal parent d then
          Error
            (Printf.sprintf
               "cannot locate the uas_ir build objects (set %s to the dune \
                _build/default root)"
               objs_env_var)
        else up parent (n + 1)
    in
    up start 0

let summarize_log path =
  match read_file path with
  | exception Sys_error _ -> None
  | s ->
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
    in
    let pick =
      match
        List.find_opt
          (fun l ->
            let l = String.trim l in
            String.length l >= 5 && String.equal (String.sub l 0 5) "Error")
          lines
      with
      | Some _ as l -> l
      | None -> ( match lines with [] -> None | l :: _ -> Some l)
    in
    Option.map
      (fun l ->
        let l = String.trim l in
        if String.length l > 240 then String.sub l 0 240 ^ "..." else l)
      pick

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let fresh_temp_dir () =
  let anchor = Filename.temp_file "uas-jit" "" in
  let dir = anchor ^ ".d" in
  Sys.mkdir dir 0o700;
  (anchor, dir)

let cleanup_temp (anchor, dir) =
  (try
     Array.iter (fun f -> remove_quiet (Filename.concat dir f)) (Sys.readdir dir)
   with Sys_error _ -> ());
  (try Sys.rmdir dir with Sys_error _ -> ());
  remove_quiet anchor

(* one ocamlfind-ocamlopt subprocess; returns the .cmxs bytes *)
let compile_source ~build_root ~modname src : (string, string) result =
  let tmp = fresh_temp_dir () in
  Fun.protect ~finally:(fun () -> cleanup_temp tmp) @@ fun () ->
  let _, dir = tmp in
  let ml = Filename.concat dir (modname ^ ".ml") in
  let cmxs = Filename.concat dir (modname ^ ".cmxs") in
  let log = Filename.concat dir "ocamlopt.log" in
  write_file ml src;
  let objs sub =
    Filename.concat build_root
      (List.fold_left Filename.concat "lib" [ "ir"; ".uas_ir.objs"; sub ])
  in
  let cmd =
    Printf.sprintf "%s ocamlopt %s -I %s -I %s -o %s %s > %s 2>&1"
      (Filename.quote (Build_info.jit_ocamlfind ()))
      Build_info.jit_compile_flags
      (Filename.quote (objs "byte"))
      (Filename.quote (objs "native"))
      (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then
    Error
      (Printf.sprintf "ocamlopt failed (exit %d)%s" rc
         (match summarize_log log with Some l -> ": " ^ l | None -> ""))
  else
    match read_file cmxs with
    | bytes -> Ok bytes
    | exception Sys_error m -> Error ("cannot read compiled module: " ^ m)

(* load a .cmxs and collect the kernel it registers; caller holds
   [jit_mutex] *)
let load_cmxs_bytes ~key bytes : (run_fn, string) result =
  match Hashtbl.find_opt loaded key with
  | Some f -> Ok f
  | None -> (
    let tmp = Filename.temp_file "uas-jit-load" ".cmxs" in
    Fun.protect ~finally:(fun () -> remove_quiet tmp) @@ fun () ->
    write_file tmp bytes;
    registered := None;
    match Dynlink.loadfile_private tmp with
    | () -> (
      match !registered with
      | Some f ->
        registered := None;
        Hashtbl.replace loaded key f;
        Ok f
      | None -> Error "loaded module did not register a kernel")
    | exception Dynlink.Error e -> Error ("dynlink: " ^ Dynlink.error_message e)
    | exception e -> Error ("dynlink: " ^ Printexc.to_string e))

(* the jit.compile fault site, same spec grammar as the store/interp
   sites; Corrupt mangles the generated source so the compiler rejects
   it — degraded, never dead *)
let check_fault () : (bool, string) result =
  match Fault.hit fault_site with
  | None -> Ok false
  | Some Fault.Corrupt -> Ok true
  | Some Fault.Raise ->
    Error (Printf.sprintf "injected fault at %s (raise)" fault_site)
  | Some Fault.Stall -> (
    try Fault.stall ~site:fault_site ()
    with e when Fault.is_injected e ->
      Error (Printf.sprintf "injected fault at %s (stall)" fault_site))

let prepare_uncached ?on_store_bad ~text (p : Stmt.program) :
    (compiled, string) result =
  let store_bad msg = match on_store_bad with Some f -> f msg | None -> () in
  if not Dynlink.is_native then
    Error "host is a bytecode executable (Dynlink.is_native = false)"
  else
    match check_fault () with
    | Error m -> Error m
    | Ok corrupt -> (
      match find_build_root () with
      | Error m -> Error m
      | Ok build_root ->
        let fingerprint = Build_info.compiler_fingerprint () in
        let abi =
          match Digest.file (objs_probe build_root) with
          | d -> Digest.to_hex d
          | exception Sys_error _ -> "unknown"
        in
        let key =
          Store.key
            [ "uas-native-jit";
              Printf.sprintf "codegen=%d" codegen_version;
              "compiler=" ^ fingerprint;
              "abi=" ^ abi;
              text ]
        in
        let modname = "uas_jit_" ^ String.sub key 0 12 in
        let store = Store.installed () in
        let cached =
          (* under --cache-verify we always recompile: native compiler
             output is not bit-stable enough to byte-compare, so the
             cmxs kind opts out of verification rather than flagging
             false mismatches *)
          match store with
          | Some st when not (Store.verify_mode ()) -> (
            match Store.read st ~kind:store_kind ~key with
            | Store.Hit bytes ->
              Instrument.incr "jit.store-hit";
              Some bytes
            | Store.Miss ->
              Instrument.incr "jit.store-miss";
              None
            | Store.Bad msg ->
              Instrument.incr "jit.store-miss";
              store_bad msg;
              None)
          | _ -> None
        in
        let fresh_build () =
          match generate p with
          | Error m -> Error ("codegen: " ^ m)
          | Ok src -> (
            let src =
              if corrupt then src ^ "\nlet _ = @injected@corruption@\n" else src
            in
            match
              Instrument.span "jit.compile" (fun () ->
                  compile_source ~build_root ~modname src)
            with
            | Error m -> Error m
            | Ok bytes -> (
              (match store with
              | Some st -> (
                match Store.write st ~kind:store_kind ~key bytes with
                | Ok () -> ()
                | Error msg -> store_bad msg)
              | None -> ());
              match load_cmxs_bytes ~key bytes with
              | Ok f -> Ok { nc_program = p; nc_run = f; nc_from_store = false }
              | Error m -> Error m))
        in
        (match cached with
        | Some bytes -> (
          match load_cmxs_bytes ~key bytes with
          | Ok f -> Ok { nc_program = p; nc_run = f; nc_from_store = true }
          | Error _stale ->
            (* a cached .cmxs that no longer links (e.g. the host was
               rebuilt under the same fingerprint): rebuild fresh *)
            fresh_build ())
        | None -> fresh_build ()))

let prepare ?on_store_bad (p : Stmt.program) : (compiled, string) result =
  let text = Pp.program_to_string p in
  Mutex.protect jit_mutex @@ fun () ->
  match Hashtbl.find_opt memo text with
  | Some r ->
    Instrument.incr "jit.memo-hit";
    r
  | None ->
    let r = prepare_uncached ?on_store_bad ~text p in
    (match r with
    | Error _ -> Instrument.incr "jit.degraded"
    (* store-served loads count under jit.store-hit, not as compiles *)
    | Ok { nc_from_store = true; _ } -> ()
    | Ok _ -> Instrument.incr "jit.compile-ok");
    Hashtbl.replace memo text r;
    r

(* ---------- execution + tier dispatch ---------- *)

let run ?fuel nc w =
  let fuel = Option.value fuel ~default:Interp.default_fuel in
  nc.nc_run w ~fuel

(* prepare-or-degrade: callers that need the degradation *reason*
   (for incident footnotes) should call [prepare] themselves *)
let run_program ?fuel p w =
  match prepare p with
  | Ok nc -> run ?fuel nc w
  | Error _ -> Fast_interp.run_program ?fuel p w

(* the three-way dispatcher; [Fast_interp.run_tier] cannot see this
   tier (it would be a dependency cycle), so production paths route
   through this one *)
let run_tier ?fuel (t : Fast_interp.tier) p w =
  match t with
  | Fast_interp.Ref -> Interp.run ?fuel p w
  | Fast_interp.Fast -> Fast_interp.run_program ?fuel p w
  | Fast_interp.Native -> run_program ?fuel p w
