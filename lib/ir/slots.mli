(** Dense integer slot resolution for the fast interpreter tier.

    Maps every scalar, array and ROM name of a program to a dense
    integer slot so {!Fast_interp} can replace the reference
    interpreter's string-keyed hashtables with array indexing.

    Scalar slots list the declared scalars first (params then locals,
    declaration order), followed by loop indices used without a
    declaration — the reference interpreter admits those dynamically,
    so they need slots (guarded by a definedness flag) to reproduce its
    behavior exactly. *)

open Types

type t

val of_program : Stmt.program -> t

(** {2 Scalars} *)

val scalar_count : t -> int

(** Number of declared scalars; they occupy slots [0, declared_count). *)
val declared_count : t -> int

val scalar_slot : t -> var -> int option
val scalar_name : t -> int -> var

(** [true] for declared scalars; [false] for undeclared loop indices,
    which only enter the environment when their loop first executes. *)
val scalar_is_declared : t -> int -> bool

(** {2 Arrays (declaration order)} *)

val array_count : t -> int
val array_slot : t -> array_id -> int option
val array_name : t -> int -> array_id

(** {2 ROMs (declaration order)} *)

val rom_count : t -> int
val rom_slot : t -> rom_id -> int option
val rom_name : t -> int -> rom_id
