(** Array dependence analysis (§3.2, §4.2).  For an adjacent-pair view,
    index expressions are abstracted as affine forms in the two loop
    indices (plus symbolic invariants) and compared with ZIV /
    strong-SIV / GCD tests to bound the outer-loop dependence distance —
    the quantity the squash legality cases are stated over.  For a full
    depth-d nest the abstraction generalizes to one coefficient per
    level, yielding distance vectors and the interchange direction
    test. *)

open Uas_ir

type affine = {
  ci : int;  (** coefficient of the outer index *)
  cj : int;  (** coefficient of the inner index *)
  c0 : int;  (** constant part *)
  sym : (string * int) list;
      (** sorted additive loop-invariant symbols with coefficients *)
}

val affine_const : int -> affine
val pp_affine : affine Fmt.t

(** Affine form of an index expression in the pair's indices, chasing
    unique pre-header definitions; [None] when unrecognizable. *)
val affine_of : Loop_nest.pair -> Expr.t -> affine option

type outer_distance =
  | No_dependence  (** provably never conflict *)
  | Exact of int  (** conflicts only at this outer-iteration distance *)
  | Within of int * int  (** all conflicts within this inclusive range *)
  | Any  (** unknown / unbounded *)

val pp_outer_distance : outer_distance Fmt.t

type access = {
  acc_array : Types.array_id;
  acc_index : Expr.t;
  acc_is_write : bool;
  acc_in_inner : bool;  (** sits in the inner-loop body *)
}

(** Every array access of the pair, in program order. *)
val accesses : Loop_nest.pair -> access list

(** Outer dependence distance between two accesses, in outer
    iterations.  Reads-only pairs and different arrays are
    [No_dependence]. *)
val outer_distance : Loop_nest.pair -> access -> access -> outer_distance

(** All potentially dependent pairs (same array, at least one write),
    including a store's self-pair. *)
val all_pairs : Loop_nest.pair -> (access * access * outer_distance) list

(** {1 Depth-general forms} *)

type level_affine = {
  la_coeffs : int list;  (** per nest level, outermost first *)
  la_const : int;
  la_sym : (string * int) list;
}

val pp_level_affine : level_affine Fmt.t

(** Affine form of an index expression over all levels of a nest;
    conservative ([None]) when the expression reads any scalar defined
    inside the nest. *)
val level_affine_of : Loop_nest.t -> Expr.t -> level_affine option

(** Every array access of a full nest: the bands of every level plus
    the innermost body ([acc_in_inner] marks the latter). *)
val nest_accesses : Loop_nest.t -> access list

(** All lexicographically-positive iteration-distance vectors between
    two accesses (one entry per level, outermost first; all-zero
    loop-independent vectors dropped, leading sign normalized
    positive).  [Some []] = provably independent across iterations;
    [None] = unknown. *)
val distance_vectors :
  Loop_nest.t -> access -> access -> int array list option

(** Is swapping levels [level] and [level + 1] dependence-safe?
    [Some true] when every distance vector of every dependent pair
    stays lexicographically positive after the swap; [Some false] on a
    proven violation; [None] when the analysis is defeated. *)
val interchange_safe : Loop_nest.t -> level:int -> bool option
