(** Legality of unroll-and-squash / unroll-and-jam for a nest and
    unroll factor (§4.1–§4.2): control-flow shape, invariant inner
    bounds, no outer-carried scalar dependences (induction variables
    excepted — they are rewritable), and the three-case analysis of
    array dependences against the data-set range [-(DS-1), DS-1]. *)

module Sset = Uas_ir.Stmt.Sset

type violation =
  | Inner_not_straight_line
  | Pre_post_not_straight_line
  | Inner_bounds_variant of string
  | Outer_carried_scalar of string
  | Outer_carried_array of string * Dependence.outer_distance
  | Inner_index_written
  | Outer_index_written
  | Non_unit_trip_unknown

val pp_violation : violation Fmt.t

type verdict = {
  ok : bool;
  violations : violation list;
  needs_peel : int;  (** leftover outer iterations to peel off *)
  induction_rewrites : Induction.t list;
      (** rewrites to apply before transforming *)
}

val pp_verdict : verdict Fmt.t

(** Scalars carrying values across outer iterations (upward-exposed and
    defined over the whole outer body). *)
val outer_carried_scalars : Loop_nest.pair -> Sset.t

(** The full §4.1/§4.2 check at unroll factor [ds].  Scalar and array
    checks run on the nest as it will look after the induction-variable
    rewrites reported in [induction_rewrites]. *)
val check : Loop_nest.pair -> ds:int -> verdict

(** [(check nest ~ds).ok]. *)
val transformable : Loop_nest.pair -> ds:int -> bool
