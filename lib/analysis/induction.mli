(** Outer-loop induction variables (§4.2): scalars updated exactly once
    per outer iteration by a constant increment.  They carry a
    dependence that blocks unroll-and-squash; rewriting every use to a
    closed form of the outer index removes it and exposes the accesses
    they index to the affine dependence tests. *)

open Uas_ir

type t = {
  iv_var : Types.var;
  iv_step : int;  (** increment per outer iteration *)
  iv_in_pre : bool;  (** the update sits in [pre] (else in [post]) *)
}

(** Occurrences of [v = v + c] patterns; exported for reuse by other
    analyses. *)
val as_increment : Types.var -> Expr.t -> int option

(** Number of definitions of [v] in the statement list. *)
val count_defs : Types.var -> Stmt.t list -> int

(** Induction variables of the nest's outer loop. *)
val find : Loop_nest.pair -> t list

(** Closed forms of the IV (before-update, after-update) at the current
    outer iteration, in terms of [base] (its value at loop entry). *)
val closed_forms : Loop_nest.pair -> t -> base:string -> Expr.t * Expr.t

(** Rewrite only the nest: substitute every use by its closed form and
    drop the update. *)
val rewrite_nest : Loop_nest.pair -> t -> base:string -> Loop_nest.pair

(** Rewrite inside a whole program: capture the entry value, rewrite
    the nest, restore the exit value.  Returns the program and the
    rewritten nest. *)
val rewrite : Stmt.program -> Loop_nest.pair -> t -> Stmt.program * Loop_nest.pair
