(** Scalar def/use and liveness facts over statement blocks, composing
    correctly through nested control flow (a [For]'s use summary is its
    body's upward-exposed reads, minus its own index). *)

module Sset = Uas_ir.Stmt.Sset

type stmt_du = { du_defs : Sset.t; du_uses : Sset.t }

(** Defs and upward-exposed uses of one statement. *)
val of_stmt : Uas_ir.Stmt.t -> stmt_du

(** Scalars read before any write, scanning the block in order.  For a
    loop body this is exactly what flows in from outside or from the
    previous iteration. *)
val upward_exposed : Uas_ir.Stmt.t list -> Sset.t

val defined : Uas_ir.Stmt.t list -> Sset.t

(** Scalar recurrences of a loop body: upward-exposed and defined. *)
val loop_carried : Uas_ir.Stmt.t list -> Sset.t

val live_out_candidates : Uas_ir.Stmt.t list -> Sset.t

(** Backward liveness over a straight-line block. *)
val live_in_of_block : live_out:Sset.t -> Uas_ir.Stmt.t list -> Sset.t

(** Per-statement live-after sets, front to back. *)
val live_after_each :
  live_out:Sset.t -> Uas_ir.Stmt.t list -> (Uas_ir.Stmt.t * Sset.t) list

(** Scalars read by the program after the nest completes
    (conservative). *)
val used_outside_nest : Uas_ir.Stmt.program -> Loop_nest.pair -> Sset.t

(** Maximum number of simultaneously live scalars in a straight-line
    loop body. *)
val max_live : live_out:Sset.t -> Uas_ir.Stmt.t list -> int
