(* Induction-variable identification for the outer loop of a nest
   (§4.2): a scalar [v] assigned exactly once per outer iteration as
   [v = v + c] (or [c + v] / [v - c]) with [c] a constant, and not
   otherwise written inside the nest.

   Such variables carry a dependence across outer iterations that would
   make unroll-and-squash illegal; rewriting every use as a closed-form
   expression of the outer index removes the dependence *and* makes the
   memory accesses indexed by the variable visible to the affine
   dependence tests. *)

open Uas_ir
module Sset = Stmt.Sset

type t = {
  iv_var : Types.var;
  iv_step : int;          (** increment per outer iteration *)
  iv_in_pre : bool;       (** the update sits in [pre] (else in [post]) *)
}

let as_increment (v : Types.var) (e : Expr.t) : int option =
  match Expr.simplify e with
  | Expr.Binop (Types.Add, Expr.Var v', Expr.Int c) when String.equal v v' ->
    Some c
  | Expr.Binop (Types.Add, Expr.Int c, Expr.Var v') when String.equal v v' ->
    Some c
  | Expr.Binop (Types.Sub, Expr.Var v', Expr.Int c) when String.equal v v' ->
    Some (-c)
  | _ -> None

let count_defs v stmts =
  Stmt.fold_list
    (fun n s ->
      match s with
      | Stmt.Assign (x, _) when String.equal x v -> n + 1
      | Stmt.For l when String.equal l.index v -> n + 1
      | _ -> n)
    0 stmts

(** Induction variables of the nest's outer loop. *)
let find (nest : Loop_nest.pair) : t list =
  let candidates_in in_pre stmts =
    List.filter_map
      (function
        | Stmt.Assign (v, e) -> (
          match as_increment v e with
          | Some c -> Some { iv_var = v; iv_step = c; iv_in_pre = in_pre }
          | None -> None)
        | _ -> None)
      stmts
  in
  let all =
    candidates_in true nest.Loop_nest.pre @ candidates_in false nest.post
  in
  (* exactly one def in the whole nest, and never touched by the body *)
  List.filter
    (fun iv ->
      count_defs iv.iv_var (Loop_nest.all_stmts nest) = 1
      && not (Sset.mem iv.iv_var (Stmt.defs nest.inner_body)))
    all

(* Closed forms of the IV at outer iteration number t = (i - lo)/step:
   [before] the update it holds v0 + t*c, [after] it v0 + (t+1)*c. *)
let closed_forms (nest : Loop_nest.pair) (iv : t) ~base : Expr.t * Expr.t =
  let i = Expr.Var nest.Loop_nest.outer_index in
  let iter_no =
    Expr.simplify
      (Expr.Binop
         ( Types.Div,
           Expr.Binop (Types.Sub, i, nest.outer_lo),
           Expr.Int nest.outer_step ))
  in
  let form times =
    Expr.simplify
      (Expr.Binop
         ( Types.Add,
           Expr.Var base,
           Expr.Binop (Types.Mul, times, Expr.Int iv.iv_step) ))
  in
  ( form iter_no,
    form (Expr.simplify (Expr.Binop (Types.Add, iter_no, Expr.Int 1))) )

(** Rewrite the nest only: every use of the IV becomes its closed form
    (pre-update uses see iteration [t]'s value, later uses see the
    updated value) and the update statement is removed.  [base] is the
    scalar holding the IV's value at loop entry. *)
let rewrite_nest (nest : Loop_nest.pair) (iv : t) ~base : Loop_nest.pair =
  let before, after = closed_forms nest iv ~base in
  let subst form stmts =
    Stmt.map_exprs_list
      (Expr.subst_vars (fun v ->
           if String.equal v iv.iv_var then Some form else None))
      stmts
  in
  let rewrite_region ~seen_update stmts =
    (* returns the rewritten statements; the update itself is dropped *)
    let seen = ref seen_update in
    List.filter_map
      (fun s ->
        match s with
        | Stmt.Assign (x, e)
          when String.equal x iv.iv_var && as_increment x e <> None ->
          seen := true;
          None
        | s -> Some (List.hd (subst (if !seen then after else before) [ s ])))
      stmts
  in
  let pre = rewrite_region ~seen_update:false nest.Loop_nest.pre in
  let body_form = if iv.iv_in_pre then after else before in
  let inner_body = subst body_form nest.inner_body in
  let post = rewrite_region ~seen_update:iv.iv_in_pre nest.post in
  { nest with Loop_nest.pre; inner_body; post }

(** Rewrite the induction variable inside a whole program: capture the
    entry value, rewrite the nest, and restore the exit value after the
    loop.  Returns the modified program with the rewritten nest. *)
let rewrite (p : Stmt.program) (nest : Loop_nest.pair) (iv : t) :
    Stmt.program * Loop_nest.pair =
  let base = Stmt.fresh_var p (iv.iv_var ^ "@ivbase") in
  let nest' = rewrite_nest nest iv ~base in
  let trips =
    Expr.simplify
      (Expr.Binop
         ( Types.Div,
           Expr.Binop
             ( Types.Add,
               Expr.Binop (Types.Sub, nest.outer_hi, nest.outer_lo),
               Expr.Int (nest.outer_step - 1) ),
           Expr.Int nest.outer_step ))
  in
  let exit_value =
    Expr.simplify
      (Expr.Binop
         ( Types.Add,
           Expr.Var base,
           Expr.Binop (Types.Mul, trips, Expr.Int iv.iv_step) ))
  in
  let replacement =
    [ Stmt.Assign (base, Expr.Var iv.iv_var);
      Loop_nest.pair_to_stmt nest';
      Stmt.Assign (iv.iv_var, exit_value) ]
  in
  let p = Loop_nest.replace p ~outer_index:nest.outer_index replacement in
  let p = Stmt.add_locals p [ (base, Types.Tint) ] in
  (p, nest')
