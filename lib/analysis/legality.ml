(* Legality of unroll-and-squash / unroll-and-jam for a nest and unroll
   factor DS (§4.1–§4.2).

   Control-flow requirements:
   - the inner body is a single basic block (apply if-conversion first);
   - pre and post are straight-line;
   - inner bounds are invariant across outer iterations (constant trip
     count requirement);
   - the inner index is not used by pre/post computations in a way that
     depends on its exit value only through [j = hi] (we simply allow it:
     the exit value is recomputed).

   Data requirements (§4.2, the three cases):
   - scalars: no outer-loop-carried scalar dependence.  A scalar that is
     upward-exposed at the outer-body level *and* written in the nest
     carries a value between outer iterations.  Recognized induction
     variables can be rewritten away (reported as [Needs_induction]).
   - arrays: for every dependent access pair, the outer distance must be
     0 (case 1) or have empty intersection with [-(DS-1), DS-1]
     (case 2); otherwise the transformation would reorder conflicting
     accesses (case 3) and is rejected.
   - the outer trip count must be a multiple of DS; otherwise peeling is
     required (reported, not fatal: [Transform.Peel] handles it). *)

open Uas_ir
module Sset = Stmt.Sset

type violation =
  | Inner_not_straight_line
  | Pre_post_not_straight_line
  | Inner_bounds_variant of string     (* offending scalar *)
  | Outer_carried_scalar of string
  | Outer_carried_array of string * Dependence.outer_distance
  | Inner_index_written
  | Outer_index_written
  | Non_unit_trip_unknown              (* outer trip count not static *)

let pp_violation ppf = function
  | Inner_not_straight_line ->
    Fmt.string ppf "inner loop body is not a single basic block"
  | Pre_post_not_straight_line ->
    Fmt.string ppf "outer-loop pre/post code is not straight-line"
  | Inner_bounds_variant v ->
    Fmt.pf ppf "inner loop bounds depend on %s, trip count not constant" v
  | Outer_carried_scalar v ->
    Fmt.pf ppf "scalar %s carries a dependence across outer iterations" v
  | Outer_carried_array (a, d) ->
    Fmt.pf ppf "array %s carries an outer dependence (%a)" a
      Dependence.pp_outer_distance d
  | Inner_index_written -> Fmt.string ppf "inner index is written in the body"
  | Outer_index_written -> Fmt.string ppf "outer index is written in the nest"
  | Non_unit_trip_unknown ->
    Fmt.string ppf "outer trip count is not statically known"

type verdict = {
  ok : bool;
  violations : violation list;
  needs_peel : int;          (** leftover outer iterations to peel off *)
  induction_rewrites : Induction.t list;
      (** induction variables that must be rewritten before transforming *)
}

let pp_verdict ppf v =
  if v.ok then
    Fmt.pf ppf "legal%s%s"
      (if v.needs_peel > 0 then
         Printf.sprintf " (peel %d iterations)" v.needs_peel
       else "")
      (if v.induction_rewrites <> [] then " (after induction rewrite)" else "")
  else Fmt.pf ppf "illegal: %a" Fmt.(list ~sep:(any "; ") pp_violation) v.violations

(* Scalars carrying values across outer iterations: upward-exposed over
   the whole outer body and also defined in it.  The inner index is not
   exposed by its own loop ([Def_use.of_stmt]); it only shows up here
   when pre-code genuinely reads its value from the previous outer
   iteration, which is a real carried dependence. *)
let outer_carried_scalars (nest : Loop_nest.pair) : Sset.t =
  let body =
    nest.Loop_nest.pre
    @ [ Stmt.For
          { index = nest.inner_index;
            lo = nest.inner_lo;
            hi = nest.inner_hi;
            step = nest.inner_step;
            body = nest.inner_body } ]
    @ nest.post
  in
  Def_use.loop_carried body

let check_arrays (nest : Loop_nest.pair) ~ds : violation list =
  List.filter_map
    (fun (x, _y, d) ->
      match d with
      | Dependence.No_dependence -> None
      | Dependence.Exact 0 -> None  (* case 1 *)
      | Dependence.Exact k ->
        if abs k > ds - 1 then None  (* case 2 *)
        else Some (Outer_carried_array (x.Dependence.acc_array, d))
      | Dependence.Within (lo, hi) ->
        (* case 2 needs [lo,hi] ∩ [-(ds-1), ds-1] ⊆ {0}; the interval is
           contiguous, so it is safe only when it is {0} or disjoint *)
        if (lo = 0 && hi = 0) || lo > ds - 1 || hi < -(ds - 1) then None
        else Some (Outer_carried_array (x.Dependence.acc_array, d))
      | Dependence.Any ->
        Some (Outer_carried_array (x.Dependence.acc_array, d)))
    (Dependence.all_pairs nest)

(** Check the §4.1/§4.2 requirements for unrolling the outer loop of
    [nest] by [ds] with parallel data sets (shared by squash and jam). *)
let check (nest : Loop_nest.pair) ~ds : verdict =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if not (Stmt.is_straight_line nest.inner_body) then add Inner_not_straight_line;
  if not (Stmt.is_straight_line nest.pre && Stmt.is_straight_line nest.post)
  then add Pre_post_not_straight_line;
  (* invariant inner bounds: may not read anything written in the nest,
     nor the outer index *)
  let bound_vars =
    Sset.union (Expr.var_set nest.inner_lo) (Expr.var_set nest.inner_hi)
  in
  let written =
    Sset.add nest.outer_index (Stmt.defs (Loop_nest.all_stmts nest))
  in
  Sset.iter
    (fun v -> if Sset.mem v written then add (Inner_bounds_variant v))
    (Sset.inter bound_vars written);
  if Sset.mem nest.inner_index (Stmt.defs nest.inner_body) then
    add Inner_index_written;
  if Sset.mem nest.outer_index (Stmt.defs (Loop_nest.all_stmts nest)) then
    add Outer_index_written;
  (* induction variables are rewritable to closed forms: scalar and
     array checks run on the nest as it will look after the rewrite *)
  let ivs = Induction.find nest in
  let rewritten =
    List.fold_left
      (fun n iv ->
        Induction.rewrite_nest n iv ~base:(iv.Induction.iv_var ^ "@ivbase"))
      nest ivs
  in
  Sset.iter
    (fun v -> add (Outer_carried_scalar v))
    (outer_carried_scalars rewritten);
  let used_ivs =
    List.filter
      (fun iv -> Sset.mem iv.Induction.iv_var (outer_carried_scalars nest))
      ivs
  in
  (* array dependences *)
  List.iter add (check_arrays rewritten ~ds);
  (* peeling requirement *)
  let needs_peel =
    match Loop_nest.outer_trip_count nest with
    | Some trips -> trips mod ds
    | None ->
      add Non_unit_trip_unknown;
      0
  in
  let violations = List.rev !violations in
  { ok = violations = []; violations; needs_peel; induction_rewrites = used_ivs }

(** Convenience: is the nest transformable at factor [ds] after the
    automatic enabling rewrites (induction-variable elimination and
    peeling)? *)
let transformable (nest : Loop_nest.pair) ~ds : bool = (check nest ~ds).ok
