(* Array dependence analysis for loop nests (§3.2, §4.2).

   For the adjacent-pair view the transforms are stated over, index
   expressions are abstracted as affine forms

       ci * i  +  cj * j  +  c0  +  Σ ck * symbolic invariants

   in the outer index [i] and inner index [j].  Two accesses to the same
   array are compared with the classic ZIV / strong-SIV / GCD tests to
   bound the *outer-loop dependence distance* — the quantity the
   unroll-and-squash legality cases of §4.2 are stated over.

   For a full depth-d nest, the same abstraction generalizes to one
   coefficient per level ({!level_affine}); solving the resulting
   diophantine equation over the per-level iteration ranges yields the
   classic *distance vectors*, which {!interchange_safe} consumes to
   decide loop-order legality at any adjacent level pair. *)

open Uas_ir
module Smap = Map.Make (String)

(* --- symbolic parts: sorted (symbol, coefficient) lists --- *)

let rec sym_add xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (v, a) :: xs', (w, b) :: ys' ->
    let c = String.compare v w in
    if c < 0 then (v, a) :: sym_add xs' ys
    else if c > 0 then (w, b) :: sym_add xs ys'
    else
      let s = a + b in
      if s = 0 then sym_add xs' ys' else (v, s) :: sym_add xs' ys'

let sym_scale k syms =
  if k = 0 then [] else List.map (fun (v, c) -> (v, k * c)) syms

let sym_equal xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun (v, a) (w, b) -> String.equal v w && a = b)
       xs ys

let pp_syms ppf syms =
  List.iter
    (fun (s, c) ->
      if c = 1 then Fmt.pf ppf " + %s" s else Fmt.pf ppf " + %d*%s" c s)
    syms

type affine = {
  ci : int;  (** coefficient of the outer index *)
  cj : int;  (** coefficient of the inner index *)
  c0 : int;  (** constant part *)
  sym : (string * int) list;
      (** sorted additive loop-invariant symbols with coefficients *)
}

let affine_const n = { ci = 0; cj = 0; c0 = n; sym = [] }

let pp_affine ppf a =
  Fmt.pf ppf "%d*i + %d*j + %d%a" a.ci a.cj a.c0 pp_syms a.sym

(* Unique straight-line definitions usable for substitution when
   extracting affine forms: scalars assigned exactly once in [pre] and
   nowhere else in the nest.  Loop-body definitions are iteration-variant
   and must not be chased across iterations, so they are excluded. *)
let pre_defs (nest : Loop_nest.pair) : Expr.t Smap.t =
  let all = Loop_nest.all_stmts nest in
  List.fold_left
    (fun m s ->
      match s with
      | Stmt.Assign (v, e) when Induction.count_defs v all = 1 ->
        Smap.add v e m
      | _ -> m)
    Smap.empty nest.Loop_nest.pre

let add_sym a b =
  { ci = a.ci + b.ci;
    cj = a.cj + b.cj;
    c0 = a.c0 + b.c0;
    sym = sym_add a.sym b.sym }

let scale k a =
  { ci = k * a.ci; cj = k * a.cj; c0 = k * a.c0; sym = sym_scale k a.sym }

(** Affine form of [e] in terms of the pair's indices; [None] when the
    expression is not (recognizably) affine. *)
let affine_of (nest : Loop_nest.pair) (e : Expr.t) : affine option =
  let defs = pre_defs nest in
  let defined = Stmt.defs (Loop_nest.all_stmts nest) in
  let rec go depth (e : Expr.t) : affine option =
    if depth > 16 then None
    else
      match Expr.simplify e with
      | Expr.Int n -> Some (affine_const n)
      | Expr.Var v ->
        if String.equal v nest.outer_index then
          (* in terms of the index *value*; distances are converted to
             iteration units in [outer_distance] *)
          Some { ci = 1; cj = 0; c0 = 0; sym = [] }
        else if String.equal v nest.inner_index then
          Some { ci = 0; cj = 1; c0 = 0; sym = [] }
        else if Smap.mem v defs then go (depth + 1) (Smap.find v defs)
        else if Stmt.Sset.mem v defined then None  (* iteration-variant *)
        else Some { ci = 0; cj = 0; c0 = 0; sym = [ (v, 1) ] }
      | Expr.Binop (Types.Add, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y -> Some (add_sym x y)
        | _ -> None)
      | Expr.Binop (Types.Sub, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y -> Some (add_sym x (scale (-1) y))
        | _ -> None)
      | Expr.Binop (Types.Mul, Expr.Int k, a)
      | Expr.Binop (Types.Mul, a, Expr.Int k) ->
        Option.map (scale k) (go (depth + 1) a)
      | Expr.Binop (Types.Shl, a, Expr.Int k) when k >= 0 && k < 31 ->
        Option.map (scale (1 lsl k)) (go (depth + 1) a)
      | _ -> None
  in
  go 0 e

(** Outer-loop dependence distance between two accesses, in *outer
    iterations* (index-space distance divided by the outer step is the
    caller's concern; we report index-space distances of the outer
    index variable's values, normalized to iteration counts using the
    step). *)
type outer_distance =
  | No_dependence           (** accesses can never conflict *)
  | Exact of int            (** conflicts only at this outer-iteration distance *)
  | Within of int * int     (** all conflicts at distances in [lo, hi] *)
  | Any                     (** unknown / unbounded *)

let pp_outer_distance ppf = function
  | No_dependence -> Fmt.string ppf "independent"
  | Exact d -> Fmt.pf ppf "distance %d" d
  | Within (a, b) -> Fmt.pf ppf "distance in [%d, %d]" a b
  | Any -> Fmt.string ppf "unknown"

type access = {
  acc_array : Types.array_id;
  acc_index : Expr.t;
  acc_is_write : bool;
  acc_in_inner : bool;  (** the access sits in the inner-loop body *)
}

let accesses_of_expr in_inner e =
  List.rev
    (Expr.fold
       (fun acc e ->
         match e with
         | Expr.Load (a, i) ->
           { acc_array = a; acc_index = i; acc_is_write = false;
             acc_in_inner = in_inner }
           :: acc
         | _ -> acc)
       [] e)

let rec accesses_of_stmts in_inner stmts =
  List.concat_map
    (fun s ->
      match s with
      | Stmt.Assign (_, e) -> accesses_of_expr in_inner e
      | Stmt.Store (a, i, e) ->
        accesses_of_expr in_inner i
        @ accesses_of_expr in_inner e
        @ [ { acc_array = a; acc_index = i; acc_is_write = true;
              acc_in_inner = in_inner } ]
      | Stmt.If (c, t, f) ->
        accesses_of_expr in_inner c
        @ accesses_of_stmts in_inner t
        @ accesses_of_stmts in_inner f
      | Stmt.For l -> accesses_of_stmts in_inner l.body)
    stmts

(** Every array access of the pair. *)
let accesses (nest : Loop_nest.pair) : access list =
  accesses_of_stmts false nest.Loop_nest.pre
  @ accesses_of_stmts true nest.inner_body
  @ accesses_of_stmts false nest.post

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Solve a*di + b*dj = delta for the range of di, with dj ranging over
   the inner index-value differences {-(n-1)*s, ..., (n-1)*s} when the
   inner trip count [n] and step [s] are known, and di bounded by the
   outer iteration range when [outer_trips] is known. *)
let solve_distance ~inner_trips ~inner_step ~outer_trips a b delta :
    outer_distance =
  let di_possible di =
    match outer_trips with None -> true | Some m -> abs di <= m - 1
  in
  if a = 0 && b = 0 then if delta = 0 then Exact 0 else No_dependence
  else if b = 0 then
    (* strong SIV on the outer index *)
    if delta mod a = 0 && di_possible (delta / a) then Exact (delta / a)
    else No_dependence
  else if a = 0 then
    (* the index ignores the outer loop: when the inner equation
       b*dj = delta has a solution in range, the same element recurs in
       every outer iteration *)
    if delta mod b <> 0 || delta / b mod inner_step <> 0 then No_dependence
    else (
      match inner_trips with
      | Some n when abs (delta / b / inner_step) > n - 1 -> No_dependence
      | Some _ | None -> Any)
  else if delta mod gcd a b <> 0 then No_dependence
  else
    match inner_trips with
    | None -> Any
    | Some n ->
      (* di = (delta - b*dj)/a over integer solutions *)
      let candidates = ref [] in
      for t = -(n - 1) to n - 1 do
        let dj = t * inner_step in
        let num = delta - (b * dj) in
        if num mod a = 0 && di_possible (num / a) then
          candidates := (num / a) :: !candidates
      done;
      (match !candidates with
      | [] -> No_dependence
      | ds ->
        let lo = List.fold_left min max_int ds in
        let hi = List.fold_left max min_int ds in
        if lo = hi then Exact lo else Within (lo, hi))

(** Outer dependence distance between two accesses of the same array.
    The result is in units of outer *iterations* (the affine outer
    coefficients already absorb the index step because the index
    variable itself advances by [outer_step]; we renormalize below). *)
let outer_distance (nest : Loop_nest.pair) (x : access) (y : access) :
    outer_distance =
  if not (String.equal x.acc_array y.acc_array) then No_dependence
  else if not (x.acc_is_write || y.acc_is_write) then No_dependence
  else
    match (affine_of nest x.acc_index, affine_of nest y.acc_index) with
    | Some ax, Some ay
      when ax.ci = ay.ci && ax.cj = ay.cj && sym_equal ax.sym ay.sym ->
      let inner_trips = Loop_nest.inner_trip_count nest in
      let d =
        solve_distance ~inner_trips ~inner_step:nest.inner_step
          ~outer_trips:(Loop_nest.outer_trip_count nest) ax.ci ax.cj
          (ay.c0 - ax.c0)
      in
      (* index-space distance -> iteration distance *)
      let step = nest.outer_step in
      let norm v =
        if step = 1 then Some v
        else if v mod step = 0 then Some (v / step)
        else None
      in
      (match d with
      | No_dependence -> No_dependence
      | Any -> Any
      | Exact v -> (
        match norm v with Some v -> Exact v | None -> No_dependence)
      | Within (a, b) ->
        if step = 1 then Within (a, b)
        else
          (* conservative: round the interval outward in iteration units *)
          Within
            ( (if a >= 0 then a / step else -((-a + step - 1) / step)),
              if b >= 0 then (b + step - 1) / step
              else -(-b / step) ))
    | _ -> Any

(** All dependent pairs of the nest (at least one write, same array),
    with their outer distances. *)
let all_pairs (nest : Loop_nest.pair) : (access * access * outer_distance) list
    =
  let accs = accesses nest in
  let rec pairs = function
    | [] -> []
    | x :: rest ->
      List.filter_map
        (fun y ->
          if
            String.equal x.acc_array y.acc_array
            && (x.acc_is_write || y.acc_is_write)
          then Some (x, y, outer_distance nest x y)
          else None)
        (x :: rest)  (* include self-pairs: a store conflicts with itself *)
      @ pairs rest
  in
  pairs accs

(* --- depth-general forms: one coefficient per nest level --- *)

type level_affine = {
  la_coeffs : int list;  (** per level, outermost first *)
  la_const : int;
  la_sym : (string * int) list;
}

let pp_level_affine ppf a =
  Fmt.pf ppf "[%a] + %d%a"
    Fmt.(list ~sep:(any ", ") int)
    a.la_coeffs a.la_const pp_syms a.la_sym

(** Affine form of [e] over all levels of a depth-d nest.  Scalars
    defined anywhere inside the nest (other than the indices) are
    iteration-variant at some level and make the form unrecognizable —
    conservative, but exact on perfect nests. *)
let level_affine_of (n : Loop_nest.t) (e : Expr.t) : level_affine option =
  let indices = List.map (fun lv -> lv.Loop_nest.l_index) n.Loop_nest.levels in
  let defined = Stmt.defs [ Loop_nest.to_stmt n ] in
  let zero = List.map (fun _ -> 0) indices in
  let unit k = List.mapi (fun i _ -> if i = k then 1 else 0) indices in
  let index_pos v =
    let rec go k = function
      | [] -> None
      | i :: rest -> if String.equal i v then Some k else go (k + 1) rest
    in
    go 0 indices
  in
  let cadd = List.map2 ( + ) in
  let cscale k = List.map (fun c -> k * c) in
  let ladd x y =
    { la_coeffs = cadd x.la_coeffs y.la_coeffs;
      la_const = x.la_const + y.la_const;
      la_sym = sym_add x.la_sym y.la_sym }
  in
  let lscale k x =
    { la_coeffs = cscale k x.la_coeffs;
      la_const = k * x.la_const;
      la_sym = sym_scale k x.la_sym }
  in
  let rec go depth (e : Expr.t) : level_affine option =
    if depth > 16 then None
    else
      match Expr.simplify e with
      | Expr.Int c -> Some { la_coeffs = zero; la_const = c; la_sym = [] }
      | Expr.Var v -> (
        match index_pos v with
        | Some k -> Some { la_coeffs = unit k; la_const = 0; la_sym = [] }
        | None ->
          if Stmt.Sset.mem v defined then None
          else Some { la_coeffs = zero; la_const = 0; la_sym = [ (v, 1) ] })
      | Expr.Binop (Types.Add, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y -> Some (ladd x y)
        | _ -> None)
      | Expr.Binop (Types.Sub, a, b) -> (
        match (go (depth + 1) a, go (depth + 1) b) with
        | Some x, Some y -> Some (ladd x (lscale (-1) y))
        | _ -> None)
      | Expr.Binop (Types.Mul, Expr.Int k, a)
      | Expr.Binop (Types.Mul, a, Expr.Int k) ->
        Option.map (lscale k) (go (depth + 1) a)
      | Expr.Binop (Types.Shl, a, Expr.Int k) when k >= 0 && k < 31 ->
        Option.map (lscale (1 lsl k)) (go (depth + 1) a)
      | _ -> None
  in
  go 0 e

(** Every array access of a full nest: band accesses at every level
    plus the innermost body ([acc_in_inner] marks the latter). *)
let nest_accesses (n : Loop_nest.t) : access list =
  List.concat_map
    (fun (lv : Loop_nest.level) ->
      accesses_of_stmts false lv.Loop_nest.l_pre
      @ accesses_of_stmts false lv.Loop_nest.l_post)
    n.Loop_nest.levels
  @ accesses_of_stmts true n.Loop_nest.body

(* cap on the enumeration below: a nest with a bigger iteration-distance
   cross product reports unknown instead of burning time *)
let vector_budget = 200_000

(** All lexicographically-positive iteration-distance vectors between
    two accesses of the same array (one per nest level, outermost
    first; loop-independent all-zero vectors are dropped, and a vector
    whose leading nonzero is negative is reported through its
    negation).  [Some []] when the accesses provably never conflict
    across iterations; [None] when the forms or bounds defeat the
    analysis. *)
let distance_vectors (n : Loop_nest.t) (x : access) (y : access) :
    int array list option =
  if
    (not (String.equal x.acc_array y.acc_array))
    || not (x.acc_is_write || y.acc_is_write)
  then Some []
  else
    match (level_affine_of n x.acc_index, level_affine_of n y.acc_index) with
    | Some ax, Some ay
      when ax.la_coeffs = ay.la_coeffs && sym_equal ax.la_sym ay.la_sym -> (
      let delta = ay.la_const - ax.la_const in
      let trips =
        List.map Loop_nest.level_trip_count n.Loop_nest.levels
      in
      if List.exists Option.is_none trips then None
      else
        let trips = List.map Option.get trips in
        if List.exists (fun t -> t = 0) trips then Some []
        else
          let steps =
            List.map (fun lv -> lv.Loop_nest.l_step) n.Loop_nest.levels
          in
          (* per-level index-space coefficient of the iteration distance *)
          let coeffs = List.map2 (fun c s -> c * s) ax.la_coeffs steps in
          let bounds = List.map (fun t -> t - 1) trips in
          let size =
            List.fold_left (fun acc b -> acc * ((2 * b) + 1)) 1 bounds
          in
          if size > vector_budget then None
          else
            let vectors =
              List.fold_left
                (fun acc b ->
                  List.concat_map
                    (fun v -> List.init ((2 * b) + 1) (fun i -> (i - b) :: v))
                    acc)
                [ [] ] bounds
              |> List.map List.rev
            in
            let solves v =
              List.fold_left2 (fun s c d -> s + (c * d)) 0 coeffs v = delta
            in
            let normalize v =
              match List.find_opt (fun d -> d <> 0) v with
              | None -> None  (* loop-independent: preserved by any order *)
              | Some lead ->
                Some (if lead < 0 then List.map (fun d -> -d) v else v)
            in
            Some
              (List.filter solves vectors
              |> List.filter_map normalize
              |> List.sort_uniq compare
              |> List.map Array.of_list))
    | _ -> None

(** Is swapping levels [level] and [level + 1] of the nest
    dependence-safe?  [Some true] when every distance vector of every
    dependent access pair stays lexicographically positive after the
    swap — the classic (<, >) direction test; [Some false] on a proven
    violation; [None] when some pair defeats the analysis. *)
let interchange_safe (n : Loop_nest.t) ~level : bool option =
  let accs = nest_accesses n in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) (x :: rest) @ pairs rest
  in
  let verdicts =
    List.map
      (fun (x, y) ->
        match distance_vectors n x y with
        | None -> None
        | Some vs ->
          Some
            (List.for_all
               (fun v ->
                 let lead = ref (-1) in
                 Array.iteri
                   (fun i d -> if d <> 0 && !lead < 0 then lead := i)
                   v;
                 not
                   (!lead = level
                   && level + 1 < Array.length v
                   && v.(level + 1) < 0))
               vs))
      (pairs accs)
  in
  if List.exists (fun v -> v = Some false) verdicts then Some false
  else if List.exists Option.is_none verdicts then None
  else Some true
