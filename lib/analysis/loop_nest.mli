(** The 2-deep loop nests unroll-and-squash / unroll-and-jam operate on
    (§4.1): an outer FOR whose body is [pre; inner-FOR; post] with the
    inner loop innermost.  Shape only; requirements are checked by
    {!Legality}. *)

open Uas_ir

type t = {
  outer_index : Types.var;
  outer_lo : Expr.t;
  outer_hi : Expr.t;
  outer_step : int;
  pre : Stmt.t list;
  inner_index : Types.var;
  inner_lo : Expr.t;
  inner_hi : Expr.t;
  inner_step : int;
  inner_body : Stmt.t list;
  post : Stmt.t list;
}

(** Rebuild the nest as a statement. *)
val to_stmt : t -> Stmt.t

(** View an outer loop as a 2-deep nest, if its body contains exactly
    one (innermost) loop. *)
val of_loop : Stmt.loop -> t option

(** All 2-deep nests of the program, outermost first. *)
val find : Stmt.program -> t list

(** The nest with this outer index, or [None]. *)
val find_by_outer_index_opt : Stmt.program -> string -> t option

(** @raise Not_found when no nest has this outer index. *)
val find_by_outer_index : Stmt.program -> string -> t

(** Replace the first outer loop with the given index.
    @raise Not_found when absent. *)
val replace :
  Stmt.program -> outer_index:string -> Stmt.t list -> Stmt.program

(** Static trip counts, when bounds are constants. *)
val outer_trip_count : t -> int option

val inner_trip_count : t -> int option

(** [pre @ inner_body @ post]. *)
val all_stmts : t -> Stmt.t list

(** Scalars referenced anywhere in the nest, bounds and indices
    included. *)
val scalars : t -> Stmt.Sset.t
