(** The loop nests the transforms operate on (§4.1), at any depth: a
    maximal chain of counted FOR loops where each level's body is
    [pre; next-FOR; post] with loop-free bands, and the innermost body
    is loop-free.  The adjacent-pair transforms address a nest through
    the {!pair} view at one level.  Shape only; requirements are
    checked by {!Legality}. *)

open Uas_ir

(** One loop level: index, bounds, step, and the statement bands around
    the next-deeper loop (empty at the innermost level). *)
type level = {
  l_index : Types.var;
  l_lo : Expr.t;
  l_hi : Expr.t;
  l_step : int;
  l_pre : Stmt.t list;
  l_post : Stmt.t list;
}

(** A depth-general nest: the ordered levels (outermost first, at least
    two) and the loop-free innermost body. *)
type t = { levels : level list; body : Stmt.t list }

(** The adjacent-pair view at one level — the shape unroll-and-squash /
    unroll-and-jam operate on.  [inner_body] folds everything below the
    inner level back into statements, so a pair deep inside a bigger
    nest is self-contained. *)
type pair = {
  outer_index : Types.var;
  outer_lo : Expr.t;
  outer_hi : Expr.t;
  outer_step : int;
  pre : Stmt.t list;
  inner_index : Types.var;
  inner_lo : Expr.t;
  inner_hi : Expr.t;
  inner_step : int;
  inner_body : Stmt.t list;
  post : Stmt.t list;
}

(** Number of levels (>= 2). *)
val depth : t -> int

(** Rebuild the whole nest as a statement. *)
val to_stmt : t -> Stmt.t

(** The pair view at levels [k]/[k+1] (0-based, outermost first).
    @raise Invalid_argument when [k] has no level below it. *)
val pair_at : t -> int -> pair

(** Rebuild a pair view as a statement. *)
val pair_to_stmt : pair -> Stmt.t

(** View an outer loop as a maximal nest (depth >= 2), if every body on
    its spine is [pre; FOR; post] with loop-free bands and a loop-free
    innermost body. *)
val of_loop : Stmt.loop -> t option

(** All maximal nests of the program, outermost first.  Loops whose
    bodies break the nest shape are skipped, but nests inside them are
    still found. *)
val find : Stmt.program -> t list

(** The pair view headed by the level named [index], or [None].  Any
    level but the innermost of any nest can head a pair. *)
val find_by_outer_index_opt : Stmt.program -> string -> pair option

(** @raise Not_found when no nest level with this index heads a pair. *)
val find_by_outer_index : Stmt.program -> string -> pair

(** The maximal nest holding a non-innermost level named [index]. *)
val find_nest_opt : Stmt.program -> string -> t option

(** Depth of the nest suffix rooted at the level named [index] (the
    middle level of a 3-deep nest has suffix depth 2), or [None] when
    no pair is headed there. *)
val depth_at : Stmt.program -> string -> int option

(** Every addressable (index, suffix depth) of every maximal nest, in
    program order — the catalog a driver prints when a requested
    target names no nest. *)
val summary : Stmt.program -> (string * int) list

(** Replace the first loop with the given index.
    @raise Not_found when absent. *)
val replace :
  Stmt.program -> outer_index:string -> Stmt.t list -> Stmt.program

(** Static trip counts, when bounds are constants. *)
val outer_trip_count : pair -> int option

val inner_trip_count : pair -> int option
val level_trip_count : level -> int option

(** [pre @ inner_body @ post]. *)
val all_stmts : pair -> Stmt.t list

(** Scalars referenced anywhere in the pair, bounds and indices
    included. *)
val scalars : pair -> Stmt.Sset.t
