(* Discovery and manipulation of the loop nests the transforms operate
   on (§4.1), at any depth.

   A nest is a maximal chain of counted FOR loops: each level's body is

     pre ; next-level-FOR ; post

   where [pre] and [post] are loop-free statement bands, and the
   innermost level's body is loop-free.  The adjacent-pair transforms
   (unroll-and-squash, unroll-and-jam, flatten, interchange) address a
   nest through the {!pair} view at one level; the transformation
   requirements (straight-line pre/post/body, invariant inner bounds,
   ...) are checked separately by [Legality] — this module only
   captures the shape. *)

open Uas_ir

type level = {
  l_index : Types.var;
  l_lo : Expr.t;
  l_hi : Expr.t;
  l_step : int;
  l_pre : Stmt.t list;  (* band before the next-deeper loop *)
  l_post : Stmt.t list;  (* band after it; both empty at the innermost *)
}

type t = {
  levels : level list;  (* outermost first; length >= 2 *)
  body : Stmt.t list;  (* loop-free body of the innermost level *)
}

(* The adjacent-pair view: the shape unroll-and-squash / unroll-and-jam
   operate on, with the outer level's bands as pre/post and everything
   below the inner level folded into [inner_body]. *)
type pair = {
  outer_index : Types.var;
  outer_lo : Expr.t;
  outer_hi : Expr.t;
  outer_step : int;
  pre : Stmt.t list;
  inner_index : Types.var;
  inner_lo : Expr.t;
  inner_hi : Expr.t;
  inner_step : int;
  inner_body : Stmt.t list;
  post : Stmt.t list;
}

let depth (n : t) = List.length n.levels

(* The loop statement rooted at level [k] of the nest. *)
let rec loop_at (n : t) k : Stmt.loop =
  let lv = List.nth n.levels k in
  { Stmt.index = lv.l_index;
    lo = lv.l_lo;
    hi = lv.l_hi;
    step = lv.l_step;
    body = body_at n k }

(* The body of the loop at level [k]: the innermost level owns the
   nest body; every other level wraps the next loop in its bands. *)
and body_at (n : t) k : Stmt.t list =
  let lv = List.nth n.levels k in
  if k = depth n - 1 then n.body
  else lv.l_pre @ [ Stmt.For (loop_at n (k + 1)) ] @ lv.l_post

(** Rebuild the whole nest as a statement. *)
let to_stmt (n : t) : Stmt.t = Stmt.For (loop_at n 0)

(** The adjacent-pair view at levels [k]/[k+1].
    @raise Invalid_argument when [k] has no level below it. *)
let pair_at (n : t) k : pair =
  if k < 0 || k > depth n - 2 then
    invalid_arg
      (Printf.sprintf "Loop_nest.pair_at: level %d of a %d-deep nest" k
         (depth n));
  let outer = List.nth n.levels k and inner = List.nth n.levels (k + 1) in
  { outer_index = outer.l_index;
    outer_lo = outer.l_lo;
    outer_hi = outer.l_hi;
    outer_step = outer.l_step;
    pre = outer.l_pre;
    inner_index = inner.l_index;
    inner_lo = inner.l_lo;
    inner_hi = inner.l_hi;
    inner_step = inner.l_step;
    inner_body = body_at n (k + 1);
    post = outer.l_post }

(** Rebuild a pair view as a statement. *)
let pair_to_stmt (p : pair) : Stmt.t =
  Stmt.For
    { index = p.outer_index;
      lo = p.outer_lo;
      hi = p.outer_hi;
      step = p.outer_step;
      body =
        p.pre
        @ [ Stmt.For
              { index = p.inner_index;
                lo = p.inner_lo;
                hi = p.inner_hi;
                step = p.inner_step;
                body = p.inner_body } ]
        @ p.post }

let contains_loop stmts =
  List.exists
    (fun s ->
      Stmt.fold
        (fun acc s -> acc || match s with Stmt.For _ -> true | _ -> false)
        false s)
    stmts

(* Split a loop body into [pre; For inner; post] with loop-free bands;
   [None] when the body holds no loop, more than one top-level loop, or
   a loop buried inside a band. *)
let split_body body =
  let rec go pre = function
    | [] -> None
    | Stmt.For inner :: post ->
      if
        List.exists (function Stmt.For _ -> true | _ -> false) post
        || contains_loop (List.rev_append pre post)
      then None
      else Some (List.rev pre, inner, post)
    | s :: rest -> go (s :: pre) rest
  in
  go [] body

(* The maximal level chain rooted at [l]: [None] when some body on the
   spine contains loops that do not fit the nest shape. *)
let rec chain (l : Stmt.loop) : (level list * Stmt.t list) option =
  match split_body l.body with
  | None ->
    if contains_loop l.body then None
    else
      Some
        ( [ { l_index = l.index;
              l_lo = l.lo;
              l_hi = l.hi;
              l_step = l.step;
              l_pre = [];
              l_post = [] } ],
          l.body )
  | Some (pre, inner, post) -> (
    match chain inner with
    | None -> None
    | Some (levels, body) ->
      Some
        ( { l_index = l.index;
            l_lo = l.lo;
            l_hi = l.hi;
            l_step = l.step;
            l_pre = pre;
            l_post = post }
          :: levels,
          body ))

(** View an outer loop as a maximal nest (depth >= 2), if every body on
    its spine fits the [pre; FOR; post] shape with the innermost body
    loop-free. *)
let of_loop (l : Stmt.loop) : t option =
  match chain l with
  | Some (levels, body) when List.length levels >= 2 -> Some { levels; body }
  | _ -> None

(** All maximal nests in a program, outermost first.  A loop whose body
    breaks the nest shape is not a nest itself, but nests inside it are
    still found. *)
let find (p : Stmt.program) : t list =
  let rec scan acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Stmt.For l -> (
          match of_loop l with
          | Some n -> n :: acc
          | None -> scan acc l.body)
        | Stmt.If (_, t, e) -> scan (scan acc t) e
        | Stmt.Assign _ | Stmt.Store _ -> acc)
      acc stmts
  in
  List.rev (scan [] p.body)

(* The position of [index] among a nest's addressable levels (every
   level but the innermost can head a pair). *)
let level_position (n : t) index : int option =
  let rec go k = function
    | [] | [ _ ] -> None
    | lv :: rest ->
      if String.equal lv.l_index index then Some k else go (k + 1) rest
  in
  go 0 n.levels

(** The pair view whose outer index is [index], if any: levels [k]/[k+1]
    of the nest holding a non-innermost level named [index]. *)
let find_by_outer_index_opt (p : Stmt.program) index : pair option =
  List.find_map
    (fun n -> Option.map (pair_at n) (level_position n index))
    (find p)

(** The pair view whose outer index is [index].  @raise Not_found *)
let find_by_outer_index (p : Stmt.program) index : pair =
  match find_by_outer_index_opt p index with
  | Some n -> n
  | None -> raise Not_found

(** The maximal nest holding a non-innermost level named [index]. *)
let find_nest_opt (p : Stmt.program) index : t option =
  List.find_opt
    (fun n -> Option.is_some (level_position n index))
    (find p)

(** The depth of the nest suffix rooted at the level named [index]
    (e.g. the middle level of a 3-deep nest has suffix depth 2). *)
let depth_at (p : Stmt.program) index : int option =
  List.find_map
    (fun n -> Option.map (fun k -> depth n - k) (level_position n index))
    (find p)

(** Every addressable (index, suffix depth) of every maximal nest, in
    program order, outermost level first — the catalog a driver prints
    when a requested target names no nest. *)
let summary (p : Stmt.program) : (string * int) list =
  List.concat_map
    (fun n ->
      let d = depth n in
      List.filteri (fun k _ -> k <= d - 2) n.levels
      |> List.mapi (fun k lv -> (lv.l_index, d - k)))
    (find p)

(** Replace the (first) loop with index [outer_index] by the given
    statements.  @raise Not_found when no such loop exists. *)
let replace (p : Stmt.program) ~outer_index (replacement : Stmt.t list) :
    Stmt.program =
  let replaced = ref false in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index outer_index && not !replaced ->
          replaced := true;
          replacement
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then raise Not_found;
  { p with body }

let trip_count lo hi step =
  match (Expr.simplify lo, Expr.simplify hi) with
  | Expr.Int lo, Expr.Int hi ->
    Some (if hi <= lo then 0 else (hi - lo + step - 1) / step)
  | _ -> None

(** Constant trip count of the pair's outer loop, when bounds are
    constants. *)
let outer_trip_count (n : pair) : int option =
  trip_count n.outer_lo n.outer_hi n.outer_step

let inner_trip_count (n : pair) : int option =
  trip_count n.inner_lo n.inner_hi n.inner_step

(** Constant trip count of one nest level. *)
let level_trip_count (lv : level) : int option =
  trip_count lv.l_lo lv.l_hi lv.l_step

(** All statements of the pair body (pre, inner body, post). *)
let all_stmts (n : pair) : Stmt.t list = n.pre @ n.inner_body @ n.post

(** Scalars referenced anywhere in the pair (bounds included). *)
let scalars (n : pair) =
  let s = Stmt.scalars (all_stmts n) in
  let add_expr e acc = Stmt.Sset.union acc (Expr.var_set e) in
  s
  |> add_expr n.inner_lo |> add_expr n.inner_hi
  |> Stmt.Sset.add n.outer_index
  |> Stmt.Sset.add n.inner_index
