(* Discovery and manipulation of the inner-outer loop pairs that
   unroll-and-squash / unroll-and-jam operate on (§4.1).

   A nest is an outer FOR loop whose body is

     pre ; inner-FOR ; post

   where [pre] and [post] are statement lists that do not themselves
   contain the inner loop.  The transformation requirements (straight-
   line pre/post/body, invariant inner bounds, ...) are checked
   separately by [Legality]; this module only captures the shape. *)

open Uas_ir

type t = {
  outer_index : Types.var;
  outer_lo : Expr.t;
  outer_hi : Expr.t;
  outer_step : int;
  pre : Stmt.t list;
  inner_index : Types.var;
  inner_lo : Expr.t;
  inner_hi : Expr.t;
  inner_step : int;
  inner_body : Stmt.t list;
  post : Stmt.t list;
}

(** Rebuild the loop-nest statement from its parts. *)
let to_stmt (n : t) : Stmt.t =
  Stmt.For
    { index = n.outer_index;
      lo = n.outer_lo;
      hi = n.outer_hi;
      step = n.outer_step;
      body =
        n.pre
        @ [ Stmt.For
              { index = n.inner_index;
                lo = n.inner_lo;
                hi = n.inner_hi;
                step = n.inner_step;
                body = n.inner_body } ]
        @ n.post }

(** Try to view an outer loop as a 2-deep nest: its body must contain
    exactly one loop (at the top level of the body). *)
let of_loop (l : Stmt.loop) : t option =
  let contains_loop stmts =
    List.exists
      (fun s ->
        Stmt.fold
          (fun acc s -> acc || match s with Stmt.For _ -> true | _ -> false)
          false s)
      stmts
  in
  let rec split pre = function
    | [] -> None
    | Stmt.For inner :: post ->
      if
        List.exists (function Stmt.For _ -> true | _ -> false) post
        || contains_loop (pre @ post)
        || contains_loop inner.body  (* the inner loop must be innermost *)
      then None
      else
        Some
          { outer_index = l.index;
            outer_lo = l.lo;
            outer_hi = l.hi;
            outer_step = l.step;
            pre = List.rev pre;
            inner_index = inner.index;
            inner_lo = inner.lo;
            inner_hi = inner.hi;
            inner_step = inner.step;
            inner_body = inner.body;
            post }
    | s :: rest -> split (s :: pre) rest
  in
  split [] l.body

(** All 2-deep nests in a program, outermost first, paired with the
    outer-loop index that identifies them for [replace]. *)
let find (p : Stmt.program) : t list =
  let rec scan acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Stmt.For l -> (
          match of_loop l with
          | Some n -> n :: acc
          | None -> scan acc l.body)
        | Stmt.If (_, t, e) -> scan (scan acc t) e
        | Stmt.Assign _ | Stmt.Store _ -> acc)
      acc stmts
  in
  List.rev (scan [] p.body)

(** The nest whose outer index is [index], if any. *)
let find_by_outer_index_opt (p : Stmt.program) index : t option =
  List.find_opt (fun n -> String.equal n.outer_index index) (find p)

(** The nest whose outer index is [index].  @raise Not_found *)
let find_by_outer_index (p : Stmt.program) index : t =
  match find_by_outer_index_opt p index with
  | Some n -> n
  | None -> raise Not_found

(** Replace the (first) outer loop with index [outer_index] by the given
    statements.  @raise Not_found when no such loop exists. *)
let replace (p : Stmt.program) ~outer_index (replacement : Stmt.t list) :
    Stmt.program =
  let replaced = ref false in
  let rec go stmts =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.For l when String.equal l.index outer_index && not !replaced ->
          replaced := true;
          replacement
        | Stmt.For l -> [ Stmt.For { l with body = go l.body } ]
        | Stmt.If (c, t, e) -> [ Stmt.If (c, go t, go e) ]
        | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  let body = go p.body in
  if not !replaced then raise Not_found;
  { p with body }

(** Constant trip count of the outer loop, when bounds are constants. *)
let outer_trip_count (n : t) : int option =
  match (Expr.simplify n.outer_lo, Expr.simplify n.outer_hi) with
  | Expr.Int lo, Expr.Int hi ->
    Some (if hi <= lo then 0 else (hi - lo + n.outer_step - 1) / n.outer_step)
  | _ -> None

let inner_trip_count (n : t) : int option =
  match (Expr.simplify n.inner_lo, Expr.simplify n.inner_hi) with
  | Expr.Int lo, Expr.Int hi ->
    Some (if hi <= lo then 0 else (hi - lo + n.inner_step - 1) / n.inner_step)
  | _ -> None

(** All statements of the nest body (pre, inner body, post). *)
let all_stmts (n : t) : Stmt.t list = n.pre @ n.inner_body @ n.post

(** Scalars referenced anywhere in the nest (bounds included). *)
let scalars (n : t) =
  let s = Stmt.scalars (all_stmts n) in
  let add_expr e acc = Stmt.Sset.union acc (Expr.var_set e) in
  s
  |> add_expr n.inner_lo |> add_expr n.inner_hi
  |> Stmt.Sset.add n.outer_index
  |> Stmt.Sset.add n.inner_index
