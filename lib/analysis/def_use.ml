(* Scalar def/use and liveness facts for straight-line statement lists
   (the shape of inner-loop bodies after if-conversion).

   The facts the squash/jam transformations need:
   - [upward_exposed]: scalars read before any write in the block — when
     the block is a loop body, these are exactly the values that flow in
     from outside or from the previous iteration;
   - [defined]: scalars written by the block;
   - [loop_carried]: upward-exposed AND defined — scalar recurrences of
     the loop (they become DFG backedges);
   - [live_out_of_nest]: scalars whose value may be observed after the
     nest (used by variable expansion to decide what must be restored). *)

open Uas_ir
module Sset = Stmt.Sset

type stmt_du = { du_defs : Sset.t; du_uses : Sset.t }

(** Defs/uses summary of one statement.  [du_uses] is the set of scalars
    the statement may read *before* defining them itself (its upward-
    exposed reads), so block-level liveness composes correctly through
    nested control flow. *)
let rec of_stmt (s : Stmt.t) : stmt_du =
  match s with
  | Stmt.Assign (x, e) -> { du_defs = Sset.singleton x; du_uses = Expr.var_set e }
  | Stmt.Store (_, i, e) ->
    { du_defs = Sset.empty;
      du_uses = Sset.union (Expr.var_set i) (Expr.var_set e) }
  | Stmt.If (c, t, f) ->
    (* either branch may run: defs union (conservative as a MAY-def
       summary), exposed uses union plus the condition *)
    { du_defs = Stmt.defs (t @ f);
      du_uses =
        Sset.union (Expr.var_set c)
          (Sset.union (upward_exposed t) (upward_exposed f)) }
  | Stmt.For l ->
    (* the loop defines its own index before the body can read it, and
       body-internal reads that follow a body def are not exposed; a
       read feeding from the previous iteration IS exposed (the first
       iteration reads the incoming value) *)
    { du_defs = Sset.add l.index (Stmt.defs l.body);
      du_uses =
        Sset.remove l.index
          (Sset.union
             (Sset.union (Expr.var_set l.lo) (Expr.var_set l.hi))
             (upward_exposed l.body)) }

(** Scalars read before any write, scanning the block in order. *)
and upward_exposed (stmts : Stmt.t list) : Sset.t =
  let _, exposed =
    List.fold_left
      (fun (written, exposed) s ->
        let du = of_stmt s in
        let fresh_uses = Sset.diff du.du_uses written in
        (Sset.union written du.du_defs, Sset.union exposed fresh_uses))
      (Sset.empty, Sset.empty) stmts
  in
  exposed

let defined (stmts : Stmt.t list) : Sset.t = Stmt.defs stmts

(** Scalar recurrences when [stmts] is a loop body: read (possibly from
    the previous iteration) and also written. *)
let loop_carried (stmts : Stmt.t list) : Sset.t =
  Sset.inter (upward_exposed stmts) (defined stmts)

(** Scalars whose last write in the block reaches the end (i.e. all
    defined scalars — blocks are straight-line, so every def reaches the
    exit unless overwritten, and the final value is still the block's). *)
let live_out_candidates (stmts : Stmt.t list) : Sset.t = defined stmts

(** Backward liveness over a straight-line block: given the set live at
    the block's exit, the set live at its entry. *)
let live_in_of_block ~(live_out : Sset.t) (stmts : Stmt.t list) : Sset.t =
  List.fold_right
    (fun s live ->
      let du = of_stmt s in
      Sset.union du.du_uses (Sset.diff live du.du_defs))
    stmts live_out

(** Per-statement live-after sets for a straight-line block, front to
    back, given liveness at the exit. *)
let live_after_each ~(live_out : Sset.t) (stmts : Stmt.t list) :
    (Stmt.t * Sset.t) list =
  let rec go = function
    | [] -> ([], live_out)
    | s :: rest ->
      let annotated, live_after = go rest in
      let du = of_stmt s in
      let live_before = Sset.union du.du_uses (Sset.diff live_after du.du_defs) in
      ((s, live_after) :: annotated, live_before)
  in
  fst (go stmts)

(** Scalars of the nest that are read by the rest of the program after
    the nest completes.  Conservative: any scalar used anywhere outside
    the given outer loop (we do not track control flow past the nest). *)
let used_outside_nest (p : Stmt.program) (nest : Loop_nest.pair) : Sset.t =
  let nest_stmt = Loop_nest.pair_to_stmt nest in
  let rec strip stmts =
    List.concat_map
      (fun s ->
        if Stmt.equal s nest_stmt then []
        else
          match s with
          | Stmt.For l -> [ Stmt.For { l with body = strip l.body } ]
          | Stmt.If (c, t, e) -> [ Stmt.If (c, strip t, strip e) ]
          | Stmt.Assign _ | Stmt.Store _ -> [ s ])
      stmts
  in
  Stmt.uses (strip p.body)

(** Maximum number of scalars simultaneously live inside a straight-line
    loop body (an estimate of the register pressure of the original
    loop).  [live_out] should include the loop-carried scalars. *)
let max_live ~(live_out : Sset.t) (stmts : Stmt.t list) : int =
  let annotated = live_after_each ~live_out stmts in
  let entry = live_in_of_block ~live_out stmts in
  List.fold_left
    (fun m (_, live) -> max m (Sset.cardinal live))
    (Sset.cardinal entry) annotated
