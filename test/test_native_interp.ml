(* The native-tier contract: the JIT (codegen → ocamlopt → Dynlink)
   must be observationally identical to the reference tree-walker —
   outputs, final scalars, the complete cycle/trip/mem-ref profile,
   the same Stuck messages and the same Out_of_fuel cutoff — and any
   compile/load failure must degrade to the fast tier, never crash,
   never produce a different answer.  The reference interpreter stays
   the oracle everywhere in this file; the native tier is always the
   candidate.  QCheck counts are lower than test_fast_interp's: every
   distinct program costs one out-of-process ocamlopt invocation. *)

open Uas_ir
module N = Uas_core.Nimble
module R = Uas_bench_suite.Registry
module Cu = Uas_pass.Cu
module Fault = Uas_runtime.Fault
module Store = Uas_runtime.Store

let prepare_or_fail ~msg p =
  match Native_interp.prepare p with
  | Ok nc -> nc
  | Error m -> Alcotest.failf "%s: native tier unavailable: %s" msg m

(* run reference and native; fail the test with the first difference.
   [prepare] must succeed here: a silent degradation to the fast tier
   would make every parity check below vacuous. *)
let check_parity ~msg (p : Stmt.program) (w : Interp.workload) =
  let reference = Interp.run p w in
  let native = Native_interp.run (prepare_or_fail ~msg p) w in
  match Interp.diff_results reference native with
  | None -> ()
  | Some d -> Alcotest.failf "%s: native tier diverges: %s" msg d

(* --- random nests, all transform versions ------------------------- *)

let native_versions =
  [ N.Original; N.Squashed 2; N.Squashed 4; N.Jammed 2; N.Combined (2, 2) ]

let test_qcheck_native_tier_bit_identical =
  QCheck.Test.make
    ~name:"native tier = reference (results + profiles), all versions"
    ~count:8 Helpers.arbitrary_diff_nest_program
    (fun p ->
      let w = Helpers.random_workload ~seed:23 p in
      List.iter
        (fun v ->
          match
            N.build_version_result p ~outer_index:"i" ~inner_index:"j" v
          with
          | Error _ -> () (* illegal at this factor: dropped, as in sweep *)
          | Ok b -> (
            let q = b.N.bv_program in
            match Native_interp.prepare q with
            | Error m ->
              QCheck.Test.fail_reportf "%s: native tier refused: %s@\n%a"
                (N.version_name v) m Pp.pp_program q
            | Ok nc -> (
              let reference = Interp.run q w in
              let native = Native_interp.run nc w in
              match Interp.diff_results reference native with
              | None -> ()
              | Some d ->
                QCheck.Test.fail_reportf "%s: native tier diverges: %s@\n%a"
                  (N.version_name v) d Pp.pp_program q)))
        native_versions;
      true)

(* one compiled module replayed on several workloads, each
   bit-identical to a fresh reference run *)
let test_compiled_reuse =
  QCheck.Test.make ~name:"one native compilation, many workloads" ~count:6
    Helpers.arbitrary_nest_program
    (fun p ->
      let nc =
        match Native_interp.prepare p with
        | Ok nc -> nc
        | Error m -> QCheck.Test.fail_reportf "native tier refused: %s" m
      in
      List.iter
        (fun seed ->
          let w = Helpers.random_workload ~seed p in
          let reference = Interp.run p w in
          let native = Native_interp.run nc w in
          match Interp.diff_results reference native with
          | None -> ()
          | Some d ->
            QCheck.Test.fail_reportf "seed %d: native tier diverges: %s" seed d)
        [ 1; 2; 3 ];
      true)

(* --- the whole Table 6.1 suite ------------------------------------ *)

let test_registry_benchmarks_identical () =
  List.iter
    (fun (b : R.benchmark) ->
      check_parity ~msg:b.R.b_name b.R.b_program b.R.b_workload)
    (R.all () @ R.extras ())

let test_registry_check_native_tier () =
  List.iter
    (fun (b : R.benchmark) ->
      match
        R.check_against_reference ~tier:Fast_interp.Native b b.R.b_program
      with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s: native-tier check failed: %s" b.R.b_name e)
    (R.all () @ R.extras ())

(* --- Stuck parity -------------------------------------------------- *)

module B = Builder

let stuck_of f =
  match f () with
  | (_ : Interp.result) -> None
  | exception Interp.Stuck m -> Some m

let check_stuck_parity ~msg p w =
  let reference = stuck_of (fun () -> Interp.run p w) in
  let native =
    stuck_of (fun () -> Native_interp.run (prepare_or_fail ~msg p) w)
  in
  match (reference, native) with
  | Some a, Some b -> Alcotest.(check string) (msg ^ ": same message") a b
  | None, None -> Alcotest.failf "%s: expected Stuck from both tiers" msg
  | Some a, None -> Alcotest.failf "%s: only reference stuck (%s)" msg a
  | None, Some b -> Alcotest.failf "%s: only native tier stuck (%s)" msg b

let w0 = Interp.workload ()

let nest body =
  B.program "stuck" ~locals:[ ("i", Types.Tint); ("a", Types.Tint) ]
    ~arrays:[ B.output "dst" 4 ]
    ~roms:[ B.rom_decl "tab" [| 1; 2; 3 |] ]
    [ B.for_ "i" ~hi:(B.int 4) body ]

let test_stuck_parity () =
  check_stuck_parity ~msg:"store out of bounds"
    (nest [ B.store "dst" (B.int 9) (B.v "i") ])
    w0;
  check_stuck_parity ~msg:"load from undeclared array"
    (nest [ B.("a" <-- load "nope" (v "i")) ])
    w0;
  check_stuck_parity ~msg:"store to undeclared array"
    (nest [ B.store "nope" (B.v "i") (B.v "i") ])
    w0;
  check_stuck_parity ~msg:"read of undeclared scalar"
    (nest [ B.store "dst" (B.v "i") (B.v "ghost") ])
    w0;
  check_stuck_parity ~msg:"assignment to undeclared scalar"
    (nest [ B.("ghost" <-- v "i") ])
    w0;
  check_stuck_parity ~msg:"division by zero"
    (nest [ B.("a" <-- v "i" / (v "i" - v "i")) ])
    w0;
  check_stuck_parity ~msg:"rom lookup out of bounds"
    (nest [ B.("a" <-- rom "tab" (v "i" + int 2)) ])
    w0;
  check_stuck_parity ~msg:"lookup in undeclared rom"
    (nest [ B.("a" <-- rom "missing" (v "i")) ])
    w0;
  check_stuck_parity ~msg:"non-integer loop bound"
    (B.program "fbound" ~locals:[ ("i", Types.Tint) ]
       [ B.for_ "i" ~hi:(B.flt 2.0) [] ])
    w0;
  check_stuck_parity ~msg:"workload sets undeclared scalar"
    (nest [ B.store "dst" (B.v "i") (B.v "i") ])
    (Interp.workload ~scalars:[ ("ghost", Types.VInt 1) ] ());
  check_stuck_parity ~msg:"workload array length mismatch"
    (B.program "wl" ~locals:[ ("i", Types.Tint) ]
       ~arrays:[ B.input "src" 4; B.output "dst" 4 ]
       [ B.for_ "i" ~hi:(B.int 4)
           [ B.store "dst" (B.v "i") (B.load "src" (B.v "i")) ] ])
    (Interp.workload ~arrays:[ ("src", [| Types.VInt 1 |]) ] ())

(* an undeclared loop index is admitted dynamically by the reference
   interpreter: legal to read after its loop ran, stuck before *)
let test_undeclared_index_parity () =
  let p after =
    B.program "undecl" ~locals:[ ("a", Types.Tint) ]
      ~arrays:[ B.output "dst" 4 ]
      ([ B.for_ "u" ~hi:(B.int 3) [ B.("a" <-- v "u") ] ] @ after)
  in
  check_parity ~msg:"read undeclared index after its loop"
    (p [ B.store "dst" (B.int 0) (B.v "u") ])
    w0;
  check_stuck_parity ~msg:"read undeclared index before its loop"
    (B.program "undecl2" ~locals:[ ("a", Types.Tint) ]
       ~arrays:[ B.output "dst" 4 ]
       [ B.store "dst" (B.int 0) (B.v "u");
         B.for_ "u" ~hi:(B.int 3) [ B.("a" <-- v "u") ] ])
    w0;
  (* a zero-trip loop still defines its index (the C-style exit value) *)
  check_parity ~msg:"zero-trip loop defines its index"
    (p [ B.for_ "u" ~lo:(B.int 5) ~hi:(B.int 2) [];
         B.store "dst" (B.int 1) (B.v "u") ])
    w0

(* --- Out_of_fuel parity -------------------------------------------- *)

let test_fuel_parity () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  let w = Helpers.random_workload p in
  let nc = prepare_or_fail ~msg:"fuel parity" p in
  let full = (Interp.run p w).Interp.profile.Interp.stmts_executed in
  let runs_with fuel f =
    match f fuel with
    | (_ : Interp.result) -> true
    | exception Interp.Out_of_fuel -> false
  in
  List.iter
    (fun fuel ->
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d: same cutoff" fuel)
        (runs_with fuel (fun fuel -> Interp.run ~fuel p w))
        (runs_with fuel (fun fuel -> Native_interp.run ~fuel nc w)))
    [ 1; 2; full - 1; full; full + 1 ]

(* --- Cu artifact reuse --------------------------------------------- *)

(* the unit memoizes its native artifact like the fast one: repeated
   access is the same preparation (same memo entry), and a program
   change through with_program re-prepares *)
let test_cu_native_reuse () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  let cu = Cu.make p ~outer_index:"i" ~inner_index:"j" in
  let a =
    match Cu.native cu with
    | Ok nc -> nc
    | Error m -> Alcotest.failf "native tier unavailable: %s" m
  in
  let b =
    match Cu.native cu with
    | Ok nc -> nc
    | Error m -> Alcotest.failf "native tier unavailable on reuse: %s" m
  in
  Alcotest.(check bool) "same prepared artifact" true (a == b);
  (* a new program invalidates the cached artifact but still prepares *)
  let q = Helpers.fg_loop ~m:3 ~n:5 in
  let cu2 = Cu.with_program cu q in
  (match Cu.native cu2 with
  | Ok nc ->
    Alcotest.(check bool) "new program, new artifact" true (not (nc == a));
    let w = Helpers.random_workload q in
    (match Interp.diff_results (Interp.run q w) (Native_interp.run nc w) with
    | None -> ()
    | Some d -> Alcotest.failf "rebuilt artifact diverges: %s" d)
  | Error m -> Alcotest.failf "native tier unavailable after invalidation: %s" m);
  (* the original unit still serves its own artifact *)
  match Cu.native cu with
  | Ok nc -> Alcotest.(check bool) "original still cached" true (nc == a)
  | Error m -> Alcotest.failf "original artifact lost: %s" m

(* --- the artifact store: warm loads ------------------------------- *)

let with_temp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uas-jit-store-%d" (Unix.getpid ()))
  in
  match Store.open_dir dir with
  | Error m -> Alcotest.failf "open_dir %s: %s" dir m
  | Ok s ->
    Store.install s;
    Fun.protect
      ~finally:(fun () ->
        Store.uninstall ();
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
      (fun () -> f ())

let test_store_warm_load () =
  with_temp_store @@ fun () ->
  let p = Helpers.fg_loop ~m:5 ~n:3 in
  let w = Helpers.random_workload p in
  Native_interp.clear_memo ();
  let cold = prepare_or_fail ~msg:"cold prepare" p in
  Alcotest.(check bool) "cold run compiles" false (Native_interp.from_store cold);
  (* drop the in-process memo: the second prepare must be served by the
     store (the already-linked module is reused — native code cannot be
     unloaded — but the bytes round-trip through the cache) *)
  Native_interp.clear_memo ();
  let warm = prepare_or_fail ~msg:"warm prepare" p in
  Alcotest.(check bool) "warm run hits the store" true
    (Native_interp.from_store warm);
  match Interp.diff_results (Interp.run p w) (Native_interp.run warm w) with
  | None -> ()
  | Some d -> Alcotest.failf "store-served module diverges: %s" d

(* --- degradation: faults and missing toolchain --------------------- *)

let arm_or_fail plan =
  match Fault.arm plan with
  | Ok () -> ()
  | Error m -> Alcotest.failf "bad fault plan %S: %s" plan m

(* every jit.compile fault kind degrades preparation to an Error (and
   run_program to a bit-identical fast-tier run) — never an escape *)
let test_jit_fault_degrades () =
  let p = Helpers.fg_loop ~m:6 ~n:2 in
  let w = Helpers.random_workload p in
  List.iter
    (fun kind ->
      Native_interp.clear_memo ();
      Fault.set_stall_cap 0.01;
      arm_or_fail (Printf.sprintf "jit.compile:%s:1" kind);
      Fun.protect ~finally:Fault.clear @@ fun () ->
      (match Native_interp.prepare p with
      | Ok _ -> Alcotest.failf "%s: expected degraded preparation" kind
      | Error m ->
        Alcotest.(check bool)
          (kind ^ ": reason mentions the site/compiler")
          true
          (Helpers.contains ~sub:"jit.compile" m
          || Helpers.contains ~sub:"ocamlopt" m));
      (* the dispatcher still answers, on the fast tier, bit-identical *)
      Native_interp.clear_memo ();
      arm_or_fail (Printf.sprintf "jit.compile:%s:1" kind);
      match Interp.diff_results (Interp.run p w) (Native_interp.run_program p w)
      with
      | None -> ()
      | Some d -> Alcotest.failf "%s: degraded run diverges: %s" kind d)
    [ "raise"; "stall"; "corrupt" ]

(* a missing toolchain (bogus ocamlfind) and missing build objects both
   degrade with a reason — and the cell still verifies on the fast
   tier via the experiments path, with the incident on record *)
let test_missing_toolchain_degrades () =
  let p = Helpers.fg_loop ~m:2 ~n:7 in
  let w = Helpers.random_workload p in
  let with_env var value f =
    Unix.putenv var value;
    Fun.protect ~finally:(fun () -> Unix.putenv var "") f
  in
  Native_interp.clear_memo ();
  with_env Uas_runtime.Build_info.jit_ocamlfind_env_var
    "/nonexistent/uas-ocamlfind" (fun () ->
      (match Native_interp.prepare p with
      | Ok _ -> Alcotest.fail "expected a missing-toolchain degradation"
      | Error m ->
        Alcotest.(check bool) "reason mentions the failing compiler" true
          (Helpers.contains ~sub:"ocamlopt failed" m));
      match Interp.diff_results (Interp.run p w) (Native_interp.run_program p w)
      with
      | None -> ()
      | Some d -> Alcotest.failf "degraded run diverges: %s" d);
  Native_interp.clear_memo ();
  with_env Native_interp.objs_env_var "/nonexistent/uas-objs" (fun () ->
      match Native_interp.prepare p with
      | Ok _ -> Alcotest.fail "expected a missing-objects degradation"
      | Error m ->
        Alcotest.(check bool) "reason mentions the objects dir" true
          (Helpers.contains ~sub:Native_interp.objs_env_var m));
  Native_interp.clear_memo ()

(* the experiments path: a native cell under a jit.compile fault
   degrades to fast with an incident footnote, and still verifies *)
let test_experiments_cell_degrades () =
  let module E = Uas_core.Experiments in
  Native_interp.clear_memo ();
  arm_or_fail "jit.compile:raise:1";
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Native_interp.clear_memo ())
  @@ fun () ->
  let b = R.skipjack_mem ~m:4 () in
  let row =
    E.run_benchmark ~verify:true ~tier:Fast_interp.Native
      ~versions:[ N.Original ] ~jobs:1 b
  in
  match row.E.br_cells with
  | [ c ] ->
    Alcotest.(check bool) "cell still verified (fast tier)" true
      c.E.c_verified;
    Alcotest.(check bool) "incident footnote recorded" true
      (List.exists
         (fun d ->
           Helpers.contains ~sub:"native jit unavailable"
             (Uas_pass.Diag.to_string d))
         c.E.c_incidents)
  | cells -> Alcotest.failf "expected one cell, got %d" (List.length cells)

(* --- tier plumbing ------------------------------------------------- *)

let test_tier_of_string_native () =
  let check s expected =
    Alcotest.(check bool) s true (Fast_interp.tier_of_string s = expected)
  in
  check "native" (Some Fast_interp.Native);
  check "NATIVE" (Some Fast_interp.Native);
  check "jit" None;
  Alcotest.(check string) "tier_name" "native"
    (Fast_interp.tier_name Fast_interp.Native)

let test_run_tier_dispatch () =
  let p = Helpers.fg_loop ~m:3 ~n:3 in
  let w = Helpers.random_workload p in
  let a = Native_interp.run_tier Fast_interp.Ref p w in
  let b = Native_interp.run_tier Fast_interp.Fast p w in
  let c = Native_interp.run_tier Fast_interp.Native p w in
  (match Interp.diff_results a b with
  | None -> ()
  | Some d -> Alcotest.failf "ref vs fast diverge: %s" d);
  match Interp.diff_results a c with
  | None -> ()
  | Some d -> Alcotest.failf "ref vs native diverge: %s" d

let suite =
  [ QCheck_alcotest.to_alcotest test_qcheck_native_tier_bit_identical;
    QCheck_alcotest.to_alcotest test_compiled_reuse;
    Alcotest.test_case "registry benchmarks bit-identical" `Slow
      test_registry_benchmarks_identical;
    Alcotest.test_case "registry check passes on native tier" `Slow
      test_registry_check_native_tier;
    Alcotest.test_case "Stuck parity (messages bit-identical)" `Quick
      test_stuck_parity;
    Alcotest.test_case "undeclared loop index parity" `Quick
      test_undeclared_index_parity;
    Alcotest.test_case "Out_of_fuel parity" `Quick test_fuel_parity;
    Alcotest.test_case "Cu native artifact reuse + invalidation" `Quick
      test_cu_native_reuse;
    Alcotest.test_case "warm prepare served from the artifact store" `Quick
      test_store_warm_load;
    Alcotest.test_case "jit.compile faults degrade to fast" `Quick
      test_jit_fault_degrades;
    Alcotest.test_case "missing toolchain degrades to fast" `Quick
      test_missing_toolchain_degrades;
    Alcotest.test_case "experiments cell degrades with incident" `Quick
      test_experiments_cell_degrades;
    Alcotest.test_case "tier_of_string native" `Quick
      test_tier_of_string_native;
    Alcotest.test_case "run_tier three-way dispatch" `Quick
      test_run_tier_dispatch ]
