(* Fault-injection integration: an injected fault at any pipeline site
   surfaces as a structured diagnostic — never an escaping backtrace —
   translation validation catches a miscompiling (corrupted) rewrite
   and degrades to the last-known-good program, a verification run
   gone stuck degrades its cell without aborting the sweep, and a
   clean run is byte-identical with validation on or off. *)

module Fault = Uas_runtime.Fault
module Rw = Uas_transform.Rewrite
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module E = Uas_core.Experiments
module N = Uas_core.Nimble
module R = Uas_bench_suite.Registry

let cu_of p = Cu.make p ~outer_index:"i" ~inner_index:"j"

let arm_or_fail plan =
  match Fault.arm plan with
  | Ok () -> ()
  | Error m -> Alcotest.failf "bad fault plan %S: %s" plan m

let reset () =
  Fault.clear ();
  Fault.set_stall_cap 1.0

(* --- satellite (d): nothing escapes Pass.run as a backtrace ---------- *)

(* Every registered rewrite × every fault kind × both pipeline sites:
   Pass.run returns Ok or a diagnostic that renders — the exception
   translator in Diag covers every injected fault.  The seed is pinned
   by QCHECK_SEED in dune, but the property is total over the
   enumerated space anyway. *)
let test_injection_never_escapes =
  let arb =
    QCheck.make
      ~print:(fun (n, k, s) -> Printf.sprintf "%s:%s at %s" n k s)
      QCheck.Gen.(
        triple
          (oneofl (Rw.names ()))
          (oneofl [ "raise"; "stall"; "corrupt" ])
          (oneofl [ "pass.run"; "rewrite.apply" ]))
  in
  QCheck.Test.make ~name:"injected faults never escape Pass.run" ~count:150
    arb (fun (name, kind, site) ->
      Fault.set_stall_cap 0.01;
      arm_or_fail (Printf.sprintf "%s=%s:%s:1" site name kind);
      let p = Helpers.fg_loop ~m:4 ~n:4 in
      let passes = [ Stages.analyze; Rw.pass ~factor:2 ~cut:1 name ] in
      let outcome =
        try Ok (Pass.run (cu_of p) passes) with e -> Error e
      in
      reset ();
      match outcome with
      | Error e ->
        QCheck.Test.fail_reportf "%s:%s at %s escaped Pass.run: %s" name kind
          site (Printexc.to_string e)
      | Ok (Ok _) -> true
      | Ok (Error d) ->
        (* the diagnostic renders, attributed to a pass *)
        String.length (Diag.to_string d) > 0
        && String.length d.Diag.d_pass > 0)

(* The exception translator renders the injected fault by site and
   kind, for every kind that raises at each site. *)
let test_injected_fault_renders () =
  reset ();
  Fun.protect ~finally:reset (fun () ->
      Fault.set_stall_cap 0.01;
      let p = Helpers.fg_loop ~m:4 ~n:4 in
      List.iter
        (fun (site, kind) ->
          arm_or_fail (Printf.sprintf "%s=squash:%s:1" site kind);
          match
            Pass.run (cu_of p) [ Stages.analyze; Rw.pass ~factor:2 "squash" ]
          with
          | Error d ->
            Alcotest.(check bool)
              (Printf.sprintf "%s:%s renders as an injected-fault diag" site
                 kind)
              true
              (Helpers.contains
                 ~sub:(Printf.sprintf "injected fault at site %s" site)
                 (Diag.to_string d))
          | Ok _ ->
            Alcotest.failf "%s:%s did not fire" site kind)
        [ ("pass.run", "raise"); ("pass.run", "stall");
          ("pass.run", "corrupt"); ("rewrite.apply", "raise");
          ("rewrite.apply", "stall") ])

(* --- translation validation ----------------------------------------- *)

(* With no faults armed, validation is invisible: same program as the
   plain application, no incidents. *)
let test_validated_apply_clean () =
  reset ();
  let p = Helpers.memory_loop ~m:8 ~n:4 in
  let probe = Helpers.random_workload p in
  let rw = Rw.get "squash" in
  let params = { Rw.default_params with Rw.factor = Some 2 } in
  match
    ( Rw.apply ~params rw (cu_of p),
      Rw.validated_apply ~params ~probe rw (cu_of p) )
  with
  | Ok plain, Ok validated ->
    Alcotest.(check string)
      "same program"
      (Uas_ir.Pp.program_to_string (Cu.program plain))
      (Uas_ir.Pp.program_to_string (Cu.program validated));
    Alcotest.(check int) "no incidents" 0
      (List.length (Cu.incidents validated))
  | _ -> Alcotest.fail "squash(2) must apply cleanly on the memory loop"

(* A corrupted application is caught by the probe runs: the rewrite is
   not applied, the unit degrades to the pre-rewrite program with an
   incident instead of propagating a miscompiled kernel. *)
let test_validated_apply_catches_corruption () =
  reset ();
  Fun.protect ~finally:reset (fun () ->
      arm_or_fail "rewrite.apply=squash:corrupt:1";
      let p = Helpers.memory_loop ~m:8 ~n:4 in
      let probe = Helpers.random_workload p in
      let rw = Rw.get "squash" in
      let params = { Rw.default_params with Rw.factor = Some 2 } in
      match Rw.validated_apply ~params ~probe rw (cu_of p) with
      | Error d -> Alcotest.failf "degradation must be Ok: %s" (Diag.to_string d)
      | Ok cu ->
        Alcotest.(check string)
          "degraded to the pre-rewrite program"
          (Uas_ir.Pp.program_to_string p)
          (Uas_ir.Pp.program_to_string (Cu.program cu));
        (match Cu.incidents cu with
        | [ d ] ->
          Alcotest.(check bool)
            "incident names the validation failure" true
            (Helpers.contains ~sub:"validation failed" (Diag.to_string d))
        | ds -> Alcotest.failf "expected 1 incident, got %d" (List.length ds)))

(* Without validation the same corruption sails through — the scenario
   validated_apply exists for. *)
let test_unvalidated_corruption_propagates () =
  reset ();
  Fun.protect ~finally:reset (fun () ->
      arm_or_fail "rewrite.apply=squash:corrupt:1";
      let p = Helpers.memory_loop ~m:8 ~n:4 in
      let rw = Rw.get "squash" in
      let params = { Rw.default_params with Rw.factor = Some 2 } in
      match Rw.apply ~params rw (cu_of p) with
      | Ok cu ->
        Alcotest.(check bool)
          "program differs from the honest application" true
          (not
             (String.equal
                (Uas_ir.Pp.program_to_string (Cu.program cu))
                (let clean =
                   Result.get_ok
                     (reset ();
                      Rw.apply ~params rw (cu_of p))
                 in
                 Uas_ir.Pp.program_to_string (Cu.program clean))))
      | Error d -> Alcotest.failf "corrupt must not reject: %s" (Diag.to_string d))

(* --- satellite (b): a stuck verification run degrades, never aborts -- *)

let iir () =
  match R.find "iir" with
  | Some b -> b
  | None -> Alcotest.fail "IIR benchmark missing"

let test_stuck_verification_degrades_cell () =
  reset ();
  Fun.protect ~finally:reset (fun () ->
      (* the stall kind at the interpreter site exhausts the fuel
         budget: the verification run raises Out_of_fuel *)
      arm_or_fail "interp.run:stall:1";
      let row =
        E.run_benchmark ~verify:true ~versions:[ N.Original ] ~jobs:1 (iir ())
      in
      match row.E.br_cells with
      | [ c ] ->
        Alcotest.(check bool) "cell unverified" false c.E.c_verified;
        Alcotest.(check bool)
          "incident says out of fuel" true
          (List.exists
             (fun d -> Helpers.contains ~sub:"out of fuel" (Diag.to_string d))
             c.E.c_incidents);
        let rendered = Fmt.str "%a" E.pp_table_6_2 [ row ] in
        Alcotest.(check bool)
          "degraded footer rendered" true
          (Helpers.contains ~sub:"degraded:" rendered)
      | cells -> Alcotest.failf "expected 1 cell, got %d" (List.length cells))

(* --- the artifact store under injected faults ------------------------ *)

module Store = Uas_runtime.Store

let store_dir_counter = ref 0

let with_fresh_store f =
  incr store_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uas-fault-store-%d-%d" (Unix.getpid ())
         !store_dir_counter)
  in
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error m -> Alcotest.failf "open_dir %s: %s" dir m
  in
  Store.install s;
  Fun.protect ~finally:Store.uninstall (fun () -> f s)

let store_versions = [ N.Original; N.Squashed 2 ]

(* the table body with the incident footers stripped: what the cells
   actually say, independent of how the trouble is footnoted *)
let render_body row =
  let row =
    { row with
      E.br_cells =
        List.map (fun c -> { c with E.c_incidents = [] }) row.E.br_cells }
  in
  Fmt.str "%a%a" E.pp_table_6_2 [ row ] E.pp_table_6_3 [ row ]

let run_store_row () =
  E.run_benchmark ~versions:store_versions ~jobs:1 (iir ())

let row_has_incident ~sub row =
  List.exists
    (fun (c : E.cell) ->
      List.exists
        (fun d -> Helpers.contains ~sub (Diag.to_string d))
        c.E.c_incidents)
    row.E.br_cells

(* A fault on the cached-artifact read path — injected raise or
   injected bit rot — is a miss plus an incident: the cell recomputes
   to the same values it had cold, never serves the poisoned bytes,
   and never backtraces. *)
let test_store_read_fault_recomputes () =
  reset ();
  let baseline = render_body (run_store_row ()) in
  List.iter
    (fun (plan, expect) ->
      with_fresh_store (fun _s ->
          Fun.protect ~finally:reset (fun () ->
              let cold = run_store_row () in
              Alcotest.(check string)
                (plan ^ ": cold run matches the storeless baseline") baseline
                (render_body cold);
              arm_or_fail plan;
              let warm = run_store_row () in
              Alcotest.(check string)
                (plan ^ ": recomputed cells byte-identical") baseline
                (render_body warm);
              Alcotest.(check bool)
                (plan ^ ": incident says recomputing") true
                (row_has_incident ~sub:"recomputing" warm);
              Alcotest.(check bool)
                (plan ^ ": incident names the cause") true
                (row_has_incident ~sub:expect warm))))
    [ ("store.read=report:raise:1", "injected fault at site store.read");
      ("store.read=report:corrupt:1", "checksum mismatch") ]

(* An injected write failure degrades to compute-without-caching: the
   cells are untouched, the failure is on record. *)
let test_store_write_fault_degrades () =
  reset ();
  let baseline = render_body (run_store_row ()) in
  with_fresh_store (fun _s ->
      Fun.protect ~finally:reset (fun () ->
          arm_or_fail "store.write=report:raise:1";
          let row = run_store_row () in
          Alcotest.(check string) "cells byte-identical" baseline
            (render_body row);
          Alcotest.(check bool) "write failure is an incident" true
            (row_has_incident ~sub:"write failed" row)))

(* Corrupt-on-write poisons the entry on disk under a truthful header;
   the next (clean) run detects the checksum mismatch, recomputes, and
   footnotes the incident — a wrong cached artifact never reaches a
   table cell. *)
let test_store_poisoned_entry_recovers () =
  reset ();
  let baseline = render_body (run_store_row ()) in
  with_fresh_store (fun _s ->
      Fun.protect ~finally:reset (fun () ->
          arm_or_fail "store.write=report:corrupt:1";
          let cold = run_store_row () in
          Alcotest.(check string) "poisoning is invisible at write time"
            baseline (render_body cold);
          reset ();
          let warm = run_store_row () in
          Alcotest.(check string) "recomputed cells byte-identical" baseline
            (render_body warm);
          Alcotest.(check bool) "poison detected as an incident" true
            (row_has_incident ~sub:"checksum mismatch" warm)))

(* --- clean runs are byte-identical, validation on or off ------------- *)

let test_validate_off_on_byte_identical () =
  reset ();
  let versions = [ N.Original; N.Squashed 2 ] in
  let render validate =
    let row =
      E.run_benchmark ~verify:true ~validate ~versions ~jobs:1 (iir ())
    in
    Fmt.str "%a%a" E.pp_table_6_2 [ row ] E.pp_table_6_3 [ row ]
  in
  Alcotest.(check string)
    "identical tables" (render false) (render true)

let suite =
  [ QCheck_alcotest.to_alcotest test_injection_never_escapes;
    Alcotest.test_case "injected faults render by site" `Quick
      test_injected_fault_renders;
    Alcotest.test_case "validated_apply: clean pass unchanged" `Quick
      test_validated_apply_clean;
    Alcotest.test_case "validated_apply: corruption degrades" `Quick
      test_validated_apply_catches_corruption;
    Alcotest.test_case "unvalidated corruption propagates" `Quick
      test_unvalidated_corruption_propagates;
    Alcotest.test_case "stuck verification degrades the cell" `Quick
      test_stuck_verification_degrades_cell;
    Alcotest.test_case "store.read fault recomputes with incident" `Quick
      test_store_read_fault_recomputes;
    Alcotest.test_case "store.write fault degrades to uncached" `Quick
      test_store_write_fault_degrades;
    Alcotest.test_case "poisoned store entry recovers" `Quick
      test_store_poisoned_entry_recovers;
    Alcotest.test_case "validate on/off byte-identical when clean" `Quick
      test_validate_off_on_byte_identical ]
