(* The driver layer: version construction (including the §2 combined
   jam+squash), experiment tables, figure series, and benchmark
   registry plumbing. *)

module S = Uas_bench_suite
module N = Uas_core.Nimble
module E = Uas_core.Experiments
module Estimate = Uas_hw.Estimate

let bench = lazy (S.Registry.skipjack_hw ~m:16 ())

let row =
  lazy
    (E.run_benchmark ~verify:false (Lazy.force bench))

let test_version_names () =
  List.iter
    (fun (v, s) -> Alcotest.(check string) s s (N.version_name v))
    [ (N.Original, "original");
      (N.Pipelined, "pipelined");
      (N.Squashed 8, "squash(8)");
      (N.Jammed 4, "jam(4)");
      (N.Combined (2, 4), "jam(2)+squash(4)") ]

let test_combined_version_verified () =
  let b = Lazy.force bench in
  List.iter
    (fun (j, s) ->
      let built =
        N.build_version b.S.Registry.b_program ~outer_index:"i"
          ~inner_index:"j" (N.Combined (j, s))
      in
      match S.Registry.check_against_reference b built.N.bv_program with
      | Ok () -> ()
      | Error m ->
        Alcotest.failf "combined jam(%d)+squash(%d): %s" j s m)
    [ (2, 2); (2, 4); (4, 2) ]

let test_combined_beats_jam_alone () =
  (* §2: jam(2)+squash(2) reaches ~4x speedup for ~2x operators *)
  let b = Lazy.force bench in
  let est v =
    N.estimate
      (N.build_version b.S.Registry.b_program ~outer_index:"i"
         ~inner_index:"j" v)
  in
  let base = est N.Original in
  let jam2 = est (N.Jammed 2) in
  let combo = est (N.Combined (2, 2)) in
  Alcotest.(check bool) "combined ops close to jam ops" true
    (combo.Estimate.r_operators <= jam2.Estimate.r_operators + 1);
  let speedup r =
    float_of_int base.Estimate.r_total_cycles
    /. float_of_int r.Estimate.r_total_cycles
  in
  Alcotest.(check bool) "combined faster than jam(2)" true
    (speedup combo > speedup jam2)

let test_figures_consistent_with_table () =
  let r = Lazy.force row in
  let norm = E.normalize r in
  let fig = List.assoc "Skipjack-hw" (E.figure_6_1 [ r ]) in
  List.iter2
    (fun n (v, x) ->
      Alcotest.(check bool) "same version order" true (n.E.n_version = v);
      Alcotest.(check (float 1e-9)) "speedup matches" n.E.n_speedup x)
    norm fig;
  let eff = List.assoc "Skipjack-hw" (E.figure_6_3 [ r ]) in
  List.iter2
    (fun n (_, x) ->
      Alcotest.(check (float 1e-9)) "efficiency = speedup/area"
        (n.E.n_speedup /. n.E.n_area) x)
    norm eff

let test_registry_find () =
  Alcotest.(check bool) "finds by name" true
    (S.Registry.find "skipjack-MEM" <> None);
  Alcotest.(check bool) "unknown is None" true (S.Registry.find "nope" = None);
  Alcotest.(check int) "five benchmarks" 5 (List.length (S.Registry.all ()))

let test_sweep_reports_illegal () =
  (* a nest with an outer-carried scalar builds only the untransformed
     versions; every rejected version carries a diagnostic naming the
     rejecting pass and the loop *)
  let p =
    let open Uas_ir.Builder in
    program "acc"
      ~locals:
        [ ("i", Uas_ir.Types.Tint); ("j", Uas_ir.Types.Tint);
          ("s", Uas_ir.Types.Tint) ]
      ~arrays:[ input "a" 8; output "o" 8 ]
      [ ("s" <-- int 0);
        for_ "i" ~hi:(int 8)
          [ for_ "j" ~hi:(int 4) [ "s" <-- v "s" + load "a" (v "i") ];
            store "o" (v "i") (v "s") ] ]
  in
  let outcomes = N.sweep p ~outer_index:"i" ~inner_index:"j" in
  Alcotest.(check int)
    "every requested version has an outcome"
    (List.length N.paper_versions)
    (List.length outcomes);
  let names = List.map (fun (v, _, _) -> N.version_name v) (N.successes outcomes) in
  Alcotest.(check (list string)) "only original and pipelined"
    [ "original"; "pipelined" ] names;
  let skips = N.skipped outcomes in
  Alcotest.(check int) "eight versions skipped" 8 (List.length skips);
  List.iter
    (fun (v, (d : Uas_pass.Diag.t)) ->
      Alcotest.(check bool)
        (N.version_name v ^ " diag severity is Error")
        true
        (d.Uas_pass.Diag.d_severity = Uas_pass.Diag.Error);
      Alcotest.(check bool)
        (N.version_name v ^ " diag names the squash or jam pass")
        true
        (List.mem d.Uas_pass.Diag.d_pass [ "squash"; "jam" ]);
      Alcotest.(check (option string))
        (N.version_name v ^ " diag points at loop i")
        (Some "i")
        d.Uas_pass.Diag.d_loc.Uas_pass.Diag.loc_loop;
      Alcotest.(check bool)
        (N.version_name v ^ " diag message is non-empty")
        true
        (String.length d.Uas_pass.Diag.d_message > 0))
    skips

let test_skipped_footer_rendered () =
  (* a rejected version lands in the table footer, not silently gone *)
  let b = S.Registry.skipjack_hw ~m:16 () in
  let row =
    E.run_benchmark ~verify:false
      ~versions:[ N.Original; N.Pipelined; N.Squashed 0 ]
      b
  in
  Alcotest.(check int) "two cells" 2 (List.length row.E.br_cells);
  Alcotest.(check int) "one skip" 1 (List.length row.E.br_skipped);
  let rendered = Fmt.str "%a" E.pp_table_6_2 [ row ] in
  Alcotest.(check bool) "footer names the version" true
    (Helpers.contains ~sub:"skipped: squash(0)" rendered);
  Alcotest.(check bool) "footer carries the diagnostic" true
    (Helpers.contains ~sub:"error[squash]" rendered)

let suite =
  [ Alcotest.test_case "version names" `Quick test_version_names;
    Alcotest.test_case "combined versions verified" `Slow
      test_combined_version_verified;
    Alcotest.test_case "combined beats jam alone" `Quick
      test_combined_beats_jam_alone;
    Alcotest.test_case "figures match tables" `Quick
      test_figures_consistent_with_table;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "sweep reports illegal" `Quick
      test_sweep_reports_illegal;
    Alcotest.test_case "skipped footer rendered" `Quick
      test_skipped_footer_rendered ]
