(* Differential hardening of the parallel sweep engine: random loop
   nests (2-deep and 3-deep) where (1) every generated version must
   compute the exact outputs of the original in the interpreter, and
   (2) the parallel sweep must equal the sequential sweep
   cell-for-cell.  Parallel
   correctness claims are cheap to break silently — a pass that grows
   shared mutable state, or a pool that reorders results, changes
   nothing on the happy path until it flips a Table 6.2 cell — so this
   suite is the contract.

   Seeds: QCheck respects QCHECK_SEED; `dune runtest` pins a default
   via the test stanza so CI is reproducible. *)

open Uas_ir
module N = Uas_core.Nimble
module E = Uas_core.Experiments
module R = Uas_bench_suite.Registry

(* the versions of the satellite spec: cheap enough to interpreter-
   replay per random program, diverse enough to cover squash slicing,
   rotation and jam duplication *)
let diff_versions = [ N.Original; N.Squashed 2; N.Squashed 4; N.Jammed 2 ]

let build_opt p v =
  match N.build_version_result p ~outer_index:"i" ~inner_index:"j" v with
  | Ok b -> Some b
  | Error _ -> None

let test_qcheck_versions_bit_identical =
  QCheck.Test.make
    ~name:"interp outputs bit-identical across original/squash/jam" ~count:40
    Helpers.arbitrary_diff_nest_program
    (fun p ->
      let w = Helpers.random_workload ~seed:11 p in
      let reference = Interp.run p w in
      List.iter
        (fun v ->
          match build_opt p v with
          | None -> ()  (* illegal at this factor: dropped, as in sweep *)
          | Some b -> (
            let r = Interp.run b.N.bv_program w in
            match Interp.diff_outputs reference r with
            | None -> ()
            | Some d ->
              QCheck.Test.fail_reportf "%s diverges: %s@\n%a"
                (N.version_name v) d Pp.pp_program b.N.bv_program))
        diff_versions;
      true)

let test_qcheck_parallel_sweep_equals_sequential =
  QCheck.Test.make ~name:"parallel sweep = sequential sweep (cell-for-cell)"
    ~count:40 Helpers.arbitrary_diff_nest_program
    (fun p ->
      let sweep jobs =
        N.sweep ~versions:diff_versions ~jobs p ~outer_index:"i"
          ~inner_index:"j"
      in
      let seq = sweep 1 and par = sweep 4 in
      let outcome_equal o1 o2 =
        match (o1, o2) with
        | N.Built (b1, r1), N.Built (b2, r2) ->
          b1.N.bv_program = b2.N.bv_program
          && b1.N.bv_kernel_index = b2.N.bv_kernel_index
          && r1 = r2
        | N.Skipped d1, N.Skipped d2 -> d1 = d2
        | _ -> false
      in
      List.length seq = List.length par
      && List.for_all2
           (fun (v1, o1) (v2, o2) -> v1 = v2 && outcome_equal o1 o2)
           seq par)

(* the real hot path: a full paper-version benchmark row, verified,
   must come out cell-for-cell identical from a 1-domain and a 4-domain
   pool (smaller block count than Table 6.2 to keep the replay quick) *)
let test_run_benchmark_parallel_equals_sequential () =
  let b = R.skipjack_mem ~m:8 () in
  let row jobs = (E.run_benchmark ~verify:true ~jobs b).E.br_cells in
  let seq = row 1 and par = row 4 in
  Alcotest.(check int) "cell count" (List.length seq) (List.length par);
  List.iter2
    (fun (c1 : E.cell) (c2 : E.cell) ->
      Alcotest.(check string)
        "version"
        (N.version_name c1.E.c_version)
        (N.version_name c2.E.c_version);
      Alcotest.(check bool)
        (Printf.sprintf "report %s identical" (N.version_name c1.E.c_version))
        true
        (c1.E.c_report = c2.E.c_report);
      Alcotest.(check bool) "verified flag" c1.E.c_verified c2.E.c_verified)
    seq par

(* failures inside pool workers must surface as diagnostics, not
   vanish into a domain: an unknown outer index comes back as a
   [Skipped] outcome from a parallel sweep just as it does
   sequentially *)
let test_sweep_failure_surfaces () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  let attempt jobs =
    match
      N.sweep ~versions:[ N.Squashed 2 ] ~jobs p ~outer_index:"nope"
        ~inner_index:"j"
    with
    | [ (N.Squashed 2, N.Skipped d) ] ->
      d.Uas_pass.Diag.d_pass = "loop-nest"
      && d.Uas_pass.Diag.d_severity = Uas_pass.Diag.Error
    | _ -> false
  in
  Alcotest.(check bool) "sequential skips with diagnostic" true (attempt 1);
  Alcotest.(check bool) "parallel skips with diagnostic" true (attempt 4)

(* --- the 3-deep generator: depth-general versions and rewrites ----- *)

(* the deep-nest version set: flatten the (i, j) pair, then squash the
   flat loop against k.  On the ~third of generated programs where an
   i-level band makes the pair imperfect, flatten must reject cleanly
   (a dropped version, like an illegal factor) — never diverge. *)
let diff_versions3 = [ N.Original; N.Flat_squashed 2; N.Flat_squashed 4 ]

let build_opt3 p v =
  match N.build_version_result p ~outer_index:"i" ~inner_index:"k" v with
  | Ok b -> Some b
  | Error _ -> None

let test_qcheck_nest3_versions_bit_identical =
  QCheck.Test.make
    ~name:"interp outputs bit-identical across original/flatten+squash"
    ~count:40 Helpers.arbitrary_nest3_program
    (fun p ->
      let w = Helpers.random_workload ~seed:13 p in
      let reference = Interp.run p w in
      List.iter
        (fun v ->
          match build_opt3 p v with
          | None -> ()
          | Some b -> (
            let r = Interp.run b.N.bv_program w in
            match Interp.diff_outputs reference r with
            | None -> ()
            | Some d ->
              QCheck.Test.fail_reportf "%s diverges: %s@\n%a"
                (N.version_name v) d Pp.pp_program b.N.bv_program))
        diff_versions3;
      true)

(* every registered rewrite, pointed at every level of a random 3-deep
   nest, must come back Ok or Error from Pass.run — a raw exception out
   of a depth-general code path is the regression this guards *)
let test_qcheck_nest3_no_exception_escapes =
  let module Rw = Uas_transform.Rewrite in
  let module Pass = Uas_pass.Pass in
  let module Cu = Uas_pass.Cu in
  QCheck.Test.make
    ~name:"no rewrite escapes Pass.run on a 3-deep nest" ~count:20
    Helpers.arbitrary_nest3_program
    (fun p ->
      List.iter
        (fun target ->
          let params = { Rw.default_params with Rw.target = Some target } in
          List.iter
            (fun rw ->
              let cu = Cu.make p ~outer_index:"i" ~inner_index:"k" in
              match Pass.run cu [ Rw.to_pass ~params rw ] with
              | Ok _ | Error _ -> ()
              | exception e ->
                QCheck.Test.fail_reportf
                  "%s at %s: exception escaped Pass.run: %s@\n%a" (Rw.name rw)
                  target (Printexc.to_string e) Pp.pp_program p)
            (Rw.all ()))
        [ "i"; "j"; "k"; "ghost" ];
      true)

let test_qcheck_nest3_parallel_sweep_equals_sequential =
  QCheck.Test.make
    ~name:"3-deep parallel sweep = sequential sweep (cell-for-cell)"
    ~count:20 Helpers.arbitrary_nest3_program
    (fun p ->
      let sweep jobs =
        N.sweep ~versions:diff_versions3 ~jobs p ~outer_index:"i"
          ~inner_index:"k"
      in
      let seq = sweep 1 and par = sweep 4 in
      let outcome_equal o1 o2 =
        match (o1, o2) with
        | N.Built (b1, r1), N.Built (b2, r2) ->
          b1.N.bv_program = b2.N.bv_program
          && b1.N.bv_kernel_index = b2.N.bv_kernel_index
          && r1 = r2
        | N.Skipped d1, N.Skipped d2 -> d1 = d2
        | _ -> false
      in
      List.length seq = List.length par
      && List.for_all2
           (fun (v1, o1) (v2, o2) -> v1 = v2 && outcome_equal o1 o2)
           seq par)

let suite =
  [ QCheck_alcotest.to_alcotest test_qcheck_versions_bit_identical;
    QCheck_alcotest.to_alcotest test_qcheck_nest3_versions_bit_identical;
    QCheck_alcotest.to_alcotest test_qcheck_nest3_no_exception_escapes;
    QCheck_alcotest.to_alcotest test_qcheck_nest3_parallel_sweep_equals_sequential;
    QCheck_alcotest.to_alcotest test_qcheck_parallel_sweep_equals_sequential;
    Alcotest.test_case "run_benchmark: 1 domain = 4 domains" `Slow
      test_run_benchmark_parallel_equals_sequential;
    Alcotest.test_case "worker failures surface as diagnostics" `Quick
      test_sweep_failure_surfaces ]
