(* The DFG substrate: graph construction from loop bodies, backedges,
   memory disambiguation, recurrence/resource bounds, list and modulo
   scheduling, and stage partitioning. *)

open Uas_ir
module D = Uas_dfg
module B = Builder

let fg_body =
  [ B.("b" <-- band (v "a" + int 3) (int 255));
    B.("a" <-- bxor (v "b" + v "b") (int 21)) ]

(* --- graph building --- *)

let test_build_fg () =
  let g, ssa = D.Build.build fg_body in
  ignore ssa;
  (* operators: +, &, +, ^ = 4 real operators *)
  Alcotest.(check int) "operators" 4 (D.Graph.operator_count g);
  Alcotest.(check int) "no memory ops" 0 (D.Graph.memory_op_count g);
  (* the a -> b -> a recurrence must appear as a cycle *)
  Alcotest.(check bool) "has recurrence" true (D.Graph.recurrence_mii g > 0)

let test_recurrence_mii_value () =
  let g, _ = D.Build.build fg_body in
  (* cycle: + (1) & (1) + (1) ^ (1) over distance 1 -> RecMII = 4 *)
  Alcotest.(check int) "RecMII" 4 (D.Graph.recurrence_mii g)

let test_no_recurrence_when_independent () =
  let body =
    [ B.("x" <-- load "a" (v "j"));
      B.("y" <-- v "x" * v "x");
      B.store "b" (B.v "j") (B.v "y") ]
  in
  let g, _ = D.Build.build ~inner_index:"j" body in
  Alcotest.(check int) "RecMII 0" 0 (D.Graph.recurrence_mii g);
  Alcotest.(check int) "two memory ops" 2 (D.Graph.memory_op_count g)

let test_memory_disambiguation () =
  (* load w[j] / store w[j]: same element, same iteration — ordered,
     but NOT a cross-iteration recurrence *)
  let body =
    [ B.("x" <-- load "w" (v "j"));
      B.("x" <-- v "x" + int 1);
      B.store "w" (B.v "j") (B.v "x") ]
  in
  let g, _ = D.Build.build ~inner_index:"j" body in
  Alcotest.(check int) "no recurrence across j" 0 (D.Graph.recurrence_mii g);
  (* without the index the accesses must be treated conservatively *)
  let g2, _ = D.Build.build body in
  Alcotest.(check bool) "conservative without index" true
    (D.Graph.recurrence_mii g2 > 0)

let test_true_memory_recurrence () =
  (* store w[j] read back as w[j-1] next iteration: distance-1 memory
     recurrence that must be found *)
  let body =
    [ B.("x" <-- load "w" (v "j" - int 1));
      B.("x" <-- v "x" + int 1);
      B.store "w" (B.v "j") (B.v "x") ]
  in
  let g, _ = D.Build.build ~inner_index:"j" body in
  Alcotest.(check bool) "memory recurrence" true (D.Graph.recurrence_mii g > 0)

let test_critical_path () =
  let g, _ = D.Build.build fg_body in
  (* chain of four 1-cycle ALU ops *)
  Alcotest.(check int) "critical path" 4 (D.Graph.critical_path g)

let test_topo_rejects_cycles () =
  let nodes =
    [ { D.Graph.id = 0; kind = Uas_ir.Opinfo.Op_binop Types.Add; label = "a" };
      { D.Graph.id = 1; kind = Uas_ir.Opinfo.Op_binop Types.Add; label = "b" } ]
  in
  let edges =
    [ { D.Graph.e_src = 0; e_dst = 1; e_distance = 0 };
      { D.Graph.e_src = 1; e_dst = 0; e_distance = 0 } ]
  in
  let g = D.Graph.create nodes edges in
  match D.Graph.topo_order g with
  | exception Types.Ir_error _ -> ()
  | _ -> Alcotest.fail "expected cycle error"

(* --- scheduling --- *)

(* every schedule a backend produces must pass the shared validity
   checker (the exact oracle's post-condition) *)
let assert_valid name g s =
  match D.Sched.check_schedule g s with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "%s: %s" name (String.concat "; " msgs)

let mem_heavy_body k =
  List.init k (fun t ->
      B.(Printf.sprintf "x%d" t <-- load "a" (v "j" + int t)))
  @ [ B.store "o" (B.v "j")
        (List.fold_left
           (fun acc t -> B.(acc + v (Printf.sprintf "x%d" t)))
           (B.int 0)
           (List.init k (fun t -> t))) ]

let test_res_mii () =
  let g, _ = D.Build.build ~inner_index:"j" (mem_heavy_body 6) in
  (* 6 loads + 1 store = 7 memory ops; 2 ports -> ResMII 4 *)
  Alcotest.(check int) "mem ops" 7 (D.Graph.memory_op_count g);
  Alcotest.(check int) "ResMII"
    4
    (D.Sched.resource_mii D.Sched.default_config g);
  let s = D.Sched.modulo_schedule g in
  Alcotest.(check int) "II = ResMII" 4 s.D.Sched.s_ii;
  assert_valid "res-mii schedule" g s

let test_modulo_port_capacity () =
  (* in any modulo schedule, no slot may exceed the port count *)
  let g, _ = D.Build.build ~inner_index:"j" (mem_heavy_body 9) in
  let s = D.Sched.modulo_schedule g in
  assert_valid "port-capacity schedule" g s;
  let slots = Array.make s.D.Sched.s_ii 0 in
  Array.iteri
    (fun i t ->
      if Uas_ir.Opinfo.uses_memory_port (D.Graph.node g i).D.Graph.kind then
        slots.(t mod s.D.Sched.s_ii) <- slots.(t mod s.D.Sched.s_ii) + 1)
    s.D.Sched.s_times;
  Array.iteri
    (fun k used ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d within capacity" k)
        true (used <= 2))
    slots

let test_modulo_respects_dependences () =
  let g, _ = D.Build.build fg_body in
  let s = D.Sched.modulo_schedule g in
  assert_valid "fg modulo schedule" g s;
  List.iter
    (fun e ->
      Alcotest.(check bool) "edge satisfied" true
        (s.D.Sched.s_times.(e.D.Graph.e_dst)
         >= s.D.Sched.s_times.(e.D.Graph.e_src)
            + D.Graph.delay g e.D.Graph.e_src
            - (s.D.Sched.s_ii * e.D.Graph.e_distance)))
    g.D.Graph.edges

let test_list_schedule_length () =
  let g, _ = D.Build.build fg_body in
  let s = D.Sched.list_schedule g in
  Alcotest.(check int) "length = critical path" 4 s.D.Sched.s_length

let test_pipelined_never_slower () =
  List.iter
    (fun body ->
      let g, _ = D.Build.build ~inner_index:"j" body in
      let l = D.Sched.list_schedule g in
      let m = D.Sched.modulo_schedule g in
      assert_valid "list schedule" g l;
      assert_valid "modulo schedule" g m;
      Alcotest.(check bool) "II <= list length" true
        (m.D.Sched.s_ii <= l.D.Sched.s_length))
    [ fg_body; mem_heavy_body 4; mem_heavy_body 8 ]

let test_qcheck_modulo_sound =
  (* random straight-line bodies: the modulo schedule satisfies all
     dependence constraints and the memory reservation table *)
  let gen_body st =
    let n_stmt = QCheck.Gen.int_range 2 10 st in
    List.init n_stmt (fun t ->
        let dst = Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st) in
        match QCheck.Gen.int_range 0 3 st with
        | 0 -> B.(dst <-- load "mem" (v "j" + int t))
        | 1 ->
          B.(dst
             <-- v (Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st))
                 + int t)
        | 2 ->
          B.(dst
             <-- band
                   (v (Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st)))
                   (int 255))
        | _ -> B.store "mem" B.(v "j" + int (Stdlib.( + ) 100 t)) (B.v dst))
  in
  let arb =
    QCheck.make gen_body ~print:(fun b ->
        String.concat "\n" (List.map Pp.stmt_to_string b))
  in
  QCheck.Test.make ~name:"modulo schedule soundness (random bodies)" ~count:100
    arb
    (fun body ->
      let g, _ = D.Build.build ~inner_index:"j" body in
      let s = D.Sched.modulo_schedule g in
      let deps_ok =
        List.for_all
          (fun e ->
            s.D.Sched.s_times.(e.D.Graph.e_dst)
            >= s.D.Sched.s_times.(e.D.Graph.e_src)
               + D.Graph.delay g e.D.Graph.e_src
               - (s.D.Sched.s_ii * e.D.Graph.e_distance))
          g.D.Graph.edges
      in
      let slots = Array.make s.D.Sched.s_ii 0 in
      Array.iteri
        (fun i t ->
          if Uas_ir.Opinfo.uses_memory_port (D.Graph.node g i).D.Graph.kind
          then slots.(t mod s.D.Sched.s_ii) <- slots.(t mod s.D.Sched.s_ii) + 1)
        s.D.Sched.s_times;
      deps_ok
      && Array.for_all (fun u -> u <= 2) slots
      (* and the shared validity checker agrees with the manual checks *)
      && D.Sched.check_schedule g s = Ok ())

(* --- stage partitioning --- *)

let test_partition_covers () =
  let body = mem_heavy_body 5 in
  List.iter
    (fun stages ->
      let slices = D.Stage.partition ~stages body in
      Alcotest.(check int) "slice count" stages (List.length slices);
      Alcotest.(check bool) "concat = body" true
        (Stmt.equal_list body (List.concat slices)))
    [ 1; 2; 3; 4; 6; 10 ]

let test_partition_balances () =
  (* equal-cost statements split evenly *)
  let body =
    List.init 8 (fun t -> B.(Printf.sprintf "y%d" t <-- v "x" + int t))
  in
  let slices = D.Stage.partition ~stages:4 body in
  List.iter
    (fun slice -> Alcotest.(check int) "2 per stage" 2 (List.length slice))
    slices

let test_partition_optimal_max () =
  (* costs 3,1,1,3 into 2 stages: best max is 4 = (3,1 | 1,3), not 5 *)
  let mk cost name =
    (* chain [cost] unit-delay adds in one statement *)
    let rec chain k = if k = 0 then B.v "x" else B.(chain (Stdlib.( - ) k 1) + int 1) in
    B.(name <-- chain cost)
  in
  let body = [ mk 3 "p"; mk 1 "q"; mk 1 "r"; mk 3 "s" ] in
  let slices = D.Stage.partition ~stages:2 body in
  let costs = D.Stage.stage_costs slices in
  Alcotest.(check int) "balanced max" 4 (List.fold_left max 0 costs)

let test_empty_stages_allowed () =
  let body = [ B.("x" <-- v "x" + int 1) ] in
  let slices = D.Stage.partition ~stages:4 body in
  Alcotest.(check int) "4 slices" 4 (List.length slices);
  Alcotest.(check bool) "content preserved" true
    (Stmt.equal_list body (List.concat slices))

let suite =
  [ Alcotest.test_case "build fg" `Quick test_build_fg;
    Alcotest.test_case "RecMII value" `Quick test_recurrence_mii_value;
    Alcotest.test_case "independent body" `Quick
      test_no_recurrence_when_independent;
    Alcotest.test_case "memory disambiguation" `Quick
      test_memory_disambiguation;
    Alcotest.test_case "true memory recurrence" `Quick
      test_true_memory_recurrence;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "topo rejects cycles" `Quick test_topo_rejects_cycles;
    Alcotest.test_case "ResMII" `Quick test_res_mii;
    Alcotest.test_case "modulo port capacity" `Quick
      test_modulo_port_capacity;
    Alcotest.test_case "modulo respects dependences" `Quick
      test_modulo_respects_dependences;
    Alcotest.test_case "list schedule length" `Quick
      test_list_schedule_length;
    Alcotest.test_case "pipelined never slower" `Quick
      test_pipelined_never_slower;
    QCheck_alcotest.to_alcotest test_qcheck_modulo_sound;
    Alcotest.test_case "partition covers" `Quick test_partition_covers;
    Alcotest.test_case "partition balances" `Quick test_partition_balances;
    Alcotest.test_case "partition optimal max" `Quick
      test_partition_optimal_max;
    Alcotest.test_case "empty stages" `Quick test_empty_stages_allowed ]
