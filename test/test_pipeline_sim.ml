(* The cycle-accurate datapath simulator: overlapped execution of
   modulo-scheduled kernels with bounded registers must reproduce the
   sequential results and hit the scheduled throughput. *)

open Uas_ir
module S = Uas_bench_suite
module Sim = Uas_hw.Pipeline_sim
module Build = Uas_dfg.Build
module Sched = Uas_dfg.Sched

let no_arrays () : (string, Types.value array) Hashtbl.t = Hashtbl.create 4
let no_roms () : (string, int array) Hashtbl.t = Hashtbl.create 4

let env_of bindings name =
  match List.assoc_opt name bindings with
  | Some v -> v
  | None -> Types.VInt 0

(* --- the f/g kernel: recurrence across iterations --- *)

let test_fg_kernel () =
  let p = Helpers.fg_loop ~m:4 ~n:16 in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = Sched.modulo_schedule detail.Build.d_graph in
  let a0 = 77 in
  let r =
    Sim.run ~detail ~schedule ~iterations:16
      ~env:(env_of [ ("a", Types.VInt a0); ("j", Types.VInt 0) ])
      ~arrays:(no_arrays ()) ~roms:(no_roms ()) ~index:"j" ()
  in
  (* reference: the host model of f/g *)
  let expected = (S.Simple.fg_reference ~n:16 [| a0 |]).(0) in
  Alcotest.(check bool) "a matches sequential" true
    (List.assoc "a" r.Sim.sim_live_out = Types.VInt expected);
  (* throughput: last issue at (N-1)*II + max t, so the makespan is
     bounded by N*II + schedule length *)
  Alcotest.(check bool) "pipelined makespan" true
    (r.Sim.sim_cycles
    <= (16 * schedule.Sched.s_ii) + schedule.Sched.s_length + 1)

(* --- skipjack-hw: ROM lookups, 32 rounds, known answer --- *)

let test_skipjack_kernel () =
  let key = S.Skipjack.kat_key in
  let p = S.Skipjack.skipjack_hw ~m:1 ~key in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = Sched.modulo_schedule detail.Build.d_graph in
  let roms = no_roms () in
  Hashtbl.replace roms "ftable" S.Skipjack.f_table;
  Hashtbl.replace roms "cv" key;
  let w = S.Skipjack.kat_plaintext_words in
  let r =
    Sim.run ~detail ~schedule ~iterations:32
      ~env:
        (env_of
           [ ("w1", Types.VInt w.(0)); ("w2", Types.VInt w.(1));
             ("w3", Types.VInt w.(2)); ("w4", Types.VInt w.(3));
             ("j", Types.VInt 0) ])
      ~arrays:(no_arrays ()) ~roms ~index:"j" ()
  in
  let out name = List.assoc name r.Sim.sim_live_out in
  let c = S.Skipjack.kat_ciphertext_words in
  Alcotest.(check bool) "official vector through the pipeline" true
    (out "w1" = Types.VInt c.(0)
    && out "w2" = Types.VInt c.(1)
    && out "w3" = Types.VInt c.(2)
    && out "w4" = Types.VInt c.(3))

(* --- des-hw: deeper kernel, 16 rounds against the host core --- *)

let test_des_kernel () =
  let key64 = 0x0123456789ABCDEFL in
  let p = S.Des.des_hw ~m:1 ~key64 in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = Sched.modulo_schedule detail.Build.d_graph in
  let roms = no_roms () in
  Hashtbl.replace roms "spbox" S.Des.spbox_flat;
  Hashtbl.replace roms "subkeys" (S.Des.key_schedule key64);
  let l0 = 0x01234567 and r0 = 0x89abcdef in
  let r =
    Sim.run ~detail ~schedule ~iterations:16
      ~env:(env_of [ ("l", Types.VInt l0); ("r", Types.VInt r0);
                     ("j", Types.VInt 0) ])
      ~arrays:(no_arrays ()) ~roms ~index:"j" ()
  in
  let r16, l16 =
    S.Des.encrypt_core ~subkeys:(S.Des.key_schedule key64) (l0, r0)
  in
  (* before the output swap, the loop's variables hold l=l16? no:
     after 16 rounds the variables are l = L16, r = R16 *)
  Alcotest.(check bool) "DES core through the pipeline" true
    (List.assoc "l" r.Sim.sim_live_out = Types.VInt l16
    && List.assoc "r" r.Sim.sim_live_out = Types.VInt r16)

(* --- memory traffic: loads/stores through the ports --- *)

let test_memory_kernel () =
  let p = Helpers.memory_loop ~m:1 ~n:12 in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = Sched.modulo_schedule detail.Build.d_graph in
  let arrays = no_arrays () in
  let src = Array.init 12 (fun k -> Types.VInt ((k * 37) land 1023)) in
  let tab = Array.init 256 (fun k -> Types.VInt ((k * k) land 4095)) in
  Hashtbl.replace arrays "src" (Array.copy src);
  Hashtbl.replace arrays "tab" (Array.copy tab);
  let r =
    Sim.run ~detail ~schedule ~iterations:12
      ~env:(env_of [ ("acc", Types.VInt 0); ("i", Types.VInt 0);
                     ("j", Types.VInt 0) ])
      ~arrays ~roms:(no_roms ()) ~index:"j" ()
  in
  (* reference via the interpreter on the same single-block program *)
  let w =
    Interp.workload
      ~arrays:[ ("src", src); ("tab", tab) ]
      ()
  in
  let expected =
    (List.assoc "dst" (Interp.run p w).Interp.outputs).(0)
  in
  Alcotest.(check bool) "acc matches the interpreter" true
    (List.assoc "acc" r.Sim.sim_live_out = expected);
  Alcotest.(check bool) "port pressure within budget" true
    (r.Sim.sim_port_pressure <= 2.0 +. 1e-9)

(* --- the squashed kernel also simulates correctly --- *)

let test_squashed_kernel () =
  (* squash fg by 4, then run its steady-state body (slices + rotation)
     through the pipeline simulator from a deterministic scalar state,
     and compare every live-out scalar with the interpreter running the
     same body the same number of times *)
  let p = Helpers.fg_loop ~m:4 ~n:8 in
  let nest = Helpers.nest_of p "i" in
  let out = Uas_transform.Squash.apply p nest ~ds:4 in
  let body = out.Uas_transform.Squash.new_inner_body in
  let idx = out.Uas_transform.Squash.new_inner_index in
  let detail = Build.build_detailed ~inner_index:idx body in
  let schedule = Sched.modulo_schedule detail.Build.d_graph in
  let iters = 10 in
  let scalars =
    Stmt.Sset.elements (Stmt.Sset.remove idx (Stmt.scalars body))
  in
  let init name =
    (* deterministic, distinct entry values *)
    Types.VInt ((Hashtbl.hash name land 255) + 1)
  in
  let r =
    Sim.run ~detail ~schedule ~iterations:iters
      ~env:(fun n -> if String.equal n idx then Types.VInt 0 else init n)
      ~arrays:(no_arrays ()) ~roms:(no_roms ()) ~index:idx ()
  in
  (* reference: the interpreter on a program whose params carry the same
     entry values *)
  let q =
    Uas_ir.Builder.program "steady"
      ~params:(List.map (fun v -> (v, Types.Tint)) scalars)
      ~locals:[ (idx, Types.Tint) ]
      [ Stmt.For
          { index = idx; lo = Expr.Int 0; hi = Expr.Int iters; step = 1;
            body } ]
  in
  let w =
    Interp.workload ~scalars:(List.map (fun v -> (v, init v)) scalars) ()
  in
  let rr = Interp.run q w in
  List.iter
    (fun (base, value) ->
      match List.assoc_opt base rr.Interp.final_scalars with
      | Some expected ->
        if value <> expected then
          Alcotest.failf "scalar %s: pipeline %s, interpreter %s" base
            (Fmt.str "%a" Types.pp_value value)
            (Fmt.str "%a" Types.pp_value expected)
      | None -> ())
    r.Sim.sim_live_out

let test_qcheck_sim_matches_interp =
  (* random legal nests: the overlapped pipeline execution of the inner
     body equals the sequential interpreter on every live-out scalar,
     and never trips a register or port hazard *)
  QCheck.Test.make ~name:"pipeline sim = interpreter (random nests)" ~count:60
    Helpers.arbitrary_nest_program
    (fun p ->
      let nest = Helpers.nest_of p "i" in
      let body = nest.Uas_analysis.Loop_nest.inner_body in
      let detail = Build.build_detailed ~inner_index:"j" body in
      let schedule = Sched.modulo_schedule detail.Build.d_graph in
      let iters = 6 in
      let scalars =
        Stmt.Sset.elements (Stmt.Sset.remove "j" (Stmt.scalars body))
      in
      let init name = Types.VInt ((Hashtbl.hash name land 511) - 100) in
      let src = Array.init 64 (fun k -> Types.VInt ((k * 97) land 1023)) in
      let tab = Array.init 64 (fun k -> Types.VInt ((k * 41) land 255)) in
      let arrays : (string, Types.value array) Hashtbl.t = Hashtbl.create 4 in
      Hashtbl.replace arrays "src" (Array.copy src);
      Hashtbl.replace arrays "tab" (Array.copy tab);
      Hashtbl.replace arrays "dst" (Array.make 64 (Types.VInt 0));
      let r =
        Sim.run ~detail ~schedule ~iterations:iters
          ~env:(fun n -> if n = "j" then Types.VInt 0 else init n)
          ~arrays ~roms:(no_roms ()) ~index:"j" ()
      in
      (* sequential reference: params carry the same entry values; the
         body loops [iters] times over fresh arrays *)
      let q =
        Uas_ir.Builder.program "ref"
          ~params:(List.map (fun v -> (v, Types.Tint)) scalars)
          ~locals:[ ("j", Types.Tint) ]
          ~arrays:
            [ Uas_ir.Builder.input "src" 64; Uas_ir.Builder.input "tab" 64;
              Uas_ir.Builder.output "dst" 64 ]
          [ Stmt.For
              { index = "j"; lo = Expr.Int 0; hi = Expr.Int iters; step = 1;
                body } ]
      in
      let w =
        Interp.workload
          ~scalars:(List.map (fun v -> (v, init v)) scalars)
          ~arrays:[ ("src", src); ("tab", tab) ]
          ()
      in
      let rr = Interp.run q w in
      List.for_all
        (fun (base, value) ->
          match List.assoc_opt base rr.Interp.final_scalars with
          | Some expected -> value = expected
          | None -> true)
        r.Sim.sim_live_out
      && Hashtbl.fold
           (fun name data acc ->
             acc
             &&
             if String.equal name "dst" then
               data = List.assoc "dst" rr.Interp.outputs
             else true)
           arrays true)

(* --- hazards: each constructor, from a minimal crafted run ---

   Consistent schedules from [Sched.modulo_schedule] never trip these
   (the window/port math strictly covers every recorded reader), so
   each test plants the specific inconsistency the hazard guards
   against and asserts the exact exception payload. *)

let all_zero_schedule (g : Uas_dfg.Graph.t) : Sched.schedule =
  { Sched.s_ii = 1;
    s_times = Array.make (Uas_dfg.Graph.node_count g) 0;
    s_length = 1 }

(* An operator with delay 1 issues at cycle 0 and its consumer also
   issues at cycle 0 in the same iteration: the register is read before
   the pipelined result commits. *)
let test_hazard_value_not_ready () =
  let p = Helpers.fg_loop ~m:2 ~n:4 in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = all_zero_schedule detail.Build.d_graph in
  match
    Sim.run ~detail ~schedule ~iterations:2
      ~env:(env_of [ ("a", Types.VInt 7); ("j", Types.VInt 0) ])
      ~arrays:(no_arrays ()) ~roms:(no_roms ()) ~index:"j" ()
  with
  | _ -> Alcotest.fail "zero schedule accepted a delayed producer"
  | exception Sim.Hazard (Sim.Value_not_ready { iteration; _ }) ->
    Alcotest.(check int) "fires on the first iteration" 0 iteration
  | exception Sim.Hazard h ->
    Alcotest.failf "wrong hazard: %a" Sim.pp_hazard h

(* Two loads forced into the same issue cycle on a one-port datapath:
   the second port claim of cycle 0 must abort. *)
let test_hazard_port_conflict () =
  let open Uas_ir in
  let module B = Builder in
  let p =
    B.program "two_loads"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint);
                ("y", Types.Tint); ("s", Types.Tint) ]
      ~arrays:[ B.input "u" 16; B.input "w" 16; B.output "dst" 1 ]
      [ B.for_ "i" ~hi:(B.int 1)
          [ B.("s" <-- int 0);
            B.for_ "j" ~hi:(B.int 8)
              [ B.("x" <-- load "u" (v "j"));
                B.("y" <-- load "w" (v "j"));
                B.("s" <-- bxor (v "s") (v "x" + v "y")) ];
            B.store "dst" (B.int 0) (B.v "s") ]
      ]
  in
  let nest = Helpers.nest_of p "i" in
  let detail = Build.build_detailed ~inner_index:"j" nest.inner_body in
  let schedule = all_zero_schedule detail.Build.d_graph in
  let arrays = no_arrays () in
  Hashtbl.replace arrays "u" (Array.make 16 (Types.VInt 1));
  Hashtbl.replace arrays "w" (Array.make 16 (Types.VInt 2));
  match
    Sim.run ~target:Uas_hw.Datapath.single_port ~detail ~schedule
      ~iterations:8
      ~env:(env_of [ ("s", Types.VInt 0); ("j", Types.VInt 0) ])
      ~arrays ~roms:(no_roms ()) ~index:"j" ()
  with
  | _ -> Alcotest.fail "two same-cycle loads accepted on one port"
  | exception Sim.Hazard (Sim.Port_conflict { cycle; used; ports }) ->
    Alcotest.(check int) "cycle" 0 cycle;
    Alcotest.(check int) "claims" 2 used;
    Alcotest.(check int) "budget" 1 ports
  | exception Sim.Hazard h ->
    Alcotest.failf "wrong hazard: %a" Sim.pp_hazard h

(* A register overwrite needs a reader the window sizing never saw: a
   hand-assembled graph whose edge list records a distance-2 carried
   use of node 0 that is missing from succs, so node 0 gets one window
   and iteration 2's write lands on the slot iteration 0 still needs. *)
let test_hazard_register_overwritten () =
  let open Uas_dfg in
  let module B = Uas_ir.Builder in
  let donor =
    Build.build_detailed ~inner_index:"j" [ B.("t" <-- int 1) ]
  in
  let nodes =
    [| { Graph.id = 0; kind = Uas_ir.Opinfo.Op_move; label = "p" };
       { Graph.id = 1; kind = Uas_ir.Opinfo.Op_move; label = "c" } |]
  in
  let g =
    { Graph.nodes;
      edges = [ { Graph.e_src = 0; e_dst = 1; e_distance = 2 } ];
      succs = [| []; [] |];
      preds = [| []; [] |];
      delay_of = (fun _ -> 0) }
  in
  let detail =
    { Build.d_graph = g;
      d_ssa = donor.Build.d_ssa;
      d_sem = [| Build.Sreg "p"; Build.Sreg "c" |];
      d_live_out_nodes = [] }
  in
  let schedule = { Sched.s_ii = 1; s_times = [| 0; 0 |]; s_length = 1 } in
  match
    Sim.run ~detail ~schedule ~iterations:3
      ~env:(env_of [ ("p", Types.VInt 1); ("c", Types.VInt 2) ])
      ~arrays:(no_arrays ()) ~roms:(no_roms ()) ()
  with
  | _ -> Alcotest.fail "undersized register file accepted"
  | exception Sim.Hazard (Sim.Register_overwritten { node; iteration; reader })
    ->
    Alcotest.(check int) "clobbered producer" 0 node;
    Alcotest.(check int) "iteration still owed the value" 0 iteration;
    Alcotest.(check int) "reader" 1 reader
  | exception Sim.Hazard h ->
    Alcotest.failf "wrong hazard: %a" Sim.pp_hazard h

let suite =
  [ Alcotest.test_case "fg kernel pipeline" `Quick test_fg_kernel;
    Alcotest.test_case "skipjack kernel pipeline (KAT)" `Quick
      test_skipjack_kernel;
    Alcotest.test_case "DES kernel pipeline" `Quick test_des_kernel;
    Alcotest.test_case "memory kernel pipeline" `Quick test_memory_kernel;
    Alcotest.test_case "squashed kernel pipeline" `Quick
      test_squashed_kernel;
    Alcotest.test_case "hazard: value not ready" `Quick
      test_hazard_value_not_ready;
    Alcotest.test_case "hazard: port conflict" `Quick
      test_hazard_port_conflict;
    Alcotest.test_case "hazard: register overwritten" `Quick
      test_hazard_register_overwritten;
    QCheck_alcotest.to_alcotest test_qcheck_sim_matches_interp ]
